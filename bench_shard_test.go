// Benchmarks for the sharded simulation core: the scale sweep BENCH_pr8.json
// records — the fleet-scale campaigns (4k/16k/64k nodes) at shards=1 (the
// serial event loop) and shards=8 (the conservative windowed engine), each
// cell reporting wall time, MB/node and events/sec as custom metrics, the
// sharded cells also reporting speedup over their serial baseline. One
// iteration is one full seeded campaign; run with -benchtime 1x.
package pmcast_test

import (
	"fmt"
	"testing"

	"pmcast/internal/experiments"
)

// BenchmarkShardScaleSweep runs the sweep in scenario-major order, serial
// cell first, so each shards=8 sub-benchmark can report its speedup against
// the baseline recorded moments earlier. The cells double as a byte-identity
// check: a trace hash diverging across shard counts fails the benchmark.
func BenchmarkShardScaleSweep(b *testing.B) {
	for _, name := range []string{"soak4k", "churn16k", "soak64k"} {
		var baseline int64
		var trace string
		for _, shards := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/shards%d", name, shards), func(b *testing.B) {
				var wall, mb, eps, speedup float64
				for i := 0; i < b.N; i++ {
					cell, err := experiments.ShardSweepCellAt(name, 1, shards, baseline)
					if err != nil {
						b.Fatal(err)
					}
					if shards == 1 {
						baseline = cell.WallMillis
					}
					if trace == "" {
						trace = cell.TraceSHA256
					} else if cell.TraceSHA256 != trace {
						b.Fatalf("%s shards=%d: trace %s != %s — sharding changed the delivery trace",
							name, shards, cell.TraceSHA256, trace)
					}
					wall += float64(cell.WallMillis)
					mb += cell.MBPerNode
					eps += cell.EventsPerSec
					speedup += cell.Speedup
				}
				n := float64(b.N)
				b.ReportMetric(wall/n, "wall-ms")
				b.ReportMetric(mb/n, "mb/node")
				b.ReportMetric(eps/n, "events/sec")
				if speedup > 0 {
					b.ReportMetric(speedup/n, "speedup")
				}
			})
		}
	}
}
