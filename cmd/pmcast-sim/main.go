// Command pmcast-sim runs individual pmcast Monte-Carlo simulations with
// explicit parameters and prints per-run and aggregate results as CSV.
//
// Example (the paper's Figure 4 point at p_d = 0.5):
//
//	pmcast-sim -a 22 -d 3 -r 3 -f 2 -pd 0.5 -runs 20 -eps 0.01 -tau 0.001
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"pmcast/internal/sim"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pmcast-sim:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("pmcast-sim", flag.ContinueOnError)
	a := fs.Int("a", 22, "subgroups per node (regular arity)")
	d := fs.Int("d", 3, "tree depth")
	r := fs.Int("r", 3, "redundancy factor R (delegates per subgroup)")
	f := fs.Int("f", 2, "gossip fanout F")
	c := fs.Float64("c", 0, "Pittel constant")
	pd := fs.Float64("pd", 0.5, "matching rate p_d")
	eps := fs.Float64("eps", 0, "message loss probability ε")
	tau := fs.Float64("tau", 0, "crash fraction τ")
	h := fs.Int("h", 0, "tuning threshold (0 = untuned)")
	localDescent := fs.Bool("local-descent", false, "enable Section 3.2 start-depth descent")
	runs := fs.Int("runs", 10, "number of runs")
	seed := fs.Int64("seed", 1, "RNG seed")
	perRun := fs.Bool("per-run", false, "print every run, not just the aggregate")
	if err := fs.Parse(args); err != nil {
		return err
	}

	s, err := sim.New(sim.Params{
		A: *a, D: *d, R: *r, F: *f, C: *c,
		Eps: *eps, Tau: *tau,
		Threshold: *h, LocalDescent: *localDescent,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# n=%d pd=%g eps=%g tau=%g h=%d\n", s.Params().N(), *pd, *eps, *tau, *h)
	rng := rand.New(rand.NewSource(*seed))
	if *perRun {
		fmt.Fprintln(w, "run,interested,delivered,delivery_rate,uninterested_received,uninterested_rate,rounds,messages")
	}
	var agg sim.Aggregate
	for i := 0; i < *runs; i++ {
		res, err := s.Run(*pd, rng)
		if err != nil {
			return err
		}
		if *perRun {
			fmt.Fprintf(w, "%d,%d,%d,%.4f,%d,%.4f,%d,%d\n",
				i, res.Interested, res.DeliveredInterested, res.DeliveryRate(),
				res.InfectedUninterested, res.UninterestedReceptionRate(),
				res.Rounds, res.Messages)
		}
		if res.Interested > 0 {
			agg.Delivery.Add(res.DeliveryRate())
		}
		agg.UninterestedReception.Add(res.UninterestedReceptionRate())
		agg.Rounds.Add(float64(res.Rounds))
		agg.Messages.Add(float64(res.Messages))
	}
	fmt.Fprintln(w, "metric,mean,ci95,runs")
	fmt.Fprintf(w, "delivery,%.4f,%.4f,%d\n", agg.Delivery.Mean(), agg.Delivery.CI95(), agg.Delivery.N())
	fmt.Fprintf(w, "uninterested_reception,%.4f,%.4f,%d\n",
		agg.UninterestedReception.Mean(), agg.UninterestedReception.CI95(), agg.UninterestedReception.N())
	fmt.Fprintf(w, "rounds,%.2f,%.2f,%d\n", agg.Rounds.Mean(), agg.Rounds.CI95(), agg.Rounds.N())
	fmt.Fprintf(w, "messages,%.0f,%.0f,%d\n", agg.Messages.Mean(), agg.Messages.CI95(), agg.Messages.N())
	return nil
}
