// pmcast-chaos runs one named chaos scenario from the deterministic
// virtual-time harness and emits a JSON report. The same (scenario, seed)
// pair always produces the same delivery trace; the report carries its
// SHA-256 so runs can be compared across machines and commits.
//
// Usage:
//
//	pmcast-chaos -list
//	pmcast-chaos -scenario churn1024 -seed 7
//	pmcast-chaos -scenario lossy256 -seed 1 -o report.json -trace run.trace
//	pmcast-chaos -scenario soak256 -seed 3 -nobatch   # A/B the batched pipeline
//	pmcast-chaos -scenario frontier64 -fec-k 8 -fec-r 2   # run with the coding layer on
//	pmcast-chaos -scenario noisy64 -adaptive   # force the loss-aware tuning loop on
//	pmcast-chaos -scenario soak256 -cpuprofile soak.pprof   # profile a soak run
//	pmcast-chaos -scenario soak64k -shards 8   # 64k nodes on the sharded core
//	pmcast-chaos -scenario churn16k -shards 1   # same trace, serial loop (slow)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime/pprof"

	"pmcast/internal/harness"
)

func main() {
	var (
		name       = flag.String("scenario", "smoke16", "named scenario to run (see -list)")
		seed       = flag.Int64("seed", 1, "campaign seed; same seed ⇒ byte-identical delivery trace")
		out        = flag.String("o", "", "write the JSON report here (default stdout)")
		traceOut   = flag.String("trace", "", "also write the raw delivery trace to this file")
		list       = flag.Bool("list", false, "list the scenario catalog and exit")
		noBatch    = flag.Bool("nobatch", false, "disable the batched gossip pipeline (A/B envelope accounting)")
		fanout     = flag.Int("fanout", 0, "override the fleet's gossip fan-out F (0 keeps the scenario's own setting)")
		fecK       = flag.Int("fec-k", 0, "coding-layer generation size k (0 keeps the scenario's own setting)")
		fecR       = flag.Int("fec-r", -1, "repair symbols per generation r (-1 keeps the scenario's own setting; 0 disables coding)")
		adaptive   = flag.Bool("adaptive", false, "force the loss-aware adaptive fan-out loop on (noisy256/bursty1024 enable it scenario-side)")
		shards     = flag.Int("shards", 0, "override the scenario's shard count (0 keeps its own setting; the trace is byte-identical at any value, 1 forces the serial loop)")
		cpuprofile = flag.String("cpuprofile", "", "write a pprof CPU profile of the run here (soak profiling)")
	)
	flag.Parse()

	if *list {
		for _, n := range harness.ScenarioNames() {
			s, _ := harness.Lookup(n)
			fmt.Printf("%-10s %4d nodes, %s bootstrap, horizon %s\n",
				n, s.Nodes, s.Bootstrap, s.Horizon)
		}
		return
	}

	sc, err := harness.Lookup(*name)
	if err != nil {
		fatal(err)
	}
	if *noBatch {
		sc.Fleet.NoBatch = true
	}
	if *fanout > 0 {
		sc.Fleet.F = *fanout
	}
	if *fecK > 0 {
		sc.Fleet.FECSources = *fecK
	}
	if *fecR >= 0 {
		sc.Fleet.FECRepairs = *fecR
	}
	if *adaptive {
		sc.Fleet.AdaptiveFanout = true
	}
	if *shards > 0 {
		sc.Shards = *shards
	}
	var profileOut *os.File
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fatal(err)
		}
		profileOut = f
	}
	res, err := sc.Run(*seed)
	if profileOut != nil {
		// Stop and flush before any exit path — fatal os.Exits past defers —
		// so the profile covers exactly the campaign and is always complete.
		pprof.StopCPUProfile()
		profileOut.Close()
	}
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if err := os.WriteFile(*traceOut, res.Trace, 0o644); err != nil {
			fatal(err)
		}
	}
	enc, err := json.MarshalIndent(res.Report, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if sc.Fleet.FECRepairs > 0 {
		fmt.Fprintf(os.Stderr,
			"pmcast-chaos: fec k=%d r=%d  repair_bytes_per_event=%.1f  fec_recoveries=%d  rounds_to_delivery_p99=%.1f\n",
			sc.Fleet.FECSources, sc.Fleet.FECRepairs,
			res.Report.RepairBytesPerEvent, res.Report.FECRecoveries, res.Report.RoundsToDeliveryP99)
	}
	if sc.Fleet.AdaptiveFanout {
		fmt.Fprintf(os.Stderr,
			"pmcast-chaos: adaptive  est_loss_mean=%.4f  est_loss_peers=%d  boosts=%d  extra_targets=%d  budget_depths=%d\n",
			res.Report.EstLossMean, res.Report.EstLossPeers,
			res.Report.AdaptiveBoosts, res.Report.AdaptiveExtraTargets, res.Report.AdaptiveBudgetDepths)
	}
	if sc.MeasureSummaryFPR || res.Report.FoldRecomputes > 0 {
		fmt.Fprintf(os.Stderr,
			"pmcast-chaos: matcher  fold_recompiles=%d  fold_cache_hits=%d  fold_cache=%d(evict %d)  compiler=%d(evict %d)\n",
			res.Report.FoldRecomputes, res.Report.FoldCacheHits,
			res.Report.FoldCacheEntries, res.Report.FoldCacheEvictions,
			res.Report.CompilerEntries, res.Report.CompilerEvictions)
	}
	if sc.MeasureSummaryFPR {
		fmt.Fprintf(os.Stderr,
			"pmcast-chaos: summaries  false_positive_rate=%.4f  class_buckets=%d\n",
			res.Report.SummaryFPRate, len(res.Report.ClassReliability))
		for _, cr := range res.Report.ClassReliability {
			rel := fmt.Sprintf("mean=%.4f min=%.4f", cr.MeanReliability, cr.MinReliability)
			if cr.Audienced == 0 {
				rel = "n/a (no audience)"
			}
			fmt.Fprintf(os.Stderr,
				"pmcast-chaos:   bucket=%d  events=%d  reliability %s  fp_rate=%.4f\n",
				cr.Bucket, cr.Events, rel, cr.SummaryFPRate)
		}
	}
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmcast-chaos:", err)
	os.Exit(1)
}
