// Command pmcast-bench regenerates every figure and table of the paper's
// evaluation as CSV on stdout.
//
// Usage:
//
//	pmcast-bench -fig 4            # Figure 4: delivery vs matching rate
//	pmcast-bench -fig 5            # Figure 5: uninterested reception
//	pmcast-bench -fig 6            # Figure 6: scalability in subgroup size
//	pmcast-bench -fig 7            # Figure 7: tuned vs untuned
//	pmcast-bench -fig views        # Eq. 2/12 membership scalability table
//	pmcast-bench -fig rounds       # Eq. 13 tree vs flat round bounds
//	pmcast-bench -fig baselines    # pmcast vs flood/genuine/deterministic
//	pmcast-bench -fig all          # everything, sections separated by headers
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pmcast/internal/experiments"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pmcast-bench:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("pmcast-bench", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 4,5,6,7,views,rounds,baselines,all")
	runs := fs.Int("runs", 20, "Monte-Carlo runs per point")
	seed := fs.Int64("seed", 1, "base RNG seed")
	quick := fs.Bool("quick", false, "shrunk tree and sweep for fast runs")
	eps := fs.Float64("eps", 0.01, "message loss probability ε")
	tau := fs.Float64("tau", 0.001, "crash fraction τ")
	threshold := fs.Int("h", 8, "Figure 7 tuning threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := experiments.Options{
		Runs: *runs, Seed: *seed, Quick: *quick,
		Eps: *eps, Tau: *tau, Threshold: *threshold,
	}

	emit := map[string]func() error{
		"4":         func() error { return emitFig4(w, o) },
		"5":         func() error { return emitFig5(w, o) },
		"6":         func() error { return emitFig6(w, o) },
		"7":         func() error { return emitFig7(w, o) },
		"views":     func() error { return emitViews(w) },
		"rounds":    func() error { return emitRounds(w, o) },
		"baselines": func() error { return emitBaselines(w, o) },
		"ablation":  func() error { return emitAblation(w, o) },
	}
	if *fig == "all" {
		for _, k := range []string{"4", "5", "6", "7", "views", "rounds", "baselines", "ablation"} {
			fmt.Fprintf(w, "# --- figure %s ---\n", k)
			if err := emit[k](); err != nil {
				return err
			}
		}
		return nil
	}
	f, ok := emit[*fig]
	if !ok {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return f()
}

func emitFig4(w io.Writer, o experiments.Options) error {
	rows, err := experiments.Figure4(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "pd,delivery,delivery_ci95,analytic_reliability,rounds,messages,runs")
	for _, r := range rows {
		fmt.Fprintf(w, "%g,%.4f,%.4f,%.4f,%.1f,%.0f,%d\n",
			r.Pd, r.Delivery, r.DeliveryCI, r.AnalyticReliability, r.Rounds, r.Messages, r.Runs)
	}
	return nil
}

func emitFig5(w io.Writer, o experiments.Options) error {
	rows, err := experiments.Figure5(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "pd,uninterested_reception,reception_ci95,runs")
	for _, r := range rows {
		fmt.Fprintf(w, "%g,%.4f,%.4f,%d\n", r.Pd, r.UninterestedReception, r.ReceptionCI, r.Runs)
	}
	return nil
}

func emitFig6(w io.Writer, o experiments.Options) error {
	rows, err := experiments.Figure6(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "a,n,delivery_pd0.5,ci_0.5,delivery_pd0.2,ci_0.2,runs")
	for _, r := range rows {
		fmt.Fprintf(w, "%d,%d,%.4f,%.4f,%.4f,%.4f,%d\n",
			r.A, r.N, r.DeliveryAtHalf, r.CIHalf, r.DeliveryAtFifth, r.CIFifth, r.Runs)
	}
	return nil
}

func emitFig7(w io.Writer, o experiments.Options) error {
	rows, err := experiments.Figure7(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "pd,original,improved,original_uninterested,improved_uninterested,runs")
	for _, r := range rows {
		fmt.Fprintf(w, "%g,%.4f,%.4f,%.4f,%.4f,%d\n",
			r.Pd, r.Original, r.Improved, r.OriginalReception, r.ImprovedReception, r.Runs)
	}
	return nil
}

func emitViews(w io.Writer) error {
	fmt.Fprintln(w, "d,view_size")
	for _, r := range experiments.ViewSizeTable(10648, 3, 10) {
		fmt.Fprintf(w, "%d,%d\n", r.D, r.ViewSize)
	}
	return nil
}

func emitRounds(w io.Writer, o experiments.Options) error {
	rows, err := experiments.RoundsTable(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "pd,tree_rounds_eq13,flat_rounds,sim_rounds")
	for _, r := range rows {
		fmt.Fprintf(w, "%g,%d,%d,%.1f\n", r.Pd, r.TreeRounds, r.FlatRounds, r.SimRounds)
	}
	return nil
}

func emitAblation(w io.Writer, o experiments.Options) error {
	rows, err := experiments.AblationTable(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "variant,pd,delivery,uninterested,rounds,messages")
	for _, r := range rows {
		fmt.Fprintf(w, "%s,%g,%.4f,%.4f,%.1f,%.0f\n",
			r.Variant, r.Pd, r.Delivery, r.UninterestedReception, r.Rounds, r.Messages)
	}
	return nil
}

func emitBaselines(w io.Writer, o experiments.Options) error {
	rows, err := experiments.BaselineTable(o)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "pd,pmcast,flood,genuine,dettree,pmcast_unint,flood_unint,genuine_unint,dettree_unint,pmcast_msgs,flood_msgs,genuine_msgs,dettree_msgs")
	for _, r := range rows {
		fmt.Fprintf(w, "%g,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.0f,%.0f,%.0f,%.0f\n",
			r.Pd, r.Pmcast, r.Flood, r.Genuine, r.DetTree,
			r.PmcastUninterested, r.FloodUninterested, r.GenuineUninterested, r.DetTreeUninterested,
			r.PmcastMsgs, r.FloodMsgs, r.GenuineMsgs, r.DetTreeMsgs)
	}
	return nil
}
