// pmcast-benchjson converts `go test -bench` text output into a JSON
// artifact for the perf trajectory. The raw benchmark lines are preserved
// verbatim under "raw" — reconstruct a benchstat-compatible file with
//
//	jq -r '.raw[]' BENCH_pr3.json | benchstat old.txt -
//
// while "benchmarks" carries the parsed (name, iterations, metrics) rows for
// anything that wants numbers without a parser.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count=3 | pmcast-benchjson -o BENCH.json
//	pmcast-benchjson -o BENCH.json bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Row is one parsed benchmark result line.
type Row struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Output is the artifact layout.
type Output struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Row    `json:"benchmarks"`
	Raw        []string `json:"raw"`
}

func main() {
	out := flag.String("o", "", "write the JSON artifact here (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	res := Output{Benchmarks: []Row{}, Raw: []string{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			res.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			res.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			res.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			res.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res.Raw = append(res.Raw, line)
		if row, ok := parseLine(line); ok {
			res.Benchmarks = append(res.Benchmarks, row)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(res.Raw) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	enc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// parseLine splits one result line: name, iteration count, then repeating
// (value, unit) metric pairs as `go test -bench` emits them.
func parseLine(line string) (Row, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Row{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Row{}, false
	}
	row := Row{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Row{}, false
		}
		row.Metrics[fields[i+1]] = v
	}
	return row, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pmcast-benchjson:", err)
	os.Exit(1)
}
