// Command pmcast-analysis evaluates the paper's analytical model (Section 4)
// without simulation: expected reliability (Eq. 18), round bounds (Eq. 3,
// 11, 13) and membership scalability (Eq. 2/12), printed as CSV.
//
// Examples:
//
//	pmcast-analysis -mode reliability -a 22 -d 3 -r 3 -f 2
//	pmcast-analysis -mode rounds -pd 0.5
//	pmcast-analysis -mode views -n 10648 -r 3
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pmcast/internal/analysis"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pmcast-analysis:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("pmcast-analysis", flag.ContinueOnError)
	mode := fs.String("mode", "reliability", "reliability | rounds | views | depths")
	a := fs.Int("a", 22, "regular arity")
	d := fs.Int("d", 3, "tree depth")
	r := fs.Int("r", 3, "redundancy factor")
	f := fs.Float64("f", 2, "fanout")
	c := fs.Float64("c", 0, "Pittel constant")
	pd := fs.Float64("pd", 0.5, "matching rate (depths mode)")
	eps := fs.Float64("eps", 0.01, "message loss ε")
	tau := fs.Float64("tau", 0.001, "crash fraction τ")
	n := fs.Int("n", 10648, "population (views mode)")
	maxD := fs.Int("maxd", 10, "max depth (views mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	params := func(p float64) analysis.TreeParams {
		return analysis.TreeParams{A: *a, D: *d, R: *r, F: *f, C: *c, Pd: p, Eps: *eps, Tau: *tau}
	}
	sweep := []float64{0.01, 0.025, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

	switch *mode {
	case "reliability":
		fmt.Fprintln(w, "pd,reliability_eq18,expected_delivered,audience")
		for _, p := range sweep {
			m, err := analysis.NewTreeModel(params(p))
			if err != nil {
				return err
			}
			audience := float64(m.Params().N()) * p
			fmt.Fprintf(w, "%g,%.4f,%.1f,%.1f\n", p, m.Reliability(), m.ExpectedDelivered(), audience)
		}
	case "rounds":
		fmt.Fprintln(w, "pd,tree_rounds_eq13,flat_rounds_eq11")
		for _, p := range sweep {
			m, err := analysis.NewTreeModel(params(p))
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%g,%d,%d\n", p, m.TotalRounds(), m.FlatRounds())
		}
	case "views":
		fmt.Fprintln(w, "d,view_size_eq2")
		for i, s := range analysis.ViewSizeByDepth(*n, *r, *maxD) {
			fmt.Fprintf(w, "%d,%d\n", i+1, s)
		}
	case "depths":
		m, err := analysis.NewTreeModel(params(*pd))
		if err != nil {
			return err
		}
		fmt.Fprintln(w, "depth,p_i,m_i,eff_size,eff_fanout,rounds_T_i,expected_infected,r_i")
		for _, ds := range m.Depths() {
			fmt.Fprintf(w, "%d,%.4f,%d,%.2f,%.3f,%d,%.2f,%.4f\n",
				ds.Depth, ds.Pi, ds.Mi, ds.EffSize, ds.EffFanout, ds.Rounds,
				ds.ExpectedInfected, ds.NodeInfectProb)
		}
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}
