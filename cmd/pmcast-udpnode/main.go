// Command pmcast-udpnode runs a single pmcast process over real UDP
// sockets — one member of a group whose peers live in other processes or on
// other hosts. It is the deployment face of the pluggable transport API:
// the same runtime the simulations drive, attached to the UDP backend.
//
// The peer table maps tree addresses to sockets, inline or from a file of
// addr=host:port lines. Subscriptions use a small criterion language:
//
//	*                 match everything
//	b=2               integer equality
//	c>40  c<10        open numeric bounds
//	c>=40 c<=10       closed numeric bounds
//	e~Bob|Tom         string membership
//	u=true            boolean equality
//
// clauses joined by ';' are conjoined, as in the paper's Figure 2.
//
// Examples (three terminals):
//
//	pmcast-udpnode -addr 0.0 -space 2,2 -peers 0.0=127.0.0.1:7700,0.1=127.0.0.1:7701,1.0=127.0.0.1:7710 -sub 'price>100'
//	pmcast-udpnode -addr 0.1 -space 2,2 -peers ... -join 0.0 -sub '*'
//	pmcast-udpnode -addr 1.0 -space 2,2 -peers ... -join 0.0 -publish 'price=120,symbol=ACME' -linger 2s
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"pmcast"
)

func main() {
	if err := run(os.Stdout, os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pmcast-udpnode:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, args []string) error {
	fs := flag.NewFlagSet("pmcast-udpnode", flag.ContinueOnError)
	addrStr := fs.String("addr", "", "this node's tree address (required)")
	spaceSpec := fs.String("space", "", "comma-separated per-depth arities, e.g. 2,2,2 (required)")
	peerSpec := fs.String("peers", "", "addr=host:port pairs, comma-separated or @file with one pair per line (required)")
	join := fs.String("join", "", "contact address to join through (empty: this node bootstraps the group)")
	subSpec := fs.String("sub", "*", "subscription, e.g. 'b=2;c>40;e~Bob|Tom'")
	publish := fs.String("publish", "", "publish one event after convergence, e.g. 'price=120,symbol=ACME'")
	r := fs.Int("r", 2, "redundancy factor R")
	f := fs.Int("f", 3, "gossip fanout F")
	c := fs.Float64("c", 2, "Pittel constant")
	gossip := fs.Duration("gossip", 25*time.Millisecond, "gossip period P")
	membership := fs.Duration("membership", 0, "membership digest period (0: 4·gossip)")
	linger := fs.Duration("linger", 0, "exit after this long (0: run until interrupted)")
	decodeWorkers := fs.Int("decode-workers", runtime.NumCPU(),
		"ingress decode workers of the staged engine (0: serial single-goroutine loop)")
	encodeWorkers := fs.Int("encode-workers", runtime.NumCPU(),
		"egress encode/send workers of the staged engine (0: serial)")
	batchSend := fs.Bool("batch-send", true,
		"kernel-batched egress: flush egress queues with sendmmsg vectors (Linux; elsewhere the portable path runs regardless)")
	batchRecv := fs.Bool("batch-recv", true,
		"kernel-batched ingress: drain the socket with recvmmsg vectors (Linux)")
	gso := fs.Bool("gso", false,
		"UDP generic segmentation offload: coalesce equal-size same-peer frames into kernel-split super-datagrams (needs -batch-send)")
	gro := fs.Bool("gro", false,
		"UDP generic receive offload: let the kernel coalesce inbound bursts (needs -batch-recv)")
	rcvbuf := fs.Int("rcvbuf", 0, "requested SO_RCVBUF in bytes (0: kernel default)")
	sndbuf := fs.Int("sndbuf", 0, "requested SO_SNDBUF in bytes (0: kernel default)")
	statsEvery := fs.Duration("stats", 0,
		"print a transport/engine stats summary to stderr at this period, and once at exit (0: off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addrStr == "" || *spaceSpec == "" || *peerSpec == "" {
		return fmt.Errorf("-addr, -space and -peers are required")
	}

	space, err := parseSpace(*spaceSpec)
	if err != nil {
		return err
	}
	self, err := pmcast.ParseAddress(*addrStr)
	if err != nil {
		return err
	}
	sub, err := parseSubscription(*subSpec)
	if err != nil {
		return err
	}
	peers, err := parsePeers(*peerSpec)
	if err != nil {
		return err
	}
	res, err := pmcast.NewStaticResolver(peers)
	if err != nil {
		return err
	}
	// With decode workers, datagram unframing is deferred to the node's
	// ingress stage so it actually parallelizes instead of serializing on
	// the socket read loop.
	tr, err := pmcast.NewUDPTransport(pmcast.UDPConfig{
		Resolver:         res,
		DeferDecode:      *decodeWorkers > 0,
		NoBatchSend:      !*batchSend,
		NoBatchRecv:      !*batchRecv,
		GSO:              *gso,
		GRO:              *gro,
		ReadBufferBytes:  *rcvbuf,
		WriteBufferBytes: *sndbuf,
	})
	if err != nil {
		return err
	}
	defer tr.Close()

	n, err := pmcast.NewNode(tr,
		pmcast.WithAddr(self),
		pmcast.WithSpace(space),
		pmcast.WithGroupRedundancy(*r),
		pmcast.WithFanout(*f),
		pmcast.WithPittelC(*c),
		pmcast.WithSubscription(sub),
		pmcast.WithGossipInterval(*gossip),
		pmcast.WithMembershipInterval(*membership),
		pmcast.WithParallelism(*decodeWorkers, *encodeWorkers),
	)
	if err != nil {
		return err
	}
	n.Start()
	defer n.Stop()
	fmt.Fprintf(w, "%s up, subscribed to %s\n", self, sub)
	if *join != "" {
		contact, err := pmcast.ParseAddress(*join)
		if err != nil {
			return err
		}
		if err := n.Join(contact); err != nil {
			return err
		}
	}

	if *publish != "" {
		attrs, err := parseAttrs(*publish)
		if err != nil {
			return err
		}
		// Wait until the group is at least partly known before injecting.
		deadline := time.Now().Add(30 * time.Second)
		for n.KnownMembers() < 2 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		id, err := n.Publish(attrs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "published %s.%d\n", id.Origin, id.Seq)
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	var timeout <-chan time.Time
	if *linger > 0 {
		timeout = time.After(*linger)
	}
	var statsTick <-chan time.Time
	if *statsEvery > 0 {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		statsTick = ticker.C
		defer printStats(n, tr) // a final summary on any exit path
	}
	for {
		select {
		case ev, ok := <-n.Deliveries():
			if !ok {
				return nil
			}
			parts := make([]string, 0, 4)
			for _, name := range ev.Names() {
				parts = append(parts, fmt.Sprintf("%s=%v", name, ev.Attr(name)))
			}
			fmt.Fprintf(w, "delivered %s.%d: %s\n",
				ev.ID().Origin, ev.ID().Seq, strings.Join(parts, " "))
		case <-statsTick:
			printStats(n, tr)
		case <-interrupt:
			fmt.Fprintf(w, "leaving (%d members known)\n", n.KnownMembers())
			n.Leave()
			return nil
		case <-timeout:
			return nil
		}
	}
}

// printStats writes one transport/engine summary line pair to stderr. The
// malformed/dropped counters are the silent-loss signals a loopback soak
// watches for; the datagrams-per-syscall ratios are the kernel-batching
// amortization.
func printStats(n *pmcast.Node, tr *pmcast.UDPTransport) {
	st := tr.Stats()
	ratio := func(datagrams, syscalls int64) float64 {
		if syscalls == 0 {
			return 0
		}
		return float64(datagrams) / float64(syscalls)
	}
	fmt.Fprintf(os.Stderr,
		"stats: send %d dgrams / %d syscalls (%.1f/call, gso %d) | recv %d dgrams / %d syscalls (%.1f/call, gro %d) | malformed %d dropped %d | sockbuf r%d w%d\n",
		st.SentDatagrams, st.SendSyscalls, ratio(st.SentDatagrams, st.SendSyscalls), st.GSOSegments,
		st.RecvDatagrams, st.RecvSyscalls, ratio(st.RecvDatagrams, st.RecvSyscalls), st.GROSegments,
		st.Malformed, st.Dropped, st.ReadBufferBytes, st.WriteBufferBytes)
	envelopes, bytes := n.WireStats()
	flushes, flushed := n.EgressFlushStats()
	egressDropped, decodeFailed := n.EngineStats()
	fmt.Fprintf(os.Stderr,
		"stats: engine %d envelopes (%d bytes) | %d flushes carrying %d (%.1f/flush) | egress-drop %d decode-fail %d | members %d\n",
		envelopes, bytes, flushes, flushed, ratio(flushed, flushes),
		egressDropped, decodeFailed, n.KnownMembers())
}

func parseSpace(spec string) (pmcast.Space, error) {
	parts := strings.Split(spec, ",")
	arities := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return pmcast.Space{}, fmt.Errorf("space arity %q: %w", p, err)
		}
		arities[i] = v
	}
	return pmcast.NewSpace(arities...)
}

func parsePeers(spec string) (map[string]string, error) {
	var entries []string
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, err
		}
		entries = strings.Fields(string(data))
	} else {
		entries = strings.Split(spec, ",")
	}
	peers := make(map[string]string, len(entries))
	for _, kv := range entries {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("peer entry %q is not addr=host:port", kv)
		}
		peers[k] = v
	}
	return peers, nil
}

// parseSubscription compiles the CLI criterion language into a pmcast
// subscription: ';'-joined clauses, each constraining one attribute.
func parseSubscription(spec string) (pmcast.Subscription, error) {
	spec = strings.TrimSpace(spec)
	if spec == "*" || spec == "" {
		return pmcast.MatchAll(), nil
	}
	sub := pmcast.MatchAll()
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		attr, crit, err := parseClause(clause)
		if err != nil {
			return sub, err
		}
		sub = sub.Where(attr, crit)
	}
	return sub, nil
}

func parseClause(clause string) (string, pmcast.Criterion, error) {
	for _, op := range []string{">=", "<=", "~", ">", "<", "="} {
		attr, val, ok := strings.Cut(clause, op)
		if !ok {
			continue
		}
		attr, val = strings.TrimSpace(attr), strings.TrimSpace(val)
		if attr == "" || val == "" {
			break
		}
		switch op {
		case "~":
			return attr, pmcast.OneOf(strings.Split(val, "|")...), nil
		case "=":
			if i, err := strconv.ParseInt(val, 10, 64); err == nil {
				return attr, pmcast.EqInt(i), nil
			}
			if b, err := strconv.ParseBool(val); err == nil {
				return attr, pmcast.IsBool(b), nil
			}
			if x, err := strconv.ParseFloat(val, 64); err == nil {
				return attr, pmcast.EqFloat(x), nil
			}
			return "", pmcast.Criterion{}, fmt.Errorf("clause %q: %q is not a number or bool", clause, val)
		default:
			x, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return "", pmcast.Criterion{}, fmt.Errorf("clause %q: %w", clause, err)
			}
			switch op {
			case ">":
				return attr, pmcast.Gt(x), nil
			case "<":
				return attr, pmcast.Lt(x), nil
			case ">=":
				return attr, pmcast.Ge(x), nil
			case "<=":
				return attr, pmcast.Le(x), nil
			}
		}
	}
	return "", pmcast.Criterion{}, fmt.Errorf("clause %q: want attr=value, attr>num, attr<num or attr~a|b", clause)
}

// parseAttrs compiles 'k=v' pairs into typed event attributes: integers,
// floats and booleans by syntax, strings otherwise.
func parseAttrs(spec string) (map[string]pmcast.Value, error) {
	attrs := make(map[string]pmcast.Value)
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("attribute %q is not k=v", kv)
		}
		switch {
		case isInt(v):
			i, _ := strconv.ParseInt(v, 10, 64)
			attrs[k] = pmcast.Int(i)
		case isFloat(v):
			x, _ := strconv.ParseFloat(v, 64)
			attrs[k] = pmcast.Float(x)
		case v == "true" || v == "false":
			attrs[k] = pmcast.Bool(v == "true")
		default:
			attrs[k] = pmcast.Str(v)
		}
	}
	return attrs, nil
}

func isInt(s string) bool {
	_, err := strconv.ParseInt(s, 10, 64)
	return err == nil
}

func isFloat(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}
