// Benchmarks for the loss-aware adaptive fan-out loop: the ablation cells
// that BENCH_pr7.json records — the base fixed arm, the raised fixed arm,
// and the adaptive arm on the bursty-link noisy64 campaign, each reporting
// reliability and bytes/event as custom metrics — plus the PR 6 frontier
// acceptance cells re-run under Gilbert–Elliott bursts. One iteration is
// one full seeded campaign.
package pmcast_test

import (
	"fmt"
	"testing"

	"pmcast/internal/experiments"
	"pmcast/internal/harness"
	"pmcast/internal/transport"
)

// BenchmarkAdaptiveAblation runs the three ablation arms on noisy64 (~9%
// stationary loss in mean-length-5 bursts), one sub-benchmark per (arm,
// seed) over four seeds so the JSON artifact records every acceptance
// cell. The recorded claim: the adaptive arm's reliability matches the
// raised fixed arm's at fewer bytes/event, and beats the base fixed arm's
// outright, on every seed.
func BenchmarkAdaptiveAblation(b *testing.B) {
	base, err := harness.Lookup("noisy64")
	if err != nil {
		b.Fatal(err)
	}
	arms := []struct {
		name     string
		f        int
		adaptive bool
	}{
		{"fixed_f3", 3, false},
		{"fixed_f5", 5, false},
		{"adaptive_f3", 3, true},
	}
	for _, arm := range arms {
		for seed := int64(1); seed <= 4; seed++ {
			b.Run(fmt.Sprintf("%s/seed%d", arm.name, seed), func(b *testing.B) {
				var rel, minRel, bytes, boosts float64
				for i := 0; i < b.N; i++ {
					cell, err := experiments.AdaptiveCellAt(base, arm.name, seed, arm.f, arm.adaptive)
					if err != nil {
						b.Fatal(err)
					}
					rel += cell.MeanReliability
					minRel += cell.MinReliability
					bytes += cell.BytesPerEvent
					boosts += float64(cell.AdaptiveBoosts)
				}
				n := float64(b.N)
				b.ReportMetric(rel/n, "reliability")
				b.ReportMetric(minRel/n, "min-reliability")
				b.ReportMetric(bytes/n, "bytes/event")
				b.ReportMetric(boosts/n, "boosts")
			})
		}
	}
}

// BenchmarkFrontierPointBursty re-runs the PR 6 frontier acceptance cells
// under correlated loss: deep Gilbert–Elliott bursts (~28.6% stationary)
// instead of Bernoulli drops. The coded arm's Pareto win must survive the
// burstier fault model — the cells record where it lands.
func BenchmarkFrontierPointBursty(b *testing.B) {
	base, err := harness.Lookup("frontier64")
	if err != nil {
		b.Fatal(err)
	}
	link := transport.LinkModel{BadLoss: 1, PGB: 0.04, PBG: 0.10}
	cells := []struct {
		name    string
		f, k, r int
	}{
		{"coded_f6_k8_r2", 6, 8, 2},
		{"uncoded_f7", 7, 8, 0},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			var rel, bytes, rounds float64
			for i := 0; i < b.N; i++ {
				pt, err := experiments.FrontierPointLinked(base, 1, link, c.f, c.k, c.r)
				if err != nil {
					b.Fatal(err)
				}
				rel += pt.MeanReliability
				bytes += pt.BytesPerEvent
				rounds += pt.RoundsToDeliveryP99
			}
			n := float64(b.N)
			b.ReportMetric(rel/n, "reliability")
			b.ReportMetric(bytes/n, "bytes/event")
			b.ReportMetric(rounds/n, "rounds-p99")
		})
	}
}
