package pmcast_test

import (
	"testing"
	"time"

	"pmcast"
	"pmcast/internal/event"
)

// TestFacadeEndToEnd drives the public API only: a small cluster over the
// in-memory network, content-based subscriptions, publish, delivery.
func TestFacadeEndToEnd(t *testing.T) {
	net := pmcast.MustNetwork(pmcast.NetworkConfig{})
	space := pmcast.MustRegularSpace(3, 2)

	subs := map[string]pmcast.Subscription{
		"0.0": pmcast.Where("price", pmcast.Gt(100)),
		"0.1": pmcast.Where("price", pmcast.Between(50, 150)),
		"1.0": pmcast.Where("symbol", pmcast.OneOf("ACME")),
		"1.1": pmcast.Where("price", pmcast.Lt(10)),
	}
	nodes := make(map[string]*pmcast.Node)
	for key, sub := range subs {
		n, err := pmcast.NewNode(net,
			pmcast.WithAddr(pmcast.MustParseAddress(key)),
			pmcast.WithSpace(space),
			pmcast.WithGroupRedundancy(2),
			pmcast.WithFanout(3),
			pmcast.WithPittelC(2),
			pmcast.WithSubscription(sub),
			pmcast.WithGossipInterval(4*time.Millisecond),
			pmcast.WithMembershipInterval(6*time.Millisecond),
		)
		if err != nil {
			t.Fatal(err)
		}
		nodes[key] = n
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	contact := nodes["0.0"].Addr()
	for key, n := range nodes {
		if key == "0.0" {
			continue
		}
		if err := n.Join(contact); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range nodes {
			if n.KnownMembers() != len(nodes) {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// price=120, symbol=ACME matches 0.0 (price>100), 0.1 (50<price<150)
	// and 1.0 (symbol ACME) but not 1.1 (price<10).
	if _, err := nodes["1.1"].Publish(map[string]pmcast.Value{
		"price":  pmcast.Float(120),
		"symbol": pmcast.Str("ACME"),
	}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"0.0", "0.1", "1.0"} {
		select {
		case ev := <-nodes[key].Deliveries():
			if v, _ := ev.Attr("price").AsFloat(); v != 120 {
				t.Errorf("%s delivered wrong event %v", key, ev)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s did not deliver", key)
		}
	}
	select {
	case ev := <-nodes["1.1"].Deliveries():
		t.Errorf("uninterested publisher delivered %v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestFacadeUDPEndToEnd runs the same public-API flow over real loopback
// UDP sockets: the transport is swapped, nothing else changes. It runs the
// full multicore configuration of the staged engine — deferred datagram
// decoding on the transport, parallel decode and encode workers on every
// node — so the whole ingress → protocol → egress pipeline is exercised
// end to end over a real fabric in the tier-1 suite.
func TestFacadeUDPEndToEnd(t *testing.T) {
	peers := map[string]string{
		"0.0": "127.0.0.1:0", "0.1": "127.0.0.1:0",
		"1.0": "127.0.0.1:0", "1.1": "127.0.0.1:0",
	}
	res, err := pmcast.NewStaticResolver(peers)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := pmcast.NewUDPTransport(pmcast.UDPConfig{Resolver: res, DeferDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	space := pmcast.MustRegularSpace(2, 2)
	subs := map[string]pmcast.Subscription{
		"0.0": pmcast.Where("price", pmcast.Gt(100)),
		"0.1": pmcast.Where("price", pmcast.Lt(10)),
		"1.0": pmcast.MatchAll(),
		"1.1": pmcast.Where("symbol", pmcast.OneOf("ACME")),
	}
	nodes := make(map[string]*pmcast.Node)
	for key, sub := range subs {
		n, err := pmcast.NewNode(tr,
			pmcast.WithAddr(pmcast.MustParseAddress(key)),
			pmcast.WithSpace(space),
			pmcast.WithGroupRedundancy(2),
			pmcast.WithFanout(3),
			pmcast.WithPittelC(2),
			pmcast.WithSubscription(sub),
			pmcast.WithGossipInterval(4*time.Millisecond),
			pmcast.WithMembershipInterval(6*time.Millisecond),
			pmcast.WithParallelism(2, 2),
			pmcast.WithStageQueue(512),
		)
		if err != nil {
			t.Fatal(err)
		}
		nodes[key] = n
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	contact := nodes["0.0"].Addr()
	for key, n := range nodes {
		if key == "0.0" {
			continue
		}
		if err := n.Join(contact); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range nodes {
			if n.KnownMembers() != len(nodes) {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// price=120, symbol=ACME matches 0.0 (price>100), 1.0 (everything) and
	// 1.1 (symbol ACME) but not 0.1 (price<10).
	if _, err := nodes["0.1"].Publish(map[string]pmcast.Value{
		"price":  pmcast.Float(120),
		"symbol": pmcast.Str("ACME"),
	}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"0.0", "1.0", "1.1"} {
		select {
		case ev := <-nodes[key].Deliveries():
			if v, _ := ev.Attr("price").AsFloat(); v != 120 {
				t.Errorf("%s delivered wrong event %v", key, ev)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not deliver over UDP", key)
		}
	}
	select {
	case ev := <-nodes["0.1"].Deliveries():
		t.Errorf("uninterested publisher delivered %v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestFacadeSimulatorAndModel(t *testing.T) {
	s, err := pmcast.NewSimulator(pmcast.SimParams{A: 6, D: 2, R: 2, F: 2})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := s.RunMany(0.5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Delivery.Mean() <= 0 {
		t.Errorf("simulated delivery = %g", agg.Delivery.Mean())
	}
	m, err := pmcast.NewTreeModel(pmcast.TreeParams{A: 6, D: 2, R: 2, F: 2, Pd: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rel := m.Reliability(); rel <= 0 || rel > 1 {
		t.Errorf("model reliability = %g", rel)
	}
	if pmcast.Pittel(1000, 2, 0) <= 0 {
		t.Error("Pittel broken through facade")
	}
}

func TestFacadeSubscriptionLanguage(t *testing.T) {
	sub := pmcast.Where("b", pmcast.EqInt(2)).
		Where("c", pmcast.Gt(40)).
		Where("e", pmcast.OneOf("Bob", "Tom"))
	ev := pmcast.NewEventBuilder().
		Int("b", 2).Float("c", 41).Str("e", "Tom").
		Build(event.ID{Origin: "t", Seq: 1})
	if !sub.Matches(ev) {
		t.Error("subscription should match")
	}
	if pmcast.MatchAll().String() != "*" {
		t.Error("MatchAll wrong")
	}
	sum := pmcast.Summarize(sub, pmcast.Where("z", pmcast.Le(5)))
	if !sum.Matches(ev) {
		t.Error("summary should cover contributing subscription")
	}
}

// TestFacadeCodedCluster exercises WithRedundancy through the public API
// only: a small coded cluster delivers everything, and the publisher's
// FEC stats show repair symbols actually left on the wire.
func TestFacadeCodedCluster(t *testing.T) {
	net := pmcast.MustNetwork(pmcast.NetworkConfig{})
	space := pmcast.MustRegularSpace(3, 2)
	sub := pmcast.Where("b", pmcast.EqInt(1))
	nodes := make([]*pmcast.Node, 6)
	for i := range nodes {
		n, err := pmcast.NewNode(net,
			pmcast.WithAddr(space.AddressAt(i)),
			pmcast.WithSpace(space),
			pmcast.WithGroupRedundancy(2),
			pmcast.WithFanout(3),
			pmcast.WithPittelC(2),
			pmcast.WithSubscription(sub),
			pmcast.WithGossipInterval(4*time.Millisecond),
			pmcast.WithMembershipInterval(6*time.Millisecond),
			pmcast.WithRedundancy(4, 1),
		)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		n.Start()
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, n := range nodes {
			if n.KnownMembers() != len(nodes) {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	const events = 4
	for i := 0; i < events; i++ {
		if _, err := nodes[0].Publish(map[string]pmcast.Value{"b": pmcast.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes[1:] {
		got := 0
		for got < events {
			select {
			case <-n.Deliveries():
				got++
			case <-time.After(5 * time.Second):
				t.Fatalf("node %s delivered %d of %d", n.Addr(), got, events)
			}
		}
	}
	if st := nodes[0].FECStats(); st.RepairBytes == 0 {
		t.Errorf("publisher sent no repair bytes: %+v", st)
	}
}
