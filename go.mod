module pmcast

go 1.24
