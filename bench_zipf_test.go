// Benchmarks of the shared-summary matching engine under Zipf-skewed
// subscription workloads (PR 10) — the BENCH_pr10.json axes:
//
//   - BenchmarkZipfMatchStream: steady-state matching throughput of one
//     process profiling a stream of fresh Zipf-distributed events against
//     a skew-subscribed fleet, with the per-event comparison cost as a
//     custom metric;
//   - BenchmarkZipfSkewSweep: the legacy-vs-shared matcher sweep; its
//     fold-reduction and comparison-reduction metrics are the PR's ≥2×
//     acceptance criterion, and the benchmark fails outright if either
//     drops below 2×;
//   - BenchmarkZipfCampaign: the full zipf64 campaign, recording wall
//     time, fold recompiles and the measured summary false-positive rate.
//
// One sweep/campaign iteration is one full deterministic run; use
// -benchtime 1x.
package pmcast_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/experiments"
	"pmcast/internal/harness"
	"pmcast/internal/tree"
)

// zipfTree builds a 256-node 4^4 fleet subscribed through the Zipf
// workload model (512 topics, α=1, heavy-tailed counts, subtree locality).
func zipfTree(tb testing.TB) (*tree.Tree, *harness.ZipfWorkload, addr.Space) {
	tb.Helper()
	space := addr.MustRegular(4, 4)
	w := harness.NewZipfWorkload(harness.ZipfWorkload{
		Topics:   512,
		Alpha:    1.0,
		MeanSubs: 24,
		MaxSubs:  128,
		Locality: 0.8,
		Arity:    4,
		Seed:     1,
	})
	members := make([]tree.Member, space.Capacity())
	for i := range members {
		a := space.AddressAt(i)
		members[i] = tree.Member{Addr: a, Sub: w.SubscriptionFor(a, i)}
	}
	t, err := tree.Build(tree.Config{Space: space, R: 2}, members)
	if err != nil {
		tb.Fatal(err)
	}
	return t, w, space
}

// BenchmarkZipfMatchStream streams fresh Zipf-distributed events through
// one process's full-depth susceptibility profiling — the cold path every
// published event pays once before the cache serves its gossip rounds.
func BenchmarkZipfMatchStream(b *testing.B) {
	tr, w, space := zipfTree(b)
	proc, err := core.BuildProcess(tr, space.AddressAt(0), core.Config{F: 4, C: 3})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	evs := make([]event.Event, b.N)
	for i := range evs {
		class := rng.Int63n(512)
		evs[i] = event.New(
			event.ID{Origin: "bench", Seq: uint64(i)},
			w.EventFor(class, rng),
		)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := 1; d <= tr.Depth(); d++ {
			proc.ProfileFor(evs[i], d)
		}
	}
	b.StopTimer()
	ms := proc.MatchStats()
	if ms.Misses > 0 {
		b.ReportMetric(float64(ms.Comparisons)/float64(b.N), "comparisons/event")
	}
}

// BenchmarkZipfSkewSweep runs the legacy-vs-shared matcher sweep per Zipf
// exponent and reports the per-flux-wave cost reductions. The 2× floors
// are asserted, not just recorded: a regression fails the benchmark.
func BenchmarkZipfSkewSweep(b *testing.B) {
	for _, alpha := range []float64{0.5, 1.0, 1.5} {
		b.Run(fmt.Sprintf("alpha%.1f", alpha), func(b *testing.B) {
			var fold, comp float64
			for i := 0; i < b.N; i++ {
				cell, err := experiments.SkewSweepCellAt(experiments.SkewSweepOptions{}, alpha)
				if err != nil {
					b.Fatal(err)
				}
				if cell.FoldReduction < 2 || cell.ComparisonReduction < 2 {
					b.Fatalf("alpha=%g: fold %.2f×, comparisons %.2f× — below the 2× acceptance floor",
						alpha, cell.FoldReduction, cell.ComparisonReduction)
				}
				fold += cell.FoldReduction
				comp += cell.ComparisonReduction
			}
			n := float64(b.N)
			b.ReportMetric(fold/n, "fold-reduction")
			b.ReportMetric(comp/n, "comparison-reduction")
		})
	}
}

// BenchmarkZipfCampaign runs the zipf64 campaign end to end, reporting the
// fold meters and the measured regrouping false-positive rate alongside
// wall time.
func BenchmarkZipfCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := harness.Lookup("zipf64")
		if err != nil {
			b.Fatal(err)
		}
		res, err := sc.Run(1)
		if err != nil {
			b.Fatal(err)
		}
		rep := res.Report
		b.ReportMetric(float64(rep.WallMillis), "wall-ms")
		b.ReportMetric(float64(rep.FoldRecomputes), "fold-recompiles")
		b.ReportMetric(float64(rep.FoldCacheHits), "fold-cache-hits")
		b.ReportMetric(rep.SummaryFPRate, "summary-fp-rate")
		b.ReportMetric(rep.MeanReliability, "reliability")
	}
}
