// Package pmcast is a Go implementation of Probabilistic Multicast (pmcast),
// the gossip-based multicast algorithm of Eugster & Guerraoui (DSN 2002):
// scalable, probabilistically reliable dissemination of content-based
// publish/subscribe events to exactly the interested subset of a large
// process group.
//
// The package is a thin facade over the implementation packages:
//
//   - live nodes:      NewNetwork / NewNode → Publish / Subscribe / Deliveries
//   - subscriptions:   Where + Gt/Lt/Between/OneOf/EqInt criteria
//   - simulation:      NewSimulator (the paper's Monte-Carlo evaluation)
//   - analysis:        NewTreeModel (the paper's stochastic model, Eq. 3–18)
//
// Nodes run over a pluggable Transport: the in-memory simulation fabric
// (NewNetwork) or real UDP sockets (NewUDPTransport). The live runtime is a
// staged engine — parallel decode workers, a single-writer protocol
// goroutine, parallel encode/send workers — sized by WithParallelism;
// the default (0, 0) is the serial, deterministic configuration.
// Quickstart:
//
//	net := pmcast.MustNetwork(pmcast.NetworkConfig{})
//	space := pmcast.MustRegularSpace(4, 2) // 16 addresses: x.y, 0 ≤ x,y < 4
//	n, _ := pmcast.NewNode(net,
//		pmcast.WithAddr(pmcast.MustParseAddress("0.1")),
//		pmcast.WithSpace(space),
//		pmcast.WithGroupRedundancy(2),
//		pmcast.WithFanout(3),
//		pmcast.WithSubscription(pmcast.Where("price", pmcast.Gt(100))),
//	)
//	n.Start()
//	defer n.Stop()
//
// See the examples directory for runnable programs and DESIGN.md for the
// system inventory.
package pmcast

import (
	"pmcast/internal/addr"
	"pmcast/internal/analysis"
	"pmcast/internal/clock"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/node"
	"pmcast/internal/sim"
	"pmcast/internal/transport"
	"pmcast/internal/transport/udp"
)

// Addressing (paper Section 2.2).
type (
	// Address is a hierarchical process address x(1).….x(d).
	Address = addr.Address
	// Prefix is a partial address denoting a subgroup.
	Prefix = addr.Prefix
	// Space bounds an address space (depth and per-depth arities).
	Space = addr.Space
)

// ParseAddress parses a dotted address such as "128.178.73.3".
func ParseAddress(s string) (Address, error) { return addr.Parse(s) }

// MustParseAddress is ParseAddress that panics on error.
func MustParseAddress(s string) Address { return addr.MustParse(s) }

// NewAddress builds an address from digit components.
func NewAddress(digits ...int) Address { return addr.New(digits...) }

// NewSpace builds an address space with the given per-depth arities.
func NewSpace(arities ...int) (Space, error) { return addr.NewSpace(arities...) }

// RegularSpace builds the regular space of the paper's model: depth d,
// constant arity a, capacity a^d.
func RegularSpace(a, d int) (Space, error) { return addr.Regular(a, d) }

// MustRegularSpace is RegularSpace that panics on error.
func MustRegularSpace(a, d int) Space { return addr.MustRegular(a, d) }

// Events and typed attribute values.
type (
	// Event is an immutable set of named typed attributes.
	Event = event.Event
	// EventID uniquely identifies an event.
	EventID = event.ID
	// Value is a typed attribute value.
	Value = event.Value
	// EventBuilder accumulates attributes.
	EventBuilder = event.Builder
)

// Attribute value constructors.
var (
	// Int builds an integer attribute value.
	Int = event.Int
	// Float builds a floating-point attribute value.
	Float = event.Float
	// Str builds a string attribute value.
	Str = event.Str
	// Bool builds a boolean attribute value.
	Bool = event.Bool
)

// NewEventBuilder returns an empty event builder.
func NewEventBuilder() *EventBuilder { return event.NewBuilder() }

// Subscriptions (paper Section 2.3, Figure 2).
type (
	// Subscription is a conjunction of per-attribute criteria.
	Subscription = interest.Subscription
	// Criterion constrains a single attribute.
	Criterion = interest.Criterion
	// Summary is a regrouped (compacted, over-approximated) disjunction of
	// subscriptions, as carried by view lines.
	Summary = interest.Summary
)

// Criterion constructors, mirroring the paper's interest language.
var (
	// Gt matches numeric values strictly greater than x.
	Gt = interest.Gt
	// Ge matches numeric values ≥ x.
	Ge = interest.Ge
	// Lt matches numeric values strictly less than x.
	Lt = interest.Lt
	// Le matches numeric values ≤ x.
	Le = interest.Le
	// Between matches the open interval (lo, hi).
	Between = interest.Between
	// BetweenIncl matches the closed interval [lo, hi].
	BetweenIncl = interest.BetweenIncl
	// EqInt matches exactly the integer x.
	EqInt = interest.EqInt
	// EqFloat matches exactly the float x.
	EqFloat = interest.EqFloat
	// OneOf matches any of the given strings.
	OneOf = interest.OneOf
	// IsBool matches the boolean constant b.
	IsBool = interest.IsBool
	// AnyValue is the wildcard criterion.
	AnyValue = interest.Any
)

// Where starts a subscription with one criterion; chain further constraints
// with Subscription.Where.
func Where(attr string, c Criterion) Subscription {
	return interest.NewSubscription().Where(attr, c)
}

// MatchAll returns the subscription matching every event.
func MatchAll() Subscription { return interest.NewSubscription() }

// Summarize regroups subscriptions into an over-approximating summary.
func Summarize(subs ...Subscription) *Summary { return interest.Summarize(subs...) }

// Time. Everything time-dependent in the runtime — gossip tickers, failure
// sweeps, delayed fabric deliveries — goes through a Clock, so the same
// code runs on real timers in production and deterministically on a
// virtual-time event queue in tests.
type (
	// Clock tells time and schedules timers for the runtime.
	Clock = clock.Clock
	// VirtualClock is the deterministic clock: time moves only when
	// advanced, and callbacks run in strict order on the advancing
	// goroutine.
	VirtualClock = clock.Virtual
)

// RealClock returns the production clock (package time).
func RealClock() Clock { return clock.Real{} }

// NewVirtualClock returns a virtual clock for deterministic runs.
func NewVirtualClock() *VirtualClock { return clock.NewVirtual() }

// Transport fabric. The runtime depends only on these interfaces; backends
// decide what "the network" is.
type (
	// Transport is a pluggable network fabric processes attach to by
	// address: the in-memory Network, the UDP backend, or any custom
	// implementation.
	Transport = transport.Transport
	// Endpoint is one attached process's network interface.
	Endpoint = transport.Endpoint
	// Envelope is one delivered message.
	Envelope = transport.Envelope
	// Fabric is the fault-injection surface of simulated transports
	// (loss, partitions, drop accounting).
	Fabric = transport.Fabric
)

// In-memory fabric (the reference Transport, with fault injection).
type (
	// Network is the in-memory transport fabric.
	Network = transport.Network
	// NetworkConfig tunes loss, delay, link models and queue sizes.
	NetworkConfig = transport.Config
	// LinkModel layers Gilbert–Elliott bursty loss and latency jitter on
	// every fabric link (NetworkConfig.Link); the zero value disables it.
	LinkModel = transport.LinkModel
)

// NewNetwork builds an in-memory network fabric. It returns an error for
// inconsistent fault configurations (inverted delay/jitter bounds,
// probabilities outside [0, 1]).
func NewNetwork(cfg NetworkConfig) (*Network, error) { return transport.NewNetwork(cfg) }

// MustNetwork is NewNetwork that panics on a config error — for examples and
// tests with static configurations.
func MustNetwork(cfg NetworkConfig) *Network { return transport.MustNetwork(cfg) }

// UDP fabric (real sockets, wire-codec framing).
type (
	// UDPTransport sends pmcast messages as UDP datagrams.
	UDPTransport = udp.Transport
	// UDPConfig tunes the UDP transport.
	UDPConfig = udp.Config
	// UDPResolver maps tree addresses to UDP sockets.
	UDPResolver = udp.Resolver
	// StaticResolver is a static address → socket table; entries with
	// port 0 bind ephemeral ports and register themselves.
	StaticResolver = udp.StaticResolver
	// UDPStats is a snapshot of the UDP datapath counters — syscalls,
	// datagrams (their ratio is the kernel-batching amortization), GSO/GRO
	// segments, malformed/dropped datagrams and achieved socket buffers.
	UDPStats = udp.Stats
)

// NewUDPTransport builds a UDP transport over the configured resolver.
func NewUDPTransport(cfg UDPConfig) (*UDPTransport, error) { return udp.New(cfg) }

// NewStaticResolver builds a static resolver from dotted pmcast addresses
// to "host:port" strings, e.g. {"0.1": "127.0.0.1:7701"}.
func NewStaticResolver(peers map[string]string) (*StaticResolver, error) {
	return udp.NewStaticResolver(peers)
}

// Live runtime.
type (
	// Node is a live pmcast process.
	Node = node.Node
	// NodeConfig parameterizes a node; it is usually assembled through
	// NodeOption values rather than filled in literally.
	NodeConfig = node.Config
)

// NewNode attaches a new node to a transport fabric; call Start to run it.
// The node is parameterized by functional options, so new tuning knobs can
// be added without breaking existing callers:
//
//	n, err := pmcast.NewNode(tr,
//		pmcast.WithAddr(a), pmcast.WithSpace(space),
//		pmcast.WithGroupRedundancy(2), pmcast.WithFanout(3),
//		pmcast.WithSubscription(sub),
//	)
func NewNode(tr Transport, opts ...NodeOption) (*Node, error) {
	var cfg NodeConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return node.New(tr, cfg)
}

// Simulation (paper Section 5).
type (
	// SimParams configures a Monte-Carlo simulation campaign.
	SimParams = sim.Params
	// SimResult is one simulated dissemination.
	SimResult = sim.Result
	// SimAggregate summarizes a batch of runs.
	SimAggregate = sim.Aggregate
	// Simulator reproduces the paper's evaluation.
	Simulator = sim.Simulator
)

// NewSimulator builds a simulator for the given parameters.
func NewSimulator(p SimParams) (*Simulator, error) { return sim.New(p) }

// Analysis (paper Section 4).
type (
	// TreeParams parameterizes the analytical model.
	TreeParams = analysis.TreeParams
	// TreeModel evaluates reliability and round bounds (Eq. 3–18).
	TreeModel = analysis.TreeModel
)

// NewTreeModel evaluates the paper's stochastic model.
func NewTreeModel(p TreeParams) (*TreeModel, error) { return analysis.NewTreeModel(p) }

// Pittel evaluates the expected number of gossip rounds T(n, F) (Eq. 3).
func Pittel(n, f, c float64) float64 { return analysis.Pittel(n, f, c) }
