// Benchmarks for the coding layer: the hot symbol-arithmetic paths
// (encode is on every coded round's critical path, decode only on loss)
// and the frontier summary cells that BENCH_pr6.json records — one coded
// and one uncoded campaign at the acceptance point, reporting reliability
// and bytes/event as custom metrics.
package pmcast_test

import (
	"testing"

	"pmcast/internal/experiments"
	"pmcast/internal/fec"
	"pmcast/internal/harness"
)

const fecSymLen = 1024

func fecBenchShards(k int) [][]byte {
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, fecSymLen)
		for j := range src[i] {
			src[i][j] = byte(i*31 + j)
		}
	}
	return src
}

// BenchmarkFECEncode measures EncodeInto on preallocated shards — the
// steady-state shape the encoder uses. The xor case (r = 1) is the pure
// parity path and must not allocate.
func BenchmarkFECEncode(b *testing.B) {
	for _, tc := range []struct {
		name string
		k, r int
	}{
		{"xor_k8_r1", 8, 1},
		{"rs_k8_r2", 8, 2},
		{"rs_k16_r4", 16, 4},
	} {
		b.Run(tc.name, func(b *testing.B) {
			code, err := fec.NewCode(tc.k, tc.r)
			if err != nil {
				b.Fatal(err)
			}
			src := fecBenchShards(tc.k)
			repairs := make([][]byte, tc.r)
			for i := range repairs {
				repairs[i] = make([]byte, fecSymLen)
			}
			b.SetBytes(int64(tc.k * fecSymLen))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				code.EncodeInto(repairs, src)
			}
		})
	}
}

// TestXOREncodeZeroAlloc pins the allocation contract the benchmark only
// reports: the r = 1 parity encode over reused shards is allocation-free.
func TestXOREncodeZeroAlloc(t *testing.T) {
	code, err := fec.NewCode(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	src := fecBenchShards(8)
	repairs := [][]byte{make([]byte, fecSymLen)}
	allocs := testing.AllocsPerRun(100, func() {
		code.EncodeInto(repairs, src)
	})
	if allocs != 0 {
		t.Errorf("XOR encode allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkFECDecode measures Reconstruct with the worst tolerable hole
// count: r missing source symbols patched from r repair symbols.
func BenchmarkFECDecode(b *testing.B) {
	for _, tc := range []struct {
		name string
		k, r int
	}{
		{"xor_k8_r1", 8, 1},
		{"rs_k8_r2", 8, 2},
		{"rs_k16_r4", 16, 4},
	} {
		b.Run(tc.name, func(b *testing.B) {
			code, err := fec.NewCode(tc.k, tc.r)
			if err != nil {
				b.Fatal(err)
			}
			src := fecBenchShards(tc.k)
			repairs := make([][]byte, tc.r)
			for i := range repairs {
				repairs[i] = make([]byte, fecSymLen)
			}
			code.EncodeInto(repairs, src)
			shards := make([][]byte, tc.k+tc.r)
			b.SetBytes(int64(tc.k * fecSymLen))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(shards, src)
				copy(shards[tc.k:], repairs)
				for x := 0; x < tc.r; x++ {
					shards[x] = nil // the r hardest holes: all in the source rows
				}
				if err := code.Reconstruct(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrontierPoint runs the acceptance cells of the reliability/
// bytes frontier — coded low-fan-out against uncoded high-fan-out on
// frontier64 at 40% loss — and reports each cell's axes as custom
// metrics, so BENCH_pr6.json carries the frontier summary next to the
// micro-benchmarks. One iteration is one full seeded campaign.
func BenchmarkFrontierPoint(b *testing.B) {
	base, err := harness.Lookup("frontier64")
	if err != nil {
		b.Fatal(err)
	}
	cells := []struct {
		name    string
		f, k, r int
	}{
		{"coded_f6_k8_r2", 6, 8, 2},
		{"uncoded_f7", 7, 8, 0},
	}
	for _, c := range cells {
		b.Run(c.name, func(b *testing.B) {
			var rel, bytes, rounds float64
			for i := 0; i < b.N; i++ {
				pt, err := experiments.FrontierPointAt(base, 1, 0.40, c.f, c.k, c.r)
				if err != nil {
					b.Fatal(err)
				}
				rel += pt.MeanReliability
				bytes += pt.BytesPerEvent
				rounds += pt.RoundsToDeliveryP99
			}
			n := float64(b.N)
			b.ReportMetric(rel/n, "reliability")
			b.ReportMetric(bytes/n, "bytes/event")
			b.ReportMetric(rounds/n, "rounds-p99")
		})
	}
}
