// Benchmarks regenerating the paper's evaluation (one benchmark per figure)
// plus micro-benchmarks of the load-bearing primitives. Each figure bench
// runs one full Monte-Carlo dissemination per iteration at the exact paper
// parameters and reports the figure's y-axis value as a custom metric, so
//
//	go test -bench BenchmarkFigure4 -benchmem
//
// prints both the cost of a run and the reproduced reliability. The CSV
// tables behind the figures come from cmd/pmcast-bench.
package pmcast_test

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/analysis"
	"pmcast/internal/baseline"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/harness"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/node"
	"pmcast/internal/sim"
	"pmcast/internal/transport"
	"pmcast/internal/tree"
	"pmcast/internal/wire"
)

// fig45Params are the Figure 4/5 parameters: n ≈ 10000 (a=22, d=3), R=3, F=2.
func fig45Params() sim.Params {
	return sim.Params{A: 22, D: 3, R: 3, F: 2, Eps: 0.01, Tau: 0.001}
}

func benchDissemination(b *testing.B, params sim.Params, pd float64, metric string,
	value func(sim.Result) float64) {
	b.Helper()
	s, err := sim.New(params)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	var sum float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Run(pd, rng)
		if err != nil {
			b.Fatal(err)
		}
		sum += value(res)
	}
	b.ReportMetric(sum/float64(b.N), metric)
}

// BenchmarkFigure4 reproduces Figure 4: probability of delivery for
// interested processes across matching rates.
func BenchmarkFigure4(b *testing.B) {
	for _, pd := range []float64{0.05, 0.1, 0.2, 0.5, 1.0} {
		b.Run(fmt.Sprintf("pd=%g", pd), func(b *testing.B) {
			benchDissemination(b, fig45Params(), pd, "delivery/run",
				sim.Result.DeliveryRate)
		})
	}
}

// BenchmarkFigure5 reproduces Figure 5: probability of reception for
// uninterested processes.
func BenchmarkFigure5(b *testing.B) {
	for _, pd := range []float64{0.05, 0.1, 0.2, 0.5, 1.0} {
		b.Run(fmt.Sprintf("pd=%g", pd), func(b *testing.B) {
			benchDissemination(b, fig45Params(), pd, "uninterested/run",
				sim.Result.UninterestedReceptionRate)
		})
	}
}

// BenchmarkFigure6 reproduces Figure 6: scalability in the subgroup size a
// (d=3, R=4, F=3) at matching rates 0.5 and 0.2.
func BenchmarkFigure6(b *testing.B) {
	for _, a := range []int{10, 20, 30, 40} {
		for _, pd := range []float64{0.5, 0.2} {
			b.Run(fmt.Sprintf("a=%d/pd=%g", a, pd), func(b *testing.B) {
				params := sim.Params{A: a, D: 3, R: 4, F: 3, Eps: 0.01, Tau: 0.001}
				benchDissemination(b, params, pd, "delivery/run",
					sim.Result.DeliveryRate)
			})
		}
	}
}

// BenchmarkFigure7 reproduces Figure 7: the Section 5.3 tuning (threshold h)
// against the untuned algorithm at small matching rates.
func BenchmarkFigure7(b *testing.B) {
	for _, variant := range []struct {
		name string
		h    int
	}{{"original", 0}, {"improved", 8}} {
		for _, pd := range []float64{0.025, 0.05, 0.1} {
			b.Run(fmt.Sprintf("%s/pd=%g", variant.name, pd), func(b *testing.B) {
				params := fig45Params()
				params.Threshold = variant.h
				benchDissemination(b, params, pd, "delivery/run",
					sim.Result.DeliveryRate)
			})
		}
	}
}

// BenchmarkBaselines measures the Section 1 alternatives under the Figure 4
// environment for the message-cost comparison table.
func BenchmarkBaselines(b *testing.B) {
	const pd = 0.5
	n := fig45Params().N()
	b.Run("flood", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var msgs float64
		for i := 0; i < b.N; i++ {
			res, err := baseline.RunFlood(baseline.FloodParams{N: n, F: 2, Eps: 0.01, Tau: 0.001}, pd, rng)
			if err != nil {
				b.Fatal(err)
			}
			msgs += float64(res.Messages)
		}
		b.ReportMetric(msgs/float64(b.N), "msgs/run")
	})
	b.Run("genuine", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var msgs float64
		for i := 0; i < b.N; i++ {
			res, err := baseline.RunGenuine(baseline.GenuineParams{
				N: n, ViewSize: 66, F: 2, Eps: 0.01, Tau: 0.001}, pd, rng)
			if err != nil {
				b.Fatal(err)
			}
			msgs += float64(res.Messages)
		}
		b.ReportMetric(msgs/float64(b.N), "msgs/run")
	})
	b.Run("dettree", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var msgs float64
		for i := 0; i < b.N; i++ {
			res, err := baseline.RunDeterministicTree(baseline.DetTreeParams{
				A: 22, D: 3, R: 3, Eps: 0.01, Tau: 0.001}, pd, rng)
			if err != nil {
				b.Fatal(err)
			}
			msgs += float64(res.Messages)
		}
		b.ReportMetric(msgs/float64(b.N), "msgs/run")
	})
	b.Run("pmcast", func(b *testing.B) {
		benchDissemination(b, fig45Params(), pd, "msgs/run",
			func(r sim.Result) float64 { return float64(r.Messages) })
	})
}

// BenchmarkAnalysisModel measures the Eq. 3–18 evaluation (the per-figure
// analytic overlay).
func BenchmarkAnalysisModel(b *testing.B) {
	params := analysis.TreeParams{A: 22, D: 3, R: 3, F: 2, Pd: 0.5, Eps: 0.01, Tau: 0.001}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := analysis.NewTreeModel(params)
		if err != nil {
			b.Fatal(err)
		}
		_ = m.Reliability()
	}
}

// BenchmarkMarkovChain measures the flat-group distribution recursion
// (Eq. 9–10) at a paper-scale subgroup.
func BenchmarkMarkovChain(b *testing.B) {
	chain, err := analysis.NewChain(analysis.FlatParams{N: 66, F: 2, Eps: 0.01, Tau: 0.001})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = chain.ExpectedInfected(1, 8)
	}
}

// BenchmarkSubscriptionMatch measures content-based matching (the per-gossip
// hot path of live nodes).
func BenchmarkSubscriptionMatch(b *testing.B) {
	sub := interest.NewSubscription().
		Where("b", interest.EqInt(2)).
		Where("c", interest.Gt(40)).
		Where("e", interest.OneOf("Bob", "Tom"))
	ev := event.NewBuilder().Int("b", 2).Float("c", 41).Str("e", "Tom").
		Build(event.ID{Origin: "x", Seq: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sub.Matches(ev) {
			b.Fatal("must match")
		}
	}
}

// BenchmarkSummaryMatch measures matching against a regrouped summary (the
// delegate-side filter).
func BenchmarkSummaryMatch(b *testing.B) {
	sum := interest.NewSummaryWithBound(8)
	for i := 0; i < 50; i++ {
		sum.Add(interest.NewSubscription().
			Where("b", interest.EqInt(int64(i))).
			Where("c", interest.Gt(float64(i))))
	}
	ev := event.NewBuilder().Int("b", 25).Float("c", 30).Build(event.ID{Origin: "x", Seq: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum.Matches(ev)
	}
}

// BenchmarkSummaryRegroup measures interest regrouping (view aggregation).
func BenchmarkSummaryRegroup(b *testing.B) {
	subs := make([]interest.Subscription, 64)
	for i := range subs {
		subs[i] = interest.NewSubscription().
			Where("b", interest.Between(float64(i), float64(i+10))).
			Where("e", interest.OneOf(fmt.Sprintf("user%d", i%7)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = interest.Summarize(subs...)
	}
}

// BenchmarkTreeBuild measures constructing the delegate tree from a member
// snapshot (the membership-change hot path of live nodes).
func BenchmarkTreeBuild(b *testing.B) {
	space := addr.MustRegular(8, 3) // 512 members
	members := make([]tree.Member, 0, space.Capacity())
	for i := 0; i < space.Capacity(); i++ {
		members = append(members, tree.Member{
			Addr: space.AddressAt(i),
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(int64(i%9))),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tree.Build(tree.Config{Space: space, R: 3}, members); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBatch builds a representative round envelope: events events of the
// soak shape (one small integer attribute, tree-address origins).
func benchBatch(events int) wire.Batch {
	b := wire.Batch{}
	for i := 0; i < events; i++ {
		b.Gossips = append(b.Gossips, core.Gossip{
			Event: event.NewBuilder().Int("b", int64(i%4)).
				Build(event.ID{Origin: "0.1.2.3", Seq: uint64(i + 1)}),
			Depth: 2,
			Rate:  0.25,
			Round: i % 5,
		})
	}
	return b
}

// BenchmarkWireEncodeBatch is the allocation-regression bench of the batched
// encode path: steady-state encoding into a reused buffer must not allocate
// at all. The assertion runs inside the bench so a regression fails `go
// test`, not just drifts in a dashboard (the matching unit assertion lives
// in internal/wire's TestBatchCodecAllocBudget).
func BenchmarkWireEncodeBatch(b *testing.B) {
	for _, events := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			batch := benchBatch(events)
			buf := make([]byte, 0, 64<<10)
			if allocs := testing.AllocsPerRun(100, func() {
				out, err := wire.AppendBatch(buf[:0], batch)
				if err != nil {
					b.Fatal(err)
				}
				buf = out[:0]
			}); allocs != 0 {
				b.Fatalf("encode allocates %.1f/op, want 0", allocs)
			}
			size := wire.EncodedSize(batch)
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := wire.AppendBatch(buf[:0], batch)
				if err != nil {
					b.Fatal(err)
				}
				buf = out[:0]
			}
			b.ReportMetric(float64(size)/float64(events), "bytes/event")
		})
	}
}

// BenchmarkWireDecodeBatch is the decode-side allocation-regression bench:
// with an interning decoder, steady state costs at most one allocation per
// event (its attribute storage) plus a constant for the batch itself.
func BenchmarkWireDecodeBatch(b *testing.B) {
	for _, events := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("events=%d", events), func(b *testing.B) {
			data, err := wire.Encode(benchBatch(events))
			if err != nil {
				b.Fatal(err)
			}
			dec := wire.NewDecoder()
			if allocs := testing.AllocsPerRun(100, func() {
				if _, err := dec.Decode(data); err != nil {
					b.Fatal(err)
				}
			}); allocs > float64(events)+4 {
				b.Fatalf("decode allocates %.1f/op for %d events, want ≤ 1/event (+4)", allocs, events)
			}
			b.SetBytes(int64(len(data)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dec.Decode(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNodePublishStream measures sustained end-to-end throughput of the
// live runtime: one full soak-class campaign per iteration — 64 real nodes
// on the virtual clock, four publishers streaming for a virtual second under
// loss and a crash wave — reporting delivered events per virtual second and
// envelopes per published event.
func BenchmarkNodePublishStream(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{{"batched", false}, {"unbatched", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var eventsPerSec, envPerEvent, wall float64
			for i := 0; i < b.N; i++ {
				sc := harness.Soak64()
				sc.Fleet.NoBatch = mode.noBatch
				res, err := sc.Run(3)
				if err != nil {
					b.Fatal(err)
				}
				eventsPerSec += res.Report.EventsPerSec
				envPerEvent += res.Report.EnvelopesPerEvent
				wall += float64(res.Report.WallMillis)
			}
			n := float64(b.N)
			b.ReportMetric(eventsPerSec/n, "events/vsec")
			b.ReportMetric(envPerEvent/n, "envelopes/event")
			b.ReportMetric(wall/n, "wall-ms/run")
		})
	}
}

// BenchmarkEnginePublishStream is the multicore soak benchmark of the
// staged engine: a real-clock 36-node fleet over the in-memory fabric
// (wire accounting on, so every envelope pays its encode-measure cost),
// saturated by six concurrent publishers. Each iteration pushes a 240-event
// burst through the fleet and waits for dissemination to quiesce; the
// reported events/sec is total deliveries over wall time. Run it with
// -cpu 1,4,8: gossip ticks are far shorter than a burst's processing time,
// so tick coalescing makes throughput CPU-bound, and the staged
// configuration's events/sec scales with GOMAXPROCS (the acceptance bar is
// ≥2× at -cpu 4 over -cpu 1) while -cpu 1 reproduces what the old serial
// runtime could extract from one core. The serial sub-benchmark is the A/B
// control: the same fleet with every stage collapsed onto the protocol
// goroutine.
func BenchmarkEnginePublishStream(b *testing.B) {
	for _, mode := range []struct {
		name           string
		decode, encode int
	}{{"staged", 2, 2}, {"serial", 0, 0}} {
		b.Run(mode.name, func(b *testing.B) {
			const (
				fleetN     = 36
				publishers = 6
				perPub     = 40
			)
			space := addr.MustRegular(6, 2)
			net := transport.MustNetwork(transport.Config{QueueLen: 16384})
			defer net.Close()
			sub := interest.NewSubscription() // match-all: full fan-out per event
			recs := make([]membership.Record, fleetN)
			for i := range recs {
				recs[i] = membership.Record{Addr: space.AddressAt(i), Sub: sub, Stamp: 1, Alive: true}
			}
			nodes := make([]*node.Node, fleetN)
			for i := range nodes {
				n, err := node.New(net, node.Config{
					Addr: space.AddressAt(i), Space: space,
					R: 2, F: 3, C: 3,
					Subscription:       sub,
					GossipInterval:     500 * time.Microsecond,
					MembershipInterval: time.Hour, // membership quiesced: gossip is the subject
					SuspectAfter:       time.Hour,
					DeliveryBuffer:     8192,
					MeasureWire:        true,
					DecodeWorkers:      mode.decode,
					EncodeWorkers:      mode.encode,
					StageQueue:         8192,
					Seed:               int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				nodes[i] = n
			}
			defer func() {
				for _, n := range nodes {
					n.Stop()
				}
			}()
			var delivered atomic.Int64
			for _, n := range nodes {
				n.Membership().Apply(membership.Update{Records: recs})
				if err := n.WarmViews(); err != nil {
					b.Fatal(err)
				}
				n.Start()
				go func(c <-chan event.Event) {
					for range c {
						delivered.Add(1)
					}
				}(n.Deliveries())
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := delivered.Load()
				want := start + int64(publishers*perPub*fleetN)
				var wg sync.WaitGroup
				for p := 0; p < publishers; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						pub := nodes[p*(fleetN/publishers)]
						for k := 0; k < perPub; k++ {
							if _, err := pub.Publish(map[string]event.Value{"b": event.Int(int64(k % 4))}); err != nil {
								b.Error(err)
								return
							}
						}
					}(p)
				}
				wg.Wait()
				// Quiesce: the protocol is probabilistic, so wait for either
				// full delivery or a stretch with no progress at all.
				last, stalls := delivered.Load(), 0
				for delivered.Load() < want && stalls < 40 {
					time.Sleep(5 * time.Millisecond)
					if cur := delivered.Load(); cur == last {
						stalls++
					} else {
						last, stalls = cur, 0
					}
				}
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(delivered.Load())/secs, "events/sec")
			}
		})
	}
}

// BenchmarkSimRound measures one full paper-scale dissemination (the unit of
// every figure bench) for end-to-end throughput tracking.
func BenchmarkSimRound(b *testing.B) {
	s, err := sim.New(fig45Params())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(0.5, rng); err != nil {
			b.Fatal(err)
		}
	}
}
