package node

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/transport"
)

// oracleRecords materializes a converged roster for engine tests, the same
// shortcut the harness's oracle bootstrap takes.
func oracleRecords(space addr.Space, count int, subFor func(addr.Address) interest.Subscription) membership.Update {
	recs := make([]membership.Record, count)
	for i := 0; i < count; i++ {
		a := space.AddressAt(i)
		recs[i] = membership.Record{Addr: a, Sub: subFor(a), Stamp: 1, Alive: true}
	}
	return membership.Update{Records: recs}
}

// TestStopLifecycle is the Stop-safety regression suite: Stop must be
// idempotent and safe in every lifecycle state — before Start, twice, from
// several goroutines, after the transport died underneath the node — and
// the delivery channel must close exactly once, with late step-mode
// deliveries discarded into the dropped counter instead of panicking.
func TestStopLifecycle(t *testing.T) {
	space := addr.MustRegular(2, 1)
	mk := func(net transport.Transport) *Node {
		n, err := New(net, Config{
			Addr: space.AddressAt(0), Space: space, R: 1, F: 1,
			Subscription: subEq(1),
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}

	t.Run("stop before start leaves the node inert", func(t *testing.T) {
		n := mk(transport.MustNetwork(transport.Config{}))
		n.Stop()
		n.Start() // must not launch a runtime against the closed channels
		if _, err := n.Publish(map[string]event.Value{"b": event.Int(1)}); err != ErrStopped {
			t.Errorf("publish after stop-before-start: err=%v, want ErrStopped", err)
		}
		if _, ok := <-n.Deliveries(); ok {
			t.Error("delivery channel not closed")
		}
		n.Stop() // still idempotent
	})

	t.Run("double stop after start", func(t *testing.T) {
		n := mk(transport.MustNetwork(transport.Config{}))
		n.Start()
		n.Stop()
		n.Stop()
		if _, ok := <-n.Deliveries(); ok {
			t.Error("delivery channel not closed")
		}
	})

	t.Run("concurrent stops", func(t *testing.T) {
		n := mk(transport.MustNetwork(transport.Config{}))
		n.Start()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				n.Stop()
			}()
		}
		wg.Wait()
	})

	t.Run("stop after the transport closed underneath", func(t *testing.T) {
		net := transport.MustNetwork(transport.Config{})
		n := mk(net)
		n.Start()
		net.Close() // every endpoint force-detached
		n.Stop()    // must not panic or hang
	})

	t.Run("parallel engine winds down with its transport", func(t *testing.T) {
		net := transport.MustNetwork(transport.Config{})
		n, err := New(net, Config{
			Addr: space.AddressAt(0), Space: space, R: 1, F: 1,
			Subscription:  subEq(1),
			DecodeWorkers: 2,
			EncodeWorkers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		n.Start()
		net.Close() // ingress workers exit; the protocol stage must follow
		select {
		case <-n.done:
		case <-time.After(5 * time.Second):
			t.Fatal("protocol stage kept running after the transport died")
		}
		// Publish against the dead runtime must fail fast, not hang.
		if _, err := n.Publish(map[string]event.Value{"b": event.Int(1)}); err != ErrStopped {
			t.Errorf("publish on a dead engine: err=%v, want ErrStopped", err)
		}
		n.Stop()
	})

	t.Run("late step deliveries drop instead of panicking", func(t *testing.T) {
		n := mk(transport.MustNetwork(transport.Config{})) // step mode: never started
		gossip := func(seq uint64) transport.Envelope {
			ev := event.NewBuilder().Int("b", 1).Build(event.ID{Origin: "x", Seq: seq})
			return transport.Envelope{
				From:    space.AddressAt(1),
				To:      n.Addr(),
				Payload: core.Gossip{Event: ev, Depth: 1, Rate: 1},
			}
		}
		n.HandleEnvelope(gossip(1))
		select {
		case <-n.Deliveries():
		default:
			t.Fatal("live node did not deliver")
		}
		n.Stop()
		n.HandleEnvelope(gossip(2)) // channel is closed: must discard, not panic
		if d := n.DroppedDeliveries(); d != 1 {
			t.Errorf("dropped %d deliveries after stop, want 1", d)
		}
	})
}

// TestEngineConcurrentPublishFluxStop is the race-detector workout for the
// staged engine: a real-clock mini-fleet in a parallel configuration (two
// decode and two encode workers per node) under concurrent Publish from
// several goroutines — two of them racing on the same publisher —
// subscription flux, and a node hard-stopped mid-traffic. Assertions are
// loose on purpose; the test's job is to put every engine stage under the
// race detector (the CI race job runs the whole suite with -race).
func TestEngineConcurrentPublishFluxStop(t *testing.T) {
	net := transport.MustNetwork(transport.Config{QueueLen: 4096})
	space := addr.MustRegular(3, 2)
	const fleetN = 9
	subFor := func(a addr.Address) interest.Subscription {
		if a.Equal(space.AddressAt(8)) {
			return subEq(2) // the mid-traffic victim is uninterested
		}
		return subEq(1)
	}
	roster := oracleRecords(space, fleetN, subFor)
	nodes := make([]*Node, fleetN)
	for i := range nodes {
		n, err := New(net, Config{
			Addr: space.AddressAt(i), Space: space,
			R: 2, F: 3, C: 3,
			Subscription:       subFor(space.AddressAt(i)),
			GossipInterval:     2 * time.Millisecond,
			MembershipInterval: 20 * time.Millisecond,
			SuspectAfter:       time.Hour,
			DeliveryBuffer:     2048,
			MeasureWire:        true,
			DecodeWorkers:      2,
			EncodeWorkers:      2,
			StageQueue:         512,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	counts := make([]atomic.Int64, fleetN)
	for i, n := range nodes {
		n.Membership().Apply(roster)
		if err := n.WarmViews(); err != nil {
			t.Fatal(err)
		}
		n.Start()
		go func(i int, c <-chan event.Event) {
			for range c {
				counts[i].Add(1)
			}
		}(i, n.Deliveries())
	}

	const perPublisher = 15
	var wg sync.WaitGroup
	publish := func(n *Node) {
		defer wg.Done()
		for k := 0; k < perPublisher; k++ {
			if _, err := n.Publish(map[string]event.Value{"b": event.Int(1)}); err != nil {
				t.Errorf("publish: %v", err)
				return
			}
		}
	}
	// Four publisher goroutines, two racing on node 0.
	for _, n := range []*Node{nodes[0], nodes[0], nodes[1], nodes[2]} {
		wg.Add(1)
		go publish(n)
	}
	// Subscription flux on node 4 while traffic flows.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < 10; k++ {
			nodes[4].Subscribe(subEq(int64(1 + k%2)))
			time.Sleep(time.Millisecond)
		}
	}()
	// Hard-stop node 8 mid-traffic, from two goroutines at once.
	wg.Add(2)
	for g := 0; g < 2; g++ {
		go func() {
			defer wg.Done()
			time.Sleep(10 * time.Millisecond)
			nodes[8].Stop()
		}()
	}
	wg.Wait()

	// Nodes with a stable b=1 interest must (probabilistically, loss-free)
	// deliver essentially the whole stream.
	const published = 4 * perPublisher
	waitFor(t, 15*time.Second, func() bool {
		for _, i := range []int{3, 5, 6, 7} {
			if counts[i].Load() < int64(published*9/10) {
				return false
			}
		}
		return true
	}, "stable subscribers to catch the stream")
	for _, n := range nodes[:8] {
		if d := n.DroppedDeliveries(); d != 0 {
			t.Errorf("%s dropped %d deliveries", n.Addr(), d)
		}
	}
}

// stallTransport is a fabric whose sends block until released — the slowest
// imaginable network, for proving the protocol stage never blocks on it.
type stallTransport struct {
	release chan struct{}
}

func (st *stallTransport) Attach(a addr.Address) (transport.Endpoint, error) {
	return &stallEndpoint{
		addr:    a,
		release: st.release,
		in:      make(chan transport.Envelope),
		done:    make(chan struct{}),
	}, nil
}

func (st *stallTransport) Close() error { return nil }

type stallEndpoint struct {
	addr      addr.Address
	release   chan struct{}
	in        chan transport.Envelope
	done      chan struct{}
	closeOnce sync.Once
}

func (e *stallEndpoint) Addr() addr.Address { return e.addr }

func (e *stallEndpoint) Send(addr.Address, any) error {
	select {
	case <-e.release:
		return nil
	case <-e.done:
		return transport.ErrClosed
	}
}

func (e *stallEndpoint) Recv() <-chan transport.Envelope { return e.in }

func (e *stallEndpoint) Close() error {
	e.closeOnce.Do(func() {
		close(e.done)
		close(e.in)
	})
	return nil
}

// TestEgressOverflowDropsAndCounts pins the stage-queue contract: when the
// fabric stalls and the bounded egress queue fills, the protocol stage keeps
// ticking — send jobs are dropped and counted (EngineStats), never awaited.
func TestEgressOverflowDropsAndCounts(t *testing.T) {
	st := &stallTransport{release: make(chan struct{})}
	space := addr.MustRegular(4, 1)
	n, err := New(st, Config{
		Addr: space.AddressAt(0), Space: space,
		R: 2, F: 3, C: 3,
		Subscription:   interest.NewSubscription(),
		GossipInterval: time.Millisecond,
		SuspectAfter:   time.Hour,
		EncodeWorkers:  1,
		StageQueue:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Membership().Apply(oracleRecords(space, 4, func(addr.Address) interest.Subscription {
		return interest.NewSubscription()
	}))
	if err := n.WarmViews(); err != nil {
		t.Fatal(err)
	}
	n.Start()
	t.Cleanup(func() {
		close(st.release) // unwedge the egress worker so Stop can join it
		n.Stop()
	})
	for k := 0; k < 8; k++ {
		if _, err := n.Publish(map[string]event.Value{"b": event.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		drops, _ := n.EngineStats()
		return drops > 0
	}, "egress overflow to be counted")
}
