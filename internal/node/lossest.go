// The per-peer loss estimator behind adaptive fan-out: a passive observer
// that piggybacks on traffic the protocol already sends.
//
// Every outgoing sub-message addressed to a peer advances a cumulative
// per-destination counter, and the digests and heartbeats the membership
// layer already emits carry that counter as a beacon (the Sent field): the
// cumulative number of sub-messages the sender has addressed to the beacon's
// destination, up to and including the beacon itself in the batch's canonical
// order. The receiver counts what actually arrives from each peer, so on a
// lossless link the beacon and the local counter agree exactly, and on a
// lossy one the shortfall over a beacon-to-beacon window is a direct loss
// measurement:
//
//	loss ≈ 1 − (parts received in window) / (parts sent in window)
//
// Windows shorter than lossEstMinWindow parts are accumulated rather than
// sampled (a 1-of-2 shortfall is noise, not signal), and samples fold into
// an EWMA so a burst decays instead of pinning the estimate. A beacon whose
// counter runs backwards means the peer restarted (rejoin): the window and
// the estimate reset, because history across an identity reset is
// meaningless.
//
// All methods are safe for concurrent use; in the staged engine the writers
// are the protocol stage (stamping in emit, counting in handle) while
// readers are the core.Process tuning loop (same stage) and stats snapshots
// (any goroutine).

package node

import (
	"sync"

	"pmcast/internal/addr"
	"pmcast/internal/membership"
	"pmcast/internal/wire"
)

const (
	// lossEstMinWindow is the minimum number of sender-side parts between
	// folded samples: beacons arriving before the window fills extend it.
	lossEstMinWindow = 8
	// lossEstAlpha is the EWMA weight of the newest window's loss sample.
	lossEstAlpha = 0.5
)

// peerLossState is one directed link's bookkeeping. sentTo counts parts we
// addressed to the peer; the rest tracks the inbound direction — what the
// peer's beacons claim versus what we saw arrive.
type peerLossState struct {
	sentTo     uint32  // cumulative parts addressed to this peer (outbound)
	recvFrom   uint32  // cumulative parts received from this peer (inbound)
	beaconBase uint32  // peer's counter at the last closed window
	recvBase   uint32  // our recvFrom at the last closed window
	synced     bool    // a first beacon anchored the window bases
	est        float64 // EWMA loss estimate for the inbound direction
	samples    int     // windows folded into est
}

// lossEstimator tracks per-peer send/receive counters and loss estimates,
// keyed by address key (addr.Address.Key()).
type lossEstimator struct {
	mu    sync.Mutex
	peers map[string]*peerLossState
}

func newLossEstimator() *lossEstimator {
	return &lossEstimator{peers: make(map[string]*peerLossState)}
}

func (e *lossEstimator) peerLocked(key string) *peerLossState {
	st := e.peers[key]
	if st == nil {
		st = &peerLossState{}
		e.peers[key] = st
	}
	return st
}

// advanceOut charges parts outgoing sub-messages to dest and returns the
// cumulative count *before* this message — the base a beacon stamp adds its
// canonical in-batch position to.
func (e *lossEstimator) advanceOut(dest string, parts int) uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.peerLocked(dest)
	base := st.sentTo
	st.sentTo += uint32(parts)
	return base
}

// noteRecv counts parts sub-messages that arrived from a peer.
func (e *lossEstimator) noteRecv(from string, parts int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peerLocked(from).recvFrom += uint32(parts)
}

// observeBeacon folds one received beacon (a Sent stamp from a digest or
// heartbeat). Call it after noteRecv has counted the beacon's own envelope,
// so a lossless window compares equal.
func (e *lossEstimator) observeBeacon(from string, sent uint32) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.peerLocked(from)
	// Serial-number arithmetic (RFC 1982 style): the counters are uint32 and
	// a sustained stream wraps them, so "ran backwards" cannot be tested with
	// an ordinary comparison — a beacon just past 2^32 would read as smaller
	// than a base just before it and reset a perfectly healthy window. The
	// modular delta disambiguates: a forward step lands in [0, 2^31), a
	// genuine restart (or a beacon reordered across a reset) lands in the
	// upper half.
	sentDelta := sent - st.beaconBase
	if !st.synced || sentDelta >= 1<<31 {
		// First contact, or the peer's counter ran backwards — a restart
		// (rejoin) or a reordered beacon. Either way the open window spans
		// an identity we can't account for: anchor fresh and drop the
		// estimate rather than report phantom loss.
		st.beaconBase = sent
		st.recvBase = st.recvFrom
		st.synced = true
		st.est = 0
		st.samples = 0
		return
	}
	if sentDelta < lossEstMinWindow {
		return // window too small to be signal; keep accumulating
	}
	recvDelta := st.recvFrom - st.recvBase
	if recvDelta > sentDelta {
		// More arrivals than the beacon accounts for: a beacon overtaken by
		// reordering. Clamp — loss can't be negative.
		recvDelta = sentDelta
	}
	sample := 1 - float64(recvDelta)/float64(sentDelta)
	if st.samples == 0 {
		st.est = sample
	} else {
		st.est = lossEstAlpha*sample + (1-lossEstAlpha)*st.est
	}
	st.samples++
	st.beaconBase = sent
	st.recvBase = st.recvFrom
}

// Estimate reports the loss estimate toward a peer. ok is false until at
// least one full window has been measured — callers fall back to their
// configured assumption (core.Config.AssumedLoss) for peers with no signal,
// so zero-traffic links never read as lossless.
func (e *lossEstimator) Estimate(key string) (float64, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.peers[key]
	if st == nil || st.samples == 0 {
		return 0, false
	}
	return st.est, true
}

// LossEstStats is a snapshot of the estimator for reports and debugging.
type LossEstStats struct {
	// TrackedPeers is the number of directed links with any bookkeeping.
	TrackedPeers int
	// MeasuredPeers is the number with at least one full measured window.
	MeasuredPeers int
	// MeanLoss is the mean estimate over measured peers (0 when none).
	MeanLoss float64
}

// stampOutgoing charges an outgoing payload to the destination's sent
// counter and stamps any digest/heartbeat beacon it carries with the
// cumulative count at that sub-message's position in the batch's canonical
// order (gossips, repairs, update, digest, heartbeat) — the same order a
// decomposing fabric delivers them, so a lossless link's receive counter
// reads exactly the beacon value when the beacon arrives. Beacon-carrying
// payloads are copied before stamping: egress workers encode asynchronously
// and the membership layer's pointers may be shared.
func (n *Node) stampOutgoing(to addr.Address, payload any) any {
	key := to.Key()
	switch m := payload.(type) {
	case wire.Batch:
		base := n.est.advanceOut(key, m.Parts())
		pos := uint32(len(m.Gossips))
		for _, g := range m.FEC {
			pos += uint32(len(g.Repairs))
		}
		if m.Update != nil {
			pos++
		}
		if m.Digest != nil {
			pos++
			d := *m.Digest
			d.Sent = base + pos
			m.Digest = &d
		}
		if m.Heartbeat != nil {
			pos++
			hb := *m.Heartbeat
			hb.Sent = base + pos
			m.Heartbeat = &hb
		}
		return m
	case membership.Digest:
		m.Sent = n.est.advanceOut(key, 1) + 1
		return m
	case membership.Heartbeat:
		m.Sent = n.est.advanceOut(key, 1) + 1
		return m
	default:
		n.est.advanceOut(key, 1)
		return payload
	}
}

// observeIncoming counts one received payload's sub-messages and folds any
// beacon it carries. Inside a batch the counting is positional: each beacon
// compares against the receive counter as of its own canonical slot, not the
// whole envelope. A zero Sent is "no beacon" — the sender isn't running an
// estimator (the wire zero value).
func (n *Node) observeIncoming(from addr.Address, payload any) {
	key := from.Key()
	switch m := payload.(type) {
	case wire.Batch:
		counted := 0
		prefix := len(m.Gossips)
		for _, g := range m.FEC {
			prefix += len(g.Repairs)
		}
		if m.Update != nil {
			prefix++
		}
		if m.Digest != nil {
			prefix++
			n.est.noteRecv(key, prefix-counted)
			counted = prefix
			if m.Digest.Sent > 0 {
				n.est.observeBeacon(key, m.Digest.Sent)
			}
		}
		if m.Heartbeat != nil {
			prefix++
			n.est.noteRecv(key, prefix-counted)
			counted = prefix
			if m.Heartbeat.Sent > 0 {
				n.est.observeBeacon(key, m.Heartbeat.Sent)
			}
		}
		if prefix > counted {
			n.est.noteRecv(key, prefix-counted)
		}
	case membership.Digest:
		n.est.noteRecv(key, 1)
		if m.Sent > 0 {
			n.est.observeBeacon(key, m.Sent)
		}
	case membership.Heartbeat:
		n.est.noteRecv(key, 1)
		if m.Sent > 0 {
			n.est.observeBeacon(key, m.Sent)
		}
	default:
		n.est.noteRecv(key, 1)
	}
}

// LossEstimates reports the estimator snapshot; the zero value when
// AdaptiveFanout is off.
func (n *Node) LossEstimates() LossEstStats {
	if n.est == nil {
		return LossEstStats{}
	}
	return n.est.stats()
}

func (e *lossEstimator) stats() LossEstStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := LossEstStats{TrackedPeers: len(e.peers)}
	var sum float64
	for _, st := range e.peers {
		if st.samples > 0 {
			s.MeasuredPeers++
			sum += st.est
		}
	}
	if s.MeasuredPeers > 0 {
		s.MeanLoss = sum / float64(s.MeasuredPeers)
	}
	return s
}
