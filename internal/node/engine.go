// The staged engine: Start's concurrent runtime, decomposed so a busy node
// uses as many cores as its traffic deserves.
//
//	endpoint ──▶ ingress (N decode workers) ──▶ protocol (1 goroutine) ──▶ egress (M send workers) ──▶ endpoint
//
// The protocol stage is the single writer of all protocol state —
// membership folds, tree views, the core.Process, the RNG, the seen-set.
// Because only it mutates, nothing in the hot path contends on the state
// lock; the ingress workers own the per-worker wire decoders (intern tables
// are goroutine-local), and the egress workers own the encode/send cost
// (the pooled wire encoders and the socket writes). Stages are connected by
// bounded queues: ingress backpressures into the transport's inbox (which
// drops on overflow, like a UDP socket buffer), while the protocol stage
// never blocks on egress — a full egress queue drops the send job and
// counts it (EngineStats), exactly the failure semantics a kernel socket
// buffer would impose.
//
// With DecodeWorkers and EncodeWorkers both zero the stages collapse onto
// the protocol goroutine and run() is precisely the serial event loop of
// earlier revisions — the deterministic configuration, also reachable
// synchronously through the step-mode API (step.go).

package node

import (
	"sync"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/transport"
	"pmcast/internal/wire"
)

// protoMsg is one unit of protocol-stage input: an inbound envelope from
// the ingress stage, or a local publish handed off by Publish.
type protoMsg struct {
	env transport.Envelope
	pub *publishReq
}

// publishReq carries a locally published event to the protocol stage and
// its acceptance result back to the publisher.
type publishReq struct {
	ev   event.Event
	errc chan error
}

// egressJob is one outgoing envelope: the egress workers encode (via the
// transport) and send it.
type egressJob struct {
	to      addr.Address
	payload any
}

// run is the protocol stage: the one goroutine that mutates protocol state
// while the engine is live. It brings up the ingress and egress stages
// around itself when the configuration asks for parallelism.
func (n *Node) run() {
	defer close(n.done)
	if n.cfg.EncodeWorkers > 0 {
		// Closed when the protocol stage exits, so the workers drain the
		// remaining jobs and quit before Stop joins them.
		defer close(n.egressCh)
		for i := 0; i < n.cfg.EncodeWorkers; i++ {
			n.wg.Add(1)
			go n.egressLoop()
		}
	}
	inbox := n.ep.Recv()
	var ingressDone chan struct{}
	if n.cfg.DecodeWorkers > 0 {
		inbox = nil // the ingress workers own the endpoint; we read protoCh
		ingressDone = make(chan struct{})
		var ingress sync.WaitGroup
		for i := 0; i < n.cfg.DecodeWorkers; i++ {
			n.wg.Add(1)
			ingress.Add(1)
			go func() {
				defer ingress.Done()
				n.ingressLoop()
			}()
		}
		// When every ingress worker has exited — the endpoint's Recv closed
		// underneath the node — the protocol stage must wind down too, just
		// as the serial loop returns on a closed inbox.
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			ingress.Wait()
			close(ingressDone)
		}()
	}
	gossip := n.cfg.Clock.NewTicker(n.cfg.GossipInterval)
	defer gossip.Stop()
	memTick := n.cfg.Clock.NewTicker(n.cfg.MembershipInterval)
	defer memTick.Stop()
	sweep := n.cfg.Clock.NewTicker(n.cfg.SuspectAfter / 2)
	defer sweep.Stop()

	for {
		select {
		case <-n.stop:
			return
		case env, ok := <-inbox: // nil (never ready) when ingress workers run
			if !ok {
				return
			}
			n.handle(env)
		case <-ingressDone: // nil (never ready) in the serial configuration
			return // transport closed underneath the node
		case m := <-n.protoCh: // nil (never ready) in the serial configuration
			if m.pub != nil {
				m.pub.errc <- n.applyPublish(m.pub.ev)
			} else {
				n.handle(m.env)
			}
		case <-gossip.C():
			n.tickGossip()
		case <-memTick.C():
			n.tickMembership()
		case <-sweep.C():
			n.mem.SweepFailures()
		}
	}
}

// Stage batch widths. egressFlushMax bounds how many queued send jobs one
// egress worker hands the endpoint per SendMany flush — on the UDP backend
// that is up to four sendmmsg vectors of 64 — and ingressRecvBatch is how
// many envelopes one ingress worker pulls per RecvMany wakeup (matching the
// transport's kernel-side recvmmsg vector plus slack).
const (
	egressFlushMax   = 256
	ingressRecvBatch = 64
)

// ingressLoop is one ingress-stage worker: it drains the endpoint —
// concurrently with its siblings — decodes deferred frames with its own
// interning decoder, and hands typed messages to the protocol stage. A full
// protocol queue blocks the worker (backpressure into the transport inbox),
// never the protocol stage itself. Endpoints with a batch seam
// (transport.BatchReceiver) are drained a burst at a time — one worker
// wakeup per kernel receive batch instead of one per datagram.
func (n *Node) ingressLoop() {
	defer n.wg.Done()
	dec := wire.NewDecoder()
	forward := func(env transport.Envelope) bool {
		if !n.decodeRaw(dec, &env) {
			return true
		}
		select {
		case n.protoCh <- protoMsg{env: env}:
			return true
		case <-n.stop:
			return false
		}
	}
	if br, ok := n.ep.(transport.BatchReceiver); ok {
		batch := make([]transport.Envelope, ingressRecvBatch)
		for {
			m, alive := br.RecvMany(batch)
			for i := 0; i < m; i++ {
				env := batch[i]
				batch[i] = transport.Envelope{}
				if !forward(env) {
					return
				}
			}
			if !alive {
				return
			}
		}
	}
	for env := range n.ep.Recv() {
		if !forward(env) {
			return
		}
	}
}

// egressLoop is one egress-stage worker: it consumes send jobs until the
// protocol stage closes the queue, encoding (inside the transport send) and
// counting wire cost as it goes. When the endpoint offers a batch seam
// (transport.BatchSender), the worker greedily drains whatever the queue
// already holds and hands the whole run over in one SendMany — the flush
// the UDP backend turns into sendmmsg vectors. Per-message semantics are
// identical to sending one at a time (the seam guarantees it), so the
// serial configuration and non-batching fabrics are untouched.
func (n *Node) egressLoop() {
	defer n.wg.Done()
	bs, ok := n.ep.(transport.BatchSender)
	if !ok {
		for job := range n.egressCh {
			_ = n.send(job.to, job.payload)
		}
		return
	}
	batch := make([]transport.Outgoing, 0, egressFlushMax)
	for job := range n.egressCh {
		batch = append(batch[:0], transport.Outgoing{To: job.to, Payload: job.payload})
	drain:
		for len(batch) < egressFlushMax {
			select {
			case j, open := <-n.egressCh:
				if !open {
					break drain // flush below, then the outer range exits
				}
				batch = append(batch, transport.Outgoing{To: j.to, Payload: j.payload})
			default:
				break drain
			}
		}
		n.sendMany(bs, batch)
	}
}

// emit hands one outgoing protocol message to the egress stage, or sends it
// inline when no egress workers run. The protocol stage never blocks on a
// slow fabric: a full egress queue drops the envelope and counts it, the
// same silent-loss semantics as an overflowing UDP socket buffer.
func (n *Node) emit(to addr.Address, payload any) {
	if n.est != nil {
		payload = n.stampOutgoing(to, payload)
	}
	if n.egressOn {
		select {
		case n.egressCh <- egressJob{to: to, payload: payload}:
		default:
			n.egressDrops.Add(1)
		}
		return
	}
	_ = n.send(to, payload)
}

// EngineStats reports staged-runtime counters: send jobs dropped because
// the egress queue was full (always zero in serial configurations, which
// send inline), and inbound frames that failed to decode — counted wherever
// the decoding happened, on an ingress worker or on the serial/step path of
// a deferred-decode fabric.
func (n *Node) EngineStats() (egressDropped, malformed int64) {
	return n.egressDrops.Load(), n.malformed.Load()
}

// EgressFlushStats reports the egress stage's queue-flush batching: how
// many SendMany flushes the workers issued and how many envelopes those
// flushes carried. envelopes/flushes is the engine-side amortization handed
// to the transport (the kernel-side amortization — datagrams per syscall —
// is the transport's to report; see udp.Transport.Stats). Both zero in
// serial configurations and on fabrics without a batch seam.
func (n *Node) EgressFlushStats() (flushes, envelopes int64) {
	return n.egressFlushes.Load(), n.egressFlushed.Load()
}
