// Package node is the asynchronous pmcast runtime: one goroutine-driven
// process binding the dissemination algorithm (internal/core), the
// membership service (internal/membership) and a transport endpoint.
//
// A Node periodically executes the gossip task (the paper's "every P
// milliseconds"), periodically exchanges membership digests (gossip pull),
// sweeps its failure detector, and rebuilds its tree views whenever the
// membership version moves. Events are published with Publish and consumed
// from the Deliveries channel.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/transport"
	"pmcast/internal/tree"
	"pmcast/internal/wire"
)

// Errors reported by the runtime.
var (
	ErrStopped    = errors.New("node: stopped")
	ErrNotStarted = errors.New("node: not started")
)

// Config parameterizes a node.
type Config struct {
	// Addr is the node's hierarchical address (its place in the tree).
	Addr addr.Address
	// Space is the shared address space (depth d and arities).
	Space addr.Space
	// R is the redundancy factor.
	R int
	// F is the gossip fanout.
	F int
	// C is Pittel's constant for round budgets.
	C float64
	// Subscription is the node's initial interest.
	Subscription interest.Subscription
	// GossipInterval is the gossip period P (default 25ms).
	GossipInterval time.Duration
	// MembershipInterval is the digest period (default 4·GossipInterval).
	MembershipInterval time.Duration
	// MembershipFanout is how many peers receive each digest (default 2).
	MembershipFanout int
	// SuspectAfter configures the failure detector (default 20 membership
	// intervals; ≤ 0 keeps the default — failure detection is integral to
	// the membership scheme).
	SuspectAfter time.Duration
	// SuspicionSweeps is the number of consecutive over-deadline detector
	// sweeps before a silent neighbor is expelled (default 1; >1 enables
	// the Section 6 confirmation phase).
	SuspicionSweeps int
	// Threshold is the Section 5.3 tuning parameter h (0 = untuned).
	Threshold int
	// LocalDescent enables the Section 3.2 start-depth rule.
	LocalDescent bool
	// LeafFloodRate enables the Section 6 leaf-flooding extension (0 = off).
	LeafFloodRate float64
	// DeliveryBuffer sizes the Deliveries channel (default 256). When the
	// consumer lags, further deliveries are dropped and counted.
	DeliveryBuffer int
	// NoBatch disables the batched gossip pipeline: every gossip, digest and
	// heartbeat goes out as its own envelope, as the pre-batching runtime
	// sent them. Batching is a pure envelope-level aggregation — the
	// sub-messages each peer receives, and their per-link order, are
	// identical either way — so this knob exists for A/B measurement
	// (envelopes/event, bytes/event) and the equivalence property test, not
	// for correctness.
	NoBatch bool
	// MeasureWire enables sender-side wire accounting: every outgoing
	// envelope's encoded size is measured (via the wire codec, without
	// retaining an allocation) and summed into WireStats. Off by default —
	// in-memory campaigns that don't report bytes skip the encoding work.
	MeasureWire bool
	// Seed seeds the node RNG (0 derives one from the address).
	Seed int64
	// Clock supplies the node's timers and the membership service's notion
	// of "now" (default: the real clock). Injecting a clock.Virtual makes
	// the whole runtime deterministic; see internal/harness, which drives
	// fleets of nodes in step mode on one virtual clock.
	Clock clock.Clock
}

func (c Config) withDefaults() Config {
	if c.GossipInterval <= 0 {
		c.GossipInterval = 25 * time.Millisecond
	}
	if c.MembershipInterval <= 0 {
		c.MembershipInterval = 4 * c.GossipInterval
	}
	if c.MembershipFanout <= 0 {
		c.MembershipFanout = 2
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 20 * c.MembershipInterval
	}
	if c.DeliveryBuffer <= 0 {
		c.DeliveryBuffer = 256
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Seed == 0 {
		h := int64(1469598103934665603)
		for _, b := range []byte(c.Addr.Key()) {
			h = (h ^ int64(b)) * 1099511628211
		}
		c.Seed = h
	}
	return c
}

// Node is one live pmcast process.
type Node struct {
	cfg Config
	ep  transport.Endpoint
	mem *membership.Service

	mu          sync.Mutex
	rng         *rand.Rand
	proc        *core.Process
	tree        *tree.Tree
	applied     map[string]appliedRecord
	treeSize    int
	treeVersion uint64
	seen        map[event.ID]struct{}

	seq        atomic.Uint64
	deliveries chan event.Event
	dropped    atomic.Int64

	envelopes atomic.Int64 // outgoing envelopes (batched counts as one)
	wireBytes atomic.Int64 // encoded bytes of outgoing envelopes (MeasureWire)

	joinMu      sync.Mutex
	joinContact addr.Address

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
	started   atomic.Bool
}

// New attaches a node to a transport fabric — any implementation of the
// transport.Transport interface: the in-memory simulation network, the UDP
// backend, or whatever a deployment plugs in. The node is inert until Start.
func New(tr transport.Transport, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	mem, err := membership.New(membership.Config{
		Self:            cfg.Addr,
		Space:           cfg.Space,
		R:               cfg.R,
		SuspectAfter:    cfg.SuspectAfter,
		SuspicionSweeps: cfg.SuspicionSweeps,
		Now:             cfg.Clock.Now,
	}, cfg.Subscription)
	if err != nil {
		return nil, err
	}
	ep, err := tr.Attach(cfg.Addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:        cfg,
		ep:         ep,
		mem:        mem,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		seen:       make(map[event.ID]struct{}),
		deliveries: make(chan event.Event, cfg.DeliveryBuffer),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if err := n.rebuildLocked(); err != nil {
		ep.Close()
		return nil, err
	}
	return n, nil
}

// Addr returns the node address.
func (n *Node) Addr() addr.Address { return n.cfg.Addr }

// Membership exposes the membership service (read-mostly introspection).
func (n *Node) Membership() *membership.Service { return n.mem }

// Deliveries streams events matching the node's subscription, each exactly
// once. The channel closes on Stop.
func (n *Node) Deliveries() <-chan event.Event { return n.deliveries }

// DroppedDeliveries reports deliveries discarded because the consumer lagged.
func (n *Node) DroppedDeliveries() int64 { return n.dropped.Load() }

// Start launches the runtime loop.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.started.Store(true)
		go n.run()
	})
}

// Stop terminates the runtime, detaches from the network and closes the
// delivery channel. Safe to call multiple times.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		if n.started.Load() {
			<-n.done
		} else {
			close(n.done)
		}
		n.ep.Close()
		close(n.deliveries)
	})
}

// Join bootstraps membership through a known contact: the node announces
// itself and lets the contact chain forward the announcement towards its
// immediate neighbors (Section 2.3, "Joining"). The announcement is
// re-sent on the membership period for as long as the node knows nobody,
// so a lossy network cannot strand a joiner.
func (n *Node) Join(contact addr.Address) error {
	n.joinMu.Lock()
	n.joinContact = contact
	n.joinMu.Unlock()
	return n.send(contact, n.mem.BuildJoinRequest())
}

// Leave announces departure to the closest known neighbors and stops the
// node (Section 2.3, "Leaving").
func (n *Node) Leave() {
	leave := n.mem.BuildLeave()
	for _, nb := range n.mem.ImmediateNeighbors() {
		_ = n.send(nb, leave) // best effort; gossip spreads the tombstone
	}
	n.Stop()
}

// send ships one payload through the endpoint, counting envelopes and —
// when MeasureWire is on — their encoded wire size.
func (n *Node) send(to addr.Address, payload any) error {
	n.envelopes.Add(1)
	if n.cfg.MeasureWire {
		n.wireBytes.Add(int64(wire.EncodedSize(payload)))
	}
	return n.ep.Send(to, payload)
}

// WireStats reports the sender-side network cost so far: envelopes emitted
// (a batch counts as one) and their total encoded bytes (zero unless
// MeasureWire is configured).
func (n *Node) WireStats() (envelopes, bytes int64) {
	return n.envelopes.Load(), n.wireBytes.Load()
}

// Subscribe replaces the node's interests; the change propagates through
// membership anti-entropy and re-aggregates up the tree.
func (n *Node) Subscribe(sub interest.Subscription) {
	n.mem.Subscribe(sub)
}

// Publish multicasts an event built from the given attributes. The event ID
// is derived from the node address and a local sequence number.
func (n *Node) Publish(attrs map[string]event.Value) (event.ID, error) {
	select {
	case <-n.stop:
		return event.ID{}, ErrStopped
	default:
	}
	id := event.ID{Origin: n.cfg.Addr.Key(), Seq: n.seq.Add(1)}
	ev := event.New(id, attrs)

	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.rebuildIfStaleLocked(); err != nil {
		return event.ID{}, err
	}
	n.seen[id] = struct{}{}
	if err := n.proc.Multicast(ev); err != nil {
		return event.ID{}, err
	}
	n.drainDeliveriesLocked()
	return id, nil
}

// run is the node's event loop.
func (n *Node) run() {
	defer close(n.done)
	gossip := n.cfg.Clock.NewTicker(n.cfg.GossipInterval)
	defer gossip.Stop()
	memTick := n.cfg.Clock.NewTicker(n.cfg.MembershipInterval)
	defer memTick.Stop()
	sweep := n.cfg.Clock.NewTicker(n.cfg.SuspectAfter / 2)
	defer sweep.Stop()

	for {
		select {
		case <-n.stop:
			return
		case env, ok := <-n.ep.Recv():
			if !ok {
				return
			}
			n.handle(env)
		case <-gossip.C():
			n.tickGossip()
		case <-memTick.C():
			n.tickMembership()
		case <-sweep.C():
			n.mem.SweepFailures()
		}
	}
}

// handle dispatches one received payload.
func (n *Node) handle(env transport.Envelope) {
	n.mem.MarkHeard(env.From)
	switch msg := env.Payload.(type) {
	case core.Gossip:
		n.handleGossip(msg)
	case membership.Digest:
		n.handleDigest(env.From, msg)
	case membership.Update:
		n.mem.Apply(msg)
	case membership.JoinRequest:
		reply, fwd, forwardIt := n.mem.HandleJoinRequest(msg)
		_ = n.send(msg.Joiner.Addr, reply)
		if forwardIt && msg.Hops > 0 {
			msg.Hops--
			_ = n.send(fwd, msg)
		}
	case membership.Leave:
		n.mem.HandleLeave(msg)
	case membership.Heartbeat:
		// Liveness only; the MarkHeard above already recorded the contact.
	case wire.Batch:
		// A round envelope from a byte-oriented fabric (the in-memory fabric
		// unbatches in transit). Sub-messages are processed in the batch's
		// canonical order: gossips, update, digest, heartbeat.
		n.handleGossipBatch(msg.Gossips)
		if msg.Update != nil {
			n.mem.Apply(*msg.Update)
		}
		if msg.Digest != nil {
			n.handleDigest(env.From, *msg.Digest)
		}
	}
}

// handleDigest answers one anti-entropy probe. With batching on, a reply
// that needs both the pulled update and our own counter-digest piggybacks
// them onto a single envelope.
func (n *Node) handleDigest(from addr.Address, d membership.Digest) {
	upd, gossiperFresher := n.mem.HandleDigest(d)
	// Push-pull: when the gossiper knows things we don't, answer with our
	// own digest so it pushes them (see membership.HandleDigest; this is
	// also how a falsely-expelled process re-enters views).
	if !n.cfg.NoBatch && upd != nil && gossiperFresher {
		mine := n.mem.MakeDigest()
		_ = n.send(from, wire.Batch{Update: upd, Digest: &mine})
		return
	}
	if upd != nil {
		_ = n.send(from, *upd)
	}
	if gossiperFresher {
		_ = n.send(from, n.mem.MakeDigest())
	}
}

func (n *Node) handleGossip(g core.Gossip) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.seen[g.Event.ID()]; dup {
		return
	}
	if err := n.rebuildIfStaleLocked(); err != nil {
		return
	}
	n.seen[g.Event.ID()] = struct{}{}
	n.proc.Receive(g)
	n.drainDeliveriesLocked()
}

// handleGossipBatch processes a round envelope's gossip section under one
// lock acquisition and one staleness check — the receive-side half of the
// batched pipeline.
func (n *Node) handleGossipBatch(gs []core.Gossip) {
	if len(gs) == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	rebuilt := false
	for _, g := range gs {
		if _, dup := n.seen[g.Event.ID()]; dup {
			continue
		}
		if !rebuilt {
			if err := n.rebuildIfStaleLocked(); err != nil {
				return
			}
			rebuilt = true
		}
		n.seen[g.Event.ID()] = struct{}{}
		n.proc.Receive(g)
	}
	n.drainDeliveriesLocked()
}

func (n *Node) tickGossip() {
	n.mu.Lock()
	if err := n.rebuildIfStaleLocked(); err != nil {
		n.mu.Unlock()
		return
	}
	if n.cfg.NoBatch {
		sends := n.proc.Tick(n.rng)
		n.drainDeliveriesLocked()
		n.mu.Unlock()
		for _, s := range sends {
			_ = n.send(s.To, s.Gossip)
		}
		return
	}
	// Batched pipeline: every gossip this round owes one peer rides a single
	// round envelope. TickRound consumes the RNG exactly like Tick, so the
	// two modes stay behaviorally equivalent (see the harness equivalence
	// test) — only envelope counts differ.
	rounds := n.proc.TickRound(n.rng)
	n.drainDeliveriesLocked()
	n.mu.Unlock()
	for _, rs := range rounds {
		if len(rs.Gossips) == 1 {
			_ = n.send(rs.To, rs.Gossips[0]) // a bare frame is smaller than a batch of one
		} else {
			_ = n.send(rs.To, wire.Batch{Gossips: rs.Gossips})
		}
	}
}

func (n *Node) tickMembership() {
	// Bootstrap retry: while the node knows nobody, keep announcing itself
	// to its join contact (join messages are as lossy as any other).
	if n.mem.Len() <= 1 {
		n.joinMu.Lock()
		contact := n.joinContact
		n.joinMu.Unlock()
		if !contact.IsZero() {
			_ = n.send(contact, n.mem.BuildJoinRequest())
		}
	}
	n.mu.Lock()
	targets := n.mem.DigestTargets(n.rng, n.cfg.MembershipFanout)
	n.mu.Unlock()
	d := n.mem.MakeSummaryDigest()
	// Beacon the whole subgroup: the failure detector deadline is counted in
	// membership intervals, so every immediate neighbor must hear from us at
	// interval granularity regardless of where the digests went.
	hb := membership.Heartbeat{From: n.cfg.Addr}
	neighbors := n.mem.ImmediateNeighbors()
	if n.cfg.NoBatch {
		for _, to := range targets {
			_ = n.send(to, d)
		}
		for _, nb := range neighbors {
			_ = n.send(nb, hb)
		}
		return
	}
	// Piggyback: a digest target that is also an immediate neighbor gets one
	// envelope carrying both the probe and the beacon.
	beaconed := make(map[string]bool, len(targets))
	for _, to := range targets {
		if isNeighbor(neighbors, to) {
			beaconed[to.Key()] = true
			_ = n.send(to, wire.Batch{Digest: &d, Heartbeat: &hb})
		} else {
			_ = n.send(to, d)
		}
	}
	for _, nb := range neighbors {
		if !beaconed[nb.Key()] {
			_ = n.send(nb, hb)
		}
	}
}

// isNeighbor reports whether a appears in the (small, subgroup-sized)
// neighbor list.
func isNeighbor(neighbors []addr.Address, a addr.Address) bool {
	for _, nb := range neighbors {
		if nb.Equal(a) {
			return true
		}
	}
	return false
}

// rebuildIfStaleLocked refreshes tree views when membership moved.
func (n *Node) rebuildIfStaleLocked() error {
	if v := n.mem.Version(); v != n.treeVersion {
		return n.rebuildLocked()
	}
	return nil
}

// appliedRecord remembers the membership line last folded into the tree, so
// rebuilds only touch what actually moved.
type appliedRecord struct {
	stamp uint64
	alive bool
	sub   interest.Subscription
}

// rebuildLocked folds membership changes into the node's persistent tree
// incrementally — tree.ApplyDelta recomputes only the affected prefixes —
// and rebuilds the protocol process over the updated views. A full
// tree.Build over n members costs ~O(n·d) and at fleet scale every
// anti-entropy arrival used to pay it; the delta fold makes a churn wave
// cost proportional to the wave, not the fleet. The rebuilt process adopts
// its predecessor's gossip buffers, so in-flight disseminations survive
// membership movement (see DESIGN.md).
func (n *Node) rebuildLocked() error {
	version := n.mem.Version()
	freshFold := n.tree == nil
	if freshFold {
		t, err := tree.New(tree.Config{Space: n.cfg.Space, R: n.cfg.R})
		if err != nil {
			return fmt.Errorf("node: building tree: %w", err)
		}
		n.tree = t
		n.applied = make(map[string]appliedRecord)
	}
	var delta tree.Delta
	fold := func(r membership.Record) {
		key := r.Addr.Key()
		prev, ok := n.applied[key]
		if ok && prev.stamp == r.Stamp && prev.alive == r.Alive {
			return
		}
		switch {
		case r.Alive && (!ok || !prev.alive):
			delta.Add = append(delta.Add, tree.Member{Addr: r.Addr, Sub: r.Sub})
		case r.Alive && !prev.sub.Equal(r.Sub):
			// Same liveness, new stamp, different interests: re-fold them.
			delta.Update = append(delta.Update, tree.Member{Addr: r.Addr, Sub: r.Sub})
		case r.Alive:
			// A stamp-only bump (e.g. a propagating self-defense
			// resurrection): the folded state is already right.
		case ok && prev.alive:
			delta.Remove = append(delta.Remove, r.Addr)
		default:
			// A tombstone for a process never folded in: nothing to undo.
		}
		n.applied[key] = appliedRecord{stamp: r.Stamp, alive: r.Alive, sub: r.Sub}
	}
	// The membership changelog names exactly the lines that moved since the
	// last fold. A fresh fold (first build, or recovery after a failed
	// ApplyDelta dropped the bookkeeping) and a changelog that no longer
	// reaches back (overflow) both rescan the whole table instead.
	if keys, ok := n.mem.ChangesSince(n.treeVersion); ok && !freshFold {
		for _, key := range keys {
			if r, found := n.mem.LookupKey(key); found {
				fold(r)
			}
		}
	} else {
		n.mem.VisitRecords(fold)
	}
	changed := len(delta.Add)+len(delta.Update)+len(delta.Remove) > 0
	if changed {
		if err := n.tree.ApplyDelta(delta); err != nil {
			// The fold bookkeeping (n.applied) already advanced past records
			// a partially-applied delta may not hold; drop the whole fold so
			// the next rebuild starts from scratch instead of silently
			// gossiping on a desynced tree (ApplyDelta documents partial
			// application as fatal).
			n.tree = nil
			n.applied = nil
			return fmt.Errorf("node: updating tree: %w", err)
		}
	}
	if changed || n.proc == nil {
		proc, err := core.BuildProcess(n.tree, n.cfg.Addr, core.Config{
			D:             n.cfg.Space.Depth(),
			F:             n.cfg.F,
			C:             n.cfg.C,
			Threshold:     n.cfg.Threshold,
			LocalDescent:  n.cfg.LocalDescent,
			LeafFloodRate: n.cfg.LeafFloodRate,
		})
		if err != nil {
			return fmt.Errorf("node: rebuilding process: %w", err)
		}
		// In-flight disseminations survive the rebuild: the new process
		// adopts the old buffers, seen-set and counters.
		proc.AdoptState(n.proc)
		n.proc = proc
		n.treeSize = n.tree.Len()
	}
	n.treeVersion = version
	return nil
}

// drainDeliveriesLocked pushes protocol deliveries to the consumer channel.
func (n *Node) drainDeliveriesLocked() {
	for _, ev := range n.proc.Deliveries() {
		select {
		case n.deliveries <- ev:
		default:
			n.dropped.Add(1)
		}
	}
}

// KnownMembers returns the current alive membership size as seen locally.
func (n *Node) KnownMembers() int { return n.mem.Len() }

// Step mode.
//
// A node normally runs its own goroutine (Start) with the periodic tasks
// driven by its clock's tickers. The methods below expose the same tasks as
// synchronous calls so an external scheduler — internal/harness's
// virtual-time scenario engine — can drive a whole fleet deterministically
// from a single goroutine: never call Start on a step-driven node, and never
// mix step calls with a running Start loop.

// HandleEnvelope processes one received message synchronously — the step-
// mode counterpart of the run loop's receive arm.
func (n *Node) HandleEnvelope(env transport.Envelope) { n.handle(env) }

// PumpInbox drains and handles every envelope currently queued on the
// node's endpoint without blocking, returning how many were processed. A
// closed endpoint pumps zero.
func (n *Node) PumpInbox() int {
	handled := 0
	for {
		select {
		case env, ok := <-n.ep.Recv():
			if !ok {
				return handled
			}
			n.handle(env)
			handled++
		default:
			return handled
		}
	}
}

// WarmViews folds any pending membership changes into the node's tree views
// immediately instead of lazily at the next tick. The fold is a pure
// function of the node's own membership state, so a harness may warm many
// nodes concurrently — after a bootstrap that hands the whole fleet the
// same initial roster, the per-node folds are the same work a real
// deployment does on a thousand separate machines.
func (n *Node) WarmViews() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rebuildIfStaleLocked()
}

// AdoptViewsFrom copies the donor's folded tree instead of recomputing an
// identical fold. Legal only when both nodes hold the same membership
// roster (checked via the roster hash) and the donor is fully folded; both
// nodes must be quiescent — this is a bootstrap-time tool for harnesses
// co-hosting many nodes, where n identical folds would otherwise cost n
// full aggregate recomputations.
func (n *Node) AdoptViewsFrom(donor *Node) error {
	if donor == n {
		return nil
	}
	donor.mu.Lock()
	if donor.treeVersion != donor.mem.Version() {
		donor.mu.Unlock()
		return errors.New("node: donor views are stale")
	}
	donorHash := donor.mem.RosterHash()
	clone := donor.tree.Clone()
	applied := make(map[string]appliedRecord, len(donor.applied))
	for k, v := range donor.applied {
		applied[k] = v
	}
	donor.mu.Unlock()

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mem.RosterHash() != donorHash {
		return errors.New("node: donor roster differs")
	}
	n.tree = clone
	n.applied = applied
	n.treeVersion = n.mem.Version()
	proc, err := core.BuildProcess(n.tree, n.cfg.Addr, core.Config{
		D:             n.cfg.Space.Depth(),
		F:             n.cfg.F,
		C:             n.cfg.C,
		Threshold:     n.cfg.Threshold,
		LocalDescent:  n.cfg.LocalDescent,
		LeafFloodRate: n.cfg.LeafFloodRate,
	})
	if err != nil {
		return fmt.Errorf("node: rebuilding process: %w", err)
	}
	proc.AdoptState(n.proc)
	n.proc = proc
	n.treeSize = n.tree.Len()
	return nil
}

// TickGossip runs one gossip period (the run loop's gossip arm).
func (n *Node) TickGossip() { n.tickGossip() }

// TickMembership runs one membership anti-entropy period (the run loop's
// digest arm), including the join-retry bootstrap.
func (n *Node) TickMembership() { n.tickMembership() }

// SweepFailures runs one failure-detector sweep, returning the newly
// expelled addresses.
func (n *Node) SweepFailures() []addr.Address { return n.mem.SweepFailures() }
