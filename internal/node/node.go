// Package node is the asynchronous pmcast runtime: a staged engine binding
// the dissemination algorithm (internal/core), the membership service
// (internal/membership) and a transport endpoint.
//
// A Node periodically executes the gossip task (the paper's "every P
// milliseconds"), periodically exchanges membership digests (gossip pull),
// sweeps its failure detector, and rebuilds its tree views whenever the
// membership version moves. Events are published with Publish and consumed
// from the Deliveries channel.
//
// The live runtime (Start) is decomposed into three stages — see engine.go:
//
//	ingress   N decode workers draining the endpoint, each owning a wire
//	          decoder (DecodeWorkers)
//	protocol  ONE goroutine owning membership folds, tree views and the
//	          core.Process — the single writer of all protocol state
//	sweep/    M encode/send workers consuming per-peer send jobs from the
//	egress    protocol stage (EncodeWorkers)
//
// Parallelism 0 collapses every stage onto the protocol goroutine: exactly
// the serial event loop earlier revisions ran, and the configuration the
// deterministic harness drives synchronously through the step-mode API
// (step.go). Determinism is a degenerate configuration of the engine, not a
// second code path.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/fec"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/transport"
	"pmcast/internal/tree"
	"pmcast/internal/wire"
)

// Errors reported by the runtime.
var (
	ErrStopped    = errors.New("node: stopped")
	ErrNotStarted = errors.New("node: not started")
)

// Config parameterizes a node.
type Config struct {
	// Addr is the node's hierarchical address (its place in the tree).
	Addr addr.Address
	// Space is the shared address space (depth d and arities).
	Space addr.Space
	// R is the redundancy factor.
	R int
	// F is the gossip fanout.
	F int
	// C is Pittel's constant for round budgets.
	C float64
	// Subscription is the node's initial interest.
	Subscription interest.Subscription
	// GossipInterval is the gossip period P (default 25ms).
	GossipInterval time.Duration
	// MembershipInterval is the digest period (default 4·GossipInterval).
	MembershipInterval time.Duration
	// MembershipFanout is how many peers receive each digest (default 2).
	MembershipFanout int
	// SuspectAfter configures the failure detector (default 20 membership
	// intervals; ≤ 0 keeps the default — failure detection is integral to
	// the membership scheme).
	SuspectAfter time.Duration
	// SuspicionSweeps is the number of consecutive over-deadline detector
	// sweeps before a silent neighbor is expelled (default 1; >1 enables
	// the Section 6 confirmation phase).
	SuspicionSweeps int
	// Threshold is the Section 5.3 tuning parameter h (0 = untuned).
	Threshold int
	// LocalDescent enables the Section 3.2 start-depth rule.
	LocalDescent bool
	// LeafFloodRate enables the Section 6 leaf-flooding extension (0 = off).
	LeafFloodRate float64
	// AdaptiveFanout closes the Section 5.3 tuning loop over measured loss:
	// the node runs a passive per-peer loss estimator (beacons piggybacked on
	// the digests and heartbeats it already sends — see lossest.go) and feeds
	// the estimates to the gossip core, which widens round budgets where a
	// view's measured loss exceeds the configured assumption and samples
	// extra fan-out targets toward lossy peers.
	AdaptiveFanout bool
	// AdaptiveBoost caps the extra gossip targets per (event, round) when
	// adapting (default 2).
	AdaptiveBoost int
	// AdaptiveLossThreshold is the estimated per-peer loss at which a link
	// counts as lossy for fan-out boosting (default 0.05).
	AdaptiveLossThreshold float64
	// DeliveryBuffer sizes the Deliveries channel (default 256). When the
	// consumer lags, further deliveries are dropped and counted.
	DeliveryBuffer int
	// NoBatch disables the batched gossip pipeline: every gossip, digest and
	// heartbeat goes out as its own envelope, as the pre-batching runtime
	// sent them. Batching is a pure envelope-level aggregation — the
	// sub-messages each peer receives, and their per-link order, are
	// identical either way — so this knob exists for A/B measurement
	// (envelopes/event, bytes/event) and the equivalence property test, not
	// for correctness.
	NoBatch bool
	// FECRepairs enables the coding layer: every distinct event the node
	// forwards accumulates — per destination subtree, so a generation's
	// sources are events that subtree's members hold — into a generation of
	// FECSources source symbols, and when a generation fills, FECRepairs
	// repair symbols ride the next few round envelopes toward that subtree
	// (see internal/fec). Any FECSources of the
	// FECSources+FECRepairs symbols reconstruct the generation, so a
	// receiver that missed an event on every inbound link rebuilds it from
	// a repair plus the events it already holds.
	// 0 disables coding entirely — the pre-FEC wire path, byte for byte.
	// Coding rides batch envelopes, so NoBatch makes it inert.
	FECRepairs int
	// FECSources is the generation size k (default 8 when FECRepairs > 0).
	// FECSources+FECRepairs must not exceed fec.MaxSymbols.
	FECSources int
	// MeasureWire enables sender-side wire accounting: every outgoing
	// envelope's encoded size is measured (via the wire codec, without
	// retaining an allocation) and summed into WireStats. Off by default —
	// in-memory campaigns that don't report bytes skip the encoding work.
	MeasureWire bool
	// DecodeWorkers is the ingress-stage parallelism of the staged engine:
	// how many decode workers drain the transport endpoint concurrently,
	// each owning its own interning wire.Decoder (intern tables are not
	// shareable across goroutines). 0 — the default — runs ingress inline on
	// the protocol goroutine: the serial loop every deterministic campaign
	// replays. Only Start consults this; step-mode driving is always serial.
	DecodeWorkers int
	// EncodeWorkers is the egress-stage parallelism: how many encode/send
	// workers consume per-peer send jobs from the protocol stage. 0 sends
	// inline on the protocol goroutine.
	EncodeWorkers int
	// StageQueue bounds the channels between engine stages (default 1024).
	// A full ingress queue applies backpressure to the transport, whose
	// inbox overflows by dropping — UDP socket-buffer semantics. A full
	// egress queue drops the send job and counts it in EngineStats: the
	// protocol stage never blocks on a slow fabric.
	StageQueue int
	// Seed seeds the node RNG (0 derives one from the address).
	Seed int64
	// Clock supplies the node's timers and the membership service's notion
	// of "now" (default: the real clock). Injecting a clock.Virtual makes
	// the whole runtime deterministic; see internal/harness, which drives
	// fleets of nodes in step mode on one virtual clock.
	Clock clock.Clock
	// MembershipRoster, when non-nil, bootstraps the membership service
	// from a shared immutable roster (membership.NewWithRoster) instead of
	// a self-seeded table — the fleet-bootstrap path where n co-hosted
	// services would otherwise each hold an O(n) copy of the same records.
	// The roster must contain the node's own line; Subscription should
	// match it. Observable behavior is identical to applying the roster
	// line by line (the golden traces pin this).
	MembershipRoster *membership.Roster
	// DeferViews skips building tree views at construction. The node is
	// NOT usable until WarmViews or AdoptViewsFrom runs; harnesses set it
	// to bootstrap one donor fold and adopt it fleet-wide instead of
	// paying n identical O(n·d) folds.
	DeferViews bool
}

func (c Config) withDefaults() Config {
	if c.GossipInterval <= 0 {
		c.GossipInterval = 25 * time.Millisecond
	}
	if c.MembershipInterval <= 0 {
		c.MembershipInterval = 4 * c.GossipInterval
	}
	if c.MembershipFanout <= 0 {
		c.MembershipFanout = 2
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 20 * c.MembershipInterval
	}
	if c.DeliveryBuffer <= 0 {
		c.DeliveryBuffer = 256
	}
	if c.StageQueue <= 0 {
		c.StageQueue = 1024
	}
	if c.DecodeWorkers < 0 {
		c.DecodeWorkers = 0
	}
	if c.EncodeWorkers < 0 {
		c.EncodeWorkers = 0
	}
	if c.FECRepairs < 0 {
		c.FECRepairs = 0
	}
	if c.FECRepairs > 0 && c.FECSources <= 0 {
		c.FECSources = 8
	}
	if c.Clock == nil {
		c.Clock = clock.Real{}
	}
	if c.Seed == 0 {
		h := int64(1469598103934665603)
		for _, b := range []byte(c.Addr.Key()) {
			h = (h ^ int64(b)) * 1099511628211
		}
		c.Seed = h
	}
	return c
}

// Node is one live pmcast process.
type Node struct {
	cfg Config
	ep  transport.Endpoint
	mem *membership.Service
	dec *wire.Decoder // serial/step-mode decoder for deferred-decode fabrics

	// mu guards the protocol state below. While the engine runs, the
	// protocol stage is the state's single writer, so the lock is
	// uncontended there; it remains the arbiter for step-mode drivers,
	// bootstrap tools (WarmViews, AdoptViewsFrom) and serial-path Publish.
	mu   sync.Mutex
	rng  *rand.Rand
	proc *core.Process
	tree *tree.Tree
	// applied is the node's own fold bookkeeping; appliedBase, when non-nil,
	// is a frozen table shared with sibling nodes adopted from one donor
	// (AdoptViewsFrom) — read-only by contract, shadowed by applied. The
	// split is what keeps co-hosted fleets affordable: n nodes sharing one
	// bootstrap fold hold one table plus n overlays instead of n copies.
	applied          map[string]appliedRecord
	appliedBase      map[string]appliedRecord
	treeSize         int
	treeVersion      uint64
	seen             map[event.ID]struct{}
	deliveriesClosed bool

	seq        atomic.Uint64
	deliveries chan event.Event
	dropped    atomic.Int64

	envelopes atomic.Int64 // outgoing envelopes (batched counts as one)
	wireBytes atomic.Int64 // encoded bytes of outgoing envelopes (MeasureWire)

	// The coding layer (nil when FECRepairs is 0 or NoBatch is set). Both
	// sides live on the protocol stage — the encoder codes round envelopes in
	// tickGossip, the assembler reassembles in handle — but stats snapshots
	// come from other goroutines, so a dedicated mutex arbitrates. It is
	// uncontended on the hot path.
	fecMu         sync.Mutex
	fenc          *fec.Encoder
	fasm          *fec.Assembler
	fecKeyAddr    map[string]addr.Address // routing key → last round-send target, tickGossip only
	fecRevive     []fecRevival            // delayed revival queue, protocol stage only
	fecReviveTick int                     // revival round clock, protocol stage only
	repairBytes   atomic.Int64            // encoded bytes of emitted repair sections
	fecRecovered  atomic.Int64            // gossips reconstructed from repairs and accepted

	// The loss estimator behind AdaptiveFanout (nil when disabled). It has
	// its own lock: the protocol stage writes (stamping in emit, counting in
	// handle), the core tuning loop reads on the same stage, and stats
	// snapshots read from anywhere.
	est *lossEstimator

	// Engine plumbing (engine.go). protoCh and egressCh exist only when
	// Start brings up a parallel configuration; egressOn routes emit through
	// the egress stage and is set before the engine goroutines launch.
	protoCh       chan protoMsg
	egressCh      chan egressJob
	egressOn      bool
	wg            sync.WaitGroup
	egressDrops   atomic.Int64
	malformed     atomic.Int64
	egressFlushes atomic.Int64 // SendMany flushes issued by egress workers
	egressFlushed atomic.Int64 // envelopes those flushes carried

	joinMu      sync.Mutex
	joinContact addr.Address

	// lifeMu serializes the Start/Stop decision so a Stop racing a first
	// Start can never observe started=false while Start goes on to launch
	// the runtime — Stop's "drained and joined" guarantee depends on it.
	lifeMu    sync.Mutex
	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
	started   atomic.Bool
	stopped   atomic.Bool
}

// New attaches a node to a transport fabric — any implementation of the
// transport.Transport interface: the in-memory simulation network, the UDP
// backend, or whatever a deployment plugs in. The node is inert until Start.
func New(tr transport.Transport, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	memCfg := membership.Config{
		Self:            cfg.Addr,
		Space:           cfg.Space,
		R:               cfg.R,
		SuspectAfter:    cfg.SuspectAfter,
		SuspicionSweeps: cfg.SuspicionSweeps,
		Now:             cfg.Clock.Now,
	}
	var mem *membership.Service
	var err error
	if cfg.MembershipRoster != nil {
		mem, err = membership.NewWithRoster(memCfg, cfg.MembershipRoster)
	} else {
		mem, err = membership.New(memCfg, cfg.Subscription)
	}
	if err != nil {
		return nil, err
	}
	ep, err := tr.Attach(cfg.Addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:        cfg,
		ep:         ep,
		mem:        mem,
		dec:        wire.NewDecoder(),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		seen:       make(map[event.ID]struct{}),
		deliveries: make(chan event.Event, cfg.DeliveryBuffer),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if cfg.AdaptiveFanout {
		n.est = newLossEstimator()
	}
	if cfg.FECRepairs > 0 && !cfg.NoBatch {
		if cfg.FECSources+cfg.FECRepairs > fec.MaxSymbols {
			ep.Close()
			return nil, fmt.Errorf("node: FEC k+r = %d exceeds %d symbols",
				cfg.FECSources+cfg.FECRepairs, fec.MaxSymbols)
		}
		n.fenc = fec.NewEncoder(cfg.FECSources, cfg.FECRepairs)
		n.fasm = fec.NewAssembler()
		n.fecKeyAddr = make(map[string]addr.Address)
	}
	if !cfg.DeferViews {
		if err := n.rebuildLocked(); err != nil {
			ep.Close()
			return nil, err
		}
	}
	return n, nil
}

// Addr returns the node address.
func (n *Node) Addr() addr.Address { return n.cfg.Addr }

// Membership exposes the membership service (read-mostly introspection).
func (n *Node) Membership() *membership.Service { return n.mem }

// Deliveries streams events matching the node's subscription, each exactly
// once. The channel closes on Stop.
func (n *Node) Deliveries() <-chan event.Event { return n.deliveries }

// DroppedDeliveries reports deliveries discarded because the consumer lagged.
func (n *Node) DroppedDeliveries() int64 { return n.dropped.Load() }

// Start launches the staged engine: the single-writer protocol goroutine
// plus — when the configuration asks for parallelism — the ingress decode
// workers and egress send workers. Starting a node that was already stopped
// is a no-op: the node stays inert.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.lifeMu.Lock()
		defer n.lifeMu.Unlock()
		if n.stopped.Load() {
			return // Stop won: stay inert rather than racing a dead runtime
		}
		if n.cfg.DecodeWorkers > 0 || n.cfg.EncodeWorkers > 0 {
			n.protoCh = make(chan protoMsg, n.cfg.StageQueue)
			if n.cfg.EncodeWorkers > 0 {
				n.egressCh = make(chan egressJob, n.cfg.StageQueue)
				n.egressOn = true
			}
		}
		n.started.Store(true)
		go n.run()
	})
}

// Stop terminates the runtime, detaches from the network and closes the
// delivery channel. It is idempotent and safe in any lifecycle state:
// before Start (the node stays inert and a later Start is a no-op), after
// Start (the engine drains and joins every stage worker), after the
// transport was closed underneath the node, and from multiple goroutines
// at once. The delivery channel is closed exactly once.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		// Under lifeMu, either a racing first Start already launched the
		// runtime (then started is true here and we join it) or it has not
		// yet taken its decision (then it will see stopped and stay inert).
		n.lifeMu.Lock()
		n.stopped.Store(true)
		close(n.stop)
		started := n.started.Load()
		n.lifeMu.Unlock()
		if started {
			<-n.done // protocol stage has exited and closed the egress queue
		} else {
			close(n.done) // never started: done must still read as terminal
		}
		n.ep.Close() // unblocks ingress workers waiting on Recv
		n.wg.Wait()  // every stage worker has drained and exited
		// Mark the channel closed under the state lock: step-mode drivers
		// push deliveries under the same lock, so none can be mid-send, and
		// any later step call discards into the dropped counter instead of
		// panicking on a closed channel.
		n.mu.Lock()
		n.deliveriesClosed = true
		n.mu.Unlock()
		close(n.deliveries)
	})
}

// Join bootstraps membership through a known contact: the node announces
// itself and lets the contact chain forward the announcement towards its
// immediate neighbors (Section 2.3, "Joining"). The announcement is
// re-sent on the membership period for as long as the node knows nobody,
// so a lossy network cannot strand a joiner.
func (n *Node) Join(contact addr.Address) error {
	n.joinMu.Lock()
	n.joinContact = contact
	n.joinMu.Unlock()
	return n.send(contact, n.mem.BuildJoinRequest())
}

// Leave announces departure to the closest known neighbors and stops the
// node (Section 2.3, "Leaving").
func (n *Node) Leave() {
	leave := n.mem.BuildLeave()
	for _, nb := range n.mem.ImmediateNeighbors() {
		_ = n.send(nb, leave) // best effort; gossip spreads the tombstone
	}
	n.Stop()
}

// send ships one payload through the endpoint, counting envelopes and —
// when MeasureWire is on — their encoded wire size.
func (n *Node) send(to addr.Address, payload any) error {
	n.envelopes.Add(1)
	if n.cfg.MeasureWire {
		n.wireBytes.Add(int64(wire.EncodedSize(payload)))
	}
	return n.ep.Send(to, payload)
}

// sendMany flushes one drained egress-queue batch through the endpoint's
// batch seam with the same per-envelope accounting as send, plus the
// flush-amortization counters behind EgressFlushStats.
func (n *Node) sendMany(bs transport.BatchSender, msgs []transport.Outgoing) {
	n.envelopes.Add(int64(len(msgs)))
	if n.cfg.MeasureWire {
		var total int64
		for i := range msgs {
			total += int64(wire.EncodedSize(msgs[i].Payload))
		}
		n.wireBytes.Add(total)
	}
	n.egressFlushes.Add(1)
	n.egressFlushed.Add(int64(len(msgs)))
	_ = bs.SendMany(msgs) // per-message loss is silent, exactly like send
}

// WireStats reports the sender-side network cost so far: envelopes emitted
// (a batch counts as one) and their total encoded bytes (zero unless
// MeasureWire is configured).
func (n *Node) WireStats() (envelopes, bytes int64) {
	return n.envelopes.Load(), n.wireBytes.Load()
}

// FECStats is a snapshot of the coding layer's counters. All zeros when
// coding is off.
type FECStats struct {
	// RepairBytes is the encoded size of every repair section emitted —
	// the redundancy overhead this node paid on the wire.
	RepairBytes int64
	// RepairsReceived counts repair symbols that reached the assembler.
	RepairsReceived int64
	// Decodes counts reconstruction solves attempted.
	Decodes int64
	// Recovered counts gossips reconstructed from repairs and accepted into
	// the protocol — events that would otherwise have waited for a
	// retransmission or been missed.
	Recovered int64
	// Corrupt counts malformed repairs and reconstructions that failed
	// verification; Expired counts partial generations that timed out.
	Corrupt int64
	Expired int64
}

// Accumulate folds another snapshot into this one — harness-style banking
// of counters across node generations.
func (s *FECStats) Accumulate(o FECStats) {
	s.RepairBytes += o.RepairBytes
	s.RepairsReceived += o.RepairsReceived
	s.Decodes += o.Decodes
	s.Recovered += o.Recovered
	s.Corrupt += o.Corrupt
	s.Expired += o.Expired
}

// FECStats reports the coding layer's work so far.
func (n *Node) FECStats() FECStats {
	st := FECStats{
		RepairBytes: n.repairBytes.Load(),
		Recovered:   n.fecRecovered.Load(),
	}
	if n.fasm != nil {
		n.fecMu.Lock()
		s := n.fasm.Stats()
		n.fecMu.Unlock()
		st.RepairsReceived = s.RepairsReceived
		st.Decodes = s.Decodes
		st.Corrupt = s.Corrupt
		st.Expired = s.Expired
	}
	return st
}

// MatchStats reports the matching engine's counters — matcher evaluations,
// attribute comparisons, susceptibility-cache traffic, gossip rounds and
// profile-computation time. Counters survive process rebuilds (the rebuilt
// process adopts its predecessor's totals), so they are cumulative for the
// node's lifetime.
func (n *Node) MatchStats() core.MatchStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	var st core.MatchStats
	if n.proc != nil {
		st = n.proc.MatchStats()
	}
	if n.tree != nil {
		fs := n.tree.FoldStats()
		st.FoldRecomputes = fs.Recomputes
		st.FoldHits = fs.Hits
		st.FoldCacheEntries = uint64(fs.CacheEntries)
		st.FoldCacheEvictions = fs.CacheEvictions
		st.CompilerEntries = uint64(fs.CompilerEntries)
		st.CompilerEvictions = fs.CompilerEvictions
	}
	return st
}

// FoldStats reports the fold layer behind the node's membership trie: this
// tree's regrouping counters plus the occupancy of the (possibly
// clone-shared) fold cache and interning compiler. Zero when the node has
// not built a tree yet. Fleet aggregation dedupes the cache fields by
// CacheID/CompilerID — co-hosted nodes bootstrapped from one oracle share
// one cache.
func (n *Node) FoldStats() tree.FoldStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.tree == nil {
		return tree.FoldStats{}
	}
	return n.tree.FoldStats()
}

// Subscribe replaces the node's interests; the change propagates through
// membership anti-entropy and re-aggregates up the tree.
func (n *Node) Subscribe(sub interest.Subscription) {
	n.mem.Subscribe(sub)
}

// Publish multicasts an event built from the given attributes. The event ID
// is derived from the node address and a local sequence number. While the
// engine runs in a parallel configuration, the event is handed to the
// protocol stage — the single writer of protocol state — and Publish waits
// for it to be accepted; otherwise the caller applies it directly under the
// state lock, as the serial runtime always has.
func (n *Node) Publish(attrs map[string]event.Value) (event.ID, error) {
	select {
	case <-n.stop:
		return event.ID{}, ErrStopped
	default:
	}
	id := event.ID{Origin: n.cfg.Addr.Key(), Seq: n.seq.Add(1)}
	ev := event.New(id, attrs)
	// The started load is the acquire barrier for protoCh: Start stores it
	// before flipping started, so checking in this order is race-free even
	// against a concurrent Start.
	if n.started.Load() && n.protoCh != nil {
		// The done arms cover a protocol stage that wound down without Stop
		// (transport closed underneath the node): the serial path degrades to
		// buffering the event locally, and the engine path must not hang.
		req := &publishReq{ev: ev, errc: make(chan error, 1)}
		select {
		case n.protoCh <- protoMsg{pub: req}:
		case <-n.stop:
			return event.ID{}, ErrStopped
		case <-n.done:
			return event.ID{}, ErrStopped
		}
		select {
		case err := <-req.errc:
			if err != nil {
				return event.ID{}, err
			}
			return id, nil
		case <-n.stop:
			return event.ID{}, ErrStopped
		case <-n.done:
			return event.ID{}, ErrStopped
		}
	}
	if err := n.applyPublish(ev); err != nil {
		return event.ID{}, err
	}
	return id, nil
}

// applyPublish folds one locally published event into protocol state — the
// shared body of the serial path and the protocol stage's publish handler.
func (n *Node) applyPublish(ev event.Event) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.rebuildIfStaleLocked(); err != nil {
		return err
	}
	n.seen[ev.ID()] = struct{}{}
	if err := n.proc.Multicast(ev); err != nil {
		return err
	}
	n.drainDeliveriesLocked()
	return nil
}

// decodeRaw unframes a deferred-decode payload in place with the given
// decoder, releasing the pooled frame and counting failures. It reports
// whether the envelope is usable — shared by the ingress workers (worker
// decoders) and the serial/step path (the node's own decoder).
func (n *Node) decodeRaw(dec *wire.Decoder, env *transport.Envelope) bool {
	raw, ok := env.Payload.(transport.Raw)
	if !ok {
		return true
	}
	payload, err := dec.Decode(raw.Frame)
	raw.Release()
	if err != nil {
		n.malformed.Add(1)
		return false
	}
	env.Payload = payload
	return true
}

// handle dispatches one received payload. It runs on the protocol stage (or
// a step-mode driver): everything it touches is single-writer state.
func (n *Node) handle(env transport.Envelope) {
	if !n.decodeRaw(n.dec, &env) {
		return
	}
	n.mem.MarkHeard(env.From)
	if n.est != nil {
		n.observeIncoming(env.From, env.Payload)
	}
	switch msg := env.Payload.(type) {
	case core.Gossip:
		n.handleGossip(msg)
		if n.fasm != nil {
			// Feed the coding layer the canonical bytes of what arrived, so
			// any pending generation listing the event can count it as a
			// source symbol (the in-memory fabric delivers coded rounds
			// unbatched: gossips and repairs as separate envelopes).
			n.observeSourceFEC(msg)
		}
	case fec.Repair:
		if n.fasm != nil {
			n.fecMu.Lock()
			recs := n.fasm.ObserveRepair(env.From.Key(), msg)
			n.fecMu.Unlock()
			n.acceptRecoveredFEC(recs)
		}
	case membership.Digest:
		n.handleDigest(env.From, msg)
	case membership.Update:
		n.mem.Apply(msg)
	case membership.JoinRequest:
		reply, fwd, forwardIt := n.mem.HandleJoinRequest(msg)
		n.emit(msg.Joiner.Addr, reply)
		if forwardIt && msg.Hops > 0 {
			msg.Hops--
			n.emit(fwd, msg)
		}
	case membership.Leave:
		n.mem.HandleLeave(msg)
	case membership.Heartbeat:
		// Liveness only; the MarkHeard above already recorded the contact.
	case wire.Batch:
		// A round envelope from a byte-oriented fabric (the in-memory fabric
		// unbatches in transit). Sub-messages are processed in the batch's
		// canonical order: gossips, repairs, update, digest, heartbeat.
		n.handleGossipBatch(msg.Gossips)
		if n.fasm != nil {
			for _, g := range msg.Gossips {
				n.observeSourceFEC(g)
			}
			for _, gen := range msg.FEC {
				for _, rp := range gen.Split() {
					n.fecMu.Lock()
					recs := n.fasm.ObserveRepair(env.From.Key(), rp)
					n.fecMu.Unlock()
					n.acceptRecoveredFEC(recs)
				}
			}
		}
		if msg.Update != nil {
			n.mem.Apply(*msg.Update)
		}
		if msg.Digest != nil {
			n.handleDigest(env.From, *msg.Digest)
		}
	}
}

// handleDigest answers one anti-entropy probe. With batching on, a reply
// that needs both the pulled update and our own counter-digest piggybacks
// them onto a single envelope.
func (n *Node) handleDigest(from addr.Address, d membership.Digest) {
	upd, gossiperFresher := n.mem.HandleDigest(d)
	// Push-pull: when the gossiper knows things we don't, answer with our
	// own digest so it pushes them (see membership.HandleDigest; this is
	// also how a falsely-expelled process re-enters views).
	if !n.cfg.NoBatch && upd != nil && gossiperFresher {
		mine := n.mem.MakeDigest()
		n.emit(from, wire.Batch{Update: upd, Digest: &mine})
		return
	}
	if upd != nil {
		n.emit(from, *upd)
	}
	if gossiperFresher {
		n.emit(from, n.mem.MakeDigest())
	}
}

func (n *Node) handleGossip(g core.Gossip) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.seen[g.Event.ID()]; dup {
		return
	}
	if err := n.rebuildIfStaleLocked(); err != nil {
		return
	}
	n.seen[g.Event.ID()] = struct{}{}
	n.proc.Receive(g)
	n.drainDeliveriesLocked()
}

// handleGossipBatch processes a round envelope's gossip section under one
// lock acquisition and one staleness check — the receive-side half of the
// batched pipeline.
func (n *Node) handleGossipBatch(gs []core.Gossip) {
	if len(gs) == 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	rebuilt := false
	for _, g := range gs {
		if _, dup := n.seen[g.Event.ID()]; dup {
			continue
		}
		if !rebuilt {
			if err := n.rebuildIfStaleLocked(); err != nil {
				return
			}
			rebuilt = true
		}
		n.seen[g.Event.ID()] = struct{}{}
		n.proc.Receive(g)
	}
	n.drainDeliveriesLocked()
}

// observeSourceFEC hands one arrived gossip's canonical event bytes to the
// assembler and folds in whatever recoveries that unlocks. Symbols are
// event bytes — invariant across retransmissions and identical from every
// sender — so any copy of the event fills its slot in every pending
// generation that lists it, whoever coded that generation.
func (n *Node) observeSourceFEC(g core.Gossip) {
	body := wire.AppendEventBody(nil, g.Event)
	n.fecMu.Lock()
	recs := n.fasm.ObserveSource(g.Event.ID(), body)
	n.fecMu.Unlock()
	n.acceptRecoveredFEC(recs)
}

// acceptRecoveredFEC validates reconstructed events and queues them for
// delayed revival. Each recovered body must decode to the event the
// generation header promised — a mismatch means the solve ran over a
// poisoned source cache and the result is discarded as corrupt. Accepted
// recoveries are re-observed as sources, which can complete further
// pending generations; the worklist is bounded because every completion
// retires its generation.
//
// Recoveries are NOT handed to the protocol immediately. A repair decodes
// an event a round or two after the gossip it protects was sent, so for a
// tail loss the real wave usually delivers the event on another link
// moments later — and a premature re-entry would mark it seen, suppress
// that reception, and strip this node of its forwarding duty in the live
// epidemic (measurably lowering fleet reliability). Instead the recovery
// waits fecReviveDelay gossip rounds in the revival queue: if the real
// wave shows up the revival cancels as a duplicate and the run is
// byte-identical to an uncoded one, and only an event that is still
// nowhere in sight — the subtree-dead case the coding layer exists for —
// re-enters, with a fresh round budget, to be delivered and re-gossiped
// downstream.
func (n *Node) acceptRecoveredFEC(recs []fec.Recovered) {
	for len(recs) > 0 {
		rec := recs[0]
		recs = recs[1:]
		ev, err := wire.DecodeEventBody(rec.Body)
		if err != nil || ev.ID() != rec.ID {
			n.fecMu.Lock()
			n.fasm.NoteCorrupt()
			n.fecMu.Unlock()
			continue
		}
		n.fecRecovered.Add(1)
		if len(n.fecRevive) < maxFECRevive {
			n.fecRevive = append(n.fecRevive, fecRevival{
				g: core.Gossip{
					Event: ev,
					Depth: rec.Meta.Depth,
					Rate:  rec.Meta.Rate,
					Round: 0,
				},
				due: n.fecReviveTick + fecReviveDelay,
			})
		}
		n.fecMu.Lock()
		more := n.fasm.ObserveSource(rec.ID, rec.Body)
		n.fecMu.Unlock()
		recs = append(recs, more...)
	}
}

// reviveRecoveredFEC runs once per gossip round on the protocol stage:
// revival candidates whose delay has elapsed re-enter through handleGossip,
// whose seen-set check is the cancellation — an event the real wave
// delivered meanwhile is a duplicate and the revival is a no-op.
func (n *Node) reviveRecoveredFEC() {
	n.fecReviveTick++
	if len(n.fecRevive) == 0 {
		return
	}
	keep := n.fecRevive[:0]
	for _, rv := range n.fecRevive {
		if rv.due > n.fecReviveTick {
			keep = append(keep, rv)
			continue
		}
		n.handleGossip(rv.g)
	}
	n.fecRevive = keep
	// Drop the processed tail so retained event references can be collected.
	tail := n.fecRevive[len(n.fecRevive):cap(n.fecRevive)]
	for i := range tail {
		tail[i] = fecRevival{}
	}
}

// fecRevival is one recovered gossip waiting out its revival delay.
type fecRevival struct {
	g   core.Gossip
	due int
}

// fecReviveDelay is how many gossip rounds a recovery waits before
// re-entering the protocol, giving the real wave time to deliver the event
// and cancel the revival; maxFECRevive bounds the queue against a hostile
// repair stream.
const (
	fecReviveDelay = 3
	maxFECRevive   = 4096
)

// fecFlushAge is how many gossip rounds a partial generation may wait for
// the accumulator to fill before a dedicated repair-only envelope flushes
// it. The encoder already piggybacks an aged generation onto the next
// ordinary envelope after a couple of rounds, so this backstop only fires
// when the node stops sending entirely — it is deliberately lax because
// every firing costs a whole envelope.
const fecFlushAge = 6

// fecRouteKey buckets a round-send destination into its top-level subtree.
// Generations accumulate per destination subtree because gossip routes
// events by interest: the events a node sends toward subtree T are the
// events T's members hold, so a generation coded toward T is decodable
// there. One accumulator mixing traffic for every subtree would present
// mostly holes to each receiver — it can fill only its own subtree's
// slots — and reconstruction needs k of k+r symbols present.
func fecRouteKey(a addr.Address) string {
	if a.IsZero() {
		return ""
	}
	return strconv.Itoa(a.Digit(1))
}

// codeRoundSend feeds one round envelope's gossips into the destination
// subtree's generation accumulator and returns the generations that should
// ride this envelope's FEC section: fresh fills, aged piggybacks, and
// replica copies of recent generations spreading across the subtree. Most
// round-sends return nothing — the accumulator is what amortizes one
// repair symbol over k distinct events instead of one round-send's few.
func (n *Node) codeRoundSend(rs core.RoundSend) []fec.Generation {
	leaf := n.cfg.Space.Depth()
	srcs := make([]fec.Source, 0, len(rs.Gossips))
	for _, g := range rs.Gossips {
		if g.Depth >= leaf && leaf > 1 {
			// Leaf-level gossips are the dense tail of dissemination: by the
			// time an event floods a leaf group, many members hold it and a
			// lost copy arrives again on another link. Coding them buys
			// little and their volume dominates — the per-slot header cost
			// of protecting every leaf transmission dwarfs the repairs.
			// The sub-leaf delegate hops are where few copies carry the
			// whole subtree's delivery; those are the ones worth coding.
			continue
		}
		srcs = append(srcs, fec.Source{
			ID:   g.Event.ID(),
			Meta: fec.Meta{Depth: g.Depth, Rate: g.Rate, Round: g.Round},
			Body: wire.AppendEventBody(nil, g.Event),
		})
	}
	key := fecRouteKey(rs.To)
	n.fecKeyAddr[key] = rs.To
	n.fecMu.Lock()
	gens := n.fenc.Add(key, srcs)
	n.fecMu.Unlock()
	for _, g := range gens {
		n.repairBytes.Add(int64(g.RepairBytes()))
	}
	return gens
}

func (n *Node) tickGossip() {
	if n.fasm != nil {
		// Revive before ticking: a recovery whose delay just elapsed enters
		// the gossip buffers now and rides this very round's envelopes.
		n.reviveRecoveredFEC()
	}
	n.mu.Lock()
	if err := n.rebuildIfStaleLocked(); err != nil {
		n.mu.Unlock()
		return
	}
	if n.cfg.NoBatch {
		sends := n.proc.Tick(n.rng)
		n.drainDeliveriesLocked()
		n.mu.Unlock()
		for _, s := range sends {
			n.emit(s.To, s.Gossip)
		}
		return
	}
	// Batched pipeline: every gossip this round owes one peer rides a single
	// round envelope. TickRound consumes the RNG exactly like Tick, so the
	// two modes stay behaviorally equivalent (see the harness equivalence
	// test) — only envelope counts differ. The round envelopes are the
	// engine's send jobs, emitted after the lock drops: emit either hands
	// them to the egress workers or — serially — sends on this goroutine.
	jobs := n.proc.TickRound(n.rng)
	n.drainDeliveriesLocked()
	n.mu.Unlock()
	if n.fasm != nil {
		// One gossip round elapsed: age out partial generations that will
		// never complete (their arrived sources were already processed).
		n.fecMu.Lock()
		n.fasm.Sweep()
		n.fecMu.Unlock()
	}
	for _, rs := range jobs {
		var gens []fec.Generation
		if n.fenc != nil {
			gens = n.codeRoundSend(rs)
		}
		switch {
		case len(gens) > 0:
			n.emit(rs.To, wire.Batch{Gossips: rs.Gossips, FEC: gens})
		case len(rs.Gossips) == 1:
			n.emit(rs.To, rs.Gossips[0]) // a bare frame is smaller than a batch of one
		default:
			n.emit(rs.To, wire.Batch{Gossips: rs.Gossips})
		}
	}
	if n.fenc != nil {
		// Backstop flush: if gossip traffic stopped with a partial
		// generation open, ship it as a short (k', r) code in a repair-only
		// envelope so the trailing events keep their protection.
		n.fecMu.Lock()
		aged := n.fenc.FlushAged(fecFlushAge)
		n.fecMu.Unlock()
		for _, kg := range aged {
			to, ok := n.fecKeyAddr[kg.Key]
			if !ok || to.IsZero() {
				continue
			}
			for _, g := range kg.Gens {
				n.repairBytes.Add(int64(g.RepairBytes()))
			}
			n.emit(to, wire.Batch{FEC: kg.Gens})
		}
	}
}

func (n *Node) tickMembership() {
	// Bootstrap retry: while the node knows nobody, keep announcing itself
	// to its join contact (join messages are as lossy as any other).
	if n.mem.Len() <= 1 {
		n.joinMu.Lock()
		contact := n.joinContact
		n.joinMu.Unlock()
		if !contact.IsZero() {
			n.emit(contact, n.mem.BuildJoinRequest())
		}
	}
	n.mu.Lock()
	targets := n.mem.DigestTargets(n.rng, n.cfg.MembershipFanout)
	n.mu.Unlock()
	d := n.mem.MakeSummaryDigest()
	// Beacon the whole subgroup: the failure detector deadline is counted in
	// membership intervals, so every immediate neighbor must hear from us at
	// interval granularity regardless of where the digests went.
	hb := membership.Heartbeat{From: n.cfg.Addr}
	neighbors := n.mem.ImmediateNeighbors()
	if n.cfg.NoBatch {
		for _, to := range targets {
			n.emit(to, d)
		}
		for _, nb := range neighbors {
			n.emit(nb, hb)
		}
		return
	}
	// Piggyback: a digest target that is also an immediate neighbor gets one
	// envelope carrying both the probe and the beacon.
	beaconed := make(map[string]bool, len(targets))
	for _, to := range targets {
		if isNeighbor(neighbors, to) {
			beaconed[to.Key()] = true
			n.emit(to, wire.Batch{Digest: &d, Heartbeat: &hb})
		} else {
			n.emit(to, d)
		}
	}
	for _, nb := range neighbors {
		if !beaconed[nb.Key()] {
			n.emit(nb, hb)
		}
	}
}

// isNeighbor reports whether a appears in the (small, subgroup-sized)
// neighbor list.
func isNeighbor(neighbors []addr.Address, a addr.Address) bool {
	for _, nb := range neighbors {
		if nb.Equal(a) {
			return true
		}
	}
	return false
}

// rebuildIfStaleLocked refreshes tree views when membership moved.
func (n *Node) rebuildIfStaleLocked() error {
	if v := n.mem.Version(); v != n.treeVersion {
		return n.rebuildLocked()
	}
	return nil
}

// coreConfig assembles the gossip-core configuration both rebuild paths
// (rebuildLocked, AdoptViewsFrom) share, wiring the loss estimator into the
// core's Section 5.3 tuning loop when adaptive fan-out is on.
func (n *Node) coreConfig() core.Config {
	cfg := core.Config{
		D:             n.cfg.Space.Depth(),
		F:             n.cfg.F,
		C:             n.cfg.C,
		Threshold:     n.cfg.Threshold,
		LocalDescent:  n.cfg.LocalDescent,
		LeafFloodRate: n.cfg.LeafFloodRate,
	}
	if n.est != nil {
		est := n.est
		cfg.AdaptiveFanout = true
		cfg.AdaptiveBoost = n.cfg.AdaptiveBoost
		cfg.AdaptiveLossThreshold = n.cfg.AdaptiveLossThreshold
		cfg.PeerLoss = func(a addr.Address) (float64, bool) {
			return est.Estimate(a.Key())
		}
	}
	return cfg
}

// appliedRecord remembers the membership line last folded into the tree, so
// rebuilds only touch what actually moved.
type appliedRecord struct {
	stamp uint64
	alive bool
	sub   interest.Subscription
}

// appliedLookupLocked reads the fold bookkeeping through the own-then-base
// overlay (see the applied/appliedBase fields).
func (n *Node) appliedLookupLocked(key string) (appliedRecord, bool) {
	if v, ok := n.applied[key]; ok {
		return v, true
	}
	if n.appliedBase != nil {
		v, ok := n.appliedBase[key]
		return v, ok
	}
	return appliedRecord{}, false
}

// rebuildLocked folds membership changes into the node's persistent tree
// incrementally — tree.ApplyDelta recomputes only the affected prefixes —
// and rebuilds the protocol process over the updated views. A full
// tree.Build over n members costs ~O(n·d) and at fleet scale every
// anti-entropy arrival used to pay it; the delta fold makes a churn wave
// cost proportional to the wave, not the fleet. The rebuilt process adopts
// its predecessor's gossip buffers, so in-flight disseminations survive
// membership movement (see DESIGN.md).
func (n *Node) rebuildLocked() error {
	version := n.mem.Version()
	freshFold := n.tree == nil
	if freshFold {
		t, err := tree.New(tree.Config{Space: n.cfg.Space, R: n.cfg.R})
		if err != nil {
			return fmt.Errorf("node: building tree: %w", err)
		}
		n.tree = t
		n.applied = make(map[string]appliedRecord)
		n.appliedBase = nil // a fresh fold must revisit every record
	}
	var delta tree.Delta
	fold := func(r membership.Record) {
		key := r.Addr.Key()
		prev, ok := n.appliedLookupLocked(key)
		if ok && prev.stamp == r.Stamp && prev.alive == r.Alive {
			return
		}
		switch {
		case r.Alive && (!ok || !prev.alive):
			delta.Add = append(delta.Add, tree.Member{Addr: r.Addr, Sub: r.Sub})
		case r.Alive && !prev.sub.Equal(r.Sub):
			// Same liveness, new stamp, different interests: re-fold them.
			delta.Update = append(delta.Update, tree.Member{Addr: r.Addr, Sub: r.Sub})
		case r.Alive:
			// A stamp-only bump (e.g. a propagating self-defense
			// resurrection): the folded state is already right.
		case ok && prev.alive:
			delta.Remove = append(delta.Remove, r.Addr)
		default:
			// A tombstone for a process never folded in: nothing to undo.
		}
		n.applied[key] = appliedRecord{stamp: r.Stamp, alive: r.Alive, sub: r.Sub}
	}
	// The membership changelog names exactly the lines that moved since the
	// last fold. A fresh fold (first build, or recovery after a failed
	// ApplyDelta dropped the bookkeeping) and a changelog that no longer
	// reaches back (overflow) both rescan the whole table instead.
	if keys, ok := n.mem.ChangesSince(n.treeVersion); ok && !freshFold {
		for _, key := range keys {
			if r, found := n.mem.LookupKey(key); found {
				fold(r)
			}
		}
	} else {
		n.mem.VisitRecords(fold)
	}
	changed := len(delta.Add)+len(delta.Update)+len(delta.Remove) > 0
	if changed {
		if err := n.tree.ApplyDelta(delta); err != nil {
			// The fold bookkeeping (n.applied) already advanced past records
			// a partially-applied delta may not hold; drop the whole fold so
			// the next rebuild starts from scratch instead of silently
			// gossiping on a desynced tree (ApplyDelta documents partial
			// application as fatal).
			n.tree = nil
			n.applied = nil
			n.appliedBase = nil
			return fmt.Errorf("node: updating tree: %w", err)
		}
	}
	if changed || n.proc == nil {
		proc, err := core.BuildProcess(n.tree, n.cfg.Addr, n.coreConfig())
		if err != nil {
			return fmt.Errorf("node: rebuilding process: %w", err)
		}
		// In-flight disseminations survive the rebuild: the new process
		// adopts the old buffers, seen-set and counters.
		proc.AdoptState(n.proc)
		n.proc = proc
		n.treeSize = n.tree.Len()
	}
	n.treeVersion = version
	return nil
}

// drainDeliveriesLocked pushes protocol deliveries to the consumer channel.
// Deliveries arriving after Stop closed the channel (a step-mode driver
// poking a dead node) are discarded into the dropped counter.
func (n *Node) drainDeliveriesLocked() {
	for _, ev := range n.proc.Deliveries() {
		if n.deliveriesClosed {
			n.dropped.Add(1)
			continue
		}
		select {
		case n.deliveries <- ev:
		default:
			n.dropped.Add(1)
		}
	}
}

// KnownMembers returns the current alive membership size as seen locally.
func (n *Node) KnownMembers() int { return n.mem.Len() }

// AdaptiveStats reports the gossip core's adaptation counters — fan-out
// boosts taken, extra targets sampled, depths budgeted off measured loss.
// Zero when AdaptiveFanout is off.
func (n *Node) AdaptiveStats() core.AdaptiveStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.proc == nil {
		return core.AdaptiveStats{}
	}
	return n.proc.Adaptive()
}
