// Package node is the asynchronous pmcast runtime: one goroutine-driven
// process binding the dissemination algorithm (internal/core), the
// membership service (internal/membership) and a transport endpoint.
//
// A Node periodically executes the gossip task (the paper's "every P
// milliseconds"), periodically exchanges membership digests (gossip pull),
// sweeps its failure detector, and rebuilds its tree views whenever the
// membership version moves. Events are published with Publish and consumed
// from the Deliveries channel.
package node

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/transport"
	"pmcast/internal/tree"
)

// Errors reported by the runtime.
var (
	ErrStopped    = errors.New("node: stopped")
	ErrNotStarted = errors.New("node: not started")
)

// Config parameterizes a node.
type Config struct {
	// Addr is the node's hierarchical address (its place in the tree).
	Addr addr.Address
	// Space is the shared address space (depth d and arities).
	Space addr.Space
	// R is the redundancy factor.
	R int
	// F is the gossip fanout.
	F int
	// C is Pittel's constant for round budgets.
	C float64
	// Subscription is the node's initial interest.
	Subscription interest.Subscription
	// GossipInterval is the gossip period P (default 25ms).
	GossipInterval time.Duration
	// MembershipInterval is the digest period (default 4·GossipInterval).
	MembershipInterval time.Duration
	// MembershipFanout is how many peers receive each digest (default 2).
	MembershipFanout int
	// SuspectAfter configures the failure detector (default 20 membership
	// intervals; ≤ 0 keeps the default — failure detection is integral to
	// the membership scheme).
	SuspectAfter time.Duration
	// SuspicionSweeps is the number of consecutive over-deadline detector
	// sweeps before a silent neighbor is expelled (default 1; >1 enables
	// the Section 6 confirmation phase).
	SuspicionSweeps int
	// Threshold is the Section 5.3 tuning parameter h (0 = untuned).
	Threshold int
	// LocalDescent enables the Section 3.2 start-depth rule.
	LocalDescent bool
	// LeafFloodRate enables the Section 6 leaf-flooding extension (0 = off).
	LeafFloodRate float64
	// DeliveryBuffer sizes the Deliveries channel (default 256). When the
	// consumer lags, further deliveries are dropped and counted.
	DeliveryBuffer int
	// Seed seeds the node RNG (0 derives one from the address).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.GossipInterval <= 0 {
		c.GossipInterval = 25 * time.Millisecond
	}
	if c.MembershipInterval <= 0 {
		c.MembershipInterval = 4 * c.GossipInterval
	}
	if c.MembershipFanout <= 0 {
		c.MembershipFanout = 2
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 20 * c.MembershipInterval
	}
	if c.DeliveryBuffer <= 0 {
		c.DeliveryBuffer = 256
	}
	if c.Seed == 0 {
		h := int64(1469598103934665603)
		for _, b := range []byte(c.Addr.Key()) {
			h = (h ^ int64(b)) * 1099511628211
		}
		c.Seed = h
	}
	return c
}

// Node is one live pmcast process.
type Node struct {
	cfg Config
	ep  transport.Endpoint
	mem *membership.Service

	mu          sync.Mutex
	rng         *rand.Rand
	proc        *core.Process
	treeSize    int
	treeVersion uint64
	seen        map[event.ID]struct{}

	seq        atomic.Uint64
	deliveries chan event.Event
	dropped    atomic.Int64

	joinMu      sync.Mutex
	joinContact addr.Address

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
	started   atomic.Bool
}

// New attaches a node to a transport fabric — any implementation of the
// transport.Transport interface: the in-memory simulation network, the UDP
// backend, or whatever a deployment plugs in. The node is inert until Start.
func New(tr transport.Transport, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	mem, err := membership.New(membership.Config{
		Self:            cfg.Addr,
		Space:           cfg.Space,
		R:               cfg.R,
		SuspectAfter:    cfg.SuspectAfter,
		SuspicionSweeps: cfg.SuspicionSweeps,
	}, cfg.Subscription)
	if err != nil {
		return nil, err
	}
	ep, err := tr.Attach(cfg.Addr)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:        cfg,
		ep:         ep,
		mem:        mem,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		seen:       make(map[event.ID]struct{}),
		deliveries: make(chan event.Event, cfg.DeliveryBuffer),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	if err := n.rebuildLocked(); err != nil {
		ep.Close()
		return nil, err
	}
	return n, nil
}

// Addr returns the node address.
func (n *Node) Addr() addr.Address { return n.cfg.Addr }

// Membership exposes the membership service (read-mostly introspection).
func (n *Node) Membership() *membership.Service { return n.mem }

// Deliveries streams events matching the node's subscription, each exactly
// once. The channel closes on Stop.
func (n *Node) Deliveries() <-chan event.Event { return n.deliveries }

// DroppedDeliveries reports deliveries discarded because the consumer lagged.
func (n *Node) DroppedDeliveries() int64 { return n.dropped.Load() }

// Start launches the runtime loop.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.started.Store(true)
		go n.run()
	})
}

// Stop terminates the runtime, detaches from the network and closes the
// delivery channel. Safe to call multiple times.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
		if n.started.Load() {
			<-n.done
		} else {
			close(n.done)
		}
		n.ep.Close()
		close(n.deliveries)
	})
}

// Join bootstraps membership through a known contact: the node announces
// itself and lets the contact chain forward the announcement towards its
// immediate neighbors (Section 2.3, "Joining"). The announcement is
// re-sent on the membership period for as long as the node knows nobody,
// so a lossy network cannot strand a joiner.
func (n *Node) Join(contact addr.Address) error {
	n.joinMu.Lock()
	n.joinContact = contact
	n.joinMu.Unlock()
	return n.ep.Send(contact, n.mem.BuildJoinRequest())
}

// Leave announces departure to the closest known neighbors and stops the
// node (Section 2.3, "Leaving").
func (n *Node) Leave() {
	leave := n.mem.BuildLeave()
	for _, nb := range n.mem.ImmediateNeighbors() {
		_ = n.ep.Send(nb, leave) // best effort; gossip spreads the tombstone
	}
	n.Stop()
}

// Subscribe replaces the node's interests; the change propagates through
// membership anti-entropy and re-aggregates up the tree.
func (n *Node) Subscribe(sub interest.Subscription) {
	n.mem.Subscribe(sub)
}

// Publish multicasts an event built from the given attributes. The event ID
// is derived from the node address and a local sequence number.
func (n *Node) Publish(attrs map[string]event.Value) (event.ID, error) {
	select {
	case <-n.stop:
		return event.ID{}, ErrStopped
	default:
	}
	id := event.ID{Origin: n.cfg.Addr.Key(), Seq: n.seq.Add(1)}
	ev := event.New(id, attrs)

	n.mu.Lock()
	defer n.mu.Unlock()
	if err := n.rebuildIfStaleLocked(); err != nil {
		return event.ID{}, err
	}
	n.seen[id] = struct{}{}
	if err := n.proc.Multicast(ev); err != nil {
		return event.ID{}, err
	}
	n.drainDeliveriesLocked()
	return id, nil
}

// run is the node's event loop.
func (n *Node) run() {
	defer close(n.done)
	gossip := time.NewTicker(n.cfg.GossipInterval)
	defer gossip.Stop()
	memTick := time.NewTicker(n.cfg.MembershipInterval)
	defer memTick.Stop()
	sweep := time.NewTicker(n.cfg.SuspectAfter / 2)
	defer sweep.Stop()

	for {
		select {
		case <-n.stop:
			return
		case env, ok := <-n.ep.Recv():
			if !ok {
				return
			}
			n.handle(env)
		case <-gossip.C:
			n.tickGossip()
		case <-memTick.C:
			n.tickMembership()
		case <-sweep.C:
			n.mem.SweepFailures()
		}
	}
}

// handle dispatches one received payload.
func (n *Node) handle(env transport.Envelope) {
	n.mem.MarkHeard(env.From)
	switch msg := env.Payload.(type) {
	case core.Gossip:
		n.handleGossip(msg)
	case membership.Digest:
		if upd := n.mem.HandleDigest(msg); upd != nil {
			_ = n.ep.Send(env.From, *upd)
		}
	case membership.Update:
		n.mem.Apply(msg)
	case membership.JoinRequest:
		reply, fwd, forwardIt := n.mem.HandleJoinRequest(msg)
		_ = n.ep.Send(msg.Joiner.Addr, reply)
		if forwardIt && msg.Hops > 0 {
			msg.Hops--
			_ = n.ep.Send(fwd, msg)
		}
	case membership.Leave:
		n.mem.HandleLeave(msg)
	}
}

func (n *Node) handleGossip(g core.Gossip) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.seen[g.Event.ID()]; dup {
		return
	}
	if err := n.rebuildIfStaleLocked(); err != nil {
		return
	}
	n.seen[g.Event.ID()] = struct{}{}
	n.proc.Receive(g)
	n.drainDeliveriesLocked()
}

func (n *Node) tickGossip() {
	n.mu.Lock()
	if err := n.rebuildIfStaleLocked(); err != nil {
		n.mu.Unlock()
		return
	}
	sends := n.proc.Tick(n.rng)
	n.drainDeliveriesLocked()
	n.mu.Unlock()
	for _, s := range sends {
		_ = n.ep.Send(s.To, s.Gossip)
	}
}

func (n *Node) tickMembership() {
	// Bootstrap retry: while the node knows nobody, keep announcing itself
	// to its join contact (join messages are as lossy as any other).
	if n.mem.Len() <= 1 {
		n.joinMu.Lock()
		contact := n.joinContact
		n.joinMu.Unlock()
		if !contact.IsZero() {
			_ = n.ep.Send(contact, n.mem.BuildJoinRequest())
		}
	}
	n.mu.Lock()
	targets := n.mem.GossipTargets(n.rng, n.cfg.MembershipFanout)
	n.mu.Unlock()
	d := n.mem.MakeDigest()
	for _, to := range targets {
		_ = n.ep.Send(to, d)
	}
}

// rebuildIfStaleLocked refreshes tree views when membership moved.
func (n *Node) rebuildIfStaleLocked() error {
	if v := n.mem.Version(); v != n.treeVersion {
		return n.rebuildLocked()
	}
	return nil
}

// rebuildLocked reconstructs the tree and protocol state from the current
// membership snapshot. Buffered gossip entries do not survive a rebuild;
// gossip redundancy covers the gap (see DESIGN.md).
func (n *Node) rebuildLocked() error {
	version := n.mem.Version()
	members := n.mem.Snapshot()
	t, err := tree.Build(tree.Config{Space: n.cfg.Space, R: n.cfg.R}, members)
	if err != nil {
		return fmt.Errorf("node: rebuilding tree: %w", err)
	}
	proc, err := core.BuildProcess(t, n.cfg.Addr, core.Config{
		D:             n.cfg.Space.Depth(),
		F:             n.cfg.F,
		C:             n.cfg.C,
		Threshold:     n.cfg.Threshold,
		LocalDescent:  n.cfg.LocalDescent,
		LeafFloodRate: n.cfg.LeafFloodRate,
	})
	if err != nil {
		return fmt.Errorf("node: rebuilding process: %w", err)
	}
	n.proc = proc
	n.treeSize = len(members)
	n.treeVersion = version
	return nil
}

// drainDeliveriesLocked pushes protocol deliveries to the consumer channel.
func (n *Node) drainDeliveriesLocked() {
	for _, ev := range n.proc.Deliveries() {
		select {
		case n.deliveries <- ev:
		default:
			n.dropped.Add(1)
		}
	}
}

// KnownMembers returns the current alive membership size as seen locally.
func (n *Node) KnownMembers() int { return n.mem.Len() }
