package node

import (
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/transport"
)

// cluster spins up one node per address with the given subscription chooser
// and fully meshes their membership via join + anti-entropy. It works over
// any transport backend.
func cluster(t *testing.T, net transport.Transport, space addr.Space, addrs []addr.Address,
	subFor func(addr.Address) interest.Subscription) []*Node {
	t.Helper()
	nodes := make([]*Node, len(addrs))
	for i, a := range addrs {
		n, err := New(net, Config{
			Addr:               a,
			Space:              space,
			R:                  2,
			F:                  3,
			C:                  2,
			Subscription:       subFor(a),
			GossipInterval:     4 * time.Millisecond,
			MembershipInterval: 6 * time.Millisecond,
			SuspectAfter:       time.Hour, // off unless a test shortens it
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	// Bootstrap: everyone joins through node 0.
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, n := range nodes {
			if n.KnownMembers() != len(nodes) {
				return false
			}
		}
		return true
	}, "membership convergence")
	return nodes
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func gridAddrs(space addr.Space, count int) []addr.Address {
	out := make([]addr.Address, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, space.AddressAt(i))
	}
	return out
}

func subEq(val int64) interest.Subscription {
	return interest.NewSubscription().Where("b", interest.EqInt(val))
}

func TestPublishReachesInterestedOnly(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(3, 2)
	// Members of subtree 0 and 1 want b=1; subtree 2 wants b=2.
	subFor := func(a addr.Address) interest.Subscription {
		if a.Digit(1) < 2 {
			return subEq(1)
		}
		return subEq(2)
	}
	nodes := cluster(t, net, space, gridAddrs(space, 9), subFor)

	id, err := nodes[8].Publish(map[string]event.Value{"b": event.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if id.Seq != 1 {
		t.Errorf("seq = %d", id.Seq)
	}
	// All six interested nodes deliver.
	for _, n := range nodes[:6] {
		n := n
		waitFor(t, 5*time.Second, func() bool {
			select {
			case ev := <-n.Deliveries():
				if ev.ID() != id {
					t.Errorf("node %s delivered wrong event %v", n.Addr(), ev.ID())
				}
				return true
			default:
				return false
			}
		}, "delivery at "+n.Addr().String())
	}
	// The uninterested never deliver (give gossip time to settle).
	time.Sleep(100 * time.Millisecond)
	for _, n := range nodes[6:] {
		select {
		case ev := <-n.Deliveries():
			t.Errorf("uninterested node %s delivered %v", n.Addr(), ev)
		default:
		}
	}
}

func TestExactlyOnceDelivery(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(3, 1)
	nodes := cluster(t, net, space, gridAddrs(space, 3), func(addr.Address) interest.Subscription {
		return subEq(7)
	})
	id, err := nodes[0].Publish(map[string]event.Value{"b": event.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(nodes))
	deadline := time.After(500 * time.Millisecond)
	for i := 0; i < len(nodes); {
		select {
		case ev := <-nodes[i].Deliveries():
			if ev.ID() == id {
				counts[i]++
			}
		case <-deadline:
			i = len(nodes)
		default:
			time.Sleep(time.Millisecond)
			if counts[i] > 0 {
				i++
			}
		}
	}
	time.Sleep(50 * time.Millisecond)
	for i, n := range nodes {
		// Drain any extras.
		for {
			select {
			case ev := <-n.Deliveries():
				if ev.ID() == id {
					counts[i]++
				}
				continue
			default:
			}
			break
		}
		if counts[i] != 1 {
			t.Errorf("node %d delivered %d times", i, counts[i])
		}
	}
}

func TestSubscribeChangesRouting(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(4, 1)
	nodes := cluster(t, net, space, gridAddrs(space, 4), func(addr.Address) interest.Subscription {
		return subEq(1)
	})
	// Node 3 switches interests to b=2.
	nodes[3].Subscribe(subEq(2))
	// Wait for the new subscription to propagate to the publisher.
	waitFor(t, 5*time.Second, func() bool {
		rec, ok := nodes[0].Membership().Lookup(nodes[3].Addr())
		return ok && rec.Stamp >= 2
	}, "subscription propagation")

	if _, err := nodes[0].Publish(map[string]event.Value{"b": event.Int(2)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		select {
		case <-nodes[3].Deliveries():
			return true
		default:
			return false
		}
	}, "resubscribed delivery")
}

func TestLeaveTombstonesAcrossCluster(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(4, 1)
	nodes := cluster(t, net, space, gridAddrs(space, 4), func(addr.Address) interest.Subscription {
		return subEq(1)
	})
	nodes[2].Leave()
	waitFor(t, 5*time.Second, func() bool {
		return nodes[0].KnownMembers() == 3 &&
			nodes[1].KnownMembers() == 3 &&
			nodes[3].KnownMembers() == 3
	}, "leave propagation")
}

func TestFailureDetectionExpelsSilentNeighbor(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(3, 1)
	addrs := gridAddrs(space, 3)
	nodes := make([]*Node, len(addrs))
	for i, a := range addrs {
		n, err := New(net, Config{
			Addr:               a,
			Space:              space,
			R:                  2,
			F:                  2,
			Subscription:       subEq(1),
			GossipInterval:     4 * time.Millisecond,
			MembershipInterval: 5 * time.Millisecond,
			SuspectAfter:       60 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		return nodes[0].KnownMembers() == 3 && nodes[1].KnownMembers() == 3
	}, "initial convergence")

	// Kill node 2 without a leave; the others must expel it.
	nodes[2].Stop()
	waitFor(t, 5*time.Second, func() bool {
		return nodes[0].KnownMembers() == 2 && nodes[1].KnownMembers() == 2
	}, "failure detection")
}

func TestPublishAfterStop(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(2, 1)
	n, err := New(net, Config{
		Addr: space.AddressAt(0), Space: space, R: 1, F: 1,
		Subscription: subEq(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	n.Start()
	n.Stop()
	if _, err := n.Publish(map[string]event.Value{"b": event.Int(1)}); err == nil {
		t.Error("publish after stop accepted")
	}
	n.Stop() // idempotent
}

func TestPartitionHealsAndMembershipReconverges(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(4, 1)
	nodes := cluster(t, net, space, gridAddrs(space, 4), func(addr.Address) interest.Subscription {
		return subEq(1)
	})
	// Partition node 3 from everyone; events published meanwhile miss it.
	for _, n := range nodes[:3] {
		net.BlockBidirectional(n.Addr(), nodes[3].Addr())
	}
	if _, err := nodes[0].Publish(map[string]event.Value{"b": event.Int(1)}); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes[1:3] {
		n := n
		waitFor(t, 5*time.Second, func() bool {
			select {
			case <-n.Deliveries():
				return true
			default:
				return false
			}
		}, "delivery on majority side")
	}
	select {
	case ev := <-nodes[3].Deliveries():
		t.Fatalf("partitioned node delivered %v", ev)
	case <-time.After(60 * time.Millisecond):
	}
	// Heal: anti-entropy reconverges and new events reach node 3 again.
	net.Heal()
	if _, err := nodes[0].Publish(map[string]event.Value{"b": event.Int(1)}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		select {
		case <-nodes[3].Deliveries():
			return true
		default:
			return false
		}
	}, "post-heal delivery")
}

func TestLossyNetworkStillDelivers(t *testing.T) {
	net := transport.MustNetwork(transport.Config{Loss: 0.2, Seed: 5})
	space := addr.MustRegular(3, 2)
	nodes := cluster(t, net, space, gridAddrs(space, 9), func(addr.Address) interest.Subscription {
		return subEq(1)
	})
	// Publish several events; gossip redundancy should beat 20% loss.
	const events = 3
	for i := 0; i < events; i++ {
		if _, err := nodes[0].Publish(map[string]event.Value{"b": event.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes[1:] {
		n := n
		got := 0
		waitFor(t, 10*time.Second, func() bool {
			select {
			case <-n.Deliveries():
				got++
			default:
			}
			return got == events
		}, "lossy delivery at "+n.Addr().String())
	}
}
