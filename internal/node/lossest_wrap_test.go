package node

import (
	"math"
	"testing"
)

// TestObserveBeaconCounterWraparound drives a measurement window across the
// uint32 boundary. The cumulative counters are modular; before the
// serial-number fix, a beacon just past 2^32 compared "smaller" than a base
// just below it and reset the estimator mid-stream, so sustained 64k-scale
// campaigns lost their loss signal every 4 billion parts.
func TestObserveBeaconCounterWraparound(t *testing.T) {
	e := newLossEstimator()
	const peer = "p"

	// Anchor a window just below the wrap point.
	base := uint32(math.MaxUint32 - 5)
	e.peerLocked(peer).recvFrom = 0
	e.observeBeacon(peer, base) // first beacon: sync only
	if st := e.peers[peer]; !st.synced || st.beaconBase != base {
		t.Fatalf("first beacon did not anchor: %+v", st)
	}

	// The peer sends 16 more parts, wrapping its counter; we receive 12.
	e.noteRecv(peer, 12)
	wrapped := base + 16 // modular: wraps to 10
	if wrapped > base {
		t.Fatalf("test setup: counter did not wrap (base %d, next %d)", base, wrapped)
	}
	e.observeBeacon(peer, wrapped)

	est, ok := e.Estimate(peer)
	if !ok {
		t.Fatalf("window crossing 2^32 was treated as a peer restart — no estimate folded")
	}
	want := 1 - 12.0/16.0
	if math.Abs(est-want) > 1e-9 {
		t.Fatalf("estimate %v, want %v (modular 16-part window, 12 received)", est, want)
	}

	// The window must have re-anchored at the wrapped value.
	if st := e.peers[peer]; st.beaconBase != wrapped {
		t.Fatalf("beaconBase = %d, want %d", st.beaconBase, wrapped)
	}

	// A genuinely backwards beacon (restart) must still reset: half the ring
	// away reads as negative under serial-number arithmetic.
	e.noteRecv(peer, 100)
	e.observeBeacon(peer, wrapped-1000)
	if _, ok := e.Estimate(peer); ok {
		t.Fatalf("backwards beacon (peer restart) did not reset the estimator")
	}

	// Receive-counter wraparound on our side of the window must also fold
	// modularly: re-anchor with recvFrom near the top, then push it past 0.
	e2 := newLossEstimator()
	st := e2.peerLocked(peer)
	st.recvFrom = math.MaxUint32 - 3
	e2.observeBeacon(peer, 0) // anchor: recvBase = MaxUint32-3, beaconBase = 0
	e2.noteRecv(peer, 10)     // recvFrom wraps to 6
	e2.observeBeacon(peer, 10)
	est, ok = e2.Estimate(peer)
	if !ok {
		t.Fatalf("receive-side wrap treated as restart")
	}
	if math.Abs(est-0.0) > 1e-9 {
		t.Fatalf("estimate %v, want 0 (10 sent, 10 received across recv wrap)", est)
	}
}
