package node

import (
	"math"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/membership"
	"pmcast/internal/transport"
	"pmcast/internal/wire"
)

func TestEstimatorZeroTrafficPeers(t *testing.T) {
	e := newLossEstimator()
	if _, ok := e.Estimate("1.2"); ok {
		t.Error("unknown peer reported an estimate")
	}
	// Traffic without a closed window is still no signal: callers must fall
	// back to their configured loss assumption, not read 0.
	e.noteRecv("1.2", 5)
	e.observeBeacon("1.2", 5) // first beacon only anchors the window
	if _, ok := e.Estimate("1.2"); ok {
		t.Error("anchor beacon alone produced an estimate")
	}
	s := e.stats()
	if s.TrackedPeers != 1 || s.MeasuredPeers != 0 {
		t.Errorf("stats = %+v, want 1 tracked / 0 measured", s)
	}
}

func TestEstimatorMeasuresWindows(t *testing.T) {
	e := newLossEstimator()
	e.noteRecv("p", 4)
	e.observeBeacon("p", 4) // anchor: bases = (4, 4)
	// Window 1: peer sends 16 more parts, half arrive.
	e.noteRecv("p", 8)
	e.observeBeacon("p", 20)
	got, ok := e.Estimate("p")
	if !ok || math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("after 8/16 window: est = %v, %v; want 0.5", got, ok)
	}
	// Window 2: lossless 16 parts; EWMA folds to 0.5·0 + 0.5·0.5.
	e.noteRecv("p", 16)
	e.observeBeacon("p", 36)
	if got, _ := e.Estimate("p"); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("after lossless window: est = %v, want 0.25", got)
	}
}

func TestEstimatorShortWindowsAccumulate(t *testing.T) {
	e := newLossEstimator()
	e.observeBeacon("p", 0) // anchor at zero
	// Beacons arriving before lossEstMinWindow parts extend the window
	// instead of sampling noise.
	e.noteRecv("p", 3)
	e.observeBeacon("p", 4)
	if _, ok := e.Estimate("p"); ok {
		t.Fatal("sub-window beacon produced an estimate")
	}
	// The next beacon closes the combined 8-part window: 6 of 8 arrived.
	e.noteRecv("p", 3)
	e.observeBeacon("p", 8)
	if got, ok := e.Estimate("p"); !ok || math.Abs(got-0.25) > 1e-9 {
		t.Errorf("combined window: est = %v, %v; want 0.25", got, ok)
	}
}

func TestEstimatorRejoinResets(t *testing.T) {
	e := newLossEstimator()
	e.observeBeacon("p", 0)
	e.noteRecv("p", 8)
	e.observeBeacon("p", 16) // 8/16: est 0.5
	if _, ok := e.Estimate("p"); !ok {
		t.Fatal("no estimate before the reset")
	}
	// The peer restarts: its counter runs backwards. Stale history would be
	// phantom loss against the new identity — everything resets.
	e.observeBeacon("p", 2)
	if _, ok := e.Estimate("p"); ok {
		t.Error("estimate survived a counter regression")
	}
	// And the estimator re-anchors cleanly: a lossless window after the
	// rejoin reads as lossless.
	e.noteRecv("p", 10)
	e.observeBeacon("p", 12)
	if got, ok := e.Estimate("p"); !ok || got != 0 {
		t.Errorf("post-rejoin lossless window: est = %v, %v; want 0", got, ok)
	}
}

func TestEstimatorClampsReorderedWindows(t *testing.T) {
	e := newLossEstimator()
	e.observeBeacon("p", 0)
	// More arrivals than the beacon accounts for (a beacon overtaken by
	// reordering): loss clamps at 0 rather than going negative.
	e.noteRecv("p", 20)
	e.observeBeacon("p", 10)
	if got, ok := e.Estimate("p"); !ok || got != 0 {
		t.Errorf("est = %v, %v; want 0, true", got, ok)
	}
}

// TestBeaconStampPositions pins the sender/receiver contract: a beacon's
// Sent field equals the cumulative part count as of the beacon's canonical
// slot, and a lossless receiver counting the same parts reads exactly that
// value — so the first measured window after the anchor is zero loss.
func TestBeaconStampPositions(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(4, 1)
	mk := func(i int) *Node {
		n, err := New(net, Config{
			Addr: space.AddressAt(i), Space: space, R: 1, F: 1, C: 1,
			AdaptiveFanout: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { n.Stop() })
		return n
	}
	sender, receiver := mk(0), mk(1)
	to := receiver.Addr()

	d := membership.Digest{From: sender.Addr()}
	hb := membership.Heartbeat{From: sender.Addr()}
	g := core.Gossip{Event: event.NewBuilder().Int("b", 1).Build(event.ID{Origin: "s", Seq: 1})}
	upd := membership.Update{From: sender.Addr()}
	batch := wire.Batch{
		Gossips:   []core.Gossip{g, g},
		Update:    &upd,
		Digest:    &d,
		Heartbeat: &hb,
	}
	stamped := sender.stampOutgoing(to, batch).(wire.Batch)
	// Canonical order: 2 gossips, update (3), digest (4), heartbeat (5).
	if got := stamped.Digest.Sent; got != 4 {
		t.Errorf("digest Sent = %d, want 4", got)
	}
	if got := stamped.Heartbeat.Sent; got != 5 {
		t.Errorf("heartbeat Sent = %d, want 5", got)
	}
	if d.Sent != 0 || hb.Sent != 0 {
		t.Error("stamping mutated the caller's messages (must copy: egress encodes asynchronously)")
	}
	// A bare digest next: base 5, so Sent = 6.
	bare := sender.stampOutgoing(to, membership.Digest{From: sender.Addr()}).(membership.Digest)
	if bare.Sent != 6 {
		t.Errorf("bare digest Sent = %d, want 6", bare.Sent)
	}

	// Lossless receive of the same traffic: the batch's digest anchors, the
	// bare digest closes a window — except it is below lossEstMinWindow, so
	// still no sample; pad with gossips then beacon again for a 0 estimate.
	from := sender.Addr()
	receiver.observeIncoming(from, stamped)
	receiver.observeIncoming(from, bare)
	for i := 0; i < 8; i++ {
		sender.stampOutgoing(to, g)
		receiver.observeIncoming(from, g)
	}
	closing := sender.stampOutgoing(to, membership.Heartbeat{From: from}).(membership.Heartbeat)
	receiver.observeIncoming(from, closing)
	got, ok := receiver.est.Estimate(from.Key())
	if !ok || got != 0 {
		t.Errorf("lossless link estimate = %v, %v; want 0, true", got, ok)
	}
	stats := receiver.LossEstimates()
	if stats.MeasuredPeers != 1 || stats.MeanLoss != 0 {
		t.Errorf("stats = %+v, want 1 measured peer at 0 loss", stats)
	}
}

// TestAdaptiveClusterConvergesLossless runs a real 8-node cluster with
// adaptive fan-out on a clean fabric: estimators must converge toward zero
// (no phantom loss from the protocol's own traffic patterns).
func TestAdaptiveClusterConvergesLossless(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(2, 3)
	addrs := gridAddrs(space, 8)
	nodes := make([]*Node, len(addrs))
	for i, a := range addrs {
		n, err := New(net, Config{
			Addr: a, Space: space, R: 2, F: 3, C: 2,
			GossipInterval:     2 * time.Millisecond,
			MembershipInterval: 3 * time.Millisecond,
			SuspectAfter:       time.Hour,
			AdaptiveFanout:     true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, n := range nodes {
			if n.KnownMembers() != len(nodes) {
				return false
			}
		}
		return true
	}, "membership convergence")
	waitFor(t, 5*time.Second, func() bool {
		for _, n := range nodes {
			if n.LossEstimates().MeasuredPeers == 0 {
				return false
			}
		}
		return true
	}, "estimators to measure at least one window per node")
	for _, n := range nodes {
		if s := n.LossEstimates(); s.MeanLoss > 0.05 {
			t.Errorf("node %v: mean estimated loss %v on a lossless fabric", n.Addr(), s.MeanLoss)
		}
	}
}
