package node

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/transport"
	"pmcast/internal/transport/udp"
)

// The seeded 64-node scenario of the transport-parity contract: a regular
// 8×8 tree where the left half of every subgroup (even first digit) wants
// b=0 and the right half wants b=1. Node 0.0 publishes two events of each
// class; every node must deliver exactly its class — over whichever fabric
// carries the messages.
const (
	parityArity = 8
	parityDepth = 2
)

func paritySub(a addr.Address) interest.Subscription {
	return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%2)))
}

// runParityScenario drives the scenario over the given transport and
// returns, per node address, the sorted list of delivered event IDs.
func runParityScenario(t *testing.T, tr transport.Transport) map[string][]event.ID {
	t.Helper()
	space := addr.MustRegular(parityArity, parityDepth)
	addrs := gridAddrs(space, space.Capacity())
	nodes := make([]*Node, len(addrs))
	for i, a := range addrs {
		n, err := New(tr, Config{
			Addr:               a,
			Space:              space,
			R:                  2,
			F:                  5,
			C:                  4,
			Subscription:       paritySub(a),
			GossipInterval:     10 * time.Millisecond,
			MembershipInterval: 15 * time.Millisecond,
			SuspectAfter:       time.Hour, // failure detection off: no churn here
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 60*time.Second, func() bool {
		for _, n := range nodes {
			if n.KnownMembers() != len(nodes) {
				return false
			}
		}
		return true
	}, fmt.Sprintf("%d-node membership convergence", len(nodes)))

	// Publish two events per interest class from node 0.0.
	const perClass = 2
	for i := 0; i < perClass; i++ {
		for b := int64(0); b < 2; b++ {
			if _, err := nodes[0].Publish(map[string]event.Value{"b": event.Int(b)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Every node delivers exactly perClass events (its own class).
	got := make(map[string][]event.ID, len(nodes))
	for _, n := range nodes {
		n := n
		key := n.Addr().Key()
		waitFor(t, 60*time.Second, func() bool {
			select {
			case ev := <-n.Deliveries():
				got[key] = append(got[key], ev.ID())
			default:
			}
			return len(got[key]) >= perClass
		}, "deliveries at "+key)
	}
	// Let any stray duplicates or misroutes surface, then drain.
	time.Sleep(150 * time.Millisecond)
	for _, n := range nodes {
		for {
			select {
			case ev := <-n.Deliveries():
				got[n.Addr().Key()] = append(got[n.Addr().Key()], ev.ID())
				continue
			default:
			}
			break
		}
		if d := n.DroppedDeliveries(); d != 0 {
			t.Errorf("%s dropped %d deliveries", n.Addr(), d)
		}
	}
	for key := range got {
		sort.Slice(got[key], func(i, j int) bool {
			return got[key][i].Seq < got[key][j].Seq
		})
	}
	return got
}

// expectedParityDeliveries is the ground truth: publisher 0.0 assigns Seq
// 1..4 alternating classes b=0,1,0,1; a node with first digit x delivers
// exactly the events of class x%2.
func expectedParityDeliveries() map[string][]event.ID {
	space := addr.MustRegular(parityArity, parityDepth)
	origin := space.AddressAt(0).Key()
	byClass := map[int][]event.ID{
		0: {{Origin: origin, Seq: 1}, {Origin: origin, Seq: 3}},
		1: {{Origin: origin, Seq: 2}, {Origin: origin, Seq: 4}},
	}
	want := make(map[string][]event.ID, space.Capacity())
	for i := 0; i < space.Capacity(); i++ {
		a := space.AddressAt(i)
		want[a.Key()] = byClass[a.Digit(1)%2]
	}
	return want
}

// TestSeededScenarioParityAcrossFabrics is the acceptance contract of the
// pluggable transport API: the same seeded 64-node publish/subscribe
// scenario delivers the same event set over the in-memory fabric and over
// real UDP loopback sockets.
func TestSeededScenarioParityAcrossFabrics(t *testing.T) {
	want := expectedParityDeliveries()

	var overMemory, overUDP map[string][]event.ID
	t.Run("memory", func(t *testing.T) {
		net := transport.NewNetwork(transport.Config{Seed: 42})
		defer net.Close()
		overMemory = runParityScenario(t, net)
		if !reflect.DeepEqual(overMemory, want) {
			t.Errorf("in-memory deliveries diverge from the scenario ground truth:\n got %v\nwant %v",
				overMemory, want)
		}
	})
	t.Run("udp", func(t *testing.T) {
		space := addr.MustRegular(parityArity, parityDepth)
		peers := make(map[string]string, space.Capacity())
		for i := 0; i < space.Capacity(); i++ {
			// Ephemeral loopback ports; endpoints register their real
			// socket at attach time.
			peers[space.AddressAt(i).String()] = "127.0.0.1:0"
		}
		res, err := udp.NewStaticResolver(peers)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := udp.New(udp.Config{Resolver: res})
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		overUDP = runParityScenario(t, tr)
		if !reflect.DeepEqual(overUDP, want) {
			t.Errorf("UDP deliveries diverge from the scenario ground truth:\n got %v\nwant %v",
				overUDP, want)
		}
	})
	if overMemory == nil || overUDP == nil {
		t.Fatal("a fabric run did not complete")
	}
	if !reflect.DeepEqual(overMemory, overUDP) {
		t.Error("fabrics disagree on the delivered event set")
	}
}
