// The transport-parity contract, now expressed through the scenario
// harness: the seeded 64-node publish/subscribe campaign (harness.Parity64)
// runs deterministically on the virtual clock over the in-memory fabric,
// and the same scenario driven in real time over UDP loopback sockets must
// deliver the identical event sets. The test lives in an external package
// because the harness imports the node runtime.
package node_test

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/harness"
	"pmcast/internal/interest"
	"pmcast/internal/node"
	"pmcast/internal/transport/udp"
)

// The scenario constants mirror harness.Parity64: a regular 8×8 tree whose
// top-level subtrees alternate interest classes — even first digit wants
// b=0, odd wants b=1. Node 0.0 publishes two events of each class; every
// node must deliver exactly its class — over whichever fabric carries the
// messages.
const (
	parityArity = 8
	parityDepth = 2
)

func paritySub(a addr.Address) interest.Subscription {
	return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%2)))
}

// expectedParityDeliveries is the ground truth: publisher 0.0 assigns Seq
// 1..4 alternating classes b=0,1,0,1; a node with first digit x delivers
// exactly the events of class x%2.
func expectedParityDeliveries() map[string][]event.ID {
	space := addr.MustRegular(parityArity, parityDepth)
	origin := space.AddressAt(0).Key()
	byClass := map[int][]event.ID{
		0: {{Origin: origin, Seq: 1}, {Origin: origin, Seq: 3}},
		1: {{Origin: origin, Seq: 2}, {Origin: origin, Seq: 4}},
	}
	want := make(map[string][]event.ID, space.Capacity())
	for i := 0; i < space.Capacity(); i++ {
		a := space.AddressAt(i)
		want[a.Key()] = byClass[a.Digit(1)%2]
	}
	return want
}

// sortBySeq normalizes per-node delivery order for set comparison.
func sortBySeq(got map[string][]event.ID) map[string][]event.ID {
	for key := range got {
		sort.Slice(got[key], func(i, j int) bool { return got[key][i].Seq < got[key][j].Seq })
	}
	return got
}

// runParityOverUDP drives the scenario in real time over UDP loopback
// sockets and returns, per node address, the delivered event IDs.
func runParityOverUDP(t *testing.T) map[string][]event.ID {
	t.Helper()
	space := addr.MustRegular(parityArity, parityDepth)
	peers := make(map[string]string, space.Capacity())
	for i := 0; i < space.Capacity(); i++ {
		// Ephemeral loopback ports; endpoints register their real socket at
		// attach time.
		peers[space.AddressAt(i).String()] = "127.0.0.1:0"
	}
	res, err := udp.NewStaticResolver(peers)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := udp.New(udp.Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	nodes := make([]*node.Node, space.Capacity())
	for i := range nodes {
		a := space.AddressAt(i)
		n, err := node.New(tr, node.Config{
			Addr:               a,
			Space:              space,
			R:                  2,
			F:                  5,
			C:                  4,
			Subscription:       paritySub(a),
			GossipInterval:     10 * time.Millisecond,
			MembershipInterval: 15 * time.Millisecond,
			SuspectAfter:       time.Hour, // failure detection off: no churn here
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitUntil(t, 60*time.Second, func() bool {
		for _, n := range nodes {
			if n.KnownMembers() != len(nodes) {
				return false
			}
		}
		return true
	}, fmt.Sprintf("%d-node membership convergence", len(nodes)))

	// Publish two events per interest class from node 0.0.
	const perClass = 2
	for i := 0; i < perClass; i++ {
		for b := int64(0); b < 2; b++ {
			if _, err := nodes[0].Publish(map[string]event.Value{"b": event.Int(b)}); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Every node delivers exactly perClass events (its own class).
	got := make(map[string][]event.ID, len(nodes))
	for _, n := range nodes {
		n := n
		key := n.Addr().Key()
		waitUntil(t, 60*time.Second, func() bool {
			select {
			case ev := <-n.Deliveries():
				got[key] = append(got[key], ev.ID())
			default:
			}
			return len(got[key]) >= perClass
		}, "deliveries at "+key)
	}
	// Let any stray duplicates or misroutes surface, then drain.
	time.Sleep(150 * time.Millisecond)
	for _, n := range nodes {
		for {
			select {
			case ev := <-n.Deliveries():
				got[n.Addr().Key()] = append(got[n.Addr().Key()], ev.ID())
				continue
			default:
			}
			break
		}
		if d := n.DroppedDeliveries(); d != 0 {
			t.Errorf("%s dropped %d deliveries", n.Addr(), d)
		}
	}
	return sortBySeq(got)
}

func waitUntil(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestSeededScenarioParityAcrossFabrics is the acceptance contract of the
// pluggable transport API, upgraded by the virtual-time harness: the
// deterministic harness run of the parity scenario and a real-time run over
// UDP loopback sockets must both deliver exactly the scenario ground truth.
func TestSeededScenarioParityAcrossFabrics(t *testing.T) {
	want := expectedParityDeliveries()

	var overHarness, overUDP map[string][]event.ID
	t.Run("harness", func(t *testing.T) {
		res, err := harness.Parity64().Run(42)
		if err != nil {
			t.Fatal(err)
		}
		overHarness = sortBySeq(res.Delivered)
		if !reflect.DeepEqual(overHarness, want) {
			t.Errorf("harness deliveries diverge from the scenario ground truth:\n got %v\nwant %v",
				overHarness, want)
		}
		if res.Report.MeanReliability != 1 {
			t.Errorf("harness run reliability %.3f, want 1.0", res.Report.MeanReliability)
		}
	})
	t.Run("udp", func(t *testing.T) {
		overUDP = runParityOverUDP(t)
		if !reflect.DeepEqual(overUDP, want) {
			t.Errorf("UDP deliveries diverge from the scenario ground truth:\n got %v\nwant %v",
				overUDP, want)
		}
	})
	if overHarness == nil || overUDP == nil {
		t.Fatal("a fabric run did not complete")
	}
	if !reflect.DeepEqual(overHarness, overUDP) {
		t.Error("fabrics disagree on the delivered event set")
	}
}

// TestParityScenarioReplaysByteIdentically anchors the harness half of the
// contract: same scenario, same seed, byte-identical delivery traces.
func TestParityScenarioReplaysByteIdentically(t *testing.T) {
	if testing.Short() {
		t.Skip("second harness run skipped in -short")
	}
	a, err := harness.Parity64().Run(42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := harness.Parity64().Run(42)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.TraceSHA256 != b.Report.TraceSHA256 {
		t.Errorf("same-seed parity traces diverge: %s vs %s",
			a.Report.TraceSHA256, b.Report.TraceSHA256)
	}
}
