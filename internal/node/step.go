// Step mode: the staged engine driven synchronously, at parallelism 0, by
// an external scheduler.
//
// A node normally runs its own protocol goroutine (Start) with the periodic
// tasks driven by its clock's tickers and, in parallel configurations, the
// ingress and egress stages on their own workers. The methods below expose
// the same stages as synchronous calls on the caller's goroutine — ingress
// (HandleEnvelope / PumpInbox), protocol (TickGossip / TickMembership /
// SweepFailures) and egress (emit falls through to a direct send when no
// egress workers run) — so an external scheduler such as internal/harness's
// virtual-time scenario engine can drive a whole fleet deterministically
// from a single goroutine. This is not a second runtime: it is the engine's
// degenerate configuration, every stage collapsed onto one goroutine, which
// is why seeded step-mode campaigns replay the exact traces earlier serial
// revisions produced. Never call Start on a step-driven node, and never mix
// step calls with a running Start loop.

package node

import (
	"errors"
	"fmt"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/transport"
)

// HandleEnvelope processes one received message synchronously — the
// ingress-plus-protocol stages of the engine run inline (deferred-decode
// payloads are unframed with the node's own decoder).
func (n *Node) HandleEnvelope(env transport.Envelope) { n.handle(env) }

// PumpInbox drains and handles every envelope currently queued on the
// node's endpoint without blocking, returning how many were processed. A
// closed endpoint pumps zero.
func (n *Node) PumpInbox() int {
	handled := 0
	for {
		select {
		case env, ok := <-n.ep.Recv():
			if !ok {
				return handled
			}
			n.handle(env)
			handled++
		default:
			return handled
		}
	}
}

// WarmViews folds any pending membership changes into the node's tree views
// immediately instead of lazily at the next tick. The fold is a pure
// function of the node's own membership state, so a harness may warm many
// nodes concurrently — after a bootstrap that hands the whole fleet the
// same initial roster, the per-node folds are the same work a real
// deployment does on a thousand separate machines.
func (n *Node) WarmViews() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rebuildIfStaleLocked()
}

// AdoptViewsFrom copies the donor's folded tree instead of recomputing an
// identical fold. Legal only when both nodes hold the same membership
// roster (checked via the roster hash) and the donor is fully folded; both
// nodes must be quiescent — this is a bootstrap-time tool for harnesses
// co-hosting many nodes, where n identical folds would otherwise cost n
// full aggregate recomputations.
func (n *Node) AdoptViewsFrom(donor *Node) error {
	if donor == n {
		return nil
	}
	donor.mu.Lock()
	if donor.treeVersion != donor.mem.Version() {
		donor.mu.Unlock()
		return errors.New("node: donor views are stale")
	}
	donorHash := donor.mem.RosterHash()
	clone := donor.tree.Clone()
	// Freeze the donor's fold bookkeeping into a shared read-only base so
	// every recipient holds a pointer instead of an O(roster) copy. The
	// donor itself keeps writing to a fresh (empty) own map from here on;
	// nobody mutates the frozen table again.
	if len(donor.applied) > 0 {
		if donor.appliedBase == nil {
			donor.appliedBase = donor.applied
		} else {
			merged := make(map[string]appliedRecord, len(donor.appliedBase)+len(donor.applied))
			for k, v := range donor.appliedBase {
				merged[k] = v
			}
			for k, v := range donor.applied {
				merged[k] = v
			}
			donor.appliedBase = merged
		}
		donor.applied = make(map[string]appliedRecord)
	}
	appliedBase := donor.appliedBase
	donor.mu.Unlock()

	n.mu.Lock()
	defer n.mu.Unlock()
	if n.mem.RosterHash() != donorHash {
		return errors.New("node: donor roster differs")
	}
	n.tree = clone
	n.applied = make(map[string]appliedRecord)
	n.appliedBase = appliedBase
	n.treeVersion = n.mem.Version()
	proc, err := core.BuildProcess(n.tree, n.cfg.Addr, n.coreConfig())
	if err != nil {
		return fmt.Errorf("node: rebuilding process: %w", err)
	}
	proc.AdoptState(n.proc)
	n.proc = proc
	n.treeSize = n.tree.Len()
	return nil
}

// TickGossip runs one gossip period (the protocol stage's gossip arm).
func (n *Node) TickGossip() { n.tickGossip() }

// TickMembership runs one membership anti-entropy period (the protocol
// stage's digest arm), including the join-retry bootstrap.
func (n *Node) TickMembership() { n.tickMembership() }

// SweepFailures runs one failure-detector sweep, returning the newly
// expelled addresses.
func (n *Node) SweepFailures() []addr.Address { return n.mem.SweepFailures() }
