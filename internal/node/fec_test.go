package node

import (
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/fec"
	"pmcast/internal/transport"
	"pmcast/internal/wire"
)

// fecGossip builds a depth-1 gossip carrying a matching event from the
// given origin — the shape a receiving node folds straight into its process.
func fecGossip(origin string, seq uint64) core.Gossip {
	id := event.ID{Origin: origin, Seq: seq}
	ev := event.New(id, map[string]event.Value{"b": event.Int(7)})
	return core.Gossip{Event: ev, Depth: 1, Rate: 1, Round: 0}
}

// TestFECRecoversWithheldGossip drives the reassembly path synchronously: a
// coded round arrives with one source gossip withheld (lost), and a single
// repair symbol must reconstruct it — the node delivers all events,
// including the one that never arrived on the wire.
func TestFECRecoversWithheldGossip(t *testing.T) {
	net := transport.MustNetwork(transport.Config{})
	space := addr.MustRegular(3, 2)
	n, err := New(net, Config{
		Addr:         space.AddressAt(0),
		Space:        space,
		R:            2,
		F:            3,
		C:            2,
		Subscription: subEq(7),
		FECSources:   4,
		FECRepairs:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	sender := space.AddressAt(5)
	gossips := make([]core.Gossip, 4)
	ids := make([]event.ID, 4)
	srcs := make([]fec.Source, 4)
	for i := range gossips {
		gossips[i] = fecGossip(sender.Key(), uint64(i+1))
		ids[i] = gossips[i].Event.ID()
		srcs[i] = fec.Source{
			ID:   ids[i],
			Meta: fec.Meta{Depth: gossips[i].Depth, Rate: gossips[i].Rate, Round: gossips[i].Round},
			Body: wire.AppendEventBody(nil, gossips[i].Event),
		}
	}
	gens := fec.NewEncoder(4, 2).Encode(srcs)
	if len(gens) != 1 {
		t.Fatalf("generations = %d, want 1", len(gens))
	}

	// Deliver three of the four sources (index 1 is "lost in transit"),
	// exactly as the unbatching fabric would: one envelope per sub-message.
	for i, g := range gossips {
		if i == 1 {
			continue
		}
		n.HandleEnvelope(transport.Envelope{From: sender, To: n.Addr(), Payload: g})
	}
	if st := n.FECStats(); st.Recovered != 0 {
		t.Fatalf("recovered %d before any repair arrived", st.Recovered)
	}
	// One repair symbol closes the generation: 3 sources + 1 repair = k.
	n.HandleEnvelope(transport.Envelope{From: sender, To: n.Addr(), Payload: gens[0].Split()[0]})

	// The recovery waits out its revival delay: if the real wave had
	// delivered the event meanwhile, the revival would cancel as a
	// duplicate. Here it never arrives, so the delayed re-entry delivers.
	for i := 0; i <= fecReviveDelay; i++ {
		if st := n.FECStats(); st.Recovered != 1 {
			t.Fatalf("decode should recover immediately: %+v", st)
		}
		n.TickGossip()
	}

	got := map[event.ID]bool{}
	for len(got) < 4 {
		select {
		case ev := <-n.Deliveries():
			got[ev.ID()] = true
		default:
			t.Fatalf("delivered %d of 4 events (missing recovery?)", len(got))
		}
	}
	if !got[ids[1]] {
		t.Fatal("the withheld gossip was not delivered")
	}
	st := n.FECStats()
	if st.Recovered != 1 || st.Decodes != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 1 recovery from 1 decode, 0 corrupt", st)
	}
	if st.RepairsReceived != 1 {
		t.Fatalf("RepairsReceived = %d, want 1", st.RepairsReceived)
	}

	// A duplicate of the same repair must not re-recover anything.
	n.HandleEnvelope(transport.Envelope{From: sender, To: n.Addr(), Payload: gens[0].Split()[0]})
	if st := n.FECStats(); st.Recovered != 1 {
		t.Fatalf("duplicate repair re-recovered: %+v", st)
	}
}

// TestFECCodedRoundOnWire pins the sender side: with coding on, a round
// that fills a peer's generation accumulator leaves the node as a batch
// whose FEC section carries r repair symbols, RepairBytes accounts for
// them, and a partial generation left behind flushes in a repair-only
// batch once it ages out.
func TestFECCodedRoundOnWire(t *testing.T) {
	var batches []wire.Batch
	net := transport.MustNetwork(transport.Config{
		Tap: func(from, to addr.Address, payload any) {
			if b, ok := payload.(wire.Batch); ok {
				batches = append(batches, b)
			}
		},
	})
	space := addr.MustRegular(3, 2)
	make3 := func(i int) *Node {
		n, err := New(net, Config{
			Addr:         space.AddressAt(i),
			Space:        space,
			R:            2,
			F:            3,
			C:            2,
			Subscription: subEq(7),
			FECSources:   4,
			FECRepairs:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		return n
	}
	a, b := make3(0), make3(1)
	// Hand-converge membership in step mode: join, digest, pump.
	if err := b.Join(a.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4 && (a.KnownMembers() < 2 || b.KnownMembers() < 2); i++ {
		a.PumpInbox()
		b.PumpInbox()
		a.TickMembership()
		b.TickMembership()
		a.PumpInbox()
		b.PumpInbox()
	}
	if a.KnownMembers() != 2 || b.KnownMembers() != 2 {
		t.Fatalf("membership did not converge: %d/%d", a.KnownMembers(), b.KnownMembers())
	}

	// Four events fill b's k=4 accumulator within the first round-send.
	for i := 0; i < 4; i++ {
		if _, err := a.Publish(map[string]event.Value{"b": event.Int(7)}); err != nil {
			t.Fatal(err)
		}
	}
	batches = nil
	a.TickGossip()
	coded := 0
	for _, bt := range batches {
		if len(bt.FEC) > 0 {
			coded++
			for _, gen := range bt.FEC {
				if gen.K != len(gen.IDs) || len(gen.Meta) != gen.K || len(gen.Repairs) != 1 {
					t.Fatalf("bad generation on the wire: %+v", gen)
				}
			}
		}
	}
	if coded == 0 {
		t.Fatal("no coded batch left the publisher")
	}
	if st := a.FECStats(); st.RepairBytes <= 0 {
		t.Fatalf("RepairBytes = %d, want > 0", st.RepairBytes)
	}

	// One more event leaves a partial generation behind. While gossip
	// traffic to the peer continues, the encoder piggybacks the aged short
	// generation (K=1) onto an ordinary envelope rather than spending a
	// dedicated repair-only batch on it.
	if _, err := a.Publish(map[string]event.Value{"b": event.Int(7)}); err != nil {
		t.Fatal(err)
	}
	a.TickGossip()
	batches = nil
	for i := 0; i < fecFlushAge+2; i++ {
		a.TickGossip()
	}
	short := 0
	for _, bt := range batches {
		if len(bt.FEC) == 1 && bt.FEC[0].K == 1 {
			short++
			if len(bt.Gossips) == 0 {
				t.Fatalf("short flush spent a dedicated envelope despite live traffic: %+v", bt)
			}
		}
	}
	if short == 0 {
		t.Fatalf("no short aged flush observed: %+v", batches)
	}
}

// TestLossyNetworkCodedDelivers is the live-engine version of the lossy
// delivery test with the coding layer on: a 25%-lossy fabric, a coded
// fleet, and every interested node still delivers every event.
func TestLossyNetworkCodedDelivers(t *testing.T) {
	net := transport.MustNetwork(transport.Config{Loss: 0.25, Seed: 5})
	space := addr.MustRegular(3, 2)
	nodes := make([]*Node, 9)
	for i := range nodes {
		n, err := New(net, Config{
			Addr:               space.AddressAt(i),
			Space:              space,
			R:                  2,
			F:                  3,
			C:                  2,
			Subscription:       subEq(1),
			GossipInterval:     4 * time.Millisecond,
			MembershipInterval: 6 * time.Millisecond,
			SuspectAfter:       time.Hour,
			FECSources:         4,
			FECRepairs:         2,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	for _, n := range nodes {
		n.Start()
	}
	t.Cleanup(func() {
		for _, n := range nodes {
			n.Stop()
		}
	})
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 5*time.Second, func() bool {
		for _, n := range nodes {
			if n.KnownMembers() != len(nodes) {
				return false
			}
		}
		return true
	}, "membership convergence")

	const events = 3
	for i := 0; i < events; i++ {
		if _, err := nodes[0].Publish(map[string]event.Value{"b": event.Int(1)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range nodes[1:] {
		n := n
		got := 0
		waitFor(t, 10*time.Second, func() bool {
			select {
			case <-n.Deliveries():
				got++
			default:
			}
			return got == events
		}, "coded lossy delivery at "+n.Addr().String())
	}
	var repairs int64
	for _, n := range nodes {
		repairs += n.FECStats().RepairsReceived
	}
	if repairs == 0 {
		t.Error("no repair symbols crossed the lossy fabric")
	}
}
