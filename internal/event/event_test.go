package event

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
		str  string
	}{
		{name: "int", v: Int(42), kind: KindInt, str: "42"},
		{name: "negative int", v: Int(-7), kind: KindInt, str: "-7"},
		{name: "float", v: Float(35.997), kind: KindFloat, str: "35.997"},
		{name: "string", v: Str("Bob"), kind: KindString, str: `"Bob"`},
		{name: "bool", v: Bool(true), kind: KindBool, str: "true"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind() != tt.kind {
				t.Errorf("kind = %v, want %v", tt.v.Kind(), tt.kind)
			}
			if tt.v.String() != tt.str {
				t.Errorf("string = %q, want %q", tt.v.String(), tt.str)
			}
			if tt.v.IsZero() {
				t.Error("IsZero on live value")
			}
		})
	}
	var zero Value
	if !zero.IsZero() {
		t.Error("zero value not IsZero")
	}
	if zero.String() != "<invalid>" {
		t.Errorf("zero string = %q", zero.String())
	}
}

func TestValueAccessors(t *testing.T) {
	if v, ok := Int(5).AsInt(); !ok || v != 5 {
		t.Errorf("AsInt = %d,%v", v, ok)
	}
	if _, ok := Int(5).AsFloat(); ok {
		t.Error("AsFloat on int should fail")
	}
	if v, ok := Float(2.5).AsFloat(); !ok || v != 2.5 {
		t.Errorf("AsFloat = %g,%v", v, ok)
	}
	if v, ok := Str("x").AsString(); !ok || v != "x" {
		t.Errorf("AsString = %q,%v", v, ok)
	}
	if v, ok := Bool(true).AsBool(); !ok || !v {
		t.Errorf("AsBool = %v,%v", v, ok)
	}
}

func TestNumericView(t *testing.T) {
	if n, ok := Int(3).Numeric(); !ok || n != 3.0 {
		t.Errorf("Numeric(int) = %g,%v", n, ok)
	}
	if n, ok := Float(3.5).Numeric(); !ok || n != 3.5 {
		t.Errorf("Numeric(float) = %g,%v", n, ok)
	}
	if _, ok := Str("3").Numeric(); ok {
		t.Error("Numeric(string) should fail")
	}
	if _, ok := Bool(true).Numeric(); ok {
		t.Error("Numeric(bool) should fail")
	}
}

func TestValueEqual(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Int(2), Float(2.0), true}, // cross-kind numeric equality
		{Float(2.5), Float(2.5), true},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Str("1"), Int(1), false},
		{Bool(true), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Value{}, Value{}, true},
		{Value{}, Int(0), false},
	}
	for _, tt := range tests {
		if got := tt.a.Equal(tt.b); got != tt.want {
			t.Errorf("Equal(%s,%s) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if got := tt.b.Equal(tt.a); got != tt.want {
			t.Errorf("Equal(%s,%s) = %v, want %v (symmetry)", tt.b, tt.a, got, tt.want)
		}
	}
}

func TestValueEqualReflexiveProperty(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		vs := []Value{Int(i), Float(fl), Str(s), Bool(b)}
		for _, v := range vs {
			if !v.Equal(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventBuilder(t *testing.T) {
	id := ID{Origin: "128.178.73.3", Seq: 9}
	ev := NewBuilder().
		Int("b", 2).
		Float("c", 41.5).
		Str("e", "Bob").
		Bool("urgent", false).
		Build(id)

	if ev.ID() != id {
		t.Errorf("id = %v", ev.ID())
	}
	if ev.Len() != 4 {
		t.Errorf("len = %d", ev.Len())
	}
	if v, ok := ev.Lookup("b"); !ok || !v.Equal(Int(2)) {
		t.Errorf("b = %v,%v", v, ok)
	}
	if _, ok := ev.Lookup("missing"); ok {
		t.Error("missing attribute found")
	}
	if !ev.Attr("missing").IsZero() {
		t.Error("Attr(missing) not zero")
	}
	names := ev.Names()
	want := []string{"b", "c", "e", "urgent"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestZeroBuilderUsable(t *testing.T) {
	var b Builder
	ev := b.Int("x", 1).Build(ID{})
	if v, ok := ev.Lookup("x"); !ok || !v.Equal(Int(1)) {
		t.Fatalf("zero builder broken: %v %v", v, ok)
	}
}

func TestEventImmutability(t *testing.T) {
	attrs := map[string]Value{"a": Int(1)}
	ev := New(ID{}, attrs)
	attrs["a"] = Int(99)
	attrs["b"] = Int(2)
	if !ev.Attr("a").Equal(Int(1)) {
		t.Error("event shares caller's map")
	}
	if ev.Len() != 1 {
		t.Error("event grew after construction")
	}
}

func TestBuilderReuseSnapshots(t *testing.T) {
	b := NewBuilder().Int("a", 1)
	e1 := b.Build(ID{Seq: 1})
	b.Int("a", 2)
	e2 := b.Build(ID{Seq: 2})
	if !e1.Attr("a").Equal(Int(1)) {
		t.Error("first build mutated by later builder writes")
	}
	if !e2.Attr("a").Equal(Int(2)) {
		t.Error("second build missing update")
	}
}

func TestIDString(t *testing.T) {
	id := ID{Origin: "1.2.3", Seq: 42}
	if id.String() != "1.2.3#42" {
		t.Errorf("String = %q", id.String())
	}
	if id.IsZero() {
		t.Error("live ID IsZero")
	}
	if !(ID{}).IsZero() {
		t.Error("zero ID not IsZero")
	}
}

func TestEventString(t *testing.T) {
	ev := NewBuilder().Int("b", 3).Build(ID{Origin: "1.1", Seq: 1})
	if got := ev.String(); got != "{1.1#1 b=3}" {
		t.Errorf("String = %q", got)
	}
	if got := (Event{}).String(); got != "{}" {
		t.Errorf("zero event String = %q", got)
	}
}

func TestWithID(t *testing.T) {
	ev := NewBuilder().Int("a", 1).Build(ID{})
	ev2 := ev.WithID(ID{Origin: "x", Seq: 1})
	if ev2.ID().Origin != "x" {
		t.Error("WithID did not set id")
	}
	if !ev2.Attr("a").Equal(Int(1)) {
		t.Error("WithID lost attributes")
	}
	if !ev.ID().IsZero() {
		t.Error("WithID mutated original")
	}
}
