package event

import (
	"testing"
	"testing/quick"

	"pmcast/internal/binenc"
)

func TestValueCodecRoundTrip(t *testing.T) {
	f := func(i int64, fl float64, s string, b bool) bool {
		if fl != fl { // NaN
			fl = 0
		}
		for _, v := range []Value{Int(i), Float(fl), Str(s), Bool(b)} {
			buf := AppendValue(nil, v)
			r := binenc.NewReader(buf)
			got := ReadValue(r)
			if r.Err() != nil || !got.Equal(v) || got.Kind() != v.Kind() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZeroValueCodec(t *testing.T) {
	buf := AppendValue(nil, Value{})
	r := binenc.NewReader(buf)
	got := ReadValue(r)
	if !got.IsZero() || r.Err() != nil {
		t.Errorf("zero value round trip: %v, %v", got, r.Err())
	}
}

func TestUnknownValueKindPoisonsReader(t *testing.T) {
	r := binenc.NewReader([]byte{0x7F, 0x01})
	got := ReadValue(r)
	if !got.IsZero() {
		t.Error("unknown kind yielded a live value")
	}
	if r.Err() == nil {
		t.Error("unknown kind left reader clean")
	}
}

func TestEventCodecRoundTrip(t *testing.T) {
	in := NewBuilder().
		Int("b", -5).
		Float("c", 3.25).
		Str("e", "Bob ∨ Tom").
		Bool("x", true).
		Build(ID{Origin: "128.178.73.3", Seq: 42})
	data, err := in.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := out.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if out.ID() != in.ID() || out.Len() != in.Len() {
		t.Fatalf("round trip: %v", out)
	}
	for _, name := range in.Names() {
		if !out.Attr(name).Equal(in.Attr(name)) {
			t.Errorf("attr %s mismatch", name)
		}
	}
}

func TestEventCodecDeterministic(t *testing.T) {
	// Attribute order must not depend on map iteration: equal events encode
	// identically.
	mk := func() Event {
		return NewBuilder().Int("z", 1).Int("a", 2).Int("m", 3).Build(ID{Origin: "o", Seq: 1})
	}
	a := AppendEvent(nil, mk())
	for i := 0; i < 20; i++ {
		b := AppendEvent(nil, mk())
		if string(a) != string(b) {
			t.Fatal("non-deterministic encoding")
		}
	}
}

func TestEventUnmarshalRejectsCorrupt(t *testing.T) {
	var e Event
	if err := e.UnmarshalBinary([]byte{0xFF, 0xFF}); err == nil {
		t.Error("corrupt event accepted")
	}
}
