// Package event defines the typed events disseminated by pmcast.
//
// Content-based publish/subscribe applications describe interests through
// criteria on event attributes (paper Section 1, Figure 2: integer attribute
// b, float c, string e, integer z). Events here are flat attribute maps with
// typed values, plus a unique identifier used for duplicate suppression and
// gossip bookkeeping.
package event

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates attribute value types. Kinds start at 1 so the zero Value
// is distinguishable as invalid.
type Kind int

// Supported attribute kinds.
const (
	KindInt Kind = iota + 1
	KindFloat
	KindString
	KindBool
)

// String returns a human-readable kind name.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a typed attribute value: exactly one of the variants is active,
// selected by Kind. The zero Value is invalid.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Int builds an integer value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float builds a floating point value.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String builds a string value.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool builds a boolean value.
func Bool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind returns the value's kind; the zero Value returns 0.
func (v Value) Kind() Kind { return v.kind }

// IsZero reports whether the value is the invalid zero Value.
func (v Value) IsZero() bool { return v.kind == 0 }

// AsInt returns the integer payload; ok is false for other kinds.
func (v Value) AsInt() (int64, bool) { return v.i, v.kind == KindInt }

// AsFloat returns the float payload; ok is false for other kinds.
func (v Value) AsFloat() (float64, bool) { return v.f, v.kind == KindFloat }

// AsString returns the string payload; ok is false for other kinds.
func (v Value) AsString() (string, bool) { return v.s, v.kind == KindString }

// AsBool returns the boolean payload; ok is false for other kinds.
func (v Value) AsBool() (bool, bool) { return v.b, v.kind == KindBool }

// Numeric returns the value as a float64 for numeric kinds (int or float);
// ok is false otherwise. Predicates on numeric attributes compare through
// this view so that int and float values interoperate (the paper's interests
// mix integer and float criteria freely).
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// Equal reports deep equality of two values (kind and payload).
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		// Int/float cross-kind numeric equality is intentional: the paper's
		// interests treat numeric attributes uniformly.
		vn, vok := v.Numeric()
		wn, wok := w.Numeric()
		return vok && wok && vn == wn
	}
	switch v.kind {
	case KindInt:
		return v.i == w.i
	case KindFloat:
		return v.f == w.f
	case KindString:
		return v.s == w.s
	case KindBool:
		return v.b == w.b
	default:
		return true // both zero
	}
}

// String renders the value for debugging and view tables.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.b)
	default:
		return "<invalid>"
	}
}

// ID uniquely identifies an event within a group. Publishers assign IDs from
// their address and a local sequence number, which makes IDs unique without
// coordination.
type ID struct {
	// Origin is the canonical address string of the publisher.
	Origin string
	// Seq is the publisher-local sequence number.
	Seq uint64
}

// String renders the ID as "origin#seq".
func (id ID) String() string { return id.Origin + "#" + strconv.FormatUint(id.Seq, 10) }

// IsZero reports whether the ID is unset.
func (id ID) IsZero() bool { return id.Origin == "" && id.Seq == 0 }

// ErrNoAttribute is returned when an event lacks a requested attribute.
var ErrNoAttribute = errors.New("event: no such attribute")

// attr is one named attribute. Events store their attributes as a slice
// sorted by name rather than a map: events carry a handful of attributes, a
// sorted slice is cheaper to build (one allocation), cheaper to scan, already
// in canonical wire order, and — unlike a map — decodable with exactly one
// allocation per event, which is what keeps the batched wire path inside its
// allocation budget.
type attr struct {
	name string
	val  Value
}

// Event is an immutable set of named, typed attributes with an identifier.
// Construct events with NewBuilder/Builder or New; the zero Event carries no
// attributes.
type Event struct {
	id    ID
	attrs []attr // sorted by name, unique names
}

// New builds an event from an attribute map. The map is copied.
func New(id ID, attrs map[string]Value) Event {
	as := make([]attr, 0, len(attrs))
	for k, v := range attrs {
		as = append(as, attr{name: k, val: v})
	}
	sort.Slice(as, func(i, j int) bool { return as[i].name < as[j].name })
	return Event{id: id, attrs: as}
}

// find returns the index of name in the sorted attribute slice, or -1.
func (e Event) find(name string) int {
	i := sort.Search(len(e.attrs), func(i int) bool { return e.attrs[i].name >= name })
	if i < len(e.attrs) && e.attrs[i].name == name {
		return i
	}
	return -1
}

// ID returns the event identifier.
func (e Event) ID() ID { return e.id }

// WithID returns a copy of the event carrying the given identifier.
func (e Event) WithID(id ID) Event {
	return Event{id: id, attrs: e.attrs}
}

// Attr returns the named attribute value; the zero Value if absent.
func (e Event) Attr(name string) Value {
	if i := e.find(name); i >= 0 {
		return e.attrs[i].val
	}
	return Value{}
}

// Lookup returns the named attribute and whether it exists.
func (e Event) Lookup(name string) (Value, bool) {
	if i := e.find(name); i >= 0 {
		return e.attrs[i].val, true
	}
	return Value{}, false
}

// AttrAt returns the i-th attribute (name and value) in sorted-name order,
// 0 ≤ i < Len(). Index access lets matchers merge-walk an event against a
// sorted criteria list instead of binary-searching per attribute.
func (e Event) AttrAt(i int) (string, Value) {
	return e.attrs[i].name, e.attrs[i].val
}

// Names returns the attribute names in sorted order.
func (e Event) Names() []string {
	names := make([]string, len(e.attrs))
	for i, a := range e.attrs {
		names[i] = a.name
	}
	return names
}

// Len returns the number of attributes.
func (e Event) Len() int { return len(e.attrs) }

// String renders the event as "{id a=1 b=2.5}".
func (e Event) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	if !e.id.IsZero() {
		sb.WriteString(e.id.String())
	}
	for _, a := range e.attrs {
		if sb.Len() > 1 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s=%s", a.name, a.val)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Builder accumulates attributes for an event. The zero Builder is ready to
// use.
type Builder struct {
	attrs map[string]Value
}

// NewBuilder returns an empty event builder.
func NewBuilder() *Builder { return &Builder{attrs: make(map[string]Value)} }

func (b *Builder) init() {
	if b.attrs == nil {
		b.attrs = make(map[string]Value)
	}
}

// Int sets an integer attribute and returns the builder.
func (b *Builder) Int(name string, v int64) *Builder {
	b.init()
	b.attrs[name] = Int(v)
	return b
}

// Float sets a float attribute and returns the builder.
func (b *Builder) Float(name string, v float64) *Builder {
	b.init()
	b.attrs[name] = Float(v)
	return b
}

// Str sets a string attribute and returns the builder.
func (b *Builder) Str(name string, v string) *Builder {
	b.init()
	b.attrs[name] = Str(v)
	return b
}

// Bool sets a boolean attribute and returns the builder.
func (b *Builder) Bool(name string, v bool) *Builder {
	b.init()
	b.attrs[name] = Bool(v)
	return b
}

// Set stores an arbitrary value and returns the builder.
func (b *Builder) Set(name string, v Value) *Builder {
	b.init()
	b.attrs[name] = v
	return b
}

// Build assembles the event with the given identifier. The builder can be
// reused; the event snapshots the attributes.
func (b *Builder) Build(id ID) Event {
	return New(id, b.attrs)
}
