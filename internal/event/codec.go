package event

import (
	"fmt"

	"pmcast/internal/binenc"
)

// AppendValue appends the wire form of a value: a kind byte followed by the
// kind-specific payload.
func AppendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindInt:
		b = binenc.AppendVarint(b, v.i)
	case KindFloat:
		b = binenc.AppendFloat(b, v.f)
	case KindString:
		b = binenc.AppendString(b, v.s)
	case KindBool:
		b = binenc.AppendBool(b, v.b)
	}
	return b
}

// ReadValue reads a value written by AppendValue.
func ReadValue(r *binenc.Reader) Value {
	kind := Kind(r.Byte())
	switch kind {
	case KindInt:
		return Value{kind: kind, i: r.Varint()}
	case KindFloat:
		return Value{kind: kind, f: r.Float()}
	case KindString:
		return Value{kind: kind, s: r.String()}
	case KindBool:
		return Value{kind: kind, b: r.Bool()}
	case 0:
		return Value{}
	default:
		// Unknown kind: poison the reader so the caller sees the error.
		r.Bytes() // consumes a bogus length, setting the error state
		return Value{}
	}
}

// AppendID appends an event identifier.
func AppendID(b []byte, id ID) []byte {
	b = binenc.AppendString(b, id.Origin)
	return binenc.AppendUvarint(b, id.Seq)
}

// ReadID reads an event identifier.
func ReadID(r *binenc.Reader) ID {
	return ID{Origin: r.String(), Seq: r.Uvarint()}
}

// IDWireSize returns the encoded size of an event identifier, computed
// without encoding — the size-walk counterpart of AppendID.
func IDWireSize(id ID) int {
	return binenc.StringLen(id.Origin) + binenc.UvarintLen(id.Seq)
}

// AppendEvent appends an event: its ID, then sorted (name, value) pairs.
// Attributes are stored sorted, so encoding is a straight walk — no scratch
// allocations on the batched wire hot path.
func AppendEvent(b []byte, e Event) []byte {
	b = AppendID(b, e.id)
	b = binenc.AppendUvarint(b, uint64(len(e.attrs)))
	for _, a := range e.attrs {
		b = binenc.AppendString(b, a.name)
		b = AppendValue(b, a.val)
	}
	return b
}

// valueWireSize returns the encoded size of a value.
func valueWireSize(v Value) int {
	switch v.kind {
	case KindInt:
		return 1 + binenc.VarintLen(v.i)
	case KindFloat:
		return 1 + 8
	case KindString:
		return 1 + binenc.StringLen(v.s)
	case KindBool:
		return 1 + 1
	default:
		return 1
	}
}

// WireSize returns the exact number of bytes AppendEvent would emit, without
// encoding. Batch framing length-prefixes each event section, so encoders
// need sizes before bodies.
func WireSize(e Event) int {
	n := binenc.StringLen(e.id.Origin) + binenc.UvarintLen(e.id.Seq) +
		binenc.UvarintLen(uint64(len(e.attrs)))
	for _, a := range e.attrs {
		n += binenc.StringLen(a.name) + valueWireSize(a.val)
	}
	return n
}

// ReadEvent reads an event written by AppendEvent. Attributes arrive sorted
// from our own encoder, which the fast path exploits; unsorted or duplicated
// names (foreign encoders, corrupted frames) are insertion-sorted with
// last-wins semantics so the canonical form is restored.
func ReadEvent(r *binenc.Reader) Event {
	id := ReadID(r)
	n := r.Count(2)
	var attrs []attr
	if n > 0 {
		attrs = make([]attr, 0, n)
	}
	for i := 0; i < n; i++ {
		name := r.String()
		v := ReadValue(r)
		if r.Err() != nil {
			return Event{}
		}
		if k := len(attrs); k == 0 || attrs[k-1].name < name {
			attrs = append(attrs, attr{name: name, val: v}) // already in order
			continue
		}
		// Out-of-order or duplicate name: insert at its sorted position.
		at := 0
		for at < len(attrs) && attrs[at].name < name {
			at++
		}
		if at < len(attrs) && attrs[at].name == name {
			attrs[at].val = v // duplicate: last wins, as a map decode would
			continue
		}
		attrs = append(attrs, attr{})
		copy(attrs[at+1:], attrs[at:])
		attrs[at] = attr{name: name, val: v}
	}
	return Event{id: id, attrs: attrs}
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e Event) MarshalBinary() ([]byte, error) {
	return AppendEvent(nil, e), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (e *Event) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	got := ReadEvent(r)
	if err := r.Err(); err != nil {
		return fmt.Errorf("event: decoding: %w", err)
	}
	*e = got
	return nil
}
