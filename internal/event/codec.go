package event

import (
	"fmt"
	"sort"

	"pmcast/internal/binenc"
)

// AppendValue appends the wire form of a value: a kind byte followed by the
// kind-specific payload.
func AppendValue(b []byte, v Value) []byte {
	b = append(b, byte(v.kind))
	switch v.kind {
	case KindInt:
		b = binenc.AppendVarint(b, v.i)
	case KindFloat:
		b = binenc.AppendFloat(b, v.f)
	case KindString:
		b = binenc.AppendString(b, v.s)
	case KindBool:
		b = binenc.AppendBool(b, v.b)
	}
	return b
}

// ReadValue reads a value written by AppendValue.
func ReadValue(r *binenc.Reader) Value {
	kind := Kind(r.Byte())
	switch kind {
	case KindInt:
		return Value{kind: kind, i: r.Varint()}
	case KindFloat:
		return Value{kind: kind, f: r.Float()}
	case KindString:
		return Value{kind: kind, s: r.String()}
	case KindBool:
		return Value{kind: kind, b: r.Bool()}
	case 0:
		return Value{}
	default:
		// Unknown kind: poison the reader so the caller sees the error.
		r.Bytes() // consumes a bogus length, setting the error state
		return Value{}
	}
}

// AppendID appends an event identifier.
func AppendID(b []byte, id ID) []byte {
	b = binenc.AppendString(b, id.Origin)
	return binenc.AppendUvarint(b, id.Seq)
}

// ReadID reads an event identifier.
func ReadID(r *binenc.Reader) ID {
	return ID{Origin: r.String(), Seq: r.Uvarint()}
}

// AppendEvent appends an event: its ID, then sorted (name, value) pairs.
func AppendEvent(b []byte, e Event) []byte {
	b = AppendID(b, e.id)
	names := make([]string, 0, len(e.attrs))
	for name := range e.attrs {
		names = append(names, name)
	}
	sort.Strings(names)
	b = binenc.AppendUvarint(b, uint64(len(names)))
	for _, name := range names {
		b = binenc.AppendString(b, name)
		b = AppendValue(b, e.attrs[name])
	}
	return b
}

// ReadEvent reads an event written by AppendEvent.
func ReadEvent(r *binenc.Reader) Event {
	id := ReadID(r)
	n := r.Count(2)
	attrs := make(map[string]Value, n)
	for i := 0; i < n; i++ {
		name := r.String()
		v := ReadValue(r)
		if r.Err() != nil {
			return Event{}
		}
		attrs[name] = v
	}
	return Event{id: id, attrs: attrs}
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (e Event) MarshalBinary() ([]byte, error) {
	return AppendEvent(nil, e), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (e *Event) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	got := ReadEvent(r)
	if err := r.Err(); err != nil {
		return fmt.Errorf("event: decoding: %w", err)
	}
	*e = got
	return nil
}
