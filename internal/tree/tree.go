// Package tree implements pmcast's membership orchestration (paper
// Section 2): the compound spanning tree obtained by recursively electing R
// delegates per subgroup and merging them with the delegates of neighbor
// subgroups, together with the per-depth view tables every process keeps for
// the prefixes on its path to the root.
package tree

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
)

// Common errors.
var (
	ErrUnknownMember   = errors.New("tree: unknown member")
	ErrDuplicateMember = errors.New("tree: member already present")
	ErrBadRedundancy   = errors.New("tree: redundancy factor R must be ≥ 1")
	ErrSpaceMismatch   = errors.New("tree: address does not fit the space")
)

// Member associates a process address with its individual subscription.
type Member struct {
	Addr addr.Address
	Sub  interest.Subscription
}

// ElectionStrategy chooses R delegates out of a candidate set. The choice
// must be deterministic: every process of a subgroup computes the same set
// without explicit agreement (paper Section 2.3, "Delegate selection").
type ElectionStrategy interface {
	// Elect returns min(r, len(candidates)) delegates. Candidates arrive
	// sorted by address; the returned slice must be a (possibly reordered)
	// subset.
	Elect(candidates []addr.Address, r int) []addr.Address
}

// SmallestAddress elects the R smallest addresses — the paper's default.
type SmallestAddress struct{}

var _ ElectionStrategy = SmallestAddress{}

// Elect implements ElectionStrategy.
func (SmallestAddress) Elect(candidates []addr.Address, r int) []addr.Address {
	if r > len(candidates) {
		r = len(candidates)
	}
	out := make([]addr.Address, r)
	copy(out, candidates[:r])
	return out
}

// ScoredElection elects the R candidates with the highest score, breaking
// ties by smallest address. It models the paper's suggested alternative
// criteria (computing power, memory, nature of interests).
type ScoredElection struct {
	// Score maps an address to its fitness; higher is better. Must be
	// deterministic across processes.
	Score func(addr.Address) float64
}

var _ ElectionStrategy = ScoredElection{}

// Elect implements ElectionStrategy.
func (e ScoredElection) Elect(candidates []addr.Address, r int) []addr.Address {
	if r > len(candidates) {
		r = len(candidates)
	}
	ranked := make([]addr.Address, len(candidates))
	copy(ranked, candidates)
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := e.Score(ranked[i]), e.Score(ranked[j])
		if si != sj {
			return si > sj
		}
		return ranked[i].Less(ranked[j])
	})
	return ranked[:r]
}

// Config parameterizes tree construction.
type Config struct {
	// Space bounds addresses (depth d and arities).
	Space addr.Space
	// R is the redundancy factor: delegates elected per subgroup. The paper
	// recommends R > 1 (typically 3–4) for membership reliability.
	R int
	// Election selects delegates; nil means SmallestAddress.
	Election ElectionStrategy
	// SummaryBound caps disjuncts per regrouped interest summary;
	// 0 means interest.DefaultMaxDisjuncts.
	SummaryBound int
	// FoldCacheBound caps live entries in the shared fold cache;
	// 0 means DefaultFoldCacheBound.
	FoldCacheBound int
	// CompilerBound caps interned compiled languages;
	// 0 means interest.DefaultCompilerBound.
	CompilerBound int
}

// ownerTok marks trie nodes writable by exactly one tree: a node whose
// owner field holds the tree's current token may be mutated in place;
// anything else is potentially shared with clones and must be copied first
// (copy-on-write). Clone swaps the donor's token, disowning every node it
// held in O(1) — the donor re-copies lazily on its next mutation.
type ownerTok struct{ _ byte }

// node is one prefix of the trie: a subgroup and, once computed, its
// delegates, process count (‖prefix‖, Eq. 4), regrouped interest summary,
// the summary's compiled form, and a generation counter.
type node struct {
	prefix    addr.Prefix
	children  map[int]*node // keyed by next digit
	member    *Member       // set only at full depth (leaf)
	owner     *ownerTok     // which tree may mutate this node in place
	delegates []addr.Address
	count     int
	summary   *interest.Summary
	// compiled is the summary's compiled matcher, interned through the
	// tree's Compiler so identical subtree interests share one form. It is
	// recompiled exactly when the node is recomputed — i.e. only along the
	// root path a membership change touched.
	compiled *interest.CompiledMatcher
	// gen counts recomputations of this node. Every mutation that can
	// change the view built over this prefix (its children's delegates,
	// counts or summaries) recomputes the node — path recomputation always
	// includes every ancestor of a touched leaf — so "gen unchanged" is a
	// sound signal that cached per-event matching results over the view
	// remain exact.
	gen uint64
	// viewGen advances exactly when the view-visible state of this node —
	// its children's delegates, counts or summary languages, captured in
	// kids — actually changed, while gen advances on every recompute.
	// Views carry viewGen: under skewed subscription flux most recomputes
	// re-derive identical lines (popular classes dominate every fold), and
	// a stable viewGen keeps per-event profile caches warm across them.
	// Sound because interned compiled-summary pointer equality is language
	// equality, and a view exposes nothing beyond what kids captures.
	viewGen uint64
	// kids is the view-visible signature of the children at the last
	// recompute, in sorted digit order; recompute compares against it to
	// decide whether viewGen must advance. Replaced wholesale, so clones
	// may share it.
	kids []kidSig
	// orderedFP is the order-sensitive fingerprint of the node's summary
	// (disjunct fingerprints in slice order): the exact identity of the
	// summary as a fold input, used to key parent folds in the shared
	// fold cache. Order matters — regrouping's merge heuristic depends on
	// accumulation order, so only order-identical inputs may share a fold.
	orderedFP string
}

// kidSig is one child's contribution to the parent's view: everything a
// view line exposes about the subgroup.
type kidSig struct {
	digit     int
	count     int
	compiled  *interest.CompiledMatcher
	delegates []addr.Address
}

// kidsEqual reports whether two child signatures expose identical view
// lines. Compiled pointers compare by identity: the shared Compiler interns
// by language fingerprint, so equal pointers mean equal matched languages
// (the converse may fail after a compiler sweep, which only costs a
// spurious generation bump — the safe direction).
func kidsEqual(a, b []kidSig) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].digit != b[i].digit || a[i].count != b[i].count || a[i].compiled != b[i].compiled {
			return false
		}
		if len(a[i].delegates) != len(b[i].delegates) {
			return false
		}
		for j := range a[i].delegates {
			if !a[i].delegates[j].Equal(b[i].delegates[j]) {
				return false
			}
		}
	}
	return true
}

// Tree is the compound spanning tree over a concrete member population.
// It is a value snapshot: membership changes go through Add/Remove which
// incrementally recompute the affected root path. Tree is not safe for
// concurrent mutation; the membership layer serializes access.
type Tree struct {
	cfg      Config
	election ElectionStrategy
	root     *node
	// tok is the tree's current ownership token (see ownerTok).
	tok *ownerTok
	// The member table is copy-on-write across clones: membersBase is the
	// frozen table shared with (and by) clones — its *Member values are
	// immutable — while members holds this tree's own entries (shadowing
	// base keys) and membersDead the base keys removed here. A harness
	// co-hosting 64k processes over one bootstrap roster holds the table
	// once, not 64k times.
	membersBase map[string]*Member
	members     map[string]*Member
	membersDead map[string]struct{}
	nMembers    int
	// compiler interns compiled summaries by fingerprint. Clones share it,
	// so a harness fleet folding the same roster compiles each distinct
	// interest language once per process population, not once per node.
	compiler *interest.Compiler
	// folds memoizes summary regrouping fleet-wide (shared by clones, like
	// the compiler): recompute's summary is a pure function of the ordered
	// child summaries, and co-hosted processes folding the same membership
	// movement redo identical merges — the first pays, the rest look up.
	folds *foldCache
	// foldRecomputes and foldHits count the regroupings this tree computed
	// (shared-cache misses it paid for) vs. looked up. Per-tree — unlike
	// the cache's own occupancy stats — so fleet reports can sum them.
	foldRecomputes uint64
	foldHits       uint64
}

// FoldStats is a snapshot of the fold layer: this tree's own regrouping
// counters plus the occupancy of the shared caches behind it. The cache and
// compiler fields describe instances possibly shared with clones — fleet
// aggregation must dedupe them by ID, not sum them per tree.
type FoldStats struct {
	// Recomputes counts summary regroupings this tree computed (fold-cache
	// misses it paid); Hits the regroupings served from the shared cache.
	Recomputes uint64
	Hits       uint64
	// CacheID identifies the shared fold cache; CacheEntries its live
	// entries (gauge); CacheEvictions the entries dropped by generation
	// sweeps since creation (counter).
	CacheID        uint64
	CacheEntries   int
	CacheEvictions uint64
	// CompilerID/Entries/Evictions mirror the above for the interning
	// compiler.
	CompilerID        uint64
	CompilerEntries   int
	CompilerEvictions uint64
}

// FoldStats reports the fold layer's counters and cache occupancy.
func (t *Tree) FoldStats() FoldStats {
	id, entries, evictions := t.folds.stats()
	cs := t.compiler.Stats()
	return FoldStats{
		Recomputes:        t.foldRecomputes,
		Hits:              t.foldHits,
		CacheID:           id,
		CacheEntries:      entries,
		CacheEvictions:    evictions,
		CompilerID:        cs.ID,
		CompilerEntries:   cs.Entries,
		CompilerEvictions: cs.Evictions,
	}
}

// foldEntry is one memoized regrouping result: the merged summary (treated
// immutable, exactly like summaries shared through Clone), its compiled
// form, and its order-sensitive fingerprint (the key material for folds
// that consume this summary one level up).
type foldEntry struct {
	summary  *interest.Summary
	compiled *interest.CompiledMatcher
	fp       string
}

// DefaultFoldCacheBound caps live entries in the shared fold cache (across
// both generations). Sustained subscription flux mints fresh fold inputs
// indefinitely; the former wholesale reset at this size threw the whole
// working set away, the generational sweep below keeps the touched half.
const DefaultFoldCacheBound = 1 << 16

// foldCacheIDs mints process-unique cache identities so fleet-level stats
// can count each shared cache once (a co-hosted fleet shares one through
// tree clones).
var foldCacheIDs atomic.Uint64

// foldCache is the shared regrouping memo. Safe for concurrent use: trees
// cloned across live nodes rebuild on their own goroutines.
//
// It is bounded by generational sweep: inserts and hits land in the hot
// generation; when hot reaches half the bound, the cold generation — every
// fold input not touched since the last sweep — is dropped wholesale. A
// dropped entry only costs a recompute if the fold recurs; correctness
// never depends on a hit.
type foldCache struct {
	mu        sync.Mutex
	id        uint64
	bound     int
	hot, cold map[string]foldEntry
	evictions uint64
}

func newFoldCache(bound int) *foldCache {
	if bound <= 0 {
		bound = DefaultFoldCacheBound
	}
	return &foldCache{
		id:    foldCacheIDs.Add(1),
		bound: bound,
		hot:   make(map[string]foldEntry),
		cold:  make(map[string]foldEntry),
	}
}

func (fc *foldCache) get(key string) (foldEntry, bool) {
	fc.mu.Lock()
	e, ok := fc.hot[key]
	if !ok {
		if e, ok = fc.cold[key]; ok {
			// Promote: a touched fold survives the next sweep.
			delete(fc.cold, key)
			fc.putLocked(key, e)
		}
	}
	fc.mu.Unlock()
	return e, ok
}

func (fc *foldCache) put(key string, e foldEntry) {
	fc.mu.Lock()
	fc.putLocked(key, e)
	fc.mu.Unlock()
}

// putLocked inserts into the hot generation, rotating generations first if
// hot is full (hot and cold stay disjoint; live entries never exceed bound).
func (fc *foldCache) putLocked(key string, e foldEntry) {
	if _, ok := fc.hot[key]; !ok && len(fc.hot) >= max(1, fc.bound/2) {
		fc.evictions += uint64(len(fc.cold))
		fc.cold = fc.hot
		fc.hot = make(map[string]foldEntry, len(fc.cold))
	}
	fc.hot[key] = e
}

func (fc *foldCache) stats() (id uint64, entries int, evictions uint64) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	return fc.id, len(fc.hot) + len(fc.cold), fc.evictions
}

// New builds an empty tree.
func New(cfg Config) (*Tree, error) {
	if cfg.R < 1 {
		return nil, fmt.Errorf("%w: got %d", ErrBadRedundancy, cfg.R)
	}
	if cfg.Space.Depth() == 0 {
		return nil, fmt.Errorf("%w: zero space", ErrSpaceMismatch)
	}
	el := cfg.Election
	if el == nil {
		el = SmallestAddress{}
	}
	tok := new(ownerTok)
	return &Tree{
		cfg:         cfg,
		election:    el,
		tok:         tok,
		root:        &node{prefix: addr.Root(), children: make(map[int]*node), owner: tok},
		members:     make(map[string]*Member),
		membersDead: make(map[string]struct{}),
		compiler:    interest.NewCompilerBounded(cfg.CompilerBound),
		folds:       newFoldCache(cfg.FoldCacheBound),
	}, nil
}

// lookupMember resolves a member through the copy-on-write table: own
// entries shadow the shared base, removals mask it. Returned pointers into
// the base are immutable; mutate through updateMemberRaw only.
func (t *Tree) lookupMember(key string) *Member {
	if m, ok := t.members[key]; ok {
		return m
	}
	if t.membersBase != nil {
		if _, dead := t.membersDead[key]; !dead {
			if m, ok := t.membersBase[key]; ok {
				return m
			}
		}
	}
	return nil
}

// visitMembers calls fn for every current member in unspecified order.
func (t *Tree) visitMembers(fn func(*Member)) {
	for _, m := range t.members {
		fn(m)
	}
	for k, m := range t.membersBase {
		if _, dead := t.membersDead[k]; dead {
			continue
		}
		if _, shadowed := t.members[k]; shadowed {
			continue
		}
		fn(m)
	}
}

// copyNode shallow-copies a shared trie node for mutation by the owning
// tree: aggregates and the member pointer are shared (immutable until
// replaced wholesale), the children map is copied so edits stay private.
func copyNode(n *node, tok *ownerTok) *node {
	c := &node{
		prefix:    n.prefix,
		children:  make(map[int]*node, len(n.children)),
		member:    n.member,
		delegates: n.delegates,
		count:     n.count,
		summary:   n.summary,
		compiled:  n.compiled,
		gen:       n.gen,
		viewGen:   n.viewGen,
		kids:      n.kids,
		orderedFP: n.orderedFP,
		owner:     tok,
	}
	for d, ch := range n.children {
		c.children[d] = ch
	}
	return c
}

// ownRoot returns the root, copied first if it is shared with clones.
func (t *Tree) ownRoot() *node {
	if t.root.owner != t.tok {
		t.root = copyNode(t.root, t.tok)
	}
	return t.root
}

// ownChild returns parent's child for the digit, copied into this tree's
// ownership if shared. parent must already be owned. Nil when absent.
func (t *Tree) ownChild(parent *node, digit int) *node {
	child, ok := parent.children[digit]
	if !ok {
		return nil
	}
	if child.owner != t.tok {
		child = copyNode(child, t.tok)
		parent.children[digit] = child
	}
	return child
}

// ownLookup descends to the prefix's node, copy-on-writing the whole path
// so the caller may mutate it. Nil when the prefix is unpopulated.
func (t *Tree) ownLookup(p addr.Prefix) *node {
	n := t.ownRoot()
	for i := 1; i <= p.Len(); i++ {
		n = t.ownChild(n, p.Digit(i))
		if n == nil {
			return nil
		}
	}
	return n
}

// Build constructs a tree over an initial member set in one pass: members
// are inserted without intermediate aggregation and the whole trie is
// recomputed bottom-up once, which is what the live runtime does on every
// membership snapshot.
func Build(cfg Config, members []Member) (*Tree, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	for _, m := range members {
		if err := t.insertRaw(m); err != nil {
			return nil, err
		}
	}
	t.recomputeAll(t.root)
	return t, nil
}

// insertRaw attaches a member without recomputing aggregates.
func (t *Tree) insertRaw(m Member) error {
	if err := t.cfg.Space.Validate(m.Addr); err != nil {
		return fmt.Errorf("%w: %v", ErrSpaceMismatch, err)
	}
	key := m.Addr.Key()
	if t.lookupMember(key) != nil {
		return fmt.Errorf("%w: %s", ErrDuplicateMember, m.Addr)
	}
	stored := m
	t.members[key] = &stored
	delete(t.membersDead, key)
	t.nMembers++
	n := t.ownRoot()
	for i := 1; i <= t.Depth(); i++ {
		digit := m.Addr.Digit(i)
		child := t.ownChild(n, digit)
		if child == nil {
			child = &node{prefix: n.prefix.Child(digit), children: make(map[int]*node), owner: t.tok}
			n.children[digit] = child
		}
		n = child
	}
	n.member = &stored
	return nil
}

// recomputeAll refreshes aggregates postorder; n must be owned (the sweep
// copy-on-writes every shared descendant it touches).
func (t *Tree) recomputeAll(n *node) {
	for digit := range n.children {
		t.recomputeAll(t.ownChild(n, digit))
	}
	t.recompute(n)
}

// Depth returns the tree depth d.
func (t *Tree) Depth() int { return t.cfg.Space.Depth() }

// R returns the redundancy factor.
func (t *Tree) R() int { return t.cfg.R }

// Space returns the address space.
func (t *Tree) Space() addr.Space { return t.cfg.Space }

// Len returns the current number of members.
func (t *Tree) Len() int { return t.nMembers }

// Member returns the member with the given address.
func (t *Tree) Member(a addr.Address) (Member, bool) {
	m := t.lookupMember(a.Key())
	if m == nil {
		return Member{}, false
	}
	return *m, true
}

// Members returns all members sorted by address.
func (t *Tree) Members() []Member {
	out := make([]Member, 0, t.nMembers)
	t.visitMembers(func(m *Member) { out = append(out, *m) })
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// Clone returns an independent copy of the tree in O(1): trie nodes and the
// member table are shared copy-on-write. The donor's ownership token is
// swapped so every node it held becomes read-only to both trees; whichever
// tree mutates a shared node next copies just the touched root path
// (shallow, children maps excluded from aggregates). Summaries, delegate
// slices and *Member values are immutable-by-convention exactly as before —
// recomputation replaces them wholesale. The point at fleet scale: 64k
// co-hosted processes adopting one bootstrap fold hold ONE trie, and each
// diverges only by the paths its own membership changes touch.
func (t *Tree) Clone() *Tree {
	// Freeze the member table into a fresh shared base if this tree mutated
	// it since the last freeze.
	if len(t.members) > 0 || len(t.membersDead) > 0 {
		base := make(map[string]*Member, t.nMembers)
		for k, m := range t.membersBase {
			if _, dead := t.membersDead[k]; dead {
				continue
			}
			if _, shadowed := t.members[k]; shadowed {
				continue
			}
			base[k] = m
		}
		for k, m := range t.members {
			base[k] = m
		}
		t.membersBase = base
		t.members = make(map[string]*Member)
		t.membersDead = make(map[string]struct{})
	}
	// Disown every node the donor held: both trees now copy-on-write.
	t.tok = new(ownerTok)
	return &Tree{
		cfg:         t.cfg,
		election:    t.election,
		tok:         new(ownerTok),
		root:        t.root,
		membersBase: t.membersBase,
		members:     make(map[string]*Member),
		membersDead: make(map[string]struct{}),
		nMembers:    t.nMembers,
		compiler:    t.compiler,
		folds:       t.folds,
	}
}

// Add inserts a member and recomputes delegates, counts and summaries along
// its root path.
func (t *Tree) Add(m Member) error {
	if err := t.insertRaw(m); err != nil {
		return err
	}
	// insertRaw owned/created the whole path; re-walk it for the recompute.
	n := t.root
	path := []*node{n}
	for i := 1; i <= t.Depth(); i++ {
		n = n.children[m.Addr.Digit(i)]
		path = append(path, n)
	}
	t.recomputePath(path)
	return nil
}

// Remove deletes a member (leave or exclusion after failure detection) and
// recomputes its surviving root path.
func (t *Tree) Remove(a addr.Address) error {
	if err := t.removeRaw(a); err != nil {
		return err
	}
	// Recompute what remains of the root path after pruning.
	n := t.root
	path := []*node{n}
	for i := 1; i <= t.Depth(); i++ {
		child, ok := n.children[a.Digit(i)]
		if !ok {
			break
		}
		n = child
		path = append(path, n)
	}
	t.recomputePath(path)
	return nil
}

// UpdateSubscription replaces a member's interests and refreshes summaries
// on its root path.
func (t *Tree) UpdateSubscription(a addr.Address, sub interest.Subscription) error {
	path, err := t.updateMemberRaw(a, sub)
	if err != nil {
		return err
	}
	t.recomputePath(path)
	return nil
}

// Delta is a batch of membership changes applied with a single bottom-up
// recompute of the touched prefixes. Applying a wave of k changes through
// Add/Remove/UpdateSubscription recomputes every ancestor once per change;
// ApplyDelta recomputes each dirty prefix exactly once, which is what keeps
// fleet-scale churn (and the initial population of a large tree) cheap.
type Delta struct {
	Add    []Member
	Update []Member
	Remove []addr.Address
}

// ApplyDelta applies the batch. On error the structural edits applied so
// far remain (with their paths recomputed); callers treat that as fatal and
// rebuild.
func (t *Tree) ApplyDelta(d Delta) error {
	// For bulk batches — the initial population, a mass rejoin — path
	// bookkeeping costs more than sweeping the whole trie once.
	total := len(d.Add) + len(d.Update) + len(d.Remove)
	if bulk := total >= 16 && total*2 >= t.Len()+len(d.Add); bulk {
		return t.applyDeltaBulk(d)
	}
	dirty := make(map[string]addr.Prefix)
	markPath := func(a addr.Address) {
		for i := 1; i <= t.Depth()+1; i++ {
			p := a.Prefix(i)
			dirty[p.Key()] = p
		}
	}
	recomputeDirty := func() {
		byLen := make([][]addr.Prefix, t.Depth()+2)
		for _, p := range dirty {
			byLen[p.Len()] = append(byLen[p.Len()], p)
		}
		for l := len(byLen) - 1; l >= 0; l-- {
			for _, p := range byLen[l] {
				// A prefix pruned by a removal in the same batch looks up
				// nil; there is nothing left to recompute there.
				if n := t.ownLookup(p); n != nil {
					t.recompute(n)
				}
			}
		}
	}
	for _, m := range d.Add {
		if err := t.insertRaw(m); err != nil {
			recomputeDirty()
			return err
		}
		markPath(m.Addr)
	}
	for _, m := range d.Update {
		if _, err := t.updateMemberRaw(m.Addr, m.Sub); err != nil {
			recomputeDirty()
			return err
		}
		markPath(m.Addr)
	}
	for _, a := range d.Remove {
		if err := t.removeRaw(a); err != nil {
			recomputeDirty()
			return err
		}
		markPath(a)
	}
	recomputeDirty()
	return nil
}

// applyDeltaBulk is ApplyDelta's bulk path: structural edits followed by one
// whole-trie recompute (the same sweep Build does).
func (t *Tree) applyDeltaBulk(d Delta) error {
	var firstErr error
	for _, m := range d.Add {
		if err := t.insertRaw(m); err != nil {
			firstErr = err
			break
		}
	}
	if firstErr == nil {
		for _, m := range d.Update {
			if _, err := t.updateMemberRaw(m.Addr, m.Sub); err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr == nil {
		for _, a := range d.Remove {
			if err := t.removeRaw(a); err != nil {
				firstErr = err
				break
			}
		}
	}
	t.recomputeAll(t.ownRoot())
	return firstErr
}

// removeRaw detaches a member and prunes emptied trie nodes without
// recomputing aggregates.
func (t *Tree) removeRaw(a addr.Address) error {
	key := a.Key()
	if t.lookupMember(key) == nil {
		return fmt.Errorf("%w: %s", ErrUnknownMember, a)
	}
	if _, own := t.members[key]; own {
		delete(t.members, key)
	}
	if t.membersBase != nil {
		if _, inBase := t.membersBase[key]; inBase {
			t.membersDead[key] = struct{}{}
		}
	}
	t.nMembers--
	n := t.ownRoot()
	path := []*node{n}
	for i := 1; i <= t.Depth(); i++ {
		child := t.ownChild(n, a.Digit(i))
		if child == nil {
			return fmt.Errorf("%w: trie desync at %s", ErrUnknownMember, a)
		}
		n = child
		path = append(path, n)
	}
	n.member = nil
	for i := len(path) - 1; i >= 1; i-- {
		cur := path[i]
		if cur.member == nil && len(cur.children) == 0 {
			delete(path[i-1].children, cur.prefix.Digit(cur.prefix.Len()))
		} else {
			break
		}
	}
	return nil
}

// updateMemberRaw replaces a member's subscription without recomputing
// aggregates, copy-on-writing the member value and its leaf path, and
// returns the owned root path to the leaf.
func (t *Tree) updateMemberRaw(a addr.Address, sub interest.Subscription) ([]*node, error) {
	key := a.Key()
	cur := t.lookupMember(key)
	if cur == nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownMember, a)
	}
	cp := *cur
	cp.Sub = sub
	t.members[key] = &cp
	n := t.ownRoot()
	path := []*node{n}
	for i := 1; i <= t.Depth(); i++ {
		n = t.ownChild(n, a.Digit(i))
		if n == nil {
			return nil, fmt.Errorf("%w: trie desync at %s", ErrUnknownMember, a)
		}
		path = append(path, n)
	}
	n.member = &cp
	return path, nil
}

// recomputePath refreshes count, summary and delegates from the deepest node
// of the path up to the root.
func (t *Tree) recomputePath(path []*node) {
	for i := len(path) - 1; i >= 0; i-- {
		t.recompute(path[i])
	}
}

// recompute refreshes one node's aggregates. Summary regrouping and
// compilation go through the shared fold cache: the result is a pure
// function of the ordered child summaries (leaf: of the member's
// subscription), so identical folds — across prefixes, across clones,
// across a whole co-hosted fleet digesting the same churn — are computed
// once and shared. Cached summaries are treated immutable, exactly like
// summaries shared through Clone.
func (t *Tree) recompute(n *node) {
	n.gen++
	if n.member != nil {
		n.count = 1
		key := "L\x00" + n.member.Sub.Fingerprint()
		e, ok := t.folds.get(key)
		if !ok {
			s := interest.NewSummaryWithBound(t.cfg.SummaryBound)
			s.Add(n.member.Sub)
			e = foldEntry{summary: s, compiled: t.compiler.CompileSummary(s), fp: s.OrderedFingerprint()}
			t.folds.put(key, e)
			t.foldRecomputes++
		} else {
			t.foldHits++
		}
		n.summary, n.compiled, n.orderedFP = e.summary, e.compiled, e.fp
		n.delegates = []addr.Address{n.member.Addr}
		// Leaves base no view (views are built over strict prefixes); their
		// visible state is captured by the parent's kids signature.
		n.viewGen = n.gen
		return
	}
	n.count = 0
	digits := sortedDigits(n.children)
	var kb strings.Builder
	kb.WriteString("I\x00")
	candidates := make([]addr.Address, 0, t.cfg.R*len(n.children))
	newKids := make([]kidSig, 0, len(digits))
	for _, digit := range digits {
		child := n.children[digit]
		n.count += child.count
		// Length-prefix each child fingerprint: fingerprints may embed any
		// byte (including the sentinel and separator values), so bare
		// concatenation would let different child lists collide on one key.
		kb.WriteString(strconv.Itoa(len(child.orderedFP)))
		kb.WriteByte(':')
		kb.WriteString(child.orderedFP)
		candidates = append(candidates, child.delegates...)
		newKids = append(newKids, kidSig{
			digit:     digit,
			count:     child.count,
			compiled:  child.compiled,
			delegates: child.delegates,
		})
	}
	key := kb.String()
	e, ok := t.folds.get(key)
	if !ok {
		s := interest.NewSummaryWithBound(t.cfg.SummaryBound)
		for _, digit := range digits {
			s.Merge(n.children[digit].summary)
		}
		e = foldEntry{summary: s, compiled: t.compiler.CompileSummary(s), fp: s.OrderedFingerprint()}
		t.folds.put(key, e)
		t.foldRecomputes++
	} else {
		t.foldHits++
	}
	n.summary, n.compiled, n.orderedFP = e.summary, e.compiled, e.fp
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].Less(candidates[j]) })
	n.delegates = t.election.Elect(candidates, t.cfg.R)
	if !kidsEqual(n.kids, newKids) {
		n.viewGen = n.gen
	}
	n.kids = newKids
}

func sortedDigits(children map[int]*node) []int {
	digits := make([]int, 0, len(children))
	for d := range children {
		digits = append(digits, d)
	}
	sort.Ints(digits)
	return digits
}

// lookup returns the node for the prefix, or nil.
func (t *Tree) lookup(p addr.Prefix) *node {
	n := t.root
	for i := 1; i <= p.Len(); i++ {
		child, ok := n.children[p.Digit(i)]
		if !ok {
			return nil
		}
		n = child
	}
	return n
}

// Count returns ‖prefix‖, the number of processes in the subtree (Eq. 4).
func (t *Tree) Count(p addr.Prefix) int {
	n := t.lookup(p)
	if n == nil {
		return 0
	}
	return n.count
}

// Delegates returns the elected delegates representing the subtree at the
// given prefix (the processes populating the parent node on its behalf).
func (t *Tree) Delegates(p addr.Prefix) []addr.Address {
	n := t.lookup(p)
	if n == nil {
		return nil
	}
	out := make([]addr.Address, len(n.delegates))
	copy(out, n.delegates)
	return out
}

// Summary returns the regrouped interest summary of the subtree.
func (t *Tree) Summary(p addr.Prefix) *interest.Summary {
	n := t.lookup(p)
	if n == nil {
		return nil
	}
	return n.summary
}

// CompiledSummary returns the compiled matcher of the subtree's regrouped
// interest — the form the runtime matches events against. Nil when the
// prefix is unpopulated (the nil matcher matches nothing, like a nil
// Summary).
func (t *Tree) CompiledSummary(p addr.Prefix) *interest.CompiledMatcher {
	n := t.lookup(p)
	if n == nil {
		return nil
	}
	return n.compiled
}

// Generation returns the view generation of the prefix node: it advances
// exactly when a recompute changed what a view built over this prefix
// exposes (its subgroups' delegates, counts or summary languages), so equal
// generations guarantee the views match events identically — and recomputes
// that re-derive identical lines, the common case under skewed subscription
// flux, leave it untouched. Unpopulated prefixes report 0.
func (t *Tree) Generation(p addr.Prefix) uint64 {
	n := t.lookup(p)
	if n == nil {
		return 0
	}
	return n.viewGen
}

// MatchReach counts the members an event descends to through the regrouped
// summary hierarchy: a member is reached when the summary of every interior
// prefix on its path (lengths 0 … d−1 — the prefixes the view tables at
// depths 1 … d are built over) matches the event, i.e. the event's gossip
// enters the member's leaf group. The member's own exact interest at depth d
// is deliberately not consulted: it is what finally filters delivery, so
// reach minus interest is precisely the routing the widened summaries could
// not prune. Summaries only over-approximate (regrouping widens, never
// narrows), so the reached set always contains the interested set — the
// surplus is the false-positive traffic the disjunct caps
// (MaxNumericDisjuncts, MaxStringDisjuncts and the summary bound) trade for
// bounded summaries, which is what the harness's
// summary_false_positive_rate reports.
func (t *Tree) MatchReach(ev event.Event) int {
	return matchReach(t.root, ev)
}

func matchReach(n *node, ev event.Event) int {
	if n == nil {
		return 0
	}
	if n.member != nil {
		return 1 // entry was gated by the parent prefix's summary
	}
	if n.compiled == nil || !n.compiled.Matches(ev) {
		return 0
	}
	total := 0
	for _, child := range n.children {
		total += matchReach(child, ev)
	}
	return total
}

// IsDelegate reports whether process a represents its depth-i subtree, i.e.
// appears in the group of depth i. Every process is trivially a "delegate"
// at depth d (it appears in its leaf group).
func (t *Tree) IsDelegate(a addr.Address, depth int) bool {
	if depth == t.Depth() {
		return t.lookupMember(a.Key()) != nil
	}
	// a represents its subtree rooted at prefix of length depth.
	n := t.lookup(a.Prefix(depth + 1))
	if n == nil {
		return false
	}
	for _, d := range n.delegates {
		if d.Equal(a) {
			return true
		}
	}
	return false
}

// TopDepth returns the smallest depth at which the process appears (1 if it
// is a root delegate). Processes participate in gossiping from their top
// depth down to depth d.
func (t *Tree) TopDepth(a addr.Address) int {
	for i := 1; i < t.Depth(); i++ {
		if t.IsDelegate(a, i) {
			return i
		}
	}
	return t.Depth()
}

// KnownProcesses computes the total membership knowledge of a process
// (Eq. 2): its immediate neighbors plus R delegates per subgroup at every
// shallower depth, with multiplicity (a delegate of depth i is counted again
// at every depth below, as in the paper's expression).
func (t *Tree) KnownProcesses(a addr.Address) int {
	total := 0
	for depth := 1; depth <= t.Depth(); depth++ {
		v := t.ViewAt(a, depth)
		if v == nil {
			continue
		}
		for _, line := range v.Lines {
			total += len(line.Delegates)
		}
	}
	return total
}
