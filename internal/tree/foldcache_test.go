package tree

import (
	"fmt"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
)

// TestFoldCacheBounded drives sustained subscription flux — every round
// mints 16 fresh fold inputs — through a tree whose fold cache and
// interning compiler are bounded to 4 entries, and checks the bound holds:
// live entries never exceed the bound, the generational sweep actually
// evicts, and eviction is a pure cost (the tree's summaries stay correct,
// it just recomputes folds a bigger cache would have remembered).
func TestFoldCacheBounded(t *testing.T) {
	space, err := addr.NewSpace(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	const bound = 4
	members := make([]Member, space.Capacity())
	for i := range members {
		members[i] = Member{
			Addr: space.AddressAt(i),
			Sub:  interest.NewSubscription().Where("topic", interest.OneOf(fmt.Sprintf("seed-%d", i))),
		}
	}
	tr, err := Build(Config{Space: space, R: 2, FoldCacheBound: bound, CompilerBound: bound}, members)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 32; round++ {
		for i := range members {
			sub := interest.NewSubscription().
				Where("topic", interest.OneOf(fmt.Sprintf("r%d-n%d", round, i)))
			if err := tr.UpdateSubscription(members[i].Addr, sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	fs := tr.FoldStats()
	if fs.CacheEntries > bound {
		t.Errorf("fold cache holds %d entries, bound %d", fs.CacheEntries, bound)
	}
	if fs.CacheEvictions == 0 {
		t.Error("sustained flux evicted nothing — the fold cache is not bounded")
	}
	if fs.CompilerEntries > bound {
		t.Errorf("compiler holds %d entries, bound %d", fs.CompilerEntries, bound)
	}
	if fs.CompilerEvictions == 0 {
		t.Error("sustained flux evicted no compiled languages — the compiler is not bounded")
	}
	if fs.Recomputes == 0 {
		t.Error("fold recompute meter never moved")
	}
	// Eviction must not corrupt matching: the last round's subscriptions
	// are live, the first round's are gone.
	last := event.New(event.ID{Origin: "fc", Seq: 1},
		map[string]event.Value{"topic": event.Str("r31-n5")})
	if got := tr.MatchReach(last); got == 0 {
		t.Error("live subscription unreachable after cache churn")
	}
	stale := event.New(event.ID{Origin: "fc", Seq: 2},
		map[string]event.Value{"topic": event.Str("r0-n5")})
	if got := tr.MatchReach(stale); got != 0 {
		t.Errorf("replaced subscription still reachable (%d) after cache churn", got)
	}
}

// TestFoldCacheSharing pins the other half of the contract: two trees over
// identical member sets share fold results — the second build is nearly
// all cache hits — because clones and co-hosted fleets are meant to pay
// for each distinct fold once.
func TestFoldCacheSharing(t *testing.T) {
	space, err := addr.NewSpace(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]Member, space.Capacity())
	for i := range members {
		members[i] = Member{
			Addr: space.AddressAt(i),
			Sub:  interest.NewSubscription().Where("topic", interest.OneOf(fmt.Sprintf("t-%d", i/4))),
		}
	}
	tr, err := Build(Config{Space: space, R: 2}, members)
	if err != nil {
		t.Fatal(err)
	}
	first := tr.FoldStats()
	clone := tr.Clone()
	for i := range members {
		// A no-op update (same subscription) recomputes the path; every
		// fold input recurs, so the shared cache must serve them all.
		if err := clone.UpdateSubscription(members[i].Addr, members[i].Sub); err != nil {
			t.Fatal(err)
		}
	}
	// Clone shares the donor's caches but meters its own regrouping work
	// from zero.
	second := clone.FoldStats()
	if second.CacheID != first.CacheID {
		t.Fatalf("clone minted its own fold cache (%d vs %d) — sharing lost", second.CacheID, first.CacheID)
	}
	if second.Recomputes != 0 {
		t.Errorf("recurring folds recomputed %d times; want 0 (all served by the shared cache)", second.Recomputes)
	}
	if second.Hits == 0 {
		t.Error("fold-cache hit meter never moved across the clone's recomputes")
	}
}
