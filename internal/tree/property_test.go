package tree

import (
	"math/rand"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
)

// randomPopulation draws a random sparse member set over a random space.
func randomPopulation(r *rand.Rand) (addr.Space, []Member) {
	d := 1 + r.Intn(3)
	a := 2 + r.Intn(5)
	space := addr.MustRegular(a, d)
	count := 1 + r.Intn(space.Capacity())
	perm := r.Perm(space.Capacity())
	members := make([]Member, 0, count)
	for _, idx := range perm[:count] {
		members = append(members, Member{
			Addr: space.AddressAt(idx),
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(int64(r.Intn(6)))),
		})
	}
	return space, members
}

// TestTreeInvariants checks structural invariants over random populations:
// counts partition, delegates live in their subtree and follow the election
// order, and subtree summaries never miss a member interest.
func TestTreeInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 120; trial++ {
		space, members := randomPopulation(r)
		rr := 1 + r.Intn(3)
		tr, err := Build(Config{Space: space, R: rr}, members)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(members) {
			t.Fatalf("trial %d: len %d != %d", trial, tr.Len(), len(members))
		}
		checkSubtree(t, tr, addr.Root(), members, rr)

		// Summary soundness at every member's every depth: if some member
		// under a line matches the event, the line summary must match.
		ev := event.NewBuilder().Int("b", int64(r.Intn(6))).Build(event.ID{Origin: "q", Seq: 1})
		for _, m := range members[:min(len(members), 5)] {
			for depth := 1; depth <= tr.Depth(); depth++ {
				v := tr.ViewAt(m.Addr, depth)
				if v == nil {
					t.Fatalf("trial %d: member %s missing view %d", trial, m.Addr, depth)
				}
				for _, line := range v.Lines {
					linePrefix := v.Prefix.Child(line.Infix)
					anyMatch := false
					for _, mm := range members {
						if linePrefix.Contains(mm.Addr) && mm.Sub.Matches(ev) {
							anyMatch = true
							break
						}
					}
					if anyMatch && !line.Matches(ev) {
						t.Fatalf("trial %d: summary false negative at %s depth %d line %d",
							trial, m.Addr, depth, line.Infix)
					}
				}
			}
		}
	}
}

// checkSubtree validates counts and delegates recursively.
func checkSubtree(t *testing.T, tr *Tree, p addr.Prefix, members []Member, r int) {
	t.Helper()
	var inside []addr.Address
	for _, m := range members {
		if p.Contains(m.Addr) {
			inside = append(inside, m.Addr)
		}
	}
	if got := tr.Count(p); got != len(inside) {
		t.Fatalf("count(%s) = %d, want %d", p, got, len(inside))
	}
	dels := tr.Delegates(p)
	wantDel := min(r, len(inside))
	if len(dels) != wantDel {
		t.Fatalf("delegates(%s) = %d, want %d", p, len(dels), wantDel)
	}
	// Smallest-address election: delegates are exactly the r smallest
	// members of the subtree.
	SortAddresses(inside)
	for i, d := range dels {
		if !d.Equal(inside[i]) {
			t.Fatalf("delegate %d of %s = %s, want %s", i, p, d, inside[i])
		}
	}
	if p.Len() < tr.Depth() {
		seen := map[int]bool{}
		for _, a := range inside {
			digit := a.Digit(p.Len() + 1)
			if !seen[digit] {
				seen[digit] = true
				checkSubtree(t, tr, p.Child(digit), members, r)
			}
		}
	}
}

// TestAddRemoveRoundTrip drains a random tree member by member, checking
// consistency after every removal.
func TestAddRemoveRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		space, members := randomPopulation(r)
		tr, err := Build(Config{Space: space, R: 2}, members)
		if err != nil {
			t.Fatal(err)
		}
		perm := r.Perm(len(members))
		for k, idx := range perm {
			if err := tr.Remove(members[idx].Addr); err != nil {
				t.Fatalf("trial %d remove %d: %v", trial, k, err)
			}
			if tr.Len() != len(members)-k-1 {
				t.Fatalf("len after %d removals = %d", k+1, tr.Len())
			}
		}
		if tr.Count(addr.Root()) != 0 {
			t.Fatalf("trial %d: root count %d after draining", trial, tr.Count(addr.Root()))
		}
		// The drained tree accepts everyone again.
		for _, m := range members {
			if err := tr.Add(m); err != nil {
				t.Fatalf("re-add: %v", err)
			}
		}
		if tr.Len() != len(members) {
			t.Fatalf("re-populated len = %d", tr.Len())
		}
	}
}

// TestIncrementalMatchesBulk verifies that Add-one-at-a-time and Build
// produce identical delegates, counts and view structures.
func TestIncrementalMatchesBulk(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		space, members := randomPopulation(r)
		bulk, err := Build(Config{Space: space, R: 2}, members)
		if err != nil {
			t.Fatal(err)
		}
		incr, err := New(Config{Space: space, R: 2})
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range members {
			if err := incr.Add(m); err != nil {
				t.Fatal(err)
			}
		}
		for _, m := range members {
			for depth := 1; depth <= space.Depth(); depth++ {
				vb, vi := bulk.ViewAt(m.Addr, depth), incr.ViewAt(m.Addr, depth)
				if vb.NumLines() != vi.NumLines() || vb.GroupSize() != vi.GroupSize() {
					t.Fatalf("trial %d: view mismatch at %s depth %d", trial, m.Addr, depth)
				}
				for li := range vb.Lines {
					lb, liN := vb.Lines[li], vi.Lines[li]
					if lb.Infix != liN.Infix || lb.Count != liN.Count ||
						len(lb.Delegates) != len(liN.Delegates) {
						t.Fatalf("line mismatch at %s depth %d line %d", m.Addr, depth, li)
					}
					for k := range lb.Delegates {
						if !lb.Delegates[k].Equal(liN.Delegates[k]) {
							t.Fatalf("delegate mismatch at %s depth %d", m.Addr, depth)
						}
					}
				}
			}
		}
	}
}
