package tree

import (
	"fmt"
	"sort"
	"strings"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
)

// Line is one row of a view table (paper Figure 2): a subgroup identified by
// its infix digit, the delegates representing it, its regrouped interests,
// and its process count. At depth d a line describes a single neighbor
// process (its own "delegate" is itself).
type Line struct {
	// Infix is the digit x(depth) distinguishing the subgroup under the
	// view's prefix.
	Infix int
	// Delegates are the R processes representing the subgroup (one entry —
	// the process itself — at depth d).
	Delegates []addr.Address
	// Summary is the regrouped interest of every process in the subgroup.
	Summary *interest.Summary
	// Compiled is the summary's compiled matcher — the indexed form the
	// runtime evaluates. Views built by Tree always carry it; hand-built
	// views may leave it nil, in which case adapters compile on demand.
	Compiled *interest.CompiledMatcher
	// Count is the total number of processes in the subgroup (‖·‖, Eq. 4),
	// used by the round-estimation heuristics (Section 2.3, "Process count").
	Count int
}

// Matches reports whether the event is of interest to some process of the
// line's subgroup ("event ⊳ dest" for a delegate dest, Figure 3 line 13).
func (l Line) Matches(ev event.Event) bool { return l.Summary.Matches(ev) }

// View is the table a process keeps for one depth: the subgroups of its
// depth-(i−1) prefix, one line each (paper Figure 2). All processes sharing
// the prefix share the view.
type View struct {
	// Prefix is the common prefix x(1)…x(depth−1) of the group.
	Prefix addr.Prefix
	// Depth is the tree depth i of the view, 1 ≤ i ≤ d.
	Depth int
	// Lines lists the populated subgroups, ordered by infix.
	Lines []Line
	// R is the redundancy factor the view was built with.
	R int
	// LeafLevel reports whether this is the deepest view (lines are
	// individual processes rather than delegate sets).
	LeafLevel bool
	// Gen is the generation of the tree node the view was built over: equal
	// generations (for the same prefix on the same tree lineage) guarantee
	// identical matching behavior, which is what lets per-event
	// susceptibility caches survive a process rebuild.
	Gen uint64
}

// NumLines returns |view[i]|: the number of populated subgroups (table rows).
func (v *View) NumLines() int { return len(v.Lines) }

// GroupSize returns the number of processes forming the depth-i group: the
// delegates of every line (Section 3.3: |view[i]|·R), or the neighbor
// processes themselves at depth d.
func (v *View) GroupSize() int {
	n := 0
	for _, l := range v.Lines {
		n += len(l.Delegates)
	}
	return n
}

// Members returns the addresses of every process in the group, ordered by
// line and election rank.
func (v *View) Members() []addr.Address {
	out := make([]addr.Address, 0, v.GroupSize())
	for _, l := range v.Lines {
		out = append(out, l.Delegates...)
	}
	return out
}

// SusceptibleMembers returns the processes of the group that should receive
// the event: every delegate of a line whose subgroup summary matches. This
// includes delegates that are themselves uninterested but represent
// interested processes — exactly why pmcast is not a "genuine" multicast
// (Section 3.1).
func (v *View) SusceptibleMembers(ev event.Event) []addr.Address {
	var out []addr.Address
	for _, l := range v.Lines {
		if l.Matches(ev) {
			out = append(out, l.Delegates...)
		}
	}
	return out
}

// MatchingRate implements GETRATE (Figure 3): the fraction of the group's
// members susceptible to the event.
func (v *View) MatchingRate(ev event.Event) float64 {
	total := v.GroupSize()
	if total == 0 {
		return 0
	}
	hits := 0
	for _, l := range v.Lines {
		if l.Matches(ev) {
			hits += len(l.Delegates)
		}
	}
	return float64(hits) / float64(total)
}

// MatchingLines returns the number of lines whose subgroup matches.
func (v *View) MatchingLines(ev event.Event) int {
	hits := 0
	for _, l := range v.Lines {
		if l.Matches(ev) {
			hits++
		}
	}
	return hits
}

// Line returns the line with the given infix digit.
func (v *View) Line(infix int) (Line, bool) {
	for _, l := range v.Lines {
		if l.Infix == infix {
			return l, true
		}
	}
	return Line{}, false
}

// ViewAt returns the view of process a at the given depth: the table for
// prefix a.Prefix(depth). Returns nil when the prefix is unpopulated.
func (t *Tree) ViewAt(a addr.Address, depth int) *View {
	if depth < 1 || depth > t.Depth() {
		return nil
	}
	return t.ViewOf(a.Prefix(depth), depth)
}

// ViewOf builds the view table for a prefix of length depth−1.
func (t *Tree) ViewOf(p addr.Prefix, depth int) *View {
	if depth < 1 || depth > t.Depth() || p.Len() != depth-1 {
		return nil
	}
	n := t.lookup(p)
	if n == nil {
		return nil
	}
	leaf := depth == t.Depth()
	v := &View{Prefix: p, Depth: depth, R: t.cfg.R, LeafLevel: leaf, Gen: n.viewGen}
	v.Lines = make([]Line, 0, len(n.children))
	for _, digit := range sortedDigits(n.children) {
		child := n.children[digit]
		dels := make([]addr.Address, len(child.delegates))
		copy(dels, child.delegates)
		v.Lines = append(v.Lines, Line{
			Infix:     digit,
			Delegates: dels,
			Summary:   child.summary,
			Compiled:  child.compiled,
			Count:     child.count,
		})
	}
	return v
}

// Views returns the full stack of views of a process, indexed by depth−1.
// This is the complete membership knowledge of the process (Figure 2).
func (t *Tree) Views(a addr.Address) []*View {
	out := make([]*View, t.Depth())
	for depth := 1; depth <= t.Depth(); depth++ {
		out[depth-1] = t.ViewAt(a, depth)
	}
	return out
}

// RenderView formats a view table in the style of the paper's Figure 2.
func RenderView(v *View) string {
	if v == nil {
		return "<no view>"
	}
	var sb strings.Builder
	if v.Prefix.Len() == 0 {
		fmt.Fprintf(&sb, "View of Depth %d\n", v.Depth)
	} else {
		fmt.Fprintf(&sb, "View of Depth %d (Prefix = %s)\n", v.Depth, v.Prefix)
	}
	sb.WriteString("Infix | Interests | Delegates (count)\n")
	for _, l := range v.Lines {
		dels := make([]string, len(l.Delegates))
		for i, d := range l.Delegates {
			dels[i] = d.String()
		}
		fmt.Fprintf(&sb, "%5d | %s | %s (%d)\n", l.Infix, l.Summary, strings.Join(dels, ", "), l.Count)
	}
	return sb.String()
}

// SortAddresses sorts a slice of addresses in place (ascending) and returns
// it; a convenience shared by election strategies and tests.
func SortAddresses(as []addr.Address) []addr.Address {
	sort.Slice(as, func(i, j int) bool { return as[i].Less(as[j]) })
	return as
}
