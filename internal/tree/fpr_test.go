package tree

import (
	"fmt"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
)

// TestWidenedSummaryFalsePositiveRates pins the regrouping lossiness of
// known skewed subscription sets: MatchReach counts the leaf entries an
// event's descent reaches through the folded interior summaries, the exact
// per-member match counts who is truly interested, and the gap is the
// summary false-positive rate. The table walks the three widening regimes
// of Criterion.Union — exact folds (identical interests collapse, FPR 0),
// group-granularity overshoot (disjoint interests, the leaf group is the
// resolution floor), string unions past MaxStringDisjuncts widening to the
// wildcard, and interval unions past MaxNumericDisjuncts collapsing to
// their hull (which admits values in the gaps no member wants). The rates
// are pinned, not bounded: a change here means the regrouping heuristics
// moved, which is a protocol-visible change.
func TestWidenedSummaryFalsePositiveRates(t *testing.T) {
	// 4 top-level subtrees × 16-member leaf groups: folding a leaf group's
	// 16 interests past the default 8-disjunct summary bound forces the
	// closest-pair Union merges where widening lives.
	space, err := addr.NewSpace(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	nodes := space.Capacity()

	type tc struct {
		name string
		// subFor builds member i's subscription.
		subFor func(i int) interest.Subscription
		// attrs is the probe event's payload.
		attrs map[string]event.Value
		// wantFPR is (reached − interested) / reached for the probe.
		wantFPR float64
	}
	cases := []tc{
		{
			// Every member of group g wants exactly topic "shared-g": the
			// 16 identical disjuncts collapse to one, the fold is exact,
			// and reach equals interest.
			name: "identical-interests-exact",
			subFor: func(i int) interest.Subscription {
				return interest.NewSubscription().
					Where("topic", interest.OneOf(fmt.Sprintf("shared-%d", i/16)))
			},
			attrs:   map[string]event.Value{"topic": event.Str("shared-0")},
			wantFPR: 0,
		},
		{
			// Disjoint one-topic interests: the fold stays exact (16
			// single-string disjuncts merge into OneOf unions well under
			// the 64-string cap), but matching is at leaf-group
			// granularity — one interested member pulls in its 15
			// neighbors. FPR = 15/16.
			name: "disjoint-group-granularity",
			subFor: func(i int) interest.Subscription {
				return interest.NewSubscription().
					Where("topic", interest.OneOf(fmt.Sprintf("only-%d", i)))
			},
			attrs:   map[string]event.Value{"topic": event.Str("only-0")},
			wantFPR: 15.0 / 16.0,
		},
		{
			// 40 distinct strings per member: any closest-pair merge of
			// two members unions 80 > MaxStringDisjuncts strings and
			// widens to the wildcard, so every leaf group's summary
			// admits every topic. One member is interested; all 64 leaf
			// entries are reached. FPR = 63/64.
			name: "string-union-widens-to-wildcard",
			subFor: func(i int) interest.Subscription {
				names := make([]string, 40)
				for j := range names {
					names[j] = fmt.Sprintf("s%04d", i*40+j)
				}
				return interest.NewSubscription().Where("topic", interest.OneOf(names...))
			},
			attrs:   map[string]event.Value{"topic": event.Str("s0000")},
			wantFPR: 63.0 / 64.0,
		},
		{
			// 10 narrow intervals per member around disjoint bases: any
			// merge of two members carries 20 > MaxNumericDisjuncts
			// intervals and collapses to its hull, which admits the gaps
			// between members' ranges. The probe price interests nobody,
			// yet every group's hull admits it: reach 64, interest 0,
			// FPR 1.
			name: "interval-union-collapses-to-hull",
			subFor: func(i int) interest.Subscription {
				ivs := make([]interest.Interval, 10)
				for j := range ivs {
					lo := float64(i*1000 + j*10)
					ivs[j] = interest.Interval{Lo: lo, Hi: lo + 1}
				}
				return interest.NewSubscription().Where("price", interest.InIntervals(ivs...))
			},
			attrs:   map[string]event.Value{"price": event.Float(555)},
			wantFPR: 1,
		},
	}

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			members := make([]Member, nodes)
			for i := range members {
				members[i] = Member{Addr: space.AddressAt(i), Sub: c.subFor(i)}
			}
			tr, err := Build(Config{Space: space, R: 2}, members)
			if err != nil {
				t.Fatal(err)
			}
			ev := event.New(event.ID{Origin: "fpr", Seq: 1}, c.attrs)
			reached := tr.MatchReach(ev)
			interested := 0
			for _, m := range members {
				if m.Sub.Matches(ev) {
					interested++
				}
			}
			if reached < interested {
				t.Fatalf("reach %d < interested %d — summaries narrowed an interest", reached, interested)
			}
			if reached == 0 {
				if c.wantFPR != 0 {
					t.Fatalf("probe reached nobody, want FPR %.3f", c.wantFPR)
				}
				return
			}
			got := float64(reached-interested) / float64(reached)
			if diff := got - c.wantFPR; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("FPR %.6f (reached %d, interested %d), pinned %.6f",
					got, reached, interested, c.wantFPR)
			}
		})
	}
}
