package tree

import (
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
)

// fullTree builds a fully populated regular tree with arity a, depth d,
// redundancy r. Each member subscribes to b = <its index mod 7>.
func fullTree(t *testing.T, a, d, r int) *Tree {
	t.Helper()
	space := addr.MustRegular(a, d)
	members := make([]Member, 0, space.Capacity())
	for i := 0; i < space.Capacity(); i++ {
		members = append(members, Member{
			Addr: space.AddressAt(i),
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(int64(i%7))),
		})
	}
	tr, err := Build(Config{Space: space, R: r}, members)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildValidation(t *testing.T) {
	space := addr.MustRegular(3, 2)
	if _, err := New(Config{Space: space, R: 0}); err == nil {
		t.Error("R=0 accepted")
	}
	if _, err := New(Config{R: 3}); err == nil {
		t.Error("zero space accepted")
	}
	tr, err := New(Config{Space: space, R: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(Member{Addr: addr.New(5, 0)}); err == nil {
		t.Error("out-of-space address accepted")
	}
	if err := tr.Add(Member{Addr: addr.New(1, 1)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Add(Member{Addr: addr.New(1, 1)}); err == nil {
		t.Error("duplicate accepted")
	}
}

func TestSmallestAddressElection(t *testing.T) {
	tr := fullTree(t, 3, 2, 2)
	// Leaf subgroup 1.*: members 1.0,1.1,1.2 → delegates 1.0,1.1.
	dels := tr.Delegates(addr.NewPrefix(1))
	if len(dels) != 2 {
		t.Fatalf("delegates = %v", dels)
	}
	if dels[0].String() != "1.0" || dels[1].String() != "1.1" {
		t.Errorf("delegates = %v, want [1.0 1.1]", dels)
	}
	// Root: candidates are delegates of 0.*,1.*,2.* → 0.0,0.1,1.0,1.1,2.0,2.1;
	// the two smallest are 0.0 and 0.1.
	rootDels := tr.Delegates(addr.Root())
	if rootDels[0].String() != "0.0" || rootDels[1].String() != "0.1" {
		t.Errorf("root delegates = %v", rootDels)
	}
}

func TestScoredElection(t *testing.T) {
	space := addr.MustRegular(4, 1)
	score := func(a addr.Address) float64 { return float64(a.Digit(1)) } // prefer big digits
	tr, err := Build(Config{Space: space, R: 2, Election: ScoredElection{Score: score}},
		[]Member{{Addr: addr.New(0)}, {Addr: addr.New(1)}, {Addr: addr.New(2)}, {Addr: addr.New(3)}})
	if err != nil {
		t.Fatal(err)
	}
	dels := tr.Delegates(addr.Root())
	if len(dels) != 2 || dels[0].Digit(1) != 3 || dels[1].Digit(1) != 2 {
		t.Errorf("scored delegates = %v, want [3 2]", dels)
	}
}

func TestCounts(t *testing.T) {
	tr := fullTree(t, 3, 3, 2)
	if got := tr.Count(addr.Root()); got != 27 {
		t.Errorf("root count = %d", got)
	}
	if got := tr.Count(addr.NewPrefix(1)); got != 9 {
		t.Errorf("subtree count = %d", got)
	}
	if got := tr.Count(addr.NewPrefix(1, 2)); got != 3 {
		t.Errorf("leaf group count = %d", got)
	}
	if got := tr.Count(addr.NewPrefix(2, 2, 2).Child(0)); got != 0 {
		t.Errorf("nonexistent prefix count = %d", got)
	}
	if tr.Len() != 27 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestViewStructure(t *testing.T) {
	tr := fullTree(t, 3, 3, 2)
	p := addr.New(1, 2, 0)

	// Depth 1 view: root group, 3 lines (subtrees 0,1,2), R delegates each.
	v1 := tr.ViewAt(p, 1)
	if v1.NumLines() != 3 || v1.GroupSize() != 6 {
		t.Fatalf("depth1: lines=%d size=%d", v1.NumLines(), v1.GroupSize())
	}
	if v1.LeafLevel {
		t.Error("depth1 marked leaf")
	}
	// Depth 3 view: leaf group 1.2.*, 3 single-process lines.
	v3 := tr.ViewAt(p, 3)
	if v3.NumLines() != 3 || v3.GroupSize() != 3 {
		t.Fatalf("depth3: lines=%d size=%d", v3.NumLines(), v3.GroupSize())
	}
	if !v3.LeafLevel {
		t.Error("depth3 not marked leaf")
	}
	for _, l := range v3.Lines {
		if len(l.Delegates) != 1 || l.Count != 1 {
			t.Errorf("leaf line %+v", l)
		}
	}
	// All processes sharing the prefix share the view.
	q := addr.New(1, 2, 2)
	vq := tr.ViewAt(q, 3)
	if vq.Prefix.Key() != v3.Prefix.Key() {
		t.Error("prefix-sharing processes got different views")
	}
	// Out-of-range depths.
	if tr.ViewAt(p, 0) != nil || tr.ViewAt(p, 4) != nil {
		t.Error("out-of-range views not nil")
	}
}

func TestViewSizesMatchEq12(t *testing.T) {
	// Regular tree: m_i = R·a for 1 ≤ i < d, m_d = a (Eq. 12).
	a, d, r := 4, 3, 2
	tr := fullTree(t, a, d, r)
	p := addr.New(2, 1, 3)
	for depth := 1; depth <= d; depth++ {
		v := tr.ViewAt(p, depth)
		want := r * a
		if depth == d {
			want = a
		}
		if got := v.GroupSize(); got != want {
			t.Errorf("depth %d group size = %d, want %d", depth, got, want)
		}
	}
	// Eq. 2 total: m = R·a·(d−1) + a.
	wantTotal := r*a*(d-1) + a
	if got := tr.KnownProcesses(p); got != wantTotal {
		t.Errorf("known processes = %d, want %d", got, wantTotal)
	}
}

func TestIsDelegateAndTopDepth(t *testing.T) {
	tr := fullTree(t, 3, 3, 2)
	// 0.0.0 is the smallest address: delegate at every depth, top depth 1.
	top := addr.New(0, 0, 0)
	for depth := 1; depth <= 3; depth++ {
		if !tr.IsDelegate(top, depth) {
			t.Errorf("0.0.0 not delegate at depth %d", depth)
		}
	}
	if tr.TopDepth(top) != 1 {
		t.Errorf("TopDepth(0.0.0) = %d", tr.TopDepth(top))
	}
	// 2.2.2 is the largest: never a delegate above depth d.
	bottom := addr.New(2, 2, 2)
	if tr.IsDelegate(bottom, 1) || tr.IsDelegate(bottom, 2) {
		t.Error("2.2.2 should not be a delegate above leaf level")
	}
	if !tr.IsDelegate(bottom, 3) {
		t.Error("every member appears at depth d")
	}
	if tr.TopDepth(bottom) != 3 {
		t.Errorf("TopDepth(2.2.2) = %d", tr.TopDepth(bottom))
	}
	// 1.0.0 is the smallest address of subtree 1, so it represents subtree 1
	// in the root group: top depth 1.
	if !tr.IsDelegate(addr.New(1, 0, 0), 1) {
		t.Error("1.0.0 should represent subtree 1 at the root")
	}
	// 1.1.0 is a delegate of leaf group 1.1 (depth-2 group member) but not
	// among subtree 1's delegates (1.0.0, 1.0.1 are smaller).
	mid := addr.New(1, 1, 0)
	if tr.IsDelegate(mid, 1) {
		t.Error("1.1.0 unexpectedly a root-group member")
	}
	if !tr.IsDelegate(mid, 2) {
		t.Error("1.1.0 should represent leaf group 1.1 at depth 2")
	}
	if tr.TopDepth(mid) != 2 {
		t.Errorf("TopDepth(1.1.0) = %d", tr.TopDepth(mid))
	}
}

func TestSummariesAggregateUpward(t *testing.T) {
	space := addr.MustRegular(2, 2)
	members := []Member{
		{Addr: addr.New(0, 0), Sub: interest.NewSubscription().Where("b", interest.EqInt(1))},
		{Addr: addr.New(0, 1), Sub: interest.NewSubscription().Where("b", interest.EqInt(2))},
		{Addr: addr.New(1, 0), Sub: interest.NewSubscription().Where("b", interest.EqInt(3))},
		{Addr: addr.New(1, 1), Sub: interest.NewSubscription().Where("b", interest.EqInt(4))},
	}
	tr, err := Build(Config{Space: space, R: 1}, members)
	if err != nil {
		t.Fatal(err)
	}
	evB := func(v int64) event.Event {
		return event.NewBuilder().Int("b", v).Build(event.ID{})
	}
	// Subtree 0 summary covers b∈{1,2} but not 3.
	s0 := tr.Summary(addr.NewPrefix(0))
	if !s0.Matches(evB(1)) || !s0.Matches(evB(2)) || s0.Matches(evB(3)) {
		t.Errorf("subtree 0 summary wrong: %v", s0)
	}
	// Root summary covers all.
	sr := tr.Summary(addr.Root())
	for v := int64(1); v <= 4; v++ {
		if !sr.Matches(evB(v)) {
			t.Errorf("root summary misses b=%d: %v", v, sr)
		}
	}
	if sr.Matches(evB(9)) {
		t.Errorf("root summary over-matches: %v", sr)
	}
}

func TestRemoveReelectsDelegates(t *testing.T) {
	tr := fullTree(t, 3, 2, 2)
	// Initially leaf group 0.*: delegates 0.0, 0.1.
	if err := tr.Remove(addr.New(0, 0)); err != nil {
		t.Fatal(err)
	}
	dels := tr.Delegates(addr.NewPrefix(0))
	if len(dels) != 2 || dels[0].String() != "0.1" || dels[1].String() != "0.2" {
		t.Errorf("after removal delegates = %v", dels)
	}
	// Root delegates must no longer include 0.0.
	for _, d := range tr.Delegates(addr.Root()) {
		if d.String() == "0.0" {
			t.Error("removed member still a root delegate")
		}
	}
	if _, ok := tr.Member(addr.New(0, 0)); ok {
		t.Error("member still present after Remove")
	}
	if err := tr.Remove(addr.New(0, 0)); err == nil {
		t.Error("double remove accepted")
	}
}

func TestRemoveWholeSubtreePrunes(t *testing.T) {
	tr := fullTree(t, 2, 2, 1)
	for _, a := range []addr.Address{addr.New(1, 0), addr.New(1, 1)} {
		if err := tr.Remove(a); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Count(addr.NewPrefix(1)) != 0 {
		t.Error("emptied subtree still counted")
	}
	v := tr.ViewOf(addr.Root(), 1)
	if v.NumLines() != 1 {
		t.Errorf("root view lines = %d, want 1", v.NumLines())
	}
	if tr.Count(addr.Root()) != 2 {
		t.Errorf("root count = %d", tr.Count(addr.Root()))
	}
}

func TestUpdateSubscription(t *testing.T) {
	tr := fullTree(t, 2, 2, 1)
	newSub := interest.NewSubscription().Where("b", interest.EqInt(999))
	if err := tr.UpdateSubscription(addr.New(1, 1), newSub); err != nil {
		t.Fatal(err)
	}
	ev := event.NewBuilder().Int("b", 999).Build(event.ID{})
	if !tr.Summary(addr.Root()).Matches(ev) {
		t.Error("updated interest did not propagate to root summary")
	}
	if err := tr.UpdateSubscription(addr.New(0, 0).Prefix(1).Address(9, 9), newSub); err == nil {
		t.Error("update of unknown member accepted")
	}
}

func TestSusceptibleAndRate(t *testing.T) {
	// Two of four leaf subgroups interested.
	space := addr.MustRegular(2, 2)
	subFor := func(v int64) interest.Subscription {
		return interest.NewSubscription().Where("b", interest.EqInt(v))
	}
	members := []Member{
		{Addr: addr.New(0, 0), Sub: subFor(1)},
		{Addr: addr.New(0, 1), Sub: subFor(1)},
		{Addr: addr.New(1, 0), Sub: subFor(2)},
		{Addr: addr.New(1, 1), Sub: subFor(2)},
	}
	tr, err := Build(Config{Space: space, R: 1}, members)
	if err != nil {
		t.Fatal(err)
	}
	ev := event.NewBuilder().Int("b", 1).Build(event.ID{})
	v := tr.ViewOf(addr.Root(), 1)
	sus := v.SusceptibleMembers(ev)
	if len(sus) != 1 || sus[0].String() != "0.0" {
		t.Errorf("susceptible = %v", sus)
	}
	if got := v.MatchingRate(ev); got != 0.5 {
		t.Errorf("rate = %g, want 0.5", got)
	}
	if got := v.MatchingLines(ev); got != 1 {
		t.Errorf("matching lines = %d", got)
	}
	if _, ok := v.Line(0); !ok {
		t.Error("line 0 missing")
	}
	if _, ok := v.Line(7); ok {
		t.Error("phantom line found")
	}
}

func TestViewsStack(t *testing.T) {
	tr := fullTree(t, 3, 3, 2)
	views := tr.Views(addr.New(1, 1, 1))
	if len(views) != 3 {
		t.Fatalf("views = %d", len(views))
	}
	for i, v := range views {
		if v == nil {
			t.Fatalf("view %d nil", i)
		}
		if v.Depth != i+1 {
			t.Errorf("view %d depth = %d", i, v.Depth)
		}
	}
	if views[1].Prefix.String() != "1" {
		t.Errorf("depth2 prefix = %s", views[1].Prefix)
	}
}

func TestRenderViewContainsPaperShape(t *testing.T) {
	tr := fullTree(t, 2, 2, 1)
	out := RenderView(tr.ViewOf(addr.NewPrefix(0), 2))
	if out == "" || out == "<no view>" {
		t.Fatalf("render = %q", out)
	}
	if RenderView(nil) != "<no view>" {
		t.Error("nil render wrong")
	}
}

func TestMembersSorted(t *testing.T) {
	tr := fullTree(t, 3, 2, 1)
	ms := tr.Members()
	if len(ms) != 9 {
		t.Fatalf("members = %d", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if !ms[i-1].Addr.Less(ms[i].Addr) {
			t.Fatal("members not sorted")
		}
	}
}

func TestPartialPopulationViews(t *testing.T) {
	// Irregular population: only some subgroups exist; views skip missing
	// lines and delegates degrade gracefully when |subgroup| < R.
	space := addr.MustRegular(4, 2)
	members := []Member{
		{Addr: addr.New(0, 0)},
		{Addr: addr.New(2, 1)},
		{Addr: addr.New(2, 3)},
	}
	tr, err := Build(Config{Space: space, R: 3}, members)
	if err != nil {
		t.Fatal(err)
	}
	v := tr.ViewOf(addr.Root(), 1)
	if v.NumLines() != 2 {
		t.Fatalf("lines = %d, want 2", v.NumLines())
	}
	l0, _ := v.Line(0)
	if len(l0.Delegates) != 1 {
		t.Errorf("subgroup 0 delegates = %v", l0.Delegates)
	}
	l2, _ := v.Line(2)
	if len(l2.Delegates) != 2 {
		t.Errorf("subgroup 2 delegates = %v", l2.Delegates)
	}
	if tr.Count(addr.Root()) != 3 {
		t.Errorf("count = %d", tr.Count(addr.Root()))
	}
}
