package experiments

import (
	"math"
	"testing"

	"pmcast/internal/analysis"
	"pmcast/internal/sim"
)

// TestModelTracksSimulation cross-validates the Section 4 analytical model
// (Eq. 18 reliability) against Monte-Carlo measurements across the matching
// -rate sweep: the model must track the simulated delivery within a loose
// band and, more importantly, must order the regimes identically (both
// degrade towards small p_d, both saturate towards 1).
func TestModelTracksSimulation(t *testing.T) {
	params := sim.Params{A: 8, D: 2, R: 2, F: 2, Eps: 0.01, Tau: 0.001}
	s, err := sim.New(params)
	if err != nil {
		t.Fatal(err)
	}
	pds := []float64{0.1, 0.3, 0.5, 0.8, 1.0}
	var simVals, modelVals []float64
	for i, pd := range pds {
		agg, err := s.RunMany(pd, 40, int64(100+i))
		if err != nil {
			t.Fatal(err)
		}
		m, err := analysis.NewTreeModel(analysis.TreeParams{
			A: params.A, D: params.D, R: params.R, F: float64(params.F),
			Pd: pd, Eps: params.Eps, Tau: params.Tau,
		})
		if err != nil {
			t.Fatal(err)
		}
		simVals = append(simVals, agg.Delivery.Mean())
		modelVals = append(modelVals, m.Reliability())
	}
	for i, pd := range pds {
		if diff := math.Abs(simVals[i] - modelVals[i]); diff > 0.3 {
			t.Errorf("pd=%g: model %g vs sim %g diverge by %g",
				pd, modelVals[i], simVals[i], diff)
		}
	}
	// Same qualitative ordering: the two endpoints must agree on direction.
	if (simVals[len(simVals)-1]-simVals[0])*(modelVals[len(modelVals)-1]-modelVals[0]) < 0 {
		t.Errorf("model and simulation disagree on trend: sim %v model %v", simVals, modelVals)
	}
}

// TestFlatChainTracksFlatSimulation validates the Eq. 8–10 Markov chain
// against the flood-gossip baseline restricted to a fully interested group —
// both model a flat gossiping group, so the expected infection fractions
// must agree closely.
func TestFlatChainTracksFlatSimulation(t *testing.T) {
	const n, f = 60, 2
	chain, err := analysis.NewChain(analysis.FlatParams{N: n, F: f})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(sim.Params{A: n, D: 1, R: 1, F: f, MaxRounds: 1000})
	if err != nil {
		t.Fatal(err)
	}
	// The simulator runs to quiescence, not a fixed round count, so compare
	// against full delivery instead: with generous rounds both approach 1.
	agg, err := s.RunMany(1.0, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	full := chain.ExpectedInfected(1, analysis.PittelRounds(n, f, 0)) / n
	if math.Abs(agg.Delivery.Mean()-full) > 0.12 {
		t.Errorf("flat sim %g vs chain %g (after T rounds) diverge",
			agg.Delivery.Mean(), full)
	}
}

// TestAblationTableQuick exercises the ablation harness end to end.
func TestAblationTableQuick(t *testing.T) {
	o := Options{Quick: true, Runs: 4, Seed: 3}
	rows, err := AblationTable(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 { // 9 variants × 1 quick pd
		t.Fatalf("rows = %d", len(rows))
	}
	byVariant := map[string]AblationRow{}
	for _, r := range rows {
		if r.Delivery < 0 || r.Delivery > 1 {
			t.Errorf("variant %s delivery %g", r.Variant, r.Delivery)
		}
		byVariant[r.Variant] = r
	}
	// R=1 must not beat the baseline (single delegate per subtree).
	if byVariant["R=1"].Delivery > byVariant["baseline"].Delivery+0.05 {
		t.Errorf("R=1 (%g) beat baseline (%g)",
			byVariant["R=1"].Delivery, byVariant["baseline"].Delivery)
	}
	// Conservative budgets never hurt delivery.
	if byVariant["C=2"].Delivery < byVariant["baseline"].Delivery-0.05 {
		t.Errorf("C=2 (%g) below baseline (%g)",
			byVariant["C=2"].Delivery, byVariant["baseline"].Delivery)
	}
}
