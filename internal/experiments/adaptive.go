// The adaptive-fanout ablation: loss-aware tuning against fixed fan-out on
// a bursty-link campaign. Three arms per seed — the base fixed fan-out, a
// fixed fan-out raised by the adaptive boost (the "just send more" straw
// man), and the adaptive configuration at base fan-out. The claim under
// test: adaptation buys the raised arm's reliability while spending extra
// sends only where the estimator measured loss, so its bytes/event lands at
// or below the raised fixed arm's.

package experiments

import (
	"fmt"

	"pmcast/internal/harness"
	"pmcast/internal/transport"
)

// AdaptiveCell is one (variant, seed) campaign of the ablation.
type AdaptiveCell struct {
	Variant string `json:"variant"`
	Seed    int64  `json:"seed"`
	// F is the configured fan-out; Adaptive whether the tuning loop ran.
	F        int  `json:"f"`
	Adaptive bool `json:"adaptive"`
	// Reliability and cost axes (see harness.Report).
	MeanReliability   float64 `json:"mean_reliability"`
	MinReliability    float64 `json:"min_reliability"`
	BytesPerEvent     float64 `json:"bytes_per_event"`
	EnvelopesPerEvent float64 `json:"envelopes_per_event"`
	// Estimator and tuning activity: what the adaptation measured and did.
	EstLossMean          float64 `json:"est_loss_mean"`
	EstLossPeers         int     `json:"est_loss_peers"`
	AdaptiveBoosts       int     `json:"adaptive_boosts"`
	AdaptiveExtraTargets int     `json:"adaptive_extra_targets"`
}

// AdaptiveOptions tunes the ablation.
type AdaptiveOptions struct {
	// Scenario names the base campaign (default noisy64 — the bursty-link
	// frontier64 variant; adaptation there responds to measured Gilbert–
	// Elliott loss, not to a uniform assumption).
	Scenario string
	// Seeds are the campaign seeds (default 1..4).
	Seeds []int64
	// BaseF is the base fan-out (0 = the scenario's own).
	BaseF int
	// RaisedF is the fixed comparison arm's fan-out (0 = BaseF + 2, the
	// default adaptive boost: the budget adaptation could spend per round).
	RaisedF int
}

func (o AdaptiveOptions) withDefaults() AdaptiveOptions {
	if o.Scenario == "" {
		o.Scenario = "noisy64"
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3, 4}
	}
	return o
}

// AdaptiveCellAt runs one arm: the base scenario at fan-out f, with or
// without the adaptive tuning loop.
func AdaptiveCellAt(base harness.Scenario, variant string, seed int64, f int, adaptive bool) (AdaptiveCell, error) {
	sc := base
	sc.Fleet.F = f
	sc.Fleet.AdaptiveFanout = adaptive
	sc.Fleet.MeasureWire = true
	res, err := sc.Run(seed)
	if err != nil {
		return AdaptiveCell{}, fmt.Errorf("adaptive ablation %s %s seed=%d: %w",
			sc.Name, variant, seed, err)
	}
	rep := res.Report
	return AdaptiveCell{
		Variant:              variant,
		Seed:                 seed,
		F:                    f,
		Adaptive:             adaptive,
		MeanReliability:      rep.MeanReliability,
		MinReliability:       rep.MinReliability,
		BytesPerEvent:        rep.BytesPerEvent,
		EnvelopesPerEvent:    rep.EnvelopesPerEvent,
		EstLossMean:          rep.EstLossMean,
		EstLossPeers:         rep.EstLossPeers,
		AdaptiveBoosts:       rep.AdaptiveBoosts,
		AdaptiveExtraTargets: rep.AdaptiveExtraTargets,
	}, nil
}

// AdaptiveAblation runs the three arms over every seed, in arm-major order:
// fixed at BaseF, fixed at RaisedF, adaptive at BaseF.
func AdaptiveAblation(o AdaptiveOptions) ([]AdaptiveCell, error) {
	o = o.withDefaults()
	base, err := harness.Lookup(o.Scenario)
	if err != nil {
		return nil, err
	}
	baseF := o.BaseF
	if baseF <= 0 {
		baseF = base.Fleet.F
		if baseF <= 0 {
			baseF = 3 // the fleet default
		}
	}
	raisedF := o.RaisedF
	if raisedF <= 0 {
		raisedF = baseF + 2
	}
	arms := []struct {
		variant  string
		f        int
		adaptive bool
	}{
		{fmt.Sprintf("fixed_f%d", baseF), baseF, false},
		{fmt.Sprintf("fixed_f%d", raisedF), raisedF, false},
		{fmt.Sprintf("adaptive_f%d", baseF), baseF, true},
	}
	cells := make([]AdaptiveCell, 0, len(arms)*len(o.Seeds))
	for _, arm := range arms {
		for _, seed := range o.Seeds {
			c, err := AdaptiveCellAt(base, arm.variant, seed, arm.f, arm.adaptive)
			if err != nil {
				return nil, err
			}
			cells = append(cells, c)
		}
	}
	return cells, nil
}

// MeanOverSeeds averages the reliability and cost axes of one variant's
// cells (helper for tests and the bench summary).
func MeanOverSeeds(cells []AdaptiveCell, variant string) (rel, minRel, bytes float64, n int) {
	for _, c := range cells {
		if c.Variant != variant {
			continue
		}
		rel += c.MeanReliability
		minRel += c.MinReliability
		bytes += c.BytesPerEvent
		n++
	}
	if n > 0 {
		rel /= float64(n)
		minRel /= float64(n)
		bytes /= float64(n)
	}
	return rel, minRel, bytes, n
}

// FrontierPointLinked measures one frontier cell under a correlated-loss
// link model instead of Bernoulli loss: the PR 6 acceptance cells re-run on
// Gilbert–Elliott bursts. The point's Loss field records the chain's
// stationary loss rate, so linked and Bernoulli points plot on one axis.
func FrontierPointLinked(base harness.Scenario, seed int64, link transport.LinkModel, f, k, r int) (FrontierPoint, error) {
	sc := base
	sc.Loss = 0
	sc.Link = link
	sc.Fleet.F = f
	sc.Fleet.FECSources = k
	sc.Fleet.FECRepairs = r
	sc.Fleet.MeasureWire = true
	res, err := sc.Run(seed)
	if err != nil {
		return FrontierPoint{}, fmt.Errorf("frontier %s linked f=%d r=%d: %w",
			sc.Name, f, r, err)
	}
	rep := res.Report
	pBad := link.PGB / (link.PGB + link.PBG)
	return FrontierPoint{
		Scenario:            sc.Name,
		Seed:                seed,
		Loss:                pBad*link.BadLoss + (1-pBad)*link.GoodLoss,
		F:                   f,
		K:                   k,
		R:                   r,
		MeanReliability:     rep.MeanReliability,
		MinReliability:      rep.MinReliability,
		BytesPerEvent:       rep.BytesPerEvent,
		RepairBytesPerEvent: rep.RepairBytesPerEvent,
		EnvelopesPerEvent:   rep.EnvelopesPerEvent,
		RoundsToDeliveryP99: rep.RoundsToDeliveryP99,
		FECRecoveries:       rep.FECRecoveries,
	}, nil
}
