// The coded-gossip frontier: reliability versus wire cost across loss
// rates, fan-outs and redundancy levels, measured on the deterministic
// scenario harness. Each point is one seeded soak campaign; together they
// trace the Pareto frontier the coding layer is built for — under heavy
// loss, a coded fleet at reduced fan-out reaches the reliability of an
// uncoded fleet at high fan-out while spending fewer bytes per event.

package experiments

import (
	"fmt"

	"pmcast/internal/harness"
)

// FrontierPoint is one (loss, fan-out, redundancy) cell of the sweep.
type FrontierPoint struct {
	// Scenario and Seed identify the campaign; every field below is
	// deterministic for the pair.
	Scenario string  `json:"scenario"`
	Seed     int64   `json:"seed"`
	Loss     float64 `json:"loss"`
	// F is the gossip fan-out; K and R the coding parameters (R = 0 is the
	// uncoded baseline).
	F int `json:"f"`
	K int `json:"k"`
	R int `json:"r"`
	// Reliability axes.
	MeanReliability float64 `json:"mean_reliability"`
	MinReliability  float64 `json:"min_reliability"`
	// Cost axes. BytesPerEvent includes the repair overhead
	// (RepairBytesPerEvent breaks it out); RoundsToDeliveryP99 is the
	// latency tail in gossip rounds.
	BytesPerEvent       float64 `json:"bytes_per_event"`
	RepairBytesPerEvent float64 `json:"repair_bytes_per_event"`
	EnvelopesPerEvent   float64 `json:"envelopes_per_event"`
	RoundsToDeliveryP99 float64 `json:"rounds_to_delivery_p99"`
	// FECRecoveries is how many gossips the decoder reconstructed instead
	// of waiting out a retransmission.
	FECRecoveries int64 `json:"fec_recoveries"`
}

// FrontierOptions tunes the sweep.
type FrontierOptions struct {
	// Scenario names the base campaign (default frontier64 — the churn-free
	// soak64 variant, so the loss axis is the only fault source and cells
	// compare cleanly; soak256 is the acceptance size).
	Scenario string
	// Seed seeds every run (default 1).
	Seed int64
	// Losses is the ambient loss axis (default 0.20, 0.30, 0.40 — the
	// regime where coding pays; below that the uncoded protocol is already
	// near-perfect and repairs are dead weight).
	Losses []float64
	// FanOuts is the gossip fan-out axis (default 4, 6, 7).
	FanOuts []int
	// Repairs is the redundancy axis (default 0, 2).
	Repairs []int
	// K is the generation size (default 8).
	K int
}

func (o FrontierOptions) withDefaults() FrontierOptions {
	if o.Scenario == "" {
		o.Scenario = "frontier64"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if len(o.Losses) == 0 {
		o.Losses = []float64{0.20, 0.30, 0.40}
	}
	if len(o.FanOuts) == 0 {
		o.FanOuts = []int{4, 6, 7}
	}
	if len(o.Repairs) == 0 {
		o.Repairs = []int{0, 2}
	}
	if o.K <= 0 {
		o.K = 8
	}
	return o
}

// FrontierSweep runs the loss × fan-out × redundancy grid and returns one
// point per cell, in sweep order (loss-major, then fan-out, then r).
func FrontierSweep(o FrontierOptions) ([]FrontierPoint, error) {
	o = o.withDefaults()
	base, err := harness.Lookup(o.Scenario)
	if err != nil {
		return nil, err
	}
	points := make([]FrontierPoint, 0, len(o.Losses)*len(o.FanOuts)*len(o.Repairs))
	for _, loss := range o.Losses {
		for _, f := range o.FanOuts {
			for _, r := range o.Repairs {
				p, err := FrontierPointAt(base, o.Seed, loss, f, o.K, r)
				if err != nil {
					return nil, err
				}
				points = append(points, p)
			}
		}
	}
	return points, nil
}

// FrontierPointAt measures one cell: the base scenario re-parameterized to
// the given loss, fan-out and coding configuration.
func FrontierPointAt(base harness.Scenario, seed int64, loss float64, f, k, r int) (FrontierPoint, error) {
	sc := base
	sc.Loss = loss
	sc.Fleet.F = f
	sc.Fleet.FECSources = k
	sc.Fleet.FECRepairs = r
	sc.Fleet.MeasureWire = true
	res, err := sc.Run(seed)
	if err != nil {
		return FrontierPoint{}, fmt.Errorf("frontier %s loss=%.2f f=%d r=%d: %w",
			sc.Name, loss, f, r, err)
	}
	rep := res.Report
	return FrontierPoint{
		Scenario:            sc.Name,
		Seed:                seed,
		Loss:                loss,
		F:                   f,
		K:                   k,
		R:                   r,
		MeanReliability:     rep.MeanReliability,
		MinReliability:      rep.MinReliability,
		BytesPerEvent:       rep.BytesPerEvent,
		RepairBytesPerEvent: rep.RepairBytesPerEvent,
		EnvelopesPerEvent:   rep.EnvelopesPerEvent,
		RoundsToDeliveryP99: rep.RoundsToDeliveryP99,
		FECRecoveries:       rep.FECRecoveries,
	}, nil
}
