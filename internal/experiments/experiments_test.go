package experiments

import (
	"testing"
)

// quickOpts keeps test runtime low while preserving figure shapes.
func quickOpts() Options {
	return Options{Quick: true, Runs: 8, Seed: 42}
}

func TestFigure4QuickShape(t *testing.T) {
	rows, err := Figure4(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// Delivery at pd=1 essentially certain; pd grows → delivery grows
	// (allowing small Monte-Carlo noise).
	last := rows[len(rows)-1]
	if last.Pd != 1.0 {
		t.Fatalf("last pd = %g", last.Pd)
	}
	if last.Delivery < 0.95 {
		t.Errorf("delivery at pd=1 = %g", last.Delivery)
	}
	if rows[0].Delivery > last.Delivery+0.05 {
		t.Errorf("delivery not increasing: first %g last %g", rows[0].Delivery, last.Delivery)
	}
	for _, r := range rows {
		if r.Delivery < 0 || r.Delivery > 1 {
			t.Errorf("pd=%g delivery %g outside [0,1]", r.Pd, r.Delivery)
		}
		if r.AnalyticReliability < 0 || r.AnalyticReliability > 1 {
			t.Errorf("pd=%g analytic %g outside [0,1]", r.Pd, r.AnalyticReliability)
		}
		if r.Runs != 8 {
			t.Errorf("runs = %d", r.Runs)
		}
	}
}

func TestFigure5UninterestedBounds(t *testing.T) {
	rows, err := Figure5(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.UninterestedReception < 0 || r.UninterestedReception > 0.5 {
			t.Errorf("pd=%g uninterested reception %g out of plausible range",
				r.Pd, r.UninterestedReception)
		}
	}
	// Nobody uninterested at pd=1 → rate 0.
	last := rows[len(rows)-1]
	if last.UninterestedReception != 0 {
		t.Errorf("pd=1 reception = %g, want 0", last.UninterestedReception)
	}
}

func TestFigure6QuickShape(t *testing.T) {
	rows, err := Figure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DeliveryAtHalf < 0.7 {
			t.Errorf("a=%d delivery@0.5 = %g", r.A, r.DeliveryAtHalf)
		}
		// Matching rate 0.5 should dominate 0.2 (paper's Figure 6 ordering),
		// modulo noise.
		if r.DeliveryAtFifth > r.DeliveryAtHalf+0.1 {
			t.Errorf("a=%d ordering violated: 0.2→%g > 0.5→%g",
				r.A, r.DeliveryAtFifth, r.DeliveryAtHalf)
		}
		if r.N != r.A*r.A {
			t.Errorf("quick mode N = %d for a=%d", r.N, r.A)
		}
	}
}

func TestFigure7TunedDominatesAtSmallRates(t *testing.T) {
	o := quickOpts()
	o.Runs = 20
	o.Threshold = 6
	rows, err := Figure7(o)
	if err != nil {
		t.Fatal(err)
	}
	small := rows[0] // pd = 0.05 in quick mode
	if small.Improved < small.Original-0.05 {
		t.Errorf("tuning hurt small rates: improved %g < original %g",
			small.Improved, small.Original)
	}
	// The compromise: tuned reception ≥ untuned at small rates.
	if small.ImprovedReception < small.OriginalReception-0.01 {
		t.Errorf("tuned reception %g unexpectedly below untuned %g",
			small.ImprovedReception, small.OriginalReception)
	}
	// At pd=1 both deliver fully.
	last := rows[len(rows)-1]
	if last.Original < 0.95 || last.Improved < 0.95 {
		t.Errorf("pd=1: original %g improved %g", last.Original, last.Improved)
	}
}

func TestViewSizeTable(t *testing.T) {
	rows := ViewSizeTable(10648, 3, 6)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].D != 1 || rows[0].ViewSize != 10648 {
		t.Errorf("d=1 row = %+v", rows[0])
	}
	// d=3 (a=22): 3·22·2+22 = 154.
	if rows[2].ViewSize != 154 {
		t.Errorf("d=3 view size = %d, want 154", rows[2].ViewSize)
	}
	// Decreasing at the start.
	if !(rows[0].ViewSize > rows[1].ViewSize && rows[1].ViewSize > rows[2].ViewSize) {
		t.Error("view sizes not decreasing over early depths")
	}
}

func TestRoundsTable(t *testing.T) {
	o := quickOpts()
	rows, err := RoundsTable(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TreeRounds < 0 || r.FlatRounds < 0 || r.SimRounds < 0 {
			t.Errorf("negative rounds: %+v", r)
		}
		if r.Pd >= 0.5 && r.SimRounds == 0 {
			t.Errorf("pd=%g: zero measured rounds", r.Pd)
		}
	}
}

func TestBaselineTable(t *testing.T) {
	o := quickOpts()
	o.Runs = 5
	rows, err := BaselineTable(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Genuine multicast never touches the uninterested.
		if r.GenuineUninterested != 0 {
			t.Errorf("pd=%g genuine uninterested = %g", r.Pd, r.GenuineUninterested)
		}
		// Flood floods: at any audience, uninterested reception near 1
		// (when there are uninterested processes at all).
		if r.Pd < 1 && r.FloodUninterested < 0.9 {
			t.Errorf("pd=%g flood uninterested = %g", r.Pd, r.FloodUninterested)
		}
		// pmcast must load the uninterested far less than flooding.
		if r.Pd < 1 && r.PmcastUninterested > r.FloodUninterested/2 {
			t.Errorf("pd=%g pmcast uninterested %g not clearly below flood %g",
				r.Pd, r.PmcastUninterested, r.FloodUninterested)
		}
	}
	// At moderate audiences pmcast spends fewer messages than flooding.
	mid := rows[1] // pd = 0.2 in quick mode
	if mid.PmcastMsgs >= mid.FloodMsgs {
		t.Errorf("pmcast messages %g >= flood %g at pd=%g",
			mid.PmcastMsgs, mid.FloodMsgs, mid.Pd)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Runs != 20 || o.Seed != 1 || o.Eps != 0.01 || o.Tau != 0.001 || o.Threshold != 8 {
		t.Errorf("defaults = %+v", o)
	}
	p := o.PaperParams()
	if p.A != 22 || p.D != 3 || p.R != 3 || p.F != 2 {
		t.Errorf("paper params = %+v", p)
	}
	if n := p.N(); n != 10648 {
		t.Errorf("n = %d", n)
	}
	if len(o.PdSweep()) != 14 {
		t.Errorf("sweep points = %d", len(o.PdSweep()))
	}
}
