// Package experiments regenerates every figure of the paper's evaluation
// (Section 5) plus the analytical tables implied by Sections 2 and 4. Each
// harness returns printable rows; cmd/pmcast-bench renders them as CSV and
// bench_test.go replays single points as Go benchmarks.
//
// Paper baselines (DSN 2002):
//   - Figure 4: delivery probability vs fraction of interested processes,
//     n ≈ 10000 (a=22, d=3), R=3, F=2.
//   - Figure 5: reception probability for uninterested processes, same setup.
//   - Figure 6: delivery vs subgroup size a ∈ [10,40], d=3, R=4, F=3,
//     matching rates 0.5 and 0.2.
//   - Figure 7: tuned (threshold h) vs untuned delivery, Figure 4 setup.
package experiments

import (
	"fmt"
	"math/rand"

	"pmcast/internal/analysis"
	"pmcast/internal/baseline"
	"pmcast/internal/sim"
)

// Options tunes the experiment harness.
type Options struct {
	// Runs is the number of Monte-Carlo runs per point (default 20).
	Runs int
	// Seed seeds the run RNGs (default 1).
	Seed int64
	// Quick shrinks the tree (a=10, d=2 scale) and the sweep for fast test
	// runs; figures remain shape-comparable but not paper-scale.
	Quick bool
	// Eps and Tau set the simulated environment (default ε=0.01, τ=0.001;
	// the paper's simulations assume a mildly lossy environment).
	Eps, Tau float64
	// Threshold is Figure 7's tuning parameter h (default 8).
	Threshold int
}

func (o Options) withDefaults() Options {
	if o.Runs == 0 {
		o.Runs = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Eps == 0 {
		o.Eps = 0.01
	}
	if o.Tau == 0 {
		o.Tau = 0.001
	}
	if o.Threshold == 0 {
		o.Threshold = 8
	}
	return o
}

// PaperParams returns the simulation parameters of Figures 4, 5 and 7
// (a=22, d=3, R=3, F=2 — n = 10648 ≈ 10000), shrunk in Quick mode.
func (o Options) PaperParams() sim.Params {
	if o.Quick {
		return sim.Params{A: 10, D: 2, R: 3, F: 2, Eps: o.Eps, Tau: o.Tau}
	}
	return sim.Params{A: 22, D: 3, R: 3, F: 2, Eps: o.Eps, Tau: o.Tau}
}

// PdSweep returns the matching-rate x-axis of Figures 4, 5 and 7.
func (o Options) PdSweep() []float64 {
	if o.Quick {
		return []float64{0.05, 0.2, 0.5, 1.0}
	}
	return []float64{0.025, 0.05, 0.075, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// DeliveryRow is one x-axis point of a delivery-style figure.
type DeliveryRow struct {
	// Pd is the fraction of interested processes (x-axis).
	Pd float64
	// Delivery is the mean per-run delivery rate (Figure 4 y-axis).
	Delivery float64
	// DeliveryCI is the 95% confidence half-width.
	DeliveryCI float64
	// UninterestedReception is the mean reception rate among uninterested
	// processes (Figure 5 y-axis).
	UninterestedReception float64
	// ReceptionCI is its 95% confidence half-width.
	ReceptionCI float64
	// AnalyticReliability is the Section 4 model prediction (Eq. 18).
	AnalyticReliability float64
	// Rounds and Messages are mean dissemination costs.
	Rounds   float64
	Messages float64
	// Runs is the number of Monte-Carlo runs aggregated.
	Runs int
}

// DeliverySweep runs the given simulator configuration across matching rates
// and returns one row per rate; it powers Figures 4, 5 and 7.
func DeliverySweep(params sim.Params, pds []float64, runs int, seed int64) ([]DeliveryRow, error) {
	s, err := sim.New(params)
	if err != nil {
		return nil, err
	}
	rows := make([]DeliveryRow, 0, len(pds))
	for i, pd := range pds {
		agg, err := s.RunMany(pd, runs, seed+int64(i)*7919)
		if err != nil {
			return nil, fmt.Errorf("pd=%g: %w", pd, err)
		}
		row := DeliveryRow{
			Pd:                    pd,
			Delivery:              agg.Delivery.Mean(),
			DeliveryCI:            agg.Delivery.CI95(),
			UninterestedReception: agg.UninterestedReception.Mean(),
			ReceptionCI:           agg.UninterestedReception.CI95(),
			Rounds:                agg.Rounds.Mean(),
			Messages:              agg.Messages.Mean(),
			Runs:                  runs,
		}
		model, err := analysis.NewTreeModel(analysis.TreeParams{
			A: params.A, D: params.D, R: params.R, F: float64(params.F),
			Pd: pd, Eps: params.Eps, Tau: params.Tau, C: params.C,
		})
		if err == nil {
			row.AnalyticReliability = model.Reliability()
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Figure4 regenerates the paper's Figure 4: probability of delivery for
// interested processes vs fraction of interested processes.
func Figure4(o Options) ([]DeliveryRow, error) {
	o = o.withDefaults()
	return DeliverySweep(o.PaperParams(), o.PdSweep(), o.Runs, o.Seed)
}

// Figure5 regenerates the paper's Figure 5: probability of reception for
// uninterested processes vs fraction of interested processes. It shares the
// Figure 4 sweep (the paper plots two metrics of the same campaign).
func Figure5(o Options) ([]DeliveryRow, error) { return Figure4(o) }

// Fig6Row is one point of the scalability figure.
type Fig6Row struct {
	// A is the subgroup size (x-axis).
	A int
	// N is the resulting group size a^d.
	N int
	// DeliveryAtHalf is delivery with matching rate 0.5.
	DeliveryAtHalf float64
	// DeliveryAtFifth is delivery with matching rate 0.2.
	DeliveryAtFifth float64
	// CIHalf and CIFifth are 95% confidence half-widths.
	CIHalf, CIFifth float64
	// Runs is the number of runs per matching rate.
	Runs int
}

// Figure6 regenerates the paper's Figure 6: delivery probability vs subgroup
// size a for d=3, R=4, F=3 at matching rates 0.5 and 0.2.
func Figure6(o Options) ([]Fig6Row, error) {
	o = o.withDefaults()
	as := []int{10, 15, 20, 25, 30, 35, 40}
	d := 3
	if o.Quick {
		as = []int{10, 20}
		d = 2
	}
	rows := make([]Fig6Row, 0, len(as))
	for i, a := range as {
		params := sim.Params{A: a, D: d, R: 4, F: 3, Eps: o.Eps, Tau: o.Tau}
		s, err := sim.New(params)
		if err != nil {
			return nil, err
		}
		aggHalf, err := s.RunMany(0.5, o.Runs, o.Seed+int64(i)*104729)
		if err != nil {
			return nil, fmt.Errorf("a=%d pd=0.5: %w", a, err)
		}
		aggFifth, err := s.RunMany(0.2, o.Runs, o.Seed+int64(i)*104729+1)
		if err != nil {
			return nil, fmt.Errorf("a=%d pd=0.2: %w", a, err)
		}
		rows = append(rows, Fig6Row{
			A:               a,
			N:               params.N(),
			DeliveryAtHalf:  aggHalf.Delivery.Mean(),
			DeliveryAtFifth: aggFifth.Delivery.Mean(),
			CIHalf:          aggHalf.Delivery.CI95(),
			CIFifth:         aggFifth.Delivery.CI95(),
			Runs:            o.Runs,
		})
	}
	return rows, nil
}

// Fig7Row is one point of the tuned-vs-untuned comparison.
type Fig7Row struct {
	// Pd is the matching rate.
	Pd float64
	// Original is the untuned delivery rate; Improved the tuned one.
	Original, Improved float64
	// OriginalReception and ImprovedReception expose the tuning compromise:
	// the uninterested reception rate rises with tuning (Section 5.3).
	OriginalReception, ImprovedReception float64
	// Runs is the number of runs per variant.
	Runs int
}

// Figure7 regenerates the paper's Figure 7: the Section 5.3 tuning
// (threshold h) against the original algorithm across matching rates.
func Figure7(o Options) ([]Fig7Row, error) {
	o = o.withDefaults()
	base := o.PaperParams()
	tuned := base
	tuned.Threshold = o.Threshold

	origRows, err := DeliverySweep(base, o.PdSweep(), o.Runs, o.Seed)
	if err != nil {
		return nil, err
	}
	tunedRows, err := DeliverySweep(tuned, o.PdSweep(), o.Runs, o.Seed)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig7Row, len(origRows))
	for i := range origRows {
		rows[i] = Fig7Row{
			Pd:                origRows[i].Pd,
			Original:          origRows[i].Delivery,
			Improved:          tunedRows[i].Delivery,
			OriginalReception: origRows[i].UninterestedReception,
			ImprovedReception: tunedRows[i].UninterestedReception,
			Runs:              o.Runs,
		}
	}
	return rows, nil
}

// ViewSizeRow is one depth choice of the membership-scalability table.
type ViewSizeRow struct {
	// D is the candidate tree depth.
	D int
	// ViewSize is the per-process membership knowledge m (Eq. 2/12).
	ViewSize int
}

// ViewSizeTable evaluates Eq. 2/12 for a fixed population across candidate
// depths, exhibiting the Section 4.3 claim that m = R·a·(d−1)+a decreases in
// d with a minimum near d = log n.
func ViewSizeTable(n, r, maxD int) []ViewSizeRow {
	sizes := analysis.ViewSizeByDepth(n, r, maxD)
	rows := make([]ViewSizeRow, len(sizes))
	for i, s := range sizes {
		rows[i] = ViewSizeRow{D: i + 1, ViewSize: s}
	}
	return rows
}

// RoundsRow compares tree and flat round bounds at one matching rate.
type RoundsRow struct {
	// Pd is the matching rate.
	Pd float64
	// TreeRounds is Ttot = Σ T_i (Eq. 13); FlatRounds is Tf(n·pd, F·pd).
	TreeRounds, FlatRounds int
	// SimRounds is the measured mean rounds to quiescence.
	SimRounds float64
}

// RoundsTable contrasts the analytical round bounds (Eq. 13 vs the flat
// group, Section 4.3) with measured quiescence times.
func RoundsTable(o Options) ([]RoundsRow, error) {
	o = o.withDefaults()
	params := o.PaperParams()
	s, err := sim.New(params)
	if err != nil {
		return nil, err
	}
	rows := make([]RoundsRow, 0, len(o.PdSweep()))
	for i, pd := range o.PdSweep() {
		model, err := analysis.NewTreeModel(analysis.TreeParams{
			A: params.A, D: params.D, R: params.R, F: float64(params.F),
			Pd: pd, Eps: params.Eps, Tau: params.Tau,
		})
		if err != nil {
			return nil, err
		}
		agg, err := s.RunMany(pd, o.Runs, o.Seed+int64(i)*31)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RoundsRow{
			Pd:         pd,
			TreeRounds: model.TotalRounds(),
			FlatRounds: model.FlatRounds(),
			SimRounds:  agg.Rounds.Mean(),
		})
	}
	return rows, nil
}

// BaselineRow compares pmcast against the three baselines at one rate.
type BaselineRow struct {
	Pd float64
	// Delivery rates.
	Pmcast, Flood, Genuine, DetTree float64
	// Uninterested reception rates (flood ≈ 1, genuine = 0 by design).
	PmcastUninterested, FloodUninterested, GenuineUninterested, DetTreeUninterested float64
	// Mean messages per dissemination.
	PmcastMsgs, FloodMsgs, GenuineMsgs, DetTreeMsgs float64
}

// BaselineTable runs the Section 1 comparison: pmcast vs flood broadcast vs
// genuine multicast vs deterministic tree, sharing the environment.
func BaselineTable(o Options) ([]BaselineRow, error) {
	o = o.withDefaults()
	params := o.PaperParams()
	n := params.N()
	s, err := sim.New(params)
	if err != nil {
		return nil, err
	}
	pds := o.PdSweep()
	rows := make([]BaselineRow, 0, len(pds))
	for i, pd := range pds {
		row := BaselineRow{Pd: pd}
		agg, err := s.RunMany(pd, o.Runs, o.Seed+int64(i)*53)
		if err != nil {
			return nil, err
		}
		row.Pmcast = agg.Delivery.Mean()
		row.PmcastUninterested = agg.UninterestedReception.Mean()
		row.PmcastMsgs = agg.Messages.Mean()

		rng := rand.New(rand.NewSource(o.Seed + int64(i)*59))
		var fl, gn, dt stats3
		for run := 0; run < o.Runs; run++ {
			fr, err := baseline.RunFlood(baseline.FloodParams{
				N: n, F: params.F, Eps: o.Eps, Tau: o.Tau}, pd, rng)
			if err != nil {
				return nil, err
			}
			gr, err := baseline.RunGenuine(baseline.GenuineParams{
				N: n, ViewSize: params.A * params.R, F: params.F,
				Eps: o.Eps, Tau: o.Tau}, pd, rng)
			if err != nil {
				return nil, err
			}
			dr, err := baseline.RunDeterministicTree(baseline.DetTreeParams{
				A: params.A, D: params.D, R: params.R,
				Eps: o.Eps, Tau: o.Tau}, pd, rng)
			if err != nil {
				return nil, err
			}
			fl.add(fr)
			gn.add(gr)
			dt.add(dr)
		}
		row.Flood, row.FloodUninterested, row.FloodMsgs = fl.means()
		row.Genuine, row.GenuineUninterested, row.GenuineMsgs = gn.means()
		row.DetTree, row.DetTreeUninterested, row.DetTreeMsgs = dt.means()
		rows = append(rows, row)
	}
	return rows, nil
}

// stats3 accumulates the three headline metrics of a baseline.
type stats3 struct {
	n                         int
	delivery, reception, msgs float64
}

func (s *stats3) add(r baseline.Result) {
	s.n++
	s.delivery += r.DeliveryRate()
	s.reception += r.UninterestedReceptionRate()
	s.msgs += float64(r.Messages)
}

func (s *stats3) means() (delivery, reception, msgs float64) {
	if s.n == 0 {
		return 0, 0, 0
	}
	f := float64(s.n)
	return s.delivery / f, s.reception / f, s.msgs / f
}
