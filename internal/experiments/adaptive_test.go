package experiments

import (
	"testing"

	"pmcast/internal/harness"
	"pmcast/internal/transport"
)

// TestAdaptiveBeatsFixedUnderBurstyLoss pins the acceptance point of the
// loss-aware tuning loop: on the bursty-link noisy64 campaign, the
// adaptive fleet at base fan-out (f=3) matches-or-beats the raised fixed
// baseline (f=5 — the fan-out the adaptation could reach) on mean
// reliability while spending strictly fewer bytes per event, AND beats
// the base fixed arm (f=3) on mean reliability — all averaged over four
// seeds. The harness is deterministic, so this is a fixed-point
// regression: any change to the estimator, the boost policy, or the
// budget adaptation that erodes the win trips it.
func TestAdaptiveBeatsFixedUnderBurstyLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed adaptive ablation is a long test")
	}
	cells, err := AdaptiveAblation(AdaptiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	baseRel, _, baseBytes, baseN := MeanOverSeeds(cells, "fixed_f3")
	raisedRel, _, raisedBytes, raisedN := MeanOverSeeds(cells, "fixed_f5")
	adaptRel, adaptMin, adaptBytes, adaptN := MeanOverSeeds(cells, "adaptive_f3")
	if baseN != 4 || raisedN != 4 || adaptN != 4 {
		t.Fatalf("arm cell counts: base %d raised %d adaptive %d", baseN, raisedN, adaptN)
	}
	t.Logf("over %d seeds: fixed f=3 rel %.6f bytes %.1f | fixed f=5 rel %.6f bytes %.1f | adaptive f=3 rel %.6f min %.4f bytes %.1f",
		adaptN, baseRel, baseBytes, raisedRel, raisedBytes, adaptRel, adaptMin, adaptBytes)
	if adaptRel < raisedRel {
		t.Errorf("adaptive mean reliability %.6f fell below raised fixed arm's %.6f", adaptRel, raisedRel)
	}
	if adaptBytes > raisedBytes {
		t.Errorf("adaptive bytes/event %.1f exceeded raised fixed arm's %.1f", adaptBytes, raisedBytes)
	}
	if adaptRel <= baseRel {
		t.Errorf("adaptive mean reliability %.6f no better than base fixed arm's %.6f — adaptation did nothing", adaptRel, baseRel)
	}
	// The win must come from the tuning loop actually firing, not from a
	// scenario drift that flattened the arms.
	for _, c := range cells {
		switch {
		case c.Adaptive && (c.AdaptiveBoosts == 0 || c.EstLossPeers == 0):
			t.Errorf("adaptive cell seed %d shows no tuning activity: %+v", c.Seed, c)
		case !c.Adaptive && (c.AdaptiveBoosts != 0 || c.EstLossPeers != 0):
			t.Errorf("fixed cell %s seed %d shows tuning activity: %+v", c.Variant, c.Seed, c)
		}
	}
}

// TestAdaptiveCellShape checks one adaptive and one fixed cell populate
// the cell fields consistently on a single quick seed.
func TestAdaptiveCellShape(t *testing.T) {
	base, err := harness.Lookup("noisy64")
	if err != nil {
		t.Fatal(err)
	}
	adapt, err := AdaptiveCellAt(base, "adaptive_f3", 1, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := AdaptiveCellAt(base, "fixed_f3", 1, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	if adapt.Variant != "adaptive_f3" || adapt.F != 3 || !adapt.Adaptive {
		t.Fatalf("adaptive cell mislabeled: %+v", adapt)
	}
	if adapt.EstLossPeers == 0 || adapt.EstLossMean <= 0 {
		t.Fatalf("adaptive cell measured nothing: %+v", adapt)
	}
	if adapt.AdaptiveBoosts == 0 || adapt.AdaptiveExtraTargets == 0 {
		t.Fatalf("adaptive cell never boosted: %+v", adapt)
	}
	if fixed.Adaptive || fixed.AdaptiveBoosts != 0 || fixed.EstLossPeers != 0 {
		t.Fatalf("fixed cell shows tuning activity: %+v", fixed)
	}
	if adapt.MeanReliability <= 0 || fixed.MeanReliability <= 0 {
		t.Fatalf("reliability missing: adaptive %+v fixed %+v", adapt, fixed)
	}
	if adapt.BytesPerEvent <= 0 || fixed.BytesPerEvent <= 0 {
		t.Fatalf("wire accounting missing: adaptive %+v fixed %+v", adapt, fixed)
	}
}

// TestFrontierLinkedRepinsCodedWin re-runs the PR 6 frontier acceptance
// cells under correlated loss: the coded fleet (f=6, k=8, r=2) against the
// uncoded high-fan-out baseline (f=7) on Gilbert–Elliott chains whose
// bursts average 10 messages — the regime where a whole generation's wire
// copies can die in one burst. The coded arm must still match-or-beat the
// baseline on reliability at no more bytes, averaged over four seeds, and
// the chain's stationary rate must land in the cells' Loss field.
func TestFrontierLinkedRepinsCodedWin(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed linked frontier sweep is a long test")
	}
	base, err := harness.Lookup("frontier64")
	if err != nil {
		t.Fatal(err)
	}
	// Deep bursts at a high stationary rate: 0.04/(0.04+0.10) ≈ 28.6%.
	link := transport.LinkModel{BadLoss: 1, PGB: 0.04, PBG: 0.10}
	var (
		codedRel, codedBytes     float64
		uncodedRel, uncodedBytes float64
		recoveries               int64
	)
	const seeds = 4
	for seed := int64(1); seed <= seeds; seed++ {
		coded, err := FrontierPointLinked(base, seed, link, 6, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		uncoded, err := FrontierPointLinked(base, seed, link, 7, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		want := link.PGB / (link.PGB + link.PBG)
		if diff := coded.Loss - want; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("seed %d: linked cell Loss %.6f, want stationary %.6f", seed, coded.Loss, want)
		}
		codedRel += coded.MeanReliability
		codedBytes += coded.BytesPerEvent
		uncodedRel += uncoded.MeanReliability
		uncodedBytes += uncoded.BytesPerEvent
		recoveries += coded.FECRecoveries
	}
	codedRel /= seeds
	codedBytes /= seeds
	uncodedRel /= seeds
	uncodedBytes /= seeds
	t.Logf("GE bursts over %d seeds: coded f=6 k=8 r=2 rel %.6f bytes %.1f | uncoded f=7 rel %.6f bytes %.1f",
		seeds, codedRel, codedBytes, uncodedRel, uncodedBytes)
	if codedRel < uncodedRel {
		t.Errorf("coded mean reliability %.6f fell below uncoded %.6f under bursty loss", codedRel, uncodedRel)
	}
	if codedBytes > uncodedBytes {
		t.Errorf("coded bytes/event %.1f exceeded uncoded %.1f under bursty loss", codedBytes, uncodedBytes)
	}
	if recoveries == 0 {
		t.Error("coded cells recorded zero FEC recoveries under bursty loss")
	}
}
