// The sharded-core scale sweep: the fleet-scale campaigns run at shards=1
// (the serial event loop) and shards=8 (the conservative windowed engine),
// recording wall time, MB/node and events/sec per cell. The claims under
// test: the delivery trace is byte-identical across shard counts — the
// engine's determinism contract at sizes the golden tests cannot afford —
// and the sharded run beats the serial one by a wide margin wherever
// jittered link delays scatter deliveries across virtual instants (the
// serial loop pays a fleet-wide pump per instant; the sharded loop pumps
// only the nodes an instant touched).

package experiments

import (
	"fmt"

	"pmcast/internal/harness"
)

// ShardSweepCell is one (scenario, shards) campaign of the scale sweep.
type ShardSweepCell struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`
	// Shards is what the engine actually ran (a zero-lookahead scenario
	// degrades to 1 regardless of what the sweep asked for).
	Shards int `json:"shards"`
	// The three reported axes of the sharded core: wall time, memory
	// compaction, throughput.
	WallMillis   int64   `json:"wall_ms"`
	MBPerNode    float64 `json:"mb_per_node"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Speedup is WallMillis(shards=1) / WallMillis for this cell, when the
	// sweep ran the serial baseline for the same scenario (0 otherwise).
	Speedup float64 `json:"speedup"`
	// TraceSHA256 must agree across every cell of one scenario — the
	// byte-identity contract at scale.
	TraceSHA256     string  `json:"trace_sha256"`
	MeanReliability float64 `json:"mean_reliability"`
	ClockEvents     int     `json:"clock_events"`
}

// ShardSweepOptions tunes the sweep.
type ShardSweepOptions struct {
	// Scenarios are the campaign names (default soak4k, churn16k, soak64k).
	Scenarios []string
	// Shards are the shard counts per scenario, run in order (default 1, 8;
	// keep 1 first — later cells compute Speedup against it).
	Shards []int
	// Seed is the campaign seed (default 1).
	Seed int64
}

func (o ShardSweepOptions) withDefaults() ShardSweepOptions {
	if len(o.Scenarios) == 0 {
		o.Scenarios = []string{"soak4k", "churn16k", "soak64k"}
	}
	if len(o.Shards) == 0 {
		o.Shards = []int{1, 8}
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ShardSweepCellAt runs one cell: the named campaign at the given shard
// count. baselineWallMillis, when positive, is the serial wall time used to
// fill Speedup.
func ShardSweepCellAt(name string, seed int64, shards int, baselineWallMillis int64) (ShardSweepCell, error) {
	sc, err := harness.Lookup(name)
	if err != nil {
		return ShardSweepCell{}, err
	}
	sc.Shards = shards
	res, err := sc.Run(seed)
	if err != nil {
		return ShardSweepCell{}, fmt.Errorf("shard sweep %s shards=%d seed=%d: %w",
			name, shards, seed, err)
	}
	rep := res.Report
	cell := ShardSweepCell{
		Scenario:        name,
		Seed:            seed,
		Nodes:           rep.Nodes,
		Shards:          rep.Shards,
		WallMillis:      rep.WallMillis,
		MBPerNode:       rep.MBPerNode,
		EventsPerSec:    rep.EventsPerSec,
		TraceSHA256:     rep.TraceSHA256,
		MeanReliability: rep.MeanReliability,
		ClockEvents:     rep.ClockEvents,
	}
	if baselineWallMillis > 0 && rep.WallMillis > 0 {
		cell.Speedup = float64(baselineWallMillis) / float64(rep.WallMillis)
	}
	return cell, nil
}

// ShardSweep runs every (scenario, shards) cell in scenario-major order and
// errors if any scenario's cells disagree on the delivery trace — a sweep
// that returns is itself a byte-identity check at scale.
func ShardSweep(o ShardSweepOptions) ([]ShardSweepCell, error) {
	o = o.withDefaults()
	cells := make([]ShardSweepCell, 0, len(o.Scenarios)*len(o.Shards))
	for _, name := range o.Scenarios {
		var baseline int64
		var trace string
		for _, shards := range o.Shards {
			c, err := ShardSweepCellAt(name, o.Seed, shards, baseline)
			if err != nil {
				return nil, err
			}
			if shards == 1 {
				baseline = c.WallMillis
			}
			if trace == "" {
				trace = c.TraceSHA256
			} else if c.TraceSHA256 != trace {
				return nil, fmt.Errorf("shard sweep %s: shards=%d trace %s != %s — sharding changed the delivery trace",
					name, shards, c.TraceSHA256, trace)
			}
			cells = append(cells, c)
		}
	}
	return cells, nil
}
