package experiments

import (
	"testing"

	"pmcast/internal/harness"
)

// TestFrontierCodedBeatsUncodedHighFanout pins the acceptance point of the
// coding layer: on the churn-free frontier64 campaign at 40% ambient loss,
// a coded fleet at reduced fan-out (f=6, k=8, r=2) matches-or-beats the
// uncoded high-fan-out baseline (f=7) on BOTH axes — mean reliability no
// worse, bytes per event no higher — averaged over eight seeds. The
// harness is deterministic, so this is a fixed-point regression: any
// change to the wire, the coder, or the revival policy that erodes the
// Pareto win trips it.
func TestFrontierCodedBeatsUncodedHighFanout(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed frontier sweep is a long test")
	}
	base, err := harness.Lookup("frontier64")
	if err != nil {
		t.Fatal(err)
	}
	const loss = 0.40
	var (
		codedRel, codedBytes     float64
		uncodedRel, uncodedBytes float64
		recoveries               int64
	)
	const seeds = 8
	for seed := int64(1); seed <= seeds; seed++ {
		coded, err := FrontierPointAt(base, seed, loss, 6, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		uncoded, err := FrontierPointAt(base, seed, loss, 7, 8, 0)
		if err != nil {
			t.Fatal(err)
		}
		codedRel += coded.MeanReliability
		codedBytes += coded.BytesPerEvent
		uncodedRel += uncoded.MeanReliability
		uncodedBytes += uncoded.BytesPerEvent
		recoveries += coded.FECRecoveries
		if uncoded.FECRecoveries != 0 || uncoded.RepairBytesPerEvent != 0 {
			t.Fatalf("seed %d: uncoded baseline shows FEC activity: %+v", seed, uncoded)
		}
	}
	codedRel /= seeds
	codedBytes /= seeds
	uncodedRel /= seeds
	uncodedBytes /= seeds
	t.Logf("loss %.2f over %d seeds: coded f=6 k=8 r=2 rel %.6f bytes %.1f | uncoded f=7 rel %.6f bytes %.1f",
		loss, seeds, codedRel, codedBytes, uncodedRel, uncodedBytes)
	if codedRel < uncodedRel {
		t.Errorf("coded mean reliability %.6f fell below uncoded %.6f", codedRel, uncodedRel)
	}
	if codedBytes > uncodedBytes {
		t.Errorf("coded bytes/event %.1f exceeded uncoded %.1f", codedBytes, uncodedBytes)
	}
	if recoveries == 0 {
		t.Error("coded cells recorded zero FEC recoveries — the coding layer never fired")
	}
}

// TestFrontierPointShape checks one coded and one uncoded cell populate
// the point fields consistently: the uncoded cell carries no repair
// traffic, the coded cell accounts its repair bytes inside the total.
func TestFrontierPointShape(t *testing.T) {
	base, err := harness.Lookup("frontier64")
	if err != nil {
		t.Fatal(err)
	}
	coded, err := FrontierPointAt(base, 1, 0.20, 6, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	uncoded, err := FrontierPointAt(base, 1, 0.20, 6, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if coded.Scenario != "frontier64" || coded.F != 6 || coded.K != 8 || coded.R != 2 {
		t.Fatalf("coded point mislabeled: %+v", coded)
	}
	if coded.RepairBytesPerEvent <= 0 {
		t.Fatalf("coded cell shows no repair bytes: %+v", coded)
	}
	if coded.BytesPerEvent <= coded.RepairBytesPerEvent {
		t.Fatalf("repair bytes not contained in total: %+v", coded)
	}
	if uncoded.RepairBytesPerEvent != 0 || uncoded.FECRecoveries != 0 {
		t.Fatalf("uncoded cell shows FEC activity: %+v", uncoded)
	}
	if coded.MeanReliability <= 0 || uncoded.MeanReliability <= 0 {
		t.Fatalf("reliability missing: coded %+v uncoded %+v", coded, uncoded)
	}
	if coded.RoundsToDeliveryP99 <= 0 {
		t.Fatalf("latency tail missing: %+v", coded)
	}
}
