package experiments

import (
	"fmt"

	"pmcast/internal/sim"
)

// AblationRow measures one protocol variant at one matching rate.
type AblationRow struct {
	// Variant names the configuration under test.
	Variant string
	// Pd is the matching rate.
	Pd float64
	// Delivery and UninterestedReception are the Figure 4/5 metrics.
	Delivery, UninterestedReception float64
	// Rounds and Messages are mean dissemination costs.
	Rounds, Messages float64
}

// ablationVariant pairs a name with a parameter mutation.
type ablationVariant struct {
	name   string
	mutate func(*sim.Params)
}

// AblationTable quantifies the design choices DESIGN.md calls out, each as a
// delta against the paper baseline (a=22, d=3, R=3, F=2):
//
//   - redundancy factor R (membership reliability, Section 2.2: "best chosen
//     such that R > 1")
//   - Pittel constant C (conservative round budgets, Section 3.3)
//   - Section 3.2 local-interest descent
//   - Section 5.3 tuning threshold h
//   - Section 6 leaf-subgroup flooding
func AblationTable(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	variants := []ablationVariant{
		{name: "baseline", mutate: func(*sim.Params) {}},
		{name: "R=1", mutate: func(p *sim.Params) { p.R = 1 }},
		{name: "R=2", mutate: func(p *sim.Params) { p.R = 2 }},
		{name: "R=4", mutate: func(p *sim.Params) { p.R = 4 }},
		{name: "C=1", mutate: func(p *sim.Params) { p.C = 1 }},
		{name: "C=2", mutate: func(p *sim.Params) { p.C = 2 }},
		{name: "local-descent", mutate: func(p *sim.Params) { p.LocalDescent = true }},
		{name: fmt.Sprintf("tuned-h=%d", o.Threshold), mutate: func(p *sim.Params) { p.Threshold = o.Threshold }},
		{name: "leaf-flood@0.5", mutate: func(p *sim.Params) { p.LeafFloodRate = 0.5 }},
	}
	pds := []float64{0.05, 0.2, 0.5}
	if o.Quick {
		pds = []float64{0.2}
	}
	rows := make([]AblationRow, 0, len(variants)*len(pds))
	for vi, v := range variants {
		params := o.PaperParams()
		v.mutate(&params)
		s, err := sim.New(params)
		if err != nil {
			return nil, fmt.Errorf("variant %s: %w", v.name, err)
		}
		for pi, pd := range pds {
			agg, err := s.RunMany(pd, o.Runs, o.Seed+int64(vi*101+pi))
			if err != nil {
				return nil, fmt.Errorf("variant %s pd=%g: %w", v.name, pd, err)
			}
			rows = append(rows, AblationRow{
				Variant:               v.name,
				Pd:                    pd,
				Delivery:              agg.Delivery.Mean(),
				UninterestedReception: agg.UninterestedReception.Mean(),
				Rounds:                agg.Rounds.Mean(),
				Messages:              agg.Messages.Mean(),
			})
		}
	}
	return rows, nil
}
