package experiments

import "testing"

// TestSkewSweepReductions pins the PR-10 acceptance bar: on Zipf-skewed
// fleets, the shared/incremental matcher pays at least 2× fewer fold
// recomputations AND at least 2× fewer match comparisons per flux wave
// than the legacy (unshared, cold-rebuild) arm, at every swept exponent.
func TestSkewSweepReductions(t *testing.T) {
	cells, err := SkewSweep(SkewSweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	for _, c := range cells {
		t.Logf("alpha=%.1f subs=%d folds %d→%d (%.1f×) comparisons %d→%d (%.1f×)",
			c.Alpha, c.TotalSubscriptions,
			c.LegacyFoldRecomputes, c.SharedFoldRecomputes, c.FoldReduction,
			c.LegacyComparisons, c.SharedComparisons, c.ComparisonReduction)
		if c.SharedFoldRecomputes == 0 || c.LegacyFoldRecomputes == 0 {
			t.Errorf("alpha=%g: zero fold meter (legacy=%d shared=%d)",
				c.Alpha, c.LegacyFoldRecomputes, c.SharedFoldRecomputes)
			continue
		}
		if c.FoldReduction < 2 {
			t.Errorf("alpha=%g: fold reduction %.2f× < 2×", c.Alpha, c.FoldReduction)
		}
		if c.ComparisonReduction < 2 {
			t.Errorf("alpha=%g: comparison reduction %.2f× < 2×", c.Alpha, c.ComparisonReduction)
		}
	}
}

// TestSkewSweepDeterminism re-runs one cell and requires identical meters:
// the sweep is a pure function of its options.
func TestSkewSweepDeterminism(t *testing.T) {
	o := SkewSweepOptions{Alphas: []float64{1.0}, Waves: 2, Victims: 16, Events: 16}
	a, err := SkewSweepCellAt(o, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SkewSweepCellAt(o, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("skew sweep not deterministic:\n  %+v\n  %+v", a, b)
	}
}
