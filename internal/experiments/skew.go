// The subscription-skew sweep: the PR-10 matching-engine claim under test
// is that shared compiled summaries, incremental batched folds and
// generation-stable profile caches cut the per-flux-wave cost of the
// matcher by at least 2× on Zipf-skewed fleets — on both axes the engine
// counts: fold recomputations (summary regroupings the tree actually paid
// for) and match comparisons (per-attribute criterion evaluations).
//
// Each cell runs the same deterministic campaign twice:
//
//   - the legacy arm models the pre-PR matcher: a fold cache and interning
//     compiler bounded to one entry (so sibling subgroups never share a
//     compiled summary and every regrouping recompiles), one
//     UpdateSubscription call per fluxed victim (one root-path recompute
//     each), and a cold Process rebuild after every wave (no AdoptState —
//     every cached profile is lost, as it was when any recompute bumped
//     the node generation);
//   - the shared arm is the engine as shipped: default cache bounds, one
//     batched ApplyDelta per wave, and rebuilt processes adopting their
//     predecessor's profile caches wherever the view generation — which
//     now only advances when a fold's language actually changed — still
//     agrees.
//
// Both arms apply byte-identical flux waves and query the same fixed
// event-ID stream after each wave, so the reductions are pure engine
// effects, not workload noise.

package experiments

import (
	"fmt"
	"math/rand"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/harness"
	"pmcast/internal/tree"
)

// SkewSweepCell is one Zipf-exponent cell: the same campaign through both
// matcher arms, with the per-wave cost reductions.
type SkewSweepCell struct {
	Alpha  float64 `json:"alpha"`
	Nodes  int     `json:"nodes"`
	Topics int     `json:"topics"`
	// TotalSubscriptions is the wave-0 fleet subscription count.
	TotalSubscriptions int `json:"total_subscriptions"`
	Waves              int `json:"waves"`
	VictimsPerWave     int `json:"victims_per_wave"`
	EventsPerWave      int `json:"events_per_wave"`
	// Fold recomputations across all flux waves (baseline build excluded).
	LegacyFoldRecomputes uint64 `json:"legacy_fold_recompiles"`
	SharedFoldRecomputes uint64 `json:"shared_fold_recompiles"`
	// Match comparisons across all post-wave query sweeps.
	LegacyComparisons uint64 `json:"legacy_comparisons"`
	SharedComparisons uint64 `json:"shared_comparisons"`
	// The headline ratios: legacy cost / shared cost, per flux wave.
	FoldReduction       float64 `json:"fold_reduction"`
	ComparisonReduction float64 `json:"comparison_reduction"`
}

// SkewSweepOptions tunes the sweep.
type SkewSweepOptions struct {
	// Alphas are the Zipf exponents swept (default 0.5, 1.0, 1.5).
	Alphas []float64
	// Nodes is the fleet size; must be arity^depth of the default
	// 4-ary space (default 256).
	Nodes int
	// Topics is the vocabulary size (default 512).
	Topics int
	// Waves is the number of flux waves (default 4).
	Waves int
	// Victims is the number of nodes redrawing subscriptions per wave
	// (default 32).
	Victims int
	// Events is the size of the fixed event stream queried after every
	// wave (default 32).
	Events int
	// Observers is the number of processes queried (default 8), spread
	// evenly across the address space.
	Observers int
	// Seed salts the workload and every draw (default 1).
	Seed int64
}

func (o SkewSweepOptions) withDefaults() SkewSweepOptions {
	if len(o.Alphas) == 0 {
		o.Alphas = []float64{0.5, 1.0, 1.5}
	}
	if o.Nodes == 0 {
		o.Nodes = 256
	}
	if o.Topics == 0 {
		o.Topics = 512
	}
	if o.Waves == 0 {
		o.Waves = 4
	}
	if o.Victims == 0 {
		o.Victims = 32
	}
	if o.Events == 0 {
		o.Events = 32
	}
	if o.Observers == 0 {
		o.Observers = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// skewSpace builds the 4-ary space holding o.Nodes members.
func skewSpace(nodes int) (addr.Space, error) {
	arities := []int{}
	for cap := 1; cap < nodes; cap *= 4 {
		arities = append(arities, 4)
	}
	s, err := addr.NewSpace(arities...)
	if err != nil {
		return addr.Space{}, err
	}
	if s.Capacity() != nodes {
		return addr.Space{}, fmt.Errorf("skew sweep: nodes=%d is not a power of 4", nodes)
	}
	return s, nil
}

// skewWorkload is the sweep's subscription model at one alpha.
func skewWorkload(o SkewSweepOptions, alpha float64) *harness.ZipfWorkload {
	return harness.NewZipfWorkload(harness.ZipfWorkload{
		Topics:   o.Topics,
		Alpha:    alpha,
		MeanSubs: 16,
		MaxSubs:  128,
		Locality: 0.8,
		Arity:    4,
		Seed:     o.Seed,
	})
}

// skewArm runs one arm of a cell and returns its flux-wave fold
// recomputations and query comparisons.
func skewArm(o SkewSweepOptions, w *harness.ZipfWorkload, space addr.Space, legacy bool) (folds, comps uint64, err error) {
	members := make([]tree.Member, o.Nodes)
	for i := range members {
		a := space.AddressAt(i)
		members[i] = tree.Member{Addr: a, Sub: w.SubscriptionFor(a, i)}
	}
	cfg := tree.Config{Space: space, R: 2}
	if legacy {
		// One-entry caches: no sharing, every fold recompiles — the
		// pre-PR cost model.
		cfg.FoldCacheBound = 1
		cfg.CompilerBound = 1
	}
	t, err := tree.Build(cfg, members)
	if err != nil {
		return 0, 0, err
	}

	// The fixed event stream: Zipf-distributed topics, stable IDs, so a
	// profile cached for an event in wave k can serve wave k+1 wherever
	// the wave left the view's language unchanged.
	erng := rand.New(rand.NewSource(o.Seed * 7919))
	evs := make([]event.Event, o.Events)
	for i := range evs {
		class := erng.Int63n(int64(o.Topics))
		evs[i] = event.New(
			event.ID{Origin: "skew", Seq: uint64(i)},
			w.EventFor(class, erng),
		)
	}

	ccfg := core.Config{F: 4, C: 3}
	stride := o.Nodes / o.Observers
	if stride < 1 {
		stride = 1
	}
	procs := make([]*core.Process, 0, o.Observers)
	selves := make([]addr.Address, 0, o.Observers)
	for i := 0; i < o.Nodes && len(procs) < o.Observers; i += stride {
		self := space.AddressAt(i)
		p, err := core.BuildProcess(t, self, ccfg)
		if err != nil {
			return 0, 0, err
		}
		procs = append(procs, p)
		selves = append(selves, self)
	}
	query := func() {
		for _, p := range procs {
			for _, ev := range evs {
				for d := 1; d <= t.Depth(); d++ {
					p.ProfileFor(ev, d)
				}
			}
		}
	}

	// Baseline: warm the profile caches against the wave-0 tree, then
	// zero the meters — the sweep measures flux-wave cost only.
	query()
	baseComps := uint64(0)
	for _, p := range procs {
		baseComps += p.MatchStats().Comparisons
	}
	baseFolds := t.FoldStats().Recomputes
	totalComps := uint64(0)

	for wave := 1; wave <= o.Waves; wave++ {
		// The wave's victims and redraws are seeded by (Seed, wave) only,
		// so both arms flux byte-identically. A flash crowd is regional:
		// each wave's victims all sit in one top-level subtree (rotating
		// per wave), the correlated-locality regime the workload models —
		// the untouched subtrees' fold languages survive the wave, which
		// is exactly the structure the incremental matcher exploits.
		vrng := rand.New(rand.NewSource(o.Seed*1_000_003 + int64(wave)))
		span := o.Nodes / 4
		base := ((wave - 1) % 4) * span
		seen := make(map[int]bool, o.Victims)
		upd := make([]tree.Member, 0, o.Victims)
		for len(upd) < o.Victims && len(seen) < span {
			idx := base + vrng.Intn(span)
			if seen[idx] {
				continue
			}
			seen[idx] = true
			a := space.AddressAt(idx)
			upd = append(upd, tree.Member{
				Addr: a,
				Sub:  w.FluxFor(a, idx, int64(wave)),
			})
		}
		if legacy {
			for _, m := range upd {
				if err := t.UpdateSubscription(m.Addr, m.Sub); err != nil {
					return 0, 0, err
				}
			}
		} else if err := t.ApplyDelta(tree.Delta{Update: upd}); err != nil {
			return 0, 0, err
		}
		for i, p := range procs {
			np, err := core.BuildProcess(t, selves[i], ccfg)
			if err != nil {
				return 0, 0, err
			}
			if legacy {
				// Cold rebuild: the predecessor's profiles are lost; bank
				// its meter before dropping it.
				totalComps += p.MatchStats().Comparisons
			} else {
				np.AdoptState(p)
			}
			procs[i] = np
		}
		query()
	}
	for _, p := range procs {
		totalComps += p.MatchStats().Comparisons
	}
	return t.FoldStats().Recomputes - baseFolds, totalComps - baseComps, nil
}

// SkewSweepCellAt runs one alpha cell: both arms over the identical
// campaign.
func SkewSweepCellAt(o SkewSweepOptions, alpha float64) (SkewSweepCell, error) {
	o = o.withDefaults()
	space, err := skewSpace(o.Nodes)
	if err != nil {
		return SkewSweepCell{}, err
	}
	w := skewWorkload(o, alpha)
	lf, lc, err := skewArm(o, w, space, true)
	if err != nil {
		return SkewSweepCell{}, fmt.Errorf("skew sweep alpha=%g legacy arm: %w", alpha, err)
	}
	sf, sc, err := skewArm(o, w, space, false)
	if err != nil {
		return SkewSweepCell{}, fmt.Errorf("skew sweep alpha=%g shared arm: %w", alpha, err)
	}
	cell := SkewSweepCell{
		Alpha:                alpha,
		Nodes:                o.Nodes,
		Topics:               o.Topics,
		TotalSubscriptions:   w.TotalSubscriptions(o.Nodes, space),
		Waves:                o.Waves,
		VictimsPerWave:       o.Victims,
		EventsPerWave:        o.Events,
		LegacyFoldRecomputes: lf,
		SharedFoldRecomputes: sf,
		LegacyComparisons:    lc,
		SharedComparisons:    sc,
	}
	if sf > 0 {
		cell.FoldReduction = float64(lf) / float64(sf)
	}
	if sc > 0 {
		cell.ComparisonReduction = float64(lc) / float64(sc)
	}
	return cell, nil
}

// SkewSweep runs every alpha cell.
func SkewSweep(o SkewSweepOptions) ([]SkewSweepCell, error) {
	o = o.withDefaults()
	cells := make([]SkewSweepCell, 0, len(o.Alphas))
	for _, alpha := range o.Alphas {
		c, err := SkewSweepCellAt(o, alpha)
		if err != nil {
			return nil, err
		}
		cells = append(cells, c)
	}
	return cells, nil
}
