package interest

import (
	"testing"

	"pmcast/internal/event"
)

func TestCriterionMatches(t *testing.T) {
	tests := []struct {
		name string
		c    Criterion
		v    event.Value
		want bool
	}{
		{"gt hit", Gt(3), event.Int(4), true},
		{"gt boundary", Gt(3), event.Int(3), false},
		{"ge boundary", Ge(3), event.Int(3), true},
		{"lt hit", Lt(3), event.Float(2.9), true},
		{"le boundary", Le(3), event.Int(3), true},
		{"between hit", Between(10, 220), event.Float(155.6), true},
		{"between open lo", Between(10, 220), event.Float(10), false},
		{"between open hi", Between(10, 220), event.Float(220), false},
		{"betweenincl boundary", BetweenIncl(10, 220), event.Float(220), true},
		{"eq int", EqInt(2), event.Int(2), true},
		{"eq int float event", EqInt(2), event.Float(2.0), true},
		{"eq float", EqFloat(35.997), event.Float(35.997), true},
		{"eq miss", EqInt(2), event.Int(3), false},
		{"numeric vs string value", Gt(0), event.Str("5"), false},
		{"oneof hit", OneOf("Bob", "Tom"), event.Str("Tom"), true},
		{"oneof miss", OneOf("Bob", "Tom"), event.Str("Alice"), false},
		{"oneof vs int", OneOf("Bob"), event.Int(1), false},
		{"bool hit", IsBool(true), event.Bool(true), true},
		{"bool miss", IsBool(true), event.Bool(false), false},
		{"any matches int", Any(), event.Int(0), true},
		{"any matches string", Any(), event.Str(""), true},
		{"any rejects zero value", Any(), event.Value{}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.c.Matches(tt.v); got != tt.want {
				t.Errorf("Matches(%v) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestCriterionSubsumes(t *testing.T) {
	tests := []struct {
		name string
		a, b Criterion
		want bool
	}{
		{"wider gt", Gt(0), Gt(3), true},
		{"narrower gt", Gt(3), Gt(0), false},
		{"ge subsumes gt same bound", Ge(3), Gt(3), true},
		{"gt not subsumes ge same bound", Gt(3), Ge(3), false},
		{"range in range", Between(0, 100), Between(10, 20), true},
		{"point in range", Between(0, 100), EqInt(50), true},
		{"superset strings", OneOf("Bob", "Tom", "Ann"), OneOf("Bob", "Tom"), true},
		{"subset strings", OneOf("Bob"), OneOf("Bob", "Tom"), false},
		{"same bool", IsBool(true), IsBool(true), true},
		{"diff bool", IsBool(true), IsBool(false), false},
		{"any subsumes numeric", Any(), Gt(0), true},
		{"numeric not subsumes any", Gt(0), Any(), false},
		{"cross domain", Gt(0), OneOf("x"), false},
		{"cross domain empty rhs", Gt(0), OneOf(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.Subsumes(tt.b); got != tt.want {
				t.Errorf("Subsumes = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestCriterionUnion(t *testing.T) {
	t.Run("numeric union keeps both", func(t *testing.T) {
		u := Between(1, 2).Union(Between(5, 6))
		if !u.Matches(event.Float(1.5)) || !u.Matches(event.Float(5.5)) {
			t.Error("union lost a disjunct")
		}
		if u.Matches(event.Float(3)) {
			t.Error("union matched gap value")
		}
		if u.Size() != 2 {
			t.Errorf("size = %d, want 2", u.Size())
		}
	})
	t.Run("string union", func(t *testing.T) {
		u := OneOf("Bob").Union(OneOf("Tom", "Bob"))
		if u.Size() != 2 {
			t.Errorf("size = %d, want 2", u.Size())
		}
		if !u.Matches(event.Str("Tom")) || !u.Matches(event.Str("Bob")) {
			t.Error("string union lost values")
		}
	})
	t.Run("cross domain widens to any", func(t *testing.T) {
		u := Gt(1).Union(OneOf("x"))
		if !u.IsAny() {
			t.Errorf("cross-domain union = %v, want wildcard", u)
		}
	})
	t.Run("bool unions", func(t *testing.T) {
		if u := IsBool(true).Union(IsBool(true)); u.IsAny() {
			t.Error("same-bool union widened")
		}
		if u := IsBool(true).Union(IsBool(false)); !u.IsAny() {
			t.Error("both-bool union should widen")
		}
	})
	t.Run("union with empty is identity", func(t *testing.T) {
		if u := Gt(1).Union(OneOf()); !u.Equal(Gt(1)) {
			t.Errorf("union with empty = %v", u)
		}
	})
	t.Run("union subsumes operands", func(t *testing.T) {
		pairs := [][2]Criterion{
			{Gt(3), Lt(-2)},
			{EqInt(1), EqInt(9)},
			{OneOf("a", "b"), OneOf("c")},
			{Between(0, 1), Ge(10)},
		}
		for _, p := range pairs {
			u := p[0].Union(p[1])
			if !u.Subsumes(p[0]) || !u.Subsumes(p[1]) {
				t.Errorf("union %v does not subsume operands %v, %v", u, p[0], p[1])
			}
		}
	})
}

func TestCriterionRender(t *testing.T) {
	tests := []struct {
		c    Criterion
		attr string
		want string
	}{
		{Gt(3), "b", "b > 3"},
		{Between(10, 220), "c", "10 < c < 220"},
		{EqInt(42000), "z", "z = 42000"},
		{OneOf("Bob", "Tom"), "e", `e = "Bob" ∨ "Tom"`},
		{Any(), "b", "b = *"},
		{IsBool(true), "u", "u = true"},
		{OneOf(), "e", "e ∈ ∅"},
	}
	for _, tt := range tests {
		if got := tt.c.Render(tt.attr); got != tt.want {
			t.Errorf("Render = %q, want %q", got, tt.want)
		}
	}
}

func TestCriterionEqual(t *testing.T) {
	if !Gt(3).Equal(Gt(3)) {
		t.Error("identical criteria unequal")
	}
	if Gt(3).Equal(Ge(3)) {
		t.Error("distinct criteria equal")
	}
	if !OneOf("a", "b").Equal(OneOf("b", "a", "a")) {
		t.Error("order/duplicates should not matter")
	}
}

func TestEqOnInvalidValue(t *testing.T) {
	c := Eq(event.Value{})
	if !c.IsEmpty() {
		t.Error("Eq(zero value) should admit nothing")
	}
	if c.Matches(event.Int(0)) {
		t.Error("empty criterion matched")
	}
}
