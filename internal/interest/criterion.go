package interest

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"pmcast/internal/event"
)

// criterionKind discriminates the domain of a per-attribute criterion.
// Kinds start at 1 so the zero criterion is detectably invalid.
type criterionKind int

const (
	kindAny criterionKind = iota + 1
	kindNumeric
	kindString
	kindBool
)

// Criterion constrains a single event attribute: a union of numeric
// intervals, a set of admissible strings, a boolean constant, or the
// wildcard. Criteria are immutable values; the zero Criterion is invalid
// (use Any() for the wildcard) and is rejected at subscription
// construction — Subscription.Constrain returns ErrInvalidCriterion,
// Where panics.
type Criterion struct {
	kind criterionKind
	nums IntervalSet
	strs []string // sorted, unique
	b    bool
}

// Any returns the wildcard criterion matching every value.
func Any() Criterion { return Criterion{kind: kindAny} }

// Eq constrains the attribute to a single value of any supported type.
func Eq(v event.Value) Criterion {
	if n, ok := v.Numeric(); ok {
		return Criterion{kind: kindNumeric, nums: IntervalSet{PointInterval(n)}}
	}
	if s, ok := v.AsString(); ok {
		return Criterion{kind: kindString, strs: []string{s}}
	}
	if b, ok := v.AsBool(); ok {
		return Criterion{kind: kindBool, b: b}
	}
	// Invalid value: admit nothing.
	return Criterion{kind: kindNumeric, nums: nil}
}

// EqInt constrains a numeric attribute to exactly x (e.g. "b = 2").
func EqInt(x int64) Criterion { return Eq(event.Int(x)) }

// EqFloat constrains a numeric attribute to exactly x.
func EqFloat(x float64) Criterion { return Eq(event.Float(x)) }

// Gt constrains a numeric attribute to values strictly greater than x.
func Gt(x float64) Criterion {
	return fromInterval(Interval{Lo: x, Hi: inf(), LoOpen: true, HiOpen: true})
}

// Ge constrains a numeric attribute to values ≥ x.
func Ge(x float64) Criterion {
	return fromInterval(Interval{Lo: x, Hi: inf(), HiOpen: true})
}

// Lt constrains a numeric attribute to values strictly less than x.
func Lt(x float64) Criterion {
	return fromInterval(Interval{Lo: ninf(), Hi: x, LoOpen: true, HiOpen: true})
}

// Le constrains a numeric attribute to values ≤ x.
func Le(x float64) Criterion {
	return fromInterval(Interval{Lo: ninf(), Hi: x, LoOpen: true})
}

// Between constrains a numeric attribute to the open interval (lo, hi),
// matching the paper's "10.0 < c < 220.0" style.
func Between(lo, hi float64) Criterion {
	return fromInterval(Interval{Lo: lo, Hi: hi, LoOpen: true, HiOpen: true})
}

// BetweenIncl constrains a numeric attribute to the closed interval [lo, hi].
func BetweenIncl(lo, hi float64) Criterion {
	return fromInterval(Interval{Lo: lo, Hi: hi})
}

// InIntervals builds a numeric criterion from an arbitrary interval union.
func InIntervals(ivs ...Interval) Criterion {
	return Criterion{kind: kindNumeric, nums: NormalizeIntervals(ivs)}
}

// OneOf constrains a string attribute to the given set of values, matching
// the paper's `e = "Bob" ∨ "Tom"` style.
func OneOf(ss ...string) Criterion {
	u := make([]string, len(ss))
	copy(u, ss)
	sort.Strings(u)
	u = dedupSorted(u)
	return Criterion{kind: kindString, strs: u}
}

// IsBool constrains a boolean attribute to the constant b.
func IsBool(b bool) Criterion { return Criterion{kind: kindBool, b: b} }

func fromInterval(iv Interval) Criterion {
	return Criterion{kind: kindNumeric, nums: NormalizeIntervals([]Interval{iv})}
}

func inf() float64  { return math.Inf(1) }
func ninf() float64 { return math.Inf(-1) }

func dedupSorted(ss []string) []string {
	if len(ss) == 0 {
		return ss
	}
	out := ss[:1]
	for _, s := range ss[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

// mergedUniqueCount returns len(mergeSortedUnique(a, b)) without building
// the merge.
func mergedUniqueCount(a, b []string) int {
	i, j, n := 0, 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			j++
		case j == len(b):
			i++
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			i, j = i+1, j+1
		}
		n++
	}
	return n
}

// mergeSortedUnique merges two sorted, deduplicated string slices into a
// fresh sorted, deduplicated slice — the linear union of two canonical
// string sets (the sort-free hot path of string-criterion regrouping).
func mergeSortedUnique(a, b []string) []string {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var s string
		switch {
		case i == len(a):
			s, j = b[j], j+1
		case j == len(b):
			s, i = a[i], i+1
		case a[i] < b[j]:
			s, i = a[i], i+1
		case b[j] < a[i]:
			s, j = b[j], j+1
		default:
			s, i, j = a[i], i+1, j+1
		}
		out = append(out, s)
	}
	return out
}

// IsValid reports whether the criterion was properly constructed.
func (c Criterion) IsValid() bool { return c.kind != 0 }

// IsAny reports whether the criterion is the wildcard.
func (c Criterion) IsAny() bool { return c.kind == kindAny }

// IsEmpty reports whether the criterion can match no value at all.
func (c Criterion) IsEmpty() bool {
	switch c.kind {
	case kindNumeric:
		return c.nums.IsEmpty()
	case kindString:
		return len(c.strs) == 0
	default:
		return false
	}
}

// Matches reports whether a concrete attribute value satisfies the criterion.
// Values of a kind foreign to the criterion's domain do not match.
func (c Criterion) Matches(v event.Value) bool {
	switch c.kind {
	case kindAny:
		return !v.IsZero()
	case kindNumeric:
		n, ok := v.Numeric()
		return ok && c.nums.Contains(n)
	case kindString:
		s, ok := v.AsString()
		if !ok {
			return false
		}
		i := sort.SearchStrings(c.strs, s)
		return i < len(c.strs) && c.strs[i] == s
	case kindBool:
		b, ok := v.AsBool()
		return ok && b == c.b
	default:
		return false
	}
}

// Subsumes reports whether every value admitted by d is admitted by c
// (c ⊇ d). Cross-domain criteria never subsume each other, except that the
// wildcard subsumes everything.
func (c Criterion) Subsumes(d Criterion) bool {
	if c.kind == kindAny {
		return true
	}
	if d.kind == kindAny {
		return false
	}
	if c.kind != d.kind {
		return d.IsEmpty()
	}
	switch c.kind {
	case kindNumeric:
		return d.nums.SubsetOf(c.nums)
	case kindString:
		for _, s := range d.strs {
			i := sort.SearchStrings(c.strs, s)
			if i >= len(c.strs) || c.strs[i] != s {
				return false
			}
		}
		return true
	case kindBool:
		return c.b == d.b
	default:
		return false
	}
}

// Regrouping caps: beyond these sizes a unioned criterion widens further —
// a numeric union to its single-interval hull, a string union to the
// wildcard. Regrouping exists to bound "the complexity of the interests
// both in terms of memory space and in terms of evaluation time"
// (Section 2.3); without a per-criterion cap, merging many multi-point
// interests (the high-cardinality workloads) grows interval unions without
// bound and the closest-pair heuristic goes quadratic over them. Widening
// is always a legal over-approximation: summaries may admit more, never
// less.
const (
	// MaxNumericDisjuncts bounds the intervals a regrouped numeric
	// criterion keeps before collapsing to its hull.
	MaxNumericDisjuncts = 16
	// MaxStringDisjuncts bounds the admissible strings a regrouped string
	// criterion keeps before widening to the wildcard.
	MaxStringDisjuncts = 64
)

// Union returns a criterion admitting every value admitted by either input.
// Unions across different domains (e.g. numeric with string) widen to the
// wildcard, and unions past the regrouping caps widen to their hull — this
// is the lossy step of interest regrouping and is always an
// over-approximation.
func (c Criterion) Union(d Criterion) Criterion {
	if c.kind == kindAny || d.kind == kindAny {
		return Any()
	}
	if c.IsEmpty() {
		return d
	}
	if d.IsEmpty() {
		return c
	}
	if c.kind != d.kind {
		return Any()
	}
	switch c.kind {
	case kindNumeric:
		u := c.nums.Union(d.nums)
		if len(u) > MaxNumericDisjuncts {
			u = IntervalSet{u.Hull()}
		}
		return Criterion{kind: kindNumeric, nums: u}
	case kindString:
		merged := mergeSortedUnique(c.strs, d.strs)
		if len(merged) > MaxStringDisjuncts {
			return Any()
		}
		return Criterion{kind: kindString, strs: merged}
	case kindBool:
		if c.b == d.b {
			return c
		}
		return Any()
	default:
		return Any()
	}
}

// unionCost predicts Union's outcome without materializing it: whether the
// union survives as a constraint (false means it widens to the wildcard and
// the attribute is dropped from a hull) and, if kept, its Size. Mirrors
// Union case for case, caps included.
func (c Criterion) unionCost(d Criterion) (kept bool, size int) {
	if c.kind == kindAny || d.kind == kindAny {
		return false, 0
	}
	if c.IsEmpty() {
		return true, d.Size()
	}
	if d.IsEmpty() {
		return true, c.Size()
	}
	if c.kind != d.kind {
		return false, 0
	}
	switch c.kind {
	case kindNumeric:
		n := c.nums.unionCount(d.nums)
		if n > MaxNumericDisjuncts {
			n = 1 // the union collapses to its hull interval
		}
		return true, n
	case kindString:
		n := mergedUniqueCount(c.strs, d.strs)
		if n > MaxStringDisjuncts {
			return false, 0
		}
		return true, n
	case kindBool:
		if c.b == d.b {
			return true, 1
		}
		return false, 0
	default:
		return false, 0
	}
}

// Equal reports whether two criteria admit exactly the same values.
func (c Criterion) Equal(d Criterion) bool {
	return c.Subsumes(d) && d.Subsumes(c)
}

// Size is a rough complexity measure (number of disjuncts) used by the
// regrouping heuristics to bound summary growth.
func (c Criterion) Size() int {
	switch c.kind {
	case kindNumeric:
		return len(c.nums)
	case kindString:
		return len(c.strs)
	default:
		return 1
	}
}

// Render renders the criterion as a predicate on the named attribute, in the
// paper's style (Figure 2).
func (c Criterion) Render(attr string) string {
	switch c.kind {
	case kindAny:
		return attr + " = *"
	case kindNumeric:
		return c.nums.Render(attr)
	case kindString:
		if len(c.strs) == 0 {
			return attr + " ∈ ∅"
		}
		parts := make([]string, len(c.strs))
		for i, s := range c.strs {
			parts[i] = strconv.Quote(s)
		}
		return attr + " = " + strings.Join(parts, " ∨ ")
	case kindBool:
		return attr + " = " + strconv.FormatBool(c.b)
	default:
		return attr + " = <invalid>"
	}
}
