package interest

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"pmcast/internal/event"
)

// This file is the compile step of the matching engine: Subscriptions and
// Summaries — the interpretive, merge-walked representations regrouping
// works on — compile into immutable CompiledMatcher values built for the
// read side. Every per-attribute criterion becomes an index: numeric
// criteria keep their normalized interval array (disjoint, sorted, binary
// searched — IntervalSet.Contains already is that index), string criteria
// trade the sorted slice for a hashed set, and the conjunction keeps its
// criteria cheapest-first so mismatches short-circuit early. A canonical
// fingerprint identifies the matched language itself, so structurally
// identical interests — a fleet where hundreds of processes subscribe to
// the same classes — share one compiled form through a Compiler.
//
// The interpretive Matches implementations on Subscription and Summary stay
// exactly as they were: they are the oracle the property and fuzz tests
// hold the compiled path to.

// MatchCounter tallies the work of matcher evaluations: Evals counts
// matcher invocations (one disjunction tested against one event) and
// Comparisons counts per-attribute criterion evaluations inside them — the
// unit the paper's "evaluation time" complexity bound (Section 2.3) is
// about, and the currency the susceptibility cache saves. Counters are
// plain fields; callers own any synchronization.
type MatchCounter struct {
	Evals       uint64
	Comparisons uint64
}

// Add accumulates another counter into c.
func (c *MatchCounter) Add(d MatchCounter) {
	c.Evals += d.Evals
	c.Comparisons += d.Comparisons
}

// smallStringSet is the size up to which a sorted-slice binary search beats
// a hashed set for string criteria (hashing the whole key costs more than a
// handful of comparisons).
const smallStringSet = 16

// compiledCriterion is one per-attribute index of a compiled conjunction.
type compiledCriterion struct {
	attr string
	kind criterionKind
	// nums is the numeric index: disjoint sorted intervals, binary searched.
	nums IntervalSet
	// strSet is the string index for large sets: a hashed set replacing the
	// sorted-slice search. Small sets keep the sorted slice (strList).
	strSet  map[string]struct{}
	strList []string
	b       bool
}

// matches evaluates the criterion against one attribute value.
func (c *compiledCriterion) matches(v event.Value) bool {
	switch c.kind {
	case kindAny:
		return !v.IsZero()
	case kindNumeric:
		n, ok := v.Numeric()
		return ok && c.nums.Contains(n)
	case kindString:
		s, ok := v.AsString()
		if !ok {
			return false
		}
		if c.strSet != nil {
			_, in := c.strSet[s]
			return in
		}
		i := sort.SearchStrings(c.strList, s)
		return i < len(c.strList) && c.strList[i] == s
	case kindBool:
		b, ok := v.AsBool()
		return ok && b == c.b
	default:
		return false
	}
}

// compiledConjunction is one disjunct: a conjunction of per-attribute
// indexes in sorted attribute order, evaluated as a short-circuiting merge
// walk against the event's (equally sorted) attributes — no per-criterion
// binary search.
type compiledConjunction struct {
	crits []compiledCriterion
}

func (cc *compiledConjunction) matches(ev event.Event, mc *MatchCounter) bool {
	n := ev.Len()
	j := 0
	for i := range cc.crits {
		if mc != nil {
			mc.Comparisons++
		}
		attr := cc.crits[i].attr
		for {
			if j == n {
				return false // event lacks the constrained attribute
			}
			name, v := ev.AttrAt(j)
			if name < attr {
				j++
				continue
			}
			if name != attr {
				return false // walked past it: attribute absent
			}
			if !cc.crits[i].matches(v) {
				return false
			}
			j++
			break
		}
	}
	return true
}

// CompiledMatcher is the immutable compiled form of a subscription or
// summary: a disjunction of indexed conjunctions plus a canonical
// fingerprint. The nil matcher matches nothing (like a nil Summary); a
// match-all matcher answers without touching the event. CompiledMatcher is
// safe for concurrent use — compilation produced it, nothing mutates it.
type CompiledMatcher struct {
	fp        string
	matchAll  bool
	disjuncts []compiledConjunction
}

var _ Matcher = (*CompiledMatcher)(nil)

// Matches reports whether any compiled disjunct matches the event.
func (m *CompiledMatcher) Matches(ev event.Event) bool {
	return m.MatchesCounted(ev, nil)
}

// MatchesCounted is Matches with work accounting: one Eval for the
// invocation plus one Comparison per attribute criterion consulted. A nil
// counter skips accounting.
func (m *CompiledMatcher) MatchesCounted(ev event.Event, mc *MatchCounter) bool {
	if m == nil {
		return false
	}
	if mc != nil {
		mc.Evals++
	}
	if m.matchAll {
		return true
	}
	for i := range m.disjuncts {
		if m.disjuncts[i].matches(ev, mc) {
			return true
		}
	}
	return false
}

// Fingerprint returns the canonical identity of the matched language: two
// compiled matchers with equal fingerprints accept exactly the same events.
// (The converse is not guaranteed — semantically equal interests with
// different structure may fingerprint apart — which is the right trade for
// an interning key.)
func (m *CompiledMatcher) Fingerprint() string {
	if m == nil {
		return ""
	}
	return m.fp
}

// IsMatchAll reports whether the matcher accepts every event.
func (m *CompiledMatcher) IsMatchAll() bool { return m != nil && m.matchAll }

// NumDisjuncts returns the number of compiled conjunctions (0 for match-all
// and match-nothing).
func (m *CompiledMatcher) NumDisjuncts() int {
	if m == nil {
		return 0
	}
	return len(m.disjuncts)
}

// Fingerprint returns the canonical identity of the subscription's matched
// language: the wire encoding, which is already canonical (criteria sorted
// by attribute, interval sets normalized, string sets sorted and deduped).
func (s Subscription) Fingerprint() string {
	return string(AppendSubscription(nil, s))
}

// OrderedFingerprint identifies the summary as a regrouping input: the
// disjunct fingerprints in accumulation order (plus a match-all sentinel).
// Unlike the compiled matcher's language fingerprint — which sorts — this
// one is order-sensitive, because the regrouping heuristics fold disjuncts
// in slice order: only order-identical summaries are interchangeable as
// inputs to a further Merge.
func (s *Summary) OrderedFingerprint() string {
	if s == nil {
		return ""
	}
	if s.matchAll {
		return "\x01*"
	}
	var sb strings.Builder
	for _, sub := range s.subs {
		sb.WriteString(sub.Fingerprint())
		sb.WriteByte(0)
	}
	return sb.String()
}

// summaryFingerprint canonicalizes a summary: the sorted fingerprints of
// its disjuncts (Add/compact order is arrival-dependent, the language is
// not), with sentinels for match-all and match-nothing.
func summaryFingerprint(s *Summary) string {
	if s == nil || s.IsEmpty() {
		return "\x00empty"
	}
	if s.matchAll {
		return "\x00all"
	}
	fps := make([]string, len(s.subs))
	for i, sub := range s.subs {
		fps[i] = sub.Fingerprint()
	}
	sort.Strings(fps)
	return strings.Join(fps, "\x00")
}

// compileConjunction indexes one subscription's criteria.
func compileConjunction(s Subscription) compiledConjunction {
	cc := compiledConjunction{crits: make([]compiledCriterion, 0, len(s.criteria))}
	for i := range s.criteria {
		crit := s.criteria[i].crit
		c := compiledCriterion{attr: s.criteria[i].attr, kind: crit.kind, b: crit.b}
		switch crit.kind {
		case kindNumeric:
			c.nums = crit.nums
		case kindString:
			if len(crit.strs) > smallStringSet {
				c.strSet = make(map[string]struct{}, len(crit.strs))
				for _, str := range crit.strs {
					c.strSet[str] = struct{}{}
				}
			} else {
				c.strList = crit.strs
			}
		}
		cc.crits = append(cc.crits, c)
	}
	// Criteria stay in the subscription's canonical attribute order — the
	// merge walk depends on it.
	return cc
}

// Compile compiles a subscription. The empty (match-all) subscription
// compiles to the match-all matcher; a subscription with an unsatisfiable
// criterion still compiles (its conjunction simply never matches), keeping
// compiled semantics bit-for-bit equal to the interpretive path.
func Compile(s Subscription) *CompiledMatcher {
	m := &CompiledMatcher{fp: "s:" + s.Fingerprint()}
	if s.IsMatchAll() {
		m.matchAll = true
		return m
	}
	m.disjuncts = []compiledConjunction{compileConjunction(s)}
	return m
}

// CompileSummary compiles a summary's disjunction. Disjuncts are compiled
// in fingerprint order — a canonical form, so equal languages produce equal
// evaluation order (and equal MatchCounter accounting) no matter how the
// summary was accumulated.
func CompileSummary(s *Summary) *CompiledMatcher {
	m := &CompiledMatcher{fp: "y:" + summaryFingerprint(s)}
	if s == nil || s.IsEmpty() {
		return m
	}
	if s.matchAll {
		m.matchAll = true
		return m
	}
	subs := make([]Subscription, len(s.subs))
	copy(subs, s.subs)
	sort.Slice(subs, func(i, j int) bool {
		return subs[i].Fingerprint() < subs[j].Fingerprint()
	})
	m.disjuncts = make([]compiledConjunction, len(subs))
	for i, sub := range subs {
		m.disjuncts[i] = compileConjunction(sub)
	}
	return m
}

// DefaultCompilerBound caps live entries in an interning Compiler (across
// both generations, see below). Zipf-scale subscription flux mints fresh
// languages indefinitely; without a bound the interning table is a leak.
const DefaultCompilerBound = 1 << 16

// compilerIDs mints process-unique Compiler identities for fleet-level
// stats deduplication (many trees may share one Compiler through clones).
var compilerIDs atomic.Uint64

// Compiler interns compiled matchers by fingerprint, so every structurally
// identical interest in a process — a tree whose leaf summaries repeat a
// handful of subscription shapes, a fleet sharing one Compiler through
// tree clones — holds the same *CompiledMatcher. Interning is also what
// makes compiled-summary pointer equality a cheap "did the language
// change?" test. Safe for concurrent use.
//
// The table is bounded by generational sweep: inserts and hits land in the
// hot generation; when hot reaches half the bound, the cold generation —
// every fingerprint not touched since the last sweep, i.e. languages whose
// view generations have retired — is dropped wholesale. Eviction only costs
// a recompile (and a pointer-identity miss) if the language recurs; it never
// affects matching semantics.
type Compiler struct {
	mu        sync.Mutex
	id        uint64
	bound     int
	hot, cold map[string]*CompiledMatcher
	evictions uint64
}

// CompilerStats is a snapshot of a Compiler's interning table.
type CompilerStats struct {
	// ID identifies the compiler instance (clone-shared compilers report one
	// ID), letting fleet aggregation count each table once.
	ID uint64
	// Entries is the number of live interned languages (both generations).
	Entries int
	// Evictions counts languages dropped by generation sweeps since creation.
	Evictions uint64
}

// NewCompiler returns an empty interning compiler with the default bound.
func NewCompiler() *Compiler { return NewCompilerBounded(0) }

// NewCompilerBounded returns an empty interning compiler holding at most
// bound live entries; 0 means DefaultCompilerBound.
func NewCompilerBounded(bound int) *Compiler {
	if bound <= 0 {
		bound = DefaultCompilerBound
	}
	return &Compiler{
		id:    compilerIDs.Add(1),
		bound: bound,
		hot:   make(map[string]*CompiledMatcher),
		cold:  make(map[string]*CompiledMatcher),
	}
}

// putLocked inserts into the hot generation, rotating generations first if
// hot is full (hot and cold stay disjoint; live entries never exceed bound).
func (c *Compiler) putLocked(fp string, m *CompiledMatcher) {
	if _, ok := c.hot[fp]; !ok && len(c.hot) >= max(1, c.bound/2) {
		c.evictions += uint64(len(c.cold))
		c.cold = c.hot
		c.hot = make(map[string]*CompiledMatcher, len(c.cold))
	}
	c.hot[fp] = m
}

// intern returns the canonical matcher for the fingerprint, compiling once.
func (c *Compiler) intern(fp string, compile func() *CompiledMatcher) *CompiledMatcher {
	c.mu.Lock()
	if m, ok := c.hot[fp]; ok {
		c.mu.Unlock()
		return m
	}
	if m, ok := c.cold[fp]; ok {
		// Promote: a touched language survives the next sweep.
		delete(c.cold, fp)
		c.putLocked(fp, m)
		c.mu.Unlock()
		return m
	}
	c.mu.Unlock()
	// Compile outside the lock: compilation may be arbitrarily large and
	// two racing compiles of the same language are idempotent.
	m := compile()
	c.mu.Lock()
	if prev, ok := c.hot[m.fp]; ok {
		m = prev
	} else if prev, ok := c.cold[m.fp]; ok {
		m = prev
		delete(c.cold, m.fp)
		c.putLocked(m.fp, m)
	} else {
		c.putLocked(m.fp, m)
	}
	c.mu.Unlock()
	return m
}

// Compile returns the interned compiled form of the subscription.
func (c *Compiler) Compile(s Subscription) *CompiledMatcher {
	return c.intern("s:"+s.Fingerprint(), func() *CompiledMatcher { return Compile(s) })
}

// CompileSummary returns the interned compiled form of the summary.
func (c *Compiler) CompileSummary(s *Summary) *CompiledMatcher {
	return c.intern("y:"+summaryFingerprint(s), func() *CompiledMatcher { return CompileSummary(s) })
}

// Len returns the number of distinct compiled languages interned.
func (c *Compiler) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.hot) + len(c.cold)
}

// Stats returns a snapshot of the interning table.
func (c *Compiler) Stats() CompilerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CompilerStats{ID: c.id, Entries: len(c.hot) + len(c.cold), Evictions: c.evictions}
}
