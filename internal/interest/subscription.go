package interest

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"pmcast/internal/event"
)

// ErrInvalidCriterion reports a zero-value (never constructed) Criterion
// handed to Subscription construction. The zero Criterion is documented
// invalid — it is not the wildcard (that is Any()) and not the empty
// criterion (that is an exhausted interval or string set) — so accepting it
// silently would build a subscription whose semantics the caller never
// chose. Constrain rejects it early instead.
var ErrInvalidCriterion = errors.New("interest: zero-value Criterion (use Any() for the wildcard)")

// Matcher is anything that can decide whether an event is of interest.
// Individual subscriptions, regrouped summaries, and the simulator's
// synthetic Bernoulli interests all implement it.
type Matcher interface {
	// Matches reports whether the event is of interest ("event ⊳ process"
	// in the paper's Figure 3 notation).
	Matches(ev event.Event) bool
}

// attrCriterion is one (attribute, constraint) pair of a conjunction.
type attrCriterion struct {
	attr string
	crit Criterion
}

// Subscription is a conjunction of per-attribute criteria, one line of a
// depth-d view table (paper Figure 2): e.g.
//
//	b = 2, c > 40.0, z = 20000
//
// Attributes without a criterion are wildcards. The zero Subscription
// matches every event.
//
// The criteria are a slice sorted by attribute, not a map: subscriptions are
// tiny (a handful of attributes), read constantly on the hot paths — summary
// regrouping, susceptibility tests, matching-rate scans — and iterated far
// more often than they are built. Sorted slices make Subsumes/Equal/HullWith
// linear merge-walks with no iterator or hashing overhead.
type Subscription struct {
	// criteria is sorted by attribute and never contains wildcard entries
	// (absence means wildcard).
	criteria []attrCriterion
}

var _ Matcher = Subscription{}

// NewSubscription returns an empty (match-all) subscription.
func NewSubscription() Subscription { return Subscription{} }

// clone returns an independent copy. Criterion values are immutable once
// built, so copying the pair slice suffices.
func (s Subscription) clone() Subscription {
	if len(s.criteria) == 0 {
		return Subscription{}
	}
	return Subscription{criteria: append([]attrCriterion(nil), s.criteria...)}
}

// find returns the index of attr in the sorted criteria, or the insertion
// point with ok=false.
func (s Subscription) find(attr string) (int, bool) {
	i := sort.Search(len(s.criteria), func(i int) bool { return s.criteria[i].attr >= attr })
	return i, i < len(s.criteria) && s.criteria[i].attr == attr
}

// Where returns a copy of the subscription with an added criterion on the
// named attribute. Re-constraining an attribute keeps the latest criterion
// (callers own the semantics of re-constraining); a wildcard criterion
// removes the constraint. Where panics on the invalid zero Criterion — a
// programmer error caught at construction, not at match time; use Constrain
// when the criterion comes from untrusted input.
func (s Subscription) Where(attr string, c Criterion) Subscription {
	out, err := s.Constrain(attr, c)
	if err != nil {
		panic(fmt.Sprintf("interest: Where(%q): %v", attr, err))
	}
	return out
}

// Constrain is Where with early validation: the invalid zero Criterion is
// rejected with ErrInvalidCriterion instead of silently building a
// subscription that matches nothing the caller intended.
func (s Subscription) Constrain(attr string, c Criterion) (Subscription, error) {
	if !c.IsValid() {
		return s, fmt.Errorf("%w (attribute %q)", ErrInvalidCriterion, attr)
	}
	i, ok := s.find(attr)
	switch {
	case c.IsAny() && !ok:
		return s, nil // removing an absent constraint: nothing to copy
	case c.IsAny():
		out := make([]attrCriterion, 0, len(s.criteria)-1)
		out = append(out, s.criteria[:i]...)
		return Subscription{criteria: append(out, s.criteria[i+1:]...)}, nil
	case ok:
		out := append([]attrCriterion(nil), s.criteria...)
		out[i].crit = c
		return Subscription{criteria: out}, nil
	default:
		out := make([]attrCriterion, 0, len(s.criteria)+1)
		out = append(out, s.criteria[:i]...)
		out = append(out, attrCriterion{attr: attr, crit: c})
		return Subscription{criteria: append(out, s.criteria[i:]...)}, nil
	}
}

// Matches reports whether the event satisfies every criterion. Events
// lacking a constrained attribute do not match (events of the considered
// type carry all attributes; a missing one cannot satisfy a criterion).
func (s Subscription) Matches(ev event.Event) bool {
	return s.MatchesCounted(ev, nil)
}

// MatchesCounted is Matches with work accounting in the same units the
// compiled engine reports — one Comparison per attribute criterion
// consulted — so the interpretive oracle's cost and the compiled path's
// cost are directly comparable. A nil counter skips accounting.
func (s Subscription) MatchesCounted(ev event.Event, mc *MatchCounter) bool {
	for i := range s.criteria {
		if mc != nil {
			mc.Comparisons++
		}
		v, ok := ev.Lookup(s.criteria[i].attr)
		if !ok || !s.criteria[i].crit.Matches(v) {
			return false
		}
	}
	return true
}

// Criterion returns the constraint on the named attribute; the wildcard if
// unconstrained.
func (s Subscription) Criterion(attr string) Criterion {
	if i, ok := s.find(attr); ok {
		return s.criteria[i].crit
	}
	return Any()
}

// Attrs returns the constrained attribute names in sorted order.
func (s Subscription) Attrs() []string {
	attrs := make([]string, len(s.criteria))
	for i := range s.criteria {
		attrs[i] = s.criteria[i].attr
	}
	return attrs
}

// IsMatchAll reports whether the subscription has no constraints.
func (s Subscription) IsMatchAll() bool { return len(s.criteria) == 0 }

// IsEmpty reports whether some criterion is unsatisfiable, making the whole
// conjunction match nothing.
func (s Subscription) IsEmpty() bool {
	for i := range s.criteria {
		if s.criteria[i].crit.IsEmpty() {
			return true
		}
	}
	return false
}

// Subsumes reports whether every event matched by t is matched by s (s ⊇ t).
// This holds iff every attribute constrained by s is constrained at least as
// tightly by t. Both criterion lists are sorted, so this is one merge walk.
func (s Subscription) Subsumes(t Subscription) bool {
	if t.IsEmpty() {
		return true
	}
	j := 0
	for i := range s.criteria {
		attr := s.criteria[i].attr
		for j < len(t.criteria) && t.criteria[j].attr < attr {
			j++
		}
		if j == len(t.criteria) || t.criteria[j].attr != attr {
			return false // t is wildcard here, s is not
		}
		if !s.criteria[i].crit.Subsumes(t.criteria[j].crit) {
			return false
		}
		j++
	}
	return true
}

// Equal reports whether two subscriptions match exactly the same events.
func (s Subscription) Equal(t Subscription) bool {
	return s.Subsumes(t) && t.Subsumes(s)
}

// HullWith merges two subscriptions into a single conjunction that
// over-approximates their disjunction: attributes constrained by both keep
// the union of their criteria; attributes constrained by only one side are
// dropped (widened to wildcard). This is the lossy merge step of interest
// regrouping; one merge walk over the sorted criteria.
func (s Subscription) HullWith(t Subscription) Subscription {
	var out []attrCriterion
	j := 0
	for i := range s.criteria {
		attr := s.criteria[i].attr
		for j < len(t.criteria) && t.criteria[j].attr < attr {
			j++
		}
		if j == len(t.criteria) {
			break
		}
		if t.criteria[j].attr != attr {
			continue
		}
		u := s.criteria[i].crit.Union(t.criteria[j].crit)
		j++
		if u.IsAny() {
			continue
		}
		out = append(out, attrCriterion{attr: attr, crit: u})
	}
	return Subscription{criteria: out}
}

// hullCostWith predicts HullWith's cost without materializing the hull:
// how many constrained attributes the hull would drop (widen to wildcard)
// and the hull's resulting Size. One merge walk, allocation-free — the
// closest-pair search of regrouping scores O(k²) candidate pairs per merge
// and only the winner's hull is ever built.
func (s Subscription) hullCostWith(t Subscription) (dropped, size int) {
	kept := 0
	j := 0
	for i := range s.criteria {
		attr := s.criteria[i].attr
		for j < len(t.criteria) && t.criteria[j].attr < attr {
			j++
		}
		if j == len(t.criteria) {
			break
		}
		if t.criteria[j].attr != attr {
			continue
		}
		k, sz := s.criteria[i].crit.unionCost(t.criteria[j].crit)
		j++
		if k {
			kept++
			size += sz
		}
	}
	return len(s.criteria) + len(t.criteria) - 2*kept, size
}

// Size is the total number of criterion disjuncts, the complexity measure
// bounded by regrouping.
func (s Subscription) Size() int {
	n := 0
	for i := range s.criteria {
		n += s.criteria[i].crit.Size()
	}
	return n
}

// String renders the subscription in the paper's Figure 2 style:
// "b = 2, c > 40, z = 20000"; the match-all subscription renders as "*".
func (s Subscription) String() string {
	if len(s.criteria) == 0 {
		return "*"
	}
	parts := make([]string, len(s.criteria))
	for i := range s.criteria {
		parts[i] = s.criteria[i].crit.Render(s.criteria[i].attr)
	}
	return strings.Join(parts, ", ")
}
