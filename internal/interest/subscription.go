package interest

import (
	"sort"
	"strings"

	"pmcast/internal/event"
)

// Matcher is anything that can decide whether an event is of interest.
// Individual subscriptions, regrouped summaries, and the simulator's
// synthetic Bernoulli interests all implement it.
type Matcher interface {
	// Matches reports whether the event is of interest ("event ⊳ process"
	// in the paper's Figure 3 notation).
	Matches(ev event.Event) bool
}

// Subscription is a conjunction of per-attribute criteria, one line of a
// depth-d view table (paper Figure 2): e.g.
//
//	b = 2, c > 40.0, z = 20000
//
// Attributes without a criterion are wildcards. The zero Subscription
// matches every event.
type Subscription struct {
	// criteria maps attribute name to its constraint. Never contains
	// wildcard entries (absence means wildcard).
	criteria map[string]Criterion
}

var _ Matcher = Subscription{}

// NewSubscription returns an empty (match-all) subscription.
func NewSubscription() Subscription {
	return Subscription{criteria: make(map[string]Criterion)}
}

// Where returns a copy of the subscription with an added criterion on the
// named attribute. Repeated constraints on the same attribute are
// intersected... conservatively: the latest criterion replaces the previous
// one if it is subsumed by it, otherwise both are kept by keeping the
// stricter; in practice callers constrain each attribute once, as in the
// paper's tables.
func (s Subscription) Where(attr string, c Criterion) Subscription {
	out := s.clone()
	if !c.IsValid() {
		c = Any()
	}
	if c.IsAny() {
		delete(out.criteria, attr)
		return out
	}
	if prev, ok := out.criteria[attr]; ok {
		// Keep the stricter of the two when one implies the other; otherwise
		// keep the latest (callers own the semantics of re-constraining).
		if prev.Subsumes(c) {
			out.criteria[attr] = c
		} else {
			out.criteria[attr] = c // latest wins
		}
	} else {
		out.criteria[attr] = c
	}
	return out
}

func (s Subscription) clone() Subscription {
	out := Subscription{criteria: make(map[string]Criterion, len(s.criteria)+1)}
	for k, v := range s.criteria {
		out.criteria[k] = v
	}
	return out
}

// Matches reports whether the event satisfies every criterion. Events
// lacking a constrained attribute do not match (events of the considered
// type carry all attributes; a missing one cannot satisfy a criterion).
func (s Subscription) Matches(ev event.Event) bool {
	for attr, c := range s.criteria {
		v, ok := ev.Lookup(attr)
		if !ok || !c.Matches(v) {
			return false
		}
	}
	return true
}

// Criterion returns the constraint on the named attribute; the wildcard if
// unconstrained.
func (s Subscription) Criterion(attr string) Criterion {
	if c, ok := s.criteria[attr]; ok {
		return c
	}
	return Any()
}

// Attrs returns the constrained attribute names in sorted order.
func (s Subscription) Attrs() []string {
	attrs := make([]string, 0, len(s.criteria))
	for a := range s.criteria {
		attrs = append(attrs, a)
	}
	sort.Strings(attrs)
	return attrs
}

// IsMatchAll reports whether the subscription has no constraints.
func (s Subscription) IsMatchAll() bool { return len(s.criteria) == 0 }

// IsEmpty reports whether some criterion is unsatisfiable, making the whole
// conjunction match nothing.
func (s Subscription) IsEmpty() bool {
	for _, c := range s.criteria {
		if c.IsEmpty() {
			return true
		}
	}
	return false
}

// Subsumes reports whether every event matched by t is matched by s (s ⊇ t).
// This holds iff every attribute constrained by s is constrained at least as
// tightly by t.
func (s Subscription) Subsumes(t Subscription) bool {
	if t.IsEmpty() {
		return true
	}
	for attr, sc := range s.criteria {
		tc, ok := t.criteria[attr]
		if !ok {
			return false // t is wildcard here, s is not
		}
		if !sc.Subsumes(tc) {
			return false
		}
	}
	return true
}

// Equal reports whether two subscriptions match exactly the same events.
func (s Subscription) Equal(t Subscription) bool {
	return s.Subsumes(t) && t.Subsumes(s)
}

// HullWith merges two subscriptions into a single conjunction that
// over-approximates their disjunction: attributes constrained by both keep
// the union of their criteria; attributes constrained by only one side are
// dropped (widened to wildcard). This is the lossy merge step of interest
// regrouping.
func (s Subscription) HullWith(t Subscription) Subscription {
	out := NewSubscription()
	for attr, sc := range s.criteria {
		tc, ok := t.criteria[attr]
		if !ok {
			continue
		}
		u := sc.Union(tc)
		if u.IsAny() {
			continue
		}
		out.criteria[attr] = u
	}
	return out
}

// Size is the total number of criterion disjuncts, the complexity measure
// bounded by regrouping.
func (s Subscription) Size() int {
	n := 0
	for _, c := range s.criteria {
		n += c.Size()
	}
	return n
}

// String renders the subscription in the paper's Figure 2 style:
// "b = 2, c > 40, z = 20000"; the match-all subscription renders as "*".
func (s Subscription) String() string {
	if len(s.criteria) == 0 {
		return "*"
	}
	attrs := s.Attrs()
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = s.criteria[a].Render(a)
	}
	return strings.Join(parts, ", ")
}
