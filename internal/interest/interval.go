// Package interest implements content-based subscriptions for pmcast:
// per-attribute predicates over typed event attributes, event matching, and
// the interest "regrouping" (compaction into over-approximated summaries)
// that view tables apply when ascending the tree (paper Section 2.3).
package interest

import (
	"math"
	"sort"
	"strconv"
	"strings"
)

// Interval is a set of real numbers between two bounds, each of which may be
// open, closed, or infinite. The zero Interval is empty. Intervals represent
// numeric criteria such as "c > 155.6" or "10.0 < c < 220.0".
type Interval struct {
	Lo, Hi         float64
	LoOpen, HiOpen bool
}

// FullInterval returns the interval covering all reals.
func FullInterval() Interval {
	return Interval{Lo: math.Inf(-1), Hi: math.Inf(1), LoOpen: true, HiOpen: true}
}

// PointInterval returns the degenerate interval {x}.
func PointInterval(x float64) Interval { return Interval{Lo: x, Hi: x} }

// IsEmpty reports whether the interval contains no points.
func (iv Interval) IsEmpty() bool {
	if iv.Lo > iv.Hi {
		return true
	}
	if iv.Lo == iv.Hi {
		// Zero value (0,0 with both bounds closed) is a point; treat the
		// all-zero struct as the point {0}, and open bounds as empty.
		return iv.LoOpen || iv.HiOpen
	}
	return false
}

// Contains reports whether x lies in the interval.
func (iv Interval) Contains(x float64) bool {
	if x < iv.Lo || (x == iv.Lo && iv.LoOpen) {
		return false
	}
	if x > iv.Hi || (x == iv.Hi && iv.HiOpen) {
		return false
	}
	return true
}

// SubsetOf reports whether iv is entirely contained in jv.
func (iv Interval) SubsetOf(jv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	if jv.IsEmpty() {
		return false
	}
	loOK := iv.Lo > jv.Lo || (iv.Lo == jv.Lo && (jv.LoOpen == false || iv.LoOpen))
	hiOK := iv.Hi < jv.Hi || (iv.Hi == jv.Hi && (jv.HiOpen == false || iv.HiOpen))
	return loOK && hiOK
}

// overlapsOrTouches reports whether the union of the two intervals is a
// single interval (they intersect or are adjacent with at least one closed
// endpoint at the junction).
func (iv Interval) overlapsOrTouches(jv Interval) bool {
	if iv.IsEmpty() || jv.IsEmpty() {
		return false
	}
	if iv.Lo > jv.Hi || (iv.Lo == jv.Hi && iv.LoOpen && jv.HiOpen) {
		return false
	}
	if jv.Lo > iv.Hi || (jv.Lo == iv.Hi && jv.LoOpen && iv.HiOpen) {
		return false
	}
	return true
}

// Hull returns the smallest interval containing both intervals.
func (iv Interval) Hull(jv Interval) Interval {
	if iv.IsEmpty() {
		return jv
	}
	if jv.IsEmpty() {
		return iv
	}
	out := iv
	if jv.Lo < out.Lo || (jv.Lo == out.Lo && !jv.LoOpen) {
		out.Lo, out.LoOpen = jv.Lo, jv.LoOpen
	}
	if jv.Hi > out.Hi || (jv.Hi == out.Hi && !jv.HiOpen) {
		out.Hi, out.HiOpen = jv.Hi, jv.HiOpen
	}
	return out
}

// Equal reports whether two intervals denote the same point set.
func (iv Interval) Equal(jv Interval) bool {
	if iv.IsEmpty() && jv.IsEmpty() {
		return true
	}
	return iv.Lo == jv.Lo && iv.Hi == jv.Hi && iv.LoOpen == jv.LoOpen && iv.HiOpen == jv.HiOpen
}

// String renders the interval against an attribute placeholder, matching the
// paper's rendering style: "x > 3", "10 < x < 220", "x = 42".
func (iv Interval) String() string { return iv.Render("x") }

// Render renders the interval as a predicate over the named attribute.
func (iv Interval) Render(attr string) string {
	if iv.IsEmpty() {
		return attr + " ∈ ∅"
	}
	loInf, hiInf := math.IsInf(iv.Lo, -1), math.IsInf(iv.Hi, 1)
	switch {
	case loInf && hiInf:
		return attr + " = *"
	case iv.Lo == iv.Hi:
		return attr + " = " + fmtFloat(iv.Lo)
	case loInf && iv.HiOpen:
		return attr + " < " + fmtFloat(iv.Hi)
	case loInf:
		return attr + " ≤ " + fmtFloat(iv.Hi)
	case hiInf && iv.LoOpen:
		return attr + " > " + fmtFloat(iv.Lo)
	case hiInf:
		return attr + " ≥ " + fmtFloat(iv.Lo)
	default:
		var sb strings.Builder
		sb.WriteString(fmtFloat(iv.Lo))
		if iv.LoOpen {
			sb.WriteString(" < ")
		} else {
			sb.WriteString(" ≤ ")
		}
		sb.WriteString(attr)
		if iv.HiOpen {
			sb.WriteString(" < ")
		} else {
			sb.WriteString(" ≤ ")
		}
		sb.WriteString(fmtFloat(iv.Hi))
		return sb.String()
	}
}

func fmtFloat(x float64) string {
	return strconv.FormatFloat(x, 'g', -1, 64)
}

// IntervalSet is a union of disjoint, sorted intervals. Construct with
// NormalizeIntervals or through set operations; a nil IntervalSet is empty.
type IntervalSet []Interval

// NormalizeIntervals sorts the intervals and merges every overlapping or
// adjacent pair, returning a canonical disjoint representation.
func NormalizeIntervals(ivs []Interval) IntervalSet {
	live := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.IsEmpty() {
			live = append(live, iv)
		}
	}
	if len(live) == 0 {
		return nil
	}
	sort.Slice(live, func(i, j int) bool {
		if live[i].Lo != live[j].Lo {
			return live[i].Lo < live[j].Lo
		}
		// Closed lower bound first.
		return !live[i].LoOpen && live[j].LoOpen
	})
	out := IntervalSet{live[0]}
	for _, iv := range live[1:] {
		last := &out[len(out)-1]
		if last.overlapsOrTouches(iv) {
			*last = last.Hull(iv)
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// Contains reports whether x lies in any member interval.
func (s IntervalSet) Contains(x float64) bool {
	// Binary search over disjoint sorted intervals.
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		iv := s[mid]
		switch {
		case iv.Contains(x):
			return true
		case x < iv.Lo || (x == iv.Lo && iv.LoOpen):
			hi = mid
		default:
			lo = mid + 1
		}
	}
	return false
}

// IsEmpty reports whether the set contains no points.
func (s IntervalSet) IsEmpty() bool { return len(s) == 0 }

// Union returns the normalized union of the two sets. Both inputs are
// already canonical (sorted, disjoint, non-empty members), so the union is
// one linear merge — no re-sort — producing exactly what NormalizeIntervals
// over the concatenation would. Regrouping unions criteria constantly; this
// is one of its hot paths.
func (s IntervalSet) Union(t IntervalSet) IntervalSet {
	if len(s) == 0 {
		return t
	}
	if len(t) == 0 {
		return s
	}
	out := make(IntervalSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) || j < len(t) {
		var iv Interval
		// Pick the next interval in canonical order: smaller Lo first,
		// closed lower bound first on ties (NormalizeIntervals' comparator).
		switch {
		case i == len(s):
			iv, j = t[j], j+1
		case j == len(t):
			iv, i = s[i], i+1
		case t[j].Lo < s[i].Lo || (t[j].Lo == s[i].Lo && !t[j].LoOpen && s[i].LoOpen):
			iv, j = t[j], j+1
		default:
			iv, i = s[i], i+1
		}
		if n := len(out); n > 0 && out[n-1].overlapsOrTouches(iv) {
			out[n-1] = out[n-1].Hull(iv)
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// unionCount returns len(s.Union(t)) without materializing the union: the
// same linear merge, tracking only the running tail interval. Regrouping's
// closest-pair search scores every candidate pair by union size; this keeps
// the scoring allocation-free.
func (s IntervalSet) unionCount(t IntervalSet) int {
	if len(s) == 0 {
		return len(t)
	}
	if len(t) == 0 {
		return len(s)
	}
	count := 0
	var last Interval
	i, j := 0, 0
	for i < len(s) || j < len(t) {
		var iv Interval
		switch {
		case i == len(s):
			iv, j = t[j], j+1
		case j == len(t):
			iv, i = s[i], i+1
		case t[j].Lo < s[i].Lo || (t[j].Lo == s[i].Lo && !t[j].LoOpen && s[i].LoOpen):
			iv, j = t[j], j+1
		default:
			iv, i = s[i], i+1
		}
		if count > 0 && last.overlapsOrTouches(iv) {
			last = last.Hull(iv)
		} else {
			count++
			last = iv
		}
	}
	return count
}

// SubsetOf reports whether every point of s lies in t.
func (s IntervalSet) SubsetOf(t IntervalSet) bool {
	for _, iv := range s {
		ok := false
		for _, jv := range t {
			if iv.SubsetOf(jv) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Hull returns the single-interval hull of the whole set.
func (s IntervalSet) Hull() Interval {
	if len(s) == 0 {
		return Interval{Lo: 1, Hi: 0} // canonical empty
	}
	h := s[0]
	for _, iv := range s[1:] {
		h = h.Hull(iv)
	}
	return h
}

// Equal reports whether two normalized sets are identical.
func (s IntervalSet) Equal(t IntervalSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if !s[i].Equal(t[i]) {
			return false
		}
	}
	return true
}

// Render renders the set as a predicate over the named attribute, joining
// disjuncts with " ∨ ".
func (s IntervalSet) Render(attr string) string {
	if len(s) == 0 {
		return attr + " ∈ ∅"
	}
	parts := make([]string, len(s))
	for i, iv := range s {
		parts[i] = iv.Render(attr)
	}
	return strings.Join(parts, " ∨ ")
}
