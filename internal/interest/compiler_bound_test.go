package interest

import (
	"fmt"
	"testing"
)

// TestCompilerBounded pins the interning compiler's growth contract: live
// entries never exceed the bound, the generational sweep evicts under a
// stream of fresh languages, and interning still holds for languages in
// the live window — the same subscription compiled twice in a row returns
// the identical pointer (pointer equality IS language equality, which the
// tree's matcher dedup depends on).
func TestCompilerBounded(t *testing.T) {
	const bound = 4
	c := NewCompilerBounded(bound)
	var last *CompiledMatcher
	for i := 0; i < 100; i++ {
		sub := NewSubscription().Where("topic", OneOf(fmt.Sprintf("t%03d", i)))
		m := c.Compile(sub)
		if again := c.Compile(sub); again != m {
			t.Fatalf("language %d: immediate re-compile returned a fresh pointer — interning broken", i)
		}
		if m == last {
			t.Fatalf("language %d interned to its predecessor's matcher", i)
		}
		last = m
	}
	st := c.Stats()
	if st.Entries > bound {
		t.Errorf("compiler holds %d entries, bound %d", st.Entries, bound)
	}
	if st.Evictions == 0 {
		t.Error("100 fresh languages through a 4-entry compiler evicted nothing")
	}
	if st.ID == 0 {
		t.Error("compiler has no identity — fleet stats cannot dedupe it")
	}
	if other := NewCompilerBounded(bound); other.Stats().ID == st.ID {
		t.Error("two compilers share an identity")
	}
}

// TestCompilerDefaultBound: the zero value of the bound is the default,
// not unbounded.
func TestCompilerDefaultBound(t *testing.T) {
	c := NewCompilerBounded(0)
	for i := 0; i < 200; i++ {
		c.Compile(NewSubscription().Where("k", EqInt(int64(i))))
	}
	st := c.Stats()
	if st.Entries != 200 {
		t.Errorf("200 distinct languages, %d live entries — default bound %d should hold them all",
			st.Entries, DefaultCompilerBound)
	}
	if st.Evictions != 0 {
		t.Errorf("default-bound compiler evicted %d entries under 200 languages", st.Evictions)
	}
}
