package interest

import (
	"math"
	"math/rand"
	"testing"
)

func iv(lo, hi float64, loOpen, hiOpen bool) Interval {
	return Interval{Lo: lo, Hi: hi, LoOpen: loOpen, HiOpen: hiOpen}
}

func TestIntervalContains(t *testing.T) {
	tests := []struct {
		name string
		iv   Interval
		x    float64
		want bool
	}{
		{"closed inside", iv(1, 5, false, false), 3, true},
		{"closed at lo", iv(1, 5, false, false), 1, true},
		{"closed at hi", iv(1, 5, false, false), 5, true},
		{"open at lo", iv(1, 5, true, false), 1, false},
		{"open at hi", iv(1, 5, false, true), 5, false},
		{"below", iv(1, 5, false, false), 0.5, false},
		{"above", iv(1, 5, false, false), 5.5, false},
		{"point", PointInterval(2), 2, true},
		{"point miss", PointInterval(2), 2.0001, false},
		{"full", FullInterval(), -1e308, true},
		{"unbounded above", iv(0, math.Inf(1), true, true), 1e300, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.iv.Contains(tt.x); got != tt.want {
				t.Errorf("Contains(%g) = %v, want %v", tt.x, got, tt.want)
			}
		})
	}
}

func TestIntervalEmpty(t *testing.T) {
	if !iv(5, 1, false, false).IsEmpty() {
		t.Error("inverted interval not empty")
	}
	if !iv(2, 2, true, false).IsEmpty() {
		t.Error("half-open point not empty")
	}
	if PointInterval(2).IsEmpty() {
		t.Error("point empty")
	}
	if FullInterval().IsEmpty() {
		t.Error("full empty")
	}
}

func TestIntervalSubset(t *testing.T) {
	tests := []struct {
		name string
		a, b Interval
		want bool
	}{
		{"strict inside", iv(2, 3, false, false), iv(1, 5, false, false), true},
		{"equal", iv(1, 5, false, false), iv(1, 5, false, false), true},
		{"closed in open at boundary", iv(1, 5, false, false), iv(1, 5, true, true), false},
		{"open in closed at boundary", iv(1, 5, true, true), iv(1, 5, false, false), true},
		{"overlap not subset", iv(1, 5, false, false), iv(2, 6, false, false), false},
		{"empty in anything", iv(5, 1, false, false), iv(0, 0, true, true), true},
		{"nonempty in empty", PointInterval(1), iv(5, 1, false, false), false},
		{"in full", iv(-10, 99, true, false), FullInterval(), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.SubsetOf(tt.b); got != tt.want {
				t.Errorf("SubsetOf = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntervalHull(t *testing.T) {
	h := iv(1, 2, false, true).Hull(iv(4, 6, true, false))
	want := iv(1, 6, false, false)
	if !h.Equal(want) {
		t.Errorf("hull = %+v, want %+v", h, want)
	}
	// Hull with empty is identity.
	if !PointInterval(3).Hull(iv(5, 1, false, false)).Equal(PointInterval(3)) {
		t.Error("hull with empty should be identity")
	}
}

func TestNormalizeIntervals(t *testing.T) {
	tests := []struct {
		name string
		in   []Interval
		want IntervalSet
	}{
		{
			name: "disjoint stay separate",
			in:   []Interval{iv(5, 6, false, false), iv(1, 2, false, false)},
			want: IntervalSet{iv(1, 2, false, false), iv(5, 6, false, false)},
		},
		{
			name: "overlapping merge",
			in:   []Interval{iv(1, 3, false, false), iv(2, 5, false, false)},
			want: IntervalSet{iv(1, 5, false, false)},
		},
		{
			name: "touching closed merge",
			in:   []Interval{iv(1, 2, false, false), iv(2, 3, false, false)},
			want: IntervalSet{iv(1, 3, false, false)},
		},
		{
			name: "touching open-open stay separate",
			in:   []Interval{iv(1, 2, false, true), iv(2, 3, true, false)},
			want: IntervalSet{iv(1, 2, false, true), iv(2, 3, true, false)},
		},
		{
			name: "touching open-closed merge",
			in:   []Interval{iv(1, 2, false, true), iv(2, 3, false, false)},
			want: IntervalSet{iv(1, 3, false, false)},
		},
		{
			name: "empties dropped",
			in:   []Interval{iv(5, 1, false, false), PointInterval(7)},
			want: IntervalSet{PointInterval(7)},
		},
		{
			name: "nested absorbed",
			in:   []Interval{iv(1, 10, false, false), iv(3, 4, true, true)},
			want: IntervalSet{iv(1, 10, false, false)},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NormalizeIntervals(tt.in)
			if !got.Equal(tt.want) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestIntervalSetContainsMatchesLinear(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		raw := make([]Interval, 1+r.Intn(6))
		for i := range raw {
			lo := float64(r.Intn(100))
			hi := lo + float64(r.Intn(20))
			raw[i] = iv(lo, hi, r.Intn(2) == 0, r.Intn(2) == 0)
		}
		set := NormalizeIntervals(raw)
		for probe := 0; probe < 50; probe++ {
			x := float64(r.Intn(130)) - 5 + r.Float64()
			want := false
			for _, ivl := range raw {
				if ivl.Contains(x) {
					want = true
					break
				}
			}
			if got := set.Contains(x); got != want {
				t.Fatalf("trial %d: Contains(%g) = %v, want %v (set %v raw %v)", trial, x, got, want, set, raw)
			}
		}
	}
}

func TestIntervalSetUnionSubset(t *testing.T) {
	a := NormalizeIntervals([]Interval{iv(1, 2, false, false), iv(5, 6, false, false)})
	b := NormalizeIntervals([]Interval{iv(1.5, 5.5, false, false)})
	u := a.Union(b)
	if !a.SubsetOf(u) || !b.SubsetOf(u) {
		t.Error("operands not subsets of union")
	}
	if u.SubsetOf(a) {
		t.Error("union should exceed a")
	}
	if !u.Equal(IntervalSet{iv(1, 6, false, false)}) {
		t.Errorf("union = %v", u)
	}
	var empty IntervalSet
	if !empty.SubsetOf(a) || !empty.IsEmpty() {
		t.Error("empty set misbehaves")
	}
	if !empty.Union(a).Equal(a) {
		t.Error("union with empty not identity")
	}
}

func TestIntervalSetHull(t *testing.T) {
	s := NormalizeIntervals([]Interval{iv(3, 4, true, false), iv(8, 9, false, true)})
	h := s.Hull()
	if !h.Equal(iv(3, 9, true, true)) {
		t.Errorf("hull = %+v", h)
	}
	var empty IntervalSet
	if !empty.Hull().IsEmpty() {
		t.Error("hull of empty should be empty")
	}
}

func TestIntervalRender(t *testing.T) {
	tests := []struct {
		iv   Interval
		want string
	}{
		{iv(3, math.Inf(1), true, true), "x > 3"},
		{iv(3, math.Inf(1), false, true), "x ≥ 3"},
		{iv(math.Inf(-1), 3, true, true), "x < 3"},
		{iv(math.Inf(-1), 3, true, false), "x ≤ 3"},
		{PointInterval(42), "x = 42"},
		{iv(10, 220, true, true), "10 < x < 220"},
		{iv(10, 220, false, false), "10 ≤ x ≤ 220"},
		{FullInterval(), "x = *"},
		{iv(5, 1, false, false), "x ∈ ∅"},
	}
	for _, tt := range tests {
		if got := tt.iv.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}
