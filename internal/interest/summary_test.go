package interest

import (
	"fmt"
	"math/rand"
	"testing"

	"pmcast/internal/event"
)

func TestSummaryNeverFalseNegative(t *testing.T) {
	// The crucial soundness property for pmcast reliability: a summary may
	// over-approximate but must match every event any contributing
	// subscription matches, even after heavy compaction.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		nSubs := 2 + r.Intn(30)
		subs := make([]Subscription, nSubs)
		for i := range subs {
			s := NewSubscription()
			switch r.Intn(3) {
			case 0:
				lo := float64(r.Intn(50))
				s = s.Where("b", Between(lo, lo+float64(1+r.Intn(20))))
			case 1:
				s = s.Where("b", Gt(float64(r.Intn(50)))).Where("c", Lt(float64(r.Intn(50))))
			default:
				names := []string{"Ann", "Bob", "Tom", "Eve", "Max"}
				s = s.Where("e", OneOf(names[r.Intn(5)])).Where("b", EqInt(int64(r.Intn(50))))
			}
			subs[i] = s
		}
		sum := NewSummaryWithBound(3) // aggressive compaction
		for _, s := range subs {
			sum.Add(s)
		}
		for probe := 0; probe < 200; probe++ {
			names := []string{"Ann", "Bob", "Tom", "Eve", "Max", "Zoe"}
			ev := event.NewBuilder().
				Float("b", float64(r.Intn(80))-5).
				Float("c", float64(r.Intn(80))-5).
				Str("e", names[r.Intn(6)]).
				Build(event.ID{})
			var anyMatch bool
			for _, s := range subs {
				if s.Matches(ev) {
					anyMatch = true
					break
				}
			}
			if anyMatch && !sum.Matches(ev) {
				t.Fatalf("trial %d: summary %v misses event %v", trial, sum, ev)
			}
		}
	}
}

func TestSummaryBoundHolds(t *testing.T) {
	sum := NewSummaryWithBound(4)
	for i := 0; i < 100; i++ {
		sum.Add(NewSubscription().
			Where("b", EqInt(int64(i))).
			Where("c", Gt(float64(i))))
		if sum.Len() > 4 {
			t.Fatalf("bound exceeded after %d adds: %d", i+1, sum.Len())
		}
	}
	if sum.IsEmpty() {
		t.Error("summary emptied by compaction")
	}
}

func TestSummarySubsumptionAbsorbs(t *testing.T) {
	sum := NewSummary()
	sum.Add(NewSubscription().Where("b", Gt(0)))
	sum.Add(NewSubscription().Where("b", Gt(5))) // subsumed, should be absorbed
	if sum.Len() != 1 {
		t.Errorf("len = %d, want 1 (absorption)", sum.Len())
	}
	// Reverse order: wider one absorbs the narrower.
	sum2 := NewSummary()
	sum2.Add(NewSubscription().Where("b", Gt(5)))
	sum2.Add(NewSubscription().Where("b", Gt(0)))
	if sum2.Len() != 1 {
		t.Errorf("len = %d, want 1 (reverse absorption)", sum2.Len())
	}
	if !sum2.Matches(event.NewBuilder().Float("b", 1).Build(event.ID{})) {
		t.Error("absorbed summary lost the wider subscription")
	}
}

func TestSummaryAbsorptionPreservesUnrelated(t *testing.T) {
	// Regression: adding a subscription that absorbs an *earlier* entry and
	// is itself absorbed by a *later* entry must not corrupt the slice.
	a := NewSubscription().Where("b", Between(10, 20)) // will be absorbed by s
	bSub := NewSubscription().Where("c", Gt(100))      // unrelated
	cSub := NewSubscription().Where("b", Between(0, 50))

	sum := NewSummary()
	sum.Add(a)
	sum.Add(bSub)
	sum.Add(cSub) // absorbs a, keeps bSub
	if sum.Len() != 2 {
		t.Fatalf("len = %d, want 2: %v", sum.Len(), sum)
	}
	if !sum.Matches(event.NewBuilder().Float("c", 101).Float("b", -10).Build(event.ID{})) {
		t.Error("unrelated subscription lost")
	}
	if !sum.Matches(event.NewBuilder().Float("b", 30).Float("c", 0).Build(event.ID{})) {
		t.Error("absorbing subscription lost")
	}
}

func TestSummaryMatchAll(t *testing.T) {
	sum := NewSummary()
	sum.Add(NewSubscription()) // wildcard subscriber
	if !sum.Matches(event.NewBuilder().Int("q", 1).Build(event.ID{})) {
		t.Error("match-all summary should match")
	}
	if sum.Len() != 0 {
		t.Errorf("match-all should clear disjuncts, len = %d", sum.Len())
	}
	sum.Add(NewSubscription().Where("b", Gt(0))) // no-op afterwards
	if sum.Len() != 0 {
		t.Error("adding to match-all should be a no-op")
	}
	if sum.String() != "*" {
		t.Errorf("String = %q", sum.String())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var nilSum *Summary
	if nilSum.Matches(event.NewBuilder().Int("b", 1).Build(event.ID{})) {
		t.Error("nil summary matched")
	}
	if !nilSum.IsEmpty() {
		t.Error("nil summary not empty")
	}
	sum := NewSummary()
	if !sum.IsEmpty() {
		t.Error("fresh summary not empty")
	}
	if sum.Matches(event.NewBuilder().Int("b", 1).Build(event.ID{})) {
		t.Error("empty summary matched")
	}
	sum.Add(NewSubscription().Where("e", OneOf())) // unsatisfiable
	if !sum.IsEmpty() {
		t.Error("unsatisfiable subscription should not populate summary")
	}
	if sum.String() != "∅" {
		t.Errorf("String = %q", sum.String())
	}
}

func TestSummaryMerge(t *testing.T) {
	child1 := Summarize(NewSubscription().Where("b", EqInt(3)).Where("z", EqInt(42000)))
	child2 := Summarize(NewSubscription().Where("b", Gt(0)).Where("c", Gt(20.0)))
	parent := NewSummary()
	parent.Merge(child1)
	parent.Merge(child2)
	parent.Merge(nil) // no-op

	evA := event.NewBuilder().Int("b", 3).Int("z", 42000).Build(event.ID{})
	evB := event.NewBuilder().Int("b", 1).Float("c", 25).Build(event.ID{})
	evC := event.NewBuilder().Int("b", -1).Float("c", 25).Int("z", 0).Build(event.ID{})
	if !parent.Matches(evA) || !parent.Matches(evB) {
		t.Error("merged summary lost child interests")
	}
	if parent.Matches(evC) {
		t.Error("merged summary over-matched (no child matches evC)")
	}

	all := NewSummary()
	all.Add(NewSubscription())
	parent.Merge(all)
	if !parent.Matches(evC) {
		t.Error("merging match-all should widen")
	}
}

func TestSummaryCovers(t *testing.T) {
	sum := Summarize(
		NewSubscription().Where("b", Gt(0)),
		NewSubscription().Where("e", OneOf("Bob", "Tom")),
	)
	if !sum.Covers(NewSubscription().Where("b", Gt(5)).Where("c", Lt(1))) {
		t.Error("should cover tighter numeric subscription")
	}
	if sum.Covers(NewSubscription().Where("q", EqInt(1))) {
		t.Error("should not cover unrelated subscription")
	}
	var nilSum *Summary
	if nilSum.Covers(NewSubscription()) {
		t.Error("nil summary covers nothing")
	}
}

func TestSummaryClone(t *testing.T) {
	sum := Summarize(NewSubscription().Where("b", Gt(0)))
	cp := sum.Clone()
	cp.Add(NewSubscription().Where("e", OneOf("X")))
	if sum.Len() != 1 {
		t.Error("clone write leaked into original")
	}
	if cp.Len() != 2 {
		t.Errorf("clone len = %d", cp.Len())
	}
	var nilSum *Summary
	if nilSum.Clone() != nil {
		t.Error("clone of nil should be nil")
	}
}

func TestSummaryDisjunctsCopy(t *testing.T) {
	sum := Summarize(NewSubscription().Where("b", Gt(0)))
	d := sum.Disjuncts()
	if len(d) != 1 {
		t.Fatalf("disjuncts = %d", len(d))
	}
	_ = d[0].Where("c", Gt(9)) // must not affect the summary
	if sum.String() != "b > 0" {
		t.Errorf("summary mutated via disjuncts: %q", sum.String())
	}
}

func TestSummaryStress(t *testing.T) {
	// Many heterogeneous subscriptions with a tight bound: the summary must
	// stay within bound and keep soundness (spot-checked by construction).
	sum := NewSummaryWithBound(5)
	for i := 0; i < 500; i++ {
		sub := NewSubscription().
			Where("b", EqInt(int64(i%37))).
			Where("e", OneOf(fmt.Sprintf("user%d", i%11)))
		sum.Add(sub)
		if sum.Len() > 5 {
			t.Fatalf("bound violated at %d", i)
		}
	}
	// Every contributing point must still match.
	for i := 0; i < 500; i += 61 {
		ev := event.NewBuilder().
			Int("b", int64(i%37)).
			Str("e", fmt.Sprintf("user%d", i%11)).
			Build(event.ID{})
		if !sum.Matches(ev) {
			t.Fatalf("lost contribution %d: summary %v", i, sum)
		}
	}
}
