package interest

import (
	"fmt"

	"pmcast/internal/binenc"
)

// Interval wire flags.
const (
	flagLoOpen byte = 1 << 0
	flagHiOpen byte = 1 << 1
)

// AppendInterval appends an interval: Lo, Hi doubles plus a flags byte.
func AppendInterval(b []byte, iv Interval) []byte {
	b = binenc.AppendFloat(b, iv.Lo)
	b = binenc.AppendFloat(b, iv.Hi)
	var flags byte
	if iv.LoOpen {
		flags |= flagLoOpen
	}
	if iv.HiOpen {
		flags |= flagHiOpen
	}
	return append(b, flags)
}

// ReadInterval reads an interval written by AppendInterval.
func ReadInterval(r *binenc.Reader) Interval {
	lo := r.Float()
	hi := r.Float()
	flags := r.Byte()
	return Interval{Lo: lo, Hi: hi, LoOpen: flags&flagLoOpen != 0, HiOpen: flags&flagHiOpen != 0}
}

// AppendCriterion appends a criterion: kind byte plus payload.
func AppendCriterion(b []byte, c Criterion) []byte {
	b = append(b, byte(c.kind))
	switch c.kind {
	case kindNumeric:
		b = binenc.AppendUvarint(b, uint64(len(c.nums)))
		for _, iv := range c.nums {
			b = AppendInterval(b, iv)
		}
	case kindString:
		b = binenc.AppendUvarint(b, uint64(len(c.strs)))
		for _, s := range c.strs {
			b = binenc.AppendString(b, s)
		}
	case kindBool:
		b = binenc.AppendBool(b, c.b)
	}
	return b
}

// ReadCriterion reads a criterion written by AppendCriterion.
func ReadCriterion(r *binenc.Reader) Criterion {
	kind := criterionKind(r.Byte())
	switch kind {
	case kindAny:
		return Any()
	case kindNumeric:
		n := r.Count(17)
		ivs := make([]Interval, n)
		for i := range ivs {
			ivs[i] = ReadInterval(r)
		}
		if r.Err() != nil {
			return Criterion{}
		}
		return Criterion{kind: kindNumeric, nums: NormalizeIntervals(ivs)}
	case kindString:
		n := r.Count(1)
		ss := make([]string, n)
		for i := range ss {
			ss[i] = r.String()
		}
		if r.Err() != nil {
			return Criterion{}
		}
		return OneOf(ss...)
	case kindBool:
		return IsBool(r.Bool())
	default:
		// An unknown kind is a decode error, not a zero value: the zero
		// Criterion is invalid and Subscription construction rejects it, so
		// the reader must be poisoned before it gets there.
		r.Fail(fmt.Errorf("interest: unknown criterion kind %d", kind))
		return Criterion{}
	}
}

// AppendSubscription appends a subscription: attribute count plus sorted
// (name, criterion) pairs.
func AppendSubscription(b []byte, s Subscription) []byte {
	b = binenc.AppendUvarint(b, uint64(len(s.criteria)))
	for i := range s.criteria {
		b = binenc.AppendString(b, s.criteria[i].attr)
		b = AppendCriterion(b, s.criteria[i].crit)
	}
	return b
}

// ReadSubscription reads a subscription written by AppendSubscription.
func ReadSubscription(r *binenc.Reader) Subscription {
	n := r.Count(2)
	out := NewSubscription()
	for i := 0; i < n; i++ {
		name := r.String()
		c := ReadCriterion(r)
		if r.Err() != nil {
			return NewSubscription()
		}
		out = out.Where(name, c)
	}
	return out
}

// AppendSummary appends a summary: matchAll flag, bound, and disjuncts.
func AppendSummary(b []byte, s *Summary) []byte {
	if s == nil {
		s = NewSummary()
	}
	b = binenc.AppendBool(b, s.matchAll)
	b = binenc.AppendUvarint(b, uint64(s.maxSubs))
	b = binenc.AppendUvarint(b, uint64(len(s.subs)))
	for _, sub := range s.subs {
		b = AppendSubscription(b, sub)
	}
	return b
}

// ReadSummary reads a summary written by AppendSummary.
func ReadSummary(r *binenc.Reader) *Summary {
	matchAll := r.Bool()
	bound := int(r.Uvarint())
	n := r.Count(1)
	out := NewSummaryWithBound(bound)
	out.matchAll = matchAll
	for i := 0; i < n; i++ {
		sub := ReadSubscription(r)
		if r.Err() != nil {
			return NewSummary()
		}
		out.subs = append(out.subs, sub)
	}
	return out
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s Subscription) MarshalBinary() ([]byte, error) {
	return AppendSubscription(nil, s), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Subscription) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	got := ReadSubscription(r)
	if err := r.Err(); err != nil {
		return fmt.Errorf("interest: decoding subscription: %w", err)
	}
	*s = got
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (s *Summary) MarshalBinary() ([]byte, error) {
	return AppendSummary(nil, s), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (s *Summary) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	got := ReadSummary(r)
	if err := r.Err(); err != nil {
		return fmt.Errorf("interest: decoding summary: %w", err)
	}
	*s = *got
	return nil
}
