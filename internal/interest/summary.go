package interest

import (
	"strings"

	"pmcast/internal/event"
)

// DefaultMaxDisjuncts bounds the number of conjunctions a Summary keeps
// before regrouping merges the closest pair. The paper requires regrouping
// to reduce "the complexity of the interests both in terms of memory space
// and in terms of evaluation time" (Section 2.3); the bound is the knob.
const DefaultMaxDisjuncts = 8

// Summary is the regrouped interest of a set of processes: a bounded
// disjunction of subscriptions that over-approximates the union of the
// individual interests. A delegate carries the Summary of its whole subtree
// in the parent view line, so matching a Summary answers "is any process
// down there interested?" with possible false positives but never false
// negatives.
//
// The zero Summary matches nothing (no process below). Summaries are
// mutable accumulators; Clone before sharing.
type Summary struct {
	subs     []Subscription
	maxSubs  int
	matchAll bool
}

var _ Matcher = (*Summary)(nil)

// NewSummary returns an empty summary with the default disjunct bound.
func NewSummary() *Summary { return NewSummaryWithBound(DefaultMaxDisjuncts) }

// NewSummaryWithBound returns an empty summary keeping at most maxDisjuncts
// conjunctions; values < 1 fall back to the default.
func NewSummaryWithBound(maxDisjuncts int) *Summary {
	if maxDisjuncts < 1 {
		maxDisjuncts = DefaultMaxDisjuncts
	}
	return &Summary{maxSubs: maxDisjuncts}
}

// Add incorporates one subscription, maintaining the size bound through
// subsumption elimination and closest-pair merging.
func (s *Summary) Add(sub Subscription) {
	if s.matchAll || sub.IsEmpty() {
		return
	}
	if sub.IsMatchAll() {
		s.matchAll = true
		s.subs = nil
		return
	}
	if s.maxSubs == 0 {
		s.maxSubs = DefaultMaxDisjuncts
	}
	// Absorption: drop the new subscription if an existing one covers it;
	// drop existing ones covered by the new one. Two passes so the early
	// return cannot leave the slice partially filtered.
	for _, old := range s.subs {
		if old.Subsumes(sub) {
			return
		}
	}
	keep := s.subs[:0]
	for _, old := range s.subs {
		if !sub.Subsumes(old) {
			keep = append(keep, old)
		}
	}
	s.subs = append(keep, sub)
	s.compact()
}

// Merge incorporates every disjunct of another summary (hierarchical
// regrouping: a parent line summarizes its child lines).
func (s *Summary) Merge(t *Summary) {
	if t == nil {
		return
	}
	if t.matchAll {
		s.matchAll = true
		s.subs = nil
		return
	}
	for _, sub := range t.subs {
		s.Add(sub)
	}
}

// compact merges closest pairs until the bound holds.
func (s *Summary) compact() {
	for len(s.subs) > s.maxSubs {
		i, j := s.closestPair()
		merged := s.subs[i].HullWith(s.subs[j])
		// Remove j then i (j > i), append merged.
		s.subs = append(s.subs[:j], s.subs[j+1:]...)
		s.subs = append(s.subs[:i], s.subs[i+1:]...)
		if merged.IsMatchAll() {
			s.matchAll = true
			s.subs = nil
			return
		}
		// Re-add with absorption (merged may now cover others).
		keep := s.subs[:0]
		for _, old := range s.subs {
			if !merged.Subsumes(old) {
				keep = append(keep, old)
			}
		}
		s.subs = append(keep, merged)
	}
}

// closestPair picks the pair whose hull loses the least precision, preferring
// pairs constraining the same attribute sets. Cost = number of attributes
// dropped by the hull (widened to wildcard) ×1000 + resulting disjunct size,
// a cheap heuristic that keeps structurally similar interests together.
// Scoring is allocation-free (hullCostWith); only the winning pair's hull
// is materialized, by the caller.
func (s *Summary) closestPair() (int, int) {
	bestI, bestJ, bestCost := 0, 1, int(^uint(0)>>1)
	for i := 0; i < len(s.subs); i++ {
		for j := i + 1; j < len(s.subs); j++ {
			dropped, size := s.subs[i].hullCostWith(s.subs[j])
			cost := dropped*1000 + size
			if cost < bestCost {
				bestI, bestJ, bestCost = i, j, cost
			}
		}
	}
	return bestI, bestJ
}

// Matches reports whether any disjunct matches the event. An empty summary
// matches nothing.
func (s *Summary) Matches(ev event.Event) bool {
	return s.MatchesCounted(ev, nil)
}

// MatchesCounted is Matches with work accounting (one Eval for the
// invocation, one Comparison per criterion consulted), mirroring the
// compiled matcher's counters so the two paths' costs compare directly.
func (s *Summary) MatchesCounted(ev event.Event, mc *MatchCounter) bool {
	if s == nil {
		return false
	}
	if mc != nil {
		mc.Evals++
	}
	if s.matchAll {
		return true
	}
	for _, sub := range s.subs {
		if sub.MatchesCounted(ev, mc) {
			return true
		}
	}
	return false
}

// Covers reports whether the summary is guaranteed to match every event the
// subscription matches. Sound but incomplete: it may return false even when
// coverage holds semantically across disjuncts.
func (s *Summary) Covers(sub Subscription) bool {
	if s == nil {
		return false
	}
	if s.matchAll {
		return true
	}
	for _, d := range s.subs {
		if d.Subsumes(sub) {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the summary matches nothing.
func (s *Summary) IsEmpty() bool { return s == nil || (!s.matchAll && len(s.subs) == 0) }

// Len returns the current number of disjuncts (0 for match-all).
func (s *Summary) Len() int {
	if s == nil {
		return 0
	}
	return len(s.subs)
}

// Bound returns the maximum number of disjuncts retained.
func (s *Summary) Bound() int { return s.maxSubs }

// Clone returns an independent copy.
func (s *Summary) Clone() *Summary {
	if s == nil {
		return nil
	}
	out := &Summary{maxSubs: s.maxSubs, matchAll: s.matchAll}
	out.subs = make([]Subscription, len(s.subs))
	for i, sub := range s.subs {
		out.subs[i] = sub.clone()
	}
	return out
}

// Disjuncts returns a copy of the retained subscriptions.
func (s *Summary) Disjuncts() []Subscription {
	if s == nil {
		return nil
	}
	out := make([]Subscription, len(s.subs))
	for i, sub := range s.subs {
		out[i] = sub.clone()
	}
	return out
}

// String renders the summary as disjunct subscriptions separated by " | ".
func (s *Summary) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	if s.matchAll {
		return "*"
	}
	parts := make([]string, len(s.subs))
	for i, sub := range s.subs {
		parts[i] = sub.String()
	}
	return strings.Join(parts, " | ")
}

// Summarize regroups a set of subscriptions into a fresh summary with the
// default bound.
func Summarize(subs ...Subscription) *Summary {
	s := NewSummary()
	for _, sub := range subs {
		s.Add(sub)
	}
	return s
}
