package interest

import (
	"math"
	"math/rand"
	"testing"

	"pmcast/internal/event"
)

// randCriterion draws one criterion spanning every construction path the
// compiler indexes: point and band intervals (open/closed/infinite bounds),
// multi-interval unions, the empty interval set, string sets (including the
// empty one), booleans and the wildcard.
func randCriterion(rng *rand.Rand) Criterion {
	switch rng.Intn(10) {
	case 0:
		return EqInt(int64(rng.Intn(8)))
	case 1:
		return Gt(float64(rng.Intn(100)))
	case 2:
		return Le(float64(rng.Intn(100)))
	case 3:
		// Arbitrary open/closed band, boundaries included in event draws.
		lo := float64(rng.Intn(50))
		hi := lo + float64(rng.Intn(50))
		return InIntervals(Interval{Lo: lo, Hi: hi, LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0})
	case 4:
		// Multi-interval union, possibly with adjacent/overlapping members.
		n := 1 + rng.Intn(4)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := float64(rng.Intn(60))
			ivs[i] = Interval{Lo: lo, Hi: lo + float64(rng.Intn(20)), LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0}
		}
		return InIntervals(ivs...)
	case 5:
		return InIntervals() // empty IntervalSet: matches nothing
	case 6:
		words := []string{"a", "b", "c", "d", "e"}
		n := rng.Intn(4)
		picked := make([]string, 0, n)
		for i := 0; i < n; i++ {
			picked = append(picked, words[rng.Intn(len(words))])
		}
		return OneOf(picked...) // n=0: empty string set, matches nothing
	case 7:
		return IsBool(rng.Intn(2) == 0)
	case 8:
		return Any()
	default:
		return BetweenIncl(float64(rng.Intn(40)), float64(rng.Intn(80)))
	}
}

// attrNames is the shared attribute vocabulary: events and subscriptions
// overlap partially, so missing-attribute and wrong-domain paths are hit.
var attrNames = []string{"b", "c", "e", "z", "w"}

func randSubscription(rng *rand.Rand) Subscription {
	sub := NewSubscription()
	for _, attr := range attrNames {
		if rng.Intn(3) == 0 {
			sub = sub.Where(attr, randCriterion(rng))
		}
	}
	return sub
}

func randEvent(rng *rand.Rand, seq uint64) event.Event {
	b := event.NewBuilder()
	for _, attr := range attrNames {
		switch rng.Intn(6) {
		case 0:
			// Absent attribute.
		case 1:
			b.Int(attr, int64(rng.Intn(110)))
		case 2:
			// Boundary-heavy draws: integers land exactly on interval
			// endpoints, probing open/closed semantics.
			b.Float(attr, float64(rng.Intn(110)))
		case 3:
			b.Float(attr, rng.Float64()*110)
		case 4:
			b.Str(attr, []string{"a", "b", "c", "d", "e", "zz"}[rng.Intn(6)])
		default:
			b.Bool(attr, rng.Intn(2) == 0)
		}
	}
	return b.Build(event.ID{Origin: "prop", Seq: seq})
}

// TestCompiledMatchesSubscriptionParity is the compiled engine's oracle
// property: for randomized subscriptions × events — zero-criterion
// (match-all) subscriptions, empty interval sets, empty string sets,
// boundary open/closed intervals, missing attributes, cross-domain values —
// Compile(sub).Matches ≡ sub.Matches, decision for decision. Run it under
// -race along with the rest of the suite; compiled matchers are shared
// immutable state by design.
func TestCompiledMatchesSubscriptionParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 2000; trial++ {
		sub := randSubscription(rng)
		cm := Compile(sub)
		for k := 0; k < 25; k++ {
			ev := randEvent(rng, uint64(trial*25+k))
			if got, want := cm.Matches(ev), sub.Matches(ev); got != want {
				t.Fatalf("trial %d: compiled=%v naive=%v\nsub: %s\nevent: %s", trial, got, want, sub, ev)
			}
		}
	}
}

// TestCompiledMatchesSummaryParity extends the oracle property to regrouped
// summaries: randomized disjunction sets (driven through Add's absorption
// and compaction) compile to matchers that agree with Summary.Matches on
// every probe, and interned compilation returns the same decisions through
// shared values.
func TestCompiledMatchesSummaryParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	compiler := NewCompiler()
	for trial := 0; trial < 400; trial++ {
		s := NewSummaryWithBound(1 + rng.Intn(4))
		for i, n := 0, rng.Intn(10); i < n; i++ {
			s.Add(randSubscription(rng))
		}
		cm := CompileSummary(s)
		interned := compiler.CompileSummary(s)
		for k := 0; k < 25; k++ {
			ev := randEvent(rng, uint64(trial*25+k))
			want := s.Matches(ev)
			if got := cm.Matches(ev); got != want {
				t.Fatalf("trial %d: compiled=%v naive=%v\nsummary: %s\nevent: %s", trial, got, want, s, ev)
			}
			if got := interned.Matches(ev); got != want {
				t.Fatalf("trial %d: interned=%v naive=%v\nsummary: %s\nevent: %s", trial, got, want, s, ev)
			}
		}
	}
}

// TestHullCostMatchesMaterializedHull pins the allocation-free closest-pair
// scoring to its materializing definition: for random subscription pairs,
// hullCostWith must return exactly the dropped-attribute count and size of
// the hull HullWith builds.
func TestHullCostMatchesMaterializedHull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 3000; trial++ {
		s, u := randSubscription(rng), randSubscription(rng)
		h := s.HullWith(u)
		wantDropped := len(s.Attrs()) + len(u.Attrs()) - 2*len(h.Attrs())
		wantSize := h.Size()
		dropped, size := s.hullCostWith(u)
		if dropped != wantDropped || size != wantSize {
			t.Fatalf("trial %d: cost (%d,%d), hull says (%d,%d)\ns: %s\nu: %s\nhull: %s",
				trial, dropped, size, wantDropped, wantSize, s, u, h)
		}
	}
}

// TestIntervalSetUnionMergeParity pins the linear-merge Union (and its
// counting twin) to the sort-based normalization it replaced.
func TestIntervalSetUnionMergeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	randSet := func() IntervalSet {
		n := rng.Intn(5)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := float64(rng.Intn(40))
			ivs[i] = Interval{Lo: lo, Hi: lo + float64(rng.Intn(15)), LoOpen: rng.Intn(2) == 0, HiOpen: rng.Intn(2) == 0}
		}
		return NormalizeIntervals(ivs)
	}
	for trial := 0; trial < 5000; trial++ {
		s, u := randSet(), randSet()
		got := s.Union(u)
		all := make([]Interval, 0, len(s)+len(u))
		all = append(all, s...)
		all = append(all, u...)
		want := NormalizeIntervals(all)
		if !got.Equal(want) {
			t.Fatalf("trial %d: merge union %v, normalized %v (s=%v u=%v)", trial, got, want, s, u)
		}
		if n := s.unionCount(u); n != len(want) {
			t.Fatalf("trial %d: unionCount %d, union has %d", trial, n, len(want))
		}
	}
}

// TestCompilerInternsByFingerprint: structurally identical interests share
// one compiled form; different interests do not.
func TestCompilerInternsByFingerprint(t *testing.T) {
	c := NewCompiler()
	s1 := NewSubscription().Where("b", EqInt(2)).Where("c", Gt(40))
	s2 := NewSubscription().Where("c", Gt(40)).Where("b", EqInt(2)) // same language, different build order
	if c.Compile(s1) != c.Compile(s2) {
		t.Error("identical subscriptions did not intern to one compiled form")
	}
	s3 := s1.Where("b", EqInt(3))
	if c.Compile(s1) == c.Compile(s3) {
		t.Error("different subscriptions interned to the same compiled form")
	}
	if got := c.Len(); got != 2 {
		t.Errorf("interner holds %d entries, want 2", got)
	}
	sumA := Summarize(s1, s3)
	sumB := Summarize(s3, s2) // same disjunct language, different order
	if c.CompileSummary(sumA) != c.CompileSummary(sumB) {
		t.Error("language-equal summaries did not intern to one compiled form")
	}
}

// TestConstrainRejectsZeroCriterion is the early-validation contract: the
// zero Criterion errors at construction instead of silently building a
// subscription nobody asked for, and Where panics on it.
func TestConstrainRejectsZeroCriterion(t *testing.T) {
	var zero Criterion
	if _, err := NewSubscription().Constrain("b", zero); err == nil {
		t.Fatal("Constrain accepted the zero Criterion")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Where did not panic on the zero Criterion")
		}
	}()
	NewSubscription().Where("b", zero)
}

// TestConstrainValidCriteria: every constructed criterion — including the
// unsatisfiable empty ones and the wildcard — passes validation.
func TestConstrainValidCriteria(t *testing.T) {
	for _, c := range []Criterion{Any(), EqInt(1), InIntervals(), OneOf(), IsBool(true),
		Between(1, 2), Ge(math.Inf(-1))} {
		if _, err := NewSubscription().Constrain("x", c); err != nil {
			t.Errorf("Constrain rejected a constructed criterion %v: %v", c, err)
		}
	}
}
