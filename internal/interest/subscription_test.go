package interest

import (
	"math/rand"
	"testing"

	"pmcast/internal/event"
)

// paperSub builds "b = 2, c > 40.0, z = 20000" — the 128.178.73.3 line of the
// paper's Figure 2 depth-4 view.
func paperSub() Subscription {
	return NewSubscription().
		Where("b", EqInt(2)).
		Where("c", Gt(40.0)).
		Where("z", EqInt(20000))
}

func TestSubscriptionMatches(t *testing.T) {
	sub := paperSub()
	tests := []struct {
		name string
		ev   event.Event
		want bool
	}{
		{
			name: "all criteria satisfied",
			ev:   event.NewBuilder().Int("b", 2).Float("c", 41.0).Int("z", 20000).Build(event.ID{}),
			want: true,
		},
		{
			name: "one criterion fails",
			ev:   event.NewBuilder().Int("b", 3).Float("c", 41.0).Int("z", 20000).Build(event.ID{}),
			want: false,
		},
		{
			name: "missing attribute fails",
			ev:   event.NewBuilder().Int("b", 2).Float("c", 41.0).Build(event.ID{}),
			want: false,
		},
		{
			name: "extra attributes ignored",
			ev:   event.NewBuilder().Int("b", 2).Float("c", 41.0).Int("z", 20000).Str("e", "??").Build(event.ID{}),
			want: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := sub.Matches(tt.ev); got != tt.want {
				t.Errorf("Matches = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestZeroSubscriptionMatchesAll(t *testing.T) {
	var s Subscription
	if !s.Matches(event.NewBuilder().Int("x", 1).Build(event.ID{})) {
		t.Error("zero subscription should match everything")
	}
	if !s.IsMatchAll() {
		t.Error("zero subscription not match-all")
	}
	// Where on the zero value must not mutate it.
	s2 := s.Where("b", Gt(0))
	if !s.IsMatchAll() {
		t.Error("Where mutated receiver")
	}
	if s2.IsMatchAll() {
		t.Error("Where lost the criterion")
	}
}

func TestWhereWildcardRemoves(t *testing.T) {
	s := NewSubscription().Where("b", Gt(0)).Where("b", Any())
	if !s.IsMatchAll() {
		t.Error("wildcard Where should drop the constraint")
	}
}

func TestSubscriptionSubsumes(t *testing.T) {
	base := NewSubscription().Where("b", Gt(0))
	tighter := NewSubscription().Where("b", Gt(3)).Where("c", Lt(10))
	unrelated := NewSubscription().Where("e", OneOf("Tom"))

	if !base.Subsumes(tighter) {
		t.Error("b>0 should subsume b>3 ∧ c<10")
	}
	if tighter.Subsumes(base) {
		t.Error("tighter should not subsume looser")
	}
	if base.Subsumes(unrelated) || unrelated.Subsumes(base) {
		t.Error("unrelated subscriptions should not subsume")
	}
	if !NewSubscription().Subsumes(tighter) {
		t.Error("match-all should subsume everything")
	}
	empty := NewSubscription().Where("b", OneOf()) // unsatisfiable on a numeric? OneOf() is empty string set
	if !tighter.Subsumes(empty) {
		t.Error("anything should subsume the empty subscription")
	}
}

func TestSubscriptionSubsumesImpliesMatchSubset(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	randomSub := func() Subscription {
		s := NewSubscription()
		if r.Intn(2) == 0 {
			lo := float64(r.Intn(10))
			s = s.Where("b", Between(lo, lo+float64(1+r.Intn(10))))
		}
		if r.Intn(2) == 0 {
			s = s.Where("c", Gt(float64(r.Intn(10))))
		}
		if r.Intn(2) == 0 {
			names := []string{"Ann", "Bob", "Tom"}
			s = s.Where("e", OneOf(names[:1+r.Intn(3)]...))
		}
		return s
	}
	randomEvent := func() event.Event {
		names := []string{"Ann", "Bob", "Tom", "Zoe"}
		return event.NewBuilder().
			Float("b", float64(r.Intn(25))-2).
			Float("c", float64(r.Intn(25))-2).
			Str("e", names[r.Intn(4)]).
			Build(event.ID{})
	}
	for trial := 0; trial < 500; trial++ {
		a, b := randomSub(), randomSub()
		if !a.Subsumes(b) {
			continue
		}
		for probe := 0; probe < 40; probe++ {
			ev := randomEvent()
			if b.Matches(ev) && !a.Matches(ev) {
				t.Fatalf("a=%v subsumes b=%v but misses event %v matched by b", a, b, ev)
			}
		}
	}
}

func TestHullWith(t *testing.T) {
	a := NewSubscription().Where("b", EqInt(2)).Where("c", Gt(40))
	b := NewSubscription().Where("b", EqInt(5)).Where("e", OneOf("Tom"))
	h := a.HullWith(b)

	// b constrained by both: union kept.
	if got := h.Criterion("b"); !got.Matches(event.Int(2)) || !got.Matches(event.Int(5)) || got.Matches(event.Int(3)) {
		t.Errorf("hull b criterion = %v", got)
	}
	// c and e constrained by one side only: dropped (widened).
	if !h.Criterion("c").IsAny() || !h.Criterion("e").IsAny() {
		t.Error("one-sided attributes should widen to wildcard")
	}
	// Hull must subsume both operands.
	if !h.Subsumes(a) || !h.Subsumes(b) {
		t.Error("hull does not subsume operands")
	}
}

func TestSubscriptionString(t *testing.T) {
	s := paperSub()
	want := "b = 2, c > 40, z = 20000"
	if got := s.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got := NewSubscription().String(); got != "*" {
		t.Errorf("match-all String = %q", got)
	}
}

func TestSubscriptionIsEmpty(t *testing.T) {
	if paperSub().IsEmpty() {
		t.Error("live subscription empty")
	}
	if !NewSubscription().Where("e", OneOf()).IsEmpty() {
		t.Error("unsatisfiable subscription not empty")
	}
}

func TestSubscriptionAttrsSorted(t *testing.T) {
	s := NewSubscription().Where("z", EqInt(1)).Where("a", EqInt(2)).Where("m", EqInt(3))
	attrs := s.Attrs()
	want := []string{"a", "m", "z"}
	for i := range want {
		if attrs[i] != want[i] {
			t.Fatalf("attrs = %v", attrs)
		}
	}
}
