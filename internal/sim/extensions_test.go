package sim

import (
	"testing"
)

func TestLeafFloodKeepsDeliveryCutsRounds(t *testing.T) {
	base := newSim(t, Params{A: 12, D: 2, R: 3, F: 2})
	flood := newSim(t, Params{A: 12, D: 2, R: 3, F: 2, LeafFloodRate: 0.4})
	const pd = 0.8 // dense interests: flooding engages
	aggBase, err := base.RunMany(pd, 25, 11)
	if err != nil {
		t.Fatal(err)
	}
	aggFlood, err := flood.RunMany(pd, 25, 11)
	if err != nil {
		t.Fatal(err)
	}
	if aggFlood.Delivery.Mean() < aggBase.Delivery.Mean()-0.02 {
		t.Errorf("leaf flooding hurt delivery: %g vs %g",
			aggFlood.Delivery.Mean(), aggBase.Delivery.Mean())
	}
	if aggFlood.Rounds.Mean() >= aggBase.Rounds.Mean() {
		t.Errorf("leaf flooding should cut rounds: %g >= %g",
			aggFlood.Rounds.Mean(), aggBase.Rounds.Mean())
	}
}

func TestLeafFloodInactiveBelowGate(t *testing.T) {
	// With a sparse audience the rate never reaches the gate, so flooding
	// and baseline behave identically for the same seeds.
	base := newSim(t, Params{A: 10, D: 2, R: 2, F: 2})
	gated := newSim(t, Params{A: 10, D: 2, R: 2, F: 2, LeafFloodRate: 0.95})
	for seed := int64(0); seed < 5; seed++ {
		rb, err := base.RunMany(0.05, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := gated.RunMany(0.05, 3, seed)
		if err != nil {
			t.Fatal(err)
		}
		if rb.Messages.Mean() != rg.Messages.Mean() {
			t.Fatalf("seed %d: gated flood changed behavior: %g vs %g msgs",
				seed, rg.Messages.Mean(), rb.Messages.Mean())
		}
	}
}

func TestLocalDescentPreservesDelivery(t *testing.T) {
	base := newSim(t, Params{A: 8, D: 3, R: 2, F: 2, C: 1})
	descent := newSim(t, Params{A: 8, D: 3, R: 2, F: 2, C: 1, LocalDescent: true})
	agg, err := base.RunMany(0.3, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	aggD, err := descent.RunMany(0.3, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if aggD.Delivery.Mean() < agg.Delivery.Mean()-0.05 {
		t.Errorf("local descent hurt delivery: %g vs %g",
			aggD.Delivery.Mean(), agg.Delivery.Mean())
	}
}

func TestAssumedLossLengthensBudgetsAndHelps(t *testing.T) {
	// Under real loss, telling the protocol about it (Eq. 11) must not
	// reduce delivery compared to assuming a clean network.
	blind := newSim(t, Params{A: 10, D: 2, R: 2, F: 2, Eps: 0.3, AssumedEps: 0, AssumedTau: 0})
	aware := newSim(t, Params{A: 10, D: 2, R: 2, F: 2, Eps: 0.3, AssumedEps: -1, AssumedTau: -1})
	aggBlind, err := blind.RunMany(0.5, 30, 17)
	if err != nil {
		t.Fatal(err)
	}
	aggAware, err := aware.RunMany(0.5, 30, 17)
	if err != nil {
		t.Fatal(err)
	}
	if aggAware.Delivery.Mean() < aggBlind.Delivery.Mean()-0.01 {
		t.Errorf("loss-aware budgets should help: aware %g vs blind %g",
			aggAware.Delivery.Mean(), aggBlind.Delivery.Mean())
	}
	if aggAware.Rounds.Mean() < aggBlind.Rounds.Mean() {
		t.Errorf("loss-aware budgets should not shorten rounds: %g < %g",
			aggAware.Rounds.Mean(), aggBlind.Rounds.Mean())
	}
}

func TestHigherFanoutImprovesOrMaintainsDelivery(t *testing.T) {
	low := newSim(t, Params{A: 10, D: 2, R: 2, F: 1})
	high := newSim(t, Params{A: 10, D: 2, R: 2, F: 4})
	aggLow, err := low.RunMany(0.3, 30, 23)
	if err != nil {
		t.Fatal(err)
	}
	aggHigh, err := high.RunMany(0.3, 30, 23)
	if err != nil {
		t.Fatal(err)
	}
	if aggHigh.Delivery.Mean() < aggLow.Delivery.Mean() {
		t.Errorf("F=4 delivery %g below F=1 %g",
			aggHigh.Delivery.Mean(), aggLow.Delivery.Mean())
	}
}

func TestThresholdTuningCappedByViewSize(t *testing.T) {
	// h larger than any view must not crash and must push delivery to ~1.
	s := newSim(t, Params{A: 5, D: 2, R: 2, F: 3, Threshold: 1000})
	agg, err := s.RunMany(0.1, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Delivery.Mean() < 0.9 {
		t.Errorf("max tuning delivery = %g", agg.Delivery.Mean())
	}
}
