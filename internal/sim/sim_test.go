package sim

import (
	"math/rand"
	"testing"

	"pmcast/internal/event"
)

func newSim(t *testing.T, p Params) *Simulator {
	t.Helper()
	s, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestParamsValidation(t *testing.T) {
	bad := []Params{
		{A: 2, D: 3, R: 3, F: 2},  // a < R
		{A: 10, D: 0, R: 3, F: 2}, // d = 0
		{A: 10, D: 2, R: 0, F: 2}, // R = 0
		{A: 10, D: 2, R: 2, F: 0}, // F = 0
		{A: 10, D: 2, R: 2, F: 2, Eps: 1.0},
		{A: 10, D: 2, R: 2, F: 2, Tau: -0.1},
	}
	for _, p := range bad {
		if _, err := New(p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestParamsN(t *testing.T) {
	if got := (Params{A: 22, D: 3}).N(); got != 10648 {
		t.Errorf("N = %d", got)
	}
}

func TestViewGeometry(t *testing.T) {
	s := newSim(t, Params{A: 4, D: 3, R: 2, F: 2})
	for _, procIdx := range []int{0, 17, 33, 63} {
		for depth := 1; depth <= 3; depth++ {
			v := s.viewFor(procIdx, depth)
			wantSize := 4 * 2
			if depth == 3 {
				wantSize = 4
			}
			if v.Size() != wantSize {
				t.Errorf("proc %d depth %d size = %d, want %d", procIdx, depth, v.Size(), wantSize)
			}
			// Every member shares the process's prefix of length depth−1.
			selfAddr := s.addrs[procIdx]
			for k := 0; k < v.Size(); k++ {
				m := v.MemberAt(k)
				if !m.HasPrefix(selfAddr.Prefix(depth)) {
					t.Fatalf("proc %d depth %d member %s outside prefix %s",
						procIdx, depth, m, selfAddr.Prefix(depth))
				}
			}
			// SelfIndex consistency.
			if si := v.SelfIndex(); si >= 0 {
				if !v.MemberAt(si).Equal(selfAddr) {
					t.Errorf("proc %d depth %d self index mismatch", procIdx, depth)
				}
			}
		}
	}
	// At depth d every process is a member.
	for _, procIdx := range []int{0, 5, 63} {
		if s.viewFor(procIdx, 3).SelfIndex() < 0 {
			t.Errorf("proc %d missing from its leaf view", procIdx)
		}
	}
	// Delegate structure: process 0 (smallest address) is a member at every
	// depth; the largest leaf of a subtree is not a member above depth d.
	if s.viewFor(0, 1).SelfIndex() < 0 {
		t.Error("process 0 should sit in the root group")
	}
	if s.viewFor(15, 1).SelfIndex() >= 0 || s.viewFor(15, 2).SelfIndex() >= 0 {
		t.Error("process 15 (0.3.3) should not be a delegate above the leaves")
	}
}

func TestFullDeliveryEasyRegime(t *testing.T) {
	// pd=1, no loss, no crashes, generous fanout: everyone delivers.
	s := newSim(t, Params{A: 5, D: 2, R: 2, F: 3, C: 2})
	res, err := s.Run(1.0, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Interested != 25 || res.Uninterested != 0 {
		t.Fatalf("audience: %+v", res)
	}
	if res.DeliveredInterested != 25 {
		t.Errorf("delivered %d of 25", res.DeliveredInterested)
	}
	if res.DeliveryRate() != 1 {
		t.Errorf("rate = %g", res.DeliveryRate())
	}
	if res.Rounds == 0 || res.Messages == 0 {
		t.Errorf("suspicious cost: %+v", res)
	}
}

func TestZeroAudience(t *testing.T) {
	s := newSim(t, Params{A: 4, D: 2, R: 2, F: 2})
	res, err := s.Run(0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Interested != 0 {
		t.Fatalf("interested = %d", res.Interested)
	}
	if res.Messages != 0 {
		t.Errorf("messages = %d for empty audience", res.Messages)
	}
	if res.DeliveryRate() != 1 { // vacuous
		t.Errorf("vacuous delivery = %g", res.DeliveryRate())
	}
	if res.InfectedUninterested != 0 {
		t.Errorf("uninterested infected = %d", res.InfectedUninterested)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := newSim(t, Params{A: 6, D: 2, R: 2, F: 2, Eps: 0.1, Tau: 0.02})
	b := newSim(t, Params{A: 6, D: 2, R: 2, F: 2, Eps: 0.1, Tau: 0.02})
	for seed := int64(0); seed < 5; seed++ {
		ra, err := a.Run(0.4, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Run(0.4, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if ra != rb {
			t.Fatalf("seed %d: %+v != %+v", seed, ra, rb)
		}
	}
}

func TestSimulatorReuseIsClean(t *testing.T) {
	// Back-to-back runs on one simulator must not leak state: a pd=1 run
	// after a pd=0 run still delivers fully.
	s := newSim(t, Params{A: 5, D: 2, R: 2, F: 3, C: 2})
	rng := rand.New(rand.NewSource(3))
	if _, err := s.Run(0, rng); err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate() != 1 {
		t.Errorf("delivery after reuse = %g", res.DeliveryRate())
	}
}

func TestLossDegradesDelivery(t *testing.T) {
	clean := newSim(t, Params{A: 8, D: 2, R: 2, F: 2})
	// The lossy protocol is deliberately *not* told about the loss
	// (AssumedEps = 0 keeps budgets tight), isolating the network effect.
	lossyBlind := newSim(t, Params{A: 8, D: 2, R: 2, F: 2, Eps: 0.6, AssumedEps: 0, AssumedTau: 0})
	aggClean, err := clean.RunMany(0.5, 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	aggLossy, err := lossyBlind.RunMany(0.5, 30, 42)
	if err != nil {
		t.Fatal(err)
	}
	if aggLossy.Delivery.Mean() >= aggClean.Delivery.Mean() {
		t.Errorf("loss did not degrade delivery: %g >= %g",
			aggLossy.Delivery.Mean(), aggClean.Delivery.Mean())
	}
}

func TestCrashesDegradeDelivery(t *testing.T) {
	clean := newSim(t, Params{A: 8, D: 2, R: 2, F: 2})
	crashy := newSim(t, Params{A: 8, D: 2, R: 2, F: 2, Tau: 0.3, AssumedTau: 0})
	aggClean, err := clean.RunMany(0.5, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	aggCrashy, err := crashy.RunMany(0.5, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if aggCrashy.Delivery.Mean() >= aggClean.Delivery.Mean() {
		t.Errorf("crashes did not degrade delivery: %g >= %g",
			aggCrashy.Delivery.Mean(), aggClean.Delivery.Mean())
	}
}

func TestUninterestedReceptionOnlyDelegates(t *testing.T) {
	// Untuned pmcast: uninterested *leaf-only* processes (non-delegates)
	// must never receive; uninterested delegates may. Verify per process.
	s := newSim(t, Params{A: 6, D: 3, R: 2, F: 2, C: 1})
	rng := rand.New(rand.NewSource(11))
	ev := event.ID{Origin: "sim", Seq: 1}
	for run := 0; run < 5; run++ {
		res, err := s.Run(0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < s.n; i++ {
			if s.run.interested[i] || i == res.Publisher {
				continue
			}
			// Non-delegate ⇔ not among the first R of its leaf subgroup at
			// any level ⇔ offset within parent subtree ≥ R.
			isDelegate := i%s.strides[s.params.D-1] < s.params.R
			if !isDelegate && s.procs[i].HasSeen(ev) {
				t.Fatalf("run %d: uninterested non-delegate %d received", run, i)
			}
		}
	}
}

func TestTuningImprovesSmallRateDelivery(t *testing.T) {
	base := newSim(t, Params{A: 10, D: 2, R: 3, F: 2})
	tuned := newSim(t, Params{A: 10, D: 2, R: 3, F: 2, Threshold: 6})
	const pd = 0.04 // ~4 interested of 100
	aggBase, err := base.RunMany(pd, 60, 99)
	if err != nil {
		t.Fatal(err)
	}
	aggTuned, err := tuned.RunMany(pd, 60, 99)
	if err != nil {
		t.Fatal(err)
	}
	if aggTuned.Delivery.Mean() <= aggBase.Delivery.Mean() {
		t.Errorf("tuning did not help small rates: tuned %g <= base %g",
			aggTuned.Delivery.Mean(), aggBase.Delivery.Mean())
	}
	// The compromise: more uninterested receptions.
	if aggTuned.UninterestedReception.Mean() < aggBase.UninterestedReception.Mean() {
		t.Errorf("tuning should not reduce uninterested receptions: %g < %g",
			aggTuned.UninterestedReception.Mean(), aggBase.UninterestedReception.Mean())
	}
}

func TestRunManyAggregates(t *testing.T) {
	s := newSim(t, Params{A: 5, D: 2, R: 2, F: 2})
	agg, err := s.RunMany(0.5, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Delivery.N() == 0 || agg.Rounds.N() != 10 || agg.Messages.N() != 10 {
		t.Errorf("aggregation counts off: %d %d %d",
			agg.Delivery.N(), agg.Rounds.N(), agg.Messages.N())
	}
	if agg.Delivery.Mean() < 0 || agg.Delivery.Mean() > 1 {
		t.Errorf("delivery mean = %g", agg.Delivery.Mean())
	}
	if _, err := s.Run(1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("pd > 1 accepted")
	}
}

func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale smoke test skipped in -short mode")
	}
	// One run at the paper's Figure 4 configuration: n = 10648.
	s := newSim(t, Params{A: 22, D: 3, R: 3, F: 2, C: 1})
	res, err := s.Run(0.5, rand.New(rand.NewSource(2024)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Interested < 4800 || res.Interested > 5800 {
		t.Fatalf("audience draw implausible: %d", res.Interested)
	}
	if res.DeliveryRate() < 0.9 {
		t.Errorf("paper-scale delivery at pd=0.5 = %g, want ≳0.9", res.DeliveryRate())
	}
	if res.UninterestedReceptionRate() > 0.25 {
		t.Errorf("uninterested reception = %g, implausibly high", res.UninterestedReceptionRate())
	}
}
