// Package sim is the round-synchronous Monte-Carlo simulator reproducing the
// paper's evaluation (Section 5): a fully populated regular tree of n = a^d
// processes runs the pmcast protocol (internal/core) on a single event whose
// audience is drawn Bernoulli(p_d), under i.i.d. message loss ε and crash
// fraction τ, exactly the stochastic model of the paper's analysis
// (Section 4.1).
//
// The simulator drives the same core.Process state machine as the live
// runtime; only the views are synthetic (regular-tree index arithmetic and
// Bernoulli interests instead of content-based subscriptions), which keeps a
// 10 000-process run cheap enough for statistically meaningful sweeps.
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/stats"
)

// Errors reported by the simulator.
var (
	ErrBadShape  = errors.New("sim: tree shape requires a ≥ R ≥ 1 and d ≥ 1")
	ErrBadRate   = errors.New("sim: probability outside valid range")
	ErrNoQuiesce = errors.New("sim: dissemination did not quiesce")
)

// Params configures a simulation campaign. The zero value is invalid; use
// the documented paper configurations, e.g. Figure 4's
// {A: 22, D: 3, R: 3, F: 2}.
type Params struct {
	// A, D, R: regular tree arity, depth and redundancy factor.
	A, D, R int
	// F is the gossip fanout.
	F int
	// C is Pittel's additive constant used in round budgets.
	C float64
	// Eps is the actual message loss probability ε of the network.
	Eps float64
	// Tau is the fraction of processes crashed during a run (τ = f/n).
	Tau float64
	// AssumedEps and AssumedTau are what the protocol assumes when sizing
	// its round budgets (conservative values per Section 3.3); they default
	// to Eps and Tau when negative.
	AssumedEps float64
	AssumedTau float64
	// Threshold is the Section 5.3 tuning parameter h (0 = untuned).
	Threshold int
	// LocalDescent enables the Section 3.2 start-depth optimization.
	LocalDescent bool
	// LeafFloodRate enables the Section 6 leaf-flooding extension (0 = off).
	LeafFloodRate float64
	// MaxRounds bounds a single run (safety net); 0 means 64·d.
	MaxRounds int
}

func (p Params) withDefaults() Params {
	if p.AssumedEps < 0 {
		p.AssumedEps = p.Eps
	}
	if p.AssumedTau < 0 {
		p.AssumedTau = p.Tau
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 64 * p.D
	}
	return p
}

func (p Params) validate() error {
	if p.D < 1 || p.R < 1 || p.A < p.R {
		return fmt.Errorf("%w: a=%d d=%d R=%d", ErrBadShape, p.A, p.D, p.R)
	}
	if p.F < 1 {
		return fmt.Errorf("%w: fanout %d", ErrBadShape, p.F)
	}
	for _, v := range []float64{p.Eps, p.Tau} {
		if v < 0 || v >= 1 {
			return fmt.Errorf("%w: ε/τ %g", ErrBadRate, v)
		}
	}
	return nil
}

// N returns the population size a^d.
func (p Params) N() int {
	n := 1
	for i := 0; i < p.D; i++ {
		n *= p.A
	}
	return n
}

// Result captures one simulated dissemination.
type Result struct {
	// Interested is the drawn audience size.
	Interested int
	// DeliveredInterested counts interested processes that delivered.
	DeliveredInterested int
	// Uninterested is n − Interested.
	Uninterested int
	// InfectedUninterested counts uninterested processes that received the
	// event (pure-forwarding delegates, plus tuning-induced receptions).
	InfectedUninterested int
	// Rounds is the number of gossip periods until the group quiesced.
	Rounds int
	// Messages is the number of gossip sends emitted (including lost ones).
	Messages int
	// MatchEvals and MatchCacheHits count, fleet-wide, the matcher
	// evaluations performed and the susceptibility queries answered from the
	// per-event cache — the simulated run's matching-cost profile, produced
	// by the same compiled-path cache the live runtime uses.
	MatchEvals     uint64
	MatchCacheHits uint64
	// Publisher is the index of the multicasting process.
	Publisher int
}

// DeliveryRate returns DeliveredInterested/Interested (1 when nobody was
// interested: vacuous success).
func (r Result) DeliveryRate() float64 {
	if r.Interested == 0 {
		return 1
	}
	return float64(r.DeliveredInterested) / float64(r.Interested)
}

// UninterestedReceptionRate returns InfectedUninterested/Uninterested.
func (r Result) UninterestedReceptionRate() float64 {
	if r.Uninterested == 0 {
		return 0
	}
	return float64(r.InfectedUninterested) / float64(r.Uninterested)
}

// Aggregate summarizes a batch of runs.
type Aggregate struct {
	// Delivery aggregates per-run delivery rates (Figure 4/6/7 y-axis).
	Delivery stats.Accumulator
	// UninterestedReception aggregates per-run uninterested reception rates
	// (Figure 5 y-axis).
	UninterestedReception stats.Accumulator
	// Rounds and Messages aggregate dissemination cost.
	Rounds   stats.Accumulator
	Messages stats.Accumulator
}

// Simulator owns the reusable per-configuration state: the process array
// with their synthetic views. A Simulator is not safe for concurrent use;
// run independent Simulators for parallel sweeps.
type Simulator struct {
	params Params
	n      int
	space  addr.Space
	addrs  []addr.Address
	procs  []*core.Process
	run    *runState
	// strides[l] = a^(d−l): leaves covered by a subtree whose prefix has
	// length l.
	strides []int
}

// New validates the parameters and builds the process population once;
// individual runs then only redraw interests, crashes and the publisher.
func New(params Params) (*Simulator, error) {
	params = params.withDefaults()
	if err := params.validate(); err != nil {
		return nil, err
	}
	space, err := addr.Regular(params.A, params.D)
	if err != nil {
		return nil, err
	}
	n := params.N()
	s := &Simulator{
		params:  params,
		n:       n,
		space:   space,
		addrs:   make([]addr.Address, n),
		procs:   make([]*core.Process, n),
		run:     newRunState(params.A, params.D),
		strides: make([]int, params.D+1),
	}
	for l := 0; l <= params.D; l++ {
		s.strides[l] = pow(params.A, params.D-l)
	}
	for i := 0; i < n; i++ {
		s.addrs[i] = space.AddressAt(i)
	}
	cfg := core.Config{
		D:             params.D,
		F:             params.F,
		C:             params.C,
		AssumedLoss:   params.AssumedEps,
		AssumedCrash:  params.AssumedTau,
		Threshold:     params.Threshold,
		LocalDescent:  params.LocalDescent,
		LeafFloodRate: params.LeafFloodRate,
	}
	for i := 0; i < n; i++ {
		views := make([]core.DepthView, params.D)
		for depth := 1; depth <= params.D; depth++ {
			views[depth-1] = s.viewFor(i, depth)
		}
		self := i
		proc, err := core.NewProcess(s.addrs[i], cfg, views, func(event.Event) bool {
			return s.run.interested[self]
		})
		if err != nil {
			return nil, err
		}
		s.procs[i] = proc
	}
	return s, nil
}

// Params returns the simulator configuration (with defaults resolved).
func (s *Simulator) Params() Params { return s.params }

// Run simulates one dissemination with audience rate pd, reusing the process
// population. rng drives every stochastic choice, so equal seeds give equal
// runs.
func (s *Simulator) Run(pd float64, rng *rand.Rand) (Result, error) {
	if pd < 0 || pd > 1 {
		return Result{}, fmt.Errorf("%w: pd=%g", ErrBadRate, pd)
	}
	s.run.redraw(pd, s.params.Tau, rng)
	for _, p := range s.procs {
		p.Reset()
	}

	publisher := rng.Intn(s.n)
	for s.run.crashed[publisher] {
		publisher = rng.Intn(s.n)
	}
	ev := event.NewBuilder().Int("sim", 1).Build(event.ID{Origin: "sim", Seq: 1})
	if err := s.procs[publisher].Multicast(ev); err != nil {
		return Result{}, err
	}

	// The active set is kept in deterministic insertion order so a fixed
	// seed reproduces a run exactly (map iteration would not).
	active := make([]int, 0, 256)
	isActive := make([]bool, s.n)
	activate := func(idx int) {
		if !isActive[idx] {
			isActive[idx] = true
			active = append(active, idx)
		}
	}
	activate(publisher)
	rounds, messages := 0, 0
	for len(active) > 0 {
		if rounds >= s.params.MaxRounds {
			return Result{}, fmt.Errorf("%w after %d rounds", ErrNoQuiesce, rounds)
		}
		rounds++
		var sends []core.Send
		for _, idx := range active {
			if s.run.crashed[idx] {
				continue
			}
			sends = append(sends, s.procs[idx].Tick(rng)...)
		}
		messages += len(sends)
		for _, snd := range sends {
			if s.params.Eps > 0 && rng.Float64() < s.params.Eps {
				continue // lost in transit
			}
			dst := s.space.Index(snd.To)
			if s.run.crashed[dst] {
				continue
			}
			s.procs[dst].Receive(snd.Gossip)
			activate(dst)
		}
		// Retire drained and crashed processes.
		next := active[:0]
		for _, idx := range active {
			if !s.run.crashed[idx] && s.procs[idx].Pending() > 0 {
				next = append(next, idx)
			} else {
				isActive[idx] = false
			}
		}
		active = next
	}

	res := Result{Rounds: rounds, Messages: messages, Publisher: publisher}
	for _, p := range s.procs {
		ms := p.MatchStats()
		res.MatchEvals += ms.Evals
		res.MatchCacheHits += ms.Hits
	}
	evID := ev.ID()
	for i := 0; i < s.n; i++ {
		if s.run.interested[i] {
			res.Interested++
			if s.procs[i].HasSeen(evID) {
				res.DeliveredInterested++
			}
		} else {
			res.Uninterested++
			if i != publisher && s.procs[i].HasSeen(evID) {
				res.InfectedUninterested++
			}
		}
	}
	return res, nil
}

// RunMany executes runs independent simulations and aggregates them.
func (s *Simulator) RunMany(pd float64, runs int, seed int64) (Aggregate, error) {
	var agg Aggregate
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < runs; i++ {
		res, err := s.Run(pd, rng)
		if err != nil {
			return Aggregate{}, err
		}
		if res.Interested > 0 {
			agg.Delivery.Add(res.DeliveryRate())
		}
		agg.UninterestedReception.Add(res.UninterestedReceptionRate())
		agg.Rounds.Add(float64(res.Rounds))
		agg.Messages.Add(float64(res.Messages))
	}
	return agg, nil
}

func pow(a, k int) int {
	out := 1
	for i := 0; i < k; i++ {
		out *= a
	}
	return out
}

// runState holds the per-run random draws shared by all synthetic views.
type runState struct {
	a, d int
	// gen counts redraws: the synthetic views' matching behavior changes
	// wholesale at every redraw, and the generation is what invalidates the
	// processes' per-event susceptibility caches between runs (the same
	// event ID is reused run after run).
	gen uint64
	// interested[i] is the Bernoulli(p_d) audience bit of leaf i.
	interested []bool
	// subInterested[l][s]: subtree s (prefix length l) contains an
	// interested leaf. Level d is the leaves themselves; level 0 the root.
	subInterested [][]bool
	// crashed[i]: process i crashed during this run.
	crashed []bool
}

func newRunState(a, d int) *runState {
	rs := &runState{a: a, d: d}
	n := pow(a, d)
	rs.interested = make([]bool, n)
	rs.crashed = make([]bool, n)
	rs.subInterested = make([][]bool, d+1)
	for l := 0; l <= d; l++ {
		rs.subInterested[l] = make([]bool, pow(a, l))
	}
	return rs
}

// redraw resamples interests and crashes and rebuilds subtree aggregates.
func (rs *runState) redraw(pd, tau float64, rng *rand.Rand) {
	rs.gen++
	n := len(rs.interested)
	for i := 0; i < n; i++ {
		rs.interested[i] = rng.Float64() < pd
		rs.crashed[i] = tau > 0 && rng.Float64() < tau
		rs.subInterested[rs.d][i] = rs.interested[i]
	}
	for l := rs.d - 1; l >= 0; l-- {
		level := rs.subInterested[l]
		below := rs.subInterested[l+1]
		for sIdx := range level {
			v := false
			base := sIdx * rs.a
			for c := 0; c < rs.a; c++ {
				if below[base+c] {
					v = true
					break
				}
			}
			level[sIdx] = v
		}
	}
}

// simView is the synthetic DepthView of one process at one depth: index
// arithmetic over the regular tree plus the shared runState bits. With the
// smallest-address election, the delegates of any subtree are exactly its R
// lowest leaf indices, so membership reduces to modular arithmetic.
type simView struct {
	sim   *Simulator
	depth int // tree depth i of the view
	group int // prefix index (length depth−1) of the owning process
	perR  int // delegates per line: R at inner depths, 1 at the leaves
	self  int // position of the owner in the view, −1 if not a member
	owner int // owning process index (for MatchingSubgroups selfIn)
}

var (
	_ core.DepthView     = (*simView)(nil)
	_ core.MatchProfiler = (*simView)(nil)
	_ core.Generational  = (*simView)(nil)
)

// viewFor builds the depth view of process i.
func (s *Simulator) viewFor(i, depth int) *simView {
	p := s.params
	group := i / s.strides[depth-1]
	perR := p.R
	if depth == p.D {
		perR = 1
	}
	v := &simView{sim: s, depth: depth, group: group, perR: perR, self: -1, owner: i}
	// The owner is a member iff it is among the R delegates of its child
	// subtree (always, trivially, at depth d).
	childStride := s.strides[depth]
	sub := i / childStride // child-subtree index (prefix length depth)
	offset := i - sub*childStride
	if offset < perR {
		c := sub - group*p.A
		v.self = c*perR + offset
	}
	return v
}

// Size implements core.DepthView.
func (v *simView) Size() int { return v.sim.params.A * v.perR }

// MemberAt implements core.DepthView.
func (v *simView) MemberAt(k int) addr.Address {
	return v.sim.addrs[v.memberIndex(k)]
}

// memberIndex maps a view position to a process index.
func (v *simView) memberIndex(k int) int {
	c, j := k/v.perR, k%v.perR
	sub := v.group*v.sim.params.A + c
	return sub*v.sim.strides[v.depth] + j
}

// SelfIndex implements core.DepthView.
func (v *simView) SelfIndex() int { return v.self }

// SusceptibleAt implements core.DepthView: member k is susceptible iff the
// subtree it represents at this depth contains an interested leaf.
func (v *simView) SusceptibleAt(_ event.Event, k int) bool {
	sub := v.group*v.sim.params.A + k/v.perR
	return v.sim.run.subInterested[v.depth][sub]
}

// Rate implements core.DepthView (GETRATE): matching lines over total lines,
// which equals susceptible members over group size since every line
// contributes perR delegates.
func (v *simView) Rate(event.Event) float64 {
	hits := 0
	base := v.group * v.sim.params.A
	level := v.sim.run.subInterested[v.depth]
	for c := 0; c < v.sim.params.A; c++ {
		if level[base+c] {
			hits++
		}
	}
	return float64(hits) / float64(v.sim.params.A)
}

// MatchingSubgroups implements core.DepthView.
func (v *simView) MatchingSubgroups(event.Event) (int, bool) {
	total, selfIn := 0, false
	base := v.group * v.sim.params.A
	level := v.sim.run.subInterested[v.depth]
	ownSub := v.owner / v.sim.strides[v.depth]
	for c := 0; c < v.sim.params.A; c++ {
		if level[base+c] {
			total++
			if base+c == ownSub {
				selfIn = true
			}
		}
	}
	return total, selfIn
}

// Generation implements core.Generational: the shared run state's redraw
// counter, so per-event profiles cached during one run never leak into the
// next (the simulator reuses one event ID across runs).
func (v *simView) Generation() uint64 { return v.sim.run.gen }

// Profile implements core.MatchProfiler: one pass over the A subgroup bits,
// each synthetic "summary" consulted once and expanded to the line's perR
// members. The rate is matching lines over A — exactly Rate's expression,
// so cached and uncached values are bit-identical.
func (v *simView) Profile(_ event.Event, p *core.MatchProfile) {
	a := v.sim.params.A
	p.Ensure(a * v.perR)
	base := v.group * a
	level := v.sim.run.subInterested[v.depth]
	ownSub := v.owner / v.sim.strides[v.depth]
	hits, lines, selfIn := 0, 0, false
	for c := 0; c < a; c++ {
		if !level[base+c] {
			continue
		}
		lines++
		if base+c == ownSub {
			selfIn = true
		}
		p.SetRange(c*v.perR, (c+1)*v.perR)
		hits += v.perR
	}
	p.Hits, p.Lines, p.SelfIn = hits, lines, selfIn
	p.Rate = float64(lines) / float64(a)
	p.Cost.Evals += uint64(a)
	p.Cost.Comparisons += uint64(a)
}
