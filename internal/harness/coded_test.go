package harness

import (
	"testing"

	"pmcast/internal/event"
)

// TestCodedZeroRepairsReplaysGoldenTraces pins the r = 0 identity: with
// FECSources set but FECRepairs at zero, the coding layer must collapse
// to the exact pre-FEC wire path — no extra sections, no extra fault
// draws — so every golden trace hash replays bit for bit. This is the
// contract that lets WithRedundancy(k, 0) be a free no-op.
func TestCodedZeroRepairsReplaysGoldenTraces(t *testing.T) {
	for name, seeds := range goldenTraces {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.Fleet.FECSources = 8
		sc.Fleet.FECRepairs = 0
		for seed, want := range seeds {
			if testing.Short() && sc.Nodes > 64 && seed != 1 {
				continue
			}
			res, err := sc.Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Report.TraceSHA256; got != want {
				t.Errorf("%s seed %d with r=0 coding config: trace sha %s, golden %s — r=0 is no longer byte-identical",
					name, seed, got, want)
			}
		}
	}
}

// TestCodedDeliveryMonotone runs the coded fleet (k=8, r=2) against the
// uncoded one on the same (scenario, seed) pairs and demands redundancy
// never hurt: every (node, event) delivery the uncoded run achieved must
// also appear in the coded run — or, failing strict superset (the delayed
// revival can reshuffle who forwards what), the coded run's reliability
// must be at least the uncoded run's.
func TestCodedDeliveryMonotone(t *testing.T) {
	for _, name := range []string{"smoke16", "lossy256"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 42} {
			if testing.Short() && sc.Nodes > 64 && seed != 1 {
				continue
			}
			uncoded, err := sc.Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			coded := sc
			coded.Fleet.FECSources = 8
			coded.Fleet.FECRepairs = 2
			codedRes, err := coded.Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			if superset(codedRes.Delivered, uncoded.Delivered) {
				continue
			}
			cr, ur := codedRes.Report.MeanReliability, uncoded.Report.MeanReliability
			if cr < ur {
				t.Errorf("%s seed %d: coded run is neither a delivery superset nor reliability-monotone (coded %.6f < uncoded %.6f)",
					name, seed, cr, ur)
			}
		}
	}
}

// superset reports whether every (node, event) pair in want also appears
// in got.
func superset(got, want map[string][]event.ID) bool {
	for node, ids := range want {
		have := make(map[event.ID]struct{}, len(got[node]))
		for _, id := range got[node] {
			have[id] = struct{}{}
		}
		for _, id := range ids {
			if _, ok := have[id]; !ok {
				return false
			}
		}
	}
	return true
}
