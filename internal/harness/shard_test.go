package harness

import (
	"testing"
)

// TestChurn16kShardedRace drives the full churn16k campaign across eight
// worker goroutines under the race detector: every coordinator/worker
// barrier handoff, fabric route, cross-shard delivery and clock replay runs
// instrumented. It only buys anything when the detector is on — the
// uninstrumented build skips it and leaves behavioral coverage to the
// equivalence tests — and it pins the campaign's trace hash, so the race run
// is simultaneously a determinism check at 16k scale.
func TestChurn16kShardedRace(t *testing.T) {
	if !raceEnabled {
		t.Skip("race detector off: TestShardedTraceEquivalence covers behavior")
	}
	if testing.Short() {
		t.Skip("full 16k campaign under the race detector is minutes of wall clock")
	}
	sc, err := Lookup("churn16k")
	if err != nil {
		t.Fatal(err)
	}
	sc.Shards = 8
	res, err := sc.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	const want = "78f387805cbb45015fb8c0559f2f0cfa056781bb03b3886667f0123a89016bf7"
	if got := res.Report.TraceSHA256; got != want {
		t.Errorf("churn16k seed 1 shards 8: trace sha %s, want %s", got, want)
	}
}

// TestShardedTraceEquivalence is the sharded engine's contract test: for a
// given (scenario, seed), the merged delivery trace is byte-identical at any
// shard count. smoke16 and lossy256 carry link delays, so they genuinely
// exercise the windowed parallel path (and their hashes are additionally
// pinned in goldenTraces — the sharded run must reproduce the serial golden,
// not merely agree with itself). soak256 and noisy64 are delay-free: their
// lookahead is zero, the engine must degrade to the serial loop, and the
// report must say so (Shards == 1).
func TestShardedTraceEquivalence(t *testing.T) {
	cases := []struct {
		name    string
		sharded bool // true when the scenario has positive lookahead
	}{
		{"smoke16", true},
		{"lossy256", true},
		{"soak256", false},
		{"noisy64", false},
		// zipf64 has jittered link delays (positive lookahead) AND the
		// Zipf flux waves, so it is the equivalence check for the skewed
		// workload layer: flux replay must merge identically across shard
		// counts, and match the goldenTraces pin.
		{"zipf64", true},
	}
	for _, tc := range cases {
		base, err := Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := base.lookahead(); (got > 0) != tc.sharded {
			t.Fatalf("%s: lookahead %v, expected sharded=%v — scenario drifted under this test",
				tc.name, got, tc.sharded)
		}
		for _, seed := range []int64{1, 42} {
			if testing.Short() && (seed != 1 || base.Nodes > 64) {
				continue
			}
			want := ""
			if seeds, ok := goldenTraces[tc.name]; ok {
				want = seeds[seed]
			}
			for _, shards := range []int{1, 2, 8} {
				sc, err := Lookup(tc.name)
				if err != nil {
					t.Fatal(err)
				}
				sc.Shards = shards
				res, err := sc.Run(seed)
				if err != nil {
					t.Fatalf("%s seed %d shards %d: %v", tc.name, seed, shards, err)
				}
				wantShards := shards
				if !tc.sharded {
					wantShards = 1
				}
				if res.Report.Shards != wantShards {
					t.Errorf("%s seed %d: asked for %d shards, report says %d",
						tc.name, seed, shards, res.Report.Shards)
				}
				if want == "" {
					want = res.Report.TraceSHA256 // no golden: shards=1 run is the reference
					continue
				}
				if got := res.Report.TraceSHA256; got != want {
					t.Errorf("%s seed %d shards %d: trace sha %s, want %s — sharding changed the delivery trace",
						tc.name, seed, shards, got, want)
				}
			}
		}
	}
}
