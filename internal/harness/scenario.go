// Package harness is the deterministic scenario engine: it runs fleets of
// real node.Node runtimes on one virtual clock (internal/clock) over the
// in-memory fabric, composing loss/partition/heal schedules, node churn
// (join/crash/rejoin waves) and subscription flux into seeded campaigns.
// Each node is the same staged engine production runs concurrently, driven
// synchronously at parallelism 0 through the step-mode API — which is why
// the traces pinned in golden_test.go survive runtime refactors unchanged.
//
// Everything in a run — gossip ticks, membership digests, failure sweeps,
// delayed message deliveries, fault injections — is a callback on a single
// virtual-time event queue executed from one goroutine, so a scenario run
// with the same seed replays byte-identically: the delivery trace (who
// delivered which event at which virtual instant, in which order) is the
// reproducibility contract, and 1000-node campaigns that would take minutes
// of wall-clock finish in milliseconds.
package harness

import (
	"fmt"
	"math/rand"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/transport"
)

// Bootstrap selects how the initial fleet learns about itself.
type Bootstrap string

const (
	// BootstrapOracle seeds every node's membership with the full initial
	// fleet, as if anti-entropy had already converged — the fast start for
	// large campaigns whose subject is churn, not cold-start joining.
	BootstrapOracle Bootstrap = "oracle"
	// BootstrapJoin bootstraps through the real join protocol: every node
	// joins through node 0 and convergence happens by digest anti-entropy,
	// all in virtual time.
	BootstrapJoin Bootstrap = "join"
)

// Fleet parameterizes every node of a scenario (mirroring node.Config).
type Fleet struct {
	// Arity and Depth define the regular address space; its capacity bounds
	// the fleet plus any fresh joiners.
	Arity, Depth int
	// R, F, C are the paper's redundancy factor, gossip fanout and Pittel
	// constant.
	R, F int
	C    float64
	// Threshold, LocalDescent and LeafFloodRate enable the Section 5.3/3.2/6
	// extensions.
	Threshold     int
	LocalDescent  bool
	LeafFloodRate float64
	// GossipInterval, MembershipInterval, MembershipFanout, SuspectAfter and
	// SuspicionSweeps drive the periodic tasks (all in virtual time).
	GossipInterval     time.Duration
	MembershipInterval time.Duration
	MembershipFanout   int
	SuspectAfter       time.Duration
	SuspicionSweeps    int
	// DeliveryBuffer sizes each node's delivery channel; the engine drains
	// it after every virtual instant, so bursts rarely need more than the
	// default.
	DeliveryBuffer int
	// NoBatch disables the batched gossip pipeline fleet-wide: every gossip,
	// digest and heartbeat goes as its own envelope. Batching is
	// behavior-preserving (per-link sub-messages and fault draws are
	// identical either way), so this is the A/B knob for envelope and byte
	// accounting, not a protocol variant.
	NoBatch bool
	// MeasureWire enables sender-side encoded-byte accounting on every
	// node, feeding the report's bytes/event. Costs one pooled encode per
	// envelope; soak scenarios turn it on, reliability campaigns leave it
	// off.
	MeasureWire bool
	// FECRepairs and FECSources configure the coding layer fleet-wide
	// (node.Config.FECRepairs/FECSources): each gossip round's outgoing
	// events are grouped into generations of FECSources symbols carrying
	// FECRepairs repair symbols. 0 repairs disables coding — the exact
	// pre-FEC wire path, so seeded traces are unchanged.
	FECRepairs int
	FECSources int
	// AdaptiveFanout enables the loss-aware tuning loop fleet-wide
	// (node.Config.AdaptiveFanout): every node runs the passive per-peer
	// loss estimator and the gossip core widens round budgets and fan-out
	// toward measured loss. AdaptiveBoost and AdaptiveLossThreshold tune it
	// (0 = node defaults). Off keeps the estimator out of the build entirely
	// — seeded traces are unchanged.
	AdaptiveFanout        bool
	AdaptiveBoost         int
	AdaptiveLossThreshold float64
	// Classes partitions interests: node i subscribes to attribute "b" ==
	// i mod Classes unless SubscriptionFor overrides it, and published
	// events carry one class value.
	Classes int
}

// Scenario is one named, seeded chaos campaign: a fleet, its bootstrap, the
// ambient fault model, and a schedule of timed operations.
type Scenario struct {
	Name  string
	Fleet Fleet
	// Nodes is the initial fleet size (addresses 0 … Nodes−1 of the space).
	Nodes int
	// Bootstrap is how the fleet converges initially (default oracle).
	Bootstrap Bootstrap
	// Loss, MinDelay, MaxDelay and QueueLen configure the fabric's ambient
	// fault model (see transport.Config). Non-zero delays turn every message
	// into its own virtual-time event.
	Loss               float64
	MinDelay, MaxDelay time.Duration
	// Link configures the fabric's correlated fault model: per-link
	// Gilbert–Elliott bursty loss plus latency jitter (transport.LinkModel).
	// The zero value is disabled and leaves seeded traces untouched.
	Link     transport.LinkModel
	QueueLen int
	// Horizon is the virtual duration of the campaign.
	Horizon time.Duration
	// Shards partitions the fleet across worker goroutines in the
	// conservative parallel engine (shard.go); 1 — the default — runs the
	// classic serial loop. The merged delivery trace is byte-identical at
	// any shard count. A scenario with zero link lookahead (MinDelay and
	// JitterMin both zero) has no conservative window and silently degrades
	// to the serial loop; Report.Shards records what actually ran.
	Shards int
	// Ops is the schedule, executed at their virtual offsets.
	Ops []Op
	// SubscriptionFor overrides the modular class scheme (optional). It must
	// be deterministic; the engine re-evaluates matching against it.
	SubscriptionFor func(a addr.Address, index int) interest.Subscription
	// EventFor overrides published event content (optional): given the
	// drawn class and the engine RNG it returns the attribute map of one
	// event. Nil keeps the single-attribute {"b": class} scheme. It must
	// consume the RNG deterministically — its draws are part of the seeded
	// schedule. The high-cardinality workloads use this to publish
	// multi-attribute events against multi-attribute subscriptions.
	EventFor func(class int64, rng *rand.Rand) map[string]event.Value
	// FluxFor overrides what subscription an OpFlux wave installs
	// (optional): given the node and the drawn class it returns the new
	// interest. Nil keeps the single-class re-subscription. Must be
	// deterministic.
	FluxFor func(a addr.Address, index int, class int64) interest.Subscription
	// ClassBucketOf maps a published event's class to a popularity bucket
	// (optional). When set, the report carries a class_reliability breakdown
	// — one row per bucket — so skewed workloads can see how the tail of the
	// popularity distribution fares against the head. Must be deterministic
	// and return values in [0, NumClassBuckets).
	ClassBucketOf   func(class int64) int
	NumClassBuckets int
	// BucketLabels optionally names the buckets in the report (index =
	// bucket).
	BucketLabels []string
	// MeasureSummaryFPR maintains a shadow membership tree mirroring the
	// fleet's churn and flux, and scores every published event against it:
	// reach through the summary hierarchy vs. truly interested members. The
	// surplus is the regrouping false-positive rate
	// (summary_false_positive_rate, and per bucket in class_reliability).
	// Purely observational — the shadow tree handles no protocol traffic and
	// consumes no engine randomness, so seeded traces are unchanged.
	MeasureSummaryFPR bool
}

// OpKind enumerates schedulable operations.
type OpKind string

// The operation vocabulary of the scenario DSL.
const (
	// OpPublish publishes Count events of class Class from node Node.
	OpPublish OpKind = "publish"
	// OpCrash hard-stops Count random alive nodes (no leave message).
	OpCrash OpKind = "crash"
	// OpRejoin revives Count crashed nodes (same address, same interests)
	// through the join protocol.
	OpRejoin OpKind = "rejoin"
	// OpJoin brings Count brand-new nodes (fresh addresses) into the fleet
	// through the join protocol.
	OpJoin OpKind = "join"
	// OpSetLoss sets the fabric loss probability to Loss.
	OpSetLoss OpKind = "set-loss"
	// OpIsolate partitions Count random alive nodes from everyone.
	OpIsolate OpKind = "isolate"
	// OpHeal removes every partition rule.
	OpHeal OpKind = "heal"
	// OpFlux re-subscribes Count random alive nodes to a random class.
	OpFlux OpKind = "flux"
)

// Op is one scheduled operation.
type Op struct {
	// At is the virtual offset from scenario start.
	At   time.Duration
	Kind OpKind
	// Node selects a publisher index; −1 picks a deterministic random
	// publisher among never-crashed alive nodes.
	Node int
	// Count scales wave-style operations (events, victims, joiners).
	Count int
	// Class is the published/re-subscribed class; −1 picks at random.
	Class int64
	// Loss is the new loss probability for OpSetLoss.
	Loss float64
}

// The fluent schedule builders below make scenario definitions read like a
// timeline; each returns the scenario for chaining.

// PublishAt schedules count publishes of class from node (−1 = random).
func (s *Scenario) PublishAt(at time.Duration, node, count int, class int64) *Scenario {
	s.Ops = append(s.Ops, Op{At: at, Kind: OpPublish, Node: node, Count: count, Class: class})
	return s
}

// StreamAt schedules a sustained publish stream: count events of class
// (−1 = random) from node (−1 = random) every period, from start until
// before end — the workload shape of the soak scenarios. It expands to plain
// publish ops, so the engine needs no new machinery and the schedule stays
// inspectable in the report.
func (s *Scenario) StreamAt(start, end, period time.Duration, node, count int, class int64) *Scenario {
	for at := start; at < end; at += period {
		s.PublishAt(at, node, count, class)
	}
	return s
}

// CrashAt schedules a crash wave of count nodes.
func (s *Scenario) CrashAt(at time.Duration, count int) *Scenario {
	s.Ops = append(s.Ops, Op{At: at, Kind: OpCrash, Count: count})
	return s
}

// RejoinAt schedules a rejoin wave of count previously crashed nodes.
func (s *Scenario) RejoinAt(at time.Duration, count int) *Scenario {
	s.Ops = append(s.Ops, Op{At: at, Kind: OpRejoin, Count: count})
	return s
}

// JoinAt schedules count fresh joiners.
func (s *Scenario) JoinAt(at time.Duration, count int) *Scenario {
	s.Ops = append(s.Ops, Op{At: at, Kind: OpJoin, Count: count})
	return s
}

// SetLossAt schedules a change of the ambient loss probability.
func (s *Scenario) SetLossAt(at time.Duration, p float64) *Scenario {
	s.Ops = append(s.Ops, Op{At: at, Kind: OpSetLoss, Loss: p})
	return s
}

// IsolateAt schedules a partition isolating count random nodes.
func (s *Scenario) IsolateAt(at time.Duration, count int) *Scenario {
	s.Ops = append(s.Ops, Op{At: at, Kind: OpIsolate, Count: count})
	return s
}

// HealAt schedules the removal of every partition rule.
func (s *Scenario) HealAt(at time.Duration) *Scenario {
	s.Ops = append(s.Ops, Op{At: at, Kind: OpHeal})
	return s
}

// FluxAt schedules a subscription-flux wave over count random nodes.
func (s *Scenario) FluxAt(at time.Duration, count int) *Scenario {
	s.Ops = append(s.Ops, Op{At: at, Kind: OpFlux, Count: count})
	return s
}

// withDefaults fills unset knobs, mirroring node.Config's defaults.
func (s Scenario) withDefaults() (Scenario, error) {
	f := &s.Fleet
	if f.Arity <= 0 || f.Depth <= 0 {
		return s, fmt.Errorf("harness: scenario %q needs a positive Arity and Depth", s.Name)
	}
	if f.R <= 0 {
		f.R = 2
	}
	if f.F <= 0 {
		f.F = 3
	}
	if f.C == 0 {
		f.C = 3
	}
	if f.GossipInterval <= 0 {
		f.GossipInterval = 25 * time.Millisecond
	}
	if f.MembershipInterval <= 0 {
		f.MembershipInterval = 4 * f.GossipInterval
	}
	if f.MembershipFanout <= 0 {
		f.MembershipFanout = 2
	}
	if f.SuspectAfter <= 0 {
		f.SuspectAfter = 20 * f.MembershipInterval
	}
	if f.SuspicionSweeps <= 0 {
		f.SuspicionSweeps = 1
	}
	if f.DeliveryBuffer <= 0 {
		f.DeliveryBuffer = 1024
	}
	if f.Classes <= 0 {
		f.Classes = 2
	}
	if s.Nodes <= 0 {
		return s, fmt.Errorf("harness: scenario %q needs a positive node count", s.Name)
	}
	if s.Bootstrap == "" {
		s.Bootstrap = BootstrapOracle
	}
	if s.QueueLen <= 0 {
		// Inbox channels are allocated eagerly per endpoint, so the queue
		// bound is fleet-sized RAM and zeroing cost up front (n·QueueLen
		// envelope slots — ~780MB at 1024×8192, a fifth of churn1024's wall
		// clock in memclr alone). The engine pumps every inbox to
		// quiescence at each virtual instant, so observed depths stay far
		// below even this default; campaigns that want more headroom set
		// QueueLen explicitly.
		s.QueueLen = 1024
	}
	if s.Horizon <= 0 {
		s.Horizon = 2 * time.Second
	}
	if s.Shards <= 0 {
		s.Shards = 1
	}
	return s, nil
}

// lookahead is the conservative-engine window length: the minimum virtual
// duration any event executed now needs before its consequences can come due.
// Every fabric delivery waits at least MinDelay plus JitterMin, and every
// periodic-task chain reschedules at least its own interval ahead, so during
// a window of this length the due-event set is fixed at the window's start.
// Zero (a fabric that can deliver synchronously) means no window exists and
// the engine must run serially.
func (s *Scenario) lookahead() time.Duration {
	var link time.Duration
	if s.MaxDelay > 0 {
		link = s.MinDelay
	}
	if s.Link.JitterMax > 0 {
		link += s.Link.JitterMin
	}
	if link <= 0 {
		return 0
	}
	la := link
	for _, d := range []time.Duration{
		s.Fleet.GossipInterval,
		s.Fleet.MembershipInterval,
		s.Fleet.SuspectAfter / 2,
	} {
		if d < la {
			la = d
		}
	}
	return la
}

// subscriptionFor evaluates the scenario's interest scheme for one node.
func (s *Scenario) subscriptionFor(a addr.Address, index int) interest.Subscription {
	if s.SubscriptionFor != nil {
		return s.SubscriptionFor(a, index)
	}
	return interest.NewSubscription().
		Where("b", interest.EqInt(int64(index%s.Fleet.Classes)))
}
