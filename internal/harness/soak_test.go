package harness

import (
	"fmt"
	"testing"

	"pmcast/internal/transport"
)

// deliveredSets reindexes a run's deliveries as event → set of delivering
// nodes, the unit the batching equivalence property compares.
func deliveredSets(res *Result) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for key, ids := range res.Delivered {
		for _, id := range ids {
			ev := fmt.Sprintf("%s#%d", id.Origin, id.Seq)
			if out[ev] == nil {
				out[ev] = make(map[string]bool)
			}
			out[ev][key] = true
		}
	}
	return out
}

// runPair executes the same (scenario, seed) with batching on and off.
func runPair(t *testing.T, sc Scenario, seed int64) (batched, plain *Result) {
	t.Helper()
	batchedSc := sc
	batched, err := batchedSc.Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	plainSc := sc
	plainSc.Fleet.NoBatch = true
	plain, err = plainSc.Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	return batched, plain
}

// TestBatchingEquivalence is the batching contract end to end: the same
// (scenario, seed) with the batched pipeline on versus off yields the same
// per-event delivery outcomes — only envelope counts may differ. Batching
// groups a round's sends per peer without changing their per-link content
// or order, and the fabric draws loss per sub-message from per-link
// streams, so the property holds by construction on a delay-free fabric.
// It is exact ONLY there: a batch draws one delivery delay where the same
// messages unbatched draw one each (a datagram arrives whole — the PR 7
// fabric fix), so on a delayed fabric the two modes consume the link
// streams at different positions and outcomes legitimately diverge. The
// test therefore runs the smoke and lossy-fleet campaigns with their
// delays stripped, and layers a Gilbert–Elliott chain on top of the
// ambient Bernoulli loss — chain transitions step per sub-message, so the
// equivalence covers the bursty draws too.
func TestBatchingEquivalence(t *testing.T) {
	scenarios := []func() Scenario{Smoke16, Lossy256}
	for _, mk0 := range scenarios {
		mk := func() Scenario {
			sc := mk0()
			sc.MinDelay, sc.MaxDelay = 0, 0
			sc.Link = transport.LinkModel{BadLoss: 1, PGB: 0.02, PBG: 0.20}
			return sc
		}
		sc := mk()
		t.Run(sc.Name, func(t *testing.T) {
			if testing.Short() && sc.Nodes > 64 {
				t.Skip("large equivalence pair skipped in -short")
			}
			for seed := int64(1); seed <= 3; seed++ {
				batched, plain := runPair(t, mk(), seed)
				if !batched.Report.Batching || plain.Report.Batching {
					t.Fatalf("mode flags wrong: %v/%v", batched.Report.Batching, plain.Report.Batching)
				}
				bs, ps := deliveredSets(batched), deliveredSets(plain)
				if len(bs) != len(ps) {
					t.Fatalf("seed %d: %d delivered events batched vs %d unbatched",
						seed, len(bs), len(ps))
				}
				for ev, set := range bs {
					other := ps[ev]
					if len(other) != len(set) {
						t.Fatalf("seed %d event %s: %d deliverers batched vs %d unbatched",
							seed, ev, len(set), len(other))
					}
					for key := range set {
						if !other[key] {
							t.Fatalf("seed %d event %s: %s delivered only when batched", seed, ev, key)
						}
					}
				}
				if batched.Report.Envelopes >= plain.Report.Envelopes {
					t.Errorf("seed %d: batching sent %d envelopes, unbatched %d — no aggregation",
						seed, batched.Report.Envelopes, plain.Report.Envelopes)
				}
			}
		})
	}
}

// TestSoak64Throughput exercises the sustained-traffic workload class: the
// soak report must carry the throughput metrics, batching must strictly
// reduce envelopes/event at the same seed, and the run must replay
// byte-identically.
func TestSoak64Throughput(t *testing.T) {
	batched, plain := runPair(t, Soak64(), 3)
	rep := batched.Report
	t.Logf("soak64: %.0f events/s, %.1f envelopes/event, %.0f bytes/event (unbatched: %.1f env/event)",
		rep.EventsPerSec, rep.EnvelopesPerEvent, rep.BytesPerEvent, plain.Report.EnvelopesPerEvent)
	if rep.Published < 300 {
		t.Errorf("published %d events, want a sustained stream of ≥ 300", rep.Published)
	}
	if rep.EventsPerSec <= 0 || rep.EnvelopesPerEvent <= 0 || rep.BytesPerEvent <= 0 {
		t.Errorf("throughput metrics missing: %+v", rep)
	}
	if rep.EnvelopesPerEvent >= plain.Report.EnvelopesPerEvent {
		t.Errorf("envelopes/event %.1f not below the unbatched %.1f",
			rep.EnvelopesPerEvent, plain.Report.EnvelopesPerEvent)
	}
	if rep.MeanReliability < 0.9 {
		t.Errorf("mean reliability %.3f below 0.9 under soak churn", rep.MeanReliability)
	}

	replay, err := Soak64().Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Report.TraceSHA256 != rep.TraceSHA256 {
		t.Errorf("soak64 same-seed replay diverges: %s vs %s", replay.Report.TraceSHA256, rep.TraceSHA256)
	}
}

// TestSoak256Acceptance is the PR's acceptance criterion at full size: the
// soak256 report is deterministic per seed, carries events/sec,
// envelopes/event and bytes/event, and batching strictly lowers
// envelopes/event versus a batching-disabled run at the same seed. The
// soak fabrics are delay-free, so the equivalence is exact: batched and
// unbatched runs produce byte-identical traces.
func TestSoak256Acceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size soak skipped in -short")
	}
	const seed = 7
	batched, plain := runPair(t, Soak256(), seed)
	rep := batched.Report
	t.Logf("soak256: wall=%dms %.0f events/s, %.1f env/event vs %.1f unbatched, %.0f bytes/event",
		rep.WallMillis, rep.EventsPerSec, rep.EnvelopesPerEvent,
		plain.Report.EnvelopesPerEvent, rep.BytesPerEvent)
	if rep.EventsPerSec <= 0 || rep.EnvelopesPerEvent <= 0 || rep.BytesPerEvent <= 0 {
		t.Errorf("throughput metrics missing: %+v", rep)
	}
	if rep.EnvelopesPerEvent >= plain.Report.EnvelopesPerEvent {
		t.Errorf("envelopes/event %.2f not strictly below unbatched %.2f",
			rep.EnvelopesPerEvent, plain.Report.EnvelopesPerEvent)
	}
	if rep.TraceSHA256 != plain.Report.TraceSHA256 {
		t.Errorf("delay-free soak traces diverge across modes: %s vs %s",
			rep.TraceSHA256, plain.Report.TraceSHA256)
	}
	replay, err := Soak256().Run(seed)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Report.TraceSHA256 != rep.TraceSHA256 {
		t.Errorf("soak256 same-seed replay diverges")
	}
}
