//go:build race

package harness

// raceEnabled reports that this test binary runs under the race detector,
// whose instrumentation slows execution by an order of magnitude — wall-
// clock budgets are asserted only in uninstrumented builds.
const raceEnabled = true
