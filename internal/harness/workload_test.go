package harness

import (
	"math"
	"math/rand"
	"testing"

	"pmcast/internal/addr"
)

func testWorkload(alpha float64, seed int64) *ZipfWorkload {
	return NewZipfWorkload(ZipfWorkload{
		Topics:   512,
		Alpha:    alpha,
		MeanSubs: 24,
		MaxSubs:  128,
		Locality: 0.8,
		Arity:    4,
		Seed:     seed,
	})
}

// TestZipfWorkloadDeterministic: every draw is a pure function of
// (Seed, index, wave) — two independently constructed workloads agree
// draw for draw, and a different seed actually changes the draws.
func TestZipfWorkloadDeterministic(t *testing.T) {
	a, b := testWorkload(1.0, 7), testWorkload(1.0, 7)
	other := testWorkload(1.0, 8)
	differs := false
	for index := 0; index < 64; index++ {
		for wave := int64(0); wave < 3; wave++ {
			ta := a.topicsFor(index, index%4, wave)
			tb := b.topicsFor(index, index%4, wave)
			if len(ta) != len(tb) {
				t.Fatalf("index %d wave %d: %d topics vs %d", index, wave, len(ta), len(tb))
			}
			for i := range ta {
				if ta[i] != tb[i] {
					t.Fatalf("index %d wave %d topic %d: %q vs %q", index, wave, i, ta[i], tb[i])
				}
			}
			to := other.topicsFor(index, index%4, wave)
			if len(to) != len(ta) {
				differs = true
			} else {
				for i := range ta {
					if to[i] != ta[i] {
						differs = true
						break
					}
				}
			}
		}
	}
	if !differs {
		t.Error("seeds 7 and 8 drew identical topic sets everywhere — the seed is not salting the draw")
	}
}

// TestZipfRankFrequencySlope: the sampler's empirical rank-frequency curve
// is a power law with the configured exponent — the log-log slope over the
// head ranks fits −α within tolerance.
func TestZipfRankFrequencySlope(t *testing.T) {
	for _, alpha := range []float64{0.5, 1.0} {
		w := testWorkload(alpha, 1)
		rng := rand.New(rand.NewSource(99))
		const draws = 200_000
		freq := make([]int, w.Topics)
		for i := 0; i < draws; i++ {
			freq[w.rankFor(rng.Float64())]++
		}
		const head = 32
		var n, sx, sy, sxx, sxy float64
		for k := 0; k < head; k++ {
			if freq[k] == 0 {
				t.Fatalf("alpha=%g: head rank %d drew zero samples", alpha, k)
			}
			x, y := math.Log(float64(k+1)), math.Log(float64(freq[k]))
			n++
			sx += x
			sy += y
			sxx += x * x
			sxy += x * y
		}
		slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
		if math.Abs(slope+alpha) > 0.1 {
			t.Errorf("alpha=%g: rank-frequency slope %.3f, want %.3f ± 0.1", alpha, slope, -alpha)
		}
	}
}

// TestZipfFluxWaveInversion: odd waves are the flash-crowd flip — the
// popularity ranking inverts, so the mean drawn rank jumps from the head
// of the vocabulary to its tail.
func TestZipfFluxWaveInversion(t *testing.T) {
	w := NewZipfWorkload(ZipfWorkload{
		Topics: 512, Alpha: 1.0, MeanSubs: 12, MaxSubs: 32, Locality: 0, Arity: 4, Seed: 3,
	})
	meanRank := func(wave int64) float64 {
		total, count := 0, 0
		for index := 0; index < 256; index++ {
			for _, name := range w.topicsFor(index, 0, wave) {
				rank := 0
				for _, c := range name[1:] {
					rank = rank*10 + int(c-'0')
				}
				total += rank
				count++
			}
		}
		return float64(total) / float64(count)
	}
	even, odd := meanRank(0), meanRank(1)
	mid := float64(w.Topics) / 2
	if !(even < mid && odd > mid) {
		t.Errorf("mean drawn rank even-wave %.1f, odd-wave %.1f — odd waves should invert the ranking around %.0f",
			even, odd, mid)
	}
}

// TestZipf1MCampaign is the zipf1m acceptance gate: the fleet's wave-0
// subscription load exceeds one million, the campaign completes under the
// sharded engine at ≥0.999 reliability, and the PR-10 report fields —
// class_reliability, summary_false_positive_rate, fold_recompiles — are
// populated. The full campaign is ~80s of wall clock, so -short only
// checks the subscription count.
func TestZipf1MCampaign(t *testing.T) {
	w := NewZipfWorkload(zipf1MWorkload())
	space, err := addr.NewSpace(4, 4, 4, 4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Lookup("zipf1m")
	if err != nil {
		t.Fatal(err)
	}
	if total := w.TotalSubscriptions(sc.Nodes, space); total < 1_000_000 {
		t.Fatalf("zipf1m fleet carries %d subscriptions, want ≥ 1,000,000", total)
	}
	if testing.Short() {
		t.Skip("full 4096-node zipf1m campaign is ~80s of wall clock")
	}
	res, err := sc.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.MeanReliability < 0.999 {
		t.Errorf("mean reliability %.4f < 0.999", rep.MeanReliability)
	}
	if rep.MinReliability < 0.999 {
		t.Errorf("min reliability %.4f < 0.999", rep.MinReliability)
	}
	if rep.FoldRecomputes == 0 {
		t.Error("fold_recompiles not populated")
	}
	if rep.SummaryFPRate <= 0 || rep.SummaryFPRate >= 1 {
		t.Errorf("summary_false_positive_rate %.4f, want in (0, 1)", rep.SummaryFPRate)
	}
	if len(rep.ClassReliability) == 0 {
		t.Error("class_reliability not populated")
	}
	for _, cr := range rep.ClassReliability {
		if cr.Audienced > 0 && cr.MeanReliability < 0.999 {
			t.Errorf("popularity bucket %d (%s): reliability %.4f < 0.999",
				cr.Bucket, cr.Label, cr.MeanReliability)
		}
	}
}
