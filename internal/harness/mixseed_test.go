package harness

import "testing"

// TestMixSeedStreamsDistinct audits the per-node seed mixer for stream
// collisions across (seed, index, gen) at 64k-fleet scale — the same defect
// family as the PR 7 fabric-seed 0/1 collision. The mixer is a splitmix64
// finalizer over seed + index·A + gen·B with odd constants A, B; the
// finalizer is bijective, so a collision requires two tuples with equal
// pre-mix sums, i.e. Δindex·A ≡ −Δgen·B (mod 2^64) — no such relation
// exists for the bounded Δ this harness can produce, and this test proves
// it empirically over every tuple a 64k campaign with churn actually uses.
func TestMixSeedStreamsDistinct(t *testing.T) {
	if testing.Short() {
		t.Skip("property sweep over 64k indices is not a -short test")
	}
	seeds := []int64{0, 1, 42, -1, 20260727}
	const maxIndex = 1 << 16
	const maxGen = 3
	seen := make(map[int64][3]int64, len(seeds)*maxIndex*maxGen/8)
	for _, seed := range seeds {
		for gen := 1; gen <= maxGen; gen++ {
			for index := 0; index < maxIndex; index++ {
				z := mixSeed(seed, index, gen)
				if prev, dup := seen[z]; dup {
					t.Fatalf("mixSeed collision: (seed=%d index=%d gen=%d) and (seed=%d index=%d gen=%d) both map to %d",
						seed, index, gen, prev[0], prev[1], prev[2], z)
				}
				seen[z] = [3]int64{seed, int64(index), int64(gen)}
			}
		}
	}
	// The z==0 → 1 pinch is the one intentional non-bijection (rand.NewSource
	// treats 0 specially); make sure it cannot silently alias by checking the
	// sentinel appears at most once above.
}
