package harness

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/transport"
)

// Scenarios returns the named scenario catalog — the test matrix the chaos
// CLI and the scheduled CI suite run. Each call builds fresh values, so
// callers may mutate them freely.
func Scenarios() map[string]Scenario {
	return map[string]Scenario{
		"smoke16":     Smoke16(),
		"parity64":    Parity64(),
		"lossy256":    Lossy256(),
		"churn1024":   Churn1024(),
		"soak64":      Soak64(),
		"frontier64":  Frontier64(),
		"soak256":     Soak256(),
		"manyattr512": ManyAttr512(),
		"noisy64":     Noisy64(),
		"noisy256":    Noisy256(),
		"bursty1024":  Bursty1024(),
		"soak4k":      Soak4k(),
		"churn16k":    Churn16k(),
		"soak64k":     Soak64k(),
		"zipf64":      Zipf64(),
		"zipf1m":      Zipf1M(),
	}
}

// Lookup resolves a named scenario.
func Lookup(name string) (Scenario, error) {
	s, ok := Scenarios()[name]
	if !ok {
		return Scenario{}, fmt.Errorf("harness: unknown scenario %q (have %v)", name, ScenarioNames())
	}
	return s, nil
}

// ScenarioNames lists the catalog in stable order.
func ScenarioNames() []string {
	names := make([]string, 0, 4)
	for name := range Scenarios() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Smoke16 is the quick everything-once campaign: a 16-node fleet that
// joins from cold, suffers one crash wave and a brief partition, and keeps
// publishing throughout. It runs in a few milliseconds of wall clock.
func Smoke16() Scenario {
	s := Scenario{
		Name: "smoke16",
		Fleet: Fleet{
			Arity: 4, Depth: 2,
			R: 2, F: 3, C: 3,
			GossipInterval:     10 * time.Millisecond,
			MembershipInterval: 20 * time.Millisecond,
			SuspectAfter:       200 * time.Millisecond,
			Classes:            2,
		},
		Nodes:     16,
		Bootstrap: BootstrapJoin,
		MinDelay:  200 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
		Horizon:   3500 * time.Millisecond,
	}
	// Publishes sit outside the partition window: events gossiped while
	// their publisher (or a subscriber) is isolated exhaust their round
	// budgets against a wall, which is chaos worth measuring — but the
	// smoke campaign asserts clean-path reliability.
	s.PublishAt(800*time.Millisecond, 0, 2, -1).
		IsolateAt(1*time.Second, 2).
		HealAt(1300*time.Millisecond).
		PublishAt(1800*time.Millisecond, -1, 2, -1).
		CrashAt(2*time.Second, 2).
		PublishAt(2600*time.Millisecond, -1, 2, -1)
	return s
}

// Parity64 is the transport-parity contract of PR 1 re-expressed as a
// harness scenario: the regular 8×8 tree whose top-level subtrees alternate
// interest classes (even first digit wants b=0, odd wants b=1), with node
// 0.0 publishing two events of each class. Its ground truth is exact:
// every node delivers precisely its class (see internal/node/parity_test.go).
func Parity64() Scenario {
	s := Scenario{
		Name: "parity64",
		Fleet: Fleet{
			Arity: 8, Depth: 2,
			R: 2, F: 5, C: 4,
			GossipInterval:     10 * time.Millisecond,
			MembershipInterval: 15 * time.Millisecond,
			SuspectAfter:       time.Hour, // no churn here: detection off
			Classes:            2,
		},
		Nodes:     64,
		Bootstrap: BootstrapJoin,
		MinDelay:  100 * time.Microsecond,
		MaxDelay:  1 * time.Millisecond,
		Horizon:   6 * time.Second,
		SubscriptionFor: func(a addr.Address, _ int) interest.Subscription {
			return interest.NewSubscription().
				Where("b", interest.EqInt(int64(a.Digit(1)%2)))
		},
	}
	// Seq 1..4 from node 0.0, classes alternating 0,1,0,1 — the same ground
	// truth the cross-fabric parity test asserts.
	s.PublishAt(3*time.Second, 0, 1, 0).
		PublishAt(3*time.Second+10*time.Millisecond, 0, 1, 1).
		PublishAt(3*time.Second+20*time.Millisecond, 0, 1, 0).
		PublishAt(3*time.Second+30*time.Millisecond, 0, 1, 1)
	return s
}

// Lossy256 stresses the redundancy/forwarding trade-off: 256 nodes under
// 15% ambient loss and jittered delays, with partitions, subscription flux
// and a crash wave mid-campaign.
func Lossy256() Scenario {
	s := Scenario{
		Name: "lossy256",
		Fleet: Fleet{
			Arity: 4, Depth: 4,
			R: 2, F: 5, C: 4,
			GossipInterval:     20 * time.Millisecond,
			MembershipInterval: 80 * time.Millisecond,
			SuspectAfter:       500 * time.Millisecond,
			Classes:            4,
		},
		Nodes:     256,
		Bootstrap: BootstrapOracle,
		Loss:      0.15,
		MinDelay:  500 * time.Microsecond,
		MaxDelay:  5 * time.Millisecond,
		Horizon:   2200 * time.Millisecond,
		// Interests cluster by top-level subtree — the deployment the
		// paper's hierarchical addressing is designed around — so subtree
		// summaries stay tight; the flux wave then measures what interest
		// drift does to them.
		SubscriptionFor: func(a addr.Address, _ int) interest.Subscription {
			return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%4)))
		},
	}
	// Publishes land outside the partition window (events gossiped against a
	// partition exhaust their budgets and die — that failure mode is
	// lossy-and-partitioned chaos, measured by min reliability, while the
	// scheduled publishes measure loss resilience).
	s.PublishAt(100*time.Millisecond, -1, 4, -1).
		IsolateAt(300*time.Millisecond, 8).
		FluxAt(400*time.Millisecond, 16).
		HealAt(650*time.Millisecond).
		PublishAt(850*time.Millisecond, -1, 4, -1).
		CrashAt(1*time.Second, 16).
		PublishAt(1500*time.Millisecond, -1, 4, -1)
	return s
}

// Soak64 is the quick sustained-throughput campaign: four fixed publishers
// spread across the tree's top-level subtrees emit a steady event stream
// under mild ambient loss and a small crash wave. Wire accounting is on, so
// its report carries events/sec, envelopes/event and bytes/event — the
// workload the batched gossip pipeline is measured by, at a size that runs
// in well under a second of wall clock.
func Soak64() Scenario {
	s := Scenario{
		Name: "soak64",
		Fleet: Fleet{
			Arity: 4, Depth: 3,
			R: 2, F: 3, C: 3,
			GossipInterval:     20 * time.Millisecond,
			MembershipInterval: 100 * time.Millisecond,
			SuspectAfter:       600 * time.Millisecond,
			Classes:            4,
			MeasureWire:        true,
		},
		Nodes:     64,
		Bootstrap: BootstrapOracle,
		Loss:      0.01,
		QueueLen:  2048,
		Horizon:   1300 * time.Millisecond,
		SubscriptionFor: func(a addr.Address, _ int) interest.Subscription {
			return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%4)))
		},
	}
	// Four publishers, one per top-level subtree, each publishing two events
	// every 20ms — offset by 5ms so their rounds interleave.
	for k, idx := range []int{0, 16, 32, 48} {
		off := time.Duration(k) * 5 * time.Millisecond
		s.StreamAt(100*time.Millisecond+off, 1100*time.Millisecond, 20*time.Millisecond, idx, 2, -1)
	}
	s.CrashAt(500*time.Millisecond, 4)
	return s
}

// Frontier64 is Soak64 without its crash wave: the base campaign of the
// coded-gossip frontier sweep (see internal/experiments). Loss is the
// sweep's independent variable, so the churn soak64 uses to exercise
// membership is removed — a node crashing mid-stream forfeits its whole
// tail of deliveries, a catastrophic variance term orthogonal to the
// loss/redundancy trade-off being measured.
func Frontier64() Scenario {
	s := Soak64()
	s.Name = "frontier64"
	kept := s.Ops[:0]
	for _, op := range s.Ops {
		if op.Kind != OpCrash {
			kept = append(kept, op)
		}
	}
	s.Ops = kept
	return s
}

// Soak256 is the sustained-throughput acceptance campaign: a 256-node fleet
// under ambient loss and churn, with eight fixed publishers emitting a
// steady multi-class event stream for two virtual seconds. The batched
// pipeline's envelope aggregation is the subject: the same (seed, schedule)
// with Fleet.NoBatch set replays the same per-event delivery outcomes with
// strictly more envelopes — compare the two reports' envelopes/event.
func Soak256() Scenario {
	s := Scenario{
		Name: "soak256",
		Fleet: Fleet{
			Arity: 4, Depth: 4,
			R: 2, F: 4, C: 3,
			GossipInterval:     20 * time.Millisecond,
			MembershipInterval: 100 * time.Millisecond,
			SuspectAfter:       600 * time.Millisecond,
			Classes:            4,
			MeasureWire:        true,
		},
		Nodes:     256,
		Bootstrap: BootstrapOracle,
		Loss:      0.02,
		QueueLen:  2048,
		Horizon:   2600 * time.Millisecond,
		// Interest locality by top-level subtree, as in the other fleet-scale
		// campaigns.
		SubscriptionFor: func(a addr.Address, _ int) interest.Subscription {
			return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%4)))
		},
	}
	// Eight publishers, two per top-level subtree, each publishing two
	// events every 20ms from t=200ms to t=2.2s (~800 events), staggered by
	// 2ms so rounds interleave rather than synchronize.
	for k, idx := range []int{0, 17, 64, 81, 128, 145, 192, 209} {
		off := time.Duration(k) * 2 * time.Millisecond
		s.StreamAt(200*time.Millisecond+off, 2200*time.Millisecond, 20*time.Millisecond, idx, 2, -1)
	}
	// Churn mid-stream: a crash wave, an interest-flux wave, a partial
	// rejoin — throughput must be sustained through membership movement.
	s.CrashAt(900*time.Millisecond, 16).
		FluxAt(1200*time.Millisecond, 16).
		RejoinAt(1700*time.Millisecond, 8)
	return s
}

// Noisy64 is the quick bursty-link campaign and the base of the
// adaptive-vs-fixed ablation (internal/experiments): Frontier64's sustained
// stream, but the ambient Bernoulli loss replaced by per-link
// Gilbert–Elliott chains — ~9% stationary loss arriving in bursts of mean
// length 5, the regime where a uniform loss assumption under-budgets some
// links and over-budgets others. Adaptation is off here; the ablation turns
// it on (and raises fixed fan-out for the comparison arm) scenario-side.
func Noisy64() Scenario {
	s := Frontier64()
	s.Name = "noisy64"
	s.Loss = 0
	s.Link = transport.LinkModel{
		BadLoss: 1,
		PGB:     0.02, // enter a burst every ~50 messages
		PBG:     0.20, // mean burst length 5; stationary loss 0.02/0.22 ≈ 9.1%
	}
	// Frontier64's 200ms post-stream tail is tighter than the depth
	// budgets' worst-case descent, so with it the campaign measures horizon
	// truncation, not loss: every fan-out variant loses its last events'
	// deep deliveries regardless of how robustly they gossip. The ablation
	// needs reliability differences to be loss-driven, so give the tail
	// enough rounds for any arm's full descent.
	s.Horizon = 1900 * time.Millisecond
	return s
}

// Noisy256 is the fleet-scale bursty-link campaign: 256 nodes whose links
// run Gilbert–Elliott chains (~9% stationary loss in mean-length-5 bursts)
// plus per-link latency jitter, with eight publishers streaming through a
// mid-run crash wave. Adaptive fan-out is on: the report's reliability,
// bytes/event and adaptive_* fields are the loss-aware tuning loop's
// headline numbers under correlated loss.
func Noisy256() Scenario {
	s := Soak256()
	s.Name = "noisy256"
	s.Fleet.AdaptiveFanout = true
	s.Loss = 0
	s.Link = transport.LinkModel{
		BadLoss:   1,
		PGB:       0.02,
		PBG:       0.20,
		JitterMin: 200 * time.Microsecond,
		JitterMax: 3 * time.Millisecond,
	}
	return s
}

// Bursty1024 is the scale campaign under correlated loss: Churn1024's fleet
// and churn schedule, with the ambient 2% Bernoulli loss replaced by
// deeper Gilbert–Elliott bursts (~9% stationary loss, mean burst length 10
// — a link that goes bad stays bad for most of a gossip round's fan-out).
// Adaptive fan-out is on and wire accounting measures what the adaptation
// spends; jitter is left off so the campaign stays delay-free and fast at
// 1024 nodes.
func Bursty1024() Scenario {
	s := Churn1024()
	s.Name = "bursty1024"
	s.Fleet.AdaptiveFanout = true
	s.Fleet.MeasureWire = true
	s.Loss = 0
	s.Link = transport.LinkModel{
		BadLoss: 1,
		PGB:     0.01,
		PBG:     0.10,
	}
	return s
}

// Soak4k is the entry-level sharded-core campaign: a 4096-node fleet (the
// regular 4^6 tree) under ambient loss and jittered per-link delays, with a
// publish wave on each side of a 64-node crash. The jitter matters: every
// delivery lands at its own virtual instant, which is exactly the regime
// where the serial loop's fleet-wide pump per instant goes quadratic — the
// sharded engine pumps only the nodes an instant touched, so this campaign
// is the smallest member of the bench sweep's shards=1 vs shards=8
// comparison.
func Soak4k() Scenario {
	s := Scenario{
		Name: "soak4k",
		Fleet: Fleet{
			Arity: 4, Depth: 6,
			R: 2, F: 4, C: 3,
			GossipInterval:     40 * time.Millisecond,
			MembershipInterval: 300 * time.Millisecond,
			SuspectAfter:       900 * time.Millisecond,
			Classes:            4,
			DeliveryBuffer:     256,
		},
		Nodes:     4096,
		Bootstrap: BootstrapOracle,
		Loss:      0.01,
		MinDelay:  500 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
		QueueLen:  256,
		Horizon:   2000 * time.Millisecond,
		Shards:    8,
		SubscriptionFor: func(a addr.Address, _ int) interest.Subscription {
			return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%4)))
		},
	}
	s.PublishAt(200*time.Millisecond, -1, 4, -1).
		CrashAt(500*time.Millisecond, 64).
		PublishAt(900*time.Millisecond, -1, 4, -1)
	return s
}

// Churn16k is the bench sweep's headline campaign: a 16384-node fleet (the
// regular 4^7 tree) with jittered delays, a 256-node crash wave detected and
// expelled mid-run, a partial rejoin, and publish waves probing the healthy,
// wounded and healed fleet. Between the membership beacons and the gossip
// fan-out, hundreds of thousands of deliveries each occupy their own jittered
// instant — the serial loop pays a fleet-wide pump for every one of them,
// the sharded engine pays for the touched node only, and the gap between
// those two is BENCH_pr8.json's speedup headline.
func Churn16k() Scenario {
	s := Scenario{
		Name: "churn16k",
		Fleet: Fleet{
			Arity: 4, Depth: 7,
			R: 2, F: 4, C: 3,
			// 25ms rounds: a depth-7 descent takes ~40 gossip rounds, so the
			// publish waves need round throughput, not wire throughput — a
			// shorter round costs nothing per-round (gossip only sends when
			// events are buffered) but halves the virtual time each wave
			// needs to reach the whole audience.
			GossipInterval:     25 * time.Millisecond,
			MembershipInterval: 400 * time.Millisecond,
			SuspectAfter:       1200 * time.Millisecond,
			Classes:            4,
			DeliveryBuffer:     256,
		},
		Nodes:     16384,
		Bootstrap: BootstrapOracle,
		Loss:      0.01,
		MinDelay:  1 * time.Millisecond,
		MaxDelay:  4 * time.Millisecond,
		QueueLen:  256,
		Horizon:   2500 * time.Millisecond,
		Shards:    8,
		SubscriptionFor: func(a addr.Address, _ int) interest.Subscription {
			return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%4)))
		},
	}
	// The crash wave lands at 600ms and is expelled by ~2.4s (deadline
	// 1200ms, sweeps every 600ms); rejoins follow at 1.4s. Publishes probe
	// the healthy fleet, the fleet with 256 undetected corpses in its
	// views, and the post-rejoin fleet — each with enough rounds left
	// before the horizon for a full depth-7 descent.
	s.PublishAt(200*time.Millisecond, -1, 4, -1).
		CrashAt(600*time.Millisecond, 256).
		PublishAt(900*time.Millisecond, -1, 4, -1).
		RejoinAt(1400*time.Millisecond, 128).
		PublishAt(1600*time.Millisecond, -1, 4, -1)
	return s
}

// Soak64k is the scale-ceiling campaign ROADMAP item 1 asked for: 65536
// nodes — the regular 4^8 tree, two orders of magnitude past the paper's own
// evaluation — publishing four event waves through interest-clustered
// subtrees. The fixed 2ms link delay is deliberate: delays keep the
// lookahead window real (the sharded path genuinely runs), while their
// uniformity keeps deliveries clustered onto a few instants per gossip round
// so the serial shards=1 arm of the byte-identity contract stays affordable
// even at this size. Membership is frozen (digest interval past the horizon,
// detection off) — at 64k the roster beacons alone would dominate the wire,
// and what this campaign measures is dissemination at scale, with per-node
// memory compaction (shared roster, small queues) reported as MB/node.
func Soak64k() Scenario {
	s := Scenario{
		Name: "soak64k",
		Fleet: Fleet{
			Arity: 4, Depth: 8,
			R: 2, F: 4, C: 3,
			// A depth-8 descent needs ~5-6 gossip rounds per tree level
			// (empirically: depth 6 completes in ~30 rounds, depth 7 in
			// ~40), so the horizon must hold 50+ rounds after the last
			// publish. 20ms rounds buy that throughput without touching
			// wire cost — gossip only sends when events are buffered.
			GossipInterval:     20 * time.Millisecond,
			MembershipInterval: 10 * time.Second, // one per horizon: frozen
			SuspectAfter:       time.Hour,        // detection off
			Classes:            4,
			DeliveryBuffer:     64,
		},
		Nodes:     65536,
		Bootstrap: BootstrapOracle,
		Loss:      0.005,
		MinDelay:  2 * time.Millisecond,
		MaxDelay:  2 * time.Millisecond,
		QueueLen:  64,
		Horizon:   1200 * time.Millisecond,
		Shards:    8,
		SubscriptionFor: func(a addr.Address, _ int) interest.Subscription {
			return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%4)))
		},
	}
	s.PublishAt(50*time.Millisecond, -1, 2, -1).
		PublishAt(150*time.Millisecond, -1, 2, -1)
	return s
}

// manyAttrTopics is the string-attribute vocabulary of the ManyAttr512
// workload.
const manyAttrTopics = 32

// manyAttrSub draws one high-cardinality multi-attribute subscription,
// deterministically from (index, salt): a 16-of-64 class set on the integer
// attribute b (compiling to a binary-searched point-interval array), an
// 8-of-32 topic set on the string attribute e (compiling to a hashed set),
// a half-width band on the float attribute c, and — for half the nodes — a
// threshold on the integer attribute z. Selectivity multiplies out to a few
// percent, so a 512-node fleet yields double-digit audiences per event
// while the regrouped summaries up the tree stay far wider than any single
// interest — the regime where forwarding-path matching dominates.
func manyAttrSub(index int, salt int64) interest.Subscription {
	rng := rand.New(rand.NewSource(int64(index)*0x9e3779b9 + salt*0x85ebca6b + 1))
	ivs := make([]interest.Interval, 0, 16)
	for _, k := range rng.Perm(64)[:16] {
		ivs = append(ivs, interest.PointInterval(float64(k)))
	}
	topics := make([]string, 0, 8)
	for _, k := range rng.Perm(manyAttrTopics)[:8] {
		topics = append(topics, fmt.Sprintf("t%02d", k))
	}
	lo := rng.Float64() * 500
	sub := interest.NewSubscription().
		Where("b", interest.InIntervals(ivs...)).
		Where("e", interest.OneOf(topics...)).
		Where("c", interest.Between(lo, lo+500))
	if index%2 == 0 {
		sub = sub.Where("z", interest.Ge(float64(rng.Intn(50000))))
	}
	return sub
}

// ManyAttr512 is the high-cardinality matching campaign: 512 nodes (the
// regular 8^3 tree) whose subscriptions constrain four attributes at once —
// multi-point integer sets, hashed string sets, float bands, open integer
// thresholds — against a sustained stream of four-attribute events, with
// two mid-run subscription-flux waves redrawing 32 interests each. Every
// susceptibility test walks this structure, so the campaign is the matching
// engine's workload: its report's match_evals_per_event and
// match_micros_per_round are the metrics the compiled+cached path is
// measured by (naively, every buffered event re-pays the full walk every
// round of every node).
func ManyAttr512() Scenario {
	s := Scenario{
		Name: "manyattr512",
		Fleet: Fleet{
			Arity: 8, Depth: 3,
			R: 2, F: 4, C: 3,
			GossipInterval:     20 * time.Millisecond,
			MembershipInterval: 100 * time.Millisecond,
			SuspectAfter:       600 * time.Millisecond,
			Classes:            64,
		},
		Nodes:     512,
		Bootstrap: BootstrapOracle,
		Loss:      0.01,
		QueueLen:  2048,
		Horizon:   2 * time.Second,
		SubscriptionFor: func(_ addr.Address, index int) interest.Subscription {
			return manyAttrSub(index, 0)
		},
		// Events carry the full four-attribute shape the subscriptions
		// constrain; the class drives b so event/interest correlation stays
		// controlled while c, e and z are drawn per event.
		EventFor: func(class int64, rng *rand.Rand) map[string]event.Value {
			return map[string]event.Value{
				"b": event.Int(class),
				"c": event.Float(rng.Float64() * 1000),
				"e": event.Str(fmt.Sprintf("t%02d", rng.Intn(manyAttrTopics))),
				"z": event.Int(int64(rng.Intn(100000))),
			}
		},
		// Flux redraws the whole multi-attribute interest (salted by the
		// drawn class), not just a class hop: every wave forces recompiles
		// along the fluxed nodes' root paths and exact cache invalidation on
		// everyone whose views absorbed the new summaries.
		FluxFor: func(_ addr.Address, index int, class int64) interest.Subscription {
			return manyAttrSub(index, class+1)
		},
	}
	// Four publishers spread across top-level subtrees stream two events
	// every 20ms from t=100ms to t=1.8s (~680 events), staggered so rounds
	// interleave; flux waves land mid-stream. Each wave's 32 redraws fan
	// out through anti-entropy, so most of the fleet recompiles summaries
	// while the stream keeps flowing.
	for k, idx := range []int{0, 128, 256, 384} {
		off := time.Duration(k) * 5 * time.Millisecond
		s.StreamAt(100*time.Millisecond+off, 1800*time.Millisecond, 20*time.Millisecond, idx, 2, -1)
	}
	s.FluxAt(700*time.Millisecond, 32).
		FluxAt(1300*time.Millisecond, 32)
	return s
}

// zipfScenario assembles a campaign over a ZipfWorkload: subscriptions,
// flux redraws, event content, popularity buckets and the FPR oracle all
// come from the workload model; the caller supplies fleet and schedule.
func zipfScenario(s Scenario, w ZipfWorkload) Scenario {
	zw := NewZipfWorkload(w)
	s.Fleet.Classes = zw.Topics
	s.SubscriptionFor = zw.SubscriptionFor
	s.FluxFor = zw.FluxFor
	s.EventFor = zw.EventFor
	s.ClassBucketOf = zw.ClassBucketOf
	s.NumClassBuckets = zw.NumClassBuckets()
	s.MeasureSummaryFPR = true
	return s
}

// Zipf64 is the smoke-sized skewed-subscription campaign: 64 nodes over a
// 256-topic Zipf(α=1) vocabulary with heavy-tailed per-node topic counts and
// subtree-rotated locality, publishing Zipf-distributed events through two
// flash-crowd flux waves that invert the popularity ranking. Small enough
// for the golden-trace pins and the shard-equivalence matrix (link delays
// keep the conservative window real), while exercising every skew mechanism
// zipf1m runs at scale: its report carries class_reliability,
// summary_false_positive_rate and the fold_recompiles axis.
func Zipf64() Scenario {
	s := Scenario{
		Name: "zipf64",
		Fleet: Fleet{
			Arity: 4, Depth: 3,
			R: 2, F: 3, C: 3,
			GossipInterval:     20 * time.Millisecond,
			MembershipInterval: 100 * time.Millisecond,
			SuspectAfter:       600 * time.Millisecond,
		},
		Nodes:     64,
		Bootstrap: BootstrapOracle,
		Loss:      0.005,
		MinDelay:  500 * time.Microsecond,
		MaxDelay:  2 * time.Millisecond,
		QueueLen:  2048,
		Horizon:   2 * time.Second,
	}
	s = zipfScenario(s, ZipfWorkload{
		Topics:   256,
		Alpha:    1.0,
		MeanSubs: 24,
		MaxSubs:  128,
		Locality: 0.8,
		Arity:    4,
	})
	s.PublishAt(200*time.Millisecond, -1, 4, -1).
		FluxAt(600*time.Millisecond, 16).
		PublishAt(900*time.Millisecond, -1, 4, -1).
		FluxAt(1200*time.Millisecond, 16).
		PublishAt(1500*time.Millisecond, -1, 4, -1)
	return s
}

// Zipf1M is the million-subscription campaign ROADMAP item 5 asked for: the
// soak4k fabric (4096 nodes, the regular 4^6 tree, jittered link delays,
// eight shards) under a 4096-topic Zipf(α=1) vocabulary whose truncated-
// Pareto per-node topic counts total over a million subscriptions fleet-wide
// (ZipfWorkload.TotalSubscriptions is the acceptance check). Two
// flash-crowd flux waves invert the popularity ranking mid-run — the
// workload that made unbounded fold caches and per-recompute view
// invalidation unaffordable, and the measurement bed for the shared-summary
// matcher: fold_recompiles, class_reliability and
// summary_false_positive_rate are its headline report fields.
func Zipf1M() Scenario {
	s := Scenario{
		Name: "zipf1m",
		Fleet: Fleet{
			Arity: 4, Depth: 6,
			// C=4: tail topics draw audiences of a couple hundred out of
			// 4096, and the sparser the audience the closer the Pittel
			// round estimate runs to the wire — one extra round of margin
			// keeps the tail's reliability at the head's level.
			R: 2, F: 4, C: 4,
			GossipInterval:     40 * time.Millisecond,
			MembershipInterval: 300 * time.Millisecond,
			SuspectAfter:       900 * time.Millisecond,
			DeliveryBuffer:     256,
		},
		Nodes:     4096,
		Bootstrap: BootstrapOracle,
		// Mild ambient loss: this campaign's subject is subscription scale
		// and fold churn, not loss resilience — the acceptance bar is 0.999
		// reliability, so the loss stays an order below soak4k's.
		Loss:     0.001,
		MinDelay: 500 * time.Microsecond,
		MaxDelay: 2 * time.Millisecond,
		QueueLen: 256,
		Horizon:  2600 * time.Millisecond,
		Shards:   8,
	}
	s = zipfScenario(s, zipf1MWorkload())
	// The second publish wave trails the first flux wave by two membership
	// intervals: a fluxed subscription needs its new summary folded into
	// the fleet's views before events published against it can route — a
	// wave published into still-stale summaries measures anti-entropy lag,
	// not regrouping. The second flux wave lands mid-descent of wave two,
	// exercising fold churn against in-flight events (fluxed-out nodes
	// leave those events' eligible sets).
	s.PublishAt(200*time.Millisecond, -1, 4, -1).
		FluxAt(500*time.Millisecond, 64).
		PublishAt(1150*time.Millisecond, -1, 4, -1).
		FluxAt(1500*time.Millisecond, 64)
	return s
}

// zipf1MWorkload is Zipf1M's workload model, shared with the acceptance
// test's subscription-count check.
func zipf1MWorkload() ZipfWorkload {
	return ZipfWorkload{
		Topics:   4096,
		Alpha:    1.0,
		MeanSubs: 330,
		MaxSubs:  2048,
		Locality: 0.8,
		Arity:    4,
	}
}

// Churn1024 is the scale campaign: a 1024-node fleet (the regular 4^5
// tree) under ambient loss, hit by a 64-node crash wave, a rejoin wave and
// subscription flux, publishing before, during and after the churn. On the
// virtual clock the whole campaign — three seconds of fleet time — runs in
// well under five seconds of wall clock.
func Churn1024() Scenario {
	s := Scenario{
		Name: "churn1024",
		Fleet: Fleet{
			// The deep narrow tree (4^5) keeps subgroups at 4, so the
			// heartbeat beacon costs 3 sends per node per interval and the
			// roster digests stay the only O(n) periodic work.
			Arity: 4, Depth: 5,
			R: 2, F: 4, C: 3,
			GossipInterval:     25 * time.Millisecond,
			MembershipInterval: 300 * time.Millisecond,
			SuspectAfter:       900 * time.Millisecond,
			Classes:            4,
		},
		Nodes:     1024,
		Bootstrap: BootstrapOracle,
		Loss:      0.02,
		// 2048 is 4× the deepest queue the campaign actually reaches (the
		// engine drains every instant; outcomes are identical down to 512)
		// while keeping the eager per-endpoint buffers off the allocation
		// profile — 8192 here cost ~2s of wall clock in zeroing alone.
		QueueLen: 2048,
		Horizon:  3 * time.Second,
		// Interest locality: subscriptions cluster by top-level subtree
		// (see Lossy256); flux then scatters 64 of them.
		SubscriptionFor: func(a addr.Address, _ int) interest.Subscription {
			return interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%4)))
		},
	}
	// The crash wave lands at 300ms and is expelled by ~1.2–1.65s (deadline
	// 900ms, sweeps every 450ms). Publishes probe all three regimes: a
	// healthy fleet, a fleet with 64 undetected corpses in its views, and a
	// post-churn fleet after rejoins and subscription flux.
	s.PublishAt(200*time.Millisecond, -1, 4, -1).
		CrashAt(300*time.Millisecond, 64).
		PublishAt(800*time.Millisecond, -1, 4, -1).
		RejoinAt(1700*time.Millisecond, 32).
		FluxAt(1900*time.Millisecond, 32).
		PublishAt(2300*time.Millisecond, -1, 4, -1)
	return s
}
