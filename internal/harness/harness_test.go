package harness

import (
	"bytes"
	"testing"
	"time"
)

// TestSameSeedByteIdenticalTrace is the reproducibility contract of the
// whole virtual-time runtime: two runs of a scenario under the same seed
// produce byte-identical delivery traces (and, being derived from them,
// identical hashes and delivery counts).
func TestSameSeedByteIdenticalTrace(t *testing.T) {
	first, err := Smoke16().Run(7)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Smoke16().Run(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Trace) == 0 {
		t.Fatal("scenario produced an empty delivery trace")
	}
	if !bytes.Equal(first.Trace, second.Trace) {
		t.Errorf("same-seed traces diverge:\n run1 %d bytes sha=%s\n run2 %d bytes sha=%s",
			len(first.Trace), first.Report.TraceSHA256,
			len(second.Trace), second.Report.TraceSHA256)
	}
	if first.Report.TraceSHA256 != second.Report.TraceSHA256 {
		t.Error("trace hashes diverge")
	}
	if first.Report.Delivered != second.Report.Delivered ||
		first.Report.Published != second.Report.Published {
		t.Errorf("counters diverge: %+v vs %+v", first.Report, second.Report)
	}
}

// TestDistinctSeedsDiverge guards against the opposite failure: the seed
// actually reaching the randomness (fault RNG, publisher choice, gossip
// targets). Two seeds agreeing byte-for-byte would mean it doesn't.
func TestDistinctSeedsDiverge(t *testing.T) {
	a, err := Smoke16().Run(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Smoke16().Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Trace, b.Trace) {
		t.Error("seeds 1 and 2 produced identical traces — the seed is not reaching the RNGs")
	}
}

func TestSmoke16Delivers(t *testing.T) {
	res, err := Smoke16().Run(3)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Published != 6 {
		t.Errorf("published %d events, want 6", rep.Published)
	}
	if rep.Crashes != 2 || rep.AliveAtEnd != 14 {
		t.Errorf("crashes=%d alive=%d, want 2/14", rep.Crashes, rep.AliveAtEnd)
	}
	if rep.MeanReliability < 0.99 {
		t.Errorf("mean reliability %.3f below 0.99 in a loss-free scenario\nops:\n%v",
			rep.MeanReliability, rep.Ops)
	}
	if rep.DeliveriesDropped != 0 {
		t.Errorf("%d deliveries dropped", rep.DeliveriesDropped)
	}
}

// TestChurn1024 is the scale acceptance criterion: a 1024-node churn
// campaign — crash wave, rejoin wave, subscription flux, ambient loss —
// runs deterministically and completes in well under five seconds of wall
// clock despite covering 1.5 virtual seconds of fleet time.
func TestChurn1024(t *testing.T) {
	start := time.Now()
	res, err := Churn1024().Run(11)
	if err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	rep := res.Report
	t.Logf("churn1024: wall=%v events=%d published=%d delivered=%d rel=%.3f/%.3f dropped=%d",
		wall, rep.ClockEvents, rep.Published, rep.Delivered,
		rep.MeanReliability, rep.MinReliability, rep.MessagesDropped)

	if wall > 5*time.Second && !raceEnabled {
		t.Errorf("campaign took %v wall-clock, want < 5s", wall)
	}
	if rep.Crashes != 64 || rep.Rejoins != 32 {
		t.Errorf("crashes=%d rejoins=%d, want 64/32", rep.Crashes, rep.Rejoins)
	}
	if want := 1024 - 64 + 32; rep.AliveAtEnd != want {
		t.Errorf("alive at end %d, want %d", rep.AliveAtEnd, want)
	}
	if rep.Published != 12 {
		t.Errorf("published %d, want 12", rep.Published)
	}
	// Under 2% ambient loss and heavy churn, gossip redundancy must still
	// reach the overwhelming majority of eligible subscribers.
	if rep.MeanReliability < 0.9 {
		t.Errorf("mean reliability %.3f below 0.9\nops:\n%v", rep.MeanReliability, rep.Ops)
	}
	if rep.MessagesDropped == 0 {
		t.Error("no messages dropped despite 2% ambient loss — fault injection inert")
	}
}

// TestChurn1024SameSeedReplays re-runs the full-scale campaign and demands
// byte identity — determinism must survive churn, flux and partitions, not
// just the happy path.
func TestChurn1024SameSeedReplays(t *testing.T) {
	if testing.Short() {
		t.Skip("second full-scale run skipped in -short")
	}
	a, err := Churn1024().Run(11)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn1024().Run(11)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Trace, b.Trace) {
		t.Errorf("same-seed churn1024 traces diverge: sha %s vs %s",
			a.Report.TraceSHA256, b.Report.TraceSHA256)
	}
}

func TestLossy256SurvivesLossAndPartition(t *testing.T) {
	res, err := Lossy256().Run(5)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	t.Logf("lossy256: events=%d published=%d delivered=%d rel=%.3f/%.3f dropped=%d",
		rep.ClockEvents, rep.Published, rep.Delivered,
		rep.MeanReliability, rep.MinReliability, rep.MessagesDropped)
	if rep.MessagesDropped == 0 {
		t.Error("no messages dropped under 15% loss")
	}
	if rep.MeanReliability < 0.8 {
		t.Errorf("mean reliability %.3f below 0.8 under loss\nops:\n%v",
			rep.MeanReliability, rep.Ops)
	}
	if rep.Crashes != 16 || rep.Fluxes != 16 {
		t.Errorf("crashes=%d fluxes=%d, want 16/16", rep.Crashes, rep.Fluxes)
	}
}

func TestRegistryResolvesEveryScenario(t *testing.T) {
	names := ScenarioNames()
	if len(names) == 0 {
		t.Fatal("empty scenario catalog")
	}
	for _, name := range names {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name != name {
			t.Errorf("scenario %q self-reports as %q", name, s.Name)
		}
	}
	if _, err := Lookup("no-such-campaign"); err == nil {
		t.Error("unknown scenario resolved")
	}
}

func TestScenarioValidation(t *testing.T) {
	s := Smoke16()
	s.Ops = append(s.Ops, Op{At: s.Horizon + time.Second, Kind: OpHeal})
	if _, err := s.Run(1); err == nil {
		t.Error("op beyond the horizon accepted")
	}

	s = Smoke16()
	s.Nodes = s.Fleet.Arity*s.Fleet.Arity + 1
	if _, err := s.Run(1); err == nil {
		t.Error("fleet larger than the address space accepted")
	}

	s = Smoke16()
	s.Nodes = 0
	if _, err := s.Run(1); err == nil {
		t.Error("empty fleet accepted")
	}
}

// TestJoinWaveGrowsFleet exercises OpJoin: fresh addresses join through the
// live protocol and end up in everyone's membership.
func TestJoinWaveGrowsFleet(t *testing.T) {
	s := Scenario{
		Name: "join-wave",
		Fleet: Fleet{
			Arity: 4, Depth: 2,
			GossipInterval:     10 * time.Millisecond,
			MembershipInterval: 20 * time.Millisecond,
			SuspectAfter:       time.Hour,
		},
		Nodes:     8,
		Bootstrap: BootstrapOracle,
		Horizon:   2 * time.Second,
	}
	s.JoinAt(100*time.Millisecond, 4).
		PublishAt(1500*time.Millisecond, 0, 2, -1)
	res, err := s.Run(9)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep.Joins != 4 || rep.AliveAtEnd != 12 {
		t.Errorf("joins=%d alive=%d, want 4/12", rep.Joins, rep.AliveAtEnd)
	}
	if rep.MembershipMin != 12 {
		t.Errorf("membership min %d at end, want 12 (joiners fully propagated)", rep.MembershipMin)
	}
	if rep.MeanReliability < 0.99 {
		t.Errorf("mean reliability %.3f after join wave\nops:\n%v", rep.MeanReliability, rep.Ops)
	}
}
