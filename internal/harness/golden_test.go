package harness

import "testing"

// goldenTraces pins the delivery-trace hashes of the pre-engine serial
// runtime (captured at PR 3) for the smoke and lossy-fleet campaigns, and
// of the pre-matching-engine runtime (captured at PR 5) for the soak
// campaign. The staged engine refactor's contract is that determinism is a
// degenerate configuration, not a second code path; the matching engine's
// contract is that compiled matchers and the susceptibility cache are
// semantically invisible — every cached answer is bit-for-bit what the
// naive walk produced, so seeded traces must not move. A hash moving here
// means the protocol's observable behavior changed — intentional protocol
// changes re-pin these constants and say why in the PR.
//
// smoke16 and lossy256 were re-pinned at PR 7: the fabric now draws ONE
// delay per batch envelope (it drew one per sub-message part, an artifact
// that let parts of one datagram arrive at different times), which shifts
// RNG consumption on every delayed campaign. soak256 is delay-free, so its
// hashes are untouched — direct evidence the link-model plumbing itself
// changed nothing when disabled.
var goldenTraces = map[string]map[int64]string{
	"smoke16": {
		1:  "f65fbbe6d35ef701b4a7ad7cbba509164d29bb4dee0d310d77005553d691a43b",
		42: "5b428b454df1073d47cc2c31f5b7681c81401dcf536c87a3db5f537a3e4d8f88",
	},
	"lossy256": {
		1:  "d21ca69a501e7a059a7848c897cd0a86cdda91f87bee706c44a8d21010532e57",
		42: "70382bc7e688c023bf6650319aceadfb0dcc544da986601e1ea26515942b7e15",
	},
	"soak256": {
		1:  "454fd0ed637045edbf1ed4a8ce2ce6b83ca1c6ed7aec0354a8506db26d2ee6d4",
		42: "9cf64bdce818f5ccba9342d3ba483027bba06225ce2c1945ee560cca8ec17c52",
	},
	// zipf64 pins the Zipf-skew workload layer (PR 10): the campaign runs
	// two flash-crowd flux waves over the skewed subscription model, so a
	// hash moving here means either the deterministic workload draw or the
	// flux replay machinery changed. The shared fold cache, interned
	// compiler and FPR oracle all ride under these hashes — they are
	// observational layers and must not move the trace.
	"zipf64": {
		1:  "a790dc1b6f8053df527eb2538ff242d66685236bae35383d0820383252f3abf7",
		42: "bd49d34a246476e4e3354e754a4f8aa01a6fc006e6947347686899a8e76d0569",
	},
}

// TestEngineMatchesGoldenTraces replays the pinned (scenario, seed) pairs
// through the staged engine at parallelism 0 and demands the pre-refactor
// bytes, hash for hash.
func TestEngineMatchesGoldenTraces(t *testing.T) {
	for name, seeds := range goldenTraces {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed, want := range seeds {
			if testing.Short() && sc.Nodes > 64 && seed != 1 {
				continue // one large replay is plenty under -short
			}
			res, err := sc.Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Report.TraceSHA256; got != want {
				t.Errorf("%s seed %d: trace sha %s, golden %s — the engine no longer replays the serial runtime",
					name, seed, got, want)
			}
		}
	}
}
