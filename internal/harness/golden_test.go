package harness

import "testing"

// goldenTraces pins the delivery-trace hashes of the pre-engine serial
// runtime (captured at PR 3) for the smoke and lossy-fleet campaigns, and
// of the pre-matching-engine runtime (captured at PR 5) for the soak
// campaign. The staged engine refactor's contract is that determinism is a
// degenerate configuration, not a second code path; the matching engine's
// contract is that compiled matchers and the susceptibility cache are
// semantically invisible — every cached answer is bit-for-bit what the
// naive walk produced, so seeded traces must not move. A hash moving here
// means the protocol's observable behavior changed — intentional protocol
// changes re-pin these constants and say why in the PR.
var goldenTraces = map[string]map[int64]string{
	"smoke16": {
		1:  "12c9f07c5fc44b48962800f2539cdf2a32c683b0dcbcc77d392a7f5b3edd72da",
		42: "5f22b868e2656fef85af50668af7863070cd621348dd44d348e8707bb09f9f0a",
	},
	"lossy256": {
		1:  "6a1edfcb1fc3998c213d6fb29f7229b9f0ad23932332826557f29d441d833de4",
		42: "a44c2048f2095c4be57bb9fda50b36be79d2ae69403217f171623d42e740ce46",
	},
	"soak256": {
		1:  "454fd0ed637045edbf1ed4a8ce2ce6b83ca1c6ed7aec0354a8506db26d2ee6d4",
		42: "9cf64bdce818f5ccba9342d3ba483027bba06225ce2c1945ee560cca8ec17c52",
	},
}

// TestEngineMatchesGoldenTraces replays the pinned (scenario, seed) pairs
// through the staged engine at parallelism 0 and demands the pre-refactor
// bytes, hash for hash.
func TestEngineMatchesGoldenTraces(t *testing.T) {
	for name, seeds := range goldenTraces {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for seed, want := range seeds {
			if testing.Short() && sc.Nodes > 64 && seed != 1 {
				continue // one large replay is plenty under -short
			}
			res, err := sc.Run(seed)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Report.TraceSHA256; got != want {
				t.Errorf("%s seed %d: trace sha %s, golden %s — the engine no longer replays the serial runtime",
					name, seed, got, want)
			}
		}
	}
}
