// The sharded conservative engine: the scenario event loop parallelized
// across worker goroutines with a merged trace that is byte-identical to the
// serial loop's for any (scenario, seed, shard count).
//
// The design is classic conservative parallel discrete-event simulation
// specialized to this harness. Every message crossing the fabric waits at
// least the link lookahead (MinDelay plus JitterMin) and every periodic-task
// chain reschedules at least one interval ahead, so during a virtual window
// of length L = min(link lookahead, tick intervals) no executed event can
// schedule another event inside the same window: the window's due-event set
// is fixed at its start. The coordinator therefore pops a whole window from
// the virtual clock at once, routes each event to the shard owning its node
// (fleet index mod shard count), and lets the shards execute concurrently —
// including pumping their own nodes' inboxes per completed instant, which is
// where the serial loop burns O(fleet) per instant and the sharded loop only
// touches nodes that actually received something.
//
// Determinism rests on three invariants:
//
//  1. All of one node's work happens on one shard. A delivery event is owned
//     by its destination, so a node's inbox is filled and drained in the
//     same order the serial loop would use, and each directed link's fault
//     stream advances only on its source node's sends, in source order.
//  2. Schedules made during a window are buffered with a replay key — the
//     (instant, phase, origin, issue order) position the serial loop would
//     have made them at — and inserted into the virtual clock at the window
//     barrier in exactly that order. Since the clock breaks due-time ties by
//     insertion order, the sharded heap pops in the serial sequence.
//  3. Deliveries are recorded, not traced inline, and merged under the same
//     keys at the end of the run, which reproduces the serial trace bytes.
//
// Scheduled operations (tag −1) are barriers: the coordinator cuts the
// window's batch at the op, waits for the shards, replays their buffered
// schedules, and runs the op inline on a quiescent fleet — crash/rejoin/
// publish surgery needs no locks because nothing else is running. A pump
// deferred by an op cut (the op's instant is not over) is flushed by the
// next dispatch, so a node crashed at t never handles the envelopes that
// reached it at t — exactly the serial order of operations.
package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"pmcast/internal/clock"
	"pmcast/internal/event"
	"pmcast/internal/node"
)

// shardEvent is one popped virtual-clock entry routed to a shard.
type shardEvent struct {
	when time.Time
	tag  int32 // owning fleet index; −1 for coordinator (op) events
	pop  int64 // global heap pop order — the serial execution position
	fn   func()
}

// schedKey is the serial-order position of a buffered schedule or a recorded
// delivery: the instant it originated at, the phase within that instant
// (events run before op drains before pumps), the origin inside the phase
// (pop index for events, issue counter for ops, fleet index for pumps) and
// the issue order within the origin.
type schedKey struct {
	whenNs int64
	phase  int8
	a      int64
	ord    int32
}

func (k schedKey) less(o schedKey) bool {
	if k.whenNs != o.whenNs {
		return k.whenNs < o.whenNs
	}
	if k.phase != o.phase {
		return k.phase < o.phase
	}
	if k.a != o.a {
		return k.a < o.a
	}
	return k.ord < o.ord
}

// bufferedSched is a schedule made during shard execution, replayed into the
// virtual clock at the next barrier in schedKey order.
type bufferedSched struct {
	key schedKey
	at  time.Time
	tag int32
	fn  func()
	tm  *proxyTimer
}

// deliveryRecord is one node's deliveries at one instant, merged into the
// trace at the end of the run.
type deliveryRecord struct {
	key  schedKey
	node int32
	ids  []event.ID
}

// proxyTimer stands in for a virtual-clock timer whose creation is deferred
// to the barrier replay. Stopping it before the replay marks it dead; the
// replay then stops the real timer the moment it binds.
type proxyTimer struct {
	mu      sync.Mutex
	real    clock.Timer
	stopped bool
}

func (t *proxyTimer) Stop() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		return false
	}
	t.stopped = true
	if t.real != nil {
		return t.real.Stop()
	}
	return true
}

func (t *proxyTimer) bind(real clock.Timer) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.stopped {
		real.Stop()
		return
	}
	t.real = real
}

// nodeClock is one node's view of time: the owner shard's cursor while that
// shard is executing (so Now() reads the current event's instant, as the
// serial loop's virtual clock would), the real virtual clock otherwise.
// Schedules made during shard execution are buffered for barrier replay;
// schedules made at barriers (ops, bootstrap) go straight to the clock,
// tagged with their owner. It implements transport.OwnedScheduler so the
// fabric can tag delayed deliveries with their destination.
type nodeClock struct {
	w   *shardWorker
	tag int32
}

func (c *nodeClock) Now() time.Time {
	if c.w.live {
		return c.w.cursor
	}
	return c.w.eng.r.vc.Now()
}

func (c *nodeClock) AfterFunc(d time.Duration, f func()) clock.Timer {
	return c.scheduleTagged(d, c.tag, f)
}

func (c *nodeClock) AfterFuncOwned(ownerKey string, d time.Duration, f func()) clock.Timer {
	return c.scheduleTagged(d, c.w.eng.tagOf(ownerKey), f)
}

func (c *nodeClock) scheduleTagged(d time.Duration, tag int32, f func()) clock.Timer {
	w := c.w
	if !w.live {
		vc := w.eng.r.vc
		return vc.ScheduleTagged(vc.Now().Add(d), tag, f)
	}
	tm := &proxyTimer{}
	w.scheds = append(w.scheds, bufferedSched{
		key: schedKey{whenNs: w.curWhenNs, phase: w.curPhase, a: w.curA, ord: w.ord},
		at:  w.cursor.Add(d),
		tag: tag,
		fn:  f,
		tm:  tm,
	})
	w.ord++
	return tm
}

func (c *nodeClock) NewTicker(time.Duration) clock.Ticker {
	panic("harness: NewTicker is not available on a sharded run (step mode drives by callback)")
}

func (c *nodeClock) Sleep(time.Duration) {
	panic("harness: Sleep is not available on a sharded run")
}

// shardCmd is one dispatch from the coordinator: the shard's slice of a
// window segment, plus pump bookkeeping. cutAt, when set, is an instant an
// op will interrupt — the shard defers that instant's pump until a later
// dispatch closes it. extraDirty marks nodes an op touched (a publisher's
// self-delivery) as pumpable at opAt.
type shardCmd struct {
	events     []shardEvent
	cutAt      time.Time
	opAt       time.Time
	extraDirty []int32
}

// shardWorker owns every fleet index congruent to its position mod the shard
// count: it executes their events, pumps their inboxes, and buffers their
// schedules and delivery records. All fields are touched either by the
// worker goroutine during a dispatch or by the coordinator between
// dispatches; the cmd/done channel pair provides the happens-before edges.
type shardWorker struct {
	eng  *shardEngine
	cmds chan shardCmd
	done chan []bufferedSched

	live   bool
	cursor time.Time

	// Current schedule-origin key components (see schedKey).
	curWhenNs int64
	curPhase  int8
	curA      int64
	ord       int32

	inbox        []shardEvent // coordinator-side staging for the next cmd
	dirty        map[int32]struct{}
	deferInstant time.Time
	scheds       []bufferedSched
	recs         []deliveryRecord
}

func (w *shardWorker) loop(wg *sync.WaitGroup) {
	defer wg.Done()
	for cmd := range w.cmds {
		w.live = true
		w.runCmd(cmd)
		w.live = false
		scheds := w.scheds
		w.scheds = nil
		w.done <- scheds
	}
}

func (w *shardWorker) runCmd(cmd shardCmd) {
	for _, i := range cmd.extraDirty {
		w.dirty[i] = struct{}{}
	}
	cur := w.deferInstant
	if cur.IsZero() && len(cmd.extraDirty) > 0 {
		cur = cmd.opAt
	}
	w.deferInstant = time.Time{}
	for _, ev := range cmd.events {
		if !cur.IsZero() && ev.when.After(cur) {
			w.pump(cur)
			cur = time.Time{}
		}
		cur = ev.when
		w.cursor = ev.when
		w.curWhenNs = ev.when.Sub(w.eng.r.start).Nanoseconds()
		w.curPhase = 0
		w.curA = ev.pop
		w.ord = 0
		w.dirty[ev.tag] = struct{}{}
		ev.fn()
	}
	if !cur.IsZero() {
		if cur.Equal(cmd.cutAt) {
			w.deferInstant = cur
		} else {
			w.pump(cur)
		}
	}
}

// pump drains the dirty nodes' inboxes and delivery channels for one
// completed instant, in fleet-index order — the serial loop pumps every node
// after every instant, but only dirty nodes can have anything queued, so the
// sequence of observable effects is identical. With a positive link
// lookahead no handling can enqueue more same-instant envelopes, so one pass
// suffices (the serial loop's second pass finds quiescence).
func (w *shardWorker) pump(at time.Time) {
	if len(w.dirty) == 0 {
		return
	}
	idxs := make([]int32, 0, len(w.dirty))
	for i := range w.dirty {
		idxs = append(idxs, i)
	}
	clear(w.dirty)
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	whenNs := at.Sub(w.eng.r.start).Nanoseconds()
	w.cursor = at
	for _, i := range idxs {
		h := w.eng.r.handles[i]
		if h == nil || !h.alive {
			continue
		}
		w.curWhenNs = whenNs
		w.curPhase = 2
		w.curA = int64(i)
		w.ord = 0
		h.n.PumpInbox()
		if ids := drainIDs(h.n); len(ids) > 0 {
			w.recs = append(w.recs, deliveryRecord{
				key:  schedKey{whenNs: whenNs, phase: 2, a: int64(i)},
				node: i,
				ids:  ids,
			})
		}
	}
}

// drainIDs empties a node's delivery channel without blocking.
func drainIDs(n *node.Node) []event.ID {
	var ids []event.ID
	for {
		select {
		case ev, ok := <-n.Deliveries():
			if !ok {
				return ids
			}
			ids = append(ids, ev.ID())
		default:
			return ids
		}
	}
}

// shardEngine is the coordinator's state: the workers, the per-node clocks,
// the address→index map the fabric tags deliveries with, and the delivery
// records the coordinator itself produces while running ops.
type shardEngine struct {
	r         *run
	workers   []*shardWorker
	wg        sync.WaitGroup
	stopOnce  sync.Once
	clocks    []*nodeClock
	keyIdx    map[string]int32
	lookahead time.Duration

	popIdx     int64
	opOrd      int64
	opRecs     []deliveryRecord
	extraDirty []int32
	gather     []bufferedSched
}

func newShardEngine(r *run, shards int, lookahead time.Duration) *shardEngine {
	eng := &shardEngine{
		r:         r,
		lookahead: lookahead,
		keyIdx:    make(map[string]int32),
	}
	for s := 0; s < shards; s++ {
		w := &shardWorker{
			eng:   eng,
			cmds:  make(chan shardCmd, 1),
			done:  make(chan []bufferedSched, 1),
			dirty: make(map[int32]struct{}),
		}
		eng.workers = append(eng.workers, w)
		eng.wg.Add(1)
		go w.loop(&eng.wg)
	}
	return eng
}

// clockFor returns (creating on first use) the node clock of a fleet index.
func (eng *shardEngine) clockFor(i int) *nodeClock {
	for len(eng.clocks) <= i {
		eng.clocks = append(eng.clocks, nil)
	}
	if eng.clocks[i] == nil {
		eng.clocks[i] = &nodeClock{w: eng.workers[i%len(eng.workers)], tag: int32(i)}
	}
	return eng.clocks[i]
}

// register maps an address key to its fleet index (called at spawn, before
// any send can target the address).
func (eng *shardEngine) register(key string, i int) { eng.keyIdx[key] = int32(i) }

func (eng *shardEngine) tagOf(key string) int32 {
	i, ok := eng.keyIdx[key]
	if !ok {
		panic(fmt.Sprintf("harness: delivery to unregistered address %q", key))
	}
	return i
}

// markOpDirty records that an op touched a node's delivery channel (publish
// self-delivery): its owner shard must pump it when the op's instant closes.
func (eng *shardEngine) markOpDirty(h *handle) {
	eng.extraDirty = append(eng.extraDirty, int32(h.index))
}

func (eng *shardEngine) takeExtraDirty() []int32 {
	d := eng.extraDirty
	eng.extraDirty = nil
	return d
}

// coordDrain records a node's pending deliveries during an op (phase 1: after
// the instant's events, before its pumps — the serial position of an op's
// inline drain).
func (eng *shardEngine) coordDrain(h *handle) {
	ids := drainIDs(h.n)
	if len(ids) == 0 {
		return
	}
	eng.opRecs = append(eng.opRecs, deliveryRecord{
		key:  schedKey{whenNs: eng.r.vc.Now().Sub(eng.r.start).Nanoseconds(), phase: 1, a: eng.opOrd},
		node: int32(h.index),
		ids:  ids,
	})
	eng.opOrd++
}

// runSegment dispatches one op-free slice of a window to the shards, waits
// for the barrier, and replays the buffered schedules into the virtual clock
// in serial order. cut names an instant a following op leaves open;
// extraDirty/opAt carry the preceding op's pump debts. until is the window
// end, for the lookahead assertion.
func (eng *shardEngine) runSegment(evs []shardEvent, cut time.Time, extraDirty []int32, opAt time.Time, until time.Time) {
	S := len(eng.workers)
	for _, w := range eng.workers {
		w.inbox = w.inbox[:0]
	}
	for _, ev := range evs {
		w := eng.workers[int(ev.tag)%S]
		w.inbox = append(w.inbox, ev)
	}
	var extras [][]int32
	if len(extraDirty) > 0 {
		extras = make([][]int32, S)
		for _, i := range extraDirty {
			extras[int(i)%S] = append(extras[int(i)%S], i)
		}
	}
	for s, w := range eng.workers {
		cmd := shardCmd{events: w.inbox, cutAt: cut, opAt: opAt}
		if extras != nil {
			cmd.extraDirty = extras[s]
		}
		w.cmds <- cmd
	}
	eng.gather = eng.gather[:0]
	for _, w := range eng.workers {
		eng.gather = append(eng.gather, <-w.done...)
	}
	sort.Slice(eng.gather, func(i, j int) bool { return eng.gather[i].key.less(eng.gather[j].key) })
	for _, bs := range eng.gather {
		if !bs.at.After(until) {
			panic(fmt.Sprintf("harness: lookahead violation: schedule at %v inside window ending %v",
				bs.at, until))
		}
		bs.tm.bind(eng.r.vc.ScheduleTagged(bs.at, bs.tag, bs.fn))
	}
}

// stop shuts the workers down (idempotent); their accumulated delivery
// records stay readable afterwards (mergeDeliveries).
func (eng *shardEngine) stop() {
	eng.stopOnce.Do(func() {
		for _, w := range eng.workers {
			close(w.cmds)
		}
		eng.wg.Wait()
	})
}

// mergeDeliveries replays every recorded delivery in serial order into the
// run's trace and accounting — the step that makes the sharded trace
// byte-identical to the serial one.
func (eng *shardEngine) mergeDeliveries() {
	recs := eng.opRecs
	for _, w := range eng.workers {
		recs = append(recs, w.recs...)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].key.less(recs[j].key) })
	r := eng.r
	for _, rec := range recs {
		h := r.handles[rec.node]
		for _, id := range rec.ids {
			fmt.Fprintf(&r.trace, "%d %s %s#%d\n", rec.key.whenNs, h.key, id.Origin, id.Seq)
			r.delivered[h.key] = append(r.delivered[h.key], id)
			r.report.Delivered++
			if set, ok := r.gotEvent[id]; ok {
				set[h.key] = true
			}
			if at, ok := r.pubAt[id]; ok {
				r.latNanos = append(r.latNanos, rec.key.whenNs-at)
			}
		}
	}
}

// runSharded is the coordinator loop: windows of fixed due-event sets,
// partitioned to the shards, with ops as barriers inside the window.
func (r *run) runSharded(end time.Time) {
	eng := r.eng
	vc := r.vc
	var evs []shardEvent
	for {
		T, ok := vc.NextAt()
		if !ok || T.After(end) {
			break
		}
		until := T.Add(eng.lookahead - time.Nanosecond)
		if until.After(end) {
			until = end
		}
		evs = evs[:0]
		for {
			when, tag, fn, ok := vc.PopDue(until)
			if !ok {
				break
			}
			evs = append(evs, shardEvent{when: when, tag: tag, pop: eng.popIdx, fn: fn})
			eng.popIdx++
		}
		r.report.ClockEvents += len(evs)
		segStart := 0
		var pendDirty []int32
		var pendOpAt time.Time
		for {
			j := segStart
			for j < len(evs) && evs[j].tag >= 0 {
				j++
			}
			var cut time.Time
			if j < len(evs) {
				cut = evs[j].when
			}
			eng.runSegment(evs[segStart:j], cut, pendDirty, pendOpAt, until)
			pendDirty, pendOpAt = nil, time.Time{}
			if j >= len(evs) {
				break
			}
			op := evs[j]
			vc.SetNow(op.when)
			op.fn()
			pendDirty = eng.takeExtraDirty()
			pendOpAt = op.when
			segStart = j + 1
		}
		vc.SetNow(until)
	}
	vc.SetNow(end)
}
