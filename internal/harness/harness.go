package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/node"
	"pmcast/internal/transport"
	"pmcast/internal/tree"
)

// Report is the JSON summary of one scenario run. Every field except the
// wall-clock duration is deterministic for a (scenario, seed) pair.
type Report struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`

	VirtualMillis int64 `json:"virtual_ms"`
	WallMillis    int64 `json:"wall_ms"`
	ClockEvents   int   `json:"clock_events"`

	// Shards is the worker-goroutine count the engine actually ran with
	// (a zero-lookahead scenario degrades to 1 whatever was asked for);
	// MBPerNode is live heap per node after the run, the memory-compaction
	// metric of fleet-scale campaigns. Like WallMillis, MBPerNode is not
	// part of the deterministic replay contract.
	Shards    int     `json:"shards"`
	MBPerNode float64 `json:"mb_per_node"`

	Published int `json:"published"`
	Delivered int `json:"delivered"`

	Crashes int `json:"crashes"`
	Rejoins int `json:"rejoins"`
	Joins   int `json:"joins"`
	Fluxes  int `json:"fluxes"`

	AliveAtEnd        int   `json:"alive_at_end"`
	MembershipMin     int   `json:"membership_min"`
	MembershipMax     int   `json:"membership_max"`
	MessagesDropped   int   `json:"messages_dropped"`
	DeliveriesDropped int64 `json:"deliveries_dropped"`

	// Throughput accounting (the soak workload class). Envelopes counts
	// sender-side transport sends fleet-wide (a batched round envelope is
	// one); WireBytes is their total encoded size, measured only when the
	// fleet sets MeasureWire. EventsPerSec is deliveries per virtual second;
	// EnvelopesPerEvent and BytesPerEvent normalize fabric cost by events
	// published — the batching headroom metrics.
	Batching          bool    `json:"batching"`
	Envelopes         int64   `json:"envelopes"`
	WireBytes         int64   `json:"wire_bytes"`
	EventsPerSec      float64 `json:"events_per_sec"`
	EnvelopesPerEvent float64 `json:"envelopes_per_event"`
	BytesPerEvent     float64 `json:"bytes_per_event"`

	// Matching-engine accounting, fleet-wide (crashed generations included).
	// MatchEvals counts matcher evaluations actually performed and
	// MatchComparisons the attribute comparisons inside them; MatchCacheHits
	// is how many susceptibility queries the per-event profile cache
	// answered without evaluating anything — the work the compiled engine
	// saved. MatchEvalsPerEvent normalizes by events published, and
	// MatchMicrosPerRound is profile-computation wall time per gossip round
	// ticked (the only non-deterministic field, like WallMillis).
	MatchEvals          uint64  `json:"match_evals"`
	MatchComparisons    uint64  `json:"match_comparisons"`
	MatchCacheHits      uint64  `json:"match_cache_hits"`
	MatchCacheMisses    uint64  `json:"match_cache_misses"`
	MatchEvalsPerEvent  float64 `json:"match_evals_per_event"`
	MatchMicrosPerRound float64 `json:"match_micros_per_round"`

	// Fold-layer accounting (the membership side of matching), fleet-wide:
	// summary regroupings the fleet's trees actually computed vs. served by
	// their shared fold caches, plus end-of-run occupancy and sweep
	// evictions of the fold caches and interning compilers — each shared
	// instance counted once by identity, over the fleet's live trees
	// (replaced generations' dead caches are not in these gauges; their
	// recompute/hit counters are banked into the totals).
	FoldRecomputes     uint64 `json:"fold_recompiles"`
	FoldCacheHits      uint64 `json:"fold_cache_hits"`
	FoldCacheEntries   int    `json:"fold_cache_entries"`
	FoldCacheEvictions uint64 `json:"fold_cache_evictions"`
	CompilerEntries    int    `json:"compiler_entries"`
	CompilerEvictions  uint64 `json:"compiler_evictions"`

	// SummaryFPRate is the regrouping false-positive rate over published
	// events: (reached − interested) / reached, where "reached" counts
	// members whose whole summary path matched the event (see
	// tree.Tree.MatchReach) and "interested" the members whose own
	// subscription did, both at publish time. Zero unless the scenario sets
	// MeasureSummaryFPR — the widened-summary lossiness the disjunct caps
	// trade for bounded summaries.
	SummaryFPRate float64 `json:"summary_false_positive_rate"`

	// ClassReliability breaks delivery and false-positive rates down by
	// popularity bucket (scenarios with ClassBucketOf only) — the
	// head-vs-tail view of skewed workloads.
	ClassReliability []ClassReport `json:"class_reliability,omitempty"`

	// Coding-layer accounting, fleet-wide (crashed generations included).
	// FECRepairBytes is the encoded size of every repair section emitted;
	// RepairBytesPerEvent normalizes it by events published — the redundancy
	// overhead a coded run pays. FECRecoveries counts gossips reconstructed
	// from repair symbols instead of waiting for retransmission;
	// FECRepairsReceived and FECExpired expose how much redundancy arrived
	// and how many partial generations timed out. All zero when coding is
	// off. RoundsToDeliveryP99 is the 99th percentile, over delivered
	// (event, node) pairs, of delivery latency measured in gossip rounds —
	// the tail a coded run is supposed to shorten under loss.
	FECRepairBytes      int64   `json:"fec_repair_bytes"`
	RepairBytesPerEvent float64 `json:"repair_bytes_per_event"`
	FECRecoveries       int64   `json:"fec_recoveries"`
	FECRepairsReceived  int64   `json:"fec_repairs_received"`
	FECExpired          int64   `json:"fec_expired"`
	RoundsToDeliveryP99 float64 `json:"rounds_to_delivery_p99"`

	// Adaptive-fanout accounting (the Section 5.3 tuning loop over measured
	// loss; all zero when Fleet.AdaptiveFanout is off). AdaptiveBoosts counts
	// (event, round) emissions that sampled extra targets, and
	// AdaptiveExtraTargets the extra sends those boosts added;
	// AdaptiveBudgetDepths counts per-depth round-budget evaluations that
	// used a measured loss above the configured assumption. EstLossPeers and
	// EstLossMean summarize the fleet's loss estimators at the end of the
	// run: directed links with at least one measured window, and the mean
	// estimate over them. LinkModel records whether the fabric ran the
	// Gilbert–Elliott/jitter link model, so reports are self-describing.
	Adaptive             bool    `json:"adaptive"`
	AdaptiveBoosts       int     `json:"adaptive_boosts"`
	AdaptiveExtraTargets int     `json:"adaptive_extra_targets"`
	AdaptiveBudgetDepths int     `json:"adaptive_budget_depths"`
	EstLossPeers         int     `json:"est_loss_peers"`
	EstLossMean          float64 `json:"est_loss_mean"`
	LinkModel            bool    `json:"link_model"`

	// MeanReliability and MinReliability summarize, over published events,
	// the fraction of eligible processes (interested, alive at publish time
	// and still alive at the end) that delivered the event.
	MeanReliability float64 `json:"mean_reliability"`
	MinReliability  float64 `json:"min_reliability"`

	TraceSHA256 string   `json:"trace_sha256"`
	TraceBytes  int      `json:"trace_bytes"`
	Ops         []string `json:"ops"`

	// Events breaks reliability down per published event, in publish order.
	Events []EventReport `json:"events"`
}

// EventReport is the per-event delivery outcome.
type EventReport struct {
	ID          string  `json:"id"`
	PublishedAt int64   `json:"published_at_ns"`
	Class       int64   `json:"class"`
	Eligible    int     `json:"eligible"`
	Delivered   int     `json:"delivered"`
	Reliability float64 `json:"reliability"`
	// Reached is the summary-path reach at publish time (MeasureSummaryFPR
	// scenarios only; see Report.SummaryFPRate).
	Reached int `json:"reached,omitempty"`
}

// ClassReport aggregates per-event outcomes over one popularity bucket of a
// skewed workload (see Scenario.ClassBucketOf).
type ClassReport struct {
	Bucket int    `json:"bucket"`
	Label  string `json:"label,omitempty"`
	Events int    `json:"events"`
	// Audienced counts the bucket's events with a nonzero eligible
	// audience — the denominator of the reliability figures. Deep-tail
	// topics can draw zero subscribers; such events have no reliability
	// to report, and a bucket where Audienced is 0 carries zeros here
	// without meaning delivery failed.
	Audienced       int     `json:"audienced_events"`
	MeanReliability float64 `json:"mean_reliability"`
	MinReliability  float64 `json:"min_reliability"`
	SummaryFPRate   float64 `json:"summary_false_positive_rate"`
}

// Result is everything a run produced: the report, the raw delivery trace
// (the byte-identical replay contract) and the per-node delivered event IDs
// in delivery order.
type Result struct {
	Report    Report
	Trace     []byte
	Delivered map[string][]event.ID
}

// handle is one fleet slot: a node generation plus its engine-side state.
type handle struct {
	index int
	a     addr.Address
	key   string
	n     *node.Node
	sub   interest.Subscription
	alive bool
	gen   int
}

// run is the mutable state of one scenario execution.
type run struct {
	sc     Scenario
	seed   int64
	vc     *clock.Virtual
	start  time.Time
	fabric *transport.Network
	rng    *rand.Rand
	space  addr.Space
	// roster is the shared bootstrap roster of an oracle fleet: one immutable
	// record table every initial-generation node adopts copy-on-write instead
	// of applying (and storing) n full membership updates — the difference
	// between O(n²) and O(n) bootstrap memory at 64k nodes.
	roster *membership.Roster
	// eng is the sharded conservative engine (shard.go); nil runs the
	// classic serial loop.
	eng *shardEngine

	handles   []*handle // fixed index order — the engine's iteration order
	nextFresh int       // next unused address index for OpJoin

	// envSum, byteSum, matchSum and fecSum accumulate wire, matching and
	// coding counters of node generations replaced by rejoins; finish() adds
	// the live generations on top.
	envSum   int64
	byteSum  int64
	matchSum core.MatchStats
	fecSum   node.FECStats
	adaptSum core.AdaptiveStats

	// shadow is the MeasureSummaryFPR oracle: a membership tree mirroring
	// the fleet's churn and flux, queried (never gossiped through) at each
	// publish. evClass, evInterested and evReached record the publish-time
	// class, interested count and summary-path reach per event.
	shadow       *tree.Tree
	evClass      map[event.ID]int64
	evInterested map[event.ID]int
	evReached    map[event.ID]int
	evObj        map[event.ID]event.Event

	trace     bytes.Buffer
	delivered map[string][]event.ID
	pubOrder  []event.ID
	pubAt     map[event.ID]int64
	latNanos  []int64 // delivery latencies of traced (event, node) pairs
	eligible  map[event.ID]map[string]bool
	gotEvent  map[event.ID]map[string]bool

	report Report
}

// Run executes the scenario under the given seed and returns its result.
// Identical (scenario, seed) pairs produce byte-identical traces.
func (s Scenario) Run(seed int64) (*Result, error) {
	sc, err := s.withDefaults()
	if err != nil {
		return nil, err
	}
	space, err := addr.Regular(sc.Fleet.Arity, sc.Fleet.Depth)
	if err != nil {
		return nil, fmt.Errorf("harness: scenario %q: %w", sc.Name, err)
	}
	if sc.Nodes > space.Capacity() {
		return nil, fmt.Errorf("harness: scenario %q wants %d nodes but the space holds %d",
			sc.Name, sc.Nodes, space.Capacity())
	}
	// A campaign is a batch job of a few wall-clock seconds: n full
	// membership replicas plus n trees stay live for its whole duration,
	// and on small CPU counts the collector competes with the event loop
	// for the same cores. Collect whatever a previous campaign left behind,
	// then run without periodic collection, backstopped by a memory limit
	// so constrained machines degrade to collecting instead of thrashing.
	// The previous settings are restored on exit.
	runtime.GC()
	prevGC := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(prevGC)
	limit := int64(4 << 30)
	if need := int64(sc.Nodes) * (256 << 10); need > limit {
		limit = need // 64k-node campaigns need headroom beyond the 4 GiB floor
	}
	if cur := debug.SetMemoryLimit(-1); cur < limit {
		limit = cur
	}
	prevLimit := debug.SetMemoryLimit(limit)
	defer debug.SetMemoryLimit(prevLimit)
	wallStart := time.Now()
	vc := clock.NewVirtual()
	fabric, err := transport.NewNetwork(transport.Config{
		Loss:     sc.Loss,
		MinDelay: sc.MinDelay,
		MaxDelay: sc.MaxDelay,
		Link:     sc.Link,
		QueueLen: sc.QueueLen,
		Seed:     seed,
		Clock:    vc,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: scenario %q: %w", sc.Name, err)
	}
	defer fabric.Close()

	r := &run{
		sc:        sc,
		seed:      seed,
		vc:        vc,
		start:     vc.Now(),
		fabric:    fabric,
		rng:       rand.New(rand.NewSource(seed)),
		space:     space,
		nextFresh:    sc.Nodes,
		delivered:    make(map[string][]event.ID),
		pubAt:        make(map[event.ID]int64),
		eligible:     make(map[event.ID]map[string]bool),
		gotEvent:     make(map[event.ID]map[string]bool),
		evClass:      make(map[event.ID]int64),
		evInterested: make(map[event.ID]int),
		evReached:    make(map[event.ID]int),
		evObj:        make(map[event.ID]event.Event),
	}
	r.report.Scenario = sc.Name
	r.report.Seed = seed
	r.report.Nodes = sc.Nodes
	r.report.Batching = !sc.Fleet.NoBatch

	// The sharded engine needs a positive lookahead window; without one the
	// conservative window is empty and only the serial loop is correct.
	shards := sc.Shards
	lookahead := sc.lookahead()
	if lookahead <= 0 {
		shards = 1
	}
	r.report.Shards = shards
	if shards > 1 {
		r.eng = newShardEngine(r, shards, lookahead)
		defer r.eng.stop()
	}

	// An oracle fleet starts from "anti-entropy already ran": build that
	// state once as a shared immutable roster instead of handing every node
	// its own copy of every line.
	if sc.Bootstrap == BootstrapOracle {
		recs := make([]membership.Record, sc.Nodes)
		for i := 0; i < sc.Nodes; i++ {
			a := space.AddressAt(i)
			recs[i] = membership.Record{Addr: a, Sub: sc.subscriptionFor(a, i), Stamp: 1, Alive: true}
		}
		r.roster, err = membership.NewRoster(recs)
		if err != nil {
			return nil, fmt.Errorf("harness: scenario %q: %w", sc.Name, err)
		}
	}

	// Spawn the initial fleet.
	for i := 0; i < sc.Nodes; i++ {
		if _, err := r.spawn(i, sc.subscriptionFor(space.AddressAt(i), i)); err != nil {
			return nil, err
		}
	}
	if sc.MeasureSummaryFPR {
		// The FPR oracle: one shadow tree over the same membership, updated
		// in lockstep with churn and flux ops. It touches no transport and no
		// engine RNG, so measuring costs nothing deterministically.
		members := make([]tree.Member, 0, sc.Nodes)
		for _, h := range r.handles {
			members = append(members, tree.Member{Addr: h.a, Sub: h.sub})
		}
		r.shadow, err = tree.Build(tree.Config{Space: space, R: sc.Fleet.R}, members)
		if err != nil {
			return nil, fmt.Errorf("harness: scenario %q: building FPR shadow tree: %w", sc.Name, err)
		}
	}
	if err := r.bootstrap(); err != nil {
		return nil, err
	}
	r.pump()

	// Schedule the operation timeline (tag −1: ops run on the coordinator).
	for _, op := range sc.Ops {
		op := op
		if op.At < 0 || op.At > sc.Horizon {
			return nil, fmt.Errorf("harness: scenario %q: op %s at %v outside horizon %v",
				sc.Name, op.Kind, op.At, sc.Horizon)
		}
		if r.eng != nil {
			vc.ScheduleTagged(r.start.Add(op.At), -1, func() { r.exec(op) })
		} else {
			vc.AfterFunc(op.At, func() { r.exec(op) })
		}
	}

	end := r.start.Add(sc.Horizon)
	if r.eng != nil {
		// The sharded conservative loop (shard.go): windowed batches across
		// worker goroutines, merged back in serial order.
		r.runSharded(end)
		r.eng.stop()
	} else {
		// The serial event loop: one virtual instant at a time, then drain
		// every inbox and delivery channel to quiescence. Single-threaded,
		// hence replayable.
		for {
			next, ok := vc.NextAt()
			if !ok || next.After(end) {
				break
			}
			_, ran := vc.RunNext()
			r.report.ClockEvents += ran
			r.pump()
		}
		vc.AdvanceTo(end)
		r.pump()
	}

	r.finish(wallStart)
	res := &Result{
		Report:    r.report,
		Trace:     append([]byte(nil), r.trace.Bytes()...),
		Delivered: r.delivered,
	}
	return res, nil
}

// spawn creates (or re-creates) the node at fleet index i and starts its
// periodic-task chains on the virtual clock. The node's engine parallelism
// is left at 0 — the harness IS the scheduler: it drives ingress, protocol
// and egress synchronously through the step-mode API, so every stage runs
// on the engine goroutine in a deterministic order.
func (r *run) spawn(i int, sub interest.Subscription) (*handle, error) {
	a := r.space.AddressAt(i)
	var h *handle
	if i < len(r.handles) && r.handles[i] != nil {
		h = r.handles[i]
	} else {
		h = &handle{index: i, a: a, key: a.Key()}
		for len(r.handles) <= i {
			r.handles = append(r.handles, nil)
		}
		r.handles[i] = h
	}
	h.gen++
	if h.n != nil {
		// The crashed generation's wire and matching counters would vanish
		// with the handle's node pointer; bank them before the rejoin
		// replaces it.
		env, bytes := h.n.WireStats()
		r.envSum += env
		r.byteSum += bytes
		r.matchSum.Accumulate(h.n.MatchStats())
		r.fecSum.Accumulate(h.n.FECStats())
		r.adaptSum.Accumulate(h.n.AdaptiveStats())
	}
	cfg := node.Config{
		Addr:                  a,
		Space:                 r.space,
		R:                     r.sc.Fleet.R,
		F:                     r.sc.Fleet.F,
		C:                     r.sc.Fleet.C,
		Threshold:             r.sc.Fleet.Threshold,
		LocalDescent:          r.sc.Fleet.LocalDescent,
		LeafFloodRate:         r.sc.Fleet.LeafFloodRate,
		Subscription:          sub,
		GossipInterval:        r.sc.Fleet.GossipInterval,
		MembershipInterval:    r.sc.Fleet.MembershipInterval,
		MembershipFanout:      r.sc.Fleet.MembershipFanout,
		SuspectAfter:          r.sc.Fleet.SuspectAfter,
		SuspicionSweeps:       r.sc.Fleet.SuspicionSweeps,
		DeliveryBuffer:        r.sc.Fleet.DeliveryBuffer,
		NoBatch:               r.sc.Fleet.NoBatch,
		MeasureWire:           r.sc.Fleet.MeasureWire,
		FECRepairs:            r.sc.Fleet.FECRepairs,
		FECSources:            r.sc.Fleet.FECSources,
		AdaptiveFanout:        r.sc.Fleet.AdaptiveFanout,
		AdaptiveBoost:         r.sc.Fleet.AdaptiveBoost,
		AdaptiveLossThreshold: r.sc.Fleet.AdaptiveLossThreshold,
		Seed:                  mixSeed(r.seed, i, h.gen),
		Clock:                 r.vc,
	}
	if r.eng != nil {
		// The node's notion of now and every schedule it causes go through
		// its owner shard's clock.
		cfg.Clock = r.eng.clockFor(i)
	}
	if r.roster != nil && h.gen == 1 && i < r.sc.Nodes {
		// Initial-generation oracle nodes share the bootstrap roster
		// copy-on-write and receive their first fold from the donor clone in
		// bootstrap(); rejoined generations and fresh joiners diverge from
		// the roster immediately, so they run the classic backing.
		cfg.MembershipRoster = r.roster
		cfg.DeferViews = true
	}
	n, err := node.New(r.fabric, cfg)
	if err != nil {
		return nil, fmt.Errorf("harness: spawning node %d (%s): %w", i, a, err)
	}
	h.n = n
	h.sub = sub
	h.alive = true
	if r.eng != nil {
		r.eng.register(h.key, i)
		r.fabric.SetEndpointClock(a, r.eng.clockFor(i))
	}
	r.startTickers(h)
	return h, nil
}

// startTickers schedules the node's periodic tasks as self-rescheduling
// virtual-clock callbacks, bound to the node's generation so a crash ends
// them and a rejoin starts fresh chains.
func (r *run) startTickers(h *handle) {
	gen := h.gen
	chain := func(d time.Duration, task func(*node.Node)) {
		var fire func()
		fire = func() {
			if !h.alive || h.gen != gen {
				return
			}
			task(h.n)
			r.schedule(h, d, fire)
		}
		r.schedule(h, d, fire)
	}
	chain(r.sc.Fleet.GossipInterval, func(n *node.Node) { n.TickGossip() })
	chain(r.sc.Fleet.MembershipInterval, func(n *node.Node) { n.TickMembership() })
	chain(r.sc.Fleet.SuspectAfter/2, func(n *node.Node) { n.SweepFailures() })
}

// schedule books a node-owned callback d from now: directly on the virtual
// clock in a serial run, through the node's shard clock in a sharded one
// (buffered during shard execution, tagged-direct at barriers).
func (r *run) schedule(h *handle, d time.Duration, f func()) {
	if r.eng != nil {
		r.eng.clockFor(h.index).AfterFunc(d, f)
		return
	}
	r.vc.AfterFunc(d, f)
}

// bootstrap converges the initial fleet per the scenario's bootstrap mode.
func (r *run) bootstrap() error {
	switch r.sc.Bootstrap {
	case BootstrapOracle:
		// Every initial node was constructed over the shared roster, so the
		// fleet already agrees on membership. Fold the roster once and clone
		// it into the rest of the fleet (identical rosters ⇒ identical folds,
		// checked by roster hash); clones run in parallel. Both are
		// node-local, deterministic
		// work a real fleet does on n machines at once — the engine's
		// single-threaded discipline only matters once protocol events
		// start flowing.
		donor := r.handles[0].n
		if err := donor.WarmViews(); err != nil {
			return fmt.Errorf("harness: warming views: %w", err)
		}
		var wg sync.WaitGroup
		errs := make([]error, len(r.handles))
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		for i, h := range r.handles[1:] {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, h *handle) {
				defer wg.Done()
				errs[i] = h.n.AdoptViewsFrom(donor)
				<-sem
			}(i, h)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("harness: adopting views: %w", err)
			}
		}
		return nil
	case BootstrapJoin:
		contact := r.handles[0].a
		for _, h := range r.handles[1:] {
			if err := h.n.Join(contact); err != nil {
				return fmt.Errorf("harness: bootstrap join of %s: %w", h.a, err)
			}
		}
		return nil
	default:
		return fmt.Errorf("harness: unknown bootstrap mode %q", r.sc.Bootstrap)
	}
}

// pump drains every alive node's inbox and delivery channel until the whole
// fleet is quiescent at the current virtual instant. Iteration is in fixed
// fleet-index order, so the trace order is deterministic.
func (r *run) pump() {
	for {
		moved := false
		for _, h := range r.handles {
			if h == nil || !h.alive {
				continue
			}
			if h.n.PumpInbox() > 0 {
				moved = true
			}
			r.drainDeliveries(h)
		}
		if !moved {
			return
		}
	}
}

// drainDeliveries appends the node's pending deliveries to the trace. In a
// sharded run (only ops and the pre-loop pump call this) the deliveries are
// recorded instead, for the end-of-run serial-order merge.
func (r *run) drainDeliveries(h *handle) {
	if r.eng != nil {
		r.eng.coordDrain(h)
		return
	}
	for {
		select {
		case ev, ok := <-h.n.Deliveries():
			if !ok {
				return
			}
			id := ev.ID()
			now := r.vc.Now().Sub(r.start).Nanoseconds()
			fmt.Fprintf(&r.trace, "%d %s %s#%d\n", now, h.key, id.Origin, id.Seq)
			r.delivered[h.key] = append(r.delivered[h.key], id)
			r.report.Delivered++
			if set, ok := r.gotEvent[id]; ok {
				set[h.key] = true
			}
			if at, ok := r.pubAt[id]; ok {
				r.latNanos = append(r.latNanos, now-at)
			}
		default:
			return
		}
	}
}

// exec runs one scheduled operation at its virtual instant.
func (r *run) exec(op Op) {
	at := r.vc.Now().Sub(r.start)
	logf := func(format string, args ...any) {
		r.report.Ops = append(r.report.Ops,
			fmt.Sprintf("t=%s %s", at, fmt.Sprintf(format, args...)))
	}
	switch op.Kind {
	case OpPublish:
		count := max(1, op.Count)
		for k := 0; k < count; k++ {
			h := r.pickPublisher(op.Node)
			if h == nil {
				logf("publish: no eligible publisher")
				return
			}
			class := op.Class
			if class < 0 {
				class = int64(r.rng.Intn(r.sc.Fleet.Classes))
			}
			var attrs map[string]event.Value
			if r.sc.EventFor != nil {
				attrs = r.sc.EventFor(class, r.rng)
			} else {
				attrs = map[string]event.Value{"b": event.Int(class)}
			}
			id, err := h.n.Publish(attrs)
			if err != nil {
				logf("publish from %s failed: %v", h.key, err)
				continue
			}
			r.report.Published++
			ev := event.New(id, attrs)
			r.pubOrder = append(r.pubOrder, id)
			r.pubAt[id] = at.Nanoseconds()
			elig := make(map[string]bool)
			for _, o := range r.handles {
				if o != nil && o.alive && o.sub.Matches(ev) {
					elig[o.key] = true
				}
			}
			r.eligible[id] = elig
			r.gotEvent[id] = make(map[string]bool)
			r.evClass[id] = class
			r.evInterested[id] = len(elig)
			r.evObj[id] = ev
			if r.shadow != nil {
				r.evReached[id] = r.shadow.MatchReach(ev)
			}
			if r.eng != nil {
				// The publisher's self-delivery sits in its channel until the
				// owner shard pumps it at this instant.
				r.eng.markOpDirty(h)
			}
			logf("publish %s#%d class=%d from %s (%d eligible)",
				id.Origin, id.Seq, class, h.key, len(elig))
		}
	case OpCrash:
		victims := r.pickAlive(op.Count)
		for _, h := range victims {
			r.drainDeliveries(h)
			h.alive = false
			h.n.Stop()
			// A crashed process delivers nothing further: it leaves every
			// event's eligible set (a rejoin is a new process and old
			// events' gossip has expired by then).
			for _, set := range r.eligible {
				delete(set, h.key)
			}
			if r.shadow != nil {
				_ = r.shadow.Remove(h.a)
			}
			r.report.Crashes++
		}
		logf("crash %d nodes: %s", len(victims), keysOf(victims))
	case OpRejoin:
		var crashed []*handle
		for _, h := range r.handles {
			if h != nil && !h.alive {
				crashed = append(crashed, h)
			}
		}
		picked := r.pickFrom(crashed, op.Count)
		var revived []*handle
		for _, h := range picked {
			nh, err := r.spawn(h.index, h.sub)
			if err != nil {
				logf("rejoin of %s failed: %v", h.key, err)
				continue
			}
			if c := r.contact(nh); c != nil {
				_ = nh.n.Join(c.a)
			}
			if r.shadow != nil {
				_ = r.shadow.Add(tree.Member{Addr: nh.a, Sub: nh.sub})
			}
			revived = append(revived, nh)
			r.report.Rejoins++
		}
		logf("rejoin %d nodes: %s", len(revived), keysOf(revived))
	case OpJoin:
		var joined []*handle
		for k := 0; k < op.Count && r.nextFresh < r.space.Capacity(); k++ {
			i := r.nextFresh
			r.nextFresh++
			sub := r.sc.subscriptionFor(r.space.AddressAt(i), i)
			nh, err := r.spawn(i, sub)
			if err != nil {
				logf("join of index %d failed: %v", i, err)
				continue
			}
			if c := r.contact(nh); c != nil {
				_ = nh.n.Join(c.a)
			}
			if r.shadow != nil {
				_ = r.shadow.Add(tree.Member{Addr: nh.a, Sub: nh.sub})
			}
			joined = append(joined, nh)
			r.report.Joins++
		}
		logf("join %d fresh nodes: %s", len(joined), keysOf(joined))
	case OpSetLoss:
		r.fabric.SetLoss(op.Loss)
		logf("set-loss %.3f", op.Loss)
	case OpIsolate:
		victims := r.pickAlive(op.Count)
		for _, v := range victims {
			for _, o := range r.handles {
				if o != nil && o != v {
					r.fabric.BlockBidirectional(v.a, o.a)
				}
			}
		}
		logf("isolate %d nodes: %s", len(victims), keysOf(victims))
	case OpHeal:
		r.fabric.Heal()
		logf("heal")
	case OpFlux:
		victims := r.pickAlive(op.Count)
		for _, h := range victims {
			class := op.Class
			if class < 0 {
				class = int64(r.rng.Intn(r.sc.Fleet.Classes))
			}
			var sub interest.Subscription
			if r.sc.FluxFor != nil {
				sub = r.sc.FluxFor(h.a, h.index, class)
			} else {
				sub = interest.NewSubscription().Where("b", interest.EqInt(class))
			}
			h.sub = sub
			h.n.Subscribe(sub)
			// A fluxed process abandoned the interest in-flight events were
			// published under: like a crash, it leaves the eligible set of
			// every event its new subscription no longer matches (it will
			// never deliver them). Events the new interest does match keep
			// their eligibility rules from publish time.
			for id, set := range r.eligible {
				if set[h.key] && !sub.Matches(r.evObj[id]) {
					delete(set, h.key)
				}
			}
			if r.shadow != nil {
				_ = r.shadow.UpdateSubscription(h.a, sub)
			}
			r.report.Fluxes++
		}
		logf("flux %d nodes: %s", len(victims), keysOf(victims))
	}
}

// pickPublisher returns the requested publisher, or a deterministic random
// pick for −1 — in both cases only first-generation alive nodes qualify.
// Rejoined generations are excluded: their sequence numbers restart, so
// their event IDs would collide with the crashed generation's and
// subscribers' seen-sets would silently drop the "duplicates".
func (r *run) pickPublisher(idx int) *handle {
	if idx >= 0 {
		if idx < len(r.handles) && r.handles[idx] != nil &&
			r.handles[idx].alive && r.handles[idx].gen == 1 {
			return r.handles[idx]
		}
		return nil
	}
	var pool []*handle
	for _, h := range r.handles {
		if h != nil && h.alive && h.gen == 1 {
			pool = append(pool, h)
		}
	}
	if len(pool) == 0 {
		return nil
	}
	return pool[r.rng.Intn(len(pool))]
}

// pickAlive draws count distinct alive nodes, deterministically.
func (r *run) pickAlive(count int) []*handle {
	var pool []*handle
	for _, h := range r.handles {
		if h != nil && h.alive {
			pool = append(pool, h)
		}
	}
	return r.pickFrom(pool, count)
}

// pickFrom draws count distinct handles from the pool via a partial
// Fisher–Yates on the engine RNG, returning them in fleet-index order.
func (r *run) pickFrom(pool []*handle, count int) []*handle {
	if count > len(pool) {
		count = len(pool)
	}
	for i := 0; i < count; i++ {
		j := i + r.rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	picked := append([]*handle(nil), pool[:count]...)
	sort.Slice(picked, func(i, j int) bool { return picked[i].index < picked[j].index })
	return picked
}

// contact returns the lowest-index alive node other than h, for joins.
func (r *run) contact(h *handle) *handle {
	for _, o := range r.handles {
		if o != nil && o.alive && o != h {
			return o
		}
	}
	return nil
}

// finish computes the end-of-run report fields and stops the fleet.
func (r *run) finish(wallStart time.Time) {
	if r.eng != nil {
		r.eng.mergeDeliveries()
	}
	r.report.VirtualMillis = r.vc.Now().Sub(r.start).Milliseconds()

	memMin, memMax := -1, 0
	for _, h := range r.handles {
		if h == nil || !h.alive {
			continue
		}
		r.report.AliveAtEnd++
		l := h.n.KnownMembers()
		if memMin < 0 || l < memMin {
			memMin = l
		}
		if l > memMax {
			memMax = l
		}
		r.report.DeliveriesDropped += h.n.DroppedDeliveries()
	}
	if memMin < 0 {
		memMin = 0
	}
	r.report.MembershipMin, r.report.MembershipMax = memMin, memMax
	r.report.MessagesDropped = r.fabric.Dropped()

	// Wire and matching cost fleet-wide: banked counters of replaced
	// generations plus every handle's current node (crashed nodes keep
	// their counters).
	r.report.Envelopes = r.envSum
	r.report.WireBytes = r.byteSum
	match := r.matchSum
	fec := r.fecSum
	adapt := r.adaptSum
	var estSum float64
	for _, h := range r.handles {
		if h == nil || h.n == nil {
			continue
		}
		env, wb := h.n.WireStats()
		r.report.Envelopes += env
		r.report.WireBytes += wb
		match.Accumulate(h.n.MatchStats())
		fec.Accumulate(h.n.FECStats())
		adapt.Accumulate(h.n.AdaptiveStats())
		if est := h.n.LossEstimates(); est.MeasuredPeers > 0 {
			r.report.EstLossPeers += est.MeasuredPeers
			estSum += est.MeanLoss * float64(est.MeasuredPeers)
		}
	}
	r.report.Adaptive = r.sc.Fleet.AdaptiveFanout
	r.report.LinkModel = r.sc.Link.Enabled()
	r.report.AdaptiveBoosts = adapt.Boosts
	r.report.AdaptiveExtraTargets = adapt.ExtraTargets
	r.report.AdaptiveBudgetDepths = adapt.BudgetDepths
	if r.report.EstLossPeers > 0 {
		r.report.EstLossMean = estSum / float64(r.report.EstLossPeers)
	}
	r.report.FECRepairBytes = fec.RepairBytes
	r.report.FECRecoveries = fec.Recovered
	r.report.FECRepairsReceived = fec.RepairsReceived
	r.report.FECExpired = fec.Expired
	r.report.MatchEvals = match.Evals
	r.report.MatchComparisons = match.Comparisons
	r.report.MatchCacheHits = match.Hits
	r.report.MatchCacheMisses = match.Misses
	r.report.FoldRecomputes = match.FoldRecomputes
	r.report.FoldCacheHits = match.FoldHits
	// Shared fold caches and compilers are counted once each by identity —
	// tree clones within one node share an instance, and summing per handle
	// would multiply the same gauge.
	seenCaches := make(map[uint64]bool)
	seenCompilers := make(map[uint64]bool)
	for _, h := range r.handles {
		if h == nil || h.n == nil {
			continue
		}
		fs := h.n.FoldStats()
		if fs.CacheID != 0 && !seenCaches[fs.CacheID] {
			seenCaches[fs.CacheID] = true
			r.report.FoldCacheEntries += fs.CacheEntries
			r.report.FoldCacheEvictions += fs.CacheEvictions
		}
		if fs.CompilerID != 0 && !seenCompilers[fs.CompilerID] {
			seenCompilers[fs.CompilerID] = true
			r.report.CompilerEntries += fs.CompilerEntries
			r.report.CompilerEvictions += fs.CompilerEvictions
		}
	}
	if match.Rounds > 0 {
		r.report.MatchMicrosPerRound = float64(match.Nanos) / 1000 / float64(match.Rounds)
	}
	if secs := float64(r.report.VirtualMillis) / 1000; secs > 0 {
		r.report.EventsPerSec = float64(r.report.Delivered) / secs
	}
	if r.report.Published > 0 {
		r.report.EnvelopesPerEvent = float64(r.report.Envelopes) / float64(r.report.Published)
		r.report.BytesPerEvent = float64(r.report.WireBytes) / float64(r.report.Published)
		r.report.MatchEvalsPerEvent = float64(r.report.MatchEvals) / float64(r.report.Published)
		r.report.RepairBytesPerEvent = float64(r.report.FECRepairBytes) / float64(r.report.Published)
	}
	// Delivery-latency tail in gossip rounds: p99 over (event, node) pairs.
	if n := len(r.latNanos); n > 0 {
		lats := append([]int64(nil), r.latNanos...)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		idx := (n*99 + 99) / 100 // ceil(0.99·n)
		if idx > n {
			idx = n
		}
		p99 := lats[idx-1]
		r.report.RoundsToDeliveryP99 = float64(p99) / float64(r.sc.Fleet.GossipInterval.Nanoseconds())
	}

	// Reliability over events: delivered / eligible, eligibility restricted
	// to processes still alive at the end (crashes already removed).
	type bucketAgg struct {
		events    int
		relEvents int
		relSum    float64
		relMin    float64
		reached   int
		falseP    int
	}
	var buckets []bucketAgg
	if r.sc.ClassBucketOf != nil {
		nb := r.sc.NumClassBuckets
		if nb <= 0 {
			nb = 1
		}
		buckets = make([]bucketAgg, nb)
		for i := range buckets {
			buckets[i].relMin = 1
		}
	}
	var sum float64
	evs := 0
	totReached, totFalseP := 0, 0
	r.report.MinReliability = 1
	for _, id := range r.pubOrder {
		elig := r.eligible[id]
		er := EventReport{
			ID:          fmt.Sprintf("%s#%d", id.Origin, id.Seq),
			PublishedAt: r.pubAt[id],
			Class:       r.evClass[id],
			Eligible:    len(elig),
			Reached:     r.evReached[id],
		}
		for key := range elig {
			if r.gotEvent[id][key] {
				er.Delivered++
			}
		}
		if len(elig) > 0 {
			er.Reliability = float64(er.Delivered) / float64(len(elig))
			sum += er.Reliability
			evs++
			if er.Reliability < r.report.MinReliability {
				r.report.MinReliability = er.Reliability
			}
		}
		// False positives compare reach and interest both at publish time —
		// the eligible map shrinks when interested members crash later, so
		// len(elig) here would overstate the surplus.
		fp := er.Reached - r.evInterested[id]
		if fp < 0 {
			fp = 0
		}
		totReached += er.Reached
		totFalseP += fp
		if buckets != nil {
			b := r.sc.ClassBucketOf(er.Class)
			if b >= 0 && b < len(buckets) {
				ba := &buckets[b]
				ba.events++
				if len(elig) > 0 {
					ba.relEvents++
					ba.relSum += er.Reliability
					if er.Reliability < ba.relMin {
						ba.relMin = er.Reliability
					}
				}
				ba.reached += er.Reached
				ba.falseP += fp
			}
		}
		r.report.Events = append(r.report.Events, er)
	}
	if evs > 0 {
		r.report.MeanReliability = sum / float64(evs)
	} else {
		r.report.MinReliability = 0
	}
	if totReached > 0 {
		r.report.SummaryFPRate = float64(totFalseP) / float64(totReached)
	}
	for b := range buckets {
		ba := &buckets[b]
		if ba.events == 0 {
			continue
		}
		cr := ClassReport{Bucket: b, Events: ba.events, Audienced: ba.relEvents}
		if b < len(r.sc.BucketLabels) {
			cr.Label = r.sc.BucketLabels[b]
		}
		if ba.relEvents > 0 {
			cr.MeanReliability = ba.relSum / float64(ba.relEvents)
			cr.MinReliability = ba.relMin
		}
		if ba.reached > 0 {
			cr.SummaryFPRate = float64(ba.falseP) / float64(ba.reached)
		}
		r.report.ClassReliability = append(r.report.ClassReliability, cr)
	}

	sumHash := sha256.Sum256(r.trace.Bytes())
	r.report.TraceSHA256 = hex.EncodeToString(sumHash[:])
	r.report.TraceBytes = r.trace.Len()
	r.report.WallMillis = time.Since(wallStart).Milliseconds()

	// Measure live heap per node while the fleet is still resident: a full
	// collection first so the figure reflects reachable state, not garbage
	// accumulated while GC was off.
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if r.report.Nodes > 0 {
		r.report.MBPerNode = float64(ms.HeapAlloc) / float64(r.report.Nodes) / (1 << 20)
	}

	for _, h := range r.handles {
		if h != nil && h.alive {
			h.alive = false
			h.n.Stop()
		}
	}
}

// keysOf renders a handle list for the op log.
func keysOf(hs []*handle) string {
	var b bytes.Buffer
	for i, h := range hs {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(h.key)
	}
	if b.Len() == 0 {
		return "(none)"
	}
	return b.String()
}

// mixSeed derives a per-(node, generation) RNG seed from the campaign seed
// with a splitmix64 round, so fleets under different campaign seeds behave
// differently while staying deterministic.
func mixSeed(seed int64, index, gen int) int64 {
	z := uint64(seed) + uint64(index)*0x9e3779b97f4a7c15 + uint64(gen)*0xbf58476d1ce4e5b9
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // a zero node seed would fall back to the address-derived default
	}
	return int64(z)
}
