//go:build !race

package harness

// raceEnabled reports that this test binary runs under the race detector.
const raceEnabled = false
