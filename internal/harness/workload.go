package harness

import (
	"fmt"
	"math"
	"math/bits"
	"math/rand"
	"sort"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
)

// ZipfWorkload is the skewed subscription/publication model of the zipf*
// campaigns: a ranked topic vocabulary whose popularity follows a Zipf law
// (q_k ∝ 1/k^Alpha), heavy-tailed per-node subscription counts (a truncated
// Pareto — most nodes follow a few topics, a few follow thousands),
// correlated subscription locality in the tree (each top-level subtree
// rotates the popularity ranking, so siblings' interests overlap far more
// than strangers') and flash-crowd flux waves that invert the popularity
// ranks mid-run (yesterday's tail is today's head). Everything is a pure
// function of (Seed, node index, wave), so campaigns over it replay
// byte-identically.
type ZipfWorkload struct {
	// Topics is the vocabulary size; ranks run 0 (hottest) … Topics−1.
	Topics int
	// Alpha is the Zipf exponent; 1 is the classic harmonic profile.
	Alpha float64
	// MeanSubs and MaxSubs shape the per-node subscription-count draw: a
	// Pareto(β=1.5) with mean ≈ MeanSubs, truncated to [1, MaxSubs].
	MeanSubs float64
	MaxSubs  int
	// Locality is the probability a node's topic draw uses its top-level
	// subtree's rotated ranking instead of the global one (0 = no locality,
	// 1 = fully subtree-local popularity).
	Locality float64
	// Arity is the tree's top-level arity, the modulus of the locality
	// rotation.
	Arity int
	// Seed salts every deterministic draw.
	Seed int64

	// cum is the Zipf CDF over ranks, built once by NewZipfWorkload.
	cum []float64
}

// NewZipfWorkload precomputes the popularity CDF.
func NewZipfWorkload(w ZipfWorkload) *ZipfWorkload {
	if w.Topics < 1 {
		w.Topics = 1
	}
	w.cum = make([]float64, w.Topics)
	total := 0.0
	for k := 0; k < w.Topics; k++ {
		total += 1 / math.Pow(float64(k+1), w.Alpha)
		w.cum[k] = total
	}
	for k := range w.cum {
		w.cum[k] /= total
	}
	return &w
}

// rankFor maps a uniform u ∈ [0, 1) to a topic rank by inverting the CDF:
// the Zipf-weighted quantile.
func (w *ZipfWorkload) rankFor(u float64) int {
	r := sort.SearchFloat64s(w.cum, u)
	if r >= w.Topics {
		r = w.Topics - 1
	}
	return r
}

// topicName renders one rank's topic. The zero-padded rank keeps names
// lexically ordered by popularity, which makes reports and traces legible.
func (w *ZipfWorkload) topicName(rank int) string { return fmt.Sprintf("t%05d", rank) }

// countFor draws the node's subscription count: Pareto(x_m, β=1.5) — mean
// β·x_m/(β−1) = 3·x_m ≈ MeanSubs — truncated to [1, MaxSubs]. The tail
// matters: the handful of high-degree nodes dominate the fold inputs.
func (w *ZipfWorkload) countFor(rng *rand.Rand) int {
	xm := w.MeanSubs / 3
	if xm < 1 {
		xm = 1
	}
	c := int(xm * math.Pow(1-rng.Float64(), -1/1.5))
	if c < 1 {
		c = 1
	}
	if w.MaxSubs > 0 && c > w.MaxSubs {
		c = w.MaxSubs
	}
	if c > w.Topics {
		c = w.Topics
	}
	return c
}

// rotate maps a rank into subtree g's local popularity order: each top-level
// subtree shifts the ranking by a g-proportional stride, so the subtrees'
// hot sets are disjoint slices of the vocabulary and sibling summaries stay
// tight — the correlated-locality regime hierarchical regrouping is built
// for.
func (w *ZipfWorkload) rotate(rank, g int) int {
	if w.Arity <= 1 {
		return rank
	}
	return (rank + g*(w.Topics/w.Arity)) % w.Topics
}

// topicsFor draws one node's topic set for one flux wave, deterministically
// from (Seed, index, wave): Zipf-weighted sampling without replacement, with
// the node's top-level subtree rotating the ranking for the Locality
// fraction of draws, and odd waves inverting the popularity ranks (the
// flash-crowd flip: rank k becomes rank Topics−1−k). Waves re-seed the RNG,
// so a wave's draw does not depend on how many waves preceded it.
func (w *ZipfWorkload) topicsFor(index int, group int, wave int64) []string {
	rng := rand.New(rand.NewSource(int64(index)*0x9e3779b9 + wave*0x85ebca6b + w.Seed*0xc2b2ae35 + 1))
	count := w.countFor(rng)
	picked := make(map[int]bool, count)
	names := make([]string, 0, count)
	add := func(rank int) {
		if !picked[rank] {
			picked[rank] = true
			names = append(names, w.topicName(rank))
		}
	}
	// Rejection-sample the Zipf draw; a bounded number of retries keeps the
	// draw cheap when count approaches Topics, and the linear fill below
	// guarantees the count regardless.
	for tries := 0; len(names) < count && tries < 4*count+16; tries++ {
		rank := w.rankFor(rng.Float64())
		if rng.Float64() < w.Locality {
			rank = w.rotate(rank, group)
		}
		if wave%2 == 1 {
			rank = w.Topics - 1 - rank
		}
		add(rank)
	}
	for rank := 0; len(names) < count && rank < w.Topics; rank++ {
		add(w.rotate(rank, group))
	}
	return names
}

// SubscriptionFor is the Scenario.SubscriptionFor hook: the node's wave-0
// topic set as a single OneOf criterion on the "topic" attribute.
func (w *ZipfWorkload) SubscriptionFor(a addr.Address, index int) interest.Subscription {
	return interest.NewSubscription().
		Where("topic", interest.OneOf(w.topicsFor(index, a.Digit(1), 0)...))
}

// FluxFor is the Scenario.FluxFor hook: a flash-crowd redraw. The drawn
// class provides the wave salt — successive waves with different classes
// draw different sets — and odd waves invert the popularity ranking.
func (w *ZipfWorkload) FluxFor(a addr.Address, index int, class int64) interest.Subscription {
	return interest.NewSubscription().
		Where("topic", interest.OneOf(w.topicsFor(index, a.Digit(1), 1+class)...))
}

// EventFor is the Scenario.EventFor hook. The engine draws class uniformly
// in [0, Classes); mapping it through the Zipf quantile turns that uniform
// draw into a Zipf-distributed topic — publications follow the same
// popularity law subscriptions do, so head topics carry most of the
// traffic.
func (w *ZipfWorkload) EventFor(class int64, rng *rand.Rand) map[string]event.Value {
	u := (float64(class) + 0.5) / float64(w.Topics)
	return map[string]event.Value{
		"topic": event.Str(w.topicName(w.rankFor(u))),
	}
}

// ClassBucketOf groups classes into log₂ popularity bands of the published
// rank: bucket 0 is rank 0, bucket 1 ranks 1–2, bucket 2 ranks 3–6, … — the
// head-to-tail axis of the report's class_reliability breakdown.
func (w *ZipfWorkload) ClassBucketOf(class int64) int {
	u := (float64(class) + 0.5) / float64(w.Topics)
	return bits.Len(uint(w.rankFor(u) + 1)) - 1
}

// NumClassBuckets is the bucket count ClassBucketOf can return.
func (w *ZipfWorkload) NumClassBuckets() int { return bits.Len(uint(w.Topics)) }

// TotalSubscriptions sums the fleet's subscription count (topics per node,
// wave 0) without building anything — the campaign-scale invariant the
// zipf1m acceptance test checks (≥1M).
func (w *ZipfWorkload) TotalSubscriptions(nodes int, space addr.Space) int {
	total := 0
	for i := 0; i < nodes; i++ {
		total += len(w.topicsFor(i, space.AddressAt(i).Digit(1), 0))
	}
	return total
}
