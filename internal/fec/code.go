package fec

import (
	"errors"
	"fmt"
)

// Code is a systematic (k, r) erasure code: k source symbols in, r repair
// symbols out, any k of the k+r symbols recover the sources. The global
// generator matrix is G = [I; B] with B the r×k repair-coefficient block.
//
// For r = 1, B is the all-ones row — XOR parity — and both encode and
// reconstruct run the branch-free XOR kernel. For r ≥ 2, B comes from the
// systematic Vandermonde construction G = V·V_top⁻¹: V is the (k+r)×k
// Vandermonde matrix on distinct field elements 0…k+r−1, so any k of its
// rows are independent, and right-multiplying by V_top⁻¹ (an invertible
// change of basis) preserves that while turning the top block into I. This
// yields a true MDS code for every (k, r) — unlike the tempting "identity
// stacked on a Vandermonde" shortcut, whose mixed minors can be singular in
// characteristic 2 once r ≥ 3.
type Code struct {
	k, r int
	b    [][]byte // r rows × k cols of repair coefficients
}

// MaxSymbols caps k+r: the Vandermonde construction needs k+r distinct
// field elements.
const MaxSymbols = 256

var (
	// ErrInsufficient reports a reconstruction attempt with fewer than k
	// surviving symbols.
	ErrInsufficient = errors.New("fec: fewer than k symbols survive")
)

// NewCode builds the (k, r) code. k ≥ 1, r ≥ 0, k+r ≤ MaxSymbols.
func NewCode(k, r int) (*Code, error) {
	if k < 1 || r < 0 || k+r > MaxSymbols {
		return nil, fmt.Errorf("fec: invalid code parameters k=%d r=%d", k, r)
	}
	c := &Code{k: k, r: r}
	switch {
	case r == 0:
		// Degenerate: no repair rows.
	case r == 1:
		ones := make([]byte, k)
		for i := range ones {
			ones[i] = 1
		}
		c.b = [][]byte{ones}
	default:
		c.b = vandermondeRepairRows(k, r)
	}
	return c, nil
}

// K returns the source-symbol count.
func (c *Code) K() int { return c.k }

// R returns the repair-symbol count.
func (c *Code) R() int { return c.r }

// vandermondeRepairRows computes B = V_bottom · V_top⁻¹ for the (k+r)×k
// Vandermonde matrix V[i][j] = i^j over GF(2^8).
func vandermondeRepairRows(k, r int) [][]byte {
	top := make([][]byte, k)
	for i := 0; i < k; i++ {
		top[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			top[i][j] = pow(byte(i), j)
		}
	}
	topInv, err := invertMatrix(top)
	if err != nil {
		panic("fec: Vandermonde top block must be invertible: " + err.Error())
	}
	rows := make([][]byte, r)
	for x := 0; x < r; x++ {
		row := make([]byte, k)
		for j := 0; j < k; j++ {
			var acc byte
			for t := 0; t < k; t++ {
				acc ^= mul(pow(byte(k+x), t), topInv[t][j])
			}
			row[j] = acc
		}
		rows[x] = row
	}
	return rows
}

// EncodeInto fills the r repair symbols from the k source symbols. All
// slices must share one length; repairs are overwritten. The r = 1 path is
// a pure XOR accumulation and performs no allocations.
func (c *Code) EncodeInto(repairs, src [][]byte) {
	if len(repairs) != c.r || len(src) != c.k {
		panic("fec: EncodeInto shape mismatch")
	}
	for x, rep := range repairs {
		for i := range rep {
			rep[i] = 0
		}
		if c.r == 1 {
			for _, s := range src {
				mulAddSlice(rep, s, 1)
			}
			continue
		}
		row := c.b[x]
		for j, s := range src {
			mulAddSlice(rep, s, row[j])
		}
	}
}

// Reconstruct recovers the missing source symbols in place. shards holds
// the k source slots followed by up to r repair slots (shorter is fine:
// absent trailing repairs count as lost); nil marks a missing symbol, and
// all present symbols must share one length. On success every source slot
// i < k is non-nil; repair slots are left as they arrived. Returns
// ErrInsufficient when fewer than k symbols survive.
func (c *Code) Reconstruct(shards [][]byte) error {
	if len(shards) < c.k || len(shards) > c.k+c.r {
		return fmt.Errorf("fec: Reconstruct got %d shards for a (%d,%d) code", len(shards), c.k, c.r)
	}
	symLen := -1
	missing := 0
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			missing++
		} else if symLen < 0 {
			symLen = len(shards[i])
		}
	}
	if missing == 0 {
		return nil
	}
	// Pick the first k surviving rows of G.
	rows := make([]int, 0, c.k)
	for i := 0; i < len(shards) && len(rows) < c.k; i++ {
		if shards[i] != nil {
			rows = append(rows, i)
			if symLen < 0 {
				symLen = len(shards[i])
			}
		}
	}
	if len(rows) < c.k {
		return ErrInsufficient
	}

	// Single-erasure XOR fast path: with one source missing and the parity
	// row available, the missing symbol is the XOR of everything else.
	if c.r == 1 && missing == 1 {
		var hole int
		for i := 0; i < c.k; i++ {
			if shards[i] == nil {
				hole = i
			}
		}
		out := make([]byte, symLen)
		for i, s := range shards {
			if i != hole && s != nil {
				mulAddSlice(out, s, 1)
			}
		}
		shards[hole] = out
		return nil
	}

	// General path: invert the k×k submatrix A of G formed by the chosen
	// rows; source j is then row j of A⁻¹ applied to the chosen symbols.
	a := make([][]byte, c.k)
	for x, ri := range rows {
		row := make([]byte, c.k)
		if ri < c.k {
			row[ri] = 1
		} else {
			copy(row, c.b[ri-c.k])
		}
		a[x] = row
	}
	ainv, err := invertMatrix(a)
	if err != nil {
		return fmt.Errorf("fec: submatrix not invertible: %w", err)
	}
	for j := 0; j < c.k; j++ {
		if shards[j] != nil {
			continue
		}
		out := make([]byte, symLen)
		for i, ri := range rows {
			mulAddSlice(out, shards[ri], ainv[j][i])
		}
		shards[j] = out
	}
	return nil
}

// invertMatrix returns m⁻¹ via Gauss–Jordan elimination over GF(2^8).
// m is consumed (overwritten with the identity).
func invertMatrix(m [][]byte) ([][]byte, error) {
	n := len(m)
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, n)
		out[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for row := col; row < n; row++ {
			if m[row][col] != 0 {
				pivot = row
				break
			}
		}
		if pivot < 0 {
			return nil, errors.New("singular matrix")
		}
		m[col], m[pivot] = m[pivot], m[col]
		out[col], out[pivot] = out[pivot], out[col]
		if p := m[col][col]; p != 1 {
			pi := inv(p)
			scaleRow(m[col], pi)
			scaleRow(out[col], pi)
		}
		for row := 0; row < n; row++ {
			if row == col || m[row][col] == 0 {
				continue
			}
			f := m[row][col]
			mulAddSlice(m[row], m[col], f)
			mulAddSlice(out[row], out[col], f)
		}
	}
	return out, nil
}

func scaleRow(row []byte, c byte) {
	for i, v := range row {
		row[i] = mul(v, c)
	}
}
