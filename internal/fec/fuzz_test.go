package fec

import (
	"bytes"
	"testing"

	"pmcast/internal/event"
)

// FuzzFECRoundTrip checks decode(encode) identity under arbitrary erasure
// patterns: for every (k, r) and loss mask the fuzzer invents, whatever the
// assembler recovers must be bit-identical to the original body (with its
// header metadata intact), and whenever no more than r of the k+r symbols
// are lost it must recover every missing source. Degenerate shapes — r = 0
// (coding off), k = 1, generations with every symbol lost — are seeded
// explicitly.
func FuzzFECRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint64(0b0011), []byte("0123456789abcdef0123456789abcdef"))
	f.Add(uint8(4), uint8(0), uint64(0), []byte("no repairs at all: uncoded path"))
	f.Add(uint8(1), uint8(1), uint64(0b01), []byte("k=1 parity"))
	f.Add(uint8(3), uint8(1), uint64(0b0111), []byte("all sources lost"))
	f.Add(uint8(2), uint8(2), uint64(0b1111), []byte("everything lost"))
	f.Add(uint8(8), uint8(4), uint64(0xf0), []byte("lose the repairs only"))

	f.Fuzz(func(t *testing.T, kRaw, rRaw uint8, mask uint64, data []byte) {
		k := 1 + int(kRaw)%16
		r := int(rRaw) % 5
		if len(data) == 0 {
			data = []byte{0}
		}
		srcs := make([]Source, k)
		for i := 0; i < k; i++ {
			n := 1 + (int(data[i%len(data)])+i)%48
			body := make([]byte, n)
			for j := range body {
				body[j] = data[(i*7+j)%len(data)]
			}
			srcs[i] = Source{
				ID:   event.ID{Origin: "f", Seq: uint64(i)},
				Meta: Meta{Depth: 1 + i%4, Rate: 1, Round: int(data[i%len(data)]) % 7},
				Body: body,
			}
		}

		enc := NewEncoder(k, r)
		gens := enc.Encode(srcs)
		if r == 0 {
			if gens != nil {
				t.Fatal("r=0 must produce no generations")
			}
			return
		}
		if len(gens) != 1 {
			t.Fatalf("want 1 generation, got %d", len(gens))
		}
		g := gens[0]

		asm := NewAssembler()
		lostSrc := map[int]bool{}
		var rec []Recovered
		for i := 0; i < k; i++ {
			if mask&(1<<i) != 0 {
				lostSrc[i] = true
				continue
			}
			rec = append(rec, asm.ObserveSource(srcs[i].ID, srcs[i].Body)...)
		}
		repairsDelivered := 0
		for j, rp := range g.Split() {
			if mask&(1<<(k+j)) != 0 {
				continue
			}
			repairsDelivered++
			rec = append(rec, asm.ObserveRepair("s", rp)...)
		}

		for _, rv := range rec {
			i := int(rv.ID.Seq)
			if !lostSrc[i] {
				t.Fatalf("recovered symbol %d that was never lost", i)
			}
			if !bytes.Equal(rv.Body, srcs[i].Body) {
				t.Fatalf("recovered body %d differs from the original", i)
			}
			if rv.Meta != srcs[i].Meta {
				t.Fatalf("recovered meta %d differs: %+v != %+v", i, rv.Meta, srcs[i].Meta)
			}
		}
		if len(lostSrc) > 0 && repairsDelivered >= len(lostSrc) {
			if len(rec) != len(lostSrc) {
				t.Fatalf("k=%d r=%d mask=%b: %d symbols survive but only %d of %d lost sources recovered",
					k, r, mask, (k-len(lostSrc))+repairsDelivered, len(rec), len(lostSrc))
			}
		}
		if st := asm.Stats(); st.Corrupt != 0 {
			t.Fatalf("round trip flagged corrupt symbols: %+v", st)
		}
	})
}
