package fec

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"pmcast/internal/event"
)

func randSymbols(rng *rand.Rand, k, symLen int) [][]byte {
	src := make([][]byte, k)
	for i := range src {
		src[i] = make([]byte, symLen)
		rng.Read(src[i])
	}
	return src
}

func encodeAll(t *testing.T, c *Code, src [][]byte, symLen int) [][]byte {
	t.Helper()
	repairs := make([][]byte, c.R())
	for i := range repairs {
		repairs[i] = make([]byte, symLen)
	}
	c.EncodeInto(repairs, src)
	return repairs
}

// TestReconstructAllErasurePatterns exhausts every erasure pattern that
// loses at most r symbols for a range of (k, r) and checks the sources come
// back bit-exact — the MDS property the Vandermonde construction promises.
func TestReconstructAllErasurePatterns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kr := range [][2]int{{1, 1}, {1, 3}, {2, 1}, {2, 2}, {3, 3}, {4, 2}, {4, 4}, {5, 3}, {8, 2}, {8, 4}} {
		k, r := kr[0], kr[1]
		c, err := NewCode(k, r)
		if err != nil {
			t.Fatalf("NewCode(%d,%d): %v", k, r, err)
		}
		const symLen = 37
		src := randSymbols(rng, k, symLen)
		repairs := encodeAll(t, c, src, symLen)
		n := k + r
		for mask := 0; mask < 1<<n; mask++ {
			lost := 0
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					lost++
				}
			}
			if lost > r {
				continue
			}
			shards := make([][]byte, n)
			for i := 0; i < k; i++ {
				if mask&(1<<i) == 0 {
					shards[i] = src[i]
				}
			}
			for i := 0; i < r; i++ {
				if mask&(1<<(k+i)) == 0 {
					shards[k+i] = repairs[i]
				}
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("(%d,%d) mask %b: %v", k, r, mask, err)
			}
			for i := 0; i < k; i++ {
				if !bytes.Equal(shards[i], src[i]) {
					t.Fatalf("(%d,%d) mask %b: source %d mismatch", k, r, mask, i)
				}
			}
		}
	}
}

func TestReconstructInsufficient(t *testing.T) {
	c, _ := NewCode(4, 2)
	src := randSymbols(rand.New(rand.NewSource(2)), 4, 16)
	repairs := encodeAll(t, c, src, 16)
	shards := [][]byte{nil, nil, nil, src[3], nil, repairs[1]}
	if err := c.Reconstruct(shards); err != ErrInsufficient {
		t.Fatalf("want ErrInsufficient, got %v", err)
	}
}

// TestXOREncodeZeroAlloc pins the r = 1 parity path to zero allocations —
// the property the wire hot path depends on.
func TestXOREncodeZeroAlloc(t *testing.T) {
	c, _ := NewCode(8, 1)
	src := randSymbols(rand.New(rand.NewSource(3)), 8, 256)
	repairs := [][]byte{make([]byte, 256)}
	allocs := testing.AllocsPerRun(100, func() {
		c.EncodeInto(repairs, src)
	})
	if allocs != 0 {
		t.Fatalf("XOR encode path allocates: %v allocs/op", allocs)
	}
	want := make([]byte, 256)
	for _, s := range src {
		for i, b := range s {
			want[i] ^= b
		}
	}
	if !bytes.Equal(repairs[0], want) {
		t.Fatal("r=1 repair is not the XOR parity of the sources")
	}
}

func TestSymbolPackUnpack(t *testing.T) {
	for _, body := range [][]byte{nil, {}, {1}, bytes.Repeat([]byte{0xab}, 300)} {
		symLen := SymbolLen(body) + 3 // with padding
		sym := make([]byte, symLen)
		PackSymbol(sym, body)
		got, err := UnpackSymbol(sym)
		if err != nil {
			t.Fatalf("unpack: %v", err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("body mismatch: got %x want %x", got, body)
		}
	}
	if _, err := UnpackSymbol([]byte{0xff}); err == nil {
		t.Fatal("truncated symbol must not unpack")
	}
	if _, err := UnpackSymbol([]byte{10, 1, 2}); err == nil {
		t.Fatal("overlong length prefix must not unpack")
	}
}

func genID(i int) event.ID {
	return event.ID{Origin: "0.1", Seq: uint64(i)}
}

func makeSources(rng *rand.Rand, n int) []Source {
	srcs := make([]Source, n)
	for i := range srcs {
		body := make([]byte, 5+rng.Intn(60))
		rng.Read(body)
		srcs[i] = Source{
			ID:   genID(i),
			Meta: Meta{Depth: 1 + i%3, Rate: 1, Round: i},
			Body: body,
		}
	}
	return srcs
}

// TestEncoderAssemblerRecovery drives the full sender→receiver pipeline:
// encode a round, lose some sources, observe the survivors and the repairs,
// and check the assembler hands back exactly the lost bodies.
func TestEncoderAssemblerRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, kr := range [][2]int{{4, 1}, {4, 2}, {8, 3}} {
		k, r := kr[0], kr[1]
		enc := NewEncoder(k, r)
		srcs := makeSources(rng, k)
		gens := enc.Encode(srcs)
		if len(gens) != 1 {
			t.Fatalf("want 1 generation, got %d", len(gens))
		}
		g := gens[0]
		if g.K != k || g.R != r || len(g.Repairs) != r {
			t.Fatalf("generation shape: %+v", g)
		}

		asm := NewAssembler()
		lost := map[int]bool{}
		for len(lost) < r {
			lost[rng.Intn(k)] = true
		}
		var rec []Recovered
		for i, src := range srcs {
			if lost[i] {
				continue
			}
			rec = append(rec, asm.ObserveSource(src.ID, src.Body)...)
		}
		for _, rp := range g.Split() {
			rec = append(rec, asm.ObserveRepair("s", rp)...)
		}
		if len(rec) != len(lost) {
			t.Fatalf("(%d,%d): recovered %d, lost %d", k, r, len(rec), len(lost))
		}
		for _, rv := range rec {
			i := int(rv.ID.Seq)
			if !lost[i] {
				t.Fatalf("recovered a symbol that was never lost: %v", rv.ID)
			}
			if !bytes.Equal(rv.Body, srcs[i].Body) {
				t.Fatalf("recovered body %d mismatch", i)
			}
			if rv.Meta != srcs[i].Meta {
				t.Fatalf("recovered meta %d mismatch: %+v != %+v", i, rv.Meta, srcs[i].Meta)
			}
		}
		st := asm.Stats()
		if st.Recoveries != int64(len(lost)) || st.Decodes != 1 {
			t.Fatalf("stats: %+v", st)
		}
	}
}

// TestEncoderSplitsGenerations checks a round larger than k is chunked,
// with a short tail generation coded under its own (k', r) code.
func TestEncoderSplitsGenerations(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	enc := NewEncoder(4, 2)
	gens := enc.Encode(makeSources(rng, 10))
	if len(gens) != 3 {
		t.Fatalf("want 3 generations, got %d", len(gens))
	}
	if gens[2].K != 2 {
		t.Fatalf("tail generation k = %d, want 2", gens[2].K)
	}
	seen := map[uint64]bool{}
	for _, g := range gens {
		if seen[g.Gen] {
			t.Fatal("generation counter reused")
		}
		seen[g.Gen] = true
	}
}

// TestAssemblerRepairFirst delivers the repairs before any source: the
// generation must wait, then complete as sources trickle in.
func TestAssemblerRepairFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	enc := NewEncoder(3, 1)
	srcs := makeSources(rng, 3)
	g := enc.Encode(srcs)[0]

	asm := NewAssembler()
	if rec := asm.ObserveRepair("s", g.Split()[0]); rec != nil {
		t.Fatalf("premature recovery: %v", rec)
	}
	if rec := asm.ObserveSource(srcs[0].ID, srcs[0].Body); rec != nil {
		t.Fatalf("premature recovery: %v", rec)
	}
	rec := asm.ObserveSource(srcs[1].ID, srcs[1].Body)
	if len(rec) != 1 || !bytes.Equal(rec[0].Body, srcs[2].Body) {
		t.Fatalf("want body 2 recovered, got %v", rec)
	}
}

// TestAssemblerSweepExpires checks the partial-generation timeout: after
// genTTL rounds an incomplete generation is dropped and a late repair
// re-opens a fresh one instead of resurrecting stale state.
func TestAssemblerSweepExpires(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	enc := NewEncoder(3, 1)
	g := enc.Encode(makeSources(rng, 3))[0]

	asm := NewAssembler()
	asm.ObserveRepair("s", g.Split()[0])
	for i := 0; i < genTTL; i++ {
		asm.Sweep()
	}
	if st := asm.Stats(); st.Expired != 1 {
		t.Fatalf("want 1 expired generation, got %+v", st)
	}
}

// TestAssemblerRejectsMalformed throws hostile repair headers at the
// assembler; none may produce a recovery or panic.
func TestAssemblerRejectsMalformed(t *testing.T) {
	asm := NewAssembler()
	bad := []Repair{
		{K: 0, R: 1, SymLen: 4, Index: 0, Data: make([]byte, 4)},
		{K: 2, R: 0, SymLen: 4, Index: 0, IDs: make([]event.ID, 2), Meta: make([]Meta, 2), Data: make([]byte, 4)},
		{K: 2, R: 1, SymLen: 4, Index: 1, IDs: make([]event.ID, 2), Meta: make([]Meta, 2), Data: make([]byte, 4)},
		{K: 2, R: 1, SymLen: 4, Index: 0, IDs: make([]event.ID, 1), Meta: make([]Meta, 1), Data: make([]byte, 4)},
		{K: 2, R: 1, SymLen: 4, Index: 0, IDs: make([]event.ID, 2), Meta: make([]Meta, 1), Data: make([]byte, 4)},
		{K: 2, R: 1, SymLen: 4, Index: 0, IDs: make([]event.ID, 2), Meta: make([]Meta, 2), Data: make([]byte, 3)},
		{K: 200, R: 100, SymLen: 4, Index: 0, IDs: make([]event.ID, 200), Meta: make([]Meta, 200), Data: make([]byte, 4)},
	}
	for i, rp := range bad {
		if rec := asm.ObserveRepair("s", rp); rec != nil {
			t.Fatalf("malformed repair %d produced a recovery", i)
		}
	}
	if st := asm.Stats(); st.Corrupt != int64(len(bad)) {
		t.Fatalf("want %d corrupt, got %+v", len(bad), st)
	}
}

// TestCodeParameterValidation pins the accepted parameter domain.
func TestCodeParameterValidation(t *testing.T) {
	for _, kr := range [][2]int{{0, 1}, {-1, 0}, {1, -1}, {200, 57}} {
		if _, err := NewCode(kr[0], kr[1]); err == nil {
			t.Fatalf("NewCode(%d,%d) must fail", kr[0], kr[1])
		}
	}
	if _, err := NewCode(200, 56); err != nil {
		t.Fatalf("NewCode(200,56): %v", err)
	}
}

func TestGenerationRepairBytes(t *testing.T) {
	g := Generation{Repairs: []RepairSymbol{{Data: make([]byte, 10)}, {Data: make([]byte, 7)}}}
	if got := g.RepairBytes(); got != 17 {
		t.Fatalf("RepairBytes = %d, want 17", got)
	}
}

func BenchmarkReconstruct(b *testing.B) {
	for _, kr := range [][2]int{{8, 1}, {8, 2}, {16, 4}} {
		k, r := kr[0], kr[1]
		b.Run(fmt.Sprintf("k%d_r%d", k, r), func(b *testing.B) {
			c, _ := NewCode(k, r)
			rng := rand.New(rand.NewSource(8))
			src := randSymbols(rng, k, 256)
			repairs := make([][]byte, r)
			for i := range repairs {
				repairs[i] = make([]byte, 256)
			}
			c.EncodeInto(repairs, src)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				shards := make([][]byte, k+r)
				copy(shards, src)
				for j := 0; j < r; j++ {
					shards[j] = nil // lose the first r sources
					shards[k+j] = repairs[j]
				}
				if err := c.Reconstruct(shards); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEncoderAccumulatesAcrossRounds drives one routing key's accumulator:
// sends smaller than k accumulate silently, the k-th distinct event flushes
// a generation onto that round's envelope, the flushed generation then rides
// the next genCopies-1 envelopes toward the same key as replica copies, and
// retransmissions — of accumulated or already-coded events — are never
// double-counted.
func TestEncoderAccumulatesAcrossRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	enc := NewEncoder(4, 1)
	srcs := makeSources(rng, 6)

	if gens := enc.Add("t", srcs[:2]); gens != nil {
		t.Fatalf("premature flush: %v", gens)
	}
	// A retransmission of an already-accumulated event must not fill a slot.
	if gens := enc.Add("t", srcs[1:2]); gens != nil {
		t.Fatalf("duplicate flushed a generation: %v", gens)
	}
	gens := enc.Add("t", srcs[2:4])
	if len(gens) != 1 {
		t.Fatalf("want 1 generation at the 4th distinct event, got %d", len(gens))
	}
	g := gens[0]
	if g.K != 4 || len(g.IDs) != 4 || len(g.Meta) != 4 || len(g.Repairs) != 1 {
		t.Fatalf("generation shape: %+v", g)
	}
	for i := 0; i < 4; i++ {
		if g.IDs[i] != srcs[i].ID || g.Meta[i] != srcs[i].Meta {
			t.Fatalf("slot %d holds %v, want %v", i, g.IDs[i], srcs[i].ID)
		}
	}

	// The coded generation spreads: the next genCopies-1 envelopes carry a
	// replica copy each, then it stops. Re-sent coded events are skipped.
	for i := 0; i < genCopies-1; i++ {
		copies := enc.Add("t", srcs[:1])
		if len(copies) != 1 || copies[0].Gen != g.Gen {
			t.Fatalf("envelope %d: want replica of gen %d, got %+v", i, g.Gen, copies)
		}
	}
	if extra := enc.Add("t", srcs[:2]); extra != nil {
		t.Fatalf("generation over-replicated (or coded events re-coded): %v", extra)
	}

	// The flushed generation must reconstruct like any other.
	asm := NewAssembler()
	for i := 0; i < 3; i++ { // source 3 lost
		asm.ObserveSource(srcs[i].ID, srcs[i].Body)
	}
	rec := asm.ObserveRepair("n", g.Split()[0])
	if len(rec) != 1 || rec[0].ID != srcs[3].ID || !bytes.Equal(rec[0].Body, srcs[3].Body) {
		t.Fatalf("accumulated generation did not recover the lost source: %v", rec)
	}
}

// TestEncoderPiggybacksAged pins the cheap short-flush path: once the open
// generation has waited piggybackAge rounds, the next envelope flushes it
// short — no dedicated repair-only envelope needed while traffic flows —
// and the events that triggered the flush start the next generation.
func TestEncoderPiggybacksAged(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	enc := NewEncoder(8, 1)
	srcs := makeSources(rng, 2)
	enc.Add("t", srcs[:1])
	for i := 0; i < piggybackAge; i++ {
		if out := enc.FlushAged(100); out != nil {
			t.Fatalf("backstop fired below its age bound: %v", out)
		}
	}
	gens := enc.Add("t", srcs[1:2])
	if len(gens) != 1 || gens[0].K != 1 || gens[0].IDs[0] != srcs[0].ID {
		t.Fatalf("want the aged K=1 generation piggybacked, got %+v", gens)
	}
}

// TestEncoderFlushAged pins the backstop: a partial generation left waiting
// with no envelopes to ride flushes after maxAge rounds under a (k', r)
// code, and an empty accumulator never flushes.
func TestEncoderFlushAged(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	enc := NewEncoder(8, 2)
	srcs := makeSources(rng, 3)
	enc.Add("t", srcs)

	if out := enc.FlushAged(2); out != nil {
		t.Fatalf("flushed a fresh generation: %v", out)
	}
	if out := enc.FlushAged(2); out != nil {
		t.Fatalf("flushed one round early: %v", out)
	}
	out := enc.FlushAged(2)
	if len(out) != 1 || out[0].Key != "t" || len(out[0].Gens) != 1 {
		t.Fatalf("aged flush: %+v", out)
	}
	g := out[0].Gens[0]
	if g.K != 3 || g.R != 2 || len(g.Repairs) != 2 {
		t.Fatalf("short generation shape: %+v", g)
	}
	if out := enc.FlushAged(2); out != nil {
		t.Fatalf("empty accumulator flushed: %v", out)
	}
}

// TestEncoderKeysAreIndependent pins the per-subtree grouping: events sent
// toward different routing keys accumulate in separate generations, so a
// generation never mixes events bound for different subtrees — the mix
// would present mostly holes to every receiver and decode nowhere.
func TestEncoderKeysAreIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	enc := NewEncoder(2, 1)
	srcs := makeSources(rng, 4)

	if gens := enc.Add("a", srcs[:1]); gens != nil {
		t.Fatalf("premature flush on key a: %v", gens)
	}
	// Key b fills first: its generation holds only b's events.
	gens := enc.Add("b", srcs[2:4])
	if len(gens) != 1 {
		t.Fatalf("key b should flush at k=2, got %+v", gens)
	}
	if g := gens[0]; g.IDs[0] != srcs[2].ID || g.IDs[1] != srcs[3].ID {
		t.Fatalf("key b generation mixed keys: %+v", g.IDs)
	}
	// The same event accumulates under both keys — each subtree's
	// generation must be self-contained.
	gens = enc.Add("a", srcs[1:3])
	if len(gens) != 1 {
		t.Fatalf("key a should flush at k=2, got %+v", gens)
	}
	if g := gens[0]; g.IDs[0] != srcs[0].ID || g.IDs[1] != srcs[1].ID {
		t.Fatalf("key a generation: %+v", g.IDs)
	}
	if gens := enc.Add("a", srcs[2:3]); len(gens) != 1 || gens[0].Gen != 1 {
		t.Fatalf("want key a's replica copy, got %+v", gens)
	}
}
