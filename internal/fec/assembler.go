package fec

import "pmcast/internal/event"

// Assembler is the receiver side of the coding layer. It keeps one global
// cache of canonical event bodies — filled from every gossip the node
// receives, whoever sent it — and matches repair symbols (which arrive
// tagged by sender, since generation numbers are per-sender counters) to
// the generations they belong to. The moment any generation holds k of
// its k+r symbols with at least one source missing, it solves for the
// missing sources and hands back the recovered bodies.
//
// The source cache is global on purpose: symbols are canonical event
// encodings, identical no matter which sender transmitted the event, so
// a generation coded by sender S completes from copies the node obtained
// anywhere. That is what lets the sender side code each event once
// instead of once per link — a repair patches the rare event the node
// missed on every inbound link at once.
//
// The assembler is owned by the single-writer protocol stage: no locking,
// and every internal iteration runs over insertion-ordered slices rather
// than maps, so a seeded run replays byte-identically.
//
// Nothing here is trusted: repair headers are bounds-checked, recovered
// symbols carry the event ID the generation header promised so the caller
// can reject a mis-matched reconstruction, and all state is bounded with
// deterministic FIFO eviction. A partial generation that never completes
// simply expires after a few gossip rounds — its arrived source symbols
// were already processed as ordinary gossips, so expiry is the "fall back
// to what arrived" path, not a loss.
type Assembler struct {
	round   int
	senders map[string]*senderState
	order   []string // sender insertion order: deterministic sweep + eviction
	src     map[event.ID][]byte
	srcOrder []event.ID
	stats   Stats
}

// Stats counts the assembler's work. Decodes is matrix solves attempted,
// Recoveries is source symbols actually reconstructed, Corrupt is
// reconstructions discarded by framing or identity checks, Expired is
// partial generations dropped by the round-based timeout.
type Stats struct {
	RepairsReceived int64
	Decodes         int64
	Recoveries      int64
	Corrupt         int64
	Expired         int64
}

// Recovered is one reconstructed event body. ID is the identity the
// generation header promised for this symbol slot — the caller must verify
// the decoded event matches it before accepting the recovery — and Meta is
// the routing metadata the header carried for the slot, from which the
// caller rebuilds the full gossip.
type Recovered struct {
	ID   event.ID
	Meta Meta
	Body []byte
}

// Bounds. Generations live genTTL gossip rounds before expiring; the
// source cache holds the last maxSrcCache distinct bodies seen on any
// link (a few rounds' worth at any realistic event rate); sender slots
// and pending generations are FIFO-capped so a hostile stream cannot
// grow state without limit.
const (
	genTTL       = 6
	senderTTL    = 64
	maxSrcCache  = 2048
	maxGens      = 64
	maxDone      = 256
	maxSenders   = 4096
	maxSymbolLen = 1 << 20
)

type senderState struct {
	gens     map[uint64]*pendingGen
	genOrder []uint64
	// done remembers recently completed generations so a late duplicate or
	// extra repair symbol cannot re-open one and recover the same sources
	// twice.
	done      map[uint64]bool
	doneOrder []uint64
	lastSeen  int
}

// markDone retires a generation for good (bounded FIFO).
func (s *senderState) markDone(key uint64) {
	delete(s.gens, key)
	if s.done[key] {
		return
	}
	if len(s.doneOrder) >= maxDone {
		evict := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.done, evict)
	}
	s.done[key] = true
	s.doneOrder = append(s.doneOrder, key)
}

type pendingGen struct {
	k, r    int
	symLen  int
	ids     []event.ID
	meta    []Meta
	srcHave [][]byte // len k, padded symbols; nil = missing
	reps    []RepairSymbol
	born    int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{
		senders: make(map[string]*senderState),
		src:     make(map[event.ID][]byte),
	}
}

// Stats returns a snapshot of the counters.
func (a *Assembler) Stats() Stats { return a.stats }

// ObserveSource records the canonical event bytes of a gossip the node
// obtained — received on any link, recovered, or published locally — and
// fills them into every pending generation that lists the event. It
// returns the recoveries that completion unlocked, if any. Event bytes
// are immutable per ID, so re-observing a cached event is a no-op beyond
// the generation fill.
func (a *Assembler) ObserveSource(id event.ID, body []byte) []Recovered {
	if _, ok := a.src[id]; !ok {
		if len(a.srcOrder) >= maxSrcCache {
			evict := a.srcOrder[0]
			a.srcOrder = a.srcOrder[1:]
			delete(a.src, evict)
		}
		a.srcOrder = append(a.srcOrder, id)
		a.src[id] = append([]byte(nil), body...)
	}
	var out []Recovered
	for _, from := range a.order {
		s := a.senders[from]
		if s == nil {
			continue
		}
		for _, gk := range s.genOrder {
			g := s.gens[gk]
			if g == nil {
				continue
			}
			if a.fillSources(g) {
				out = append(out, a.tryComplete(s, gk, g)...)
			}
		}
	}
	return out
}

// ObserveRepair folds one repair symbol into its generation, creating the
// partial generation on first sight, and returns any recoveries it
// unlocked. Malformed repairs are dropped silently — the wire layer has
// already charged the sender for them.
func (a *Assembler) ObserveRepair(from string, rp Repair) []Recovered {
	a.stats.RepairsReceived++
	if rp.K < 1 || rp.R < 1 || rp.K+rp.R > MaxSymbols ||
		rp.Index < 0 || rp.Index >= rp.R ||
		rp.SymLen < 1 || rp.SymLen > maxSymbolLen ||
		len(rp.IDs) != rp.K || len(rp.Meta) != rp.K || len(rp.Data) != rp.SymLen {
		a.stats.Corrupt++
		return nil
	}
	s := a.sender(from)
	if s == nil {
		return nil
	}
	if s.done[rp.Gen] {
		return nil
	}
	g := s.gens[rp.Gen]
	if g == nil {
		if len(s.genOrder) >= maxGens {
			a.evictOldestGen(s)
		}
		g = &pendingGen{
			k:       rp.K,
			r:       rp.R,
			symLen:  rp.SymLen,
			ids:     append([]event.ID(nil), rp.IDs...),
			meta:    append([]Meta(nil), rp.Meta...),
			srcHave: make([][]byte, rp.K),
			born:    a.round,
		}
		s.gens[rp.Gen] = g
		s.genOrder = append(s.genOrder, rp.Gen)
		a.fillSources(g)
	} else if g.k != rp.K || g.r != rp.R || g.symLen != rp.SymLen {
		a.stats.Corrupt++
		return nil
	}
	for _, have := range g.reps {
		if have.Index == rp.Index {
			return a.tryComplete(s, rp.Gen, g)
		}
	}
	g.reps = append(g.reps, RepairSymbol{Index: rp.Index, Data: rp.Data})
	return a.tryComplete(s, rp.Gen, g)
}

// Sweep advances the assembler's round clock: generations older than
// genTTL rounds expire, and senders silent for senderTTL rounds are
// forgotten. The caller invokes it once per gossip round.
func (a *Assembler) Sweep() {
	a.round++
	keep := a.order[:0]
	for _, from := range a.order {
		s := a.senders[from]
		if s == nil {
			continue
		}
		kg := s.genOrder[:0]
		for _, gk := range s.genOrder {
			g := s.gens[gk]
			if g == nil {
				continue
			}
			if a.round-g.born >= genTTL {
				delete(s.gens, gk)
				a.stats.Expired++
				continue
			}
			kg = append(kg, gk)
		}
		s.genOrder = kg
		if a.round-s.lastSeen >= senderTTL {
			delete(a.senders, from)
			continue
		}
		keep = append(keep, from)
	}
	a.order = keep
}

func (a *Assembler) sender(from string) *senderState {
	s := a.senders[from]
	if s != nil {
		s.lastSeen = a.round
		return s
	}
	if len(a.order) >= maxSenders {
		evict := a.order[0]
		a.order = a.order[1:]
		delete(a.senders, evict)
	}
	s = &senderState{
		gens:     make(map[uint64]*pendingGen),
		done:     make(map[uint64]bool),
		lastSeen: a.round,
	}
	a.senders[from] = s
	a.order = append(a.order, from)
	return s
}

func (a *Assembler) evictOldestGen(s *senderState) {
	for len(s.genOrder) > 0 {
		gk := s.genOrder[0]
		s.genOrder = s.genOrder[1:]
		if _, ok := s.gens[gk]; ok {
			delete(s.gens, gk)
			a.stats.Expired++
			return
		}
	}
}

// fillSources copies cached source bodies into the generation's symbol
// slots. Reports whether it filled at least one new slot.
func (a *Assembler) fillSources(g *pendingGen) bool {
	filled := false
	for i, id := range g.ids {
		if g.srcHave[i] != nil {
			continue
		}
		body, ok := a.src[id]
		if !ok || SymbolLen(body) > g.symLen {
			continue
		}
		sym := make([]byte, g.symLen)
		PackSymbol(sym, body)
		g.srcHave[i] = sym
		filled = true
	}
	return filled
}

// tryComplete attempts reconstruction once the generation holds k symbols.
// Whatever the outcome — complete with nothing to recover, a successful
// solve, or a corrupt reconstruction — the generation is retired; only a
// still-short generation keeps waiting.
func (a *Assembler) tryComplete(s *senderState, key uint64, g *pendingGen) []Recovered {
	have := 0
	for _, sym := range g.srcHave {
		if sym != nil {
			have++
		}
	}
	if have == g.k {
		s.markDone(key)
		return nil
	}
	if have+len(g.reps) < g.k {
		return nil
	}
	shards := make([][]byte, g.k+g.r)
	copy(shards, g.srcHave)
	for _, rep := range g.reps {
		shards[g.k+rep.Index] = rep.Data
	}
	code, err := NewCode(g.k, g.r)
	if err != nil {
		s.markDone(key)
		a.stats.Corrupt++
		return nil
	}
	a.stats.Decodes++
	if err := code.Reconstruct(shards); err != nil {
		s.markDone(key)
		a.stats.Corrupt++
		return nil
	}
	var out []Recovered
	for i := 0; i < g.k; i++ {
		if g.srcHave[i] != nil {
			continue
		}
		body, err := UnpackSymbol(shards[i])
		if err != nil {
			a.stats.Corrupt++
			continue
		}
		a.stats.Recoveries++
		out = append(out, Recovered{ID: g.ids[i], Meta: g.meta[i], Body: body})
	}
	s.markDone(key)
	return out
}

// NoteCorrupt lets the caller report a recovery it rejected (identity
// mismatch after decode), keeping the corrupt counter in one place.
func (a *Assembler) NoteCorrupt() { a.stats.Corrupt++ }
