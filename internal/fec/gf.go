// Package fec implements the erasure-coding layer of the coded-gossip
// extension: systematic (k, r) codes over GF(2^8) that turn the k gossip
// bodies of one send round into r extra "repair" symbols, such that any k of
// the k+r symbols reconstruct the originals. r = 1 is plain XOR parity;
// r ≥ 2 uses a Reed–Solomon code built from a Vandermonde matrix.
//
// The package is self-contained: it knows about byte slices and event IDs,
// not about the wire format or the protocol. wire frames Generation values
// into the batch envelope; node groups outgoing gossips into generations on
// the sender and reassembles them on the receiver.
package fec

// GF(2^8) arithmetic with the AES-adjacent primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the conventional choice for
// Reed–Solomon erasure codes. A full 64 KiB product table keeps the
// per-byte encode kernel to one table load and one XOR.

const gfPoly = 0x11d

var (
	gfExp [512]byte // gfExp[i] = α^i, doubled so log-sums need no mod
	gfLog [256]byte // gfLog[x] for x ≠ 0
	gfMul [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		la := int(gfLog[a])
		for b := 1; b < 256; b++ {
			gfMul[a][b] = gfExp[la+int(gfLog[b])]
		}
	}
}

func mul(a, b byte) byte { return gfMul[a][b] }

func inv(a byte) byte {
	if a == 0 {
		panic("fec: inverse of zero")
	}
	return gfExp[255-int(gfLog[a])]
}

// pow returns a^n for n ≥ 0.
func pow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return gfExp[(int(gfLog[a])*n)%255]
}

// mulAddSlice computes dst ^= c·src byte-wise. c = 0 is a no-op, c = 1 a
// plain XOR; both short-circuit the table walk. len(src) must not exceed
// len(dst).
func mulAddSlice(dst, src []byte, c byte) {
	switch c {
	case 0:
		return
	case 1:
		for i, s := range src {
			dst[i] ^= s
		}
	default:
		row := &gfMul[c]
		for i, s := range src {
			dst[i] ^= row[s]
		}
	}
}
