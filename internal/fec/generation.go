package fec

import (
	"errors"

	"pmcast/internal/binenc"
	"pmcast/internal/event"
)

// A generation is one coded group of gossips from one sender to one peer:
// k source symbols (the canonical event encodings of k gossips, which
// travel as ordinary gossip sections) plus r repair symbols that ride the
// batch's FEC piggyback section. The sender accumulates a generation per
// peer across gossip rounds until it holds k distinct events, so one repair
// symbol amortizes over a full generation rather than a single round's
// often-tiny send.
//
// Symbols are the event bytes, not the whole gossip body: a retransmitted
// gossip re-sends the same event under a different round counter, and
// coding the invariant part is what lets a repair emitted rounds later
// still match the copies the receiver cached. The per-gossip routing
// metadata (depth, rate, round) rides the generation header instead, one
// entry per source, so a recovered event can be folded back into the
// protocol as a full gossip.
//
// Symbols are equal-length byte strings: each event body is framed as
// uvarint(len) ‖ body and zero-padded to the generation's SymLen, so
// receivers can rebuild source symbols from the gossips they did receive
// and strip the padding from recovered ones.

// Meta is the non-event remainder of a gossip — what the receiver needs to
// resume disseminating a recovered event.
type Meta struct {
	Depth int
	Rate  float64
	Round int
}

// Source is one gossip presented to the encoder: its identity, its routing
// metadata, and its canonical event bytes (the symbol payload). Body must
// not be mutated after it is handed to the encoder.
type Source struct {
	ID   event.ID
	Meta Meta
	Body []byte
}

// RepairSymbol is one coded symbol within a generation.
type RepairSymbol struct {
	// Index is the repair row in [0, r); global symbol index is K+Index.
	Index int
	// Data is the SymLen-byte coded payload.
	Data []byte
}

// Generation describes one coded group as framed on the wire: the identity
// and routing metadata of its k source gossips (in symbol order) and the
// repair symbols that travel alongside them.
type Generation struct {
	// Gen is the sender-local generation sequence number; (sender, Gen)
	// keys partial generations on the receiver.
	Gen uint64
	// K is the source-symbol count.
	K int
	// R is the code's total repair count — carried so receivers derive the
	// same coefficient rows even when only some repair symbols arrive (the
	// r = 1 XOR row differs from the Vandermonde rows used for r ≥ 2).
	R int
	// SymLen is the common symbol length in bytes.
	SymLen int
	// IDs lists the source events in symbol order (len K).
	IDs []event.ID
	// Meta carries each source's routing metadata, parallel to IDs.
	Meta []Meta
	// Repairs holds the repair symbols present in this envelope.
	Repairs []RepairSymbol
}

// Repair is one repair symbol flattened for transit through fabrics that
// unbatch envelopes: the generation header plus a single symbol, so loss
// can be drawn per symbol.
type Repair struct {
	Gen    uint64
	K      int
	R      int
	SymLen int
	IDs    []event.ID
	Meta   []Meta
	Index  int
	Data   []byte
}

// Split flattens the generation into per-symbol Repair values sharing the
// header (IDs and Meta are aliased, not copied).
func (g Generation) Split() []Repair {
	out := make([]Repair, len(g.Repairs))
	for i, rs := range g.Repairs {
		out[i] = Repair{Gen: g.Gen, K: g.K, R: g.R, SymLen: g.SymLen,
			IDs: g.IDs, Meta: g.Meta, Index: rs.Index, Data: rs.Data}
	}
	return out
}

// RepairBytes sums the repair payload bytes carried by the generation.
func (g Generation) RepairBytes() int {
	n := 0
	for _, rs := range g.Repairs {
		n += len(rs.Data)
	}
	return n
}

// SymbolLen returns the framed length of an event body as a symbol, before
// padding: the uvarint length prefix plus the body itself.
func SymbolLen(body []byte) int {
	return binenc.UvarintLen(uint64(len(body))) + len(body)
}

// PackSymbol writes the framed body into buf (length = the generation's
// SymLen) and zeroes the tail. buf must hold at least SymbolLen(body).
func PackSymbol(buf, body []byte) {
	n := len(binenc.AppendUvarint(buf[:0], uint64(len(body))))
	copy(buf[n:], body)
	for i := n + len(body); i < len(buf); i++ {
		buf[i] = 0
	}
}

// ErrBadSymbol reports a recovered symbol whose framing is inconsistent
// (length prefix overruns the symbol).
var ErrBadSymbol = errors.New("fec: malformed recovered symbol")

// UnpackSymbol strips the length framing from a recovered symbol and
// returns the event body (aliasing sym, no copy).
func UnpackSymbol(sym []byte) ([]byte, error) {
	r := binenc.NewReader(sym)
	n := r.Uvarint()
	if r.Err() != nil {
		return nil, ErrBadSymbol
	}
	rest := sym[len(sym)-r.Len():]
	if n > uint64(len(rest)) {
		return nil, ErrBadSymbol
	}
	return rest[:n], nil
}
