package fec

import "pmcast/internal/event"

// Encoder is the sender side of the coding layer. The caller groups its
// outgoing gossips by a routing key — the destination subtree, in the
// node's usage — and the encoder keeps one open generation per key,
// accumulating the distinct events sent toward that subtree across rounds.
// The moment a generation holds k distinct events it is coded and flushed
// onto the current round envelope, then replicated onto the next few
// envelopes toward the same subtree so the repair symbols spread there.
//
// The grouping is what makes repairs decodable: gossip routes events by
// interest, so the nodes of a subtree hold (roughly) exactly the events
// that were sent toward that subtree. A generation mixing events bound
// for different subtrees would present mostly holes to every receiver —
// each node could fill only its own subtree's slots — and reconstruction
// needs k of k+r symbols present. Keying by destination keeps the
// sources a receiver is asked to supply among the ones it plausibly has.
//
// Symbols are canonical event encodings, identical from every sender, so
// a receiver fills slots from copies of the events it obtained anywhere —
// a repair does not need to travel the same link as the sources it
// protects. The repair's job is to patch the rare event a receiver (or a
// whole subtree, when every copy of a delegate hop is lost) missed.
//
// Generations that stop growing are flushed short: piggybacked onto the
// next envelope toward their subtree after piggybackAge rounds, or by
// FlushAged as a dedicated repair-only envelope if traffic stops.
//
// The encoder is owned by the single-writer protocol stage: no locking,
// and all state lives in insertion-ordered slices so seeded runs replay
// byte-identically.
type Encoder struct {
	k, r    int
	nextGen uint64
	codes   map[int]*Code // by generation size: short flushes use (k', r)
	scratch [][]byte      // padded source-symbol buffers, reused across flushes

	round int
	keys  map[string]*openGen
	order []string // key insertion order: deterministic sweep + eviction
}

// maxKeys caps routing-key slots (FIFO eviction beyond it — far above any
// real subtree fan-out); recentCap bounds each key's recently-coded
// window; piggybackAge is how many rounds an open generation may wait
// short of k before the next envelope toward its subtree flushes it;
// genCopies is how many envelopes each coded generation rides in total —
// consecutive envelopes toward a subtree go to fresh peers there, so
// copies land on distinct links.
const (
	maxKeys      = 4096
	recentCap    = 1024
	piggybackAge = 2
	genCopies    = 2
)

type openGen struct {
	srcs []Source
	born int // encoder round when the generation opened
	// recent remembers the last recentCap event IDs coded for this key:
	// gossip retransmits an event for several rounds, and re-coding a copy
	// whose recovery the receiver would discard as a duplicate only spends
	// repair bytes. FIFO-bounded so a long stream cannot grow it.
	recent      map[event.ID]struct{}
	recentOrder []event.ID
	// pending holds coded generations still owed replica rides on
	// upcoming envelopes toward this subtree.
	pending []pendingCopy
}

type pendingCopy struct {
	gen  Generation
	left int
}

func (g *openGen) markCoded(ids []event.ID) {
	for _, id := range ids {
		if _, ok := g.recent[id]; ok {
			continue
		}
		if len(g.recentOrder) >= recentCap {
			evict := g.recentOrder[0]
			g.recentOrder = g.recentOrder[1:]
			delete(g.recent, evict)
		}
		g.recent[id] = struct{}{}
		g.recentOrder = append(g.recentOrder, id)
	}
}

// NewEncoder builds an encoder for (k, r). Panics on parameters NewCode
// rejects — the facade validates user input before it gets here.
func NewEncoder(k, r int) *Encoder {
	if _, err := NewCode(k, r); err != nil {
		panic(err.Error())
	}
	return &Encoder{k: k, r: r, codes: make(map[int]*Code), keys: make(map[string]*openGen)}
}

// K returns the configured generation size.
func (e *Encoder) K() int { return e.k }

// R returns the configured repair count.
func (e *Encoder) R() int { return e.r }

// Add accumulates one round envelope's gossips into the key's open
// generation and returns every generation that should ride this envelope:
// replica copies owed from earlier flushes toward this subtree, an aged
// short flush if the open generation waited past piggybackAge, and any
// generation the new events just filled. Events already coded for this
// key (recent window) or already waiting in its open generation are
// skipped — their symbol is unchanged, so a slot or a past repair already
// protects them. With r = 0 the encoder is inert and returns nil.
func (e *Encoder) Add(key string, srcs []Source) []Generation {
	if e.r == 0 {
		return nil
	}
	g := e.keys[key]
	if g == nil {
		if len(srcs) == 0 {
			return nil
		}
		if len(e.order) >= maxKeys {
			evict := e.order[0]
			e.order = e.order[1:]
			delete(e.keys, evict)
		}
		g = &openGen{born: e.round, recent: make(map[event.ID]struct{})}
		e.keys[key] = g
		e.order = append(e.order, key)
	}
	var out []Generation
	keep := g.pending[:0]
	for i := range g.pending {
		p := &g.pending[i]
		out = append(out, p.gen)
		if p.left--; p.left > 0 {
			keep = append(keep, *p)
		}
	}
	g.pending = keep
	if len(g.srcs) > 0 && e.round-g.born >= piggybackAge {
		out = append(out, e.flushOpen(g))
	}
	for _, s := range srcs {
		if _, coded := g.recent[s.ID]; coded {
			continue
		}
		dup := false
		for _, have := range g.srcs {
			if have.ID == s.ID {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		if len(g.srcs) == 0 {
			g.born = e.round
		}
		g.srcs = append(g.srcs, s)
		if len(g.srcs) == e.k {
			out = append(out, e.flushOpen(g))
		}
	}
	return out
}

// flushOpen codes the key's open generation, queues its replica rides,
// and returns the copy for the current envelope.
func (e *Encoder) flushOpen(g *openGen) Generation {
	gen := e.encodeGeneration(g.srcs)
	g.markCoded(gen.IDs)
	g.srcs = g.srcs[:0]
	if genCopies > 1 {
		g.pending = append(g.pending, pendingCopy{gen: gen, left: genCopies - 1})
	}
	return gen
}

// KeyGens is one routing key's flushed generations, as returned by
// FlushAged.
type KeyGens struct {
	Key  string
	Gens []Generation
}

// FlushAged advances the encoder's round clock and flushes every open
// generation that has waited maxAge or more rounds without an envelope to
// piggyback on, in key insertion order. The caller invokes it once per
// gossip round and ships each key's generations toward that subtree; a
// non-empty result means traffic toward the subtree went quiet and the
// trailing events would otherwise lose their protection.
func (e *Encoder) FlushAged(maxAge int) []KeyGens {
	if e.r == 0 {
		e.round++
		return nil
	}
	var out []KeyGens
	for _, key := range e.order {
		g := e.keys[key]
		if g == nil || len(g.srcs) == 0 || e.round-g.born < maxAge {
			continue
		}
		out = append(out, KeyGens{Key: key, Gens: []Generation{e.flushOpen(g)}})
	}
	e.round++
	return out
}

// Encode codes a set of sources immediately, splitting into generations of
// at most k — the stateless path, used by tests and by senders that manage
// their own grouping. With r = 0 (or no sources) it returns nil.
func (e *Encoder) Encode(srcs []Source) []Generation {
	if e.r == 0 || len(srcs) == 0 {
		return nil
	}
	gens := make([]Generation, 0, (len(srcs)+e.k-1)/e.k)
	for start := 0; start < len(srcs); start += e.k {
		end := start + e.k
		if end > len(srcs) {
			end = len(srcs)
		}
		gens = append(gens, e.encodeGeneration(srcs[start:end]))
	}
	return gens
}

func (e *Encoder) encodeGeneration(srcs []Source) Generation {
	k := len(srcs)
	symLen := 0
	for _, s := range srcs {
		if n := SymbolLen(s.Body); n > symLen {
			symLen = n
		}
	}
	for len(e.scratch) < k {
		e.scratch = append(e.scratch, nil)
	}
	sym := e.scratch[:k]
	ids := make([]event.ID, k)
	meta := make([]Meta, k)
	for i, s := range srcs {
		if cap(sym[i]) < symLen {
			sym[i] = make([]byte, symLen)
		}
		sym[i] = sym[i][:symLen]
		PackSymbol(sym[i], s.Body)
		ids[i] = s.ID
		meta[i] = s.Meta
	}
	code := e.codes[k]
	if code == nil {
		code, _ = NewCode(k, e.r)
		e.codes[k] = code
	}
	repairData := make([]byte, e.r*symLen)
	repairs := make([]RepairSymbol, e.r)
	shards := make([][]byte, e.r)
	for x := 0; x < e.r; x++ {
		shards[x] = repairData[x*symLen : (x+1)*symLen]
		repairs[x] = RepairSymbol{Index: x, Data: shards[x]}
	}
	code.EncodeInto(shards, sym)
	gen := Generation{
		Gen:     e.nextGen,
		K:       k,
		R:       e.r,
		SymLen:  symLen,
		IDs:     ids,
		Meta:    meta,
		Repairs: repairs,
	}
	e.nextGen++
	return gen
}
