package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Epoch is the default origin of a Virtual clock: an arbitrary fixed instant
// so that traces and reports are stable across runs and machines.
var Epoch = time.Date(2000, time.January, 1, 0, 0, 0, 0, time.UTC)

// Virtual is a deterministic clock: time is a number that only moves when
// Advance, AdvanceTo or RunNext is called, and scheduled callbacks run
// synchronously on the advancing goroutine in strict (due time, scheduling
// order) order. Two runs that schedule the same work in the same order
// therefore execute it identically — the property the scenario harness
// builds its byte-identical traces on.
//
// Callbacks may schedule further work (including at the current instant);
// the queue is re-examined after every callback. All methods are safe for
// concurrent use, but determinism is only meaningful when a single
// goroutine advances the clock.
type Virtual struct {
	mu    sync.Mutex
	now   time.Time
	seq   uint64
	queue vqueue
	// dead counts cancelled entries still occupying heap slots. Lazy discard
	// alone lets the heap grow without bound when long-lived runs stop many
	// timers (churn waves stopping thousands of ticker chains); once dead
	// entries outnumber live ones the heap is compacted in place.
	dead int
}

var _ Clock = (*Virtual)(nil)

// NewVirtual returns a virtual clock reading Epoch.
func NewVirtual() *Virtual { return NewVirtualAt(Epoch) }

// NewVirtualAt returns a virtual clock reading start.
func NewVirtualAt(start time.Time) *Virtual { return &Virtual{now: start} }

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// AfterFunc implements Clock. Non-positive delays fire at the current
// instant on the next advance (they never run inline).
func (v *Virtual) AfterFunc(d time.Duration, f func()) Timer {
	if d < 0 {
		d = 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.scheduleLocked(v.now.Add(d), f)
}

func (v *Virtual) scheduleLocked(when time.Time, f func()) *vtimer {
	t := &vtimer{v: v, when: when, seq: v.seq, fn: f, pending: true}
	v.seq++
	heap.Push(&v.queue, t)
	return t
}

// ScheduleTagged schedules a callback at an absolute instant, tagged with an
// owner (the sharded harness tags every entry with the fleet index of the
// node the callback belongs to, -1 for engine-owned work). Instants in the
// past fire at the current time on the next advance, like AfterFunc.
func (v *Virtual) ScheduleTagged(at time.Time, tag int32, f func()) Timer {
	v.mu.Lock()
	defer v.mu.Unlock()
	if at.Before(v.now) {
		at = v.now
	}
	t := v.scheduleLocked(at, f)
	t.tag = tag
	return t
}

// PopDue removes and returns the earliest pending callback due at or before
// until, without running it and without moving the clock — the primitive a
// windowed dispatcher builds batches from. ok=false means nothing is due.
func (v *Virtual) PopDue(until time.Time) (when time.Time, tag int32, fn func(), ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.discardDeadLocked()
	if len(v.queue) == 0 || v.queue[0].when.After(until) {
		return time.Time{}, 0, nil, false
	}
	tm := heap.Pop(&v.queue).(*vtimer)
	tm.pending = false
	return tm.when, tm.tag, tm.fn, true
}

// SetNow moves the clock reading forward to t without running callbacks.
// Callers (the windowed dispatcher) guarantee everything due at or before t
// has already been popped; t never moves the clock backwards.
func (v *Virtual) SetNow(t time.Time) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.After(v.now) {
		v.now = t
	}
}

// discardDeadLocked drops cancelled entries off the heap top.
func (v *Virtual) discardDeadLocked() {
	for len(v.queue) > 0 && !v.queue[0].pending {
		heap.Pop(&v.queue)
		v.dead--
	}
}

// compactFloor is the heap size below which compaction is not worth a
// rebuild.
const compactFloor = 64

// maybeCompactLocked rebuilds the heap when cancelled entries outnumber
// pending ones: the live entries are filtered in place and re-heapified,
// which preserves the (when, seq) order exactly — seq survives the rebuild.
func (v *Virtual) maybeCompactLocked() {
	if len(v.queue) < compactFloor || v.dead*2 <= len(v.queue) {
		return
	}
	live := v.queue[:0]
	for _, t := range v.queue {
		if t.pending {
			live = append(live, t)
		}
	}
	for i := len(live); i < len(v.queue); i++ {
		v.queue[i] = nil
	}
	v.queue = live
	for i, t := range v.queue {
		t.index = i
	}
	heap.Init(&v.queue)
	v.dead = 0
}

// queueLen reports the heap's physical size, dead entries included (test
// hook for the compaction bound).
func (v *Virtual) queueLen() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.queue)
}

// NewTicker implements Clock. A virtual ticker re-schedules itself every d;
// ticks that find the channel occupied are coalesced like time.Ticker's.
// Note that consuming such ticks from another goroutine races with the
// advancing one — deterministic harnesses drive components by callback
// instead (AfterFunc chains).
func (v *Virtual) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		panic("clock: non-positive ticker interval")
	}
	vt := &vticker{v: v, d: d, ch: make(chan time.Time, 1)}
	v.mu.Lock()
	vt.timer = v.scheduleLocked(v.now.Add(d), vt.fire)
	v.mu.Unlock()
	return vt
}

// Sleep implements Clock: it blocks until another goroutine advances the
// clock past d. Calling Sleep from the advancing goroutine deadlocks;
// single-threaded harnesses use AfterFunc instead.
func (v *Virtual) Sleep(d time.Duration) {
	done := make(chan struct{})
	v.AfterFunc(d, func() { close(done) })
	<-done
}

// Pending returns the number of scheduled, un-stopped callbacks.
func (v *Virtual) Pending() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, t := range v.queue {
		if t.pending {
			n++
		}
	}
	return n
}

// NextAt reports the due time of the earliest pending callback.
func (v *Virtual) NextAt() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.discardDeadLocked()
	if len(v.queue) == 0 {
		return time.Time{}, false
	}
	return v.queue[0].when, true
}

// Advance moves the clock forward by d, running every callback that comes
// due, in order, and returns how many ran. The clock ends exactly d later
// even if fewer (or no) callbacks were scheduled.
func (v *Virtual) Advance(d time.Duration) int {
	if d < 0 {
		d = 0
	}
	return v.AdvanceTo(v.Now().Add(d))
}

// AdvanceTo moves the clock forward to t (no-op if t is not in the future),
// running every callback due at or before t in (time, scheduling) order.
func (v *Virtual) AdvanceTo(t time.Time) int {
	ran := 0
	for {
		if v.runDueLocked(t) {
			ran++
			continue
		}
		break
	}
	v.mu.Lock()
	if t.After(v.now) {
		v.now = t
	}
	v.mu.Unlock()
	return ran
}

// RunNext advances the clock to the earliest pending callback and runs every
// callback due at exactly that instant — including ones the callbacks
// themselves schedule for it. It returns the new current time and the number
// of callbacks run; zero means the queue was empty.
func (v *Virtual) RunNext() (time.Time, int) {
	next, ok := v.NextAt()
	if !ok {
		return v.Now(), 0
	}
	ran := 0
	for v.runDueLocked(next) {
		ran++
	}
	v.mu.Lock()
	if next.After(v.now) {
		v.now = next
	}
	now := v.now
	v.mu.Unlock()
	return now, ran
}

// runDueLocked pops and runs the earliest callback due at or before t,
// moving the clock to its due time first. It reports whether one ran. The
// callback executes without the clock lock held, so it may re-enter the
// clock freely.
func (v *Virtual) runDueLocked(t time.Time) bool {
	v.mu.Lock()
	v.discardDeadLocked()
	if len(v.queue) == 0 || v.queue[0].when.After(t) {
		v.mu.Unlock()
		return false
	}
	tm := heap.Pop(&v.queue).(*vtimer)
	tm.pending = false
	if tm.when.After(v.now) {
		v.now = tm.when
	}
	v.mu.Unlock()
	tm.fn()
	return true
}

// vtimer is one scheduled callback. The pending flag is guarded by the
// owning clock's mutex; cancelled entries stay in the heap, are lazily
// discarded off the top, and trigger an in-place compaction once they
// outnumber the live entries (see maybeCompactLocked).
type vtimer struct {
	v       *Virtual
	when    time.Time
	seq     uint64
	tag     int32
	fn      func()
	pending bool
	index   int
}

// Stop implements Timer. Stopping after the callback ran returns false.
func (t *vtimer) Stop() bool {
	t.v.mu.Lock()
	defer t.v.mu.Unlock()
	stopped := t.pending
	if stopped {
		t.pending = false
		t.v.dead++
		t.v.maybeCompactLocked()
	}
	return stopped
}

// vticker is the virtual Ticker: a self-rescheduling callback feeding a
// capacity-one channel.
type vticker struct {
	v  *Virtual
	d  time.Duration
	ch chan time.Time

	mu      sync.Mutex
	timer   *vtimer
	stopped bool
}

func (vt *vticker) C() <-chan time.Time { return vt.ch }

func (vt *vticker) Stop() {
	vt.mu.Lock()
	defer vt.mu.Unlock()
	vt.stopped = true
	if vt.timer != nil {
		vt.timer.Stop()
	}
}

func (vt *vticker) fire() {
	vt.mu.Lock()
	if vt.stopped {
		vt.mu.Unlock()
		return
	}
	vt.v.mu.Lock()
	vt.timer = vt.v.scheduleLocked(vt.v.now.Add(vt.d), vt.fire)
	now := vt.v.now
	vt.v.mu.Unlock()
	vt.mu.Unlock()
	select {
	case vt.ch <- now:
	default: // receiver lags: coalesce, as time.Ticker does
	}
}

// vqueue is a min-heap over (when, seq).
type vqueue []*vtimer

func (q vqueue) Len() int { return len(q) }
func (q vqueue) Less(i, j int) bool {
	if !q[i].when.Equal(q[j].when) {
		return q[i].when.Before(q[j].when)
	}
	return q[i].seq < q[j].seq
}
func (q vqueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *vqueue) Push(x any) {
	t := x.(*vtimer)
	t.index = len(*q)
	*q = append(*q, t)
}
func (q *vqueue) Pop() any {
	old := *q
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return t
}
