package clock

import (
	"testing"
	"time"
)

// TestStoppedTimersCompacted pins the heap-growth bound: cancelled timers
// must not accumulate past the live population (plus the compaction floor).
// Before compaction existed, a churn wave stopping thousands of ticker
// chains left every dead entry in the heap until its due time — at 64k-node
// scale the heap grew without bound over a long campaign.
func TestStoppedTimersCompacted(t *testing.T) {
	v := NewVirtual()
	const total = 10000
	const keep = 100
	timers := make([]Timer, 0, total)
	for i := 0; i < total; i++ {
		d := time.Duration(i+1) * time.Millisecond
		timers = append(timers, v.AfterFunc(d, func() {}))
	}
	for i, tm := range timers {
		if i%(total/keep) == 0 {
			continue // leave a sparse live population
		}
		if !tm.Stop() {
			t.Fatalf("timer %d: Stop reported already-fired", i)
		}
	}
	live := v.Pending()
	if live != keep {
		t.Fatalf("Pending() = %d, want %d (must stay exact across compaction)", live, keep)
	}
	if got := v.queueLen(); got > 2*live+compactFloor {
		t.Fatalf("heap holds %d entries for %d live timers — dead entries are not being compacted", got, live)
	}

	// The surviving timers must still fire in order: compaction may not
	// disturb (when, seq) heap order.
	fired := 0
	v.AdvanceTo(v.Now().Add(total * time.Millisecond))
	_ = fired
	if p := v.Pending(); p != 0 {
		t.Fatalf("after advancing past every deadline, %d timers still pending", p)
	}
}

// TestCompactionKeepsOrder verifies stopped-timer compaction cannot reorder
// the survivors: two interleaved populations fire in exactly scheduled
// order after the dead majority is compacted away.
func TestCompactionKeepsOrder(t *testing.T) {
	v := NewVirtual()
	var got []int
	var doomed []Timer
	for i := 0; i < 2000; i++ {
		i := i
		if i%20 == 0 {
			v.AfterFunc(time.Duration(i+1)*time.Millisecond, func() { got = append(got, i) })
			continue
		}
		doomed = append(doomed, v.AfterFunc(time.Duration(i+1)*time.Millisecond, func() { t.Errorf("stopped timer %d fired", i) }))
	}
	for _, tm := range doomed {
		tm.Stop()
	}
	v.AdvanceTo(v.Now().Add(3 * time.Second))
	for j := 1; j < len(got); j++ {
		if got[j] <= got[j-1] {
			t.Fatalf("timers fired out of order: %d after %d", got[j], got[j-1])
		}
	}
	if len(got) != 100 {
		t.Fatalf("%d survivors fired, want 100", len(got))
	}
}
