package clock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualStartsAtEpoch(t *testing.T) {
	v := NewVirtual()
	if !v.Now().Equal(Epoch) {
		t.Fatalf("new virtual clock reads %v, want %v", v.Now(), Epoch)
	}
	custom := time.Date(2024, 6, 1, 12, 0, 0, 0, time.UTC)
	if got := NewVirtualAt(custom).Now(); !got.Equal(custom) {
		t.Fatalf("NewVirtualAt reads %v, want %v", got, custom)
	}
}

func TestAfterFuncRunsInTimeOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	v.AfterFunc(30*time.Millisecond, func() { order = append(order, 3) })
	v.AfterFunc(10*time.Millisecond, func() { order = append(order, 1) })
	v.AfterFunc(20*time.Millisecond, func() { order = append(order, 2) })
	if ran := v.Advance(25 * time.Millisecond); ran != 2 {
		t.Fatalf("Advance ran %d callbacks, want 2", ran)
	}
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("callbacks ran in order %v, want [1 2]", order)
	}
	if got, want := v.Now(), Epoch.Add(25*time.Millisecond); !got.Equal(want) {
		t.Fatalf("clock reads %v after Advance, want %v", got, want)
	}
	v.Advance(10 * time.Millisecond)
	if len(order) != 3 || order[2] != 3 {
		t.Fatalf("third callback not run: %v", order)
	}
}

func TestSameInstantRunsInScheduleOrder(t *testing.T) {
	v := NewVirtual()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		v.AfterFunc(time.Millisecond, func() { order = append(order, i) })
	}
	v.Advance(time.Millisecond)
	for i, got := range order {
		if got != i {
			t.Fatalf("same-instant callbacks ran in order %v, want ascending", order)
		}
	}
}

func TestCallbackSeesDueTimeAsNow(t *testing.T) {
	v := NewVirtual()
	var at time.Time
	v.AfterFunc(7*time.Millisecond, func() { at = v.Now() })
	v.Advance(time.Second)
	if want := Epoch.Add(7 * time.Millisecond); !at.Equal(want) {
		t.Fatalf("callback observed now=%v, want %v", at, want)
	}
}

func TestCallbacksScheduleMoreWork(t *testing.T) {
	v := NewVirtual()
	var hops []time.Duration
	var hop func()
	hop = func() {
		hops = append(hops, v.Now().Sub(Epoch))
		if len(hops) < 3 {
			v.AfterFunc(10*time.Millisecond, hop)
		}
	}
	v.AfterFunc(10*time.Millisecond, hop)
	v.Advance(time.Second)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(hops) != len(want) {
		t.Fatalf("chain ran %d times, want %d", len(hops), len(want))
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hop %d at %v, want %v", i, hops[i], want[i])
		}
	}
}

func TestTimerStopCancels(t *testing.T) {
	v := NewVirtual()
	fired := false
	tm := v.AfterFunc(time.Millisecond, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on a pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	v.Advance(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if v.Pending() != 0 {
		t.Fatalf("%d pending after stop and advance", v.Pending())
	}
}

func TestRunNextAdvancesOneInstant(t *testing.T) {
	v := NewVirtual()
	ran := make(map[time.Duration]int)
	mark := func() { ran[v.Now().Sub(Epoch)]++ }
	v.AfterFunc(5*time.Millisecond, mark)
	v.AfterFunc(5*time.Millisecond, mark)
	v.AfterFunc(9*time.Millisecond, mark)

	now, n := v.RunNext()
	if n != 2 || !now.Equal(Epoch.Add(5*time.Millisecond)) {
		t.Fatalf("first RunNext: now=%v ran=%d, want 5ms/2", now, n)
	}
	now, n = v.RunNext()
	if n != 1 || !now.Equal(Epoch.Add(9*time.Millisecond)) {
		t.Fatalf("second RunNext: now=%v ran=%d, want 9ms/1", now, n)
	}
	if _, n = v.RunNext(); n != 0 {
		t.Fatalf("empty RunNext ran %d", n)
	}
	if ran[5*time.Millisecond] != 2 || ran[9*time.Millisecond] != 1 {
		t.Fatalf("callback distribution %v", ran)
	}
}

func TestRunNextIncludesSameInstantReschedules(t *testing.T) {
	v := NewVirtual()
	var order []string
	v.AfterFunc(time.Millisecond, func() {
		order = append(order, "a")
		v.AfterFunc(0, func() { order = append(order, "a-child") })
	})
	v.AfterFunc(time.Millisecond, func() { order = append(order, "b") })
	_, n := v.RunNext()
	if n != 3 {
		t.Fatalf("RunNext ran %d callbacks, want 3 (incl. same-instant child)", n)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "a-child" {
		t.Fatalf("order %v, want [a b a-child]", order)
	}
}

func TestNextAtPeeks(t *testing.T) {
	v := NewVirtual()
	if _, ok := v.NextAt(); ok {
		t.Fatal("empty clock reports a next event")
	}
	tm := v.AfterFunc(42*time.Millisecond, func() {})
	at, ok := v.NextAt()
	if !ok || !at.Equal(Epoch.Add(42*time.Millisecond)) {
		t.Fatalf("NextAt = %v/%v", at, ok)
	}
	tm.Stop()
	if _, ok := v.NextAt(); ok {
		t.Fatal("stopped timer still reported by NextAt")
	}
}

func TestVirtualTickerTicksAndCoalesces(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(10 * time.Millisecond)
	defer tk.Stop()
	// Three intervals with nobody reading: ticks coalesce to one.
	v.Advance(30 * time.Millisecond)
	select {
	case at := <-tk.C():
		if !at.Equal(Epoch.Add(10 * time.Millisecond)) {
			t.Fatalf("first tick at %v", at)
		}
	default:
		t.Fatal("no tick after three intervals")
	}
	select {
	case at := <-tk.C():
		t.Fatalf("uncoalesced extra tick at %v", at)
	default:
	}
	// Reading keeps up: next advance produces the next tick.
	v.Advance(10 * time.Millisecond)
	select {
	case at := <-tk.C():
		if !at.Equal(Epoch.Add(40 * time.Millisecond)) {
			t.Fatalf("tick at %v, want 40ms", at)
		}
	default:
		t.Fatal("no tick after another interval")
	}
}

func TestVirtualTickerStop(t *testing.T) {
	v := NewVirtual()
	tk := v.NewTicker(time.Millisecond)
	tk.Stop()
	v.Advance(10 * time.Millisecond)
	select {
	case <-tk.C():
		t.Fatal("stopped ticker ticked")
	default:
	}
	if v.Pending() != 0 {
		t.Fatalf("%d callbacks pending after ticker stop", v.Pending())
	}
}

func TestSleepWakesWhenAdvanced(t *testing.T) {
	v := NewVirtual()
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Wait until the sleeper has registered its wake-up call.
	for v.Pending() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	v.Advance(50 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep did not wake after Advance")
	}
	wg.Wait()
}

func TestRealClockSmoke(t *testing.T) {
	var c Clock = Real{}
	if d := time.Since(c.Now()); d < 0 || d > time.Minute {
		t.Fatalf("real Now drifted: %v", d)
	}
	fired := make(chan struct{})
	tm := c.AfterFunc(time.Millisecond, func() { close(fired) })
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("real AfterFunc never fired")
	}
	if tm.Stop() {
		t.Fatal("Stop after firing returned true")
	}
	tk := c.NewTicker(time.Millisecond)
	defer tk.Stop()
	select {
	case <-tk.C():
	case <-time.After(5 * time.Second):
		t.Fatal("real ticker never ticked")
	}
}
