// Package clock is the time seam of the runtime: every layer that sleeps,
// ticks or reads the wall clock does so through the Clock interface, so the
// same code runs on real timers in production and on a deterministic
// virtual-time event queue in tests and chaos campaigns (internal/harness).
//
// Two implementations ship with the package:
//
//   - Real delegates to package time. It is the default everywhere a Clock
//     is injectable; its zero value is ready to use.
//   - Virtual (virtual.go) keeps a logical event queue and only moves when
//     told to. A thousand nodes' worth of gossip ticks, failure sweeps and
//     delayed deliveries execute in strict (time, scheduling-order) order on
//     the caller's goroutine, so a seeded scenario replays byte-identically.
package clock

import "time"

// Clock tells time and schedules work. Implementations are safe for
// concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// AfterFunc schedules f to run once, d from now. The returned Timer
	// can cancel the call before it fires.
	AfterFunc(d time.Duration, f func()) Timer
	// NewTicker returns a ticker firing every d on its channel. Ticks that
	// find the channel full are coalesced, like time.Ticker's.
	NewTicker(d time.Duration) Ticker
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
}

// Timer is a cancellable pending AfterFunc call.
type Timer interface {
	// Stop cancels the call, reporting whether it was still pending (false
	// means it already fired or was already stopped).
	Stop() bool
}

// Ticker delivers repeated ticks on a channel until stopped.
type Ticker interface {
	// C returns the tick channel.
	C() <-chan time.Time
	// Stop ends the ticks. It does not close the channel.
	Stop()
}

// Real is the production clock: a stateless veneer over package time. The
// zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// AfterFunc implements Clock.
func (Real) AfterFunc(d time.Duration, f func()) Timer { return time.AfterFunc(d, f) }

// NewTicker implements Clock.
func (Real) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

type realTicker struct{ t *time.Ticker }

func (rt realTicker) C() <-chan time.Time { return rt.t.C }
func (rt realTicker) Stop()               { rt.t.Stop() }
