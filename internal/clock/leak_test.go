// Snapshot-based leak checks for the virtual-time runtime: after a fleet of
// real nodes over the in-memory fabric shuts down, the virtual clock's event
// queue must be empty — no ticker chains, no cancelled-but-counted timers,
// no orphaned delayed deliveries. The test lives with the clock (as an
// external test package, so it may import the runtime) because Pending() is
// the clock's own leak ledger.
package clock_test

import (
	"runtime"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
	"pmcast/internal/interest"
	"pmcast/internal/node"
	"pmcast/internal/transport"
)

// TestNodeStopLeavesNoPendingVirtualEvents runs four Start-mode nodes on a
// virtual clock over a delayed fabric (so in-flight messages become clock
// events), then stops everything and asserts the queue is drained.
func TestNodeStopLeavesNoPendingVirtualEvents(t *testing.T) {
	vc := clock.NewVirtual()
	if vc.Pending() != 0 {
		t.Fatalf("fresh clock has %d pending events", vc.Pending())
	}
	baseline := runtime.NumGoroutine()
	fab := transport.MustNetwork(transport.Config{
		Clock:    vc,
		MinDelay: time.Millisecond,
		MaxDelay: 5 * time.Millisecond,
	})
	space := addr.MustRegular(4, 1)
	nodes := make([]*node.Node, 0, 4)
	for i := 0; i < 4; i++ {
		n, err := node.New(fab, node.Config{
			Addr:  space.AddressAt(i),
			Space: space,
			R:     2, F: 2, C: 3,
			Subscription:       interest.NewSubscription(),
			GossipInterval:     10 * time.Millisecond,
			MembershipInterval: 20 * time.Millisecond,
			Clock:              vc,
			Seed:               int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		n.Start()
	}
	for _, n := range nodes[1:] {
		if err := n.Join(nodes[0].Addr()); err != nil {
			t.Fatal(err)
		}
	}
	// Drive enough virtual time for ticker chains and delayed deliveries to
	// churn; the Start-mode goroutines consume ticks concurrently, which is
	// fine — this test is about cleanup, not determinism.
	for i := 0; i < 100; i++ {
		vc.Advance(5 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	if vc.Pending() == 0 {
		t.Fatal("fleet scheduled no clock events — the leak check is vacuous")
	}
	for _, n := range nodes {
		n.Stop()
	}
	if err := fab.Close(); err != nil {
		t.Fatal(err)
	}
	if p := vc.Pending(); p != 0 {
		t.Errorf("%d virtual-clock events still pending after Stop+Close", p)
	}
	// Stop waits for each node's run loop, so the goroutine count must
	// settle back to the baseline too.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("node goroutines leaked: %d live, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestNetworkCloseCancelsDelayedDeliveries pins the fabric half on its own:
// messages in flight on a virtual clock are clock events, and closing the
// fabric must cancel every one of them.
func TestNetworkCloseCancelsDelayedDeliveries(t *testing.T) {
	vc := clock.NewVirtual()
	fab := transport.MustNetwork(transport.Config{
		Clock:    vc,
		MinDelay: time.Millisecond,
		MaxDelay: 2 * time.Millisecond,
	})
	a, err := fab.Attach(addr.New(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fab.Attach(addr.New(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := a.Send(addr.New(1), i); err != nil {
			t.Fatal(err)
		}
	}
	if vc.Pending() != 10 {
		t.Fatalf("pending = %d, want 10 in-flight deliveries", vc.Pending())
	}
	if err := fab.Close(); err != nil {
		t.Fatal(err)
	}
	if p := vc.Pending(); p != 0 {
		t.Errorf("%d deliveries still scheduled after Close", p)
	}
}
