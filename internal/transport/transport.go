// Package transport defines the pluggable network fabric the asynchronous
// pmcast runtime runs on, and provides the in-memory reference
// implementation (Network).
//
// The runtime depends only on the two small interfaces below: a Transport
// attaches endpoints by hierarchical address, and an Endpoint exchanges
// opaque protocol messages. Backends decide what "the network" is — the
// in-memory Network in this package simulates the UDP/IP fabric of the
// paper's environment (silent loss, delay, partitions, bounded queues),
// while internal/transport/udp frames the same messages over real UDP
// sockets via the internal/wire codec.
//
// Simulated fabrics additionally expose their fault-injection knobs through
// the narrow Fabric interface; tests that need loss or partitions assert to
// it (or use *Network directly) without widening the runtime's dependency.
package transport

import (
	"errors"

	"pmcast/internal/addr"
)

// Errors reported by transports. Backends wrap these sentinel values so
// callers can errors.Is across implementations.
var (
	ErrClosed        = errors.New("transport: endpoint closed")
	ErrDuplicateAddr = errors.New("transport: address already attached")
	ErrUnknownAddr   = errors.New("transport: unknown destination")
)

// Envelope is one delivered message.
type Envelope struct {
	From, To addr.Address
	Payload  any
}

// Transport is a network fabric processes attach to by address. All
// implementations are safe for concurrent use.
type Transport interface {
	// Attach registers an address and returns its live endpoint.
	Attach(a addr.Address) (Endpoint, error)
	// Close tears the whole fabric down: every attached endpoint is
	// closed and pending deliveries are cancelled. Safe to call twice.
	Close() error
}

// Endpoint is one attached process's network interface.
type Endpoint interface {
	// Addr returns the endpoint's address.
	Addr() addr.Address
	// Send routes a protocol message to the destination address. Loss is
	// silent, as on a real network; only unknown destinations and a
	// closed endpoint return errors.
	Send(to addr.Address, payload any) error
	// Recv exposes the inbox. The channel closes when the endpoint does.
	Recv() <-chan Envelope
	// Close detaches the endpoint from the fabric.
	Close() error
}

// Fabric is the fault-injection surface of simulated transports. The
// in-memory Network implements it; tests drive loss, partitions and drop
// accounting through this interface without depending on the concrete type.
type Fabric interface {
	Transport
	// SetLoss changes the message loss probability at runtime.
	SetLoss(p float64)
	// Block severs the directed link from → to.
	Block(from, to addr.Address)
	// BlockBidirectional severs both directions between two addresses.
	BlockBidirectional(a, b addr.Address)
	// Heal removes every block rule.
	Heal()
	// Dropped returns the number of messages lost so far.
	Dropped() int
	// Size returns the number of attached endpoints.
	Size() int
}
