// Package transport defines the pluggable network fabric the asynchronous
// pmcast runtime runs on, and provides the in-memory reference
// implementation (Network).
//
// The runtime depends only on the two small interfaces below: a Transport
// attaches endpoints by hierarchical address, and an Endpoint exchanges
// opaque protocol messages. Backends decide what "the network" is — the
// in-memory Network in this package simulates the UDP/IP fabric of the
// paper's environment (silent loss, delay, partitions, bounded queues),
// while internal/transport/udp frames the same messages over real UDP
// sockets via the internal/wire codec.
//
// Simulated fabrics additionally expose their fault-injection knobs through
// the narrow Fabric interface; tests that need loss or partitions assert to
// it (or use *Network directly) without widening the runtime's dependency.
package transport

import (
	"errors"
	"sync"

	"pmcast/internal/addr"
)

// Errors reported by transports. Backends wrap these sentinel values so
// callers can errors.Is across implementations.
var (
	ErrClosed        = errors.New("transport: endpoint closed")
	ErrDuplicateAddr = errors.New("transport: address already attached")
	ErrUnknownAddr   = errors.New("transport: unknown destination")
)

// Envelope is one delivered message.
type Envelope struct {
	From, To addr.Address
	Payload  any
}

// Raw is an undecoded wire frame: a byte-oriented transport configured to
// defer unframing (see udp.Config.DeferDecode) delivers envelopes whose
// Payload is a Raw, and the consumer decodes. The staged node engine uses
// this to spread decoding over several ingress workers — each owning its own
// interning decoder — instead of serializing it on the transport's single
// read loop. Frames ride pooled buffers; call Release once decoded.
type Raw struct {
	Frame []byte
	buf   *[]byte
}

var rawPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 2048)
	return &b
}}

// NewRaw copies one frame into a pooled buffer.
func NewRaw(frame []byte) Raw {
	p := rawPool.Get().(*[]byte)
	*p = append((*p)[:0], frame...)
	return Raw{Frame: *p, buf: p}
}

// Release returns the frame's backing buffer to the pool; the Raw must not
// be used afterwards. Release on a literal (unpooled) Raw is a no-op.
func (r Raw) Release() {
	if r.buf != nil {
		*r.buf = (*r.buf)[:0]
		rawPool.Put(r.buf)
	}
}

// Transport is a network fabric processes attach to by address. All
// implementations are safe for concurrent use.
type Transport interface {
	// Attach registers an address and returns its live endpoint.
	Attach(a addr.Address) (Endpoint, error)
	// Close tears the whole fabric down: every attached endpoint is
	// closed and pending deliveries are cancelled. Safe to call twice.
	Close() error
}

// Endpoint is one attached process's network interface.
type Endpoint interface {
	// Addr returns the endpoint's address.
	Addr() addr.Address
	// Send routes a protocol message to the destination address. Loss is
	// silent, as on a real network; only unknown destinations and a
	// closed endpoint return errors.
	Send(to addr.Address, payload any) error
	// Recv exposes the inbox. The channel closes when the endpoint does.
	// Multiple consumers may receive concurrently — the staged node engine
	// drains one endpoint with several ingress workers.
	Recv() <-chan Envelope
	// Close detaches the endpoint from the fabric.
	Close() error
}

// Outgoing is one queued protocol message awaiting transmission — the unit
// the staged engine's egress workers accumulate and flush.
type Outgoing struct {
	To      addr.Address
	Payload any
}

// BatchSender is an optional Endpoint extension: backends that can amortize
// kernel work across messages implement it, and the engine's egress workers
// hand over their whole drained send queue instead of one datagram at a
// time. The UDP backend flushes the queue with a single sendmmsg vector per
// 64 messages (coalescing same-destination frames with GSO where enabled);
// see internal/transport/udp.
//
// Delivery semantics match Send called once per message, in order:
// per-message loss stays silent, and SendMany keeps going past individual
// resolve/encode failures — it returns the first error only after
// attempting every message, so one unknown destination cannot stall a
// round's remaining envelopes.
type BatchSender interface {
	SendMany(msgs []Outgoing) error
}

// BatchReceiver is an optional Endpoint extension for burst-draining the
// inbox: RecvMany blocks for the first envelope, then fills out with
// whatever else is already pending — without blocking again — so a consumer
// wakes once per traffic burst rather than once per message. It returns the
// number of envelopes written and false once the endpoint is closed and
// drained (n may still be positive on that final call). Safe for concurrent
// use by multiple consumers, like Recv.
type BatchReceiver interface {
	RecvMany(out []Envelope) (int, bool)
}

// Fabric is the fault-injection surface of simulated transports. The
// in-memory Network implements it; tests drive loss, partitions and drop
// accounting through this interface without depending on the concrete type.
type Fabric interface {
	Transport
	// SetLoss changes the message loss probability at runtime.
	SetLoss(p float64)
	// Block severs the directed link from → to.
	Block(from, to addr.Address)
	// BlockBidirectional severs both directions between two addresses.
	BlockBidirectional(a, b addr.Address)
	// Heal removes every block rule.
	Heal()
	// Dropped returns the number of messages lost so far.
	Dropped() int
	// Size returns the number of attached endpoints.
	Size() int
}
