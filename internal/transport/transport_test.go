package transport

import (
	"errors"
	"testing"
	"time"

	"pmcast/internal/addr"
)

func TestAttachSendRecv(t *testing.T) {
	net := MustNetwork(Config{})
	a, err := net.Attach(addr.New(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach(addr.New(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if net.Size() != 2 {
		t.Errorf("size = %d", net.Size())
	}
	if err := a.Send(b.Addr(), "hello"); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Recv():
		if env.Payload != "hello" || !env.From.Equal(a.Addr()) || !env.To.Equal(b.Addr()) {
			t.Errorf("envelope = %+v", env)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestDuplicateAttach(t *testing.T) {
	net := MustNetwork(Config{})
	if _, err := net.Attach(addr.New(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Attach(addr.New(1)); !errors.Is(err, ErrDuplicateAddr) {
		t.Errorf("err = %v", err)
	}
}

func TestUnknownDestination(t *testing.T) {
	net := MustNetwork(Config{})
	a, _ := net.Attach(addr.New(1))
	if err := a.Send(addr.New(9), "x"); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("err = %v", err)
	}
	if net.Dropped() != 1 {
		t.Errorf("dropped = %d", net.Dropped())
	}
}

func TestLossDropsSilently(t *testing.T) {
	net := MustNetwork(Config{Loss: 1.0})
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Addr(), i); err != nil {
			t.Fatalf("loss must be silent: %v", err)
		}
	}
	if net.Dropped() != 10 {
		t.Errorf("dropped = %d", net.Dropped())
	}
	select {
	case env := <-b.Recv():
		t.Fatalf("unexpected delivery %+v", env)
	case <-time.After(20 * time.Millisecond):
	}
	// Healing the loss restores delivery.
	net.SetLoss(0)
	if err := a.Send(b.Addr(), "ok"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
	case <-time.After(time.Second):
		t.Fatal("no delivery after SetLoss(0)")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net := MustNetwork(Config{})
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))
	net.BlockBidirectional(a.Addr(), b.Addr())
	if err := a.Send(b.Addr(), "x"); err != nil {
		t.Fatalf("partition must be silent: %v", err)
	}
	if err := b.Send(a.Addr(), "y"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("delivery across partition")
	case <-a.Recv():
		t.Fatal("delivery across partition (reverse)")
	case <-time.After(20 * time.Millisecond):
	}
	net.Heal()
	if err := a.Send(b.Addr(), "again"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
	case <-time.After(time.Second):
		t.Fatal("no delivery after heal")
	}
}

func TestDelayedDelivery(t *testing.T) {
	net := MustNetwork(Config{MinDelay: 5 * time.Millisecond, MaxDelay: 10 * time.Millisecond})
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))
	start := time.Now()
	if err := a.Send(b.Addr(), "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
			t.Errorf("delivered too fast: %v", elapsed)
		}
	case <-time.After(time.Second):
		t.Fatal("no delayed delivery")
	}
}

func TestCloseStopsReception(t *testing.T) {
	net := MustNetwork(Config{})
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))
	b.Close()
	if net.Size() != 1 {
		t.Errorf("size after close = %d", net.Size())
	}
	if err := a.Send(b.Addr(), "x"); !errors.Is(err, ErrUnknownAddr) {
		t.Errorf("send to detached = %v", err)
	}
	if err := b.Send(a.Addr(), "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("send from closed = %v", err)
	}
	// Recv channel closes.
	if _, ok := <-b.Recv(); ok {
		t.Error("recv channel still open")
	}
	// Double close is safe.
	b.Close()
}

func TestNetworkCloseCancelsDelayedDeliveries(t *testing.T) {
	net := MustNetwork(Config{MinDelay: 50 * time.Millisecond, MaxDelay: 60 * time.Millisecond})
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))
	for i := 0; i < 10; i++ {
		if err := a.Send(b.Addr(), i); err != nil {
			t.Fatal(err)
		}
	}
	// Close before any timer fires: all in-flight deliveries are cancelled
	// and no timer remains registered.
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	net.mu.Lock()
	pending := len(net.timers)
	net.mu.Unlock()
	if pending != 0 {
		t.Errorf("timers still tracked after Close: %d", pending)
	}
	select {
	case env, ok := <-b.Recv():
		if ok {
			t.Fatalf("delivery after Close: %+v", env)
		}
	case <-time.After(100 * time.Millisecond):
		t.Error("recv channel not closed")
	}
}

func TestNetworkCloseRejectsFurtherUse(t *testing.T) {
	net := MustNetwork(Config{})
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if err := net.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if net.Size() != 0 {
		t.Errorf("size after close = %d", net.Size())
	}
	if err := a.Send(b.Addr(), "x"); !errors.Is(err, ErrClosed) {
		t.Errorf("send on closed network = %v", err)
	}
	if _, err := net.Attach(addr.New(3)); !errors.Is(err, ErrClosed) {
		t.Errorf("attach on closed network = %v", err)
	}
}

func TestNetworkImplementsFabric(t *testing.T) {
	var f Fabric = MustNetwork(Config{})
	ep, err := f.Attach(addr.New(1))
	if err != nil {
		t.Fatal(err)
	}
	f.SetLoss(1)
	f.Heal()
	if f.Size() != 1 || ep.Addr().Depth() != 1 {
		t.Errorf("fabric view wrong: size=%d", f.Size())
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	net := MustNetwork(Config{QueueLen: 2})
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))
	for i := 0; i < 5; i++ {
		if err := a.Send(b.Addr(), i); err != nil {
			t.Fatal(err)
		}
	}
	if net.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", net.Dropped())
	}
	got := 0
	for {
		select {
		case <-b.Recv():
			got++
			continue
		case <-time.After(20 * time.Millisecond):
		}
		break
	}
	if got != 2 {
		t.Errorf("received = %d, want 2", got)
	}
}
