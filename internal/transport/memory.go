// The in-memory reference fabric: addressable endpoints exchanging opaque
// payloads with configurable message loss, delivery delay and partitions.
//
// It substitutes for the UDP/IP fabric of a real deployment (the paper's
// environment) while preserving the failure modes the protocol is designed
// around: silent loss, delay, and unreachability. Tests inject faults
// deterministically through the Fabric knobs.

package transport

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
)

// Config tunes the in-memory network fabric.
type Config struct {
	// Loss is the probability a message is silently dropped in transit.
	Loss float64
	// MinDelay and MaxDelay bound the uniform random delivery delay; both
	// zero means synchronous hand-off on the sender's goroutine.
	MinDelay, MaxDelay time.Duration
	// QueueLen is each endpoint's inbox capacity (default 1024); overflow
	// drops messages, mirroring UDP socket buffers.
	QueueLen int
	// Seed seeds the fault RNG (0 uses a fixed default for reproducibility).
	Seed int64
	// Clock schedules delayed deliveries (default: the real clock). A
	// clock.Virtual turns in-flight messages into deterministic virtual-time
	// events — the scenario harness runs whole fleets this way.
	Clock clock.Clock
}

// Network is the shared in-memory fabric. Endpoints attach under their
// address; sends route by address. All methods are safe for concurrent use.
type Network struct {
	clk clock.Clock

	mu        sync.Mutex
	cfg       Config
	rng       *rand.Rand
	endpoints map[string]*memEndpoint
	blocked   map[string]bool // "from|to" directed block rules
	timers    map[clock.Timer]struct{}
	dropped   int
	closed    bool
}

// Network implements the full fault-injection surface.
var _ Fabric = (*Network)(nil)

// NewNetwork builds a fabric with the given configuration.
func NewNetwork(cfg Config) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	return &Network{
		clk:       clk,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: make(map[string]*memEndpoint),
		blocked:   make(map[string]bool),
		timers:    make(map[clock.Timer]struct{}),
	}
}

// Attach registers an address and returns its endpoint.
func (n *Network) Attach(a addr.Address) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	key := a.Key()
	if _, ok := n.endpoints[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateAddr, a)
	}
	ep := &memEndpoint{
		addr: a,
		net:  n,
		in:   make(chan Envelope, n.cfg.QueueLen),
	}
	n.endpoints[key] = ep
	return ep, nil
}

// Detach unregisters an address; its endpoint stops receiving.
func (n *Network) Detach(a addr.Address) {
	n.mu.Lock()
	ep, ok := n.endpoints[a.Key()]
	if ok {
		delete(n.endpoints, a.Key())
	}
	n.mu.Unlock()
	if ok {
		ep.close()
	}
}

// Close shuts the fabric down: every outstanding delayed delivery is
// cancelled (no timer or goroutine outlives the network — long simulation
// campaigns create and discard many networks) and every endpoint is
// detached. Subsequent Attach and Send calls fail with ErrClosed.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	timers := n.timers
	n.timers = make(map[clock.Timer]struct{})
	endpoints := n.endpoints
	n.endpoints = make(map[string]*memEndpoint)
	n.mu.Unlock()

	for t := range timers {
		t.Stop()
	}
	for _, ep := range endpoints {
		ep.close()
	}
	return nil
}

// SetLoss changes the loss probability at runtime (fault injection).
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Loss = p
}

// Block severs the directed link from → to (partition injection).
func (n *Network) Block(from, to addr.Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[from.Key()+"|"+to.Key()] = true
}

// BlockBidirectional severs both directions between two addresses.
func (n *Network) BlockBidirectional(a, b addr.Address) {
	n.Block(a, b)
	n.Block(b, a)
}

// Heal removes every block rule.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[string]bool)
}

// Dropped returns the number of messages lost so far (loss, partitions,
// overflow and unknown destinations).
func (n *Network) Dropped() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropped
}

// Size returns the number of attached endpoints.
func (n *Network) Size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.endpoints)
}

// route delivers one message subject to faults. Returns ErrUnknownAddr only
// for routing errors the sender can act on — faults are silent, as on a
// real network.
func (n *Network) route(from, to addr.Address, payload any) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	dst, ok := n.endpoints[to.Key()]
	if !ok {
		n.dropped++
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	if n.blocked[from.Key()+"|"+to.Key()] {
		n.dropped++
		n.mu.Unlock()
		return nil // silent partition
	}
	if n.cfg.Loss > 0 && n.rng.Float64() < n.cfg.Loss {
		n.dropped++
		n.mu.Unlock()
		return nil // silent loss
	}
	var delay time.Duration
	if n.cfg.MaxDelay > 0 {
		span := n.cfg.MaxDelay - n.cfg.MinDelay
		if span > 0 {
			delay = n.cfg.MinDelay + time.Duration(n.rng.Int63n(int64(span)))
		} else {
			delay = n.cfg.MinDelay
		}
	}
	env := Envelope{From: from, To: to, Payload: payload}
	if delay == 0 {
		n.mu.Unlock()
		n.deliver(dst, env)
		return nil
	}
	// Register the timer while still holding mu: the callback also takes mu
	// first, so it cannot observe the map before the timer is tracked, and
	// Close cancels anything still registered. On a virtual clock the
	// callback only runs when the harness advances time, strictly after this
	// function returns, so the same invariant holds without real goroutines.
	var timer clock.Timer
	timer = n.clk.AfterFunc(delay, func() {
		n.mu.Lock()
		_, live := n.timers[timer]
		delete(n.timers, timer)
		n.mu.Unlock()
		if live {
			n.deliver(dst, env)
		}
	})
	n.timers[timer] = struct{}{}
	n.mu.Unlock()
	return nil
}

func (n *Network) deliver(dst *memEndpoint, env Envelope) {
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		n.countDrop()
		return
	}
	select {
	case dst.in <- env:
	default:
		n.countDrop() // queue overflow
	}
}

func (n *Network) countDrop() {
	n.mu.Lock()
	n.dropped++
	n.mu.Unlock()
}

// memEndpoint is one attached process's interface to the in-memory fabric.
type memEndpoint struct {
	addr addr.Address
	net  *Network

	mu     sync.Mutex
	closed bool
	in     chan Envelope
}

// Addr returns the endpoint's address.
func (e *memEndpoint) Addr() addr.Address { return e.addr }

// Send routes a payload to the destination address. Loss and partitions are
// silent; only unknown destinations and a closed endpoint return errors.
func (e *memEndpoint) Send(to addr.Address, payload any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.net.route(e.addr, to, payload)
}

// Recv exposes the inbox. The channel closes when the endpoint is detached.
func (e *memEndpoint) Recv() <-chan Envelope { return e.in }

// Close detaches the endpoint from the network.
func (e *memEndpoint) Close() error {
	e.net.Detach(e.addr)
	return nil
}

func (e *memEndpoint) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.in)
	}
}
