// The in-memory reference fabric: addressable endpoints exchanging opaque
// payloads with configurable message loss, delivery delay and partitions.
//
// It substitutes for the UDP/IP fabric of a real deployment (the paper's
// environment) while preserving the failure modes the protocol is designed
// around: silent loss, delay, and unreachability. Tests inject faults
// deterministically through the Fabric knobs.

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
	"pmcast/internal/fec"
	"pmcast/internal/wire"
)

// LinkModel layers a correlated fault model on top of the i.i.d. Loss knob:
// a per-directed-link Gilbert–Elliott two-state Markov chain (bursty loss)
// plus uniform latency jitter added to the MinDelay/MaxDelay base delay.
//
// The chain starts in the good state and takes one transition step per
// sub-message crossing the link: good→bad with probability PGB, bad→good
// with probability PBG. The message then drops with the current state's loss
// probability (GoodLoss or BadLoss), independently of the ambient Loss draw.
// The stationary loss rate is therefore
//
//	P(bad)·BadLoss + P(good)·GoodLoss, with P(bad) = PGB/(PGB+PBG)
//
// and loss bursts in the classic GoodLoss=0, BadLoss=1 configuration have
// mean length 1/PBG messages. Chain state and all its draws live on the same
// per-link streams as the base faults (repair symbols included, on their
// separate "|fec" streams), so the common-random-numbers property holds: a
// link's fault outcomes depend only on its own traffic.
//
// The zero value disables the model entirely — zero extra RNG draws, so
// every seeded trace pinned before the model existed replays byte-identically.
type LinkModel struct {
	// GoodLoss and BadLoss are the drop probabilities while the chain is in
	// the good and bad state. Both zero with PGB > 0 gives a pure
	// jitter/no-extra-loss chain (legal but pointless).
	GoodLoss, BadLoss float64
	// PGB is the per-message good→bad transition probability; zero disables
	// the chain (GoodLoss/BadLoss must then be zero too).
	PGB float64
	// PBG is the per-message bad→good transition probability; must be
	// positive when PGB is, or the chain could never leave the bad state.
	PBG float64
	// JitterMin and JitterMax bound an extra uniform delay added to every
	// delayed delivery on top of the Config.MinDelay/MaxDelay base draw.
	// Both zero disables jitter.
	JitterMin, JitterMax time.Duration
}

// Enabled reports whether any part of the model is active; the zero value
// reports false and the fabric's fault-free fast path stays eligible.
func (m LinkModel) Enabled() bool {
	return m.PGB > 0 || m.JitterMin > 0 || m.JitterMax > 0
}

// validate rejects configurations that would silently misbehave.
func (m LinkModel) validate() error {
	for _, p := range [...]struct {
		name string
		v    float64
	}{{"GoodLoss", m.GoodLoss}, {"BadLoss", m.BadLoss}, {"PGB", m.PGB}, {"PBG", m.PBG}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("transport: Link.%s %v outside [0, 1]", p.name, p.v)
		}
	}
	if m.PGB > 0 && m.PBG == 0 {
		return fmt.Errorf("transport: Link.PBG must be > 0 when PGB > 0 (the chain could never leave the bad state)")
	}
	if m.PGB == 0 && (m.GoodLoss > 0 || m.BadLoss > 0) {
		return fmt.Errorf("transport: Link.GoodLoss/BadLoss need PGB > 0 to ever apply")
	}
	if m.JitterMin < 0 || m.JitterMax < 0 {
		return fmt.Errorf("transport: negative link jitter bound")
	}
	if m.JitterMin > m.JitterMax {
		return fmt.Errorf("transport: Link.JitterMin %v exceeds JitterMax %v", m.JitterMin, m.JitterMax)
	}
	return nil
}

// Config tunes the in-memory network fabric.
type Config struct {
	// Loss is the probability a message is silently dropped in transit
	// (i.i.d. per sub-message; see Link for correlated loss).
	Loss float64
	// MinDelay and MaxDelay bound the uniform random delivery delay; both
	// zero means synchronous hand-off on the sender's goroutine. NewNetwork
	// rejects MinDelay > MaxDelay; MinDelay == MaxDelay > 0 is a fixed delay.
	MinDelay, MaxDelay time.Duration
	// Link layers bursty (Gilbert–Elliott) loss and latency jitter on the
	// link; the zero value disables it with zero extra RNG draws.
	Link LinkModel
	// QueueLen is each endpoint's inbox capacity (default 1024); overflow
	// drops messages, mirroring UDP socket buffers.
	QueueLen int
	// Seed seeds the fault RNGs. Every directed link draws loss and delay
	// from its own seed-derived stream — common random numbers, in
	// simulation terms — so fault outcomes depend only on a link's own
	// traffic, not on how traffic to other links is interleaved or
	// enveloped. That is what makes a batched and an unbatched run of the
	// same campaign fault-equivalent (see the harness equivalence test).
	// Seed 0 selects its own dedicated stream constant, distinct from every
	// explicit seed, so sweeps that iterate from 0 never duplicate a
	// campaign.
	Seed int64
	// Tap, when set, observes every routed payload before fault injection —
	// whole round envelopes included, exactly as a byte-oriented fabric
	// would frame them. Corpus capture and debugging; called with the
	// network lock held, so it must not reenter the network.
	Tap func(from, to addr.Address, payload any)
	// Clock schedules delayed deliveries (default: the real clock). A
	// clock.Virtual turns in-flight messages into deterministic virtual-time
	// events — the scenario harness runs whole fleets this way.
	Clock clock.Clock
}

// Network is the shared in-memory fabric. Endpoints attach under their
// address; sends route by address. All methods are safe for concurrent use.
//
// Batched round envelopes (wire.Batch) are modelled as one datagram whose
// constituent messages are unbatched in transit: each sub-message draws loss
// independently from the link's fault stream (so batching stays a measurable,
// behavior-preserving aggregation of the same messages sent unbatched), while
// the batch draws a single delivery delay — its survivors land together, in
// the batch's canonical order. Delayed deliveries additionally respect
// per-link FIFO: a later send on the same directed link never lands before an
// earlier delayed one.
type Network struct {
	clk clock.Clock

	// mu is a reader/writer lock: every route — fault-free or faulty — runs
	// under the shared read lock, so concurrent senders (the sharded harness
	// runs one goroutine per shard) never serialize on one global mutex.
	// Only knob mutations (Attach/Detach, SetLoss, Block, Heal, Close) take
	// the write lock; they happen while the fleet is quiescent.
	mu        sync.RWMutex
	cfg       Config
	seedMix   uint64 // Seed as stream material; seed 0 gets its own constant
	endpoints map[string]*memEndpoint
	blocked   map[string]bool // "from|to" directed block rules

	// links holds each directed link's fault stream and FIFO floor. The map
	// itself is guarded by linksMu (links are created lazily from concurrent
	// routes), but a linkState's FIELDS are not: a directed link's draws
	// happen only on sends from its source address, and one process's sends
	// are totally ordered — by the single run loop in a serial campaign, by
	// the owner shard plus barrier handoffs in a sharded one. Streams and
	// floors survive endpoint detach/reattach, so a rejoined process
	// continues its links' draw sequences exactly where the crashed
	// generation left them.
	linksMu sync.Mutex
	links   map[string]*linkState

	// timers tracks outstanding delayed deliveries for cancellation at
	// Close. Its own mutex, not mu: delivery callbacks fire on shard
	// goroutines while other senders hold the read lock.
	timersMu sync.Mutex
	timers   map[clock.Timer]struct{}

	dropped atomic.Int64
	closed  bool
}

// OwnedScheduler is an optional Clock capability: schedule a callback that
// logically belongs to the process with the given address key. The sharded
// harness clock implements it so a delayed delivery becomes an event tagged
// with (and executed by) the destination's shard; plain clocks fall back to
// AfterFunc.
type OwnedScheduler interface {
	AfterFuncOwned(ownerKey string, d time.Duration, f func()) clock.Timer
}

// defaultSeedStream is the stream-selection constant for Config.Seed == 0.
// It is mixed exactly where an explicit seed would be, chosen so no int64
// seed a sweep is likely to use collides with the default's streams.
const defaultSeedStream = 0x9e3779b97f4a7c15

// linkStream is a tiny deterministic PRNG (splitmix64) dedicated to one
// directed link's fault draws, plus that link's Gilbert–Elliott chain state
// (bad == false is the good state, the chain's start). A fleet crosses
// O(n·fanout) distinct links and math/rand's 607-word lagged-Fibonacci
// seeding was a measurable slice of fleet-scale campaigns; splitmix64 is one
// word of state, free to create, and statistically more than good enough for
// loss and delay draws.
type linkStream struct {
	state uint64
	bad   bool
}

// linkState is one directed link's mutable fabric state: its fault stream
// and the per-link FIFO floor (the latest scheduled delivery instant — a
// later send on the link never lands before an earlier delayed one). Fields
// are owner-ordered, not locked; see Network.links.
type linkState struct {
	linkStream
	lastDelayed time.Time
}

func (s *linkStream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (s *linkStream) Float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// Int63n returns a uniform draw in [0, n); n must be positive. The modulo
// bias (~n/2⁶³) is irrelevant for fault simulation.
func (s *linkStream) Int63n(n int64) int64 { return int64(s.next()>>1) % n }

// Network implements the full fault-injection surface.
var _ Fabric = (*Network)(nil)

// NewNetwork builds a fabric with the given configuration. It rejects
// configurations the fault paths would otherwise misread: inverted delay or
// jitter bounds, probabilities outside [0, 1], and chain parameters that
// could never apply (see LinkModel).
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.Loss < 0 || cfg.Loss > 1 {
		return nil, fmt.Errorf("transport: Loss %v outside [0, 1]", cfg.Loss)
	}
	if cfg.MinDelay < 0 || cfg.MaxDelay < 0 {
		return nil, fmt.Errorf("transport: negative delay bound")
	}
	if cfg.MinDelay > cfg.MaxDelay {
		return nil, fmt.Errorf("transport: MinDelay %v exceeds MaxDelay %v", cfg.MinDelay, cfg.MaxDelay)
	}
	if err := cfg.Link.validate(); err != nil {
		return nil, err
	}
	seedMix := uint64(cfg.Seed)
	if cfg.Seed == 0 {
		seedMix = defaultSeedStream
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	return &Network{
		clk:       clk,
		cfg:       cfg,
		seedMix:   seedMix,
		links:     make(map[string]*linkState),
		endpoints: make(map[string]*memEndpoint),
		blocked:   make(map[string]bool),
		timers:    make(map[clock.Timer]struct{}),
	}, nil
}

// MustNetwork is NewNetwork for callers with static configurations — tests,
// examples, benchmarks — where a config error is a programming bug. It
// panics instead of returning the error.
func MustNetwork(cfg Config) *Network {
	n, err := NewNetwork(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// linkState returns the directed link's state, creating it deterministically
// from the fabric seed and the link key on first use. Only the map access is
// locked; the returned state's fields are owner-ordered (see Network.links).
func (n *Network) linkState(linkKey string) *linkState {
	n.linksMu.Lock()
	st, ok := n.links[linkKey]
	if !ok {
		// FNV-1a over the link key, mixed with the fabric seed, so links get
		// independent but reproducible starting states.
		h := uint64(1469598103934665603)
		for i := 0; i < len(linkKey); i++ {
			h = (h ^ uint64(linkKey[i])) * 1099511628211
		}
		st = &linkState{linkStream: linkStream{state: n.seedMix ^ h}}
		n.links[linkKey] = st
	}
	n.linksMu.Unlock()
	return st
}

// Attach registers an address and returns its endpoint.
func (n *Network) Attach(a addr.Address) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	key := a.Key()
	if _, ok := n.endpoints[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateAddr, a)
	}
	ep := &memEndpoint{
		addr: a,
		net:  n,
		in:   make(chan Envelope, n.cfg.QueueLen),
	}
	n.endpoints[key] = ep
	return ep, nil
}

// Detach unregisters an address; its endpoint stops receiving.
func (n *Network) Detach(a addr.Address) {
	n.mu.Lock()
	ep, ok := n.endpoints[a.Key()]
	if ok {
		delete(n.endpoints, a.Key())
	}
	n.mu.Unlock()
	if ok {
		ep.close()
	}
}

// Close shuts the fabric down: every outstanding delayed delivery is
// cancelled (no timer or goroutine outlives the network — long simulation
// campaigns create and discard many networks) and every endpoint is
// detached. Subsequent Attach and Send calls fail with ErrClosed.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	endpoints := n.endpoints
	n.endpoints = make(map[string]*memEndpoint)
	n.mu.Unlock()
	n.timersMu.Lock()
	timers := n.timers
	n.timers = make(map[clock.Timer]struct{})
	n.timersMu.Unlock()

	for t := range timers {
		t.Stop()
	}
	for _, ep := range endpoints {
		ep.close()
	}
	return nil
}

// SetLoss changes the loss probability at runtime (fault injection).
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Loss = p
}

// Block severs the directed link from → to (partition injection).
func (n *Network) Block(from, to addr.Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[from.Key()+"|"+to.Key()] = true
}

// BlockBidirectional severs both directions between two addresses.
func (n *Network) BlockBidirectional(a, b addr.Address) {
	n.Block(a, b)
	n.Block(b, a)
}

// Heal removes every block rule.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[string]bool)
}

// Dropped returns the number of messages lost so far (loss, partitions,
// overflow and unknown destinations).
func (n *Network) Dropped() int {
	return int(n.dropped.Load())
}

// Size returns the number of attached endpoints.
func (n *Network) Size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.endpoints)
}

// route delivers one envelope subject to faults. A wire.Batch payload is
// unbatched in transit: each sub-message draws its own loss from the link's
// fault stream, the batch draws one delivery delay, and survivors arrive as
// their own envelopes in the batch's canonical order — the same loss draws,
// in the same order, the same messages sent unbatched would have made.
// Returns ErrUnknownAddr only for routing errors the sender can act on —
// faults are silent, as on a real network.
//
// A fault-free fabric (no loss, no delay, no jitter, no link model, no tap,
// no partition rules) routes under the read lock: no fault draws means no
// per-link RNG state advances, so concurrent senders stay independent and
// the path scales with cores.
func (n *Network) route(e *memEndpoint, to addr.Address, payload any) error {
	from := e.addr
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrClosed
	}
	if n.cfg.Tap == nil && n.cfg.Loss == 0 &&
		n.cfg.MaxDelay == 0 && n.cfg.MinDelay == 0 &&
		!n.cfg.Link.Enabled() && len(n.blocked) == 0 {
		dst, ok := n.endpoints[to.Key()]
		n.mu.RUnlock()
		if !ok {
			n.dropped.Add(int64(payloadParts(payload)))
			return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
		}
		if b, isBatch := payload.(wire.Batch); isBatch {
			// Unbatch in canonical order, as the faulty path would.
			b.Each(func(sub any) {
				n.deliver(dst, Envelope{From: from, To: to, Payload: sub})
			})
			return nil
		}
		n.deliver(dst, Envelope{From: from, To: to, Payload: payload})
		return nil
	}
	n.mu.RUnlock()
	return n.routeFaulty(e, from, to, payload)
}

// payloadParts counts the sub-messages of a payload for drop accounting.
func payloadParts(payload any) int {
	if b, isBatch := payload.(wire.Batch); isBatch {
		return b.Parts()
	}
	return 1
}

// lostLocked draws one sub-message's fate from its link stream: the ambient
// i.i.d. Loss draw composed with one Gilbert–Elliott chain step plus the
// resulting state's loss draw. Disabled knobs consume no draws, which is the
// replay contract: traces pinned before a knob existed stay byte-identical
// while it is off.
func (n *Network) lostLocked(rng *linkStream) bool {
	lost := n.cfg.Loss > 0 && rng.Float64() < n.cfg.Loss
	if lm := n.cfg.Link; lm.PGB > 0 {
		if rng.bad {
			if rng.Float64() < lm.PBG {
				rng.bad = false
			}
		} else if rng.Float64() < lm.PGB {
			rng.bad = true
		}
		p := lm.GoodLoss
		if rng.bad {
			p = lm.BadLoss
		}
		if p > 0 && rng.Float64() < p {
			lost = true
		}
	}
	return lost
}

// delayLocked draws one delivery delay: the uniform MinDelay/MaxDelay base
// plus uniform link jitter. Each bound pair with span zero is a fixed offset
// consuming no draw.
func (n *Network) delayLocked(rng *linkStream) time.Duration {
	var d time.Duration
	if n.cfg.MaxDelay > 0 {
		if span := n.cfg.MaxDelay - n.cfg.MinDelay; span > 0 {
			d = n.cfg.MinDelay + time.Duration(rng.Int63n(int64(span)))
		} else {
			d = n.cfg.MinDelay
		}
	}
	if lm := n.cfg.Link; lm.JitterMax > 0 {
		if span := lm.JitterMax - lm.JitterMin; span > 0 {
			d += lm.JitterMin + time.Duration(rng.Int63n(int64(span)))
		} else {
			d += lm.JitterMin
		}
	}
	return d
}

// schedule registers one delayed delivery of envs (in order) on the link,
// clamped to the per-link FIFO floor: it never lands before an earlier
// delayed delivery on the same directed link. The timer is registered under
// timersMu and the callback takes timersMu first, so it cannot observe the
// map before the timer is tracked, and Close cancels anything still
// registered. On a virtual clock the callback only runs when the harness
// advances time — in strict (time, scheduling-order) order, which together
// with the clamp is what makes the FIFO guarantee deterministic. The sender
// endpoint's clock, when set, both reads now and schedules — the sharded
// harness points it at the sender's shard clock, whose OwnedScheduler
// implementation turns the delivery into an event owned by the destination.
func (n *Network) schedule(e *memEndpoint, st *linkState, dst *memEndpoint, delay time.Duration, envs []Envelope) {
	clk := e.clk
	if clk == nil {
		clk = n.clk
	}
	now := clk.Now()
	at := now.Add(delay)
	if st.lastDelayed.After(at) {
		at = st.lastDelayed
		delay = at.Sub(now)
	}
	st.lastDelayed = at
	var timer clock.Timer
	fire := func() {
		n.timersMu.Lock()
		_, live := n.timers[timer]
		delete(n.timers, timer)
		n.timersMu.Unlock()
		if live {
			for _, env := range envs {
				n.deliver(dst, env)
			}
		}
	}
	n.timersMu.Lock()
	if os, ok := clk.(OwnedScheduler); ok {
		timer = os.AfterFuncOwned(dst.addr.Key(), delay, fire)
	} else {
		timer = clk.AfterFunc(delay, fire)
	}
	n.timers[timer] = struct{}{}
	n.timersMu.Unlock()
}

// routeFaulty is the fault-injecting path. It runs under the read lock:
// fault draws advance the link's RNG stream, but each directed link's draws
// happen only on sends from its source process, and those are totally
// ordered by that process's owner (run loop or shard) — determinism needs
// each link's draws in its own traffic order, which ownership provides
// without a global write lock. Tap, when set, is called concurrently by
// concurrent senders and must synchronize itself (every in-tree Tap runs
// under a serial fabric).
func (n *Network) routeFaulty(e *memEndpoint, from, to addr.Address, payload any) error {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrClosed
	}
	if n.cfg.Tap != nil {
		n.cfg.Tap(from, to, payload)
	}
	// Drop accounting is per sub-message on every fault path, so batched and
	// unbatched runs of the same traffic report identical drop counts.
	parts := payloadParts(payload)
	dst, ok := n.endpoints[to.Key()]
	if !ok {
		n.dropped.Add(int64(parts))
		n.mu.RUnlock()
		return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	linkKey := from.Key() + "|" + to.Key()
	if n.blocked[linkKey] {
		n.dropped.Add(int64(parts))
		n.mu.RUnlock()
		return nil // silent partition
	}
	st := n.linkState(linkKey)
	rng := &st.linkStream
	// Repair symbols draw from a separate per-link stream: they are extra
	// traffic a coded run adds on top of the same gossips an uncoded run
	// sends, and giving them their own stream keeps the source messages'
	// fault draws identical to the uncoded run's — the common-random-numbers
	// property extended to the coding layer, so an r>0 campaign diverges from
	// its r=0 twin only where the protocol actually diverges. The same rule
	// governs the batch delay draw below: it comes from the main stream
	// exactly when a main-stream sub-message survived, so the main stream's
	// consumption is a pure function of the link's non-repair traffic.
	var fecRNG *linkStream
	fecStream := func() *linkStream {
		if fecRNG == nil {
			fecRNG = &n.linkState(linkKey + "|fec").linkStream
		}
		return fecRNG
	}
	if b, isBatch := payload.(wire.Batch); isBatch {
		// One datagram, one delay: per-sub-message loss draws decide the
		// survivors, then the batch draws a single delay and the survivors
		// land together in canonical order (per-message delays would let
		// them land reordered — the invariant this path exists to keep).
		var survivors []Envelope
		mainSurvived := false
		b.Each(func(sub any) {
			s := rng
			if _, isRepair := sub.(fec.Repair); isRepair {
				s = fecStream()
			}
			if n.lostLocked(s) {
				n.dropped.Add(1) // silent loss
				return
			}
			if s == rng {
				mainSurvived = true
			}
			survivors = append(survivors, Envelope{From: from, To: to, Payload: sub})
		})
		if len(survivors) == 0 {
			n.mu.RUnlock()
			return nil
		}
		delayStream := rng
		if !mainSurvived {
			delayStream = fecStream()
		}
		delay := n.delayLocked(delayStream)
		if delay == 0 {
			n.mu.RUnlock()
			for _, env := range survivors {
				n.deliver(dst, env)
			}
			return nil
		}
		n.schedule(e, st, dst, delay, survivors)
		n.mu.RUnlock()
		return nil
	}
	// Bare payload: the common zero-delay case stays allocation-free.
	s := rng
	if _, isRepair := payload.(fec.Repair); isRepair {
		s = fecStream()
	}
	if n.lostLocked(s) {
		n.dropped.Add(1) // silent loss
		n.mu.RUnlock()
		return nil
	}
	env := Envelope{From: from, To: to, Payload: payload}
	delay := n.delayLocked(s)
	if delay == 0 {
		n.mu.RUnlock()
		n.deliver(dst, env)
		return nil
	}
	n.schedule(e, st, dst, delay, []Envelope{env})
	n.mu.RUnlock()
	return nil
}

func (n *Network) deliver(dst *memEndpoint, env Envelope) {
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		n.dropped.Add(1)
		return
	}
	select {
	case dst.in <- env:
	default:
		n.dropped.Add(1) // queue overflow
	}
}

// memEndpoint is one attached process's interface to the in-memory fabric.
type memEndpoint struct {
	addr addr.Address
	net  *Network
	// clk, when set via SetEndpointClock, schedules this endpoint's OUTGOING
	// delayed deliveries in place of the fabric clock. Written under the
	// network write lock, read under the read lock.
	clk clock.Clock

	mu     sync.Mutex
	closed bool
	in     chan Envelope
}

// SetEndpointClock overrides the clock used to read now and schedule delayed
// deliveries for messages SENT by the given address (default: the fabric
// clock). The sharded harness points each endpoint at its owner shard's
// clock. Unknown addresses are ignored.
func (n *Network) SetEndpointClock(a addr.Address, clk clock.Clock) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if ep, ok := n.endpoints[a.Key()]; ok {
		ep.clk = clk
	}
}

// Addr returns the endpoint's address.
func (e *memEndpoint) Addr() addr.Address { return e.addr }

// Send routes a payload to the destination address. Loss and partitions are
// silent; only unknown destinations and a closed endpoint return errors.
func (e *memEndpoint) Send(to addr.Address, payload any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.net.route(e, to, payload)
}

// Recv exposes the inbox. The channel closes when the endpoint is detached.
func (e *memEndpoint) Recv() <-chan Envelope { return e.in }

// Close detaches the endpoint from the network.
func (e *memEndpoint) Close() error {
	e.net.Detach(e.addr)
	return nil
}

func (e *memEndpoint) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.in)
	}
}
