// The in-memory reference fabric: addressable endpoints exchanging opaque
// payloads with configurable message loss, delivery delay and partitions.
//
// It substitutes for the UDP/IP fabric of a real deployment (the paper's
// environment) while preserving the failure modes the protocol is designed
// around: silent loss, delay, and unreachability. Tests inject faults
// deterministically through the Fabric knobs.

package transport

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
	"pmcast/internal/fec"
	"pmcast/internal/wire"
)

// Config tunes the in-memory network fabric.
type Config struct {
	// Loss is the probability a message is silently dropped in transit.
	Loss float64
	// MinDelay and MaxDelay bound the uniform random delivery delay; both
	// zero means synchronous hand-off on the sender's goroutine.
	MinDelay, MaxDelay time.Duration
	// QueueLen is each endpoint's inbox capacity (default 1024); overflow
	// drops messages, mirroring UDP socket buffers.
	QueueLen int
	// Seed seeds the fault RNGs (0 uses a fixed default for
	// reproducibility). Every directed link draws loss and delay from its
	// own seed-derived stream — common random numbers, in simulation terms —
	// so fault outcomes depend only on a link's own traffic, not on how
	// traffic to other links is interleaved or enveloped. That is what
	// makes a batched and an unbatched run of the same campaign
	// fault-equivalent (see the harness equivalence test).
	Seed int64
	// Tap, when set, observes every routed payload before fault injection —
	// whole round envelopes included, exactly as a byte-oriented fabric
	// would frame them. Corpus capture and debugging; called with the
	// network lock held, so it must not reenter the network.
	Tap func(from, to addr.Address, payload any)
	// Clock schedules delayed deliveries (default: the real clock). A
	// clock.Virtual turns in-flight messages into deterministic virtual-time
	// events — the scenario harness runs whole fleets this way.
	Clock clock.Clock
}

// Network is the shared in-memory fabric. Endpoints attach under their
// address; sends route by address. All methods are safe for concurrent use.
//
// Batched round envelopes (wire.Batch) are modelled as their constituent
// messages in transit: each sub-message draws loss and delay independently
// from the link's fault stream and is delivered as its own envelope, exactly
// as the same messages sent unbatched would be. Real batch-loss correlation
// (a dropped datagram losing all its events) is a property of the UDP
// fabric; the simulated fabric deliberately preserves per-message fault
// semantics so batching stays a measurable, behavior-preserving aggregation.
type Network struct {
	clk clock.Clock

	// mu is a reader/writer lock so the fault-free hot path — no loss, no
	// delay, no tap, no partitions — routes under a shared read lock:
	// concurrent engine fleets would otherwise serialize every send on one
	// global mutex, capping multicore campaigns at single-core throughput.
	// Anything that mutates fabric state (fault draws advance per-link RNG
	// streams, timers register, knobs change) takes the write lock.
	mu        sync.RWMutex
	cfg       Config
	links     map[string]*linkStream // per directed link fault streams
	endpoints map[string]*memEndpoint
	blocked   map[string]bool // "from|to" directed block rules
	timers    map[clock.Timer]struct{}
	dropped   atomic.Int64
	closed    bool
}

// linkStream is a tiny deterministic PRNG (splitmix64) dedicated to one
// directed link's fault draws. A fleet crosses O(n·fanout) distinct links
// and math/rand's 607-word lagged-Fibonacci seeding was a measurable slice
// of fleet-scale campaigns; splitmix64 is one word of state, free to create,
// and statistically more than good enough for loss and delay draws.
type linkStream struct{ state uint64 }

func (s *linkStream) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (s *linkStream) Float64() float64 { return float64(s.next()>>11) / (1 << 53) }

// Int63n returns a uniform draw in [0, n); n must be positive. The modulo
// bias (~n/2⁶³) is irrelevant for fault simulation.
func (s *linkStream) Int63n(n int64) int64 { return int64(s.next()>>1) % n }

// Network implements the full fault-injection surface.
var _ Fabric = (*Network)(nil)

// NewNetwork builds a fabric with the given configuration.
func NewNetwork(cfg Config) *Network {
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	return &Network{
		clk:       clk,
		cfg:       cfg,
		links:     make(map[string]*linkStream),
		endpoints: make(map[string]*memEndpoint),
		blocked:   make(map[string]bool),
		timers:    make(map[clock.Timer]struct{}),
	}
}

// linkRNGLocked returns the directed link's fault stream, creating it
// deterministically from the fabric seed and the link key on first use.
func (n *Network) linkRNGLocked(linkKey string) *linkStream {
	if s, ok := n.links[linkKey]; ok {
		return s
	}
	// FNV-1a over the link key, mixed with the fabric seed, so links get
	// independent but reproducible starting states.
	h := uint64(1469598103934665603)
	for i := 0; i < len(linkKey); i++ {
		h = (h ^ uint64(linkKey[i])) * 1099511628211
	}
	s := &linkStream{state: uint64(n.cfg.Seed) ^ h}
	n.links[linkKey] = s
	return s
}

// Attach registers an address and returns its endpoint.
func (n *Network) Attach(a addr.Address) (Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, ErrClosed
	}
	key := a.Key()
	if _, ok := n.endpoints[key]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateAddr, a)
	}
	ep := &memEndpoint{
		addr: a,
		net:  n,
		in:   make(chan Envelope, n.cfg.QueueLen),
	}
	n.endpoints[key] = ep
	return ep, nil
}

// Detach unregisters an address; its endpoint stops receiving.
func (n *Network) Detach(a addr.Address) {
	n.mu.Lock()
	ep, ok := n.endpoints[a.Key()]
	if ok {
		delete(n.endpoints, a.Key())
	}
	n.mu.Unlock()
	if ok {
		ep.close()
	}
}

// Close shuts the fabric down: every outstanding delayed delivery is
// cancelled (no timer or goroutine outlives the network — long simulation
// campaigns create and discard many networks) and every endpoint is
// detached. Subsequent Attach and Send calls fail with ErrClosed.
func (n *Network) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	timers := n.timers
	n.timers = make(map[clock.Timer]struct{})
	endpoints := n.endpoints
	n.endpoints = make(map[string]*memEndpoint)
	n.mu.Unlock()

	for t := range timers {
		t.Stop()
	}
	for _, ep := range endpoints {
		ep.close()
	}
	return nil
}

// SetLoss changes the loss probability at runtime (fault injection).
func (n *Network) SetLoss(p float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.Loss = p
}

// Block severs the directed link from → to (partition injection).
func (n *Network) Block(from, to addr.Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[from.Key()+"|"+to.Key()] = true
}

// BlockBidirectional severs both directions between two addresses.
func (n *Network) BlockBidirectional(a, b addr.Address) {
	n.Block(a, b)
	n.Block(b, a)
}

// Heal removes every block rule.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked = make(map[string]bool)
}

// Dropped returns the number of messages lost so far (loss, partitions,
// overflow and unknown destinations).
func (n *Network) Dropped() int {
	return int(n.dropped.Load())
}

// Size returns the number of attached endpoints.
func (n *Network) Size() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.endpoints)
}

// route delivers one envelope subject to faults. A wire.Batch payload is
// unbatched in transit: each sub-message draws its own loss and delay from
// the link's fault stream and arrives as its own envelope, in the batch's
// canonical order — the same draws, in the same order, the same messages
// sent unbatched would have made. Returns ErrUnknownAddr only for routing
// errors the sender can act on — faults are silent, as on a real network.
//
// A fault-free fabric (no loss, no delay, no tap, no partition rules) routes
// under the read lock: no fault draws means no per-link RNG state advances,
// so concurrent senders stay independent and the path scales with cores.
func (n *Network) route(from, to addr.Address, payload any) error {
	n.mu.RLock()
	if n.closed {
		n.mu.RUnlock()
		return ErrClosed
	}
	if n.cfg.Tap == nil && n.cfg.Loss == 0 && n.cfg.MaxDelay == 0 && len(n.blocked) == 0 {
		dst, ok := n.endpoints[to.Key()]
		n.mu.RUnlock()
		if !ok {
			n.dropped.Add(int64(payloadParts(payload)))
			return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
		}
		if b, isBatch := payload.(wire.Batch); isBatch {
			// Unbatch in canonical order, as the faulty path would.
			b.Each(func(sub any) {
				n.deliver(dst, Envelope{From: from, To: to, Payload: sub})
			})
			return nil
		}
		n.deliver(dst, Envelope{From: from, To: to, Payload: payload})
		return nil
	}
	n.mu.RUnlock()
	return n.routeFaulty(from, to, payload)
}

// payloadParts counts the sub-messages of a payload for drop accounting.
func payloadParts(payload any) int {
	if b, isBatch := payload.(wire.Batch); isBatch {
		return b.Parts()
	}
	return 1
}

// routeFaulty is the fault-injecting path, serialized under the write lock
// because fault draws advance the link's RNG stream (determinism requires
// each link's draws to happen in its own traffic order).
func (n *Network) routeFaulty(from, to addr.Address, payload any) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.cfg.Tap != nil {
		n.cfg.Tap(from, to, payload)
	}
	// Drop accounting is per sub-message on every fault path, so batched and
	// unbatched runs of the same traffic report identical drop counts.
	parts := payloadParts(payload)
	dst, ok := n.endpoints[to.Key()]
	if !ok {
		n.dropped.Add(int64(parts))
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownAddr, to)
	}
	linkKey := from.Key() + "|" + to.Key()
	if n.blocked[linkKey] {
		n.dropped.Add(int64(parts))
		n.mu.Unlock()
		return nil // silent partition
	}
	rng := n.linkRNGLocked(linkKey)
	// Repair symbols draw from a separate per-link stream: they are extra
	// traffic a coded run adds on top of the same gossips an uncoded run
	// sends, and giving them their own stream keeps the source messages'
	// fault draws identical to the uncoded run's — the common-random-numbers
	// property extended to the coding layer, so an r>0 campaign diverges from
	// its r=0 twin only where the protocol actually diverges.
	var fecRNG *linkStream
	// part applies one sub-message's fault draws under mu. A zero-delay
	// survivor is returned for delivery after the lock drops (deliver takes
	// endpoint and drop-accounting locks of its own); delayed survivors are
	// scheduled here.
	part := func(sub any) (Envelope, bool) {
		rng := rng
		if _, isRepair := sub.(fec.Repair); isRepair {
			if fecRNG == nil {
				fecRNG = n.linkRNGLocked(linkKey + "|fec")
			}
			rng = fecRNG
		}
		if n.cfg.Loss > 0 && rng.Float64() < n.cfg.Loss {
			n.dropped.Add(1)
			return Envelope{}, false // silent loss
		}
		var delay time.Duration
		if n.cfg.MaxDelay > 0 {
			span := n.cfg.MaxDelay - n.cfg.MinDelay
			if span > 0 {
				delay = n.cfg.MinDelay + time.Duration(rng.Int63n(int64(span)))
			} else {
				delay = n.cfg.MinDelay
			}
		}
		env := Envelope{From: from, To: to, Payload: sub}
		if delay == 0 {
			return env, true
		}
		// Register the timer while still holding mu: the callback also takes
		// mu first, so it cannot observe the map before the timer is tracked,
		// and Close cancels anything still registered. On a virtual clock the
		// callback only runs when the harness advances time, strictly after
		// this function returns, so the same invariant holds without real
		// goroutines.
		var timer clock.Timer
		timer = n.clk.AfterFunc(delay, func() {
			n.mu.Lock()
			_, live := n.timers[timer]
			delete(n.timers, timer)
			n.mu.Unlock()
			if live {
				n.deliver(dst, env)
			}
		})
		n.timers[timer] = struct{}{}
		return Envelope{}, false
	}
	if b, isBatch := payload.(wire.Batch); isBatch {
		// Sub-messages of one batch must land in order, so zero-delay
		// survivors are collected and handed off together.
		var inline []Envelope
		b.Each(func(sub any) {
			if env, ok := part(sub); ok {
				inline = append(inline, env)
			}
		})
		n.mu.Unlock()
		for _, env := range inline {
			n.deliver(dst, env)
		}
		return nil
	}
	// Bare payload: the common zero-delay case stays allocation-free.
	env, ok := part(payload)
	n.mu.Unlock()
	if ok {
		n.deliver(dst, env)
	}
	return nil
}

func (n *Network) deliver(dst *memEndpoint, env Envelope) {
	dst.mu.Lock()
	defer dst.mu.Unlock()
	if dst.closed {
		n.dropped.Add(1)
		return
	}
	select {
	case dst.in <- env:
	default:
		n.dropped.Add(1) // queue overflow
	}
}

// memEndpoint is one attached process's interface to the in-memory fabric.
type memEndpoint struct {
	addr addr.Address
	net  *Network

	mu     sync.Mutex
	closed bool
	in     chan Envelope
}

// Addr returns the endpoint's address.
func (e *memEndpoint) Addr() addr.Address { return e.addr }

// Send routes a payload to the destination address. Loss and partitions are
// silent; only unknown destinations and a closed endpoint return errors.
func (e *memEndpoint) Send(to addr.Address, payload any) error {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return e.net.route(e.addr, to, payload)
}

// Recv exposes the inbox. The channel closes when the endpoint is detached.
func (e *memEndpoint) Recv() <-chan Envelope { return e.in }

// Close detaches the endpoint from the network.
func (e *memEndpoint) Close() error {
	e.net.Detach(e.addr)
	return nil
}

func (e *memEndpoint) close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.closed {
		e.closed = true
		close(e.in)
	}
}
