// Regression tests for the fabric's fault-model fixes (in-batch delay
// ordering, MinDelay validation, the seed-0 stream) and property tests for
// the Gilbert–Elliott link model.
package transport

import (
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
)

// TestBatchDelayLandsInOrder is the regression test for the in-batch
// reordering bug: sub-messages of one wire.Batch used to draw independent
// delays in routeFaulty, so a batch's parts could land out of canonical
// order. One batch now draws one delay and its survivors land together.
func TestBatchDelayLandsInOrder(t *testing.T) {
	vc, _, a, b := virtualPair(t, Config{
		MinDelay: time.Millisecond,
		MaxDelay: 10 * time.Millisecond,
		Seed:     7,
	})
	const parts = 6 // 4 gossips + digest + heartbeat
	if err := a.Send(b.Addr(), testBatch(4)); err != nil {
		t.Fatal(err)
	}
	// One batch, one delay, one timer. The buggy code scheduled one timer
	// per surviving sub-message.
	if got := vc.Pending(); got != 1 {
		t.Fatalf("%d timers scheduled for one batch, want 1", got)
	}
	vc.Advance(10 * time.Millisecond)
	want := []string{"core.Gossip", "core.Gossip", "core.Gossip", "core.Gossip",
		"membership.Digest", "membership.Heartbeat"}
	for i, kind := range want {
		select {
		case env := <-b.Recv():
			if got := typeName(env.Payload); got != kind {
				t.Fatalf("part %d arrived as %s, want %s (canonical order violated)", i, got, kind)
			}
		default:
			t.Fatalf("only %d of %d parts delivered", i, parts)
		}
	}
}

// TestDelayedDeliveriesKeepPerLinkFIFO pins the FIFO guarantee: a later
// send on the same directed link never lands before an earlier delayed one,
// even when its delay draw is shorter.
func TestDelayedDeliveriesKeepPerLinkFIFO(t *testing.T) {
	vc, _, a, b := virtualPair(t, Config{
		MinDelay: time.Millisecond,
		MaxDelay: 20 * time.Millisecond,
		Seed:     3,
	})
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send(b.Addr(), i); err != nil {
			t.Fatal(err)
		}
	}
	vc.Advance(time.Second)
	for want := 0; want < n; want++ {
		select {
		case env := <-b.Recv():
			if env.Payload != want {
				t.Fatalf("arrival %d carries payload %v (per-link FIFO violated)", want, env.Payload)
			}
		default:
			t.Fatalf("only %d of %d messages delivered", want, n)
		}
	}
}

// TestMinDelayValidation is the regression test for the silently-ignored
// MinDelay: MinDelay > MaxDelay (including the old MaxDelay == 0 shape) is
// now rejected at construction instead of configuring a fabric that
// delivers synchronously.
func TestMinDelayValidation(t *testing.T) {
	if _, err := NewNetwork(Config{MinDelay: 5 * time.Millisecond}); err == nil {
		t.Error("MinDelay 5ms with MaxDelay 0 accepted; want a config error")
	}
	if _, err := NewNetwork(Config{MinDelay: 5 * time.Millisecond, MaxDelay: time.Millisecond}); err == nil {
		t.Error("MinDelay > MaxDelay accepted; want a config error")
	}
	if _, err := NewNetwork(Config{MinDelay: -1, MaxDelay: time.Millisecond}); err == nil {
		t.Error("negative MinDelay accepted; want a config error")
	}
}

// TestFixedDelayHonored covers the legal boundary the validation keeps:
// MinDelay == MaxDelay > 0 is a fixed delay on both the route gate (no
// synchronous fast-path hand-off) and the faulty path (delivery at exactly
// the configured offset).
func TestFixedDelayHonored(t *testing.T) {
	vc, _, a, b := virtualPair(t, Config{
		MinDelay: 3 * time.Millisecond,
		MaxDelay: 3 * time.Millisecond,
	})
	if err := a.Send(b.Addr(), "m"); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Recv():
		t.Fatalf("fixed 3ms delay delivered %v synchronously", env.Payload)
	default:
	}
	vc.Advance(2 * time.Millisecond)
	select {
	case env := <-b.Recv():
		t.Fatalf("fixed 3ms delay delivered %v at 2ms", env.Payload)
	default:
	}
	vc.Advance(time.Millisecond)
	select {
	case env := <-b.Recv():
		if env.Payload != "m" {
			t.Fatalf("got %v, want m", env.Payload)
		}
	default:
		t.Fatal("nothing delivered at the fixed 3ms offset")
	}
}

// dropPattern sends n bare payloads a → b and returns which were lost,
// reading each outcome off the fabric drop counter (survivors are drained
// inline so the inbox never overflows).
func dropPattern(t *testing.T, cfg Config, n int) []bool {
	t.Helper()
	net := MustNetwork(cfg)
	defer net.Close()
	a, err := net.Attach(addr.New(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach(addr.New(1))
	if err != nil {
		t.Fatal(err)
	}
	pattern := make([]bool, n)
	before := net.Dropped()
	for i := range pattern {
		if err := a.Send(b.Addr(), i); err != nil {
			t.Fatal(err)
		}
		after := net.Dropped()
		pattern[i] = after != before
		before = after
		select {
		case <-b.Recv():
		default:
		}
	}
	return pattern
}

// TestSeedZeroHasOwnStream is the regression test for the seed collision:
// Config.Seed 0 used to be coerced to 1, so sweeps iterating from 0 ran the
// same campaign twice. Seed 0 now selects its own stream constant — and
// still replays itself deterministically.
func TestSeedZeroHasOwnStream(t *testing.T) {
	const n = 256
	zero := dropPattern(t, Config{Loss: 0.5, Seed: 0}, n)
	one := dropPattern(t, Config{Loss: 0.5, Seed: 1}, n)
	same := true
	for i := range zero {
		if zero[i] != one[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 0 and 1 drew identical fault patterns; seed 0 must have its own stream")
	}
	replay := dropPattern(t, Config{Loss: 0.5, Seed: 0}, n)
	for i := range zero {
		if zero[i] != replay[i] {
			t.Fatalf("seed 0 does not replay itself (message %d)", i)
		}
	}
}

// TestGilbertElliottChainStatistics is the property test for the bursty
// model: in the classic GoodLoss=0/BadLoss=1 configuration the observed
// loss pattern is exactly the chain's bad-state pattern, so the empirical
// stationary loss rate must approach PGB/(PGB+PBG) and the mean loss-burst
// length 1/PBG — and a fixed seed must replay the pattern byte-identically.
func TestGilbertElliottChainStatistics(t *testing.T) {
	const (
		n   = 30000
		pgb = 0.05
		pbg = 0.25
	)
	cfg := Config{Seed: 11, Link: LinkModel{BadLoss: 1, PGB: pgb, PBG: pbg}}
	pattern := dropPattern(t, cfg, n)

	losses, bursts, run := 0, 0, 0
	var burstSum int
	for _, lost := range pattern {
		if lost {
			losses++
			run++
			continue
		}
		if run > 0 {
			bursts++
			burstSum += run
			run = 0
		}
	}
	if run > 0 {
		bursts++
		burstSum += run
	}

	wantRate := pgb / (pgb + pbg)
	rate := float64(losses) / n
	if rate < wantRate*0.85 || rate > wantRate*1.15 {
		t.Errorf("empirical loss rate %.4f, want %.4f ±15%%", rate, wantRate)
	}
	wantBurst := 1 / pbg
	burst := float64(burstSum) / float64(bursts)
	if burst < wantBurst*0.85 || burst > wantBurst*1.15 {
		t.Errorf("mean burst length %.2f over %d bursts, want %.2f ±15%%", burst, bursts, wantBurst)
	}

	replay := dropPattern(t, cfg, n)
	for i := range pattern {
		if pattern[i] != replay[i] {
			t.Fatalf("seed 11 does not replay the chain byte-identically (message %d)", i)
		}
	}
	cfg.Seed = 12
	other := dropPattern(t, cfg, n)
	same := true
	for i := range pattern {
		if pattern[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 11 and 12 drew identical chain patterns")
	}
}

// TestLinkJitterDelays pins that jitter alone (no MinDelay/MaxDelay) takes
// messages off the synchronous fast path and lands them inside the jitter
// bounds.
func TestLinkJitterDelays(t *testing.T) {
	vc := clock.NewVirtual()
	net := MustNetwork(Config{
		Link:  LinkModel{JitterMin: time.Millisecond, JitterMax: 2 * time.Millisecond},
		Clock: vc,
		Seed:  5,
	})
	defer net.Close()
	a, _ := net.Attach(addr.New(0))
	b, _ := net.Attach(addr.New(1))
	if err := a.Send(b.Addr(), "m"); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-b.Recv():
		t.Fatalf("jittered fabric delivered %v synchronously", env.Payload)
	default:
	}
	if vc.Pending() != 1 {
		t.Fatalf("%d timers pending, want 1", vc.Pending())
	}
	vc.Advance(time.Millisecond - time.Nanosecond)
	select {
	case env := <-b.Recv():
		t.Fatalf("delivered %v before JitterMin", env.Payload)
	default:
	}
	vc.Advance(time.Millisecond + time.Nanosecond)
	select {
	case env := <-b.Recv():
		if env.Payload != "m" {
			t.Fatalf("got %v, want m", env.Payload)
		}
	default:
		t.Fatal("nothing delivered by JitterMax")
	}
}

// TestLinkModelValidation rejects configurations the fault path would
// silently misread.
func TestLinkModelValidation(t *testing.T) {
	bad := []Config{
		{Link: LinkModel{PGB: 0.1}},                                                     // chain can never leave bad
		{Link: LinkModel{BadLoss: 0.5}},                                                 // state loss without a chain
		{Link: LinkModel{GoodLoss: 0.1}},                                                // state loss without a chain
		{Link: LinkModel{PGB: 1.5, PBG: 0.5}},                                           // probability out of range
		{Link: LinkModel{PGB: 0.1, PBG: -0.5}},                                          // probability out of range
		{Link: LinkModel{JitterMin: 2 * time.Millisecond, JitterMax: time.Millisecond}}, // inverted jitter
		{Link: LinkModel{JitterMin: -time.Millisecond}},                                 // negative jitter
		{Loss: 1.5}, // ambient loss out of range
	}
	for i, cfg := range bad {
		if _, err := NewNetwork(cfg); err == nil {
			t.Errorf("config %d (%+v) accepted; want an error", i, cfg.Link)
		}
	}
	good := Config{Link: LinkModel{GoodLoss: 0.01, BadLoss: 0.6, PGB: 0.05, PBG: 0.25,
		JitterMin: time.Millisecond, JitterMax: 2 * time.Millisecond}}
	if _, err := NewNetwork(good); err != nil {
		t.Errorf("legal link model rejected: %v", err)
	}
}
