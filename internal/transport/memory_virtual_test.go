// Virtual-clock behavior of the in-memory fabric: delayed deliveries are
// clock events, so tests advance time instead of sleeping, and Close
// cancels every pending delivery deterministically.
package transport

import (
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/clock"
)

func virtualPair(t *testing.T, cfg Config) (*clock.Virtual, *Network, Endpoint, Endpoint) {
	t.Helper()
	vc := clock.NewVirtual()
	cfg.Clock = vc
	net := MustNetwork(cfg)
	t.Cleanup(func() { net.Close() })
	a, err := net.Attach(addr.New(0))
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Attach(addr.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return vc, net, a, b
}

func TestDelayedDeliveryOnVirtualClock(t *testing.T) {
	vc, _, a, b := virtualPair(t, Config{
		MinDelay: 5 * time.Millisecond,
		MaxDelay: 5 * time.Millisecond,
	})
	if err := a.Send(b.Addr(), "m1"); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), "m2"); err != nil {
		t.Fatal(err)
	}
	// Nothing moves until the clock does.
	select {
	case env := <-b.Recv():
		t.Fatalf("delivered %v before the clock advanced", env)
	default:
	}
	if vc.Pending() != 2 {
		t.Fatalf("%d deliveries scheduled, want 2", vc.Pending())
	}
	// Short of the delay: still nothing.
	vc.Advance(4 * time.Millisecond)
	select {
	case env := <-b.Recv():
		t.Fatalf("delivered %v at 4ms with a 5ms delay", env)
	default:
	}
	// Crossing the delay delivers both, in send order.
	vc.Advance(time.Millisecond)
	for _, want := range []string{"m1", "m2"} {
		select {
		case env := <-b.Recv():
			if env.Payload != want {
				t.Errorf("got %v, want %v", env.Payload, want)
			}
		default:
			t.Fatalf("missing delivery %q after the delay elapsed", want)
		}
	}
}

func TestCloseCancelsVirtualDeliveriesDeterministically(t *testing.T) {
	vc, net, a, b := virtualPair(t, Config{
		MinDelay: 10 * time.Millisecond,
		MaxDelay: 20 * time.Millisecond,
	})
	for i := 0; i < 8; i++ {
		if err := a.Send(b.Addr(), i); err != nil {
			t.Fatal(err)
		}
	}
	if vc.Pending() != 8 {
		t.Fatalf("%d deliveries scheduled, want 8", vc.Pending())
	}
	// Close cancels everything synchronously: no sleeping, no draining
	// goroutines — the clock holds no live callbacks afterwards.
	if err := net.Close(); err != nil {
		t.Fatal(err)
	}
	if got := vc.Pending(); got != 0 {
		t.Fatalf("%d deliveries still scheduled after Close", got)
	}
	// Advancing past every delay proves cancellation (and the endpoint
	// channel is closed, not leaking).
	vc.Advance(time.Second)
	if env, ok := <-b.Recv(); ok {
		t.Fatalf("delivery %v leaked through a closed fabric", env)
	}
}

func TestDetachDropsPendingVirtualDeliveries(t *testing.T) {
	vc, net, a, b := virtualPair(t, Config{
		MinDelay: 5 * time.Millisecond,
		MaxDelay: 5 * time.Millisecond,
	})
	if err := a.Send(b.Addr(), "late"); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	before := net.Dropped()
	vc.Advance(10 * time.Millisecond)
	if net.Dropped() != before+1 {
		t.Errorf("dropped = %d, want %d (in-flight delivery to a closed endpoint)",
			net.Dropped(), before+1)
	}
}
