//go:build linux && (amd64 || arm64)

package udp

import (
	"errors"
	"net"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/transport"
)

// TestSendAllPartialCompletion pins the sendmmsg retry contract: the kernel
// may accept k < n messages (the first k are on the wire, the rest were
// never attempted), and sendAll must resubmit exactly the tail until the
// vector drains.
func TestSendAllPartialCompletion(t *testing.T) {
	msgs := make([]wireMsg, 10)
	for i := range msgs {
		msgs[i].buf = []byte{byte(i)}
	}
	var calls [][]int        // first message index + length of each submitted chunk
	accept := []int{4, 1, 5} // the kernel takes 4, then 1, then the rest
	sent := 0
	syscalls, n, err := sendAll(msgs, 64, func(chunk []wireMsg) (int, error) {
		calls = append(calls, []int{int(chunk[0].buf[0]), len(chunk)})
		k := accept[len(calls)-1]
		sent += k
		return k, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || syscalls != 3 {
		t.Fatalf("sent %d messages in %d syscalls, want 10 in 3", n, syscalls)
	}
	want := [][]int{{0, 10}, {4, 6}, {5, 5}}
	for i := range want {
		if calls[i][0] != want[i][0] || calls[i][1] != want[i][1] {
			t.Fatalf("call %d submitted [%d..] len %d, want [%d..] len %d",
				i, calls[i][0], calls[i][1], want[i][0], want[i][1])
		}
	}
}

// TestSendAllChunksAndErrors pins the vector-width split and the two error
// exits: a mid-stream syscall failure reports what was already accepted,
// and a zero-progress return fails rather than spinning.
func TestSendAllChunksAndErrors(t *testing.T) {
	msgs := make([]wireMsg, 150)
	var lens []int
	syscalls, n, err := sendAll(msgs, 64, func(chunk []wireMsg) (int, error) {
		lens = append(lens, len(chunk))
		return len(chunk), nil
	})
	if err != nil || n != 150 || syscalls != 3 {
		t.Fatalf("got (%d syscalls, %d sent, %v), want (3, 150, nil)", syscalls, n, err)
	}
	if lens[0] != 64 || lens[1] != 64 || lens[2] != 22 {
		t.Fatalf("chunk lengths %v, want [64 64 22]", lens)
	}

	boom := errors.New("boom")
	_, n, err = sendAll(msgs[:100], 64, func(chunk []wireMsg) (int, error) {
		if len(chunk) == 64 {
			return 64, nil
		}
		return 10, boom // partial progress AND an error
	})
	if !errors.Is(err, boom) || n != 74 {
		t.Fatalf("got (%d sent, %v), want (74, boom)", n, err)
	}

	_, _, err = sendAll(msgs[:5], 64, func(chunk []wireMsg) (int, error) {
		return 0, nil // no progress, no error: must not spin
	})
	if !errors.Is(err, errSendStall) {
		t.Fatalf("zero-progress send returned %v, want errSendStall", err)
	}
}

// TestCoalesceGSORuns pins the segmentation contract the coalescer feeds
// the kernel: runs only over pointer-identical destinations, segments equal
// to the first frame's size, a shorter frame closes its run, and a larger
// one starts a new message.
func TestCoalesceGSORuns(t *testing.T) {
	b := &batchIO{gso: true}
	dstA := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	dstB := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 2}
	mk := func(dst *net.UDPAddr, size int) outFrame {
		return outFrame{dst: dst, buf: make([]byte, size)}
	}
	frames := []outFrame{
		mk(dstA, 100), mk(dstA, 100), mk(dstA, 40), // run of 3, short tail
		mk(dstA, 100), mk(dstB, 100), // destination change splits
		mk(dstB, 100), mk(dstB, 200), // larger frame starts a new message
	}
	msgs := b.coalesce(frames, nil)
	type shape struct {
		dst  *net.UDPAddr
		segs int
		seg  int
	}
	want := []shape{
		{dstA, 3, 100}, // the two full frames plus the short tail
		{dstA, 1, 0},   // alone: the destination changes right after
		{dstB, 2, 100}, // the two equal B frames
		{dstB, 1, 0},   // the larger frame cannot join their run
	}
	if len(msgs) != len(want) {
		t.Fatalf("coalesced into %d messages, want %d", len(msgs), len(want))
	}
	var datagrams int64
	for i, m := range msgs {
		if m.dst != want[i].dst || int(m.datagrams()) != want[i].segs || m.seg != want[i].seg {
			t.Fatalf("msg %d = {dst %v, datagrams %d, seg %d}, want {%v, %d, %d}",
				i, m.dst, m.datagrams(), m.seg, want[i].dst, want[i].segs, want[i].seg)
		}
		datagrams += m.datagrams()
	}
	if datagrams != int64(len(frames)) {
		t.Fatalf("coalesce conserved %d datagrams of %d frames", datagrams, len(frames))
	}

	// A run longer than the kernel's segment cap splits into several
	// super-datagrams.
	long := make([]outFrame, gsoMaxSegs+10)
	for i := range long {
		long[i] = mk(dstA, 100)
	}
	msgs = b.coalesce(long, nil)
	if len(msgs) != 2 || msgs[0].datagrams() != gsoMaxSegs || msgs[1].datagrams() != 10 {
		t.Fatalf("over-cap run coalesced into %d messages (%v)", len(msgs), msgs)
	}
}

// TestBatchedSyscallAmortization asserts against the real kernel: a
// 128-message flush to one destination takes exactly two sendmmsg calls
// (the 64-wide vector), and the receiver drains them in far fewer recvmmsg
// calls than datagrams — the ≥4× amortization the tentpole claims.
func TestBatchedSyscallAmortization(t *testing.T) {
	a, b, tr := batchedPair(t, func(c *Config) {
		c.ReadBufferBytes = 4 << 20 // no drops: every datagram must land
	})
	sender := a.(*endpoint)
	if sender.bio == nil || !sender.bio.sendEnabled() {
		t.Skip("kernel-batched path unavailable")
	}
	const total = 128
	msgs := make([]transport.Outgoing, 0, total)
	for i := 0; i < total; i++ {
		msgs = append(msgs, transport.Outgoing{To: addr.MustParse("0.1"), Payload: sampleGossip(i)})
	}
	if err := sender.SendMany(msgs); err != nil {
		t.Fatal(err)
	}
	frames := collectFrames(t, b, total)
	if len(frames) != total {
		t.Fatalf("delivered %d/%d", len(frames), total)
	}
	st := tr.Stats()
	if !st.BatchSend || !st.BatchRecv {
		t.Fatalf("stats report batching off: %+v", st)
	}
	if st.SentDatagrams != total {
		t.Fatalf("SentDatagrams = %d, want %d", st.SentDatagrams, total)
	}
	if st.SendSyscalls != 2 {
		t.Fatalf("SendSyscalls = %d, want 2 (two 64-wide sendmmsg vectors)", st.SendSyscalls)
	}
	if st.RecvSyscalls*4 > st.RecvDatagrams {
		t.Fatalf("recv amortization too weak: %d syscalls for %d datagrams",
			st.RecvSyscalls, st.RecvDatagrams)
	}
}

// TestGSOSegmentsDeliver exercises the UDP_SEGMENT path end to end on
// kernels that support it: equal-size frames to one peer leave as GSO
// super-datagrams yet arrive as ordinary, byte-identical datagrams.
func TestGSOSegmentsDeliver(t *testing.T) {
	msgs := make([]transport.Outgoing, 0, 64)
	for i := 0; i < 64; i++ {
		msgs = append(msgs, transport.Outgoing{To: addr.MustParse("0.1"), Payload: sampleGossip(7)})
	}
	want := frameCount(t, msgs)

	a, b, tr := batchedPair(t, func(c *Config) {
		c.GSO = true
		c.ReadBufferBytes = 4 << 20
	})
	sender := a.(*endpoint)
	if sender.bio == nil || !sender.bio.gso {
		t.Skip("UDP_SEGMENT unsupported on this kernel")
	}
	if err := sender.SendMany(msgs); err != nil {
		t.Fatal(err)
	}
	frames := collectFrames(t, b, want)
	for i := 1; i < len(frames); i++ {
		if string(frames[i]) != string(frames[0]) {
			t.Fatalf("frame %d differs from frame 0 after GSO segmentation", i)
		}
	}
	st := tr.Stats()
	if st.GSOSegments == 0 {
		t.Fatal("GSO enabled and probed, but no segments were counted")
	}
	if st.SendSyscalls >= int64(want) {
		t.Fatalf("GSO path used %d syscalls for %d datagrams", st.SendSyscalls, want)
	}
}
