package udp

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/membership"
	"pmcast/internal/transport"
	"pmcast/internal/wire"
)

// sampleGossip builds a distinct, deterministic gossip per sequence number.
func sampleGossip(i int) core.Gossip {
	ev := event.NewBuilder().
		Int("seq", int64(i)).
		Str("topic", "parity").
		Build(event.ID{Origin: "0.0", Seq: uint64(i + 1)})
	return core.Gossip{Event: ev, Depth: 2, Rate: 0.5, Round: i % 5}
}

// batchedPair attaches two loopback endpoints under the given config
// overrides, with ephemeral ports and raw-frame delivery so tests can
// compare exact wire bytes.
func batchedPair(t *testing.T, mut func(*Config)) (transport.Endpoint, transport.Endpoint, *Transport) {
	t.Helper()
	res, err := NewStaticResolver(map[string]string{
		"0.0": "127.0.0.1:0",
		"0.1": "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Resolver: res, DeferDecode: true}
	if mut != nil {
		mut(&cfg)
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Attach(addr.MustParse("0.0"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Attach(addr.MustParse("0.1"))
	if err != nil {
		t.Fatal(err)
	}
	return a, b, tr
}

// parityTraffic is a SendMany workload exercising every egress shape: bare
// messages, round envelopes small enough for one datagram, and a fat batch
// that SplitBatch has to break across several datagrams.
func parityTraffic() []transport.Outgoing {
	to := addr.MustParse("0.1")
	var msgs []transport.Outgoing
	hb := membership.Heartbeat{From: addr.MustParse("0.0")}
	for i := 0; i < 40; i++ {
		msgs = append(msgs, transport.Outgoing{To: to, Payload: sampleGossip(i)})
		if i%5 == 0 {
			msgs = append(msgs, transport.Outgoing{To: to, Payload: hb})
		}
		if i%7 == 0 {
			b := wire.Batch{Heartbeat: &hb}
			for j := 0; j < 12; j++ {
				b.Gossips = append(b.Gossips, sampleGossip(100*i+j))
			}
			msgs = append(msgs, transport.Outgoing{To: to, Payload: b})
		}
	}
	return msgs
}

// collectFrames drains n raw frames from the endpoint in delivery order.
func collectFrames(t *testing.T, ep transport.Endpoint, n int) [][]byte {
	t.Helper()
	frames := make([][]byte, 0, n)
	deadline := time.After(10 * time.Second)
	for len(frames) < n {
		select {
		case env, ok := <-ep.Recv():
			if !ok {
				t.Fatalf("recv closed after %d/%d frames", len(frames), n)
			}
			raw, ok := env.Payload.(transport.Raw)
			if !ok {
				t.Fatalf("expected raw frame, got %T", env.Payload)
			}
			cp := append([]byte(nil), raw.Frame...)
			raw.Release()
			frames = append(frames, cp)
		case <-deadline:
			t.Fatalf("timed out after %d/%d frames", len(frames), n)
		}
	}
	return frames
}

// frameCount is how many datagrams the workload encodes to — measured on
// the portable path, which shares appendFrames with the batched one.
func frameCount(t *testing.T, msgs []transport.Outgoing) int {
	t.Helper()
	res, err := NewStaticResolver(map[string]string{"0.0": "127.0.0.1:1", "0.1": "127.0.0.1:2"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	e := &endpoint{
		addr:      addr.MustParse("0.0"),
		tr:        tr,
		prefixLen: len(addr.AppendAddress(nil, addr.MustParse("0.0"))),
		cache:     newResolveCache(res),
	}
	var frames []outFrame
	for _, m := range msgs {
		frames, err = e.appendFrames(frames, m.To, m.Payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	n := len(frames)
	releaseFrames(frames)
	return n
}

// TestBatchedFallbackParity pins the tentpole's correctness claim: the
// kernel-batched path delivers byte-identical frames in the same per-link
// order as the single-syscall fallback. (On platforms without the batched
// path both runs use the fallback and the test degenerates to a self-check.)
func TestBatchedFallbackParity(t *testing.T) {
	msgs := parityTraffic()
	want := frameCount(t, msgs)

	run := func(mut func(*Config)) [][]byte {
		a, b, _ := batchedPair(t, mut)
		sender := a.(*endpoint)
		if err := sender.SendMany(msgs); err != nil {
			t.Fatal(err)
		}
		return collectFrames(t, b, want)
	}
	fallback := run(func(c *Config) { c.NoBatchSend = true; c.NoBatchRecv = true })
	batched := run(func(c *Config) { c.GSO = true; c.GRO = true })

	if len(fallback) != len(batched) {
		t.Fatalf("frame counts differ: fallback %d, batched %d", len(fallback), len(batched))
	}
	for i := range fallback {
		if string(fallback[i]) != string(batched[i]) {
			t.Fatalf("frame %d differs:\nfallback %x\nbatched  %x", i, fallback[i], batched[i])
		}
	}
}

// TestSendManyKeepsGoingPastFailures pins the seam's error contract: one
// unresolvable destination mid-queue must not stall the rest, and the first
// error surfaces after every message was attempted.
func TestSendManyKeepsGoingPastFailures(t *testing.T) {
	a, b, _ := batchedPair(t, nil)
	sender := a.(*endpoint)
	to := addr.MustParse("0.1")
	msgs := []transport.Outgoing{
		{To: to, Payload: sampleGossip(1)},
		{To: addr.MustParse("0.2"), Payload: sampleGossip(2)}, // not in the resolver
		{To: to, Payload: sampleGossip(3)},
	}
	err := sender.SendMany(msgs)
	if !errors.Is(err, transport.ErrUnknownAddr) {
		t.Fatalf("want ErrUnknownAddr, got %v", err)
	}
	got := collectFrames(t, b, 2)
	if len(got) != 2 {
		t.Fatalf("want the 2 resolvable messages delivered, got %d", len(got))
	}
}

// TestRecvManyDrainsBursts pins the BatchReceiver contract: the first
// receive blocks, the rest of the call drains without blocking, and the
// endpoint's close surfaces as ok=false.
func TestRecvManyDrainsBursts(t *testing.T) {
	a, b, _ := batchedPair(t, nil)
	sender := a.(*endpoint)
	const total = 20
	msgs := make([]transport.Outgoing, 0, total)
	for i := 0; i < total; i++ {
		msgs = append(msgs, transport.Outgoing{To: addr.MustParse("0.1"), Payload: sampleGossip(i)})
	}
	if err := sender.SendMany(msgs); err != nil {
		t.Fatal(err)
	}
	br := b.(transport.BatchReceiver)
	out := make([]transport.Envelope, 8)
	got := 0
	for got < total {
		n, ok := br.RecvMany(out)
		if !ok {
			t.Fatalf("endpoint reported closed after %d/%d", got, total)
		}
		if n < 1 || n > len(out) {
			t.Fatalf("RecvMany returned %d (out cap %d)", n, len(out))
		}
		for i := 0; i < n; i++ {
			if raw, ok := out[i].Payload.(transport.Raw); ok {
				raw.Release()
			}
		}
		got += n
	}
	b.Close()
	if n, ok := br.RecvMany(out); ok && n == 0 {
		t.Fatal("RecvMany on a closed drained endpoint must eventually report ok=false")
	}
}

// TestResolverCacheInvalidation re-Registers a peer onto a new socket and
// asserts traffic follows: the per-endpoint cache must flush on the
// resolver's generation bump, never pinning the old destination.
func TestResolverCacheInvalidation(t *testing.T) {
	res, err := NewStaticResolver(map[string]string{
		"0.0": "127.0.0.1:0",
		"0.1": "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a, err := tr.Attach(addr.MustParse("0.0"))
	if err != nil {
		t.Fatal(err)
	}
	to := addr.MustParse("0.1")

	// First home: a plain socket standing in for the peer.
	oldConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer oldConn.Close()
	res.Register(to, oldConn.LocalAddr().(*net.UDPAddr))
	if err := a.Send(to, sampleGossip(1)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65536)
	oldConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := oldConn.ReadFromUDP(buf); err != nil {
		t.Fatalf("datagram never reached the first socket: %v", err)
	}

	// The peer moves; the very next send must hit the new socket.
	newConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer newConn.Close()
	res.Register(to, newConn.LocalAddr().(*net.UDPAddr))
	if err := a.Send(to, sampleGossip(2)); err != nil {
		t.Fatal(err)
	}
	newConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := newConn.ReadFromUDP(buf); err != nil {
		t.Fatalf("post-Register datagram still went to the old socket: %v", err)
	}
}

// TestStatsCountDatapath sanity-checks the new Stats surface: datagram and
// syscall counters move on both directions, and the satellite bugfix
// counters (Malformed/Dropped) are visible in the same snapshot.
func TestStatsCountDatapath(t *testing.T) {
	a, b, tr := batchedPair(t, nil)
	sender := a.(*endpoint)
	const total = 16
	msgs := make([]transport.Outgoing, 0, total)
	for i := 0; i < total; i++ {
		msgs = append(msgs, transport.Outgoing{To: addr.MustParse("0.1"), Payload: sampleGossip(i)})
	}
	if err := sender.SendMany(msgs); err != nil {
		t.Fatal(err)
	}
	for _, f := range collectFrames(t, b, total) {
		_ = f
	}
	st := tr.Stats()
	if st.SentDatagrams < total {
		t.Fatalf("SentDatagrams = %d, want ≥ %d", st.SentDatagrams, total)
	}
	if st.SendSyscalls < 1 || st.SendSyscalls > st.SentDatagrams {
		t.Fatalf("SendSyscalls = %d out of range [1, %d]", st.SendSyscalls, st.SentDatagrams)
	}
	if st.RecvDatagrams < total {
		t.Fatalf("RecvDatagrams = %d, want ≥ %d", st.RecvDatagrams, total)
	}
	if st.RecvSyscalls < 1 || st.RecvSyscalls > st.RecvDatagrams {
		t.Fatalf("RecvSyscalls = %d out of range [1, %d]", st.RecvSyscalls, st.RecvDatagrams)
	}
	if st.Malformed != tr.Malformed() || st.Dropped != tr.Dropped() {
		t.Fatal("Stats snapshot disagrees with the counter accessors")
	}
}

// TestSocketBufferConfig asks for explicit socket buffers and checks the
// achieved sizes surface in Stats on platforms with readback.
func TestSocketBufferConfig(t *testing.T) {
	_, _, tr := batchedPair(t, func(c *Config) {
		c.ReadBufferBytes = 1 << 20
		c.WriteBufferBytes = 1 << 20
	})
	st := tr.Stats()
	rcv, snd := st.ReadBufferBytes, st.WriteBufferBytes
	if rcv == 0 && snd == 0 {
		t.Skip("no socket-buffer readback on this platform")
	}
	// The kernel may clamp (or double, on Linux) the request; just pin that
	// the knob moved the needle beyond the typical small default.
	if rcv < 1<<18 {
		t.Fatalf("achieved read buffer %d suspiciously small for a 1MiB request", rcv)
	}
	if snd < 1<<18 {
		t.Fatalf("achieved write buffer %d suspiciously small for a 1MiB request", snd)
	}
}

// BenchmarkResolve pins the satellite claim that resolution is off the hot
// path: the cached resolve is an atomic load + map read, the uncached one
// pays the resolver's RWMutex on every call.
func BenchmarkResolve(b *testing.B) {
	peers := make(map[string]string, 64)
	for i := 0; i < 64; i++ {
		peers[fmt.Sprintf("0.%d", i)] = fmt.Sprintf("127.0.0.1:%d", 9000+i)
	}
	res, err := NewStaticResolver(peers)
	if err != nil {
		b.Fatal(err)
	}
	targets := make([]addr.Address, 0, 64)
	for i := 0; i < 64; i++ {
		targets = append(targets, addr.MustParse(fmt.Sprintf("0.%d", i)))
	}
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := res.Resolve(targets[i&63]); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		c := newResolveCache(res)
		for _, a := range targets {
			if _, err := c.resolve(a); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.resolve(targets[i&63]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
