// Package udp is the real-socket transport backend: it frames pmcast
// protocol messages with the internal/wire codec and ships them as UDP
// datagrams, one endpoint per bound socket.
//
// Addressing is two-layered. Processes keep their hierarchical pmcast
// address (addr.Address, the tree coordinate); a Resolver maps that address
// to a socket address. The StaticResolver is the simplest useful mapping —
// a table populated up front (a deployment manifest) or lazily by
// endpoints that bind ephemeral ports and register themselves.
//
// Datagram layout: the sender's pmcast address (addr.AppendAddress) followed
// by one wire frame. UDP preserves message boundaries, so no further
// delimiting is needed; datagrams that fail to parse are counted and
// dropped, exactly like line noise on a real fabric.
package udp

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"pmcast/internal/addr"
	"pmcast/internal/binenc"
	"pmcast/internal/transport"
	"pmcast/internal/wire"
)

// Resolver maps a pmcast tree address to the UDP socket it listens on.
type Resolver interface {
	// Resolve returns the socket address for a. Unknown addresses report
	// an error wrapping transport.ErrUnknownAddr.
	Resolve(a addr.Address) (*net.UDPAddr, error)
}

// Registrar is the optional write side of a Resolver. When an endpoint is
// told to bind port 0 (ephemeral), the transport registers the actual bound
// socket back so in-process peers can resolve it — the pattern tests and
// single-host clusters use.
type Registrar interface {
	Register(a addr.Address, ua *net.UDPAddr)
}

// StaticResolver is a concurrency-safe static table from address keys to
// socket addresses. It implements both Resolver and Registrar.
type StaticResolver struct {
	mu    sync.RWMutex
	table map[string]*net.UDPAddr
}

// NewStaticResolver builds a resolver from dotted pmcast addresses to
// "host:port" strings, e.g. {"0.1": "127.0.0.1:7701"}. A port of 0 means
// "bind ephemeral and register the real port" (single-process use).
func NewStaticResolver(peers map[string]string) (*StaticResolver, error) {
	r := &StaticResolver{table: make(map[string]*net.UDPAddr, len(peers))}
	for key, hostport := range peers {
		a, err := addr.Parse(key)
		if err != nil {
			return nil, fmt.Errorf("udp: resolver key %q: %w", key, err)
		}
		ua, err := net.ResolveUDPAddr("udp", hostport)
		if err != nil {
			return nil, fmt.Errorf("udp: resolver value %q: %w", hostport, err)
		}
		r.table[a.Key()] = ua
	}
	return r, nil
}

// Resolve implements Resolver.
func (r *StaticResolver) Resolve(a addr.Address) (*net.UDPAddr, error) {
	r.mu.RLock()
	ua, ok := r.table[a.Key()]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s has no socket mapping", transport.ErrUnknownAddr, a)
	}
	return ua, nil
}

// Register implements Registrar.
func (r *StaticResolver) Register(a addr.Address, ua *net.UDPAddr) {
	r.mu.Lock()
	r.table[a.Key()] = ua
	r.mu.Unlock()
}

// Config tunes the UDP transport.
type Config struct {
	// Resolver maps tree addresses to sockets. Required.
	Resolver Resolver
	// QueueLen is each endpoint's decoded-inbox capacity (default 1024);
	// overflow drops messages, like a full socket buffer.
	QueueLen int
	// MaxDatagram bounds datagram size in bytes (default 64 KiB − 1, the
	// UDP maximum). Sends that encode larger fail with an error.
	MaxDatagram int
	// DeferDecode hands received frames to the consumer undecoded — as
	// transport.Raw payloads on pooled buffers — instead of unframing them
	// on the endpoint's single read loop. The node engine's ingress workers
	// then decode in parallel, each with its own interning decoder: the
	// configuration for multicore deployments (pair with the node's
	// DecodeWorkers). The sender-address prefix is still parsed (and
	// malformed prefixes counted) here; payload decode failures are counted
	// by whoever decodes.
	DeferDecode bool
}

// Transport binds UDP sockets for attached addresses. It implements
// transport.Transport.
type Transport struct {
	cfg Config

	mu        sync.Mutex
	endpoints map[string]*endpoint
	closed    bool

	malformed atomic.Int64
	dropped   atomic.Int64
}

var _ transport.Transport = (*Transport)(nil)

// New builds a UDP transport over the given resolver.
func New(cfg Config) (*Transport, error) {
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("udp: config requires a Resolver")
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 64<<10 - 1
	}
	return &Transport{
		cfg:       cfg,
		endpoints: make(map[string]*endpoint),
	}, nil
}

// Attach binds the socket the resolver assigns to a and starts its receive
// loop. If the resolved port is 0 the endpoint binds an ephemeral port and,
// when the resolver is also a Registrar, publishes the real socket back.
func (t *Transport) Attach(a addr.Address) (transport.Endpoint, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if _, ok := t.endpoints[a.Key()]; ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", transport.ErrDuplicateAddr, a)
	}
	t.mu.Unlock()

	bind, err := t.cfg.Resolver.Resolve(a)
	if err != nil {
		return nil, fmt.Errorf("udp: attaching %s: %w", a, err)
	}
	conn, err := net.ListenUDP("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("udp: binding %s for %s: %w", bind, a, err)
	}
	ep := &endpoint{
		addr:      a,
		tr:        t,
		conn:      conn,
		prefixLen: len(addr.AppendAddress(nil, a)),
		in:        make(chan transport.Envelope, t.cfg.QueueLen),
		done:      make(chan struct{}),
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, transport.ErrClosed
	}
	if _, ok := t.endpoints[a.Key()]; ok {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("%w: %s", transport.ErrDuplicateAddr, a)
	}
	t.endpoints[a.Key()] = ep
	t.mu.Unlock()

	// Publish the ephemeral socket only after winning the insert: a losing
	// duplicate Attach closes its conn, and must not leave the resolver
	// pointing at that dead socket.
	if bind.Port == 0 {
		if reg, ok := t.cfg.Resolver.(Registrar); ok {
			reg.Register(a, conn.LocalAddr().(*net.UDPAddr))
		}
	}
	go ep.readLoop(t.cfg.MaxDatagram)
	return ep, nil
}

// Close shuts every endpoint down and rejects further attaches.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	endpoints := t.endpoints
	t.endpoints = make(map[string]*endpoint)
	t.mu.Unlock()
	for _, ep := range endpoints {
		ep.shutdown()
	}
	return nil
}

// Malformed reports datagrams discarded because they failed to parse.
func (t *Transport) Malformed() int64 { return t.malformed.Load() }

// Dropped reports decoded messages discarded because an inbox was full.
func (t *Transport) Dropped() int64 { return t.dropped.Load() }

func (t *Transport) detach(ep *endpoint) {
	t.mu.Lock()
	if cur, ok := t.endpoints[ep.addr.Key()]; ok && cur == ep {
		delete(t.endpoints, ep.addr.Key())
	}
	t.mu.Unlock()
}

// endpoint is one bound UDP socket speaking the wire framing.
type endpoint struct {
	addr      addr.Address
	tr        *Transport
	conn      *net.UDPConn
	prefixLen int // encoded size of the sender-address datagram prefix
	in        chan transport.Envelope
	done      chan struct{}

	closeOnce sync.Once
}

var _ transport.Endpoint = (*endpoint)(nil)

// Addr returns the endpoint's pmcast address.
func (e *endpoint) Addr() addr.Address { return e.addr }

// Send encodes one protocol message and ships it as a datagram, reusing
// pooled encode buffers so the steady-state send path does not allocate.
// Round envelopes (wire.Batch) that exceed the datagram bound are split at
// the MTU boundary: the piggybacked membership payloads ride the first
// datagram and the length-prefixed gossip sections fill greedily.
func (e *endpoint) Send(to addr.Address, payload any) error {
	select {
	case <-e.done:
		return transport.ErrClosed
	default:
	}
	dst, err := e.tr.cfg.Resolver.Resolve(to)
	if err != nil {
		return err
	}
	if b, ok := payload.(wire.Batch); ok {
		return e.sendBatch(to, dst, b)
	}
	return e.writeFrame(to, dst, payload)
}

// writeFrame encodes one message and ships it as a single datagram.
func (e *endpoint) writeFrame(to addr.Address, dst *net.UDPAddr, payload any) error {
	p := wire.GetBuffer()
	defer func() { wire.PutBuffer(p) }()
	buf := addr.AppendAddress(*p, e.addr)
	buf, err := wire.AppendMessage(buf, payload)
	if err != nil {
		return fmt.Errorf("udp: encoding for %s: %w", to, err)
	}
	*p = buf[:0] // keep the grown capacity pooled
	if len(buf) > e.tr.cfg.MaxDatagram {
		return fmt.Errorf("udp: message for %s is %d bytes, above the %d-byte datagram bound",
			to, len(buf), e.tr.cfg.MaxDatagram)
	}
	return e.write(to, dst, buf)
}

// sendBatch ships a round envelope, splitting it at the datagram boundary
// when its encoded form exceeds MaxDatagram.
func (e *endpoint) sendBatch(to addr.Address, dst *net.UDPAddr, b wire.Batch) error {
	// The sender-address prefix shares the datagram with the frame.
	chunks, err := wire.SplitBatch(b, e.tr.cfg.MaxDatagram-e.prefixLen)
	if err != nil {
		return fmt.Errorf("udp: batch for %s: %w", to, err)
	}
	for _, chunk := range chunks {
		p := wire.GetBuffer()
		buf := addr.AppendAddress(*p, e.addr)
		buf, err := wire.AppendBatch(buf, chunk)
		if err != nil {
			wire.PutBuffer(p)
			return fmt.Errorf("udp: encoding batch for %s: %w", to, err)
		}
		*p = buf[:0]
		if len(buf) > e.tr.cfg.MaxDatagram {
			// SplitBatch guarantees this never fires; the guard keeps a
			// codec-accounting bug from emitting a datagram the receiver's
			// MaxDatagram-sized read buffer would silently truncate.
			wire.PutBuffer(p)
			return fmt.Errorf("udp: batch chunk for %s is %d bytes, above the %d-byte datagram bound",
				to, len(buf), e.tr.cfg.MaxDatagram)
		}
		werr := e.write(to, dst, buf)
		wire.PutBuffer(p)
		if werr != nil {
			return werr
		}
	}
	return nil
}

func (e *endpoint) write(to addr.Address, dst *net.UDPAddr, buf []byte) error {
	if _, err := e.conn.WriteToUDP(buf, dst); err != nil {
		select {
		case <-e.done:
			return transport.ErrClosed
		default:
		}
		return fmt.Errorf("udp: sending to %s (%s): %w", to, dst, err)
	}
	return nil
}

// Recv exposes the decoded inbox. The channel closes when the endpoint does.
func (e *endpoint) Recv() <-chan transport.Envelope { return e.in }

// Close unbinds the socket and stops the receive loop.
func (e *endpoint) Close() error {
	e.tr.detach(e)
	e.shutdown()
	return nil
}

func (e *endpoint) shutdown() {
	e.closeOnce.Do(func() {
		close(e.done)
		e.conn.Close() // unblocks the read loop, which closes e.in
	})
}

// readLoop turns datagrams into envelopes until the socket closes. The
// decoder is loop-local with an intern table, so the strings a gossip
// stream endlessly repeats (origins, attribute names, membership keys) are
// allocated once and shared across frames. With DeferDecode the loop only
// parses the sender prefix and ships the frame bytes as a transport.Raw —
// unframing moves to the consumer's ingress workers.
func (e *endpoint) readLoop(maxDatagram int) {
	defer close(e.in)
	buf := make([]byte, maxDatagram)
	var dec *wire.Decoder
	if !e.tr.cfg.DeferDecode {
		dec = wire.NewDecoder() // unused (and unallocated) when deferring
	}
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (or fatally broken): endpoint is done
		}
		r := binenc.NewReader(buf[:n])
		from := addr.ReadAddress(r)
		if r.Err() != nil {
			e.tr.malformed.Add(1)
			continue
		}
		var payload any
		if e.tr.cfg.DeferDecode {
			payload = transport.NewRaw(buf[n-r.Len() : n])
		} else {
			payload, err = dec.Decode(buf[n-r.Len() : n])
			if err != nil {
				e.tr.malformed.Add(1)
				continue
			}
		}
		env := transport.Envelope{From: from, To: e.addr, Payload: payload}
		select {
		case e.in <- env:
		default:
			if raw, ok := payload.(transport.Raw); ok {
				raw.Release() // overflow never reaches a decoder
			}
			e.tr.dropped.Add(1) // inbox overflow, like a full socket buffer
		}
	}
}
