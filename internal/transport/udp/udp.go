// Package udp is the real-socket transport backend: it frames pmcast
// protocol messages with the internal/wire codec and ships them as UDP
// datagrams, one endpoint per bound socket.
//
// Addressing is two-layered. Processes keep their hierarchical pmcast
// address (addr.Address, the tree coordinate); a Resolver maps that address
// to a socket address. The StaticResolver is the simplest useful mapping —
// a table populated up front (a deployment manifest) or lazily by
// endpoints that bind ephemeral ports and register themselves.
//
// Datagram layout: the sender's pmcast address (addr.AppendAddress) followed
// by one wire frame. UDP preserves message boundaries, so no further
// delimiting is needed; datagrams that fail to parse are counted and
// dropped, exactly like line noise on a real fabric.
//
// The datapath is kernel-batched on Linux (see batch_linux.go): egress
// queues handed over via SendMany flush as one sendmmsg vector per 64
// messages — with optional UDP GSO coalescing equal-size same-destination
// frames into super-datagrams — and the read loop fills a pooled vector of
// buffers with one recvmmsg per wakeup (optional GRO). Everywhere else, and
// under the Config opt-outs, the endpoint keeps the portable
// one-syscall-per-datagram path; behavior is identical either way, only the
// syscall count changes (Stats reports both sides' amortization).
package udp

import (
	"fmt"
	"maps"
	"net"
	"sync"
	"sync/atomic"

	"pmcast/internal/addr"
	"pmcast/internal/binenc"
	"pmcast/internal/transport"
	"pmcast/internal/wire"
)

// Resolver maps a pmcast tree address to the UDP socket it listens on.
type Resolver interface {
	// Resolve returns the socket address for a. Unknown addresses report
	// an error wrapping transport.ErrUnknownAddr.
	Resolve(a addr.Address) (*net.UDPAddr, error)
}

// Registrar is the optional write side of a Resolver. When an endpoint is
// told to bind port 0 (ephemeral), the transport registers the actual bound
// socket back so in-process peers can resolve it — the pattern tests and
// single-host clusters use.
type Registrar interface {
	Register(a addr.Address, ua *net.UDPAddr)
}

// Versioned is an optional Resolver extension: Gen returns a counter that
// moves whenever any mapping changes. Endpoints only cache resolved socket
// addresses for resolvers that implement it — the generation check is one
// atomic load per send, and a bumped generation flushes the cache, so a
// re-Registered peer is never resolved stale. A resolver without Gen is
// consulted on every send, exactly as before the cache existed.
type Versioned interface {
	Gen() uint64
}

// StaticResolver is a concurrency-safe static table from address keys to
// socket addresses. It implements Resolver, Registrar and Versioned.
type StaticResolver struct {
	mu    sync.RWMutex
	table map[string]*net.UDPAddr
	gen   atomic.Uint64
}

// NewStaticResolver builds a resolver from dotted pmcast addresses to
// "host:port" strings, e.g. {"0.1": "127.0.0.1:7701"}. A port of 0 means
// "bind ephemeral and register the real port" (single-process use).
func NewStaticResolver(peers map[string]string) (*StaticResolver, error) {
	r := &StaticResolver{table: make(map[string]*net.UDPAddr, len(peers))}
	for key, hostport := range peers {
		a, err := addr.Parse(key)
		if err != nil {
			return nil, fmt.Errorf("udp: resolver key %q: %w", key, err)
		}
		ua, err := net.ResolveUDPAddr("udp", hostport)
		if err != nil {
			return nil, fmt.Errorf("udp: resolver value %q: %w", hostport, err)
		}
		r.table[a.Key()] = ua
	}
	return r, nil
}

// Resolve implements Resolver.
func (r *StaticResolver) Resolve(a addr.Address) (*net.UDPAddr, error) {
	r.mu.RLock()
	ua, ok := r.table[a.Key()]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s has no socket mapping", transport.ErrUnknownAddr, a)
	}
	return ua, nil
}

// Register implements Registrar.
func (r *StaticResolver) Register(a addr.Address, ua *net.UDPAddr) {
	r.mu.Lock()
	r.table[a.Key()] = ua
	r.mu.Unlock()
	// Bump after the table write: an endpoint cache that observes the new
	// generation is guaranteed to resolve the new mapping, and one that
	// cached the new mapping under the old generation merely flushes a
	// fresh entry (see resolveCache).
	r.gen.Add(1)
}

// Gen implements Versioned.
func (r *StaticResolver) Gen() uint64 { return r.gen.Load() }

// Config tunes the UDP transport.
type Config struct {
	// Resolver maps tree addresses to sockets. Required.
	Resolver Resolver
	// QueueLen is each endpoint's decoded-inbox capacity (default 1024);
	// overflow drops messages, like a full socket buffer.
	QueueLen int
	// MaxDatagram bounds datagram size in bytes (default 64 KiB − 1, the
	// UDP maximum). Sends that encode larger fail with an error.
	MaxDatagram int
	// DeferDecode hands received frames to the consumer undecoded — as
	// transport.Raw payloads on pooled buffers — instead of unframing them
	// on the endpoint's single read loop. The node engine's ingress workers
	// then decode in parallel, each with its own interning decoder: the
	// configuration for multicore deployments (pair with the node's
	// DecodeWorkers). The sender-address prefix is still parsed (and
	// malformed prefixes counted) here; payload decode failures are counted
	// by whoever decodes.
	DeferDecode bool
	// NoBatchSend opts out of kernel-batched egress. By default, where the
	// platform supports it (Linux amd64/arm64), SendMany flushes its whole
	// queue with sendmmsg — one syscall per 64 datagrams — instead of one
	// write syscall each. Single-message Send always uses the portable
	// path; frames and their per-link order are identical either way.
	NoBatchSend bool
	// NoBatchRecv opts out of kernel-batched ingress. By default, where
	// supported, the read loop fills a vector of RecvBatch pooled buffers
	// with one recvmmsg per wakeup instead of one read syscall per
	// datagram.
	NoBatchRecv bool
	// RecvBatch is the recvmmsg vector width (default 32): how many
	// datagrams one ingress syscall can drain. Each slot holds a
	// MaxDatagram-sized buffer reused across syscalls.
	RecvBatch int
	// GSO opts in to UDP generic segmentation offload on the batched
	// egress path: runs of equal-size frames to the same destination are
	// handed to the kernel as one super-datagram plus a UDP_SEGMENT size,
	// and the kernel splits it back into one UDP datagram per frame.
	// Probed at attach; silently off where the kernel lacks support.
	GSO bool
	// GRO opts in to UDP generic receive offload on the batched ingress
	// path: the kernel may coalesce bursts of equal-size datagrams into
	// one buffer plus a segment size, and the read loop splits them back
	// into individual frames. Probed at attach; silently off where
	// unsupported.
	GRO bool
	// ReadBufferBytes requests SO_RCVBUF for each endpoint socket (0
	// keeps the kernel default). At kernel-batched rates the default
	// routinely overflows between read wakeups; the achieved size — the
	// kernel may clamp the request — is surfaced in Stats.
	ReadBufferBytes int
	// WriteBufferBytes requests SO_SNDBUF likewise.
	WriteBufferBytes int
}

// Stats is a snapshot of the transport's datapath counters, aggregated
// across its endpoints. SendSyscalls/RecvSyscalls count kernel crossings;
// SentDatagrams/RecvDatagrams count wire datagrams, so datagrams/syscall is
// the kernel-batching amortization (exactly 1.0 on the portable path).
type Stats struct {
	// Malformed counts datagrams discarded because they failed to parse;
	// Dropped counts decoded messages discarded because an inbox was full.
	// Both are silent-loss signals a loopback soak must watch.
	Malformed int64
	Dropped   int64

	SendSyscalls  int64
	SentDatagrams int64
	// GSOSegments counts datagrams that left as segments of a GSO
	// super-datagram (a subset of SentDatagrams).
	GSOSegments int64

	RecvSyscalls  int64
	RecvDatagrams int64
	// GROSegments counts datagrams that arrived coalesced into a GRO
	// super-datagram (a subset of RecvDatagrams).
	GROSegments int64

	// BatchSend/BatchRecv report whether the kernel-batched paths are live
	// on this platform and configuration.
	BatchSend bool
	BatchRecv bool

	// ReadBufferBytes/WriteBufferBytes are the achieved socket buffer
	// sizes (as the kernel reports them, typically double the requested
	// value on Linux); zero when the platform offers no readback.
	ReadBufferBytes  int64
	WriteBufferBytes int64
}

// Transport binds UDP sockets for attached addresses. It implements
// transport.Transport.
type Transport struct {
	cfg Config

	mu        sync.Mutex
	endpoints map[string]*endpoint
	closed    bool

	malformed atomic.Int64
	dropped   atomic.Int64

	sendSyscalls  atomic.Int64
	sentDatagrams atomic.Int64
	gsoSegments   atomic.Int64
	recvSyscalls  atomic.Int64
	recvDatagrams atomic.Int64
	groSegments   atomic.Int64

	batchSendOn atomic.Bool
	batchRecvOn atomic.Bool
	readBufSize atomic.Int64
	sendBufSize atomic.Int64
}

var _ transport.Transport = (*Transport)(nil)

// New builds a UDP transport over the given resolver.
func New(cfg Config) (*Transport, error) {
	if cfg.Resolver == nil {
		return nil, fmt.Errorf("udp: config requires a Resolver")
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 1024
	}
	if cfg.MaxDatagram <= 0 {
		cfg.MaxDatagram = 64<<10 - 1
	}
	if cfg.RecvBatch <= 0 {
		cfg.RecvBatch = 32
	}
	return &Transport{
		cfg:       cfg,
		endpoints: make(map[string]*endpoint),
	}, nil
}

// Attach binds the socket the resolver assigns to a and starts its receive
// loop. If the resolved port is 0 the endpoint binds an ephemeral port and,
// when the resolver is also a Registrar, publishes the real socket back.
func (t *Transport) Attach(a addr.Address) (transport.Endpoint, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if _, ok := t.endpoints[a.Key()]; ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", transport.ErrDuplicateAddr, a)
	}
	t.mu.Unlock()

	bind, err := t.cfg.Resolver.Resolve(a)
	if err != nil {
		return nil, fmt.Errorf("udp: attaching %s: %w", a, err)
	}
	conn, err := net.ListenUDP("udp", bind)
	if err != nil {
		return nil, fmt.Errorf("udp: binding %s for %s: %w", bind, a, err)
	}
	if t.cfg.ReadBufferBytes > 0 {
		_ = conn.SetReadBuffer(t.cfg.ReadBufferBytes) // best effort; achieved size read back below
	}
	if t.cfg.WriteBufferBytes > 0 {
		_ = conn.SetWriteBuffer(t.cfg.WriteBufferBytes)
	}
	if rcv, snd := socketBuffers(conn); rcv > 0 || snd > 0 {
		t.readBufSize.Store(int64(rcv))
		t.sendBufSize.Store(int64(snd))
	}
	ep := &endpoint{
		addr:      a,
		tr:        t,
		conn:      conn,
		prefixLen: len(addr.AppendAddress(nil, a)),
		cache:     newResolveCache(t.cfg.Resolver),
		in:        make(chan transport.Envelope, t.cfg.QueueLen),
		done:      make(chan struct{}),
	}
	ep.bio = newBatchIO(conn, t.cfg, t.cfg.MaxDatagram)
	if ep.bio != nil {
		if ep.bio.sendEnabled() {
			t.batchSendOn.Store(true)
		}
		if ep.bio.recvEnabled() {
			t.batchRecvOn.Store(true)
		}
	}

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		conn.Close()
		return nil, transport.ErrClosed
	}
	if _, ok := t.endpoints[a.Key()]; ok {
		t.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("%w: %s", transport.ErrDuplicateAddr, a)
	}
	t.endpoints[a.Key()] = ep
	t.mu.Unlock()

	// Publish the ephemeral socket only after winning the insert: a losing
	// duplicate Attach closes its conn, and must not leave the resolver
	// pointing at that dead socket.
	if bind.Port == 0 {
		if reg, ok := t.cfg.Resolver.(Registrar); ok {
			reg.Register(a, conn.LocalAddr().(*net.UDPAddr))
		}
	}
	go ep.readLoop(t.cfg.MaxDatagram)
	return ep, nil
}

// Close shuts every endpoint down and rejects further attaches.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	endpoints := t.endpoints
	t.endpoints = make(map[string]*endpoint)
	t.mu.Unlock()
	for _, ep := range endpoints {
		ep.shutdown()
	}
	return nil
}

// Malformed reports datagrams discarded because they failed to parse.
func (t *Transport) Malformed() int64 { return t.malformed.Load() }

// Dropped reports decoded messages discarded because an inbox was full.
func (t *Transport) Dropped() int64 { return t.dropped.Load() }

// Stats snapshots the transport's datapath counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Malformed:        t.malformed.Load(),
		Dropped:          t.dropped.Load(),
		SendSyscalls:     t.sendSyscalls.Load(),
		SentDatagrams:    t.sentDatagrams.Load(),
		GSOSegments:      t.gsoSegments.Load(),
		RecvSyscalls:     t.recvSyscalls.Load(),
		RecvDatagrams:    t.recvDatagrams.Load(),
		GROSegments:      t.groSegments.Load(),
		BatchSend:        t.batchSendOn.Load(),
		BatchRecv:        t.batchRecvOn.Load(),
		ReadBufferBytes:  t.readBufSize.Load(),
		WriteBufferBytes: t.sendBufSize.Load(),
	}
}

func (t *Transport) detach(ep *endpoint) {
	t.mu.Lock()
	if cur, ok := t.endpoints[ep.addr.Key()]; ok && cur == ep {
		delete(t.endpoints, ep.addr.Key())
	}
	t.mu.Unlock()
}

// resolveCache is the per-endpoint resolved-address cache behind the send
// hot path. The backing resolver pays an RWMutex acquisition and a map
// lookup per Resolve — measurable at kernel-batched rates — so endpoints
// keep an immutable copy-on-write table read with one atomic load. The
// cache only engages for Versioned resolvers: every resolve compares the
// resolver's generation and discards the whole table when it moved, so a
// re-Registered peer can never be sent to a stale socket for longer than
// the Register itself takes.
type resolveCache struct {
	res Resolver
	ver Versioned // nil: caching disabled, every resolve hits res
	tab atomic.Pointer[cacheTable]
}

// cacheTable is one immutable cache snapshot, valid for exactly one
// resolver generation.
type cacheTable struct {
	gen uint64
	m   map[string]*net.UDPAddr
}

func newResolveCache(res Resolver) *resolveCache {
	c := &resolveCache{res: res}
	c.ver, _ = res.(Versioned)
	return c
}

func (c *resolveCache) resolve(a addr.Address) (*net.UDPAddr, error) {
	if c.ver == nil {
		return c.res.Resolve(a)
	}
	gen := c.ver.Gen()
	cur := c.tab.Load()
	if cur != nil && cur.gen == gen {
		if ua, ok := cur.m[a.Key()]; ok {
			return ua, nil
		}
	}
	ua, err := c.res.Resolve(a)
	if err != nil {
		return nil, err
	}
	// Publish a fresh snapshot derived from the one loaded above. The CAS
	// makes the (gen check, derive, publish) sequence atomic against
	// concurrent inserts and invalidations: losing the race just drops
	// this insert, and the entry is re-resolved and re-cached next send —
	// a stale entry can never be resurrected past a generation bump.
	m := make(map[string]*net.UDPAddr, 8)
	if cur != nil && cur.gen == gen {
		m = make(map[string]*net.UDPAddr, len(cur.m)+1)
		maps.Copy(m, cur.m)
	}
	m[a.Key()] = ua
	c.tab.CompareAndSwap(cur, &cacheTable{gen: gen, m: m})
	return ua, nil
}

// endpoint is one bound UDP socket speaking the wire framing.
type endpoint struct {
	addr      addr.Address
	tr        *Transport
	conn      *net.UDPConn
	prefixLen int // encoded size of the sender-address datagram prefix
	cache     *resolveCache
	bio       *batchIO // kernel-batched I/O; nil on the portable path
	in        chan transport.Envelope
	done      chan struct{}

	closeOnce sync.Once
}

var (
	_ transport.Endpoint      = (*endpoint)(nil)
	_ transport.BatchSender   = (*endpoint)(nil)
	_ transport.BatchReceiver = (*endpoint)(nil)
)

// Addr returns the endpoint's pmcast address.
func (e *endpoint) Addr() addr.Address { return e.addr }

// outFrame is one encoded datagram awaiting transmission: the destination
// socket and the full wire bytes (sender prefix + frame) on a pooled buffer.
type outFrame struct {
	dst *net.UDPAddr
	buf []byte
	p   *[]byte // pooled backing storage, released after the flush
}

var framePool = sync.Pool{New: func() any {
	s := make([]outFrame, 0, 64)
	return &s
}}

// appendFrames encodes one protocol message into datagram frames, reusing
// pooled encode buffers. Round envelopes (wire.Batch) that exceed the
// datagram bound are split at the MTU boundary: the piggybacked membership
// payloads ride the first datagram and the length-prefixed gossip sections
// fill greedily.
func (e *endpoint) appendFrames(frames []outFrame, to addr.Address, payload any) ([]outFrame, error) {
	dst, err := e.cache.resolve(to)
	if err != nil {
		return frames, err
	}
	if b, ok := payload.(wire.Batch); ok {
		// The sender-address prefix shares the datagram with the frame.
		chunks, err := wire.SplitBatch(b, e.tr.cfg.MaxDatagram-e.prefixLen)
		if err != nil {
			return frames, fmt.Errorf("udp: batch for %s: %w", to, err)
		}
		for _, chunk := range chunks {
			p := wire.GetBuffer()
			buf := addr.AppendAddress(*p, e.addr)
			buf, err := wire.AppendBatch(buf, chunk)
			if err != nil {
				wire.PutBuffer(p)
				return frames, fmt.Errorf("udp: encoding batch for %s: %w", to, err)
			}
			*p = buf[:0] // keep the grown capacity pooled
			if len(buf) > e.tr.cfg.MaxDatagram {
				// SplitBatch guarantees this never fires; the guard keeps a
				// codec-accounting bug from emitting a datagram the receiver's
				// MaxDatagram-sized read buffer would silently truncate.
				wire.PutBuffer(p)
				return frames, fmt.Errorf("udp: batch chunk for %s is %d bytes, above the %d-byte datagram bound",
					to, len(buf), e.tr.cfg.MaxDatagram)
			}
			frames = append(frames, outFrame{dst: dst, buf: buf, p: p})
		}
		return frames, nil
	}
	p := wire.GetBuffer()
	buf := addr.AppendAddress(*p, e.addr)
	buf, err = wire.AppendMessage(buf, payload)
	if err != nil {
		wire.PutBuffer(p)
		return frames, fmt.Errorf("udp: encoding for %s: %w", to, err)
	}
	*p = buf[:0]
	if len(buf) > e.tr.cfg.MaxDatagram {
		wire.PutBuffer(p)
		return frames, fmt.Errorf("udp: message for %s is %d bytes, above the %d-byte datagram bound",
			to, len(buf), e.tr.cfg.MaxDatagram)
	}
	return append(frames, outFrame{dst: dst, buf: buf, p: p}), nil
}

// releaseFrames returns the frames' pooled encode buffers.
func releaseFrames(frames []outFrame) {
	for i := range frames {
		wire.PutBuffer(frames[i].p)
		frames[i] = outFrame{}
	}
}

// Send encodes one protocol message and ships it as a datagram (or several,
// when a round envelope splits at the MTU boundary) on the portable
// one-syscall-per-datagram path. Kernel batching engages through SendMany —
// a single message gains nothing from a vector of one.
func (e *endpoint) Send(to addr.Address, payload any) error {
	select {
	case <-e.done:
		return transport.ErrClosed
	default:
	}
	fp := framePool.Get().(*[]outFrame)
	frames, err := e.appendFrames((*fp)[:0], to, payload)
	if err == nil {
		for i := range frames {
			if err = e.write(to, frames[i].dst, frames[i].buf); err != nil {
				break
			}
		}
	}
	releaseFrames(frames)
	*fp = frames[:0]
	framePool.Put(fp)
	return err
}

// SendMany implements transport.BatchSender: the whole queue is encoded,
// then flushed with as few kernel crossings as the platform allows — one
// sendmmsg per 64 datagrams on Linux, a plain write loop elsewhere.
// Per-message failures (unknown destination, oversized encoding) are
// skipped and the first one reported after every message was attempted, so
// one bad entry cannot stall the rest of a round's envelopes.
func (e *endpoint) SendMany(msgs []transport.Outgoing) error {
	select {
	case <-e.done:
		return transport.ErrClosed
	default:
	}
	if e.bio == nil || !e.bio.sendEnabled() {
		var firstErr error
		for _, m := range msgs {
			if err := e.Send(m.To, m.Payload); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	fp := framePool.Get().(*[]outFrame)
	frames := (*fp)[:0]
	var firstErr error
	for _, m := range msgs {
		var err error
		frames, err = e.appendFrames(frames, m.To, m.Payload)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	syscalls, datagrams, gsoSegs, err := e.bio.flush(frames)
	e.tr.sendSyscalls.Add(syscalls)
	e.tr.sentDatagrams.Add(datagrams)
	e.tr.gsoSegments.Add(gsoSegs)
	if err != nil && firstErr == nil {
		select {
		case <-e.done:
			firstErr = transport.ErrClosed
		default:
			firstErr = fmt.Errorf("udp: batched send from %s: %w", e.addr, err)
		}
	}
	releaseFrames(frames)
	*fp = frames[:0]
	framePool.Put(fp)
	return firstErr
}

func (e *endpoint) write(to addr.Address, dst *net.UDPAddr, buf []byte) error {
	if _, err := e.conn.WriteToUDP(buf, dst); err != nil {
		select {
		case <-e.done:
			return transport.ErrClosed
		default:
		}
		return fmt.Errorf("udp: sending to %s (%s): %w", to, dst, err)
	}
	e.tr.sendSyscalls.Add(1)
	e.tr.sentDatagrams.Add(1)
	return nil
}

// Recv exposes the decoded inbox. The channel closes when the endpoint does.
func (e *endpoint) Recv() <-chan transport.Envelope { return e.in }

// RecvMany implements transport.BatchReceiver: one blocking receive, then a
// non-blocking drain of whatever the read loop already queued — a consumer
// wakes once per kernel batch instead of once per datagram.
func (e *endpoint) RecvMany(out []transport.Envelope) (int, bool) {
	if len(out) == 0 {
		return 0, true
	}
	env, ok := <-e.in
	if !ok {
		return 0, false
	}
	out[0] = env
	n := 1
	for n < len(out) {
		select {
		case env, ok := <-e.in:
			if !ok {
				return n, false
			}
			out[n] = env
			n++
		default:
			return n, true
		}
	}
	return n, true
}

// Close unbinds the socket and stops the receive loop.
func (e *endpoint) Close() error {
	e.tr.detach(e)
	e.shutdown()
	return nil
}

func (e *endpoint) shutdown() {
	e.closeOnce.Do(func() {
		close(e.done)
		e.conn.Close() // unblocks the read loop, which closes e.in
	})
}

// readLoop turns datagrams into envelopes until the socket closes. The
// decoder is loop-local with an intern table, so the strings a gossip
// stream endlessly repeats (origins, attribute names, membership keys) are
// allocated once and shared across frames. With DeferDecode the loop only
// parses the sender prefix and ships the frame bytes as a transport.Raw —
// unframing moves to the consumer's ingress workers.
//
// With kernel-batched ingress the loop drains the socket through a vector
// of pooled buffers — one recvmmsg per wakeup — and GRO-coalesced
// super-datagrams are split back into their constituent frames before
// delivery; the per-datagram handling is byte-identical to the portable
// path below it.
func (e *endpoint) readLoop(maxDatagram int) {
	defer close(e.in)
	var dec *wire.Decoder
	if !e.tr.cfg.DeferDecode {
		dec = wire.NewDecoder() // unused (and unallocated) when deferring
	}
	if e.bio != nil && e.bio.recvEnabled() {
		for {
			n, err := e.bio.recv()
			if err != nil {
				return // socket closed (or fatally broken): endpoint is done
			}
			e.tr.recvSyscalls.Add(1)
			for i := 0; i < n; i++ {
				data, seg := e.bio.datagram(i)
				if seg > 0 && seg < len(data) {
					// A GRO super-datagram: the kernel coalesced a burst of
					// equal-size datagrams; every seg-sized chunk (the last
					// may be shorter) is one wire datagram.
					for off := 0; off < len(data); off += seg {
						end := min(off+seg, len(data))
						e.tr.recvDatagrams.Add(1)
						e.tr.groSegments.Add(1)
						e.deliver(data[off:end], dec)
					}
					continue
				}
				e.tr.recvDatagrams.Add(1)
				e.deliver(data, dec)
			}
		}
	}
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed (or fatally broken): endpoint is done
		}
		e.tr.recvSyscalls.Add(1)
		e.tr.recvDatagrams.Add(1)
		e.deliver(buf[:n], dec)
	}
}

// deliver parses one wire datagram and pushes its envelope, counting
// malformed datagrams and inbox overflow — the shared per-datagram body of
// both read loops.
func (e *endpoint) deliver(data []byte, dec *wire.Decoder) {
	r := binenc.NewReader(data)
	from := addr.ReadAddress(r)
	if r.Err() != nil {
		e.tr.malformed.Add(1)
		return
	}
	var payload any
	if e.tr.cfg.DeferDecode {
		payload = transport.NewRaw(data[len(data)-r.Len():])
	} else {
		var err error
		payload, err = dec.Decode(data[len(data)-r.Len():])
		if err != nil {
			e.tr.malformed.Add(1)
			return
		}
	}
	env := transport.Envelope{From: from, To: e.addr, Payload: payload}
	select {
	case e.in <- env:
	default:
		if raw, ok := payload.(transport.Raw); ok {
			raw.Release() // overflow never reaches a decoder
		}
		e.tr.dropped.Add(1) // inbox overflow, like a full socket buffer
	}
}
