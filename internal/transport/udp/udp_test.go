package udp

import (
	"errors"
	"net"
	"reflect"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/membership"
	"pmcast/internal/transport"
	"pmcast/internal/wire"
)

// pair attaches two loopback endpoints that can resolve each other.
func pair(t *testing.T) (transport.Endpoint, transport.Endpoint, *Transport) {
	t.Helper()
	res, err := NewStaticResolver(map[string]string{
		"0.0": "127.0.0.1:0",
		"0.1": "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Attach(addr.MustParse("0.0"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Attach(addr.MustParse("0.1"))
	if err != nil {
		t.Fatal(err)
	}
	return a, b, tr
}

func recvOne(t *testing.T, ep transport.Endpoint) transport.Envelope {
	t.Helper()
	select {
	case env, ok := <-ep.Recv():
		if !ok {
			t.Fatal("recv channel closed early")
		}
		return env
	case <-time.After(5 * time.Second):
		t.Fatal("no datagram arrived")
	}
	panic("unreachable")
}

func sampleEvent() event.Event {
	return event.NewBuilder().
		Int("b", -42).
		Float("c", 155.6).
		Str("e", "Bob").
		Bool("urgent", true).
		Build(event.ID{Origin: "128.178.73.3", Seq: 77})
}

func sampleSub() interest.Subscription {
	return interest.NewSubscription().
		Where("b", interest.EqInt(2)).
		Where("c", interest.Between(10, 220)).
		Where("e", interest.OneOf("Bob", "Tom"))
}

// TestEveryWireKindRoundTrips ships each protocol message kind through a
// real loopback socket and asserts the decoded payload is identical to what
// the in-memory fabric would have handed over.
func TestEveryWireKindRoundTrips(t *testing.T) {
	a, b, _ := pair(t)
	msgs := []any{
		core.Gossip{Event: sampleEvent(), Depth: 3, Rate: 0.4375, Round: 7},
		membership.Digest{
			From: addr.New(0, 0),
			Entries: []membership.DigestEntry{
				{Key: "0.0", Stamp: 5},
				{Key: "0.1", Stamp: 9},
			},
		},
		membership.Update{
			From: addr.New(0, 0),
			Records: []membership.Record{
				{Addr: addr.New(0, 1), Sub: sampleSub(), Stamp: 9, Alive: true},
				{Addr: addr.New(0, 0), Sub: interest.NewSubscription(), Stamp: 3, Alive: false},
			},
		},
		membership.JoinRequest{
			Joiner: membership.Record{Addr: addr.New(0, 0), Sub: sampleSub(), Stamp: 1, Alive: true},
			Hops:   4,
		},
		membership.Leave{Addr: addr.New(0, 0), Stamp: 12},
	}
	for _, msg := range msgs {
		if err := a.Send(b.Addr(), msg); err != nil {
			t.Fatalf("send %T: %v", msg, err)
		}
		env := recvOne(t, b)
		if !env.From.Equal(a.Addr()) || !env.To.Equal(b.Addr()) {
			t.Errorf("%T envelope addressed %s → %s", msg, env.From, env.To)
		}
		if g, ok := msg.(core.Gossip); ok {
			// Events hide their attributes behind an unexported map; compare
			// semantically instead of reflectively.
			got, ok := env.Payload.(core.Gossip)
			if !ok {
				t.Fatalf("payload = %T, want core.Gossip", env.Payload)
			}
			if got.Depth != g.Depth || got.Rate != g.Rate || got.Round != g.Round ||
				got.Event.ID() != g.Event.ID() || got.Event.Len() != g.Event.Len() {
				t.Errorf("gossip mutated in flight: %+v", got)
			}
			for _, name := range g.Event.Names() {
				if !got.Event.Attr(name).Equal(g.Event.Attr(name)) {
					t.Errorf("attr %s = %v", name, got.Event.Attr(name))
				}
			}
			continue
		}
		if !wireEqual(env.Payload, msg) {
			t.Errorf("%T mutated in flight:\n got %+v\nwant %+v", msg, env.Payload, msg)
		}
	}
}

// wireEqual compares protocol messages up to subscription semantics (the
// subscription's internal criterion order is canonicalized by the codec).
func wireEqual(got, want any) bool {
	switch w := want.(type) {
	case membership.Update:
		g, ok := got.(membership.Update)
		if !ok || !g.From.Equal(w.From) || len(g.Records) != len(w.Records) {
			return false
		}
		for i := range w.Records {
			if !recordEqual(g.Records[i], w.Records[i]) {
				return false
			}
		}
		return true
	case membership.JoinRequest:
		g, ok := got.(membership.JoinRequest)
		return ok && g.Hops == w.Hops && recordEqual(g.Joiner, w.Joiner)
	default:
		return reflect.DeepEqual(got, want)
	}
}

func recordEqual(got, want membership.Record) bool {
	return got.Addr.Equal(want.Addr) && got.Stamp == want.Stamp &&
		got.Alive == want.Alive && got.Sub.Equal(want.Sub)
}

func TestSendToUnknownAddress(t *testing.T) {
	a, _, _ := pair(t)
	err := a.Send(addr.MustParse("9.9"), membership.Leave{Addr: a.Addr(), Stamp: 1})
	if !errors.Is(err, transport.ErrUnknownAddr) {
		t.Errorf("err = %v", err)
	}
}

func TestSendRejectsUnframeableMessage(t *testing.T) {
	a, b, _ := pair(t)
	if err := a.Send(b.Addr(), "not a protocol message"); err == nil {
		t.Error("foreign payload accepted")
	}
}

func TestOversizeMessageRejected(t *testing.T) {
	res, _ := NewStaticResolver(map[string]string{"0.0": "127.0.0.1:0", "0.1": "127.0.0.1:0"})
	tr, err := New(Config{Resolver: res, MaxDatagram: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a, err := tr.Attach(addr.MustParse("0.0"))
	if err != nil {
		t.Fatal(err)
	}
	big := membership.Update{From: a.Addr()}
	for i := 0; i < 32; i++ {
		big.Records = append(big.Records, membership.Record{
			Addr: addr.New(0, i), Sub: sampleSub(), Stamp: uint64(i), Alive: true,
		})
	}
	if err := a.Send(addr.MustParse("0.1"), big); err == nil {
		t.Error("oversize datagram accepted")
	}
}

func TestMalformedDatagramsAreCountedAndSkipped(t *testing.T) {
	a, b, tr := pair(t)
	// Straight to the socket, bypassing the framing.
	dst, err := tr.cfg.Resolver.Resolve(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if _, err := raw.Write([]byte{0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	// The endpoint must survive and keep delivering well-formed traffic.
	if err := a.Send(b.Addr(), membership.Leave{Addr: a.Addr(), Stamp: 3}); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b)
	if l, ok := env.Payload.(membership.Leave); !ok || l.Stamp != 3 {
		t.Errorf("payload = %+v", env.Payload)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Malformed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if tr.Malformed() == 0 {
		t.Error("malformed datagram not counted")
	}
}

func TestDuplicateAttach(t *testing.T) {
	_, _, tr := pair(t)
	if _, err := tr.Attach(addr.MustParse("0.0")); !errors.Is(err, transport.ErrDuplicateAddr) {
		t.Errorf("err = %v", err)
	}
}

func TestEndpointClose(t *testing.T) {
	a, b, _ := pair(t)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(a.Addr(), membership.Leave{Addr: b.Addr(), Stamp: 1}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send from closed endpoint = %v", err)
	}
	select {
	case _, ok := <-b.Recv():
		if ok {
			t.Error("unexpected envelope after close")
		}
	case <-time.After(time.Second):
		t.Error("recv channel did not close")
	}
	b.Close() // idempotent
}

func TestTransportCloseShutsEverythingDown(t *testing.T) {
	a, b, tr := pair(t)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := a.Send(b.Addr(), membership.Leave{Addr: a.Addr(), Stamp: 1}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send after transport close = %v", err)
	}
	if _, err := tr.Attach(addr.MustParse("1.0")); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("attach after close = %v", err)
	}
}

func TestResolverValidation(t *testing.T) {
	if _, err := NewStaticResolver(map[string]string{"not an addr": "127.0.0.1:1"}); err == nil {
		t.Error("bad address key accepted")
	}
	if _, err := NewStaticResolver(map[string]string{"0.0": "::bad::"}); err == nil {
		t.Error("bad socket address accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Error("missing resolver accepted")
	}
}

// TestDeferDecodeDeliversRawFrames exercises the deferred-decode seam: a
// transport configured with DeferDecode hands the consumer transport.Raw
// payloads whose frames decode — with a consumer-owned decoder, the way an
// engine ingress worker holds one — to exactly the message that was sent.
func TestDeferDecodeDeliversRawFrames(t *testing.T) {
	res, err := NewStaticResolver(map[string]string{
		"0.0": "127.0.0.1:0",
		"0.1": "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res, DeferDecode: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	a, err := tr.Attach(addr.MustParse("0.0"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := tr.Attach(addr.MustParse("0.1"))
	if err != nil {
		t.Fatal(err)
	}

	want := core.Gossip{Event: sampleEvent(), Depth: 2, Rate: 0.25, Round: 3}
	if err := a.Send(b.Addr(), want); err != nil {
		t.Fatal(err)
	}
	env := recvOne(t, b)
	raw, ok := env.Payload.(transport.Raw)
	if !ok {
		t.Fatalf("payload = %T, want transport.Raw", env.Payload)
	}
	if !env.From.Equal(a.Addr()) {
		t.Errorf("sender prefix parsed as %s, want %s", env.From, a.Addr())
	}
	dec := wire.NewDecoder()
	payload, err := dec.Decode(raw.Frame)
	raw.Release()
	if err != nil {
		t.Fatalf("decoding deferred frame: %v", err)
	}
	got, ok := payload.(core.Gossip)
	if !ok {
		t.Fatalf("decoded payload = %T, want core.Gossip", payload)
	}
	if got.Depth != want.Depth || got.Rate != want.Rate || got.Round != want.Round ||
		got.Event.ID() != want.Event.ID() {
		t.Errorf("gossip mutated through the raw path: %+v", got)
	}
	if tr.Malformed() != 0 {
		t.Errorf("%d frames counted malformed", tr.Malformed())
	}
}
