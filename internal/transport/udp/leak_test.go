package udp

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/membership"
)

// waitGoroutines polls until the live goroutine count drops back to at most
// want, tolerating the runtime's own background workers settling.
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // flush finalizer goroutines so the count settles
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d live, want ≤ %d\n%s",
				runtime.NumGoroutine(), want, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTransportCloseLeavesNoGoroutines attaches a fleet of endpoints (one
// read-loop goroutine each), pushes traffic through them, and demands the
// transport-level Close tear every goroutine down.
func TestTransportCloseLeavesNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	peers := make(map[string]string)
	for i := 0; i < 8; i++ {
		peers[fmt.Sprintf("0.%d", i)] = "127.0.0.1:0"
	}
	res, err := NewStaticResolver(peers)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]*endpoint, 0, 8)
	for i := 0; i < 8; i++ {
		ep, err := tr.Attach(addr.New(0, i))
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, ep.(*endpoint))
	}
	for _, ep := range eps {
		if err := ep.Send(addr.New(0, 0), membership.Heartbeat{From: ep.Addr()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
	// Every inbox must be closed, not merely drained.
	for _, ep := range eps {
		for range ep.Recv() {
		}
	}
}

// TestEndpointCloseLeavesNoGoroutine covers the per-endpoint Close path: a
// single detach must stop its read loop without touching its siblings.
func TestEndpointCloseLeavesNoGoroutine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	a, b, tr := pair(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline+1) // b's read loop is still legitimately alive
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, baseline)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
