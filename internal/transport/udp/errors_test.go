// Error-path coverage for the UDP backend: resolver misses at attach time,
// double attaches, sends after teardown, and framing rejection of datagrams
// that exceed the configured bound.
package udp

import (
	"errors"
	"net"
	"testing"
	"time"

	"pmcast/internal/addr"
	"pmcast/internal/membership"
	"pmcast/internal/transport"
)

func TestAttachUnknownResolverAddress(t *testing.T) {
	res, err := NewStaticResolver(map[string]string{"0.0": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Attach(addr.New(9, 9)); !errors.Is(err, transport.ErrUnknownAddr) {
		t.Errorf("attach with no socket mapping: err = %v, want ErrUnknownAddr", err)
	}
}

func TestDoubleAttachSameTreeAddress(t *testing.T) {
	res, err := NewStaticResolver(map[string]string{"0.0": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ep, err := tr.Attach(addr.New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Attach(addr.New(0, 0)); !errors.Is(err, transport.ErrDuplicateAddr) {
		t.Errorf("second attach: err = %v, want ErrDuplicateAddr", err)
	}
	// The losing attach must not have clobbered the live endpoint's
	// registration: the survivor still resolves to a live socket.
	if err := ep.Send(addr.New(0, 0), membership.Heartbeat{From: addr.New(0, 0)}); err != nil {
		t.Errorf("survivor endpoint broken after duplicate attach: %v", err)
	}
	// After closing, the address becomes attachable again.
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Attach(addr.New(0, 0)); err != nil {
		t.Errorf("re-attach after close: %v", err)
	}
}

func TestSendAfterEndpointClose(t *testing.T) {
	res, err := NewStaticResolver(map[string]string{
		"0.0": "127.0.0.1:0",
		"0.1": "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a, err := tr.Attach(addr.New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Attach(addr.New(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(addr.New(0, 1), membership.Heartbeat{From: addr.New(0, 0)}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send after endpoint close: err = %v, want ErrClosed", err)
	}
	// The recv channel drains and closes.
	select {
	case _, ok := <-a.Recv():
		if ok {
			t.Error("recv delivered after close")
		}
	case <-time.After(5 * time.Second):
		t.Error("recv channel not closed after endpoint close")
	}
}

func TestSendAfterTransportClose(t *testing.T) {
	res, err := NewStaticResolver(map[string]string{"0.0": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := tr.Attach(addr.New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Send(addr.New(0, 0), membership.Heartbeat{From: addr.New(0, 0)}); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("send after transport close: err = %v, want ErrClosed", err)
	}
	if _, err := tr.Attach(addr.New(0, 0)); !errors.Is(err, transport.ErrClosed) {
		t.Errorf("attach after transport close: err = %v, want ErrClosed", err)
	}
}

// TestOversizedDatagramFramingRejected feeds the endpoint a raw datagram
// larger than its configured MaxDatagram: the read truncates it, the frame
// fails to parse, and the endpoint counts it malformed instead of
// delivering garbage.
func TestOversizedDatagramFramingRejected(t *testing.T) {
	const maxDatagram = 512
	res, err := NewStaticResolver(map[string]string{"0.0": "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(Config{Resolver: res, MaxDatagram: maxDatagram})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	ep, err := tr.Attach(addr.New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := res.Resolve(addr.New(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	// A raw socket bypasses Send's own size guard.
	conn, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	huge := make([]byte, maxDatagram*2) // zero bytes: invalid framing either way
	if _, err := conn.Write(huge); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Malformed() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := tr.Malformed(); got == 0 {
		t.Error("oversized datagram was not counted as malformed")
	}
	select {
	case env := <-ep.Recv():
		t.Errorf("oversized datagram delivered: %+v", env)
	default:
	}
}
