//go:build !linux || !(amd64 || arm64)

package udp

import (
	"errors"
	"net"
)

// The kernel-batched datapath (sendmmsg/recvmmsg with optional UDP
// GSO/GRO, see batch_linux.go) exists only on Linux amd64/arm64. Here
// newBatchIO reports "unavailable" and the endpoint keeps the portable
// one-syscall-per-datagram path; SendMany and RecvMany still work — the
// former loops Send, the latter drains the inbox channel — so callers
// never branch on platform, only the syscall amortization differs.
type batchIO struct{}

var errUnsupported = errors.New("udp: kernel-batched I/O unavailable on this platform")

func newBatchIO(conn *net.UDPConn, cfg Config, maxDatagram int) *batchIO { return nil }

func (b *batchIO) sendEnabled() bool { return false }
func (b *batchIO) recvEnabled() bool { return false }

func (b *batchIO) flush(frames []outFrame) (int64, int64, int64, error) {
	return 0, 0, 0, errUnsupported
}

func (b *batchIO) recv() (int, error) { return 0, errUnsupported }

func (b *batchIO) datagram(i int) ([]byte, int) { return nil, 0 }

// socketBuffers has no portable readback; Stats reports zero sizes.
func socketBuffers(conn *net.UDPConn) (rcv, snd int) { return 0, 0 }
