//go:build linux && (amd64 || arm64)

// Kernel-batched UDP I/O: sendmmsg/recvmmsg vectors with optional UDP
// GSO/GRO, built on raw syscalls against hand-laid-out mmsghdr structures
// (the module deliberately has no dependencies, so golang.org/x/net and
// golang.org/x/sys are out of reach). The layouts below are the stable
// linux/amd64+arm64 ABI: 8-byte pointers, 8-byte-aligned cmsg headers.
//
// Concurrency contract: flush may be called from many egress workers at
// once (each takes a pooled sendState; the syscall itself serializes on the
// runtime's fd write lock, exactly like concurrent WriteToUDP). recv and
// the datagram accessors belong to the endpoint's single read loop.

package udp

import (
	"errors"
	"net"
	"sync"
	"syscall"
	"unsafe"
)

const (
	msgDontwait = 0x40 // MSG_DONTWAIT: RawConn handles readiness, not the kernel
	solUDP      = 17   // SOL_UDP == IPPROTO_UDP
	udpSegment  = 103  // UDP_SEGMENT: GSO segment size (setsockopt + cmsg)
	udpGRO      = 104  // UDP_GRO: enable coalescing (setsockopt) / segment size (cmsg)

	// sendVector is the mmsghdr vector width per sendmmsg: UIO_MAXIOV is
	// 1024, but past ~64 the syscall amortization is already >98% and the
	// scratch arenas stay cache-friendly.
	sendVector = 64
	// gsoMaxSegs caps segments per GSO super-datagram (kernel cap
	// UDP_MAX_SEGMENTS is 64); gsoMaxBytes keeps the super-datagram under
	// the 64 KiB UDP payload ceiling the kernel builds it in.
	gsoMaxSegs  = 64
	gsoMaxBytes = 65000

	// gsoCmsgSpace is CMSG_SPACE(sizeof(uint16)) on 64-bit: a 16-byte
	// cmsghdr plus the segment size padded to 8 bytes. gsoCmsgLen is the
	// unpadded CMSG_LEN(2) recorded in the header.
	gsoCmsgSpace = 24
	gsoCmsgLen   = 18
	// groCtrlSpace sizes the per-message recv control buffer: one UDP_GRO
	// int cmsg plus slack for any future ancillary data.
	groCtrlSpace = 64
)

type iovec struct {
	base *byte
	len  uint64
}

type msghdr struct {
	name       *byte
	namelen    uint32
	_          [4]byte
	iov        *iovec
	iovlen     uint64
	control    *byte
	controllen uint64
	flags      int32
	_          [4]byte
}

type mmsghdr struct {
	hdr msghdr
	len uint32 // bytes received/sent for this message, filled by the kernel
	_   [4]byte
}

type sockaddrInet4 struct {
	family uint16
	port   [2]byte // network byte order
	addr   [4]byte
	zero   [8]byte
}

type sockaddrInet6 struct {
	family   uint16
	port     [2]byte
	flowinfo uint32
	addr     [16]byte
	scope    uint32
}

const sockaddrInet6Size = 28 // also the size of the shared name arena slots

var (
	errSendStall   = errors.New("udp: sendmmsg accepted no messages")
	errUnsupported = errors.New("udp: kernel-batched I/O unavailable")
)

// wireMsg is one mmsghdr-to-be: a destination and one or more datagram
// payloads. Plain messages carry a single buffer in buf; a GSO message
// carries a run of equal-size same-destination buffers in bufs that the
// kernel splits back into len(bufs) datagrams.
type wireMsg struct {
	dst  *net.UDPAddr
	buf  []byte   // single datagram; nil when bufs is set
	bufs [][]byte // GSO run; nil for plain messages
	seg  int      // >0: GSO segment size (== len(bufs[i]) for all but the last)
}

// datagrams is how many wire datagrams the message puts on the network.
func (m *wireMsg) datagrams() int64 {
	if m.bufs != nil {
		return int64(len(m.bufs))
	}
	return 1
}

// iovCount is how many iovec slots the message occupies.
func (m *wireMsg) iovCount() int {
	if m.bufs != nil {
		return len(m.bufs)
	}
	return 1
}

// sendState is the scratch a single flush builds its vectors in; pooled
// because egress workers flush concurrently.
type sendState struct {
	msgs  []wireMsg
	iovs  []iovec
	hdrs  [sendVector]mmsghdr
	names [sendVector][sockaddrInet6Size]byte
	ctrls [sendVector][gsoCmsgSpace]byte
}

// batchIO is the kernel-batched datapath of one endpoint socket.
type batchIO struct {
	rc     syscall.RawConn
	sendOn bool
	recvOn bool
	gso    bool
	gro    bool
	sock6  bool // socket family is AF_INET6: names must be v6(-mapped)

	sendPool sync.Pool // *sendState

	// Ingress vector, owned by the read loop: recv fills rhdrs/rlens/rsegs,
	// datagram(i) reads them until the next recv.
	rbufs  [][]byte
	riovs  []iovec
	rhdrs  []mmsghdr
	rctrls [][]byte
	rlens  []int
	rsegs  []int
}

// newBatchIO probes the socket and returns the batched datapath, or nil
// when the configuration opts out entirely or the socket exposes no raw
// access (the caller then keeps the portable path).
func newBatchIO(conn *net.UDPConn, cfg Config, maxDatagram int) *batchIO {
	if cfg.NoBatchSend && cfg.NoBatchRecv {
		return nil
	}
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil
	}
	b := &batchIO{
		rc:     rc,
		sendOn: !cfg.NoBatchSend,
		recvOn: !cfg.NoBatchRecv,
	}
	if la, ok := conn.LocalAddr().(*net.UDPAddr); ok {
		b.sock6 = la.IP.To4() == nil
	}
	b.sendPool.New = func() any { return new(sendState) }
	if b.sendOn && cfg.GSO {
		b.gso = probeGSO(rc)
	}
	if b.recvOn {
		if cfg.GRO {
			b.gro = enableGRO(rc)
		}
		n := cfg.RecvBatch
		b.rbufs = make([][]byte, n)
		b.riovs = make([]iovec, n)
		b.rhdrs = make([]mmsghdr, n)
		b.rlens = make([]int, n)
		b.rsegs = make([]int, n)
		if b.gro {
			b.rctrls = make([][]byte, n)
		}
		for i := 0; i < n; i++ {
			b.rbufs[i] = make([]byte, maxDatagram)
			b.riovs[i] = iovec{base: &b.rbufs[i][0], len: uint64(maxDatagram)}
			h := &b.rhdrs[i].hdr
			h.iov = &b.riovs[i]
			h.iovlen = 1
			if b.gro {
				b.rctrls[i] = make([]byte, groCtrlSpace)
				h.control = &b.rctrls[i][0]
				h.controllen = groCtrlSpace
			}
		}
	}
	return b
}

func (b *batchIO) sendEnabled() bool { return b != nil && b.sendOn }
func (b *batchIO) recvEnabled() bool { return b != nil && b.recvOn }

// probeGSO checks that the kernel understands UDP_SEGMENT (4.18+) by
// setting the socket-wide segment size to 0 (off) — harmless when it
// works, ENOPROTOOPT/EINVAL when it doesn't.
func probeGSO(rc syscall.RawConn) bool {
	ok := false
	if err := rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpSegment, 0) == nil
	}); err != nil {
		return false
	}
	return ok
}

// enableGRO turns on receive coalescing (kernel 5.0+).
func enableGRO(rc syscall.RawConn) bool {
	ok := false
	if err := rc.Control(func(fd uintptr) {
		ok = syscall.SetsockoptInt(int(fd), solUDP, udpGRO, 1) == nil
	}); err != nil {
		return false
	}
	return ok
}

// socketBuffers reads back the achieved SO_RCVBUF/SO_SNDBUF sizes.
func socketBuffers(conn *net.UDPConn) (rcv, snd int) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return 0, 0
	}
	_ = rc.Control(func(fd uintptr) {
		rcv, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF)
		snd, _ = syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF)
	})
	return rcv, snd
}

// flush ships every frame with as few sendmmsg calls as possible and
// reports (syscalls, datagrams actually accepted, GSO-segment datagrams).
// On error the counts cover what the kernel took before failing.
func (b *batchIO) flush(frames []outFrame) (syscalls, datagrams, gsoSegs int64, err error) {
	if len(frames) == 0 {
		return 0, 0, 0, nil
	}
	st := b.sendPool.Get().(*sendState)
	st.msgs = b.coalesce(frames, st.msgs[:0])
	var sent int
	syscalls, sent, err = sendAll(st.msgs, sendVector, func(chunk []wireMsg) (int, error) {
		return b.sendChunk(st, chunk)
	})
	for i := 0; i < sent; i++ {
		n := st.msgs[i].datagrams()
		datagrams += n
		if st.msgs[i].seg > 0 {
			gsoSegs += n
		}
	}
	b.sendPool.Put(st)
	return syscalls, datagrams, gsoSegs, err
}

// coalesce turns encoded frames into mmsghdr-shaped messages. Without GSO
// it is one message per frame. With GSO, a run of consecutive frames to
// the same destination whose sizes fit the kernel's segmentation contract
// — every segment equal to the first, except a final shorter one — folds
// into a single message the kernel splits back apart. Runs only form on
// pointer-identical destinations (what the resolver cache yields for
// repeated sends to one peer); distinct-but-equal addresses merely miss
// the optimization.
func (b *batchIO) coalesce(frames []outFrame, msgs []wireMsg) []wireMsg {
	if !b.gso {
		for i := range frames {
			msgs = append(msgs, wireMsg{dst: frames[i].dst, buf: frames[i].buf})
		}
		return msgs
	}
	for i := 0; i < len(frames); {
		f := &frames[i]
		seg := len(f.buf)
		total := seg
		j := i + 1
		for j < len(frames) && j-i < gsoMaxSegs {
			g := &frames[j]
			if g.dst != f.dst || len(g.buf) > seg || total+len(g.buf) > gsoMaxBytes || seg == 0 {
				break
			}
			shorter := len(g.buf) < seg
			total += len(g.buf)
			j++
			if shorter {
				break // a short segment must be the last in the run
			}
		}
		if j-i == 1 {
			msgs = append(msgs, wireMsg{dst: f.dst, buf: f.buf})
		} else {
			m := wireMsg{dst: f.dst, bufs: make([][]byte, 0, j-i), seg: seg}
			for k := i; k < j; k++ {
				m.bufs = append(m.bufs, frames[k].buf)
			}
			msgs = append(msgs, m)
		}
		i = j
	}
	return msgs
}

// sendAll pushes msgs through send in vectors of at most batch messages,
// resubmitting the tail whenever the kernel accepts only a prefix (sendmmsg
// may return k < n: the first k messages are on the wire, the rest were
// never attempted). Factored over an injectable send so the partial-
// completion retry is testable without a cooperating kernel. A call that
// accepts nothing without reporting an error is treated as a hard failure
// rather than a spin.
func sendAll(msgs []wireMsg, batch int, send func([]wireMsg) (int, error)) (syscalls int64, sent int, err error) {
	for sent < len(msgs) {
		chunk := msgs[sent:]
		if len(chunk) > batch {
			chunk = chunk[:batch]
		}
		n, err := send(chunk)
		syscalls++
		if n > 0 {
			sent += n
		}
		if err != nil {
			return syscalls, sent, err
		}
		if n <= 0 {
			return syscalls, sent, errSendStall
		}
	}
	return syscalls, sent, nil
}

// sendChunk builds the mmsghdr vector for one chunk (≤ sendVector messages)
// in st's arenas and issues a single sendmmsg, waiting for writability on
// EAGAIN like a blocking WriteToUDP would. Returns how many messages the
// kernel accepted.
func (b *batchIO) sendChunk(st *sendState, msgs []wireMsg) (int, error) {
	// Fill the iovec arena first: it may grow (reallocate), so header
	// pointers into it are only taken once it is complete.
	iovs := st.iovs[:0]
	for i := range msgs {
		if msgs[i].bufs == nil {
			buf := msgs[i].buf
			iovs = append(iovs, iovec{base: &buf[0], len: uint64(len(buf))})
			continue
		}
		for _, buf := range msgs[i].bufs {
			iovs = append(iovs, iovec{base: &buf[0], len: uint64(len(buf))})
		}
	}
	st.iovs = iovs
	k := 0
	for i := range msgs {
		m := &msgs[i]
		h := &st.hdrs[i]
		*h = mmsghdr{}
		h.hdr.name = &st.names[i][0]
		h.hdr.namelen = putSockaddr(&st.names[i], m.dst, b.sock6)
		h.hdr.iov = &iovs[k]
		h.hdr.iovlen = uint64(m.iovCount())
		k += m.iovCount()
		if m.seg > 0 {
			putGSOCmsg(&st.ctrls[i], m.seg)
			h.hdr.control = &st.ctrls[i][0]
			h.hdr.controllen = gsoCmsgSpace
		}
	}
	var n int
	var errno syscall.Errno
	err := b.rc.Write(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&st.hdrs[0])), uintptr(len(msgs)),
			msgDontwait, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // wait for writability, then retry
		}
		n, errno = int(r1), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	return n, nil
}

// recv fills the ingress vector with one recvmmsg, blocking (via the
// runtime poller) until at least one datagram is ready. After a successful
// return, datagram(i) for i < n yields each payload and its GRO segment
// size (0 when the kernel did not coalesce).
func (b *batchIO) recv() (int, error) {
	var n int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(sysRecvmmsg, fd,
			uintptr(unsafe.Pointer(&b.rhdrs[0])), uintptr(len(b.rhdrs)),
			msgDontwait, 0, 0)
		if e == syscall.EAGAIN || e == syscall.EINTR {
			return false // wait for readability, then retry
		}
		n, errno = int(r1), e
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < n; i++ {
		h := &b.rhdrs[i]
		b.rlens[i] = int(h.len)
		b.rsegs[i] = 0
		if b.gro {
			b.rsegs[i] = groSegment(h, b.rctrls[i])
			// The kernel shrank controllen to what it wrote; restore the
			// full buffer for the next syscall.
			h.hdr.controllen = groCtrlSpace
		}
		h.hdr.flags = 0
	}
	return n, nil
}

// datagram returns the i-th received payload and its GRO segment size.
// Valid until the next recv.
func (b *batchIO) datagram(i int) ([]byte, int) {
	return b.rbufs[i][:b.rlens[i]], b.rsegs[i]
}

// groSegment extracts the UDP_GRO segment size from a message's control
// data, walking 8-byte-aligned cmsg headers.
func groSegment(h *mmsghdr, ctrl []byte) int {
	cl := int(h.hdr.controllen)
	if cl > len(ctrl) {
		cl = len(ctrl)
	}
	for off := 0; off+16 <= cl; {
		l := int(*(*uint64)(unsafe.Pointer(&ctrl[off])))
		level := *(*int32)(unsafe.Pointer(&ctrl[off+8]))
		typ := *(*int32)(unsafe.Pointer(&ctrl[off+12]))
		if l < 16 || off+l > cl {
			return 0
		}
		if level == solUDP && typ == udpGRO && l >= 16+4 {
			return int(*(*int32)(unsafe.Pointer(&ctrl[off+16])))
		}
		off += (l + 7) &^ 7
	}
	return 0
}

// putSockaddr writes dst as a kernel sockaddr into buf and returns its
// length. The family must match the socket's: a dual-stack (AF_INET6)
// socket takes IPv4 destinations as v4-mapped v6 addresses.
func putSockaddr(buf *[sockaddrInet6Size]byte, dst *net.UDPAddr, sock6 bool) uint32 {
	if !sock6 {
		if ip4 := dst.IP.To4(); ip4 != nil {
			sa := (*sockaddrInet4)(unsafe.Pointer(buf))
			*sa = sockaddrInet4{family: syscall.AF_INET}
			sa.port = [2]byte{byte(dst.Port >> 8), byte(dst.Port)}
			copy(sa.addr[:], ip4)
			return uint32(unsafe.Sizeof(sockaddrInet4{}))
		}
	}
	sa := (*sockaddrInet6)(unsafe.Pointer(buf))
	*sa = sockaddrInet6{family: syscall.AF_INET6}
	sa.port = [2]byte{byte(dst.Port >> 8), byte(dst.Port)}
	copy(sa.addr[:], dst.IP.To16())
	return sockaddrInet6Size
}

// putGSOCmsg writes the UDP_SEGMENT control message carrying the segment
// size: cmsghdr{len=CMSG_LEN(2), level=SOL_UDP, type=UDP_SEGMENT} + uint16.
func putGSOCmsg(buf *[gsoCmsgSpace]byte, seg int) {
	*buf = [gsoCmsgSpace]byte{}
	*(*uint64)(unsafe.Pointer(&buf[0])) = gsoCmsgLen
	*(*int32)(unsafe.Pointer(&buf[8])) = solUDP
	*(*int32)(unsafe.Pointer(&buf[12])) = udpSegment
	*(*uint16)(unsafe.Pointer(&buf[16])) = uint16(seg)
}
