//go:build linux && amd64

package udp

// linux/amd64 syscall numbers (arch/x86/entry/syscalls/syscall_64.tbl).
const (
	sysRecvmmsg = 299
	sysSendmmsg = 307
)
