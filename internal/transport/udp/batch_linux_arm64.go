//go:build linux && arm64

package udp

// linux/arm64 syscall numbers (include/uapi/asm-generic/unistd.h).
const (
	sysRecvmmsg = 243
	sysSendmmsg = 269
)
