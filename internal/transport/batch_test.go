package transport

import (
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/core"
	"pmcast/internal/event"
	"pmcast/internal/membership"
	"pmcast/internal/wire"
)

func testBatch(events int) wire.Batch {
	b := wire.Batch{
		Digest:    &membership.Digest{From: addr.New(1), Hash: 7},
		Heartbeat: &membership.Heartbeat{From: addr.New(1)},
	}
	for i := 0; i < events; i++ {
		b.Gossips = append(b.Gossips, core.Gossip{
			Event: event.NewBuilder().Int("b", int64(i)).
				Build(event.ID{Origin: "1", Seq: uint64(i + 1)}),
			Depth: 1,
		})
	}
	return b
}

// TestBatchUnbatchesInTransit pins the simulated-fabric model: a round
// envelope arrives as its constituent messages, as separate envelopes, in
// the batch's canonical order.
func TestBatchUnbatchesInTransit(t *testing.T) {
	net := MustNetwork(Config{})
	defer net.Close()
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))
	if err := a.Send(b.Addr(), testBatch(3)); err != nil {
		t.Fatal(err)
	}
	want := []string{"core.Gossip", "core.Gossip", "core.Gossip",
		"membership.Digest", "membership.Heartbeat"}
	for i, kind := range want {
		select {
		case env := <-b.Recv():
			if got := typeName(env.Payload); got != kind {
				t.Fatalf("part %d = %s, want %s", i, got, kind)
			}
			if !env.From.Equal(a.Addr()) {
				t.Fatalf("part %d from %s", i, env.From)
			}
		default:
			t.Fatalf("only %d of %d parts delivered", i, len(want))
		}
	}
	select {
	case env := <-b.Recv():
		t.Fatalf("unexpected extra envelope %T", env.Payload)
	default:
	}
}

// TestBatchDropAccountingParity demands identical drop counts for the same
// traffic batched or not, on every fault path — partition, loss, and
// unknown destination — so the soak A/B reports stay comparable.
func TestBatchDropAccountingParity(t *testing.T) {
	net := MustNetwork(Config{})
	defer net.Close()
	a, _ := net.Attach(addr.New(1))
	b, _ := net.Attach(addr.New(2))

	net.Block(a.Addr(), b.Addr())
	if err := a.Send(b.Addr(), testBatch(3)); err != nil {
		t.Fatal(err)
	}
	if got := net.Dropped(); got != 5 {
		t.Errorf("partition dropped %d, want 5 (one per sub-message)", got)
	}

	net.Heal()
	net.SetLoss(1)
	if err := a.Send(b.Addr(), testBatch(2)); err != nil {
		t.Fatal(err)
	}
	if got := net.Dropped(); got != 5+4 {
		t.Errorf("after full loss dropped %d, want 9", got)
	}

	net.SetLoss(0)
	if err := a.Send(addr.New(9), testBatch(1)); err == nil {
		t.Error("unknown destination accepted")
	}
	if got := net.Dropped(); got != 9+3 {
		t.Errorf("after unknown dest dropped %d, want 12", got)
	}
}

func typeName(v any) string {
	switch v.(type) {
	case core.Gossip:
		return "core.Gossip"
	case membership.Update:
		return "membership.Update"
	case membership.Digest:
		return "membership.Digest"
	case membership.Heartbeat:
		return "membership.Heartbeat"
	default:
		return "other"
	}
}
