// Package addr implements the hierarchical addressing scheme underlying
// pmcast (Eugster & Guerraoui, DSN 2002, Section 2.2).
//
// An address is a sequence of digit values
//
//	x(1).x(2).….x(d),  0 ≤ x(i) ≤ a_i − 1,
//
// mirroring IP or (reversed) DNS names. A prefix of depth i is the partial
// address x(1).….x(i−1); all processes sharing a prefix form the subgroup the
// prefix denotes. The distance between two processes is d−i+1 where i is the
// depth of their longest common prefix: topologically close processes share
// long prefixes.
package addr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Errors returned by address parsing and validation.
var (
	ErrEmpty       = errors.New("addr: empty address")
	ErrDigitRange  = errors.New("addr: digit out of range")
	ErrDepth       = errors.New("addr: wrong number of components")
	ErrBadSyntax   = errors.New("addr: malformed address string")
	ErrZeroArity   = errors.New("addr: arity must be positive")
	ErrInvalidSpec = errors.New("addr: invalid space specification")
)

// Address is a fully qualified process address: exactly d digit components.
// Addresses are immutable values; the zero value is the (invalid) empty
// address.
type Address struct {
	digits []int
	// key is the dotted rendering, precomputed at construction: addresses
	// serve as map keys on every hot path (routing, membership, trees) and
	// rebuilding the string each time dominated fleet-scale profiles.
	key string
}

// makeAddress builds an address around the given digit slice (not copied),
// precomputing its key.
func makeAddress(digits []int) Address {
	return Address{digits: digits, key: renderDigits(digits)}
}

func renderDigits(digits []int) string {
	if len(digits) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, v := range digits {
		if i > 0 {
			sb.WriteByte('.')
		}
		sb.WriteString(strconv.Itoa(v))
	}
	return sb.String()
}

// New builds an address from the given digit components. The slice is copied.
func New(digits ...int) Address {
	d := make([]int, len(digits))
	copy(d, digits)
	return makeAddress(d)
}

// Parse parses a dotted decimal address such as "128.178.73.3".
func Parse(s string) (Address, error) {
	if s == "" {
		return Address{}, ErrEmpty
	}
	parts := strings.Split(s, ".")
	digits := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || p == "" {
			return Address{}, fmt.Errorf("%w: component %d %q", ErrBadSyntax, i+1, p)
		}
		if v < 0 {
			return Address{}, fmt.Errorf("%w: component %d is negative", ErrDigitRange, i+1)
		}
		digits[i] = v
	}
	return makeAddress(digits), nil
}

// MustParse is Parse that panics on error; intended for constants in tests
// and examples.
func MustParse(s string) Address {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Depth returns the number of components d of the address.
func (a Address) Depth() int { return len(a.digits) }

// Digit returns component x(i) using the paper's 1-based indexing
// (1 ≤ i ≤ Depth). It panics when i is out of range, as would indexing a
// slice.
func (a Address) Digit(i int) int { return a.digits[i-1] }

// Digits returns a copy of all components.
func (a Address) Digits() []int {
	d := make([]int, len(a.digits))
	copy(d, a.digits)
	return d
}

// IsZero reports whether the address is the empty (invalid) address.
func (a Address) IsZero() bool { return len(a.digits) == 0 }

// Prefix returns the prefix of depth i, i.e. the partial address
// x(1).….x(i−1). Prefix(1) is the empty (root) prefix; Prefix(Depth()+1) is
// the whole address viewed as a prefix. The prefix key is sliced from the
// address's precomputed key, so walking an address's whole root path (as
// incremental tree maintenance does per membership change) renders nothing.
func (a Address) Prefix(i int) Prefix {
	if i < 1 || i > len(a.digits)+1 {
		panic(fmt.Sprintf("addr: prefix depth %d out of range for depth-%d address", i, len(a.digits)))
	}
	if i == 1 {
		return Prefix{}
	}
	d := make([]int, i-1)
	copy(d, a.digits[:i-1])
	key := ""
	if a.key != "" {
		comps, end := 0, len(a.key)
		for idx := 0; idx < len(a.key); idx++ {
			if a.key[idx] == '.' {
				comps++
				if comps == i-1 {
					end = idx
					break
				}
			}
		}
		key = a.key[:end]
	}
	return Prefix{digits: d, key: key}
}

// HasPrefix reports whether p is a prefix of a.
func (a Address) HasPrefix(p Prefix) bool {
	if len(p.digits) > len(a.digits) {
		return false
	}
	for i, v := range p.digits {
		if a.digits[i] != v {
			return false
		}
	}
	return true
}

// Compare orders addresses lexicographically by components; shorter addresses
// precede longer ones with equal leading components. It returns −1, 0 or +1.
// Delegate election uses this order ("the R processes with the smallest
// addresses", Section 2.2).
func (a Address) Compare(b Address) int {
	n := min(len(a.digits), len(b.digits))
	for i := 0; i < n; i++ {
		switch {
		case a.digits[i] < b.digits[i]:
			return -1
		case a.digits[i] > b.digits[i]:
			return 1
		}
	}
	switch {
	case len(a.digits) < len(b.digits):
		return -1
	case len(a.digits) > len(b.digits):
		return 1
	}
	return 0
}

// Equal reports whether the two addresses are identical.
func (a Address) Equal(b Address) bool { return a.Compare(b) == 0 }

// Less reports whether a orders before b.
func (a Address) Less(b Address) bool { return a.Compare(b) < 0 }

// CommonPrefixDepth returns the depth i of the deepest prefix shared by a and
// b; that is, the largest i such that a.Prefix(i) == b.Prefix(i). The result
// is at least 1 (the empty root prefix is always shared).
func (a Address) CommonPrefixDepth(b Address) int {
	n := min(len(a.digits), len(b.digits))
	i := 0
	for i < n && a.digits[i] == b.digits[i] {
		i++
	}
	return i + 1
}

// Distance returns the paper's distance metric between two processes of equal
// depth d: d − i + 1 where i−1 components are shared. Equal addresses have
// distance 0.
func (a Address) Distance(b Address) int {
	if a.Equal(b) {
		return 0
	}
	shared := a.CommonPrefixDepth(b) - 1
	return len(a.digits) - shared
}

// String renders the address in dotted form, e.g. "128.178.73.3".
func (a Address) String() string {
	if len(a.digits) == 0 {
		return "<zero>"
	}
	return a.Key()
}

// Key returns a canonical comparable map key for the address: the dotted
// rendering, precomputed at construction ("" for the zero address).
func (a Address) Key() string {
	if a.key == "" && len(a.digits) > 0 {
		return renderDigits(a.digits) // address built outside the package helpers
	}
	return a.key
}

// Prefix is a partial address x(1).….x(i−1) denoting a subgroup of depth i.
// The empty prefix denotes the root group.
type Prefix struct {
	digits []int
	// key caches the dotted rendering when the prefix was carved from a
	// keyed Address; identity lives in digits alone (see Equal).
	key string
}

// Root returns the empty prefix (depth 1, the whole group).
func Root() Prefix { return Prefix{} }

// NewPrefix builds a prefix from digit components. The slice is copied.
func NewPrefix(digits ...int) Prefix {
	d := make([]int, len(digits))
	copy(d, digits)
	return Prefix{digits: d}
}

// ParsePrefix parses a dotted prefix; the empty string is the root prefix.
func ParsePrefix(s string) (Prefix, error) {
	if s == "" {
		return Prefix{}, nil
	}
	a, err := Parse(s)
	if err != nil {
		return Prefix{}, err
	}
	return Prefix{digits: a.digits}, nil
}

// Depth returns the subgroup depth the prefix denotes: len+1, so the root
// prefix has depth 1.
func (p Prefix) Depth() int { return len(p.digits) + 1 }

// Len returns the number of fixed components.
func (p Prefix) Len() int { return len(p.digits) }

// Digit returns component x(i), 1-based, 1 ≤ i ≤ Len.
func (p Prefix) Digit(i int) int { return p.digits[i-1] }

// Child returns the prefix extended by one more digit.
func (p Prefix) Child(digit int) Prefix {
	d := make([]int, len(p.digits)+1)
	copy(d, p.digits)
	d[len(p.digits)] = digit
	return Prefix{digits: d}
}

// Parent returns the prefix with the last digit removed. The parent of the
// root prefix is the root prefix itself.
func (p Prefix) Parent() Prefix {
	if len(p.digits) == 0 {
		return p
	}
	d := make([]int, len(p.digits)-1)
	copy(d, p.digits[:len(p.digits)-1])
	return Prefix{digits: d}
}

// Address completes the prefix with the given remaining digits into a full
// address.
func (p Prefix) Address(rest ...int) Address {
	d := make([]int, 0, len(p.digits)+len(rest))
	d = append(d, p.digits...)
	d = append(d, rest...)
	return makeAddress(d)
}

// Contains reports whether address a lies inside the subgroup denoted by p.
func (p Prefix) Contains(a Address) bool { return a.HasPrefix(p) }

// Equal reports whether two prefixes are identical.
func (p Prefix) Equal(q Prefix) bool {
	if len(p.digits) != len(q.digits) {
		return false
	}
	for i, v := range p.digits {
		if q.digits[i] != v {
			return false
		}
	}
	return true
}

// String renders the prefix in dotted form; the root prefix renders as "∅".
func (p Prefix) String() string {
	if len(p.digits) == 0 {
		return "∅"
	}
	return p.Key()
}

// Key returns a canonical comparable map key for the prefix ("" for the
// root prefix).
func (p Prefix) Key() string {
	if len(p.digits) == 0 {
		return ""
	}
	if p.key != "" {
		return p.key
	}
	return renderDigits(p.digits)
}

// Space describes a bounded address space: d components with arities
// a_1,…,a_d (Eq. 1). The maximum number of addresses is the product of the
// arities.
type Space struct {
	arities []int
}

// NewSpace builds an address space with the given per-depth arities.
func NewSpace(arities ...int) (Space, error) {
	if len(arities) == 0 {
		return Space{}, fmt.Errorf("%w: no arities", ErrInvalidSpec)
	}
	as := make([]int, len(arities))
	for i, a := range arities {
		if a <= 0 {
			return Space{}, fmt.Errorf("%w: arity %d at depth %d", ErrZeroArity, a, i+1)
		}
		as[i] = a
	}
	return Space{arities: as}, nil
}

// Regular builds the regular space of the paper's analysis model (Eq. 6):
// depth d with constant arity a at every level; capacity n = a^d.
func Regular(a, d int) (Space, error) {
	if d <= 0 {
		return Space{}, fmt.Errorf("%w: depth %d", ErrInvalidSpec, d)
	}
	arities := make([]int, d)
	for i := range arities {
		arities[i] = a
	}
	return NewSpace(arities...)
}

// MustRegular is Regular that panics on error.
func MustRegular(a, d int) Space {
	s, err := Regular(a, d)
	if err != nil {
		panic(err)
	}
	return s
}

// Depth returns the number of address components d.
func (s Space) Depth() int { return len(s.arities) }

// Arity returns a_i for 1 ≤ i ≤ Depth.
func (s Space) Arity(i int) int { return s.arities[i-1] }

// Capacity returns the maximum number of distinct addresses, ∏ a_i.
func (s Space) Capacity() int {
	n := 1
	for _, a := range s.arities {
		n *= a
	}
	return n
}

// Validate checks that the address fits the space (depth and digit ranges).
func (s Space) Validate(a Address) error {
	if a.Depth() != s.Depth() {
		return fmt.Errorf("%w: got %d, want %d", ErrDepth, a.Depth(), s.Depth())
	}
	for i := 1; i <= s.Depth(); i++ {
		if d := a.Digit(i); d < 0 || d >= s.Arity(i) {
			return fmt.Errorf("%w: digit %d at depth %d (arity %d)", ErrDigitRange, d, i, s.Arity(i))
		}
	}
	return nil
}

// ValidatePrefix checks that the prefix fits the space.
func (s Space) ValidatePrefix(p Prefix) error {
	if p.Len() > s.Depth() {
		return fmt.Errorf("%w: prefix longer than space depth", ErrDepth)
	}
	for i := 1; i <= p.Len(); i++ {
		if d := p.Digit(i); d < 0 || d >= s.Arity(i) {
			return fmt.Errorf("%w: digit %d at depth %d (arity %d)", ErrDigitRange, d, i, s.Arity(i))
		}
	}
	return nil
}

// Index maps an address to its rank in lexicographic order within the space,
// in [0, Capacity). The mapping is the mixed-radix value of the digits.
func (s Space) Index(a Address) int {
	idx := 0
	for i := 1; i <= s.Depth(); i++ {
		idx = idx*s.Arity(i) + a.Digit(i)
	}
	return idx
}

// AddressAt is the inverse of Index: it returns the address whose
// lexicographic rank is idx.
func (s Space) AddressAt(idx int) Address {
	digits := make([]int, s.Depth())
	for i := s.Depth(); i >= 1; i-- {
		a := s.Arity(i)
		digits[i-1] = idx % a
		idx /= a
	}
	return makeAddress(digits)
}

// SubtreeSize returns the number of addresses covered by a prefix of the
// given length (number of fixed digits).
func (s Space) SubtreeSize(prefixLen int) int {
	n := 1
	for i := prefixLen + 1; i <= s.Depth(); i++ {
		n *= s.Arity(i)
	}
	return n
}
