package addr

import (
	"testing"
	"testing/quick"

	"pmcast/internal/binenc"
)

func TestAddressCodecRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		digits := make([]int, len(raw))
		for i, v := range raw {
			digits[i] = int(v)
		}
		in := New(digits...)
		data, err := in.MarshalBinary()
		if err != nil {
			return false
		}
		var out Address
		if err := out.UnmarshalBinary(data); err != nil {
			return false
		}
		return out.Equal(in)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddressCodecComposes(t *testing.T) {
	var buf []byte
	buf = AppendAddress(buf, New(1, 2, 3))
	buf = AppendAddress(buf, New(9))
	r := binenc.NewReader(buf)
	if got := ReadAddress(r); !got.Equal(New(1, 2, 3)) {
		t.Errorf("first = %v", got)
	}
	if got := ReadAddress(r); !got.Equal(New(9)) {
		t.Errorf("second = %v", got)
	}
	if r.Err() != nil || r.Len() != 0 {
		t.Errorf("reader state: %v, %d left", r.Err(), r.Len())
	}
}

func TestAddressCodecRejectsCorrupt(t *testing.T) {
	var a Address
	if err := a.UnmarshalBinary([]byte{0x05, 0x01}); err == nil {
		t.Error("truncated address accepted")
	}
}
