package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParse(t *testing.T) {
	tests := []struct {
		name    string
		in      string
		want    []int
		wantErr bool
	}{
		{name: "ipv4 style", in: "128.178.73.3", want: []int{128, 178, 73, 3}},
		{name: "single component", in: "7", want: []int{7}},
		{name: "zeros", in: "0.0.0", want: []int{0, 0, 0}},
		{name: "empty", in: "", wantErr: true},
		{name: "trailing dot", in: "1.2.", wantErr: true},
		{name: "leading dot", in: ".1.2", wantErr: true},
		{name: "alpha", in: "1.x.2", wantErr: true},
		{name: "negative", in: "1.-2.3", wantErr: true},
		{name: "double dot", in: "1..2", wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Parse(tt.in)
			if tt.wantErr {
				if err == nil {
					t.Fatalf("Parse(%q) = %v, want error", tt.in, got)
				}
				return
			}
			if err != nil {
				t.Fatalf("Parse(%q) error: %v", tt.in, err)
			}
			if got.Depth() != len(tt.want) {
				t.Fatalf("depth = %d, want %d", got.Depth(), len(tt.want))
			}
			for i, w := range tt.want {
				if got.Digit(i+1) != w {
					t.Errorf("digit %d = %d, want %d", i+1, got.Digit(i+1), w)
				}
			}
		})
	}
}

func TestStringRoundTrip(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		digits := make([]int, len(raw))
		for i, v := range raw {
			digits[i] = int(v)
		}
		a := New(digits...)
		b, err := Parse(a.String())
		return err == nil && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b string
		want int
	}{
		{"1.2.3", "1.2.3", 0},
		{"1.2.3", "1.2.4", -1},
		{"1.2.4", "1.2.3", 1},
		{"1.2", "1.2.0", -1},
		{"2.0.0", "1.9.9", 1},
		{"0.0.1", "0.1.0", -1},
	}
	for _, tt := range tests {
		a, b := MustParse(tt.a), MustParse(tt.b)
		if got := a.Compare(b); got != tt.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
		if got := b.Compare(a); got != -tt.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", tt.b, tt.a, got, -tt.want)
		}
	}
}

func TestCompareIsTotalOrder(t *testing.T) {
	gen := func(r *rand.Rand) Address {
		d := 1 + r.Intn(4)
		digits := make([]int, d)
		for i := range digits {
			digits[i] = r.Intn(4)
		}
		return New(digits...)
	}
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b, c := gen(r), gen(r), gen(r)
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			t.Fatalf("antisymmetry violated for %s,%s", a, b)
		}
		// Transitivity.
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			t.Fatalf("transitivity violated for %s,%s,%s", a, b, c)
		}
	}
}

func TestPrefixAndDistance(t *testing.T) {
	a := MustParse("128.178.73.3")
	b := MustParse("128.178.88.10")
	c := MustParse("128.178.73.17")
	e := MustParse("3.2.230.23")

	if got := a.CommonPrefixDepth(b); got != 3 {
		t.Errorf("CommonPrefixDepth(a,b) = %d, want 3", got)
	}
	if got := a.CommonPrefixDepth(c); got != 4 {
		t.Errorf("CommonPrefixDepth(a,c) = %d, want 4", got)
	}
	if got := a.CommonPrefixDepth(e); got != 1 {
		t.Errorf("CommonPrefixDepth(a,e) = %d, want 1", got)
	}

	// Distance d−i+1 with i−1 shared components.
	if got := a.Distance(b); got != 2 {
		t.Errorf("Distance(a,b) = %d, want 2", got)
	}
	if got := a.Distance(c); got != 1 {
		t.Errorf("Distance(a,c) = %d, want 1", got)
	}
	if got := a.Distance(e); got != 4 {
		t.Errorf("Distance(a,e) = %d, want 4", got)
	}
	if got := a.Distance(a); got != 0 {
		t.Errorf("Distance(a,a) = %d, want 0", got)
	}

	p := a.Prefix(4)
	if p.String() != "128.178.73" {
		t.Errorf("Prefix(4) = %s, want 128.178.73", p)
	}
	if !p.Contains(a) || !p.Contains(c) || p.Contains(b) {
		t.Errorf("prefix containment wrong: %v %v %v", p.Contains(a), p.Contains(c), p.Contains(b))
	}
	if !a.Prefix(1).Equal(Root()) {
		t.Errorf("Prefix(1) should be root")
	}
}

func TestPrefixChildParent(t *testing.T) {
	p := Root()
	p = p.Child(128)
	p = p.Child(178)
	if p.String() != "128.178" {
		t.Fatalf("child chain = %s", p)
	}
	if p.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", p.Depth())
	}
	if got := p.Parent().String(); got != "128" {
		t.Fatalf("parent = %s, want 128", got)
	}
	if !Root().Parent().Equal(Root()) {
		t.Fatal("parent of root should be root")
	}
	a := p.Address(73, 3)
	if a.String() != "128.178.73.3" {
		t.Fatalf("Address = %s", a)
	}
}

func TestSpaceValidate(t *testing.T) {
	s, err := NewSpace(4, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 4*8*8 {
		t.Fatalf("capacity = %d", s.Capacity())
	}
	if err := s.Validate(New(3, 7, 7)); err != nil {
		t.Errorf("valid address rejected: %v", err)
	}
	if err := s.Validate(New(4, 0, 0)); err == nil {
		t.Error("digit 4 at arity-4 depth accepted")
	}
	if err := s.Validate(New(1, 2)); err == nil {
		t.Error("short address accepted")
	}
	if err := s.ValidatePrefix(NewPrefix(3, 7)); err != nil {
		t.Errorf("valid prefix rejected: %v", err)
	}
	if err := s.ValidatePrefix(NewPrefix(3, 8)); err == nil {
		t.Error("invalid prefix accepted")
	}
	if _, err := NewSpace(); err == nil {
		t.Error("empty space accepted")
	}
	if _, err := NewSpace(3, 0); err == nil {
		t.Error("zero arity accepted")
	}
	if _, err := Regular(5, 0); err == nil {
		t.Error("zero depth accepted")
	}
}

func TestSpaceIndexRoundTrip(t *testing.T) {
	s := MustRegular(5, 3)
	seen := make(map[int]bool, s.Capacity())
	for i := 0; i < s.Capacity(); i++ {
		a := s.AddressAt(i)
		if err := s.Validate(a); err != nil {
			t.Fatalf("AddressAt(%d) invalid: %v", i, err)
		}
		if got := s.Index(a); got != i {
			t.Fatalf("Index(AddressAt(%d)) = %d", i, got)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
}

func TestIndexPreservesOrder(t *testing.T) {
	s := MustRegular(4, 3)
	for i := 1; i < s.Capacity(); i++ {
		prev, cur := s.AddressAt(i-1), s.AddressAt(i)
		if !prev.Less(cur) {
			t.Fatalf("order not preserved at %d: %s !< %s", i, prev, cur)
		}
	}
}

func TestSubtreeSize(t *testing.T) {
	s := MustRegular(22, 3)
	if got := s.SubtreeSize(0); got != 22*22*22 {
		t.Errorf("SubtreeSize(0) = %d", got)
	}
	if got := s.SubtreeSize(1); got != 22*22 {
		t.Errorf("SubtreeSize(1) = %d", got)
	}
	if got := s.SubtreeSize(3); got != 1 {
		t.Errorf("SubtreeSize(3) = %d", got)
	}
}

func TestMixedRadixSpace(t *testing.T) {
	s, err := NewSpace(2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s.Capacity() != 24 {
		t.Fatalf("capacity = %d", s.Capacity())
	}
	for i := 0; i < s.Capacity(); i++ {
		if got := s.Index(s.AddressAt(i)); got != i {
			t.Fatalf("mixed radix round trip failed at %d: got %d", i, got)
		}
	}
}

func TestKeyUniqueness(t *testing.T) {
	s := MustRegular(3, 3)
	keys := make(map[string]bool)
	for i := 0; i < s.Capacity(); i++ {
		k := s.AddressAt(i).Key()
		if keys[k] {
			t.Fatalf("duplicate key %q", k)
		}
		keys[k] = true
	}
	if Root().Key() != "" {
		t.Errorf("root key = %q, want empty", Root().Key())
	}
}
