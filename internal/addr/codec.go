package addr

import (
	"pmcast/internal/binenc"
)

// AppendAddress appends the wire form of an address: digit count followed by
// the digits as varints.
func AppendAddress(b []byte, a Address) []byte {
	b = binenc.AppendUvarint(b, uint64(len(a.digits)))
	for _, d := range a.digits {
		b = binenc.AppendVarint(b, int64(d))
	}
	return b
}

// ReadAddress reads an address previously written by AppendAddress. On
// malformed input the reader's error is set and the zero Address returned.
func ReadAddress(r *binenc.Reader) Address {
	n := r.Count(1)
	if n == 0 {
		return Address{}
	}
	digits := make([]int, n)
	for i := range digits {
		digits[i] = int(r.Varint())
	}
	if r.Err() != nil {
		return Address{}
	}
	return makeAddress(digits)
}

// MarshalBinary implements encoding.BinaryMarshaler.
func (a Address) MarshalBinary() ([]byte, error) {
	return AppendAddress(nil, a), nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (a *Address) UnmarshalBinary(data []byte) error {
	r := binenc.NewReader(data)
	got := ReadAddress(r)
	if err := r.Err(); err != nil {
		return err
	}
	*a = got
	return nil
}
