package core

import (
	"math/bits"
	"time"

	"pmcast/internal/event"
	"pmcast/internal/interest"
)

// This file is the runtime half of the matching engine: per-event
// susceptibility, memoized.
//
// Everything in the Figure 3 loop is an interest-matching query — GETRATE
// when an event enters a depth, "event ⊳ dest" for every gossip
// destination, the Section 3.2 descent test — and a buffered event asks the
// same questions of the same view for every round of its Pittel budget. The
// view cannot change under a live Process (views are snapshots; membership
// movement builds a new Process), so the Process computes each (event,
// depth) profile once — a bitset over the view members plus the handful of
// aggregates the algorithm consumes — and answers every later query with a
// bit test or a stored popcount. Invalidation is by view generation:
// profiles are keyed by (event ID, generation), generations advance exactly
// when a tree delta could have changed matching (see tree.Tree.Generation)
// or when the simulator redraws its Bernoulli interests, and AdoptState
// carries profiles across a rebuild only when generations still agree. The
// cache is therefore semantically invisible — every answer is bit-for-bit
// what the uncached evaluation would produce, which is what keeps seeded
// harness traces byte-identical with caching on.

// MatchProfile is the complete susceptibility profile of one event against
// one depth view: who is susceptible (a bitset in member order), how many
// (the popcount GETRATE reduces to), how many distinct subgroups match and
// whether the owner's own subgroup is among them (the Section 3.2 inputs),
// and the matching rate exactly as the uncached path would compute it.
type MatchProfile struct {
	// Bits is the susceptibility bitset over view members, 64 per word.
	Bits []uint64
	// Hits is the number of susceptible members (popcount of Bits).
	Hits int
	// Lines is the number of distinct matching subgroups (view lines).
	Lines int
	// SelfIn reports whether the owner's own subgroup matches.
	SelfIn bool
	// Rate is GETRATE's value for this (event, view).
	Rate float64
	// Cost is the matcher work spent building the profile.
	Cost interest.MatchCounter
}

// Ensure sizes (and zeroes) the bitset for a view of the given member count.
func (p *MatchProfile) Ensure(size int) {
	words := (size + 63) / 64
	if cap(p.Bits) < words {
		p.Bits = make([]uint64, words)
		return
	}
	p.Bits = p.Bits[:words]
	for i := range p.Bits {
		p.Bits[i] = 0
	}
}

// Set marks member i susceptible.
func (p *MatchProfile) Set(i int) { p.Bits[i>>6] |= 1 << (uint(i) & 63) }

// SetRange marks members [lo, hi) susceptible.
func (p *MatchProfile) SetRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		p.Set(i)
	}
}

// Bit reports whether member i is susceptible.
func (p *MatchProfile) Bit(i int) bool {
	return p.Bits[i>>6]&(1<<(uint(i)&63)) != 0
}

// Popcount returns the number of set bits.
func (p *MatchProfile) Popcount() int {
	n := 0
	for _, w := range p.Bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// MatchProfiler is the fast path of the matching engine: views that can
// evaluate a whole profile in one pass — each distinct subgroup matcher
// evaluated once, not once per member — implement it. The tree adapter
// (compiled summaries) and the simulator's synthetic views do; views
// without it are profiled generically through the naive per-member calls,
// which keeps the interpretive implementations available as the oracle.
type MatchProfiler interface {
	Profile(ev event.Event, p *MatchProfile)
}

// Generational is implemented by views whose matching behavior can change
// under a live Process (the simulator redraws interests between runs) or
// that want their cached profiles to survive a Process rebuild (the tree
// adapter inherits the tree node's generation). Views without it are
// treated as static for the lifetime of the Process.
type Generational interface {
	Generation() uint64
}

// viewGeneration returns the view's generation, 0 for static views.
func viewGeneration(v DepthView) uint64 {
	if g, ok := v.(Generational); ok {
		return g.Generation()
	}
	return 0
}

// profileView fills a profile for the event, preferring the view's one-pass
// implementation and falling back to the naive per-member interface calls.
// The fallback asks the view's own Rate/MatchingSubgroups rather than
// deriving them from the bits, so stub views with unusual semantics keep
// exactly the behavior they had before caching existed.
func profileView(v DepthView, ev event.Event, p *MatchProfile) {
	if mp, ok := v.(MatchProfiler); ok {
		mp.Profile(ev, p)
		return
	}
	size := v.Size()
	p.Ensure(size)
	hits := 0
	for i := 0; i < size; i++ {
		if v.SusceptibleAt(ev, i) {
			p.Set(i)
			hits++
		}
	}
	p.Hits = hits
	p.Rate = v.Rate(ev)
	p.Lines, p.SelfIn = v.MatchingSubgroups(ev)
	p.Cost.Evals += uint64(size) + 2
}

// depthCache memoizes profiles for one depth, keyed by event ID and guarded
// by the view generation the entries were computed against.
type depthCache struct {
	gen      uint64
	profiles map[event.ID]*MatchProfile
}

// MatchStats are the matching engine's counters: matcher evaluations and
// attribute comparisons actually performed, cache traffic, gossip rounds
// ticked, and the wall time spent computing profiles. All deterministic for
// a seeded run except Nanos, which measures real compute time.
type MatchStats struct {
	// Evals counts matcher invocations; Comparisons the per-attribute
	// criterion evaluations inside them. Cache hits add to neither — the
	// gap between Hits and Evals is the work the cache saved.
	Evals       uint64
	Comparisons uint64
	// Hits and Misses count profile lookups served from cache vs computed.
	Hits   uint64
	Misses uint64
	// Rounds counts gossip ticks executed.
	Rounds uint64
	// Nanos is wall time spent computing profiles (cache misses only).
	Nanos int64
	// Fold-layer counters, filled by the membership layer (Node.MatchStats)
	// from its tree: FoldRecomputes counts summary regroupings the tree
	// actually computed, FoldHits the regroupings served by the shared fold
	// cache. Summed by Accumulate like the matcher counters.
	FoldRecomputes uint64
	FoldHits       uint64
	// Shared-cache snapshots: live entries and sweep evictions of the fold
	// cache and interning compiler behind the tree. The instances are
	// typically shared by many processes (tree clones), so Accumulate keeps
	// the max rather than double-counting one cache per process; exact
	// fleet totals dedupe by cache identity through Node.FoldStats.
	FoldCacheEntries   uint64
	FoldCacheEvictions uint64
	CompilerEntries    uint64
	CompilerEvictions  uint64
}

// Accumulate adds another process's counters (used when a rebuilt process
// adopts its predecessor's state, and by fleet-wide reporting).
func (m *MatchStats) Accumulate(o MatchStats) {
	m.Evals += o.Evals
	m.Comparisons += o.Comparisons
	m.Hits += o.Hits
	m.Misses += o.Misses
	m.Rounds += o.Rounds
	m.Nanos += o.Nanos
	m.FoldRecomputes += o.FoldRecomputes
	m.FoldHits += o.FoldHits
	m.FoldCacheEntries = max(m.FoldCacheEntries, o.FoldCacheEntries)
	m.FoldCacheEvictions = max(m.FoldCacheEvictions, o.FoldCacheEvictions)
	m.CompilerEntries = max(m.CompilerEntries, o.CompilerEntries)
	m.CompilerEvictions = max(m.CompilerEvictions, o.CompilerEvictions)
}

// profileAt returns the event's susceptibility profile at the given depth,
// computing and caching it on first use. Returns nil for depths without a
// view. The generation check clears a depth's cache the moment its view
// stops matching the cached answers, never later — exact invalidation, so
// caching is invisible to the protocol.
func (p *Process) profileAt(ev event.Event, depth int) *MatchProfile {
	v := p.views[depth-1]
	if v == nil {
		return nil
	}
	c := &p.caches[depth-1]
	if g := viewGeneration(v); c.profiles == nil || c.gen != g {
		c.profiles = make(map[event.ID]*MatchProfile)
		c.gen = g
	}
	if prof, ok := c.profiles[ev.ID()]; ok {
		p.matchStats.Hits++
		return prof
	}
	prof := &MatchProfile{}
	start := time.Now()
	profileView(v, ev, prof)
	p.matchStats.Nanos += time.Since(start).Nanoseconds()
	p.matchStats.Misses++
	p.matchStats.Evals += prof.Cost.Evals
	p.matchStats.Comparisons += prof.Cost.Comparisons
	c.profiles[ev.ID()] = prof
	return prof
}

// evictProfile drops one event's cached profile at one depth (the event
// left that depth's buffer: demoted, flooded, expired or forgotten).
func (p *Process) evictProfile(id event.ID, depth int) {
	if c := &p.caches[depth-1]; c.profiles != nil {
		delete(c.profiles, id)
	}
}

// MatchStats reports the matching engine's counters.
func (p *Process) MatchStats() MatchStats { return p.matchStats }

// ProfileFor exposes the (possibly cached) susceptibility profile of an
// event at a depth — the matching engine's introspection hook, used by
// benchmarks and diagnostics. Callers observe the same single-writer
// discipline as every other Process method; the returned profile is shared
// with the cache and must not be mutated.
func (p *Process) ProfileFor(ev event.Event, depth int) *MatchProfile {
	if depth < 1 || depth > p.cfg.D {
		return nil
	}
	return p.profileAt(ev, depth)
}

// adoptCaches carries the predecessor's cached profiles into this process
// for every depth whose view generation still agrees — under churn, the
// depths a delta did not touch keep their memoized matching across the
// rebuild. Counter state is accumulated unconditionally.
func (p *Process) adoptCaches(old *Process) {
	for d := range p.caches {
		if p.views[d] == nil || old.caches[d].profiles == nil {
			continue
		}
		if viewGeneration(p.views[d]) != old.caches[d].gen {
			continue
		}
		p.caches[d] = old.caches[d]
	}
	p.matchStats.Accumulate(old.matchStats)
}
