package core

import (
	"math/rand"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

// buildGroup assembles a fully populated regular tree where members with an
// even last digit subscribe to b=1 and the rest to b=2, plus a Process per
// member.
func buildGroup(t *testing.T, a, d, r int, cfg Config) (*tree.Tree, map[string]*Process) {
	t.Helper()
	space := addr.MustRegular(a, d)
	members := make([]tree.Member, 0, space.Capacity())
	for i := 0; i < space.Capacity(); i++ {
		ad := space.AddressAt(i)
		val := int64(2)
		if ad.Digit(d)%2 == 0 {
			val = 1
		}
		members = append(members, tree.Member{
			Addr: ad,
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(val)),
		})
	}
	tr, err := tree.Build(tree.Config{Space: space, R: r}, members)
	if err != nil {
		t.Fatal(err)
	}
	procs := make(map[string]*Process, len(members))
	for _, m := range members {
		p, err := BuildProcess(tr, m.Addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		procs[m.Addr.Key()] = p
	}
	return tr, procs
}

// drive runs the whole group round-synchronously until no process has
// pending gossip, returning the number of rounds executed.
func drive(t *testing.T, procs map[string]*Process, rng *rand.Rand, maxRounds int) int {
	t.Helper()
	for round := 1; round <= maxRounds; round++ {
		var sends []Send
		for _, p := range procs {
			sends = append(sends, p.Tick(rng)...)
		}
		for _, s := range sends {
			dst, ok := procs[s.To.Key()]
			if !ok {
				t.Fatalf("send to unknown process %s", s.To)
			}
			dst.Receive(s.Gossip)
		}
		pending := 0
		for _, p := range procs {
			pending += p.Pending()
		}
		if pending == 0 {
			return round
		}
	}
	t.Fatalf("dissemination did not quiesce in %d rounds", maxRounds)
	return 0
}

func bEvent(val int64, seq uint64) event.Event {
	return event.NewBuilder().Int("b", val).Build(event.ID{Origin: "test", Seq: seq})
}

func TestConfigValidation(t *testing.T) {
	space := addr.MustRegular(2, 2)
	tr, err := tree.Build(tree.Config{Space: space, R: 1}, []tree.Member{{Addr: addr.New(0, 0)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildProcess(tr, addr.New(0, 0), Config{F: 0}); err == nil {
		t.Error("F=0 accepted")
	}
	if _, err := BuildProcess(tr, addr.New(1, 1), Config{F: 2}); err == nil {
		t.Error("non-member accepted")
	}
	if _, err := NewProcess(addr.New(0, 0), Config{D: 2, F: 2}, []DepthView{nil}, nil); err == nil {
		t.Error("view count mismatch accepted")
	}
}

func TestMulticastStartsAtRoot(t *testing.T) {
	_, procs := buildGroup(t, 3, 2, 2, Config{F: 2})
	pub := procs["1.1"]
	ev := bEvent(1, 1)
	if err := pub.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	if pub.Pending() != 1 {
		t.Fatalf("pending = %d", pub.Pending())
	}
	// Zero-ID event rejected.
	if err := pub.Multicast(event.NewBuilder().Int("b", 1).Build(event.ID{})); err == nil {
		t.Error("zero-ID event accepted")
	}
	// Duplicate multicast is a no-op.
	if err := pub.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	if pub.Pending() != 1 {
		t.Error("duplicate multicast duplicated state")
	}
}

func TestFullDisseminationReachesInterested(t *testing.T) {
	_, procs := buildGroup(t, 4, 2, 2, Config{F: 3, C: 2})
	rng := rand.New(rand.NewSource(7))
	ev := bEvent(1, 1) // interests of even-last-digit members

	if err := procs["2.3"].Multicast(ev); err != nil {
		t.Fatal(err)
	}
	drive(t, procs, rng, 200)

	delivered, interested, uninterestedGot := 0, 0, 0
	for key, p := range procs {
		evs := p.Deliveries()
		a := addr.MustParse(key)
		wantInterested := a.Digit(2)%2 == 0
		if wantInterested {
			interested++
			if len(evs) == 1 {
				delivered++
			}
		} else if len(evs) > 0 {
			uninterestedGot++
		}
	}
	if interested == 0 {
		t.Fatal("test setup broken: nobody interested")
	}
	// With fanout 3, a conservative constant and a 16-process group, every
	// interested process should be reached.
	if delivered < interested {
		t.Errorf("delivered %d of %d interested", delivered, interested)
	}
	if uninterestedGot != 0 {
		t.Errorf("%d uninterested processes delivered", uninterestedGot)
	}
}

func TestUninterestedLeavesNeverReceive(t *testing.T) {
	// With per-leaf interests mapped to subgroup structure: members of
	// subtree 0 interested, others not. Uninterested *leaves* must not
	// receive (delegates of interested subtrees may).
	space := addr.MustRegular(3, 2)
	members := make([]tree.Member, 0, 9)
	for i := 0; i < space.Capacity(); i++ {
		ad := space.AddressAt(i)
		sub := interest.NewSubscription().Where("b", interest.EqInt(99)) // never matches
		if ad.Digit(1) == 0 {
			sub = interest.NewSubscription().Where("b", interest.EqInt(1))
		}
		members = append(members, tree.Member{Addr: ad, Sub: sub})
	}
	tr, err := tree.Build(tree.Config{Space: space, R: 1}, members)
	if err != nil {
		t.Fatal(err)
	}
	procs := make(map[string]*Process)
	for _, m := range members {
		p, err := BuildProcess(tr, m.Addr, Config{F: 2, C: 2})
		if err != nil {
			t.Fatal(err)
		}
		procs[m.Addr.Key()] = p
	}
	rng := rand.New(rand.NewSource(3))
	ev := bEvent(1, 1)
	if err := procs["0.0"].Multicast(ev); err != nil {
		t.Fatal(err)
	}
	drive(t, procs, rng, 200)

	for key, p := range procs {
		a := addr.MustParse(key)
		saw := p.HasSeen(ev.ID())
		if a.Digit(1) != 0 {
			// Other subtrees: only their delegates (digit2==0 with R=1,
			// smallest address) may have seen it at the root depth — but the
			// root gossip only targets susceptible members, and these
			// subtrees' summaries do not match. Nobody should see it.
			if saw && key != "0.0" {
				t.Errorf("uninterested process %s received the event", key)
			}
		}
	}
}

func TestDemotionWalksDepths(t *testing.T) {
	_, procs := buildGroup(t, 3, 3, 1, Config{F: 1})
	pub := procs["2.2.2"]
	ev := bEvent(1, 1)
	if err := pub.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// Tick the publisher alone until its buffers drain: the entry must walk
	// every depth and eventually drop out.
	for i := 0; i < 100 && pub.Pending() > 0; i++ {
		pub.Tick(rng)
	}
	if pub.Pending() != 0 {
		t.Error("entry never drained through the depths")
	}
}

func TestReceiveDeliversOnlyMatching(t *testing.T) {
	_, procs := buildGroup(t, 3, 2, 2, Config{F: 2})
	p := procs["0.0"] // interested in b=1
	g1 := Gossip{Event: bEvent(1, 10), Depth: 2, Rate: 0.5, Round: 0}
	g2 := Gossip{Event: bEvent(2, 11), Depth: 2, Rate: 0.5, Round: 0}
	p.Receive(g1)
	p.Receive(g2)
	evs := p.Deliveries()
	if len(evs) != 1 {
		t.Fatalf("deliveries = %d, want 1", len(evs))
	}
	if v, _ := evs[0].Attr("b").AsInt(); v != 1 {
		t.Errorf("delivered wrong event %v", evs[0])
	}
	// Duplicate reception neither redelivers nor rebuffers.
	before := p.Pending()
	p.Receive(g1)
	if len(p.Deliveries()) != 0 || p.Pending() != before {
		t.Error("duplicate reception had effects")
	}
	// Out-of-range depth ignored.
	p.Receive(Gossip{Event: bEvent(1, 12), Depth: 9})
	if p.Pending() != before {
		t.Error("bad-depth gossip buffered")
	}
	_, received := p.Stats()
	if received != 2 {
		t.Errorf("received = %d, want 2", received)
	}
}

func TestRoundAdoption(t *testing.T) {
	// A receiver adopts the sender's round counter so the event's life-time
	// stays bounded group-wide: with an exhausted round count, the entry is
	// demoted out of depth 1 without gossiping there. It gets a fresh round
	// counter at depth 2 (Figure 3 line 18), so depth-2 sends are fine.
	_, procs := buildGroup(t, 4, 2, 2, Config{F: 2})
	p := procs["0.0"]
	p.Receive(Gossip{Event: bEvent(1, 5), Depth: 1, Rate: 1, Round: 1 << 20})
	rng := rand.New(rand.NewSource(2))
	sends := p.Tick(rng)
	for _, s := range sends {
		if s.Gossip.Depth == 1 {
			t.Errorf("exhausted entry gossiped at depth 1")
		}
	}
	// The leaf-depth budget is finite: the entry must drain.
	for i := 0; i < 50 && p.Pending() > 0; i++ {
		p.Tick(rng)
	}
	if p.Pending() != 0 {
		t.Errorf("pending = %d after demotion walk", p.Pending())
	}
}

func TestLocalDescentSkipsUninvolvedDepths(t *testing.T) {
	// Interests: only leaf group 1.1.* (publisher's own) matches b=1.
	space := addr.MustRegular(2, 3)
	members := make([]tree.Member, 0, 8)
	for i := 0; i < space.Capacity(); i++ {
		ad := space.AddressAt(i)
		sub := interest.NewSubscription().Where("b", interest.EqInt(42))
		if ad.Digit(1) == 1 && ad.Digit(2) == 1 {
			sub = interest.NewSubscription().Where("b", interest.EqInt(1))
		}
		members = append(members, tree.Member{Addr: ad, Sub: sub})
	}
	tr, err := tree.Build(tree.Config{Space: space, R: 1}, members)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(localDescent bool) *Process {
		p, err := BuildProcess(tr, addr.New(1, 1, 0), Config{F: 2, LocalDescent: localDescent})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	ev := bEvent(1, 1)

	plain := mk(false)
	if err := plain.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	descent := mk(true)
	if err := descent.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	// The descent publisher must have inserted at depth 3 (only its own
	// subtree is interested at depths 1 and 2); the plain one at depth 1.
	// Observe indirectly: ticking the plain process at depth 1 yields no
	// sends (no other root line is susceptible), while the descent process
	// gossips to its interested leaf neighbor immediately.
	rng := rand.New(rand.NewSource(9))
	descSends := descent.Tick(rng)
	if len(descSends) == 0 {
		t.Error("descent publisher did not gossip at leaf depth immediately")
	}
	for _, s := range descSends {
		if s.Gossip.Depth != 3 {
			t.Errorf("descent send at depth %d, want 3", s.Gossip.Depth)
		}
	}
}

func TestTuningThresholdWidensAudience(t *testing.T) {
	// Nobody is interested: untuned gossip sends nothing; with h=3 the
	// first 3 view members become susceptible.
	space := addr.MustRegular(4, 1)
	members := make([]tree.Member, 4)
	for i := range members {
		members[i] = tree.Member{
			Addr: addr.New(i),
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(99)),
		}
	}
	tr, err := tree.Build(tree.Config{Space: space, R: 2}, members)
	if err != nil {
		t.Fatal(err)
	}
	ev := bEvent(1, 1)
	rng := rand.New(rand.NewSource(4))

	plain, err := BuildProcess(tr, addr.New(0), Config{F: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	if sends := plain.Tick(rng); len(sends) != 0 {
		t.Errorf("untuned process gossiped %d sends with zero audience", len(sends))
	}

	tuned, err := BuildProcess(tr, addr.New(0), Config{F: 3, Threshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tuned.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	var total int
	for i := 0; i < 10; i++ {
		total += len(tuned.Tick(rng))
	}
	if total == 0 {
		t.Error("tuned process never gossiped despite threshold")
	}
}

func TestForgetAllowsReprocessing(t *testing.T) {
	_, procs := buildGroup(t, 3, 2, 2, Config{F: 2})
	p := procs["0.0"]
	ev := bEvent(1, 3)
	p.Receive(Gossip{Event: ev, Depth: 1, Rate: 1, Round: 0})
	if !p.HasSeen(ev.ID()) {
		t.Fatal("not seen after receive")
	}
	p.Forget(ev.ID())
	if p.HasSeen(ev.ID()) || p.Pending() != 0 {
		t.Error("forget did not clear state")
	}
	p.Receive(Gossip{Event: ev, Depth: 1, Rate: 1, Round: 0})
	if !p.HasSeen(ev.ID()) {
		t.Error("reprocessing after forget failed")
	}
}

func TestSampleIndices(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		size := 1 + rng.Intn(10)
		excl := rng.Intn(size+2) - 1 // sometimes −1 or out of range
		k := rng.Intn(size + 2)
		got := sampleIndices(rng, size, excl, k)
		seen := make(map[int]bool)
		for _, idx := range got {
			if idx < 0 || idx >= size {
				t.Fatalf("index %d out of range", idx)
			}
			if idx == excl {
				t.Fatalf("excluded index %d sampled", excl)
			}
			if seen[idx] {
				t.Fatalf("duplicate index %d", idx)
			}
			seen[idx] = true
		}
		pool := size
		if excl >= 0 && excl < size {
			pool--
		}
		wantLen := min(k, pool)
		if len(got) != wantLen {
			t.Fatalf("len = %d, want %d", len(got), wantLen)
		}
	}
}

func TestSampleIndicesUniform(t *testing.T) {
	// Rough uniformity check: each index sampled ≈ k/size of the time.
	rng := rand.New(rand.NewSource(13))
	counts := make([]int, 6)
	const trials = 30000
	for i := 0; i < trials; i++ {
		for _, idx := range sampleIndices(rng, 6, -1, 2) {
			counts[idx]++
		}
	}
	want := trials * 2 / 6
	for idx, c := range counts {
		if c < want*8/10 || c > want*12/10 {
			t.Errorf("index %d sampled %d times, want ≈%d", idx, c, want)
		}
	}
}
