package core

import (
	"math/rand"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

// cacheTree builds a small content-addressed membership: 4^2, classes on b.
func cacheTree(tb testing.TB) (*tree.Tree, addr.Space) {
	tb.Helper()
	space := addr.MustRegular(4, 2)
	members := make([]tree.Member, 0, 16)
	for i := 0; i < 16; i++ {
		a := space.AddressAt(i)
		members = append(members, tree.Member{
			Addr: a,
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(int64(a.Digit(1)%2))),
		})
	}
	t, err := tree.Build(tree.Config{Space: space, R: 2}, members)
	if err != nil {
		tb.Fatal(err)
	}
	return t, space
}

func classEv(class int64, seq uint64) event.Event {
	return event.NewBuilder().Int("b", class).Build(event.ID{Origin: "t", Seq: seq})
}

// TestProfileCacheMemoizes: the second identical query is a cache hit and
// performs zero additional matcher evaluations.
func TestProfileCacheMemoizes(t *testing.T) {
	tr, space := cacheTree(t)
	p, err := BuildProcess(tr, space.AddressAt(0), Config{F: 2, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	ev := classEv(0, 1)
	first := p.ProfileFor(ev, 1)
	s1 := p.MatchStats()
	if s1.Misses != 1 || s1.Hits != 0 || s1.Evals == 0 {
		t.Fatalf("first lookup: %+v", s1)
	}
	second := p.ProfileFor(ev, 1)
	s2 := p.MatchStats()
	if second != first {
		t.Error("second lookup did not return the cached profile")
	}
	if s2.Misses != 1 || s2.Hits != 1 || s2.Evals != s1.Evals {
		t.Fatalf("second lookup recomputed: %+v", s2)
	}
	if first.Hits != first.Popcount() {
		t.Errorf("Hits %d disagrees with popcount %d", first.Hits, first.Popcount())
	}
}

// TestProfileMatchesNaiveView: the profile's bitset and aggregates agree
// with the per-member interface calls (the retained oracle) for every view
// depth and several event classes.
func TestProfileMatchesNaiveView(t *testing.T) {
	tr, space := cacheTree(t)
	self := space.AddressAt(5)
	p, err := BuildProcess(tr, self, Config{F: 2, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	for depth := 1; depth <= tr.Depth(); depth++ {
		v := NewTreeView(tr.ViewAt(self, depth), self)
		for class := int64(0); class < 3; class++ {
			ev := classEv(class, uint64(10*int64(depth)+class))
			prof := p.ProfileFor(ev, depth)
			if prof.Rate != v.Rate(ev) {
				t.Errorf("depth %d class %d: rate %g vs %g", depth, class, prof.Rate, v.Rate(ev))
			}
			lines, selfIn := v.MatchingSubgroups(ev)
			if prof.Lines != lines || prof.SelfIn != selfIn {
				t.Errorf("depth %d class %d: lines (%d,%v) vs (%d,%v)",
					depth, class, prof.Lines, prof.SelfIn, lines, selfIn)
			}
			for i := 0; i < v.Size(); i++ {
				if prof.Bit(i) != v.SusceptibleAt(ev, i) {
					t.Errorf("depth %d class %d member %d: bit %v vs naive %v",
						depth, class, i, prof.Bit(i), v.SusceptibleAt(ev, i))
				}
			}
		}
	}
}

// mutableView is a stub whose generation and matching flip on demand — the
// simulator's redraw pattern.
type mutableView struct {
	size int
	gen  uint64
	on   bool
}

func (v *mutableView) Size() int                           { return v.size }
func (v *mutableView) MemberAt(i int) addr.Address         { return addr.New(i, v.size) }
func (v *mutableView) SelfIndex() int                      { return -1 }
func (v *mutableView) SusceptibleAt(event.Event, int) bool { return v.on }
func (v *mutableView) Rate(event.Event) float64 {
	if v.on {
		return 1
	}
	return 0
}
func (v *mutableView) MatchingSubgroups(event.Event) (int, bool) {
	if v.on {
		return v.size, false
	}
	return 0, false
}
func (v *mutableView) Generation() uint64 { return v.gen }

// TestProfileCacheInvalidatesOnGeneration: a generation bump drops cached
// profiles; without it they would serve stale matching.
func TestProfileCacheInvalidatesOnGeneration(t *testing.T) {
	v := &mutableView{size: 4, gen: 1, on: true}
	p, err := NewProcess(addr.New(0, 4), Config{D: 1, F: 2, C: 3}, []DepthView{v}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev := classEv(0, 1)
	if got := p.ProfileFor(ev, 1).Rate; got != 1 {
		t.Fatalf("rate %g, want 1", got)
	}
	// Same generation: the flipped view must NOT be observed (cache hit) —
	// this is what "exact" means: entries live exactly as long as their
	// generation.
	v.on = false
	if got := p.ProfileFor(ev, 1).Rate; got != 1 {
		t.Fatalf("cache did not serve the generation-stable profile: rate %g", got)
	}
	// Bumped generation: the cache must recompute.
	v.gen = 2
	if got := p.ProfileFor(ev, 1).Rate; got != 0 {
		t.Fatalf("stale profile after generation bump: rate %g", got)
	}
}

// TestAdoptStateCarriesCaches: a rebuilt process adopts cached profiles for
// depths whose view generation is unchanged and drops the rest; counters
// accumulate.
func TestAdoptStateCarriesCaches(t *testing.T) {
	tr, space := cacheTree(t)
	self := space.AddressAt(0)
	old, err := BuildProcess(tr, self, Config{F: 2, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	ev := classEv(0, 1)
	for depth := 1; depth <= tr.Depth(); depth++ {
		old.ProfileFor(ev, depth)
	}
	oldStats := old.MatchStats()

	// Mutate one leaf subgroup: the leaf-depth view of subtree 0 changes
	// generation, the depth-1 view (root children) changes too — both along
	// the touched path.
	if err := tr.UpdateSubscription(space.AddressAt(1),
		interest.NewSubscription().Where("b", interest.EqInt(7))); err != nil {
		t.Fatal(err)
	}
	fresh, err := BuildProcess(tr, self, Config{F: 2, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	fresh.AdoptState(old)
	got := fresh.MatchStats()
	if got.Evals != oldStats.Evals || got.Misses != oldStats.Misses {
		t.Fatalf("adopted counters %+v, want %+v", got, oldStats)
	}
	// Every depth on the touched path must recompute (miss); with self at
	// 0.0 and the update at 0.1, every view of self shares the touched
	// path, so all lookups miss.
	before := fresh.MatchStats().Misses
	for depth := 1; depth <= tr.Depth(); depth++ {
		fresh.ProfileFor(ev, depth)
	}
	if after := fresh.MatchStats().Misses; after == before {
		t.Error("no recompute after a tree delta on the shared path")
	}

	// A rebuild with NO tree movement keeps every cached profile.
	same, err := BuildProcess(tr, self, Config{F: 2, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	same.AdoptState(fresh)
	b := same.MatchStats()
	for depth := 1; depth <= tr.Depth(); depth++ {
		same.ProfileFor(ev, depth)
	}
	a := same.MatchStats()
	if a.Misses != b.Misses {
		t.Errorf("rebuild without movement recomputed %d profiles", a.Misses-b.Misses)
	}
	if a.Hits != b.Hits+uint64(tr.Depth()) {
		t.Errorf("expected %d cache hits, got %d", tr.Depth(), a.Hits-b.Hits)
	}
}

// TestTickEvictsDemotedProfiles: an event leaving a depth's buffer drops
// its profile there, and a full dissemination leaves no cached profiles for
// expired events at their final depth either (Forget clears all).
func TestForgetEvictsProfiles(t *testing.T) {
	tr, space := cacheTree(t)
	p, err := BuildProcess(tr, space.AddressAt(0), Config{F: 2, C: 3})
	if err != nil {
		t.Fatal(err)
	}
	ev := classEv(0, 1)
	if err := p.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for p.Pending() > 0 {
		p.Tick(rng)
	}
	p.Forget(ev.ID())
	before := p.MatchStats().Hits
	p.ProfileFor(ev, 1)
	if p.MatchStats().Hits != before {
		t.Error("profile survived Forget")
	}
}

// TestTickDeterministicWithCache: two processes over the same tree with the
// same RNG seed emit identical send sequences even when one of them has a
// fully warmed cache and the other starts cold — caching changes no
// observable behavior.
func TestTickDeterministicWithCache(t *testing.T) {
	tr, space := cacheTree(t)
	self := space.AddressAt(0)
	mk := func() *Process {
		p, err := BuildProcess(tr, self, Config{F: 2, C: 3})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	warm, cold := mk(), mk()
	ev := classEv(1, 1)
	// Warm every depth before the protocol runs.
	for depth := 1; depth <= tr.Depth(); depth++ {
		warm.ProfileFor(ev, depth)
	}
	if err := warm.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	if err := cold.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	rngW := rand.New(rand.NewSource(7))
	rngC := rand.New(rand.NewSource(7))
	for round := 0; warm.Pending() > 0 || cold.Pending() > 0; round++ {
		if round > 128 {
			t.Fatal("no quiescence")
		}
		sw := warm.Tick(rngW)
		sc := cold.Tick(rngC)
		if len(sw) != len(sc) {
			t.Fatalf("round %d: %d vs %d sends", round, len(sw), len(sc))
		}
		for i := range sw {
			gw, gc := sw[i].Gossip, sc[i].Gossip
			if !sw[i].To.Equal(sc[i].To) || gw.Event.ID() != gc.Event.ID() ||
				gw.Depth != gc.Depth || gw.Rate != gc.Rate || gw.Round != gc.Round {
				t.Fatalf("round %d send %d: %+v vs %+v", round, i, sw[i], sc[i])
			}
		}
	}
}
