package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// TestTickRoundMatchesTick is the batching contract at the protocol layer:
// TickRound consumes the RNG exactly like Tick and emits the same gossips to
// the same destinations — grouped per peer, destinations in first-appearance
// order, per-destination gossip order preserved.
func TestTickRoundMatchesTick(t *testing.T) {
	cfg := Config{D: 2, F: 3, C: 3}
	_, procsA := buildGroup(t, 4, 2, 2, cfg)
	_, procsB := buildGroup(t, 4, 2, 2, cfg)
	for seq := uint64(1); seq <= 6; seq++ {
		ev := bEvent(int64(1+seq%2), seq)
		if err := procsA["0.0"].Multicast(ev); err != nil {
			t.Fatal(err)
		}
		if err := procsB["0.0"].Multicast(ev); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]string, 0, len(procsA))
	for k := range procsA {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	rngA := rand.New(rand.NewSource(99))
	rngB := rand.New(rand.NewSource(99))
	for round := 0; round < 12; round++ {
		for _, k := range keys {
			flat := procsA[k].Tick(rngA)
			rounds := procsB[k].TickRound(rngB)

			// Group the flat sends the way TickRound documents, then compare.
			var wantOrder []string
			want := make(map[string][]Gossip)
			for _, s := range flat {
				dk := s.To.Key()
				if _, ok := want[dk]; !ok {
					wantOrder = append(wantOrder, dk)
				}
				want[dk] = append(want[dk], s.Gossip)
			}
			if len(rounds) != len(wantOrder) {
				t.Fatalf("round %d node %s: %d round sends, want %d", round, k, len(rounds), len(wantOrder))
			}
			for i, rs := range rounds {
				if rs.To.Key() != wantOrder[i] {
					t.Fatalf("round %d node %s: dest %d = %s, want %s", round, k, i, rs.To.Key(), wantOrder[i])
				}
				if !reflect.DeepEqual(rs.Gossips, want[rs.To.Key()]) {
					t.Fatalf("round %d node %s: gossips to %s diverge", round, k, rs.To.Key())
				}
			}

			// Deliver both fleets identically so later rounds keep comparing.
			for _, s := range flat {
				procsA[s.To.Key()].Receive(s.Gossip)
			}
			for _, rs := range rounds {
				for _, g := range rs.Gossips {
					procsB[rs.To.Key()].Receive(g)
				}
			}
		}
	}
	// Both fleets must have made identical protocol progress.
	for _, k := range keys {
		sa, ra := procsA[k].Stats()
		sb, rb := procsB[k].Stats()
		if sa != sb || ra != rb {
			t.Errorf("node %s counters diverge: sent %d/%d received %d/%d", k, sa, sb, ra, rb)
		}
	}
}
