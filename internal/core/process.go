// Package core implements the pmcast dissemination algorithm of the paper's
// Figure 3: depth-wise gossiping of events along the delegate tree, with
// per-depth gossip buffers whose life-time is bounded by Pittel's round
// estimate conditioned on the matching rate, plus the Section 5.3 tuning for
// small matching rates and the Section 3.2 local-interest descent rule.
//
// The Process type is a pure protocol state machine: it consumes ticks and
// received gossips and emits sends and deliveries. Both the round-synchronous
// Monte-Carlo simulator (internal/sim) and the asynchronous goroutine runtime
// (internal/node) drive it, so simulation results exercise exactly the code
// that runs in the live system.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"pmcast/internal/addr"
	"pmcast/internal/analysis"
	"pmcast/internal/event"
)

// Common errors.
var (
	ErrNoViews   = errors.New("core: process needs one view per depth")
	ErrBadFanout = errors.New("core: fanout must be ≥ 1")
	ErrNilEvent  = errors.New("core: event has zero ID")
)

// DepthView is the process's table for one tree depth: the members of its
// depth-i group in deterministic line order, with per-member susceptibility
// for an event (the aggregated subtree interest the member represents at this
// depth). Implementations: the tree adapter (adapter.go) for live nodes, and
// the simulator's synthetic views.
type DepthView interface {
	// Size returns the number of group members (|view[i]|·R at inner depths,
	// the subgroup population at depth d).
	Size() int
	// MemberAt returns the address of the i-th member, 0 ≤ i < Size().
	MemberAt(i int) addr.Address
	// SelfIndex returns the position of the owning process in the view, or
	// −1 when the process is not a member of this depth's group (it still
	// gossips here while PMCAST-ing).
	SelfIndex() int
	// SusceptibleAt reports whether member i should receive the event:
	// whether the interests it represents at this depth match
	// ("event ⊳ dest", Figure 3 line 13).
	SusceptibleAt(ev event.Event, i int) bool
	// Rate implements GETRATE (Figure 3): the fraction of members
	// susceptible to the event.
	Rate(ev event.Event) float64
	// MatchingSubgroups returns how many distinct subgroups (view lines)
	// match the event and whether the owning process's own subgroup is one
	// of them. Drives the Section 3.2 local-interest descent.
	MatchingSubgroups(ev event.Event) (total int, selfIn bool)
}

// Config parameterizes the algorithm.
type Config struct {
	// D is the tree depth; the process keeps D gossip buffers.
	D int
	// F is the gossip fanout (targets chosen per event per round).
	F int
	// C is the additive constant of Pittel's round estimate (Eq. 3);
	// conservative values trade extra rounds for reliability.
	C float64
	// AssumedLoss and AssumedCrash are the environmental parameters ε and τ
	// the process assumes when bounding gossip rounds (Eq. 11). They
	// lengthen budgets; they do not affect who is gossiped to.
	AssumedLoss  float64
	AssumedCrash float64
	// Threshold is the Section 5.3 tuning parameter h: when fewer than h
	// members of a view are susceptible, the first h members are treated as
	// susceptible in addition to the effectively interested ones beyond the
	// first h. Zero disables tuning (the paper's "original" algorithm).
	Threshold int
	// LocalDescent enables the Section 3.2 rule: a PMCAST skips depths
	// where the publisher's own subtree is the only interested one.
	LocalDescent bool
	// LeafFloodRate enables the Section 6 extension "flooding the leaf
	// subgroups if there is a high density of interests": at the leaf depth,
	// when the matching rate is at least this value, the event is sent once
	// to every susceptible neighbor instead of being gossiped for T rounds.
	// Zero disables flooding. Flooded gossips carry an exhausted round
	// counter so receivers do not re-flood.
	LeafFloodRate float64
	// AdaptiveFanout closes the Section 5.3 tuning loop over measured
	// instead of assumed loss: per-depth round budgets substitute the view's
	// mean measured loss for AssumedLoss when it is worse, and each gossip
	// round adds extra susceptible targets — restoring the Eq. 11 effective
	// fanout when the whole view measures lossy, or compensating individual
	// lossy picks when only some links do (see gossipOnce). Off (the
	// default), the process consumes exactly the RNG draws of the untuned
	// algorithm, so seeded traces are unchanged.
	AdaptiveFanout bool
	// AdaptiveBoost caps the extra susceptible targets added per (event,
	// round) when loss is measured (default 2).
	AdaptiveBoost int
	// AdaptiveLossThreshold is the measured per-peer loss at which a link
	// counts as lossy for the fan-out boost (default 0.05: a link measured
	// above 5% loss earns extra redundancy).
	AdaptiveLossThreshold float64
	// PeerLoss reports the measured loss estimate toward a peer; ok is
	// false while the estimator has not seen enough traffic. Required for
	// AdaptiveFanout to have any effect.
	PeerLoss func(a addr.Address) (loss float64, ok bool)
}

// adaptiveOn reports whether the measured-loss tuning loop is active.
func (c Config) adaptiveOn() bool { return c.AdaptiveFanout && c.PeerLoss != nil }

func (c Config) adaptiveBoost() int {
	if c.AdaptiveBoost > 0 {
		return c.AdaptiveBoost
	}
	return 2
}

func (c Config) adaptiveLossThreshold() float64 {
	if c.AdaptiveLossThreshold > 0 {
		return c.AdaptiveLossThreshold
	}
	return 0.05
}

// AdaptiveStats counts what the measured-loss tuning loop actually did.
type AdaptiveStats struct {
	// Boosts is the number of (event, round) emissions that extended the
	// target walk; ExtraTargets is the total extra susceptible targets
	// added.
	Boosts       int
	ExtraTargets int
	// BudgetDepths counts per-depth budget evaluations that used a measured
	// loss above the assumed one.
	BudgetDepths int
}

// Accumulate folds another snapshot into s (fleet-wide aggregation).
func (s *AdaptiveStats) Accumulate(o AdaptiveStats) {
	s.Boosts += o.Boosts
	s.ExtraTargets += o.ExtraTargets
	s.BudgetDepths += o.BudgetDepths
}

func (c Config) validate() error {
	if c.D < 1 {
		return fmt.Errorf("%w: depth %d", ErrNoViews, c.D)
	}
	if c.F < 1 {
		return fmt.Errorf("%w: got %d", ErrBadFanout, c.F)
	}
	return nil
}

// Gossip is the message of Figure 3's SEND/RECEIVE: the event, the depth at
// which it is currently multicast, the matching rate computed for that depth,
// and the round counter bounding its remaining life-time.
type Gossip struct {
	Event event.Event
	Depth int
	Rate  float64
	Round int
}

// Send instructs the driver to deliver a gossip to a destination process.
type Send struct {
	To     addr.Address
	Gossip Gossip
}

// RoundSend is one per-peer round envelope: every gossip this round owes a
// single destination, in emission order. The batched runtime ships each
// RoundSend as one wire frame instead of len(Gossips) separate envelopes.
type RoundSend struct {
	To      addr.Address
	Gossips []Gossip
}

// entry is one buffered gossip: (event, rate, round) of Figure 3.
type entry struct {
	ev    event.Event
	rate  float64
	round int
}

// Process is the pmcast protocol state of a single process.
type Process struct {
	self      addr.Address
	cfg       Config
	views     []DepthView // views[i−1] is the depth-i view
	selfMatch func(event.Event) bool

	gossips []map[event.ID]*entry
	seen    map[event.ID]struct{}

	// caches[i−1] memoizes per-event susceptibility profiles for depth i —
	// the matching engine's runtime state (matchcache.go). A gossip buffer
	// that lives k rounds pays for matching once, not k times.
	caches     []depthCache
	matchStats MatchStats
	adaptive   AdaptiveStats

	deliveries []event.Event
	received   int // gossips accepted (first receptions)
	sent       int // gossip messages emitted
}

// NewProcess builds a process from its per-depth views and its own interest
// predicate (used for HPDELIVER). views[i] is the depth-(i+1) view; a nil
// view is allowed for depths where the process has no populated group, it
// then forwards without gossiping at that depth.
func NewProcess(self addr.Address, cfg Config, views []DepthView, selfMatch func(event.Event) bool) (*Process, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(views) != cfg.D {
		return nil, fmt.Errorf("%w: got %d views for depth %d", ErrNoViews, len(views), cfg.D)
	}
	if selfMatch == nil {
		selfMatch = func(event.Event) bool { return false }
	}
	vs := make([]DepthView, len(views))
	copy(vs, views)
	g := make([]map[event.ID]*entry, cfg.D)
	for i := range g {
		g[i] = make(map[event.ID]*entry)
	}
	return &Process{
		self:      self,
		cfg:       cfg,
		views:     vs,
		selfMatch: selfMatch,
		gossips:   g,
		caches:    make([]depthCache, cfg.D),
		seen:      make(map[event.ID]struct{}),
	}, nil
}

// Self returns the process address.
func (p *Process) Self() addr.Address { return p.self }

// Config returns the algorithm configuration.
func (p *Process) Config() Config { return p.cfg }

// Multicast implements PMCAST (Figure 3 line 24): the event enters the
// process's root-depth buffer with the locally computed matching rate and a
// fresh round counter. With LocalDescent enabled, depths where only the
// publisher's own subtree is interested are skipped immediately
// (Section 3.2). The publisher delivers to itself when interested.
func (p *Process) Multicast(ev event.Event) error {
	if ev.ID().IsZero() {
		return ErrNilEvent
	}
	if _, dup := p.seen[ev.ID()]; dup {
		return nil
	}
	p.markSeen(ev)

	depth := 1
	if p.cfg.LocalDescent {
		for depth < p.cfg.D {
			prof := p.profileAt(ev, depth)
			if prof == nil {
				depth++
				continue
			}
			if prof.Lines == 1 && prof.SelfIn {
				// Skipped depths never buffer the event; drop the profile the
				// descent test just computed.
				p.evictProfile(ev.ID(), depth)
				depth++
				continue
			}
			break
		}
	}
	p.insert(ev, depth, p.rateAt(ev, depth), 0)
	return nil
}

// Receive implements RECEIVE (Figure 3 line 19). The first reception buffers
// the gossip at the depth it arrived for and delivers the event when it
// matches the process's own interests. Duplicates are dropped against the
// retained seen-set (see DESIGN.md §4.4).
func (p *Process) Receive(g Gossip) {
	if g.Depth < 1 || g.Depth > p.cfg.D {
		return
	}
	if _, dup := p.seen[g.Event.ID()]; dup {
		return
	}
	p.received++
	p.markSeen(g.Event)
	p.insert(g.Event, g.Depth, g.Rate, g.Round)
}

func (p *Process) markSeen(ev event.Event) {
	p.seen[ev.ID()] = struct{}{}
	if p.selfMatch(ev) {
		p.deliveries = append(p.deliveries, ev)
	}
}

func (p *Process) insert(ev event.Event, depth int, rate float64, round int) {
	p.gossips[depth-1][ev.ID()] = &entry{ev: ev, rate: rate, round: round}
}

// rateAt computes GETRATE(depth, event) through the susceptibility cache.
func (p *Process) rateAt(ev event.Event, depth int) float64 {
	prof := p.profileAt(ev, depth)
	if prof == nil {
		return 0
	}
	return prof.Rate
}

// Tick executes one gossip period (Figure 3 task GOSSIP): for every buffered
// event at every depth, either gossip to F random view members (susceptible
// ones actually receive a message) or, when the Pittel budget is exhausted,
// hand the event down to the next depth with a freshly computed rate.
// The returned sends are to be delivered by the driver; rng supplies the
// destination choices.
func (p *Process) Tick(rng *rand.Rand) []Send {
	p.matchStats.Rounds++
	var sends []Send
	for depth := 1; depth <= p.cfg.D; depth++ {
		buf := p.gossips[depth-1]
		if len(buf) == 0 {
			continue
		}
		v := p.views[depth-1]
		// One measured-loss evaluation per depth per round: every event at
		// this depth shares the view, so it shares the budget's loss term.
		loss := p.cfg.AssumedLoss
		if v != nil && p.cfg.adaptiveOn() {
			loss = p.measuredLossAt(v, loss)
		}
		for _, id := range sortedIDs(buf) {
			e := buf[id]
			if v == nil {
				p.demote(buf, id, e, depth)
				continue
			}
			size := v.Size()
			prof := p.profileAt(e.ev, depth)
			effRate, tunedSus := p.effectiveRate(prof, e, size)
			budget := p.roundBudget(size, effRate, loss)
			if e.round >= budget {
				p.demote(buf, id, e, depth)
				continue
			}
			if depth == p.cfg.D && p.cfg.LeafFloodRate > 0 && effRate >= p.cfg.LeafFloodRate {
				sends = p.floodLeaf(sends, v, prof, e, size, budget)
				delete(buf, id) // flooding replaces the leaf gossip rounds
				p.evictProfile(id, depth)
				continue
			}
			e.round++
			sends = p.gossipOnce(sends, v, prof, e, depth, size, tunedSus, loss, rng)
		}
	}
	return sends
}

// TickRound executes one gossip period exactly like Tick — same protocol
// steps, same RNG consumption — but groups the emitted sends by destination
// into per-peer round envelopes, in order of each destination's first
// appearance and preserving per-destination gossip order. Grouping is the
// whole batching contract: the sub-messages a peer receives, and their
// relative order, are identical to the unbatched flat sends. The returned
// round envelopes are also the engine's send-job handoff: the protocol
// stage owns this call, and each RoundSend becomes one job for whoever
// encodes and sends — the egress workers in a parallel configuration, the
// protocol goroutine itself in the serial one.
func (p *Process) TickRound(rng *rand.Rand) []RoundSend {
	sends := p.Tick(rng)
	if len(sends) == 0 {
		return nil
	}
	rounds := make([]RoundSend, 0, len(sends))
	slot := make(map[string]int, len(sends))
	for _, s := range sends {
		key := s.To.Key()
		i, ok := slot[key]
		if !ok {
			i = len(rounds)
			slot[key] = i
			rounds = append(rounds, RoundSend{To: s.To})
		}
		rounds[i].Gossips = append(rounds[i].Gossips, s.Gossip)
	}
	return rounds
}

// effectiveRate applies the Section 5.3 tuning: when the susceptible count
// sits below the threshold h, the first h view members count as susceptible
// too. It returns the effective rate and whether tuning is active. The
// susceptibility reads are bit tests against the event's cached profile.
func (p *Process) effectiveRate(prof *MatchProfile, e *entry, size int) (float64, bool) {
	if size == 0 {
		return 0, false
	}
	h := p.cfg.Threshold
	if h <= 0 {
		return e.rate, false
	}
	hits := int(math.Round(e.rate * float64(size)))
	if hits >= h {
		return e.rate, false
	}
	if h > size {
		h = size
	}
	// First h members plus the effectively interested ones beyond them.
	extra := 0
	for i := h; i < size; i++ {
		if prof.Bit(i) {
			extra++
		}
	}
	return float64(h+extra) / float64(size), true
}

// roundBudget evaluates Figure 3 line 7: T(size·rate, F·rate), loss-adjusted
// per Eq. 11. loss is AssumedLoss, or the view's measured loss when the
// adaptive loop found it worse (Tick computes it once per depth).
func (p *Process) roundBudget(size int, rate, loss float64) int {
	return analysis.PittelLossAdjustedRounds(
		float64(size)*rate, float64(p.cfg.F)*rate, p.cfg.C,
		loss, p.cfg.AssumedCrash)
}

// measuredLossCap bounds the loss fed into round budgets: estimates near 1
// (a peer behind a fresh partition reads as 100% loss) would blow the
// Eq. 11 adjustment toward unbounded round counts.
const measuredLossCap = 0.8

// measuredLossAt averages the measured loss across the view's peers with
// live estimates. The result only ever lengthens budgets: it replaces
// assumed when worse, never when better, so the adaptive loop degrades to
// the configured ε exactly where measurement is silent or rosier.
func (p *Process) measuredLossAt(v DepthView, assumed float64) float64 {
	size := v.Size()
	selfIdx := v.SelfIndex()
	sum, cnt := 0.0, 0
	for i := 0; i < size; i++ {
		if i == selfIdx {
			continue
		}
		if l, ok := p.cfg.PeerLoss(v.MemberAt(i)); ok {
			sum += l
			cnt++
		}
	}
	if cnt == 0 {
		return assumed
	}
	mean := sum / float64(cnt)
	if mean > measuredLossCap {
		mean = measuredLossCap
	}
	if mean <= assumed {
		return assumed
	}
	p.adaptive.BudgetDepths++
	return mean
}

// gossipOnce chooses F distinct destinations at random from the view
// (excluding the process itself) and emits sends to the susceptible ones —
// susceptibility answered by the event's cached profile. With the adaptive
// loop on, the round extends the same Fisher–Yates walk by extra targets,
// never beyond the view. Two gates decide how much of the boost to spend:
// when the view's mean measured loss (viewLoss, the same per-depth figure
// the round budget consumed) crosses the threshold, the whole view is
// under-provisioned and the boost restores the Eq. 11 effective fanout;
// otherwise one compensating draw is added per susceptible pick that sits
// behind an individually lossy link — spend targeted where only some links
// measure bad. The extension is susceptibility-aware: it keeps walking
// until `extra` susceptible targets joined the prefix (or the view ran
// out), because a draw that lands on an uninterested line emits nothing —
// in sparse-audience views (a depth-1 event headed for one subtree) blind
// extra draws would mostly be wasted exactly where a burst on a delegate
// link can black out the whole subtree. With the loop off, the RNG
// consumption is exactly the untuned algorithm's.
func (p *Process) gossipOnce(sends []Send, v DepthView, prof *MatchProfile, e *entry, depth, size int, tuned bool, viewLoss float64, rng *rand.Rand) []Send {
	selfIdx := v.SelfIndex()
	pool := size
	if selfIdx >= 0 {
		pool--
	}
	if pool <= 0 {
		return sends
	}
	f := p.cfg.F
	if f > pool {
		f = pool
	}
	idxs := viewScratch(size, selfIdx)
	k := samplePrefix(rng, idxs, 0, f)
	if p.cfg.adaptiveOn() && k < len(idxs) {
		threshold := p.cfg.adaptiveLossThreshold()
		extra := 0
		if viewLoss >= threshold {
			// Restore the effective fanout Eq. 11 discounts: F/(1−ε)
			// targets keep F expected survivors, so the measured loss buys
			// ceil(F·ε/(1−ε)) extra draws — one at the ~10% regimes, more
			// only when the view measures substantially worse.
			extra = int(math.Ceil(float64(f) * viewLoss / (1 - viewLoss)))
			if extra < 1 {
				extra = 1
			}
			if boost := p.cfg.adaptiveBoost(); extra > boost {
				extra = boost
			}
		} else {
			lossy := 0
			for _, idx := range idxs[:k] {
				if !p.susceptibleAt(prof, idx, tuned) {
					continue
				}
				if l, ok := p.cfg.PeerLoss(v.MemberAt(idx)); ok && l >= threshold {
					lossy++
				}
			}
			extra = lossy
			if boost := p.cfg.adaptiveBoost(); extra > boost {
				extra = boost
			}
		}
		if extra > 0 {
			before := k
			added := 0
			for added < extra && k < len(idxs) {
				k = samplePrefix(rng, idxs, k, 1)
				if p.susceptibleAt(prof, idxs[k-1], tuned) {
					added++
				}
			}
			if k > before {
				p.adaptive.Boosts++
				p.adaptive.ExtraTargets += added
			}
		}
	}
	for _, idx := range idxs[:k] {
		if !p.susceptibleAt(prof, idx, tuned) {
			continue
		}
		p.sent++
		sends = append(sends, Send{
			To: v.MemberAt(idx),
			Gossip: Gossip{
				Event: e.ev,
				Depth: depth,
				Rate:  e.rate,
				Round: e.round,
			},
		})
	}
	return sends
}

// susceptibleAt answers one view slot's susceptibility: the cached profile
// bit, widened by the Section 5.3 first-h rule when tuning is active.
func (p *Process) susceptibleAt(prof *MatchProfile, idx int, tuned bool) bool {
	if prof.Bit(idx) {
		return true
	}
	return tuned && idx < p.cfg.Threshold
}

// floodLeaf sends the event once to every susceptible leaf neighbor (the
// Section 6 dense-interest extension). The carried round counter equals the
// receiver's budget, so receivers treat the event as exhausted and do not
// flood again.
func (p *Process) floodLeaf(sends []Send, v DepthView, prof *MatchProfile, e *entry, size, budget int) []Send {
	selfIdx := v.SelfIndex()
	for i := 0; i < size; i++ {
		if i == selfIdx || !prof.Bit(i) {
			continue
		}
		p.sent++
		sends = append(sends, Send{
			To: v.MemberAt(i),
			Gossip: Gossip{
				Event: e.ev,
				Depth: p.cfg.D,
				Rate:  e.rate,
				Round: budget,
			},
		})
	}
	return sends
}

// demote implements Figure 3 lines 16–18: drop the event at this depth and,
// above the leaves, reinsert it one depth deeper with a fresh rate and a
// zeroed round counter. The departed depth's cached profile goes with it.
func (p *Process) demote(buf map[event.ID]*entry, id event.ID, e *entry, depth int) {
	delete(buf, id)
	p.evictProfile(id, depth)
	if depth < p.cfg.D {
		p.insert(e.ev, depth+1, p.rateAt(e.ev, depth+1), 0)
	}
}

// sortedIDs returns the buffer's event IDs in a deterministic order so that
// simulation runs are reproducible for a fixed seed (Go map iteration order
// is randomized).
func sortedIDs(buf map[event.ID]*entry) []event.ID {
	ids := make([]event.ID, 0, len(buf))
	for id := range buf {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Origin != ids[j].Origin {
			return ids[i].Origin < ids[j].Origin
		}
		return ids[i].Seq < ids[j].Seq
	})
	return ids
}

// sampleIndices draws k distinct indices uniformly from [0, size) \ {excl}
// via a partial Fisher–Yates over a scratch slice.
func sampleIndices(rng *rand.Rand, size, excl, k int) []int {
	idxs := viewScratch(size, excl)
	return idxs[:samplePrefix(rng, idxs, 0, k)]
}

// viewScratch builds the candidate slice [0, size) \ {excl}.
func viewScratch(size, excl int) []int {
	idxs := make([]int, 0, size)
	for i := 0; i < size; i++ {
		if i != excl {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// samplePrefix extends the uniformly-sampled prefix of idxs from have to
// have+k elements (clamped to the slice) by continuing the partial
// Fisher–Yates walk, and returns the new prefix length. Continuing the same
// walk is what lets the adaptive boost add draws without re-sampling — and
// without consuming any RNG when it never runs.
func samplePrefix(rng *rand.Rand, idxs []int, have, k int) int {
	if k > len(idxs)-have {
		k = len(idxs) - have
	}
	for i := have; i < have+k; i++ {
		j := i + rng.Intn(len(idxs)-i)
		idxs[i], idxs[j] = idxs[j], idxs[i]
	}
	return have + k
}

// AdoptState carries the gossip buffers, seen-set, pending deliveries and
// counters of a predecessor process across a view rebuild. Without it every
// membership change wipes all in-flight disseminations fleet-wide — under
// churn that turns steady version movement into mass delivery failure (the
// chaos harness measures exactly this). Buffered entries keep their carried
// rate and round, as a received gossip would.
func (p *Process) AdoptState(old *Process) {
	if old == nil || len(old.gossips) != len(p.gossips) {
		return
	}
	for d := range old.gossips {
		for id, e := range old.gossips[d] {
			if _, dup := p.gossips[d][id]; !dup {
				p.gossips[d][id] = e
			}
		}
	}
	for id := range old.seen {
		p.seen[id] = struct{}{}
	}
	p.adoptCaches(old)
	p.deliveries = append(p.deliveries, old.deliveries...)
	p.sent += old.sent
	p.received += old.received
	p.adaptive.Boosts += old.adaptive.Boosts
	p.adaptive.ExtraTargets += old.adaptive.ExtraTargets
	p.adaptive.BudgetDepths += old.adaptive.BudgetDepths
}

// Deliveries drains the events delivered (HPDELIVER) since the last call.
func (p *Process) Deliveries() []event.Event {
	out := p.deliveries
	p.deliveries = nil
	return out
}

// HasSeen reports whether the process ever received or multicast the event.
func (p *Process) HasSeen(id event.ID) bool {
	_, ok := p.seen[id]
	return ok
}

// Pending returns the number of events currently buffered across all depths;
// a dissemination has quiesced when every process reports 0.
func (p *Process) Pending() int {
	n := 0
	for _, buf := range p.gossips {
		n += len(buf)
	}
	return n
}

// Stats reports protocol counters: messages emitted and first receptions.
func (p *Process) Stats() (sent, received int) { return p.sent, p.received }

// Adaptive reports what the measured-loss tuning loop did so far.
func (p *Process) Adaptive() AdaptiveStats { return p.adaptive }

// Forget drops an event from the seen-set (retention GC for long-running
// nodes; the paper's passive garbage collection only bounds buffer rounds).
func (p *Process) Forget(id event.ID) {
	delete(p.seen, id)
	for _, buf := range p.gossips {
		delete(buf, id)
	}
	for d := range p.caches {
		p.evictProfile(id, d+1)
	}
}

// Reset clears all protocol state (buffers, seen-set, deliveries, counters)
// so the process can be reused across simulation runs without rebuilding
// views.
func (p *Process) Reset() {
	for _, buf := range p.gossips {
		clear(buf)
	}
	for i := range p.caches {
		p.caches[i] = depthCache{}
	}
	p.matchStats = MatchStats{}
	p.adaptive = AdaptiveStats{}
	clear(p.seen)
	p.deliveries = nil
	p.received = 0
	p.sent = 0
}
