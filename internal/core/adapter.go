package core

import (
	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

// TreeView adapts one tree.View to the DepthView interface, flattening the
// view lines into a deterministic member order (line order, then election
// rank) and matching members through the regrouped subtree summaries.
type TreeView struct {
	members   []addr.Address
	lineOf    []int // member index → line index
	summaries []*interest.Summary
	selfIndex int
	selfLine  int
}

var _ DepthView = (*TreeView)(nil)

// NewTreeView builds the adapter for the given process. A nil view yields a
// nil adapter (the process forwards through that depth without gossiping).
func NewTreeView(v *tree.View, self addr.Address) *TreeView {
	if v == nil {
		return nil
	}
	tv := &TreeView{
		members:   make([]addr.Address, 0, v.GroupSize()),
		lineOf:    make([]int, 0, v.GroupSize()),
		summaries: make([]*interest.Summary, len(v.Lines)),
		selfIndex: -1,
		selfLine:  -1,
	}
	for li, line := range v.Lines {
		tv.summaries[li] = line.Summary
		for _, m := range line.Delegates {
			if m.Equal(self) {
				tv.selfIndex = len(tv.members)
				tv.selfLine = li
			}
			tv.members = append(tv.members, m)
			tv.lineOf = append(tv.lineOf, li)
		}
	}
	if tv.selfLine < 0 {
		// The process may not be a member of this depth's group (e.g. a
		// publisher that is no delegate); its own subgroup is still the line
		// whose prefix digit matches its address.
		depthDigit := v.Prefix.Len() + 1
		if depthDigit <= self.Depth() {
			for li, line := range v.Lines {
				if line.Infix == self.Digit(depthDigit) {
					tv.selfLine = li
					break
				}
			}
		}
	}
	return tv
}

// Size implements DepthView.
func (tv *TreeView) Size() int { return len(tv.members) }

// MemberAt implements DepthView.
func (tv *TreeView) MemberAt(i int) addr.Address { return tv.members[i] }

// SelfIndex implements DepthView.
func (tv *TreeView) SelfIndex() int { return tv.selfIndex }

// SusceptibleAt implements DepthView: the member's subtree summary decides.
func (tv *TreeView) SusceptibleAt(ev event.Event, i int) bool {
	return tv.summaries[tv.lineOf[i]].Matches(ev)
}

// Rate implements DepthView (GETRATE).
func (tv *TreeView) Rate(ev event.Event) float64 {
	if len(tv.members) == 0 {
		return 0
	}
	hits := 0
	for _, li := range tv.lineOf {
		if tv.summaries[li].Matches(ev) {
			hits++
		}
	}
	return float64(hits) / float64(len(tv.members))
}

// MatchingSubgroups implements DepthView.
func (tv *TreeView) MatchingSubgroups(ev event.Event) (int, bool) {
	total, selfIn := 0, false
	for li, s := range tv.summaries {
		if s.Matches(ev) {
			total++
			if li == tv.selfLine {
				selfIn = true
			}
		}
	}
	return total, selfIn
}

// BuildProcess assembles a Process for a tree member: per-depth TreeViews
// plus the member's own subscription as delivery predicate.
func BuildProcess(t *tree.Tree, self addr.Address, cfg Config) (*Process, error) {
	m, ok := t.Member(self)
	if !ok {
		return nil, ErrUnknownSelf(self)
	}
	cfg.D = t.Depth()
	views := make([]DepthView, t.Depth())
	for depth := 1; depth <= t.Depth(); depth++ {
		tv := NewTreeView(t.ViewAt(self, depth), self)
		if tv == nil {
			views[depth-1] = nil
			continue
		}
		views[depth-1] = tv
	}
	sub := m.Sub
	return NewProcess(self, cfg, views, sub.Matches)
}

// ErrUnknownSelf wraps the unknown-member condition with the address.
func ErrUnknownSelf(a addr.Address) error {
	return &unknownSelfError{addr: a}
}

type unknownSelfError struct{ addr addr.Address }

func (e *unknownSelfError) Error() string {
	return "core: process " + e.addr.String() + " is not a tree member"
}
