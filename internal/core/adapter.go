package core

import (
	"pmcast/internal/addr"
	"pmcast/internal/event"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

// TreeView adapts one tree.View to the DepthView interface, flattening the
// view lines into a deterministic member order (line order, then election
// rank) and matching members through the compiled forms of the regrouped
// subtree summaries. It implements MatchProfiler — one compiled evaluation
// per distinct line language, expanded to the lines' member ranges — and
// Generational, carrying
// the tree node generation so cached profiles survive process rebuilds that
// did not touch this view's prefix.
type TreeView struct {
	members   []addr.Address
	lineOf    []int // member index → line index
	lineStart []int // line index → first member index (len lines+1)
	summaries []*interest.Summary
	compiled  []*interest.CompiledMatcher
	// Sibling subgroups whose folds converge — the norm under skewed
	// subscription popularity — share one interned compiled summary, and
	// pointer equality is language equality, so each distinct matcher is
	// evaluated once per event: dupOf maps every line to its canonical
	// line, distinct lists the canonical lines, scratch holds their match
	// results for the duration of one query.
	dupOf    []int
	distinct []int
	scratch  []bool
	selfIndex int
	selfLine  int
	gen       uint64
}

var (
	_ DepthView     = (*TreeView)(nil)
	_ MatchProfiler = (*TreeView)(nil)
	_ Generational  = (*TreeView)(nil)
)

// NewTreeView builds the adapter for the given process. A nil view yields a
// nil adapter (the process forwards through that depth without gossiping).
func NewTreeView(v *tree.View, self addr.Address) *TreeView {
	if v == nil {
		return nil
	}
	tv := &TreeView{
		members:   make([]addr.Address, 0, v.GroupSize()),
		lineOf:    make([]int, 0, v.GroupSize()),
		lineStart: make([]int, len(v.Lines)+1),
		summaries: make([]*interest.Summary, len(v.Lines)),
		compiled:  make([]*interest.CompiledMatcher, len(v.Lines)),
		selfIndex: -1,
		selfLine:  -1,
		gen:       v.Gen,
	}
	for li, line := range v.Lines {
		tv.summaries[li] = line.Summary
		tv.compiled[li] = line.Compiled
		if tv.compiled[li] == nil && line.Summary != nil {
			// Hand-built views (tests, tools) may lack the compiled form;
			// compile here so the adapter always runs the engine's path.
			tv.compiled[li] = interest.CompileSummary(line.Summary)
		}
		tv.lineStart[li] = len(tv.members)
		for _, m := range line.Delegates {
			if m.Equal(self) {
				tv.selfIndex = len(tv.members)
				tv.selfLine = li
			}
			tv.members = append(tv.members, m)
			tv.lineOf = append(tv.lineOf, li)
		}
	}
	tv.lineStart[len(v.Lines)] = len(tv.members)
	tv.dupOf = make([]int, len(v.Lines))
	tv.distinct = make([]int, 0, len(v.Lines))
	tv.scratch = make([]bool, len(v.Lines))
	for li, cm := range tv.compiled {
		canon := li
		for _, dj := range tv.distinct {
			if tv.compiled[dj] == cm {
				canon = dj
				break
			}
		}
		tv.dupOf[li] = canon
		if canon == li {
			tv.distinct = append(tv.distinct, li)
		}
	}
	if tv.selfLine < 0 {
		// The process may not be a member of this depth's group (e.g. a
		// publisher that is no delegate); its own subgroup is still the line
		// whose prefix digit matches its address.
		depthDigit := v.Prefix.Len() + 1
		if depthDigit <= self.Depth() {
			for li, line := range v.Lines {
				if line.Infix == self.Digit(depthDigit) {
					tv.selfLine = li
					break
				}
			}
		}
	}
	return tv
}

// Size implements DepthView.
func (tv *TreeView) Size() int { return len(tv.members) }

// MemberAt implements DepthView.
func (tv *TreeView) MemberAt(i int) addr.Address { return tv.members[i] }

// SelfIndex implements DepthView.
func (tv *TreeView) SelfIndex() int { return tv.selfIndex }

// SusceptibleAt implements DepthView: the member's compiled subtree summary
// decides.
func (tv *TreeView) SusceptibleAt(ev event.Event, i int) bool {
	return tv.compiled[tv.lineOf[i]].Matches(ev)
}

// evalDistinct evaluates each distinct compiled matcher once against the
// event, leaving per-line results in scratch (indexed through dupOf).
func (tv *TreeView) evalDistinct(ev event.Event, mc *interest.MatchCounter) {
	for _, li := range tv.distinct {
		tv.scratch[li] = tv.compiled[li].MatchesCounted(ev, mc)
	}
}

// Rate implements DepthView (GETRATE): one compiled evaluation per distinct
// line language, weighted by the lines' delegate counts — the same value
// the per-member walk produced, at a fraction of the evaluations.
func (tv *TreeView) Rate(ev event.Event) float64 {
	if len(tv.members) == 0 {
		return 0
	}
	tv.evalDistinct(ev, nil)
	hits := 0
	for li := range tv.compiled {
		if tv.scratch[tv.dupOf[li]] {
			hits += tv.lineStart[li+1] - tv.lineStart[li]
		}
	}
	return float64(hits) / float64(len(tv.members))
}

// MatchingSubgroups implements DepthView.
func (tv *TreeView) MatchingSubgroups(ev event.Event) (int, bool) {
	tv.evalDistinct(ev, nil)
	total, selfIn := 0, false
	for li := range tv.compiled {
		if tv.scratch[tv.dupOf[li]] {
			total++
			if li == tv.selfLine {
				selfIn = true
			}
		}
	}
	return total, selfIn
}

// Generation implements Generational: the tree node generation of the view.
func (tv *TreeView) Generation() uint64 { return tv.gen }

// Profile implements MatchProfiler: the whole susceptibility profile in one
// pass, each distinct line language evaluated exactly once.
func (tv *TreeView) Profile(ev event.Event, p *MatchProfile) {
	size := len(tv.members)
	p.Ensure(size)
	tv.evalDistinct(ev, &p.Cost)
	hits, lines, selfIn := 0, 0, false
	for li := range tv.compiled {
		if !tv.scratch[tv.dupOf[li]] {
			continue
		}
		lines++
		if li == tv.selfLine {
			selfIn = true
		}
		lo, hi := tv.lineStart[li], tv.lineStart[li+1]
		p.SetRange(lo, hi)
		hits += hi - lo
	}
	p.Hits, p.Lines, p.SelfIn = hits, lines, selfIn
	if size > 0 {
		p.Rate = float64(hits) / float64(size)
	} else {
		p.Rate = 0
	}
}

// BuildProcess assembles a Process for a tree member: per-depth TreeViews
// plus the member's own compiled subscription as delivery predicate.
func BuildProcess(t *tree.Tree, self addr.Address, cfg Config) (*Process, error) {
	m, ok := t.Member(self)
	if !ok {
		return nil, ErrUnknownSelf(self)
	}
	cfg.D = t.Depth()
	views := make([]DepthView, t.Depth())
	for depth := 1; depth <= t.Depth(); depth++ {
		tv := NewTreeView(t.ViewAt(self, depth), self)
		if tv == nil {
			views[depth-1] = nil
			continue
		}
		views[depth-1] = tv
	}
	selfMatch := interest.Compile(m.Sub)
	return NewProcess(self, cfg, views, selfMatch.Matches)
}

// ErrUnknownSelf wraps the unknown-member condition with the address.
func ErrUnknownSelf(a addr.Address) error {
	return &unknownSelfError{addr: a}
}

type unknownSelfError struct{ addr addr.Address }

func (e *unknownSelfError) Error() string {
	return "core: process " + e.addr.String() + " is not a tree member"
}
