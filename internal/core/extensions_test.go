package core

import (
	"math/rand"
	"testing"

	"pmcast/internal/addr"
	"pmcast/internal/interest"
	"pmcast/internal/tree"
)

// leafGroup builds a single-depth group of size n where everybody wants b=1.
func leafGroup(t *testing.T, n int, cfg Config) map[string]*Process {
	t.Helper()
	space := addr.MustRegular(n, 1)
	members := make([]tree.Member, n)
	for i := range members {
		members[i] = tree.Member{
			Addr: addr.New(i),
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(1)),
		}
	}
	tr, err := tree.Build(tree.Config{Space: space, R: 2}, members)
	if err != nil {
		t.Fatal(err)
	}
	procs := make(map[string]*Process, n)
	for _, m := range members {
		p, err := BuildProcess(tr, m.Addr, cfg)
		if err != nil {
			t.Fatal(err)
		}
		procs[m.Addr.Key()] = p
	}
	return procs
}

func TestLeafFloodDeliversInOneTick(t *testing.T) {
	procs := leafGroup(t, 8, Config{F: 1, LeafFloodRate: 0.5})
	pub := procs["0"]
	ev := bEvent(1, 1)
	if err := pub.Multicast(ev); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	sends := pub.Tick(rng)
	// Flooding: all 7 other (susceptible) members reached in one tick.
	if len(sends) != 7 {
		t.Fatalf("flood sends = %d, want 7", len(sends))
	}
	if pub.Pending() != 0 {
		t.Error("flooded entry should be dropped immediately")
	}
	// Receivers must not re-flood: their entries are exhausted on arrival.
	total := 0
	for _, s := range sends {
		dst := procs[s.To.Key()]
		dst.Receive(s.Gossip)
	}
	for key, p := range procs {
		if key == "0" {
			continue
		}
		total += len(p.Tick(rng))
		p.Tick(rng)
	}
	if total != 0 {
		t.Errorf("flood receivers re-gossiped %d sends", total)
	}
	// Everyone delivered.
	for key, p := range procs {
		if !p.HasSeen(ev.ID()) {
			t.Errorf("process %s missed flooded event", key)
		}
	}
}

func TestLeafFloodRespectsRateGate(t *testing.T) {
	// Rate gate above actual density: normal gossip applies (F=1 → at most
	// one send per tick).
	procs := leafGroup(t, 8, Config{F: 1, LeafFloodRate: 1.5})
	pub := procs["0"]
	if err := pub.Multicast(bEvent(1, 1)); err != nil {
		t.Fatal(err)
	}
	sends := pub.Tick(rand.New(rand.NewSource(1)))
	if len(sends) > 1 {
		t.Errorf("rate-gated flood emitted %d sends, want ≤ 1 (plain gossip)", len(sends))
	}
	if pub.Pending() != 1 {
		t.Error("plain gossip entry should stay buffered")
	}
}

func TestLeafFloodOnlyTouchesSusceptible(t *testing.T) {
	// Mixed interests: flooding must still skip uninterested leaves.
	space := addr.MustRegular(6, 1)
	members := make([]tree.Member, 6)
	for i := range members {
		want := int64(1)
		if i >= 3 {
			want = 2
		}
		members[i] = tree.Member{
			Addr: addr.New(i),
			Sub:  interest.NewSubscription().Where("b", interest.EqInt(want)),
		}
	}
	tr, err := tree.Build(tree.Config{Space: space, R: 2}, members)
	if err != nil {
		t.Fatal(err)
	}
	pub, err := BuildProcess(tr, addr.New(0), Config{F: 1, LeafFloodRate: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if err := pub.Multicast(bEvent(1, 1)); err != nil {
		t.Fatal(err)
	}
	sends := pub.Tick(rand.New(rand.NewSource(2)))
	if len(sends) != 2 { // members 1 and 2 (self is 0; 3–5 uninterested)
		t.Fatalf("flood sends = %d, want 2", len(sends))
	}
	for _, s := range sends {
		if s.To.Digit(1) >= 3 {
			t.Errorf("flood reached uninterested member %s", s.To)
		}
	}
}
