// Package baseline implements the three dissemination alternatives the
// paper's introduction contrasts pmcast against:
//
//  1. Flood gossip — a gossip *broadcast* (pbcast/lpbcast style): events
//     reach everybody and are filtered upon reception. Reliable but every
//     uninterested process pays the full reception cost.
//  2. Genuine multicast gossip — interests are checked *before* gossiping and
//     only interested processes participate. With partial membership views,
//     interested processes get isolated when no view neighbor shares the
//     interest ("a crucial intermediate process might not be interested").
//  3. Deterministic tree multicast — Astrolabe-style best-effort forwarding
//     down the delegate tree: cheap and exact in stable phases, fragile
//     under loss and crashes (one lost edge severs a subtree).
//
// All three run the same single-event, Bernoulli-audience, ε/τ environment
// as internal/sim, so results are directly comparable.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"pmcast/internal/analysis"
)

// ErrBadParams reports invalid baseline parameters.
var ErrBadParams = errors.New("baseline: invalid parameters")

// Result captures one baseline dissemination, with the same semantics as
// sim.Result so experiment tables can mix columns.
type Result struct {
	Interested           int
	DeliveredInterested  int
	Uninterested         int
	InfectedUninterested int
	Rounds               int
	Messages             int
}

// DeliveryRate returns the fraction of the audience that delivered.
func (r Result) DeliveryRate() float64 {
	if r.Interested == 0 {
		return 1
	}
	return float64(r.DeliveredInterested) / float64(r.Interested)
}

// UninterestedReceptionRate returns the fraction of uninterested processes
// that received the event.
func (r Result) UninterestedReceptionRate() float64 {
	if r.Uninterested == 0 {
		return 0
	}
	return float64(r.InfectedUninterested) / float64(r.Uninterested)
}

// FloodParams configures the gossip-broadcast baseline.
type FloodParams struct {
	// N is the flat group size.
	N int
	// F is the gossip fanout.
	F int
	// C is Pittel's constant for the round budget T(N, F).
	C float64
	// Eps, Tau: message loss and crash probability.
	Eps, Tau float64
}

func (p FloodParams) validate() error {
	if p.N < 1 || p.F < 1 {
		return fmt.Errorf("%w: n=%d F=%d", ErrBadParams, p.N, p.F)
	}
	if p.Eps < 0 || p.Eps >= 1 || p.Tau < 0 || p.Tau >= 1 {
		return fmt.Errorf("%w: ε=%g τ=%g", ErrBadParams, p.Eps, p.Tau)
	}
	return nil
}

// RunFlood simulates one gossip broadcast with filtering on reception: every
// process relays every received event for the Pittel-bounded number of
// rounds, regardless of anyone's interests.
func RunFlood(p FloodParams, pd float64, rng *rand.Rand) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if pd < 0 || pd > 1 {
		return Result{}, fmt.Errorf("%w: pd=%g", ErrBadParams, pd)
	}
	interested, crashed := drawPopulation(p.N, pd, p.Tau, rng)
	budget := analysis.PittelLossAdjustedRounds(float64(p.N), float64(p.F), p.C, p.Eps, p.Tau)

	infected := make([]bool, p.N)
	origin := alivePick(rng, crashed)
	infected[origin] = true
	frontier := []int{origin}
	res := Result{}
	for round := 0; round < budget && len(frontier) > 0; round++ {
		res.Rounds++
		var fresh []int
		for _, src := range carriers(infected, crashed) {
			for i := 0; i < p.F; i++ {
				dst := rng.Intn(p.N)
				if dst == src {
					continue
				}
				res.Messages++
				if p.Eps > 0 && rng.Float64() < p.Eps {
					continue
				}
				if crashed[dst] || infected[dst] {
					continue
				}
				infected[dst] = true
				fresh = append(fresh, dst)
			}
		}
		frontier = fresh
	}
	tally(&res, infected, interested, origin)
	return res, nil
}

// GenuineParams configures the genuine-multicast baseline: gossip restricted
// to interested processes, over uniform partial views.
type GenuineParams struct {
	// N is the flat group size.
	N int
	// ViewSize is how many random group members each process knows (with
	// their interests). The paper notes genuineness only works reliably
	// under the "rather unrealistic" assumption of global knowledge; shrink
	// the view to observe isolation.
	ViewSize int
	// F is the gossip fanout.
	F int
	// C is Pittel's constant for the round budget T(N·pd, F).
	C float64
	// Eps, Tau: message loss and crash probability.
	Eps, Tau float64
}

func (p GenuineParams) validate() error {
	if p.N < 1 || p.F < 1 || p.ViewSize < 1 {
		return fmt.Errorf("%w: n=%d F=%d view=%d", ErrBadParams, p.N, p.F, p.ViewSize)
	}
	if p.Eps < 0 || p.Eps >= 1 || p.Tau < 0 || p.Tau >= 1 {
		return fmt.Errorf("%w: ε=%g τ=%g", ErrBadParams, p.Eps, p.Tau)
	}
	return nil
}

// RunGenuine simulates one genuine multicast: each infected process gossips
// only to the interested members of its partial view. Uninterested processes
// never receive anything — at the price of isolating audience members whose
// interested neighbors are unreachable.
func RunGenuine(p GenuineParams, pd float64, rng *rand.Rand) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if pd < 0 || pd > 1 {
		return Result{}, fmt.Errorf("%w: pd=%g", ErrBadParams, pd)
	}
	interested, crashed := drawPopulation(p.N, pd, p.Tau, rng)

	// Uniform partial views, drawn per process per run.
	viewSize := min(p.ViewSize, p.N-1)
	views := make([][]int, p.N)
	for i := range views {
		views[i] = sampleDistinct(rng, p.N, i, viewSize)
	}

	audience := 0
	for _, b := range interested {
		if b {
			audience++
		}
	}
	budget := analysis.PittelLossAdjustedRounds(float64(audience), float64(p.F), p.C, p.Eps, p.Tau)

	infected := make([]bool, p.N)
	origin := alivePick(rng, crashed)
	infected[origin] = true
	res := Result{}
	for round := 0; round < budget; round++ {
		res.Rounds++
		spread := false
		for _, src := range carriers(infected, crashed) {
			// Candidates: interested members of src's view.
			var cands []int
			for _, m := range views[src] {
				if interested[m] {
					cands = append(cands, m)
				}
			}
			if len(cands) == 0 {
				continue
			}
			for i := 0; i < p.F; i++ {
				dst := cands[rng.Intn(len(cands))]
				res.Messages++
				if p.Eps > 0 && rng.Float64() < p.Eps {
					continue
				}
				if crashed[dst] || infected[dst] {
					continue
				}
				infected[dst] = true
				spread = true
			}
		}
		if !spread && round > 0 {
			break
		}
	}
	tally(&res, infected, interested, origin)
	return res, nil
}

// DetTreeParams configures the deterministic tree-multicast baseline over
// the same regular delegate tree as pmcast.
type DetTreeParams struct {
	// A, D, R: regular tree arity, depth, redundancy (delegates tried per
	// subgroup before giving up on it).
	A, D, R int
	// Eps, Tau: message loss and crash probability.
	Eps, Tau float64
}

func (p DetTreeParams) validate() error {
	if p.D < 1 || p.R < 1 || p.A < p.R {
		return fmt.Errorf("%w: a=%d d=%d R=%d", ErrBadParams, p.A, p.D, p.R)
	}
	if p.Eps < 0 || p.Eps >= 1 || p.Tau < 0 || p.Tau >= 1 {
		return fmt.Errorf("%w: ε=%g τ=%g", ErrBadParams, p.Eps, p.Tau)
	}
	return nil
}

// RunDeterministicTree simulates one deterministic best-effort multicast: the
// event descends the delegate tree, each interested subtree being handed to
// its first responsive delegate (up to R attempts, no acknowledgements, no
// gossip). In stable phases this is cheap and exact; a lost hand-off severs
// the whole subtree, which is the robustness gap pmcast closes (Section 6,
// Astrolabe comparison).
func RunDeterministicTree(p DetTreeParams, pd float64, rng *rand.Rand) (Result, error) {
	if err := p.validate(); err != nil {
		return Result{}, err
	}
	if pd < 0 || pd > 1 {
		return Result{}, fmt.Errorf("%w: pd=%g", ErrBadParams, pd)
	}
	n := 1
	for i := 0; i < p.D; i++ {
		n *= p.A
	}
	interested, crashed := drawPopulation(n, pd, p.Tau, rng)

	// subtreeInterest[l][s] for prefix length l.
	levels := make([][]bool, p.D+1)
	levels[p.D] = interested
	for l := p.D - 1; l >= 0; l-- {
		size := 1
		for i := 0; i < l; i++ {
			size *= p.A
		}
		levels[l] = make([]bool, size)
		for s := range levels[l] {
			for c := 0; c < p.A; c++ {
				if levels[l+1][s*p.A+c] {
					levels[l][s] = true
					break
				}
			}
		}
	}
	strideAt := func(l int) int {
		out := 1
		for i := 0; i < p.D-l; i++ {
			out *= p.A
		}
		return out
	}

	res := Result{Rounds: p.D}
	infected := make([]bool, n)
	origin := alivePick(rng, crashed)
	infected[origin] = true

	// Recursive descent: deliver to every interested subtree of prefix s at
	// level l, entered by a process already holding the event.
	var descend func(s, l int)
	descend = func(s, l int) {
		if l == p.D {
			return
		}
		for c := 0; c < p.A; c++ {
			child := s*p.A + c
			if !levels[l+1][child] {
				continue
			}
			// Try the child's delegates in election order; a subtree has at
			// most min(R, subtree size) delegates.
			base := child * strideAt(l+1)
			attempts := min(p.R, strideAt(l+1))
			for attempt := 0; attempt < attempts; attempt++ {
				dst := base + attempt
				res.Messages++
				if p.Eps > 0 && rng.Float64() < p.Eps {
					continue
				}
				if crashed[dst] {
					continue
				}
				if !infected[dst] {
					infected[dst] = true
				}
				descend(child, l+1)
				break
			}
		}
	}
	descend(0, 0)
	// The descent delivers to delegates; leaves of an interested leaf-group
	// are reached by its delegate fanning out locally.
	for g := 0; g < n/p.A; g++ {
		// Find an infected delegate of leaf group g.
		var carrier = -1
		for j := 0; j < p.R; j++ {
			if infected[g*p.A+j] && !crashed[g*p.A+j] {
				carrier = g*p.A + j
				break
			}
		}
		if carrier < 0 {
			continue
		}
		for c := 0; c < p.A; c++ {
			dst := g*p.A + c
			if dst == carrier || !interested[dst] {
				continue
			}
			res.Messages++
			if p.Eps > 0 && rng.Float64() < p.Eps {
				continue
			}
			if crashed[dst] || infected[dst] {
				continue
			}
			infected[dst] = true
		}
	}
	tally(&res, infected, interested, origin)
	return res, nil
}

// drawPopulation samples interests and crashes.
func drawPopulation(n int, pd, tau float64, rng *rand.Rand) (interested, crashed []bool) {
	interested = make([]bool, n)
	crashed = make([]bool, n)
	for i := 0; i < n; i++ {
		interested[i] = rng.Float64() < pd
		crashed[i] = tau > 0 && rng.Float64() < tau
	}
	return interested, crashed
}

// alivePick returns a uniformly random non-crashed index.
func alivePick(rng *rand.Rand, crashed []bool) int {
	for {
		i := rng.Intn(len(crashed))
		if !crashed[i] {
			return i
		}
	}
}

// carriers lists alive infected processes in index order (deterministic).
func carriers(infected, crashed []bool) []int {
	var out []int
	for i, b := range infected {
		if b && !crashed[i] {
			out = append(out, i)
		}
	}
	return out
}

// tally fills the audience counters of a result.
func tally(res *Result, infected, interested []bool, origin int) {
	for i := range infected {
		if interested[i] {
			res.Interested++
			if infected[i] {
				res.DeliveredInterested++
			}
		} else {
			res.Uninterested++
			if infected[i] && i != origin {
				res.InfectedUninterested++
			}
		}
	}
}

// sampleDistinct draws k distinct values from [0,n) \ {excl}.
func sampleDistinct(rng *rand.Rand, n, excl, k int) []int {
	out := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for len(out) < k && len(out) < n-1 {
		v := rng.Intn(n)
		if v == excl || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}
