package baseline

import (
	"math/rand"
	"testing"
)

func TestFloodValidation(t *testing.T) {
	bad := []FloodParams{
		{N: 0, F: 2},
		{N: 10, F: 0},
		{N: 10, F: 2, Eps: 1},
		{N: 10, F: 2, Tau: -0.1},
	}
	for _, p := range bad {
		if _, err := RunFlood(p, 0.5, rand.New(rand.NewSource(1))); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	if _, err := RunFlood(FloodParams{N: 10, F: 2}, 1.5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("pd > 1 accepted")
	}
}

func TestFloodInfectsEverybody(t *testing.T) {
	// A clean flood with decent fanout reaches essentially everyone —
	// including the uninterested (the paper's core complaint).
	res, err := RunFlood(FloodParams{N: 500, F: 3, C: 2}, 0.3, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate() < 0.99 {
		t.Errorf("flood delivery = %g", res.DeliveryRate())
	}
	if res.UninterestedReceptionRate() < 0.95 {
		t.Errorf("flood should flood the uninterested too: %g", res.UninterestedReceptionRate())
	}
	if res.Messages == 0 || res.Rounds == 0 {
		t.Error("zero cost flood")
	}
}

func TestFloodLossDegrades(t *testing.T) {
	rngA, rngB := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	clean, err := RunFlood(FloodParams{N: 300, F: 2}, 0.5, rngA)
	if err != nil {
		t.Fatal(err)
	}
	// Heavy loss with a budget computed for the lossless case.
	lossy, err := RunFlood(FloodParams{N: 300, F: 2, Eps: 0.7}, 0.5, rngB)
	if err != nil {
		t.Fatal(err)
	}
	// Note: PittelLossAdjusted extends the budget under loss, so compare
	// infected counts normalized per message instead of absolute delivery.
	if lossy.DeliveredInterested+lossy.InfectedUninterested >=
		clean.DeliveredInterested+clean.InfectedUninterested {
		t.Errorf("loss did not reduce infections: lossy %d vs clean %d",
			lossy.DeliveredInterested+lossy.InfectedUninterested,
			clean.DeliveredInterested+clean.InfectedUninterested)
	}
}

func TestGenuineNeverTouchesUninterested(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		res, err := RunGenuine(GenuineParams{N: 200, ViewSize: 30, F: 3, C: 1},
			0.4, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		if res.InfectedUninterested != 0 {
			t.Fatalf("seed %d: genuine multicast infected %d uninterested",
				seed, res.InfectedUninterested)
		}
	}
}

func TestGenuineIsolationWithSmallViews(t *testing.T) {
	// With tiny views and a sparse audience, genuine multicast strands
	// interested processes; compare against near-global knowledge.
	var globalSum, localSum float64
	const runs = 25
	for seed := int64(0); seed < runs; seed++ {
		global, err := RunGenuine(GenuineParams{N: 300, ViewSize: 299, F: 3, C: 2},
			0.05, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		local, err := RunGenuine(GenuineParams{N: 300, ViewSize: 10, F: 3, C: 2},
			0.05, rand.New(rand.NewSource(seed+1000)))
		if err != nil {
			t.Fatal(err)
		}
		globalSum += global.DeliveryRate()
		localSum += local.DeliveryRate()
	}
	if localSum/runs >= globalSum/runs {
		t.Errorf("small views should isolate: local %g >= global %g",
			localSum/runs, globalSum/runs)
	}
}

func TestGenuineValidation(t *testing.T) {
	if _, err := RunGenuine(GenuineParams{N: 10, ViewSize: 0, F: 2}, 0.5,
		rand.New(rand.NewSource(1))); err == nil {
		t.Error("zero view accepted")
	}
	if _, err := RunGenuine(GenuineParams{N: 10, ViewSize: 5, F: 2}, -0.5,
		rand.New(rand.NewSource(1))); err == nil {
		t.Error("negative pd accepted")
	}
}

func TestDetTreeExactInStablePhase(t *testing.T) {
	// No loss, no crashes: the deterministic tree delivers to every
	// interested process and nobody else beyond delegates, at minimal cost.
	res, err := RunDeterministicTree(DetTreeParams{A: 8, D: 3, R: 2}, 0.5,
		rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeliveryRate() != 1 {
		t.Errorf("stable deterministic tree delivery = %g, want 1", res.DeliveryRate())
	}
	// Message cost well below flooding: each interested subtree pays one
	// hand-off plus leaf fan-out, far less than n·F·T.
	if res.Messages > 3*8*8*8 {
		t.Errorf("deterministic tree cost %d messages, suspiciously high", res.Messages)
	}
}

func TestDetTreeFragileUnderLoss(t *testing.T) {
	var stable, unstable float64
	const runs = 30
	for seed := int64(0); seed < runs; seed++ {
		a, err := RunDeterministicTree(DetTreeParams{A: 8, D: 3, R: 1}, 0.5,
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunDeterministicTree(DetTreeParams{A: 8, D: 3, R: 1, Eps: 0.15}, 0.5,
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		stable += a.DeliveryRate()
		unstable += b.DeliveryRate()
	}
	if unstable/runs > 0.9*stable/runs {
		t.Errorf("loss should sever subtrees: unstable %g vs stable %g",
			unstable/runs, stable/runs)
	}
}

func TestDetTreeRedundancyHelps(t *testing.T) {
	var r1, r3 float64
	const runs = 30
	for seed := int64(0); seed < runs; seed++ {
		a, err := RunDeterministicTree(DetTreeParams{A: 8, D: 3, R: 1, Eps: 0.2}, 0.5,
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunDeterministicTree(DetTreeParams{A: 8, D: 3, R: 3, Eps: 0.2}, 0.5,
			rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		r1 += a.DeliveryRate()
		r3 += b.DeliveryRate()
	}
	if r3 <= r1 {
		t.Errorf("delegate retries should improve delivery: R=3 %g <= R=1 %g", r3/runs, r1/runs)
	}
}

func TestDetTreeValidation(t *testing.T) {
	if _, err := RunDeterministicTree(DetTreeParams{A: 2, D: 2, R: 3}, 0.5,
		rand.New(rand.NewSource(1))); err == nil {
		t.Error("a < R accepted")
	}
}

func TestResultRates(t *testing.T) {
	r := Result{Interested: 10, DeliveredInterested: 7, Uninterested: 20, InfectedUninterested: 5}
	if r.DeliveryRate() != 0.7 {
		t.Errorf("delivery = %g", r.DeliveryRate())
	}
	if r.UninterestedReceptionRate() != 0.25 {
		t.Errorf("reception = %g", r.UninterestedReceptionRate())
	}
	empty := Result{}
	if empty.DeliveryRate() != 1 || empty.UninterestedReceptionRate() != 0 {
		t.Error("vacuous rates wrong")
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	got := sampleDistinct(rng, 10, 3, 5)
	if len(got) != 5 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if v == 3 || v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", got)
		}
		seen[v] = true
	}
	// Requesting more than available caps at n−1.
	if got := sampleDistinct(rng, 4, 0, 99); len(got) != 3 {
		t.Errorf("capped sample len = %d, want 3", len(got))
	}
}
