package analysis

import (
	"fmt"
	"math"
)

// FlatParams describes a "flat" group (a tree of depth 1, Section 4.2): n
// susceptible processes of which every infected one gossips to F targets per
// round, messages being lost with probability Eps and processes crashing
// with probability Tau. In pmcast both n and F arrive pre-conditioned by the
// matching rate (n·p_d and F·p_d).
type FlatParams struct {
	// N is the (effective) group size — processes that should be infected.
	N int
	// F is the (effective) per-round fanout; fractional values model
	// rate-conditioned fanouts.
	F float64
	// Eps is the per-message loss probability ε ∈ [0, 1).
	Eps float64
	// Tau is the per-process crash probability τ ∈ [0, 1).
	Tau float64
}

// validate reports nonsensical parameters.
func (p FlatParams) validate() error {
	if p.N < 0 {
		return fmt.Errorf("analysis: negative group size %d", p.N)
	}
	if p.Eps < 0 || p.Eps >= 1 {
		return fmt.Errorf("analysis: loss probability %g outside [0,1)", p.Eps)
	}
	if p.Tau < 0 || p.Tau >= 1 {
		return fmt.Errorf("analysis: crash probability %g outside [0,1)", p.Tau)
	}
	return nil
}

// InfectionProb evaluates Eq. 8: the probability p that one given infected
// process infects one given susceptible process in one round — the
// conjunction of being chosen among the F targets, the message surviving,
// and the target not having crashed:
//
//	p(n, F) = F/(n−1) · (1−ε)(1−τ)
//
// clamped to [0, 1] (the ratio exceeds 1 when F ≥ n−1).
func (p FlatParams) InfectionProb() float64 {
	if p.N <= 1 {
		return 0
	}
	v := p.F / float64(p.N-1) * (1 - p.Eps) * (1 - p.Tau)
	return min(max(v, 0), 1)
}

// Chain is the homogeneous Markov chain of Eq. 9–10 over the number of
// infected processes s_t ∈ {0, …, N}. Build with NewChain, then Step or
// Distribution.
type Chain struct {
	params FlatParams
	q      float64 // 1 − InfectionProb (Eq. 8)
}

// NewChain validates the parameters and builds the chain.
func NewChain(params FlatParams) (*Chain, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	return &Chain{params: params, q: 1 - params.InfectionProb()}, nil
}

// Params returns the chain parameters.
func (c *Chain) Params() FlatParams { return c.params }

// TransitionProb evaluates Eq. 9: the probability p_jk of moving from j
// infected processes to k in one round,
//
//	p_jk = C(n−j, k−j) · (1 − q^j)^(k−j) · q^(j(n−k))
//
// — each of the n−j susceptibles is independently reached by at least one of
// the j infected with probability 1−q^j.
func (c *Chain) TransitionProb(j, k int) float64 {
	n := c.params.N
	if j < 0 || k < j || k > n {
		return 0
	}
	if j == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	pReach := 1 - math.Pow(c.q, float64(j)) // 1 − q^j
	return binomialPMF(n-j, pReach, k-j)
}

// Step advances a distribution over infected counts by one gossip round.
// dist[j] is P[s_t = j]; the result has the same length N+1. Unlike the
// paper's Eq. 10 we do not truncate the source states at j ≥ k/(1+F): the
// binomial transition already concentrates growth near j(1+F), and keeping
// the full sum conserves probability mass exactly (see DESIGN.md).
func (c *Chain) Step(dist []float64) []float64 {
	n := c.params.N
	out := make([]float64, n+1)
	for j, pj := range dist {
		if pj == 0 {
			continue
		}
		if j == 0 {
			out[0] += pj
			continue
		}
		pReach := 1 - math.Pow(c.q, float64(j))
		// Binomial(n−j, pReach) new infections.
		for k := j; k <= n; k++ {
			out[k] += pj * binomialPMF(n-j, pReach, k-j)
		}
	}
	return out
}

// Distribution returns P[s_t = ·] after t rounds starting from s_0 initially
// infected processes (s_0 = 1 for a fresh multicast; a subgroup joined by
// its R delegates starts at R, Section 4.3).
func (c *Chain) Distribution(s0, t int) []float64 {
	n := c.params.N
	dist := make([]float64, n+1)
	if s0 < 0 {
		s0 = 0
	}
	if s0 > n {
		s0 = n
	}
	dist[s0] = 1
	for r := 0; r < t; r++ {
		dist = c.Step(dist)
	}
	return dist
}

// ExpectedInfected evaluates Eq. 14: E[s_t] after t rounds from s_0.
func (c *Chain) ExpectedInfected(s0, t int) float64 {
	dist := c.Distribution(s0, t)
	e := 0.0
	for k, pk := range dist {
		e += float64(k) * pk
	}
	return e
}

// DeliveryProbability returns the probability that one fixed interested
// process is infected after t rounds: E[s_t]/N with the initially infected
// process discounted (the origin counts itself). For reporting we use the
// plain fraction E[s_t]/N, matching the paper's "expected fraction of
// processes infected".
func (c *Chain) DeliveryProbability(s0, t int) float64 {
	if c.params.N == 0 {
		return 0
	}
	return c.ExpectedInfected(s0, t) / float64(c.params.N)
}

// FlatReliability is the one-call convenience used by benchmarks: the
// expected fraction of an n·p_d audience infected after the loss-adjusted
// Pittel bound of rounds, starting from one infected process.
func FlatReliability(params FlatParams, c float64) (float64, error) {
	chain, err := NewChain(params)
	if err != nil {
		return 0, err
	}
	rounds := PittelLossAdjustedRounds(float64(params.N), params.F, c, params.Eps, params.Tau)
	return chain.DeliveryProbability(1, rounds), nil
}
